package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.After(3*Microsecond, func() { got = append(got, 3) })
	e.After(1*Microsecond, func() { got = append(got, 1) })
	e.After(2*Microsecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*Microsecond) {
		t.Fatalf("Now = %v, want 3µs", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(5*Nanosecond), func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(Microsecond, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("fresh event not Scheduled")
	}
	e.Cancel(ev)
	e.Cancel(ev)      // double cancel is a no-op
	e.Cancel(Event{}) // zero handle is a no-op
	if !ev.Cancelled() || ev.Scheduled() {
		t.Fatal("event not marked cancelled before reaping")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// After the run the dead instance has been reaped: the handle is
	// stale and reports neither scheduled nor cancelled.
	if ev.Cancelled() || ev.Scheduled() {
		t.Fatal("reaped handle did not go stale")
	}
}

// Post-fire semantics (the old engine lied here: cancelling a fired event
// marked it cancelled). Now a fired instance is stale: Cancel is a no-op,
// Cancelled reports false, and — critically, because event storage is
// pooled — a stale Cancel must not kill an unrelated event that happens
// to reuse the same storage.
func TestEventPostFireSemantics(t *testing.T) {
	e := New()
	aFired := false
	a := e.After(Microsecond, func() { aFired = true })
	e.Run()
	if !aFired {
		t.Fatal("event did not fire")
	}
	if a.Cancelled() {
		t.Fatal("fired event reports Cancelled")
	}
	if a.Scheduled() {
		t.Fatal("fired event reports Scheduled")
	}
	e.Cancel(a) // no-op on a fired instance
	if a.Cancelled() {
		t.Fatal("post-fire Cancel marked the event cancelled")
	}

	// b reuses a's pooled storage; a stale cancel of a must not touch it.
	bFired := false
	b := e.After(Microsecond, func() { bFired = true })
	e.Cancel(a)
	if !b.Scheduled() {
		t.Fatal("stale Cancel killed an unrelated event")
	}
	e.Run()
	if !bFired {
		t.Fatal("recycled event did not fire")
	}
	_ = b
}

func TestEngineCancelOneOfMany(t *testing.T) {
	e := New()
	var got []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.After(Duration(i+1)*Microsecond, func() { got = append(got, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8: %v", len(got), got)
	}
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []int
	e.After(1*Microsecond, func() { got = append(got, 1) })
	e.After(5*Microsecond, func() { got = append(got, 5) })
	e.RunUntil(Time(3 * Microsecond))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	if e.Now() != Time(3*Microsecond) {
		t.Fatalf("Now = %v after RunUntil, want 3µs", e.Now())
	}
	e.Run()
	if len(got) != 2 {
		t.Fatalf("remaining event did not fire: %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.After(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled from inside callbacks at the current instant run
	// in the same pass, after already-queued same-instant events.
	e := New()
	var got []string
	e.After(0, func() {
		got = append(got, "a")
		e.After(0, func() { got = append(got, "c") })
	})
	e.After(0, func() { got = append(got, "b") })
	e.Run()
	if want := "abc"; got[0]+got[1]+got[2] != want {
		t.Fatalf("got %v, want a,b,c", got)
	}
}

func TestTimeFormatting(t *testing.T) {
	if s := (2500 * Nanosecond).String(); s != "2.5µs" {
		t.Errorf("2500ns = %q", s)
	}
	if s := (Duration(1500)).String(); s != "1ns+500ps" {
		t.Errorf("1500ps = %q", s)
	}
	if got := Seconds(0.001); got != Millisecond {
		t.Errorf("Seconds(0.001) = %v", got)
	}
	if got := Micros(20); got != 20*Microsecond {
		t.Errorf("Micros(20) = %v", got)
	}
}

// Property: for any schedule of events, execution order is sorted by
// (time, insertion order).
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint32) bool {
		e := New()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i := i
			at := Time(Duration(d%1_000_000) * Nanosecond)
			e.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(a, b int) bool {
			if fired[a].at != fired[b].at {
				return fired[a].at < fired[b].at
			}
			return fired[a].seq < fired[b].seq
		})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleaving of schedules and cancellations never
// fires a cancelled event and fires every non-cancelled one.
func TestEngineCancelProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		fired := map[int]bool{}
		cancelled := map[int]bool{}
		evs := map[int]Event{}
		for i := 0; i < int(n); i++ {
			i := i
			evs[i] = e.After(Duration(rng.Intn(1000))*Nanosecond, func() { fired[i] = true })
		}
		for i := range evs {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < int(n); i++ {
			if cancelled[i] && fired[i] {
				return false
			}
			if !cancelled[i] && !fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%1000)*Nanosecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
	b.ReportMetric(float64(e.Steps())/b.Elapsed().Seconds(), "events/sec")
}

// Steady-state scheduling must not allocate: nodes come from the free
// list and the heap's backing array has stabilized.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the pool and the queue's backing storage. The timing wheel
	// lazily allocates each slot's entry array on first touch, and the
	// round stride drifts through slot residues slowly, so the warm-up
	// repeats until every level-0 slot the loop can land in has capacity.
	for round := 0; round < 4096; round++ {
		for i := 0; i < 64; i++ {
			e.After(Duration(i)*Nanosecond, fn)
		}
		e.Run()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.After(Duration(i)*Nanosecond, fn)
		}
		e.Run()
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state scheduling allocates %.1f allocs/run, want 0", allocs)
	}
}

// Lazy cancellation must not leak nodes: a cancel-heavy workload reuses
// the same pooled storage round after round.
func TestEngineCancelRecycles(t *testing.T) {
	e := New()
	fn := func() {}
	for round := 0; round < 3; round++ {
		evs := make([]Event, 0, 100)
		for i := 0; i < 100; i++ {
			evs = append(evs, e.After(Duration(i)*Nanosecond, fn))
		}
		for _, ev := range evs {
			e.Cancel(ev)
		}
		e.Run()
		if got := e.Pending(); got != 0 {
			t.Fatalf("round %d: %d entries left after Run", round, got)
		}
	}
	if len(e.free) < 100 {
		t.Fatalf("free list holds %d nodes, want >= 100", len(e.free))
	}
}

// Regression: draining a slot can land the wheel's position exactly on a
// window boundary (tick+1 ≡ 0 mod slots); the engine must still run that
// boundary's cascades before scanning the new window. Before the
// cascadedTo fix this input fired a level-1 resident a full rotation
// late (found by TestEngineOrderProperty, pinned here).
func TestWheelBoundaryLandingCascades(t *testing.T) {
	delays := []uint32{0x5c72448b, 0x5852fdcb, 0x861c942b, 0xc0442e72,
		0x9ed96cee, 0x8fbb6a70, 0xc6467379, 0x1809bb4a, 0x17ab982b,
		0xf8c53632, 0x513d65b7, 0xe9f7a49a, 0xfd83a9bd, 0x2af5f8a0,
		0x37f7b937, 0xc4ef69e6, 0x15bf5fd6, 0xf4d27cf, 0xaa53362b,
		0x8d0758a6, 0x66ae3f0, 0xe9526e5f, 0x34228c68, 0xa8415c6,
		0x8dc6ce59, 0x3f73358d, 0x126076a4, 0x37f025f2, 0xd192a4c6,
		0x6c3421d5, 0xac360f37, 0x3d78b7c2, 0xc69d69cc, 0x9c22e036,
		0x6c8f77c0, 0xfc92476, 0x2d2ffd45, 0x41c8e0eb, 0xabe73c5c,
		0xab005c16, 0xa7213199, 0x6bc8d579, 0xcbe6693, 0x44094fd1,
		0x805063a5, 0x47deb00b, 0x168433da, 0x9bef088c}
	e := New()
	type rec struct {
		at  Time
		seq int
	}
	var fired []rec
	for i, d := range delays {
		i := i
		at := Time(Duration(d%1_000_000) * Nanosecond)
		e.At(at, func() { fired = append(fired, rec{at, i}) })
	}
	e.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d of %d events", len(fired), len(delays))
	}
	if !sort.SliceIsSorted(fired, func(a, b int) bool {
		if fired[a].at != fired[b].at {
			return fired[a].at < fired[b].at
		}
		return fired[a].seq < fired[b].seq
	}) {
		t.Fatal("firing order violated (at, seq)")
	}
}
