package sim

import "testing"

// TestStepCapTrips proves the hard executed-events cap freezes the
// engine in front of the (cap+1)-th event: clock unmoved, entry still
// pending, Step/RunUntil refusing to execute anything further, and
// Reset restoring a healthy engine.
func TestStepCapTrips(t *testing.T) {
	e := New()
	fired := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i*1000), func() { fired++ })
	}
	e.SetLimits(4, 0)
	e.RunUntil(Time(1_000_000))

	if fired != 4 {
		t.Fatalf("fired %d events, want 4", fired)
	}
	tr := e.Tripped()
	if tr == nil || tr.Reason != TripSteps {
		t.Fatalf("Tripped() = %+v, want TripSteps", tr)
	}
	if tr.At != 4000 || tr.Steps != 4 {
		t.Fatalf("trip watermark = at %v steps %d, want at 4000 steps 4", tr.At, tr.Steps)
	}
	if e.Now() != 3000 {
		t.Fatalf("clock advanced to %v on trip, want 3000 (last fired instant)", e.Now())
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d after trip, want 6 (refused entry stays queued)", e.Pending())
	}
	if e.Step() {
		t.Fatal("Step executed an event on a tripped engine")
	}
	e.RunUntilKey(KeyAtEnd(Time(1_000_000)))
	if fired != 4 {
		t.Fatalf("RunUntilKey fired events on a tripped engine (fired=%d)", fired)
	}

	e.Reset()
	if e.Tripped() != nil {
		t.Fatal("Reset did not clear the trip")
	}
	done := false
	e.At(0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("reset engine did not execute a fresh event")
	}
}

// TestLivelockTrips proves the same-instant run detector stops a
// zero-delay self-rescheduling cycle with the stuck instant in the
// trip, and that a healthy workload with long (sub-threshold)
// same-instant bursts is untouched.
func TestLivelockTrips(t *testing.T) {
	e := New()
	var spin func()
	spin = func() { e.After(0, spin) }
	e.At(500, spin)
	e.SetLimits(0, 1000)
	e.RunUntil(Time(1_000_000))

	tr := e.Tripped()
	if tr == nil || tr.Reason != TripLivelock {
		t.Fatalf("Tripped() = %+v, want TripLivelock", tr)
	}
	if tr.At != 500 {
		t.Fatalf("stuck instant = %v, want 500", tr.At)
	}
	if tr.SameRun != 1000 {
		t.Fatalf("same-instant run = %d, want 1000", tr.SameRun)
	}
	if e.Now() != 500 {
		t.Fatalf("clock = %v after livelock trip, want 500", e.Now())
	}

	// A burst below the threshold must pass: 999 same-instant events,
	// then the clock moves and another 999 fire at the next instant.
	e.Reset()
	e.SetLimits(0, 1000)
	fired := 0
	for i := 0; i < 999; i++ {
		e.At(100, func() { fired++ })
		e.At(200, func() { fired++ })
	}
	e.Run()
	if e.Tripped() != nil {
		t.Fatalf("sub-threshold bursts tripped the detector: %+v", e.Tripped())
	}
	if fired != 2*999 {
		t.Fatalf("fired %d, want %d", fired, 2*999)
	}
}

// TestTripReproducible runs the same over-cap workload twice and
// requires identical trip watermarks — the determinism contract the
// guard package's byte-reproducible budget errors stand on.
func TestTripReproducible(t *testing.T) {
	run := func() Trip {
		e := New()
		var chain func()
		n := 0
		chain = func() {
			n++
			e.After(Duration(1000+n%7), chain)
		}
		e.At(0, chain)
		e.SetLimits(2500, 0)
		e.RunUntil(Time(1 << 40))
		tr := e.Tripped()
		if tr == nil {
			t.Fatal("workload did not trip")
		}
		return *tr
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("trip not reproducible:\n  first  %+v\n  second %+v", a, b)
	}
}
