package sim

// This file is the engine half of run supervision (internal/guard): two
// cheap, deterministic checks inside the wheel loop that stop the engine
// before a broken model can wedge the process.
//
//   - Progress (livelock) detection: a counter of consecutively fired
//     events whose timestamps are all the same instant. A discrete-event
//     model that schedules unbounded zero-delay follow-ups never advances
//     the clock, so no time-based bound — horizon, budget checkpoint,
//     partition barrier — can ever interrupt it; only a check between
//     fired events can. The counter resets whenever the clock moves, so
//     legitimate same-instant bursts (simultaneous launches, batched
//     same-tick firing) stay far below the default threshold.
//   - Step backstop: a hard per-engine cap on total executed events. The
//     deterministic budget accounting lives OUTSIDE the loop, at
//     guard.Supervisor's sim-time checkpoints; the in-loop cap exists for
//     the pathological runs that never reach the next checkpoint cheaply
//     (event storms advancing picoseconds per event).
//
// Both checks run before the next live entry executes, so a trip leaves
// the engine frozen in a consistent state: the offending entry is still
// at the head of the queue, the clock has not moved, and the Trip
// records the entry's timestamp and canonical key — enough to name the
// exact event the serial order would have fired next. Once tripped, the
// engine refuses to execute anything until Reset.
//
// Cost: one predictable branch plus a timestamp compare per fired event
// (the detector is always armed). PERF.md's "Run supervision" section
// records the before/after events/sec — within run-to-run noise.

// DefaultMaxSameInstant is the always-on livelock threshold: the number
// of consecutive same-instant events an engine fires before declaring
// the model stuck. The largest legitimate same-instant bursts in this
// repository (whole-fabric simultaneous launches at 10k-host scale,
// probe sampling ticks) stay below ~10^5; a genuine zero-delay cycle
// blows past any finite threshold, so 8M trips it promptly while
// leaving real workloads two orders of magnitude of headroom.
const DefaultMaxSameInstant = 8 << 20

// TripReason says which in-loop limit stopped the engine.
type TripReason uint8

const (
	// TripSteps: the engine reached its hard executed-events cap.
	TripSteps TripReason = iota + 1
	// TripLivelock: too many consecutive events at one instant.
	TripLivelock
)

func (r TripReason) String() string {
	switch r {
	case TripSteps:
		return "step-cap"
	case TripLivelock:
		return "livelock"
	}
	return "unknown"
}

// Trip describes an in-loop limit stop: the reason, the timestamp and
// canonical key of the event the engine refused to execute, and the
// counter values at the stop. At a fixed seed the trip is
// byte-reproducible — the engine fires events in the canonical order, so
// the refused entry (and every counter) is a pure function of the
// scenario.
type Trip struct {
	Reason TripReason
	// At and Key identify the pending event the engine stopped in front
	// of (the stuck instant, for a livelock).
	At  Time
	Key Key
	// Steps is the engine's executed-event count at the stop.
	Steps uint64
	// SameRun is the consecutive same-instant run length (livelock trips).
	SameRun uint64
}

// SetLimits configures the in-loop checks: stopSteps is the hard cap on
// executed events (0 disables), maxSameInstant the livelock threshold
// (0 restores DefaultMaxSameInstant). Reset returns both to defaults.
func (e *Engine) SetLimits(stopSteps, maxSameInstant uint64) {
	e.stopSteps = stopSteps
	if maxSameInstant == 0 {
		maxSameInstant = DefaultMaxSameInstant
	}
	e.maxSame = maxSameInstant
}

// Tripped returns the in-loop limit stop, or nil while the engine is
// healthy. A tripped engine executes nothing further (Step returns
// false, Run/RunUntil/RunUntilKey return immediately, the clock stays
// frozen) until Reset.
func (e *Engine) Tripped() *Trip { return e.trip }

// admit decides whether the live entry at the batch cursor may execute,
// recording a Trip and freezing the engine when a limit is hit. It runs
// once per fired event; keep it branch-cheap.
func (e *Engine) admit(ent entry) bool {
	if e.trip != nil {
		return false
	}
	if e.stopSteps != 0 && e.nSteps >= e.stopSteps {
		e.trip = &Trip{Reason: TripSteps, At: ent.at, Key: entKey(ent), Steps: e.nSteps, SameRun: e.sameRun}
		return false
	}
	if ent.at == e.lastAt {
		e.sameRun++
		// The zero-value Engine is ready to use, so the threshold is
		// lazily defaulted here rather than in a constructor.
		if e.maxSame == 0 {
			e.maxSame = DefaultMaxSameInstant
		}
		if e.sameRun >= e.maxSame {
			e.trip = &Trip{Reason: TripLivelock, At: ent.at, Key: entKey(ent), Steps: e.nSteps, SameRun: e.sameRun}
			return false
		}
	} else {
		e.lastAt = ent.at
		e.sameRun = 1
	}
	return true
}

// entKey unpacks an entry's canonical key (diagnostics path only).
func entKey(ent entry) Key {
	return Key{At: ent.at, PHash: ent.phash(), DSched: ent.dsched(), K: ent.k()}
}
