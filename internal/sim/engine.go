package sim

import "container/heap"

// Event is a scheduled callback. Events are created by the Engine and may
// be cancelled until they fire. The zero Event is not useful; always use
// Engine.At or Engine.After.
type Event struct {
	at        Time
	seq       uint64 // tiebreaker: FIFO among events at the same instant
	fn        func()
	index     int // position in the heap, -1 once popped
	cancelled bool
}

// At returns the time the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Engine is a discrete-event scheduler. The zero value is ready to use.
//
// All callbacks run on the goroutine that calls Run/RunUntil/Step; the
// Engine itself is not safe for concurrent use, matching the deterministic
// single-threaded execution model described in the package comment.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	nSteps uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far (useful for
// reporting simulator throughput in benchmarks).
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a model bug, and silently
// reordering time would destroy determinism.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d from now. A non-positive d fires at the
// current instant, after all callbacks already queued for this instant.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents ev from firing. Cancelling a nil, fired, or already
// cancelled event is a no-op, so callers can unconditionally cancel timers
// they may or may not hold.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		ev.markCancelled()
		return
	}
	ev.cancelled = true
	heap.Remove(&e.events, ev.index)
}

func (ev *Event) markCancelled() {
	if ev != nil {
		ev.cancelled = true
	}
}

// Step executes the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.nSteps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to t. Events scheduled after t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
