package sim

// node is the engine-owned storage behind a scheduled event. Nodes are
// recycled through a free list: when an event fires, or a cancelled event
// reaches the head of the heap and is skipped, its node's generation is
// bumped and the node returns to the pool. Handles (Event values) carry
// the generation they were issued with, so a handle to a recycled node
// goes stale instead of aliasing whatever the node holds next.
type node struct {
	fn        func()
	afn       func(any) // argument-carrying callback (AtCall); nil for At
	arg       any
	gen       uint64
	cancelled bool
}

// Event is a handle to one scheduled event instance. It is a small value,
// cheap to copy and compare; the zero Event refers to nothing and is safe
// to Cancel or query.
//
// Lifecycle semantics (the fine print of the pooled engine):
//
//   - Scheduled() is true from At/After until the instance fires or is
//     cancelled.
//   - Cancelled() is true from Cancel until the engine reaps the dead
//     instance (lazily, when its deadline reaches the head of the queue).
//   - Once an instance has fired or been reaped the handle is stale:
//     Scheduled and Cancelled both report false, and Cancel is a no-op.
//     In particular, cancelling an already-fired event does NOT mark it
//     cancelled — post-fire Cancel has no effect of any kind.
//
// Code that needs a long-lived, re-armable callback should use Timer,
// which tracks its own armed state exactly and never goes stale.
type Event struct {
	n   *node
	gen uint64
}

// Scheduled reports whether the event instance is still pending.
func (ev Event) Scheduled() bool {
	return ev.n != nil && ev.n.gen == ev.gen && !ev.n.cancelled
}

// Cancelled reports whether this instance was cancelled and has not yet
// been reaped. Stale handles (fired or reaped instances) report false.
func (ev Event) Cancelled() bool {
	return ev.n != nil && ev.n.gen == ev.gen && ev.n.cancelled
}

// entry is one element of the event queue. Entries are stored by value so
// heap sift operations compare (at, seq) without chasing pointers.
type entry struct {
	at  Time
	seq uint64
	n   *node
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
//
// All callbacks run on the goroutine that calls Run/RunUntil/Step; the
// Engine itself is not safe for concurrent use, matching the deterministic
// single-threaded execution model described in the package comment.
//
// The engine allocates nothing per event in steady state: event nodes are
// pooled, cancellation is lazy (dead entries are skipped when popped, not
// removed), and the queue is a manual binary heap of value entries.
type Engine struct {
	now    Time
	seq    uint64
	heap   []entry
	free   []*node
	nSteps uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far (useful for
// reporting simulator throughput in benchmarks).
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending returns the number of queue entries waiting, including
// cancelled instances that have not been reaped yet.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a model bug, and silently
// reordering time would destroy determinism.
func (e *Engine) At(t Time, fn func()) Event {
	n := e.take(t)
	n.fn = fn
	e.push(entry{at: t, seq: e.seq, n: n})
	e.seq++
	return Event{n: n, gen: n.gen}
}

// AtCall schedules fn(arg) at absolute time t. It is the hot-path variant
// of At for per-packet work: the callback is a long-lived pre-bound
// function and the per-event payload rides in arg, so scheduling
// allocates nothing (a pointer in an interface does not escape). Same
// past-scheduling panic and ordering semantics as At.
func (e *Engine) AtCall(t Time, fn func(any), arg any) Event {
	n := e.take(t)
	n.afn = fn
	n.arg = arg
	e.push(entry{at: t, seq: e.seq, n: n})
	e.seq++
	return Event{n: n, gen: n.gen}
}

// take pops a node from the free list (or allocates one) for an event at
// time t, panicking on past scheduling.
func (e *Engine) take(t Time) *node {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	if k := len(e.free); k > 0 {
		n := e.free[k-1]
		e.free[k-1] = nil
		e.free = e.free[:k-1]
		return n
	}
	return &node{}
}

// After schedules fn to run d from now. A non-positive d fires at the
// current instant, after all callbacks already queued for this instant.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents ev from firing. Cancellation is lazy: the instance is
// marked dead and skipped (and its node recycled) when it reaches the
// head of the queue. Cancelling the zero Event, a stale handle, or an
// already-cancelled instance is a no-op, so callers can unconditionally
// cancel timers they may or may not hold.
func (e *Engine) Cancel(ev Event) {
	if ev.n == nil || ev.n.gen != ev.gen {
		return
	}
	ev.n.cancelled = true
}

// reap recycles a node whose queue entry has been popped.
func (e *Engine) reap(n *node) {
	n.fn = nil
	n.afn = nil
	n.arg = nil
	n.cancelled = false
	n.gen++
	e.free = append(e.free, n)
}

// Step executes the single earliest pending event and returns true, or
// returns false if no live events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ent := e.pop()
		n := ent.n
		if n.cancelled {
			e.reap(n)
			continue
		}
		e.now = ent.at
		e.nSteps++
		fn, afn, arg := n.fn, n.afn, n.arg
		e.reap(n)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to t. Events scheduled after t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 {
		// Reap cancelled entries at the head eagerly so the horizon check
		// below sees the earliest *live* event (Step would otherwise skip
		// past a dead head and run an event beyond t).
		if e.heap[0].n.cancelled {
			e.reap(e.pop().n)
			continue
		}
		if e.heap[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// less orders entries by (at, seq): FIFO among events at the same instant.
func (a entry) less(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts an entry and sifts it up.
func (e *Engine) push(ent entry) {
	h := append(e.heap, ent)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the minimum entry.
func (e *Engine) pop() entry {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = entry{}
	h = h[:last]
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && h[r].less(h[l]) {
			m = r
		}
		if !h[m].less(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.heap = h
	return top
}
