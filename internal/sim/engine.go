package sim

import "math/bits"

// node is the engine-owned storage behind a scheduled event. Nodes are
// recycled through a free list: when an event fires, or a cancelled event
// reaches the firing batch and is skipped, its node's generation is
// bumped and the node returns to the pool. Handles (Event values) carry
// the generation they were issued with, so a handle to a recycled node
// goes stale instead of aliasing whatever the node holds next.
type node struct {
	fn        func()
	afn       func(any) // argument-carrying callback (AtCall); nil for At
	arg       any
	gen       uint64
	cancelled bool
}

// Event is a handle to one scheduled event instance. It is a small value,
// cheap to copy and compare; the zero Event refers to nothing and is safe
// to Cancel or query.
//
// Lifecycle semantics (the fine print of the pooled engine):
//
//   - Scheduled() is true from At/After until the instance fires or is
//     cancelled.
//   - Cancelled() is true from Cancel until the engine reaps the dead
//     instance (lazily, when its slot is drained for firing).
//   - Once an instance has fired or been reaped the handle is stale:
//     Scheduled and Cancelled both report false, and Cancel is a no-op.
//     In particular, cancelling an already-fired event does NOT mark it
//     cancelled — post-fire Cancel has no effect of any kind.
//
// Code that needs a long-lived, re-armable callback should use Timer,
// which tracks its own armed state exactly and never goes stale.
type Event struct {
	n   *node
	gen uint64
}

// Scheduled reports whether the event instance is still pending.
func (ev Event) Scheduled() bool {
	return ev.n != nil && ev.n.gen == ev.gen && !ev.n.cancelled
}

// Cancelled reports whether this instance was cancelled and has not yet
// been reaped. Stale handles (fired or reaped instances) report false.
func (ev Event) Cancelled() bool {
	return ev.n != nil && ev.n.gen == ev.gen && ev.n.cancelled
}

// entry is one element of the event queue. Entries are stored by value in
// wheel slots, the firing batch, and the overflow heap, so ordering
// compares the canonical key (at, dsched, phash, k) without chasing
// pointers.
//
// The key encodes the event's position in the causal tree instead of a
// global sequence number:
//
//   - dsched is the (saturated) distance from the scheduling instant to
//     the firing instant. Ordering same-timestamp events by *earlier
//     scheduling first* (larger dsched first) preserves the FIFO flavor
//     of the old (at, seq) order — an event scheduled earlier still fires
//     earlier — without referencing global allocation order.
//   - phash is the causal-path hash of the scheduling parent (the hash of
//     the event whose callback scheduled this one, or an origin hash for
//     events scheduled outside any callback).
//   - k is the child index: the how-many-th schedule call the parent had
//     issued. Ties within one parent keep exact program order.
//
// Every component is a pure function of the causal tree, so the total
// order is identical no matter which engine — or how many engines — the
// tree's branches execute on. That invariance is what lets the
// partitioned runtime (internal/psim) reproduce the serial engine's
// firing order byte-for-byte at any partition count.
//
// Storage packs the 128-bit tail of the key — the tuple
// (^dsched, phash, k), 32+64+32 bits — into two uint64 words so the
// comparator on the slot-sort hot path is three unsigned word compares
// instead of four field branches. ^dsched leads because the canonical
// order ranks larger dsched first; lexicographic (hi, lo) then equals
// (dsched DESC, phash ASC, k ASC) exactly. packKey/unpack* are the only
// places that know the layout.
type entry struct {
	at Time
	hi uint64 // ^dsched(32) ++ phash[63:32]
	lo uint64 // phash[31:0] ++ k(32)
	n  *node
}

// packKey packs (phash, dsched, k) into the entry key words.
func packKey(phash uint64, dsched, k uint32) (hi, lo uint64) {
	return uint64(^dsched)<<32 | phash>>32, phash<<32 | uint64(k)
}

func (ent entry) phash() uint64  { return ent.hi<<32 | ent.lo>>32 }
func (ent entry) dsched() uint32 { return ^uint32(ent.hi >> 32) }
func (ent entry) k() uint32      { return uint32(ent.lo) }

// The event queue is a hierarchical timing wheel (Varghese & Lauck; the
// scheduler family production discrete-event simulators such as NS-2 use
// for exactly this workload): network events are overwhelmingly
// near-future and bounded-horizon — serialization delays, propagation,
// pacing ticks, RTOs — so bucketing by time makes schedule and fire O(1)
// where a binary heap pays O(log n) pointer-chasing sifts with 10⁴–10⁵
// events pending.
//
// Layout: one tick is 2^tickBits ps (8.192 ns — finer than a 1048-byte
// serialization at 100 Gbps, so consecutive packet events land in
// distinct slots); each of the numLevels levels has numSlots slots
// covering numSlots^level ticks per slot. Level 0 spans ~2.1 µs (covers
// serialization and edge propagation), level 1 ~537 µs (RTTs, pacing,
// sampling periods), level 2 ~137 ms (RTOs, failure schedules). Events
// beyond the wheel horizon wait in a small canonically-ordered overflow
// heap and are pulled in as the wheel turns.
//
// Determinism: events fire in the canonical causal order (at, dsched,
// phash, k) — see entry. A slot is drained as a whole into the firing
// batch and sorted by that key — entries within a tick fire in precise
// canonical order, not bucket order — and cascades only re-bucket
// entries into finer levels, never across an undrained earlier tick. The
// property test in engine_prop_test.go runs randomized
// schedule/cancel/re-arm scripts against a reference heap
// (referenceQueue) carrying the same key and requires identical firing
// orders.
const (
	tickBits  = 13 // one wheel tick = 8.192 ns
	levelBits = 8  // slots per level
	numSlots  = 1 << levelBits
	slotMask  = numSlots - 1
	numLevels = 3
	// horizonTicks spans the whole wheel; farther events overflow.
	horizonTicks = int64(1) << (numLevels * levelBits)
)

// wheelLevel is one ring of slots plus an occupancy bitmap so the scan
// for the next pending tick skips empty slots a word at a time.
type wheelLevel struct {
	slot  [numSlots][]entry
	occ   [numSlots / 64]uint64
	count int
}

func (l *wheelLevel) add(idx int, ent entry) {
	l.slot[idx] = append(l.slot[idx], ent)
	l.occ[idx>>6] |= 1 << (idx & 63)
	l.count++
}

// scan returns the first occupied slot index ≥ from, or -1.
func (l *wheelLevel) scan(from int) int {
	w := from >> 6
	word := l.occ[w] &^ (1<<(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w == len(l.occ) {
			return -1
		}
		word = l.occ[w]
	}
}

// take removes and returns slot idx's entries, clearing its occupancy.
// The backing array stays with the slot (truncated in place) so a warmed
// wheel schedules without allocating.
func (l *wheelLevel) take(idx int) []entry {
	s := l.slot[idx]
	l.slot[idx] = s[:0]
	l.occ[idx>>6] &^= 1 << (idx & 63)
	l.count -= len(s)
	return s
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
//
// All callbacks run on the goroutine that calls Run/RunUntil/Step; the
// Engine itself is not safe for concurrent use, matching the deterministic
// single-threaded execution model described in the package comment.
//
// The engine allocates nothing per event in steady state: event nodes are
// pooled, cancellation is lazy (dead entries are skipped when their slot
// drains, not removed), and the queue is a hierarchical timing wheel of
// value entries with batched same-tick firing.
type Engine struct {
	now    Time
	nSteps uint64

	// Causal scheduling context: curHash identifies the event whose
	// callback is currently running (or the origin set by SetOrigin), and
	// childIdx counts the schedule calls it has issued so far. Together
	// they stamp each new entry's (phash, k) — see entry.
	curHash  uint64
	childIdx uint32
	// Exec key of the entry being fired (for ExecKey), in the packed
	// entry layout, so external accumulators (flow records) can tag data
	// with the canonical position of the event that produced it.
	execHi uint64
	execLo uint64

	// curTick is the wheel's drain position: every tick below it has been
	// emptied into the firing batch. Entries scheduled into an
	// already-drained tick (always the one being fired — scheduling in
	// the past panics) are merged into the batch directly.
	curTick int64
	// cascadedTo is the highest window boundary whose cascades have run.
	// Draining a slot can land curTick exactly on a boundary without
	// passing through the boundary-step branch; advance compares the two
	// so no boundary's cascade is ever skipped.
	cascadedTo int64
	levels     [numLevels]wheelLevel
	over       []entry // overflow min-heap in canonical order

	// batch holds the tick being fired, in canonical order; bi is the
	// cursor of the next entry to fire. Run touches no other queue state
	// between batch entries — same-tick firing is one bounds check and an
	// index increment per event.
	batch []entry
	bi    int

	pending int // entries anywhere in the queue, incl. cancelled unreaped
	free    []*node

	// In-loop supervision state (see limit.go): lastAt/sameRun track the
	// consecutive same-instant run for livelock detection, stopSteps is
	// the hard executed-events cap (0 = off), maxSame the livelock
	// threshold (0 = lazily initialised to DefaultMaxSameInstant), and
	// trip freezes the engine once a limit is hit.
	lastAt    Time
	sameRun   uint64
	stopSteps uint64
	maxSame   uint64
	trip      *Trip
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far (useful for
// reporting simulator throughput in benchmarks).
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending returns the number of queue entries waiting, including
// cancelled instances that have not been reaped yet.
func (e *Engine) Pending() int { return e.pending }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a model bug, and silently
// reordering time would destroy determinism.
func (e *Engine) At(t Time, fn func()) Event {
	n := e.take(t)
	n.fn = fn
	e.pending++
	hi, lo := packKey(e.curHash, satDelta(t, e.now), e.childIdx)
	e.place(entry{at: t, hi: hi, lo: lo, n: n})
	e.childIdx++
	return Event{n: n, gen: n.gen}
}

// AtCall schedules fn(arg) at absolute time t. It is the hot-path variant
// of At for per-packet work: the callback is a long-lived pre-bound
// function and the per-event payload rides in arg, so scheduling
// allocates nothing (a pointer in an interface does not escape). Same
// past-scheduling panic and ordering semantics as At.
func (e *Engine) AtCall(t Time, fn func(any), arg any) Event {
	n := e.take(t)
	n.afn = fn
	n.arg = arg
	e.pending++
	hi, lo := packKey(e.curHash, satDelta(t, e.now), e.childIdx)
	e.place(entry{at: t, hi: hi, lo: lo, n: n})
	e.childIdx++
	return Event{n: n, gen: n.gen}
}

// take pops a node from the free list (or allocates one) for an event at
// time t, panicking on past scheduling.
func (e *Engine) take(t Time) *node {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	if k := len(e.free); k > 0 {
		n := e.free[k-1]
		e.free[k-1] = nil
		e.free = e.free[:k-1]
		return n
	}
	return &node{}
}

// After schedules fn to run d from now. A non-positive d fires at the
// current instant, after all callbacks already queued for this instant.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents ev from firing. Cancellation is lazy: the instance is
// marked dead and skipped (and its node recycled) when its slot drains
// into the firing batch. Cancelling the zero Event, a stale handle, or an
// already-cancelled instance is a no-op, so callers can unconditionally
// cancel timers they may or may not hold.
func (e *Engine) Cancel(ev Event) {
	if ev.n == nil || ev.n.gen != ev.gen {
		return
	}
	ev.n.cancelled = true
}

// reap recycles a node whose queue entry has been consumed.
func (e *Engine) reap(n *node) {
	n.fn = nil
	n.afn = nil
	n.arg = nil
	n.cancelled = false
	n.gen++
	e.free = append(e.free, n)
}

// place buckets an entry by its distance from the drain position. It
// does not touch the pending count, so cascades and refills move entries
// between structures through the same path.
func (e *Engine) place(ent entry) {
	tk := int64(ent.at) >> tickBits
	delta := tk - e.curTick
	switch {
	case delta < 0:
		// The tick being fired right now (at ≥ now rules out anything
		// older): merge into the batch at its canonical position.
		e.batchInsert(ent)
	case delta < 1<<levelBits:
		e.levels[0].add(int(tk)&slotMask, ent)
	case delta < 1<<(2*levelBits):
		e.levels[1].add(int(tk>>levelBits)&slotMask, ent)
	case delta < horizonTicks:
		e.levels[2].add(int(tk>>(2*levelBits))&slotMask, ent)
	default:
		e.overPush(ent)
	}
}

// batchInsert merges a same-tick entry into the live firing batch,
// keeping it sorted by the canonical key. Scheduling cannot target
// anything before the cursor (at ≥ now), so fired entries never move;
// an entry keying before the cursor position (a zero-delay child that
// the canonical order ranks ahead of already-fired siblings) is clamped
// to fire next, which matches the serial reference queue exactly —
// events that already fired are in the past regardless of key.
func (e *Engine) batchInsert(ent entry) {
	lo, hi := e.bi, len(e.batch)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpEntry(e.batch[mid], ent) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.batch = append(e.batch, entry{})
	copy(e.batch[lo+1:], e.batch[lo:])
	e.batch[lo] = ent
}

// cmpEntry is THE canonical total order (at ASC, dsched DESC, phash ASC,
// k ASC): the batch sort, the overflow heap (via entry.less), and the
// reference-heap property test all rank entries through it, so the
// determinism argument has a single comparator to audit. The packed key
// words make the descending-dsched / ascending-(phash, k) tail two plain
// unsigned compares — see entry and packKey for the layout proof.
func cmpEntry(a, b entry) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.hi != b.hi:
		if a.hi < b.hi {
			return -1
		}
		return 1
	case a.lo != b.lo:
		if a.lo < b.lo {
			return -1
		}
		return 1
	}
	return 0
}

// wheelCount reports the entries held by the wheel levels (excluding the
// batch and the overflow heap).
func (e *Engine) wheelCount() int {
	return e.levels[0].count + e.levels[1].count + e.levels[2].count
}

// advance loads the next pending tick into the firing batch, cascading
// coarser levels and refilling from the overflow heap as the wheel
// turns. It returns false when nothing is pending anywhere.
func (e *Engine) advance() bool {
	if e.bi < len(e.batch) {
		return true
	}
	e.batch = e.batch[:0]
	e.bi = 0
	for {
		// Draining a slot can advance curTick exactly onto a window
		// boundary; run that boundary's cascades before trusting the
		// level-0 scan for the new window.
		if b := e.curTick &^ int64(slotMask); b > e.cascadedTo {
			e.runCascades(b)
		}
		if e.levels[0].count > 0 {
			from := int(e.curTick) & slotMask
			if j := e.levels[0].scan(from); j >= 0 {
				e.loadSlot(j, e.curTick+int64(j-from))
				return true
			}
		}
		if e.wheelCount() == 0 {
			// Only the overflow heap holds events: jump the wheel to its
			// earliest tick and pull the next horizon in. The skipped
			// boundaries had nothing to cascade — mark them done.
			if len(e.over) == 0 {
				return false
			}
			if tk := int64(e.over[0].at) >> tickBits; tk > e.curTick {
				e.curTick = tk
			}
			if b := e.curTick &^ int64(slotMask); b > e.cascadedTo {
				e.cascadedTo = b
			}
			e.refill()
			continue
		}
		// Nothing below the next window boundary: advance to it and
		// cascade the matching coarser slots down. When levels 0 and 1
		// are both empty, whole level-1 windows are skipped at once
		// (their cascades would be no-ops).
		var boundary int64
		if e.levels[0].count == 0 && e.levels[1].count == 0 {
			boundary = (e.curTick | (1<<(2*levelBits) - 1)) + 1
		} else {
			boundary = (e.curTick | slotMask) + 1
		}
		e.curTick = boundary
		e.runCascades(boundary)
	}
}

// runCascades performs the cascades due at window boundary b (a multiple
// of numSlots): a horizon refill when b opens a new overflow window, a
// level-2 slot when b opens a new level-1 window, and always the level-1
// slot feeding the level-0 window that starts at b.
func (e *Engine) runCascades(b int64) {
	e.cascadedTo = b
	if b&(horizonTicks-1) == 0 && len(e.over) > 0 {
		e.refill()
	}
	if b&(1<<(2*levelBits)-1) == 0 {
		e.cascade(2, int(b>>(2*levelBits))&slotMask)
	}
	e.cascade(1, int(b>>levelBits)&slotMask)
}

// loadSlot drains level-0 slot j (holding tick tk) into the firing batch
// and sorts it by the canonical key: batched same-tick firing with the
// exact heap order. The batch and the slot swap backing arrays instead of
// copying — entries carry pointers, and a bulk copy would pay a GC
// write-barrier sweep per slot. Consumed entries linger beyond the
// slices' lengths; they only pin pooled nodes, which the free list
// keeps alive anyway.
func (e *Engine) loadSlot(j int, tk int64) {
	lv := &e.levels[0]
	s := lv.slot[j]
	lv.slot[j] = e.batch[:0]
	lv.occ[j>>6] &^= 1 << (j & 63)
	lv.count -= len(s)
	e.batch = s
	e.curTick = tk + 1
	if len(s) > 1 {
		sortEntries(s, bits.Len(uint(len(s)))*2)
	}
}

// sortEntries is an introsort over the canonical key with the comparator
// inlined: median-of-three quicksort, insertion sort below 16 elements,
// heapsort past the depth limit. The generic slices.SortFunc pays an
// indirect call per comparison; with 32-byte value entries and slots of
// 10–100 same-tick events drained every few microseconds of simulated
// time, that call overhead dominated the engine profile. The ordering is
// identical to slices.SortFunc(s, cmpEntry) — elements are unique under
// the total key, so stability is moot.
func sortEntries(s []entry, depth int) {
	for len(s) > 16 {
		if depth--; depth < 0 {
			heapSortEntries(s)
			return
		}
		// Median-of-three pivot: order s[0], s[mid], s[last] so the
		// median lands at s[mid], then use it as the pivot value.
		m := len(s) / 2
		last := len(s) - 1
		if s[m].less(s[0]) {
			s[m], s[0] = s[0], s[m]
		}
		if s[last].less(s[m]) {
			s[last], s[m] = s[m], s[last]
			if s[m].less(s[0]) {
				s[m], s[0] = s[0], s[m]
			}
		}
		p := s[m]
		i, j := 0, last
		for {
			for s[i].less(p) {
				i++
			}
			for p.less(s[j]) {
				j--
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
			i++
			j--
		}
		// Recurse into the smaller half, loop on the larger.
		if j+1 < len(s)-(j+1) {
			sortEntries(s[:j+1], depth)
			s = s[j+1:]
		} else {
			sortEntries(s[j+1:], depth)
			s = s[:j+1]
		}
	}
	// Insertion sort: short slices and nearly-sorted slot tails.
	for i := 1; i < len(s); i++ {
		ent := s[i]
		j := i - 1
		for j >= 0 && ent.less(s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = ent
	}
}

// heapSortEntries is the introsort depth-limit fallback (adversarial
// partition patterns only; never hit by real slot contents).
func heapSortEntries(s []entry) {
	for i := len(s)/2 - 1; i >= 0; i-- {
		siftEntries(s, i, len(s))
	}
	for end := len(s) - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		siftEntries(s, 0, end)
	}
}

func siftEntries(s []entry, root, end int) {
	for {
		c := 2*root + 1
		if c >= end {
			return
		}
		if c+1 < end && s[c].less(s[c+1]) {
			c++
		}
		if !s[root].less(s[c]) {
			return
		}
		s[root], s[c] = s[c], s[root]
		root = c
	}
}

// cascade re-buckets one slot of a coarser level. Every entry lands in a
// finer level (its tick shares the current window), so relative order is
// decided later by the slot sort — cascading cannot reorder.
func (e *Engine) cascade(li, idx int) {
	lv := &e.levels[li]
	if lv.slot[idx] == nil || len(lv.slot[idx]) == 0 {
		return
	}
	s := lv.take(idx)
	for _, ent := range s {
		e.place(ent)
	}
}

// refill pulls every overflow event inside the wheel horizon into the
// wheel.
func (e *Engine) refill() {
	for len(e.over) > 0 {
		if int64(e.over[0].at)>>tickBits-e.curTick >= horizonTicks {
			return
		}
		e.place(e.overPop())
	}
}

// Step executes the single earliest pending event and returns true. It
// returns false when no live events remain — or when an in-loop limit
// trips (Tripped non-nil): the refused entry stays pending and the
// clock does not move.
func (e *Engine) Step() bool {
	for {
		for e.bi < len(e.batch) {
			ent := e.batch[e.bi]
			n := ent.n
			if n.cancelled {
				e.bi++
				e.pending--
				e.reap(n)
				continue
			}
			if !e.admit(ent) {
				return false
			}
			e.bi++
			e.pending--
			e.now = ent.at
			e.nSteps++
			// Establish the causal context for anything the callback
			// schedules: the running event's identity hash becomes the
			// parent hash, children count from zero. The entry's own key
			// is exposed via ExecKey for external record tagging.
			e.execHi, e.execLo = ent.hi, ent.lo
			e.curHash = mix64(ent.phash(), ent.lo&0xFFFFFFFF)
			e.childIdx = 0
			fn, afn, arg := n.fn, n.afn, n.arg
			e.reap(n)
			if afn != nil {
				afn(arg)
			} else {
				fn()
			}
			return true
		}
		if !e.advance() {
			return false
		}
	}
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to t. Events scheduled after t remain pending. If an in-loop
// limit trips (Tripped non-nil) RunUntil returns immediately without
// advancing the clock, leaving the refused entry pending.
func (e *Engine) RunUntil(t Time) {
	for e.trip == nil {
		// Reap cancelled entries at the batch cursor eagerly so the
		// horizon check below sees the earliest *live* event (Step would
		// otherwise skip past a dead head and run an event beyond t).
		for e.bi < len(e.batch) && e.batch[e.bi].n.cancelled {
			e.pending--
			e.reap(e.batch[e.bi].n)
			e.bi++
		}
		if e.bi >= len(e.batch) {
			if !e.advance() {
				break
			}
			continue
		}
		if e.batch[e.bi].at > t {
			break
		}
		e.Step()
	}
	if e.trip != nil {
		return
	}
	if e.now < t {
		e.now = t
	}
}

// Reset returns the engine to its initial zero-time state — clock,
// causal context, step count and drain position at zero, no pending
// events — while
// keeping every warmed buffer: slot and batch capacities, the overflow
// heap's backing array, and the node free list (pending events are
// discarded and their nodes recycled). A reset engine is observationally
// identical to New(), so suite harnesses reuse engines across runs to
// skip the per-run pool and wheel warm-up (see internal/exp).
func (e *Engine) Reset() {
	for li := range e.levels {
		lv := &e.levels[li]
		if lv.count > 0 {
			for idx := range lv.slot {
				for _, ent := range lv.slot[idx] {
					e.reap(ent.n)
				}
				if s := lv.slot[idx]; len(s) > 0 {
					clear(s)
					lv.slot[idx] = s[:0]
				}
			}
		}
		lv.occ = [numSlots / 64]uint64{}
		lv.count = 0
	}
	for _, ent := range e.over {
		e.reap(ent.n)
	}
	clear(e.over)
	e.over = e.over[:0]
	for i := e.bi; i < len(e.batch); i++ {
		e.reap(e.batch[i].n)
	}
	clear(e.batch)
	e.batch = e.batch[:0]
	e.bi = 0
	e.now, e.nSteps, e.curTick, e.cascadedTo, e.pending = 0, 0, 0, 0, 0
	e.curHash, e.childIdx = 0, 0
	e.execHi, e.execLo = 0, 0
	e.lastAt, e.sameRun, e.stopSteps, e.maxSame, e.trip = 0, 0, 0, 0, nil
}

// less orders entries by the canonical key. It must agree with cmpEntry
// exactly (the property test cross-checks both); it is written out
// rather than delegating so the sort and heap hot paths inline it.
func (a entry) less(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.hi != b.hi {
		return a.hi < b.hi
	}
	return a.lo < b.lo
}

// overPush inserts an entry into the overflow heap and sifts it up.
func (e *Engine) overPush(ent entry) {
	h := append(e.over, ent)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.over = h
}

// overPop removes and returns the overflow heap's minimum entry.
func (e *Engine) overPop() entry {
	h := e.over
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = entry{}
	h = h[:last]
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && h[r].less(h[l]) {
			m = r
		}
		if !h[m].less(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.over = h
	return top
}
