package sim

// Timer is a reschedulable, pre-bound callback: the callback closure is
// captured once at construction, and arming, deferring, or stopping the
// timer allocates nothing in steady state. It is the tool for every
// "schedule-per-packet" or "reset-per-ACK" pattern that would otherwise
// heap-allocate a fresh closure and event each time (link serializers,
// transport pacing and RTO, HOMA resend, DCQCN rate timers).
//
// A Timer pushes deadline extensions lazily: re-arming an armed timer for
// a *later* instant just records the new deadline — the already-queued
// event fires early, notices the extension, and re-queues itself for the
// remainder. A retransmission timeout that is pushed back on every ACK
// therefore costs two field writes per ACK instead of a queue delete and
// re-insert.
//
// The laziness is deliberately wheel-granularity-agnostic: an extension
// never touches the queued entry, so it cannot re-bucket, cascade, or
// reorder anything regardless of how far the deadline moves or which
// wheel level holds the entry, and the eventual early fire re-queues at
// the exact extended deadline — timers keep picosecond-precise firing
// times even though wheel slots are ~8 ns wide. Re-arming *earlier* must
// replace the queued instance (a lazy early move would run the callback
// at the stale instant), which stays a cancel plus an O(1) wheel insert.
//
// Timers are not safe for concurrent use, like the Engine they run on.
type Timer struct {
	eng   *Engine
	fn    func() // user callback
	fire  func() // pre-bound onFire, allocated once
	ev    Event  // underlying queue instance, if any
	at    Time   // logical deadline while armed
	qat   Time   // when the queued instance fires (≤ at after lazy extension)
	armed bool
}

// NewTimer returns an unarmed timer that will run fn when it expires.
// The two closure allocations here (fn's capture and the bound onFire)
// are the timer's only allocations, ever.
func (e *Engine) NewTimer(fn func()) *Timer {
	t := &Timer{eng: e, fn: fn}
	t.fire = t.onFire
	return t
}

// Armed reports whether the timer is set to fire.
func (t *Timer) Armed() bool { return t.armed }

// Deadline returns the instant the timer will fire; valid while Armed.
func (t *Timer) Deadline() Time { return t.at }

// Arm schedules the callback for absolute time at, replacing any earlier
// deadline. Arming for the past fires at the current instant, after the
// callbacks already queued there.
func (t *Timer) Arm(at Time) {
	if at < t.eng.now {
		at = t.eng.now
	}
	t.at = at
	t.armed = true
	if t.ev.Scheduled() {
		if t.qat <= at {
			return // queued instance fires on/before the deadline; defer lazily
		}
		t.eng.Cancel(t.ev) // need to fire earlier than what is queued
	}
	t.ev = t.eng.At(at, t.fire)
	t.qat = at
}

// ArmAfter schedules the callback d from now.
func (t *Timer) ArmAfter(d Duration) {
	if d < 0 {
		d = 0
	}
	t.Arm(t.eng.now.Add(d))
}

// Stop disarms the timer. The callback will not run until the timer is
// armed again. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	t.armed = false
	t.eng.Cancel(t.ev)
	t.ev = Event{}
}

// onFire runs when the queued instance expires: either the logical
// deadline was extended past it (re-queue for the remainder) or the timer
// is genuinely due.
func (t *Timer) onFire() {
	t.ev = Event{}
	if !t.armed {
		return
	}
	if t.at > t.eng.now {
		t.ev = t.eng.At(t.at, t.fire)
		t.qat = t.at
		return
	}
	t.armed = false
	t.fn()
}
