package sim

import "math"

// This file is the cross-engine face of the canonical event order. The
// wheel itself (engine.go) ranks entries by (at, dsched, phash, k); the
// Key type and the operations here let an external coordinator —
// internal/psim's conservative-sync fabric — observe that order
// (PeekKey, ExecKey), bound execution by it (RunUntilKey), and extend
// the causal tree across engine boundaries (SetOrigin, ChildKey,
// InjectKey) so that a partitioned run fires every event in exactly the
// order a single serial engine would.

// originSalt seeds the hash of causal roots: events scheduled from
// outside any callback (scenario setup, probe installation, route-event
// registration) get phash = mix64(originSalt, key) where key is a
// stable entity-derived identifier supplied via SetOrigin. The salt
// separates the origin-hash domain from the identity-hash domain
// (mix64(parentHash, childIdx)) so a root cannot collide with a
// first-generation child of hash 0.
const originSalt = 0x9E3779B97F4A7C15

// mix64 combines a parent hash with a child discriminator into a new
// 64-bit hash (splitmix64 finalizer over the sum — fast, stateless, and
// well-distributed). It is the only hash in the causal-key scheme;
// collisions between two live same-instant events would make their
// relative order fall to the sort's tie-handling, a 2^-64-per-pair risk
// the design accepts (see PERF.md).
func mix64(h, x uint64) uint64 {
	z := h + 0x9E3779B97F4A7C15 + x*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// satDelta returns the scheduling distance at−now saturated to uint32
// (~4.29 ms in picoseconds). Saturation keeps the entry small and is
// partition-invariant: the distance is a property of the scheduling
// call itself, identical wherever the parent runs, so saturated values
// compare equal everywhere too. Events scheduled that far ahead (RTOs,
// failure schedules) are causally sparse — ties among them at the same
// instant fall through to (phash, k), which still orders totally.
func satDelta(t, now Time) uint32 {
	d := int64(t) - int64(now)
	if d >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(d)
}

// Key is an event's position in the canonical total order. Keys compare
// by (At ASC, DSched DESC, PHash ASC, K ASC) — see cmpEntry in
// engine.go for the single audited comparator; Less mirrors it.
type Key struct {
	At     Time
	PHash  uint64
	DSched uint32
	K      uint32
}

// Less reports whether k orders strictly before o in the canonical
// order.
func (k Key) Less(o Key) bool {
	return k.entry().less(o.entry())
}

// entry converts a Key to the packed entry layout (no node).
func (k Key) entry() entry {
	hi, lo := packKey(k.PHash, k.DSched, k.K)
	return entry{at: k.At, hi: hi, lo: lo}
}

// KeyBefore returns a bound that orders before every real event at time
// t: RunUntilKey(KeyBefore(t)) fires everything strictly before t and
// nothing at t.
func KeyBefore(t Time) Key {
	return Key{At: t, DSched: math.MaxUint32, PHash: 0, K: 0}
}

// KeyAtEnd returns a bound that orders after every real event at time
// t: RunUntilKey(KeyAtEnd(t)) fires everything at or before t.
func KeyAtEnd(t Time) Key {
	return Key{At: t, DSched: 0, PHash: math.MaxUint64, K: math.MaxUint32}
}

// SetOrigin establishes a causal root for events scheduled outside any
// callback: subsequent At/AtCall calls (until the next fired event or
// SetOrigin) stamp children with phash = mix64(originSalt, key) and
// child indices counting from zero. Callers pass a stable
// entity-derived key (flow launch counter, probe index, route-schedule
// constant) so the root hash — and therefore every descendant's
// position in the canonical order — is identical no matter which engine
// the call lands on. Scenario setup MUST use distinct keys per root;
// reusing a key across roots makes their children collide.
func (e *Engine) SetOrigin(key uint64) {
	e.curHash = mix64(originSalt, key)
	e.childIdx = 0
}

// ChildKey consumes one child slot of the current causal context and
// returns the canonical key a local event scheduled now for time t
// would have received — without creating any event. A cross-engine
// sender calls ChildKey at the send instant and ships the key with the
// message; the receiver schedules it via InjectKey, reproducing exactly
// the entry the serial engine would have placed. Symmetry with At is
// load-bearing: one send consumes one child index on the sender, one
// injected entry appears on the receiver, and the canonical key is the
// same as in the serial run where sender and receiver share an engine.
func (e *Engine) ChildKey(t Time) Key {
	k := Key{At: t, PHash: e.curHash, DSched: satDelta(t, e.now), K: e.childIdx}
	e.childIdx++
	return k
}

// InjectKey schedules fn(arg) under an explicit canonical key, as
// produced by ChildKey on another engine. Injection is only legal at or
// after the receiver's clock — the conservative-sync fabric guarantees
// this by bounding each engine's progress below incoming horizons; a
// violation panics just like past scheduling in At.
func (e *Engine) InjectKey(k Key, fn func(any), arg any) Event {
	n := e.take(k.At)
	n.afn = fn
	n.arg = arg
	e.pending++
	hi, lo := packKey(k.PHash, k.DSched, k.K)
	e.place(entry{at: k.At, hi: hi, lo: lo, n: n})
	return Event{n: n, gen: n.gen}
}

// ExecKey returns the canonical key of the event currently executing
// (or most recently executed). Record sinks tag appended data with it
// so a cross-partition merge can reconstruct the exact serial append
// order.
func (e *Engine) ExecKey() Key {
	ent := entry{at: e.now, hi: e.execHi, lo: e.execLo}
	return Key{At: e.now, PHash: ent.phash(), DSched: ent.dsched(), K: ent.k()}
}

// PeekKey returns the canonical key of the earliest live pending event,
// or ok=false when none remain. Peeking may rotate the wheel (loading
// the next slot into the firing batch and reaping cancelled heads) but
// fires nothing and never moves the clock.
func (e *Engine) PeekKey() (Key, bool) {
	for {
		for e.bi < len(e.batch) && e.batch[e.bi].n.cancelled {
			e.pending--
			e.reap(e.batch[e.bi].n)
			e.bi++
		}
		if e.bi < len(e.batch) {
			ent := e.batch[e.bi]
			return Key{At: ent.at, PHash: ent.phash(), DSched: ent.dsched(), K: ent.k()}, true
		}
		if !e.advance() {
			return Key{}, false
		}
	}
}

// RunUntilKey executes every event ordering strictly before bound, then
// advances the clock to bound.At. It is RunUntil generalized from a
// time bound to a canonical-order bound: the conservative-sync fabric
// uses it to stop a partition exactly at the next control event's key,
// so no partition fires past an instant where another engine's event
// interleaves. RunUntil(t) ≡ RunUntilKey(KeyAtEnd(t)).
func (e *Engine) RunUntilKey(bound Key) {
	for e.trip == nil {
		k, ok := e.PeekKey()
		if !ok || !k.Less(bound) {
			break
		}
		e.Step()
	}
	if e.trip != nil {
		// An in-loop limit stopped the engine: the refused entry stays
		// pending and the clock must not advance past it.
		return
	}
	if e.now < bound.At {
		e.now = bound.At
	}
}
