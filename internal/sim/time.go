package sim

import (
	"fmt"
	"time"
)

// Time is an absolute simulation timestamp in integer picoseconds since
// the start of the run. Picoseconds are fine enough to represent the
// serialization time of a single bit at 400 Gbps (2.5 ps) without
// rounding, and an int64 still covers over 106 days of simulated time.
type Time int64

// Duration is a span of simulated time in integer picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a sentinel for "no deadline". It is far enough in the future
// that no experiment reaches it.
const Forever Time = 1<<63 - 1

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the absolute timestamp into a Duration since time 0.
func (t Time) Duration() Duration { return Duration(t) }

// String formats t with nanosecond precision, e.g. "1.234567ms".
func (t Time) String() string { return Duration(t).String() }

// Seconds returns d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns d as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Std converts d to a time.Duration (nanosecond resolution, truncating).
func (d Duration) Std() time.Duration { return time.Duration(d / Nanosecond) }

// String formats the duration using Go's standard duration syntax at
// nanosecond resolution; sub-nanosecond remainders are printed as "+Nps".
func (d Duration) String() string {
	ns := d / Nanosecond
	ps := d % Nanosecond
	if ps == 0 {
		return time.Duration(ns).String()
	}
	return fmt.Sprintf("%s+%dps", time.Duration(ns), ps)
}

// Seconds builds a Duration from floating-point seconds.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Micros builds a Duration from floating-point microseconds.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Millis builds a Duration from floating-point milliseconds.
func Millis(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Nanos builds a Duration from integer nanoseconds.
func Nanos(ns int64) Duration { return Duration(ns) * Nanosecond }
