package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// The wheel-vs-heap equivalence property: randomized schedule / cancel /
// re-arm scripts executed on both the timing-wheel engine and the
// retired binary heap (referenceQueue) must fire in identical order.
// Delays are drawn across every wheel regime — same instant, sub-tick,
// level 0/1/2, and beyond the overflow horizon — and a slice of events
// schedule same-instant or near-future follow-ups from inside their
// callbacks, exercising the mid-drain batch insertion path.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runWheelVsHeapScript(t, seed)
		})
	}
}

// randomDelay spreads delays over the wheel's regimes.
func randomDelay(rng *rand.Rand) Duration {
	switch rng.Intn(6) {
	case 0:
		return 0 // same instant
	case 1:
		return Duration(rng.Int63n(8191)) // sub-tick (one wheel slot)
	case 2:
		return Duration(rng.Int63n(2_000)) * Nanosecond // level 0
	case 3:
		return Duration(rng.Int63n(500)) * Microsecond // level 1
	case 4:
		return Duration(rng.Int63n(130)) * Millisecond // level 2
	default:
		// Beyond the ~137 ms wheel horizon: overflow heap.
		return 140*Millisecond + Duration(rng.Int63n(300))*Millisecond
	}
}

func runWheelVsHeapScript(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const initial = 300

	type followup struct {
		d  Duration
		id int
	}
	followups := map[int][]followup{}
	nextID := initial

	e := New()
	q := &referenceQueue{}
	evs := map[int]Event{}
	refCancelled := map[int]bool{}

	var lastFired refEntry
	fireCount := 0
	var mkCb func(id int) func()
	mkCb = func(id int) func() {
		return func() {
			lastFired = refEntry{at: e.Now(), id: id}
			fireCount++
			for _, f := range followups[id] {
				evs[f.id] = e.At(e.Now().Add(f.d), mkCb(f.id))
			}
		}
	}

	// Schedule the initial events identically on both sides.
	for id := 0; id < initial; id++ {
		d := randomDelay(rng)
		at := Time(d)
		evs[id] = e.At(at, mkCb(id))
		q.schedule(at, id)
		// A third of the events spawn follow-ups when they fire: same
		// instant or near future, landing in the tick being drained, the
		// current wheel windows, or (rarely) the overflow heap.
		if rng.Intn(3) == 0 {
			n := 1 + rng.Intn(2)
			for k := 0; k < n; k++ {
				followups[id] = append(followups[id], followup{d: randomDelay(rng), id: nextID})
				nextID++
			}
		}
	}
	// Cancel a slice of them; re-arm another slice (cancel + reschedule —
	// the queue-level shape of a timer re-arm to an earlier deadline).
	for id := 0; id < initial; id++ {
		switch rng.Intn(8) {
		case 0, 1:
			e.Cancel(evs[id])
			refCancelled[id] = true
		case 2:
			e.Cancel(evs[id])
			refCancelled[id] = true
			d := randomDelay(rng)
			rearmed := nextID
			nextID++
			evs[rearmed] = e.At(Time(d), mkCb(rearmed))
			q.schedule(Time(d), rearmed)
		}
	}

	// Lockstep drain: every live reference pop must match the engine's
	// next fired event in both identity and timestamp.
	for {
		ent, ok := q.pop()
		if !ok {
			break
		}
		if refCancelled[ent.id] {
			continue
		}
		// The reference has no callbacks: apply the popped event's
		// follow-up scheduling here, mirroring what the engine's callback
		// did when it fired.
		before := fireCount
		if !e.Step() {
			t.Fatalf("engine ran dry; reference still holds id=%d at=%v", ent.id, ent.at)
		}
		if fireCount != before+1 {
			t.Fatalf("engine Step fired %d events, want exactly 1", fireCount-before)
		}
		if lastFired.id != ent.id || lastFired.at != ent.at {
			t.Fatalf("order diverged: engine fired id=%d at=%v, reference expects id=%d at=%v",
				lastFired.id, lastFired.at, ent.id, ent.at)
		}
		for _, f := range followups[ent.id] {
			q.schedule(ent.at.Add(f.d), f.id)
		}
	}
	if e.Step() {
		t.Fatalf("reference ran dry but engine fired id=%d at=%v", lastFired.id, lastFired.at)
	}
}
