package sim

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// The wheel-vs-heap equivalence property: randomized schedule / cancel /
// re-arm scripts executed on both the timing-wheel engine and the
// retired binary heap (referenceQueue) must fire in identical order.
// Delays are drawn across every wheel regime — same instant, sub-tick,
// level 0/1/2, and beyond the overflow horizon — and a slice of events
// schedule same-instant or near-future follow-ups from inside their
// callbacks, exercising the mid-drain batch insertion path. A further
// slice of follow-ups travel the cross-engine path (ChildKey +
// InjectKey instead of At), which must produce byte-identical keys and
// therefore identical firing order.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runWheelVsHeapScript(t, seed)
		})
	}
}

// randomDelay spreads delays over the wheel's regimes.
func randomDelay(rng *rand.Rand) Duration {
	switch rng.Intn(6) {
	case 0:
		return 0 // same instant
	case 1:
		return Duration(rng.Int63n(8191)) // sub-tick (one wheel slot)
	case 2:
		return Duration(rng.Int63n(2_000)) * Nanosecond // level 0
	case 3:
		return Duration(rng.Int63n(500)) * Microsecond // level 1
	case 4:
		return Duration(rng.Int63n(130)) * Millisecond // level 2
	default:
		// Beyond the ~137 ms wheel horizon: overflow heap.
		return 140*Millisecond + Duration(rng.Int63n(300))*Millisecond
	}
}

func runWheelVsHeapScript(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const initial = 300

	type followup struct {
		d        Duration
		id       int
		injected bool // schedule via ChildKey+InjectKey instead of At
	}
	followups := map[int][]followup{}
	nextID := initial

	e := New()
	q := &referenceQueue{}
	evs := map[int]Event{}
	refCancelled := map[int]bool{}

	var lastFired refEntry
	fireCount := 0
	var mkCb func(id int) func()
	mkCb = func(id int) func() {
		return func() {
			lastFired = refEntry{at: e.Now(), id: id}
			fireCount++
			for _, f := range followups[id] {
				at := e.Now().Add(f.d)
				if f.injected {
					// The cross-engine scheduling path, exercised within
					// one engine: consume the child slot explicitly and
					// inject under the resulting key. Must be
					// indistinguishable from e.At(at, ...) — the reference
					// mirrors it with a plain schedule.
					cb := mkCb(f.id)
					evs[f.id] = e.InjectKey(e.ChildKey(at), func(any) { cb() }, nil)
				} else {
					evs[f.id] = e.At(at, mkCb(f.id))
				}
			}
		}
	}

	// Schedule the initial events identically on both sides.
	for id := 0; id < initial; id++ {
		d := randomDelay(rng)
		at := Time(d)
		evs[id] = e.At(at, mkCb(id))
		q.schedule(at, id)
		// A third of the events spawn follow-ups when they fire: same
		// instant or near future, landing in the tick being drained, the
		// current wheel windows, or (rarely) the overflow heap. A quarter
		// of those take the injection path.
		if rng.Intn(3) == 0 {
			n := 1 + rng.Intn(2)
			for k := 0; k < n; k++ {
				followups[id] = append(followups[id], followup{
					d: randomDelay(rng), id: nextID, injected: rng.Intn(4) == 0,
				})
				nextID++
			}
		}
	}
	// A batch of events scheduled under an explicit causal origin, as
	// scenario setup does for flow launches and probes: SetOrigin must
	// reset the context identically on both sides.
	e.SetOrigin(uint64(seed))
	q.setOrigin(uint64(seed))
	for j := 0; j < 20; j++ {
		d := randomDelay(rng)
		id := nextID
		nextID++
		evs[id] = e.At(Time(d), mkCb(id))
		q.schedule(Time(d), id)
	}
	// Cancel a slice of them; re-arm another slice (cancel + reschedule —
	// the queue-level shape of a timer re-arm to an earlier deadline).
	for id := 0; id < initial; id++ {
		switch rng.Intn(8) {
		case 0, 1:
			e.Cancel(evs[id])
			refCancelled[id] = true
		case 2:
			e.Cancel(evs[id])
			refCancelled[id] = true
			d := randomDelay(rng)
			rearmed := nextID
			nextID++
			evs[rearmed] = e.At(Time(d), mkCb(rearmed))
			q.schedule(Time(d), rearmed)
		}
	}

	// Lockstep drain: every live reference pop must match the engine's
	// next fired event in both identity and timestamp.
	for {
		ent, ok := q.pop()
		if !ok {
			break
		}
		if refCancelled[ent.id] {
			continue
		}
		// The reference has no callbacks: apply the popped event's
		// follow-up scheduling here, mirroring what the engine's callback
		// did when it fired.
		before := fireCount
		if !e.Step() {
			t.Fatalf("engine ran dry; reference still holds id=%d at=%v", ent.id, ent.at)
		}
		if fireCount != before+1 {
			t.Fatalf("engine Step fired %d events, want exactly 1", fireCount-before)
		}
		if lastFired.id != ent.id || lastFired.at != ent.at {
			t.Fatalf("order diverged: engine fired id=%d at=%v, reference expects id=%d at=%v",
				lastFired.id, lastFired.at, ent.id, ent.at)
		}
		for _, f := range followups[ent.id] {
			q.schedule(ent.at.Add(f.d), f.id)
		}
	}
	if e.Step() {
		t.Fatalf("reference ran dry but engine fired id=%d at=%v", lastFired.id, lastFired.at)
	}
}

// fireRec is one fired event tagged with its canonical key.
type fireRec struct {
	key Key
	id  int
	at  Time
}

// TestCrossEngineInjectionMatchesSerial splits a two-region workload
// across two engines and checks that merging their fire logs by
// canonical key reproduces the serial single-engine firing order
// exactly — the core mechanism the partitioned runtime (internal/psim)
// relies on. Region A events schedule deliveries into region B at a
// fixed positive latency; serially the delivery is a plain At, split it
// is ChildKey on A's engine shipped to an InjectKey on B's. Both runs
// seed their roots through SetOrigin with the same entity keys, so
// every causal hash — and therefore the merged order — must coincide.
func TestCrossEngineInjectionMatchesSerial(t *testing.T) {
	const (
		rootsA  = 40
		rootsB  = 40
		latency = 3 * Microsecond
		originA = uint64(1) << 32
		originB = uint64(2) << 32
	)

	// build wires the workload onto engA (region A) and engB (region B);
	// serially both are the same engine and send posts with At. send is
	// called from inside an A callback to deliver cb into region B at
	// time at.
	build := func(engA, engB *Engine, log *[]fireRec, send func(at Time, id int)) {
		var fire func(eng *Engine, id, depth int, isA bool) func()
		fire = func(eng *Engine, id, depth int, isA bool) func() {
			return func() {
				*log = append(*log, fireRec{key: eng.ExecKey(), id: id, at: eng.Now()})
				if depth >= 3 {
					return
				}
				// Deterministic fan-out derived from id: local follow-ups
				// plus, for region-A events, a cross-region delivery.
				if id%2 == 0 {
					eng.At(eng.Now().Add(Duration(id%7)*100*Nanosecond), fire(eng, id*10+1, depth+1, isA))
				}
				if id%3 == 0 && isA {
					send(eng.Now().Add(latency), id*10+2)
				}
			}
		}
		for i := 0; i < rootsA; i++ {
			engA.SetOrigin(originA + uint64(i))
			engA.At(Time(i)*Time(500*Nanosecond), fire(engA, 2+i*4, 0, true))
		}
		for i := 0; i < rootsB; i++ {
			engB.SetOrigin(originB + uint64(i))
			engB.At(Time(i)*Time(700*Nanosecond), fire(engB, 3+i*4, 0, false))
		}
	}

	// Serial: one engine, deliveries are plain At calls in the same
	// causal slot.
	var serialLog []fireRec
	var serial *Engine
	var serialFire func(id int) func()
	serialFire = func(id int) func() {
		return func() {
			serialLog = append(serialLog, fireRec{key: serial.ExecKey(), id: id, at: serial.Now()})
		}
	}
	serial = New()
	build(serial, serial, &serialLog, func(at Time, id int) {
		serial.At(at, serialFire(id))
	})
	serial.Run()

	// Split: deliveries consume a child slot on A and inject into B.
	// A only sends to B, so run A to completion first, then deliver the
	// collected messages in creation order and run B — a degenerate but
	// valid conservative schedule for a one-directional cut.
	engA, engB := New(), New()
	var logA, logB []fireRec
	type msg struct {
		key Key
		id  int
	}
	var mail []msg
	var splitFire func(id int) func()
	splitFire = func(id int) func() {
		return func() {
			logB = append(logB, fireRec{key: engB.ExecKey(), id: id, at: engB.Now()})
		}
	}
	build(engA, engB, &logA, func(at Time, id int) {
		mail = append(mail, msg{key: engA.ChildKey(at), id: id})
	})
	engA.Run()
	for _, m := range mail {
		m := m
		engB.InjectKey(m.key, func(any) { splitFire(m.id)() }, nil)
	}
	engB.Run()

	// Merge by canonical key and compare with the serial order.
	merged := append(append([]fireRec{}, logA...), logB...)
	slices.SortStableFunc(merged, func(a, b fireRec) int {
		if a.key.Less(b.key) {
			return -1
		}
		if b.key.Less(a.key) {
			return 1
		}
		return 0
	})
	if len(merged) != len(serialLog) {
		t.Fatalf("split run fired %d events, serial fired %d", len(merged), len(serialLog))
	}
	for i := range merged {
		if merged[i].id != serialLog[i].id || merged[i].at != serialLog[i].at ||
			merged[i].key != serialLog[i].key {
			t.Fatalf("order diverged at %d: split (id=%d at=%v key=%+v) vs serial (id=%d at=%v key=%+v)",
				i, merged[i].id, merged[i].at, merged[i].key,
				serialLog[i].id, serialLog[i].at, serialLog[i].key)
		}
	}
}
