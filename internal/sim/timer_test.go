package sim

import "testing"

func TestTimerFires(t *testing.T) {
	e := New()
	fired := 0
	tm := e.NewTimer(func() { fired++ })
	tm.ArmAfter(Microsecond)
	if !tm.Armed() {
		t.Fatal("timer not armed")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
	if e.Now() != Time(Microsecond) {
		t.Fatalf("fired at %v, want 1µs", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := false
	tm := e.NewTimer(func() { fired = true })
	tm.ArmAfter(Microsecond)
	tm.Stop()
	tm.Stop() // double stop is a no-op
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

// Extending an armed timer's deadline must defer the callback to the new
// instant — and fire exactly once there, not at the original deadline.
func TestTimerLazyExtension(t *testing.T) {
	e := New()
	var at []Time
	tm := e.NewTimer(func() { at = append(at, e.Now()) })
	tm.ArmAfter(Microsecond)
	tm.Arm(Time(5 * Microsecond)) // push back: lazy, no heap rebuild
	e.Run()
	if len(at) != 1 || at[0] != Time(5*Microsecond) {
		t.Fatalf("fired at %v, want exactly once at 5µs", at)
	}
}

// Re-arming for an earlier instant must replace the queued deadline.
func TestTimerRearmEarlier(t *testing.T) {
	e := New()
	var at []Time
	tm := e.NewTimer(func() { at = append(at, e.Now()) })
	tm.Arm(Time(5 * Microsecond))
	tm.Arm(Time(2 * Microsecond))
	e.Run()
	if len(at) != 1 || at[0] != Time(2*Microsecond) {
		t.Fatalf("fired at %v, want exactly once at 2µs", at)
	}
}

// A timer re-armed from its own callback keeps running (periodic use).
func TestTimerPeriodicSelfRearm(t *testing.T) {
	e := New()
	var tm *Timer
	ticks := 0
	tm = e.NewTimer(func() {
		ticks++
		if ticks < 5 {
			tm.ArmAfter(Microsecond)
		}
	})
	tm.ArmAfter(Microsecond)
	e.Run()
	if ticks != 5 {
		t.Fatalf("ticked %d times, want 5", ticks)
	}
	if e.Now() != Time(5*Microsecond) {
		t.Fatalf("finished at %v, want 5µs", e.Now())
	}
}

// Stop-then-rearm across a pending instance: the stale instance must not
// fire the callback at its old deadline.
func TestTimerStopRearm(t *testing.T) {
	e := New()
	var at []Time
	tm := e.NewTimer(func() { at = append(at, e.Now()) })
	tm.Arm(Time(Microsecond))
	tm.Stop()
	tm.Arm(Time(3 * Microsecond))
	e.Run()
	if len(at) != 1 || at[0] != Time(3*Microsecond) {
		t.Fatalf("fired at %v, want exactly once at 3µs", at)
	}
}

// Arming for the past clamps to now and fires in the current pass.
func TestTimerArmInPast(t *testing.T) {
	e := New()
	fired := false
	tm := e.NewTimer(func() { fired = true })
	e.After(Microsecond, func() { tm.Arm(0) })
	e.Run()
	if !fired {
		t.Fatal("past-armed timer never fired")
	}
}

// The timer hot path — arm, fire, re-arm, extend — must not allocate in
// steady state. This is the engine-side half of the tentpole's
// zero-allocation guarantee (the link.Port half lives in internal/link).
func TestTimerZeroAllocSteadyState(t *testing.T) {
	e := New()
	var tm *Timer
	tm = e.NewTimer(func() {})
	cycle := func() {
		tm.ArmAfter(Microsecond)
		tm.ArmAfter(2 * Microsecond) // lazy extension
		e.Run()
		tm.ArmAfter(Microsecond)
		tm.Stop()
		tm.ArmAfter(Microsecond) // fresh instance while a dead one queues
		e.Run()
	}
	// Warm up the pool and the wheel. Arming walks the clock forward and
	// the wheel sizes each slot's entry array on first touch, so the
	// warm-up repeats the measured cycle often enough to visit every slot
	// residue the cycle's stride will ever land in.
	for i := 0; i < 256; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs > 0.5 {
		t.Fatalf("timer path allocates %.1f allocs/run, want 0", allocs)
	}
}
