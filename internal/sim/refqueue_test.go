package sim

// referenceQueue is the binary-heap event queue the timing wheel
// replaced (PR 2's hand-rolled value-entry heap), kept as the ordering
// oracle for the equivalence property test: any schedule/cancel/re-arm
// script must fire in exactly the same order on both implementations.
// It carries the same canonical key (at, dsched, phash, k) and mirrors
// the engine's causal scheduling context — popping an entry makes it
// the parent of whatever is scheduled next, exactly as firing does on
// the engine. It lives in a test file on purpose — production code has
// exactly one queue.
type referenceQueue struct {
	heap     []refEntry
	now      Time
	curHash  uint64
	childIdx uint32
}

type refEntry struct {
	at     Time
	phash  uint64
	dsched uint32
	k      uint32
	id     int
}

// schedule enqueues event id at time t, deriving the canonical key from
// the mirrored causal context exactly as Engine.At does.
func (q *referenceQueue) schedule(t Time, id int) {
	if t < q.now {
		panic("referenceQueue: event scheduled in the past")
	}
	q.push(refEntry{at: t, phash: q.curHash, dsched: satDelta(t, q.now), k: q.childIdx, id: id})
	q.childIdx++
}

// scheduleKey enqueues event id under an explicit canonical key,
// mirroring Engine.InjectKey.
func (q *referenceQueue) scheduleKey(k Key, id int) {
	if k.At < q.now {
		panic("referenceQueue: event scheduled in the past")
	}
	q.push(refEntry{at: k.At, phash: k.PHash, dsched: k.DSched, k: k.K, id: id})
}

// setOrigin mirrors Engine.SetOrigin.
func (q *referenceQueue) setOrigin(key uint64) {
	q.curHash = mix64(originSalt, key)
	q.childIdx = 0
}

// less mirrors cmpEntry's (at ASC, dsched DESC, phash ASC, k ASC).
func (a refEntry) less(b refEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.dsched != b.dsched {
		return a.dsched > b.dsched
	}
	if a.phash != b.phash {
		return a.phash < b.phash
	}
	return a.k < b.k
}

func (q *referenceQueue) push(ent refEntry) {
	h := append(q.heap, ent)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	q.heap = h
}

// pop removes and returns the minimum entry, advancing the clock and
// the causal context: the popped entry becomes the parent of subsequent
// schedule calls, as on the engine.
func (q *referenceQueue) pop() (refEntry, bool) {
	if len(q.heap) == 0 {
		return refEntry{}, false
	}
	h := q.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && h[r].less(h[l]) {
			m = r
		}
		if !h[m].less(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	q.heap = h
	q.now = top.at
	q.curHash = mix64(top.phash, uint64(top.k))
	q.childIdx = 0
	return top, true
}
