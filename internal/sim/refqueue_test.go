package sim

// referenceQueue is the binary-heap event queue the timing wheel
// replaced (PR 2's hand-rolled value-entry heap), kept as the ordering
// oracle for the equivalence property test: any schedule/cancel/re-arm
// script must fire in exactly the same order on both implementations.
// It lives in a test file on purpose — production code has exactly one
// queue.
type referenceQueue struct {
	heap []refEntry
	seq  uint64
	now  Time
}

type refEntry struct {
	at  Time
	seq uint64
	id  int
}

// schedule enqueues event id at time t, mirroring Engine.At's (at, seq)
// keying.
func (q *referenceQueue) schedule(t Time, id int) {
	if t < q.now {
		panic("referenceQueue: event scheduled in the past")
	}
	q.push(refEntry{at: t, seq: q.seq, id: id})
	q.seq++
}

func (a refEntry) less(b refEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *referenceQueue) push(ent refEntry) {
	h := append(q.heap, ent)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	q.heap = h
}

// pop removes and returns the minimum entry, advancing the clock.
func (q *referenceQueue) pop() (refEntry, bool) {
	if len(q.heap) == 0 {
		return refEntry{}, false
	}
	h := q.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && h[r].less(h[l]) {
			m = r
		}
		if !h[m].less(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	q.heap = h
	q.now = top.at
	return top, true
}
