// Package sim provides the deterministic discrete-event simulation
// engine every experiment runs on: a picosecond-resolution clock and a
// hierarchical timing wheel of scheduled events (with a small overflow
// heap for the far future).
//
// # Role in the stack
//
// sim is the bottom layer. links, switches, transports and experiment
// runners all schedule callbacks here; nothing in the engine knows about
// packets or networks.
//
// # Invariants
//
//   - Single-threaded by design: one goroutine drives the wheel, so
//     reproducible event ordering is structural, not locked-in. Ties in
//     event time are broken by scheduling order; two runs with the same
//     seed are byte-identical on every platform. Run concurrent
//     simulations on separate Engines (the exp.Suite does exactly that).
//   - Exact (at, seq) total order, wheel or not: a slot drains as one
//     batch sorted by timestamp-then-scheduling-order, so bucketing by
//     tick never reorders events — the property test pins the firing
//     order to the retired binary heap's.
//   - The steady-state hot path allocates nothing: event nodes are
//     recycled through a free list with generation counters, so an Event
//     handle to recycled storage goes stale instead of aliasing a new
//     event. Cancel is lazy mark-and-skip (no wheel surgery), and
//     schedule/fire are O(1) slot appends and batch reads rather than
//     O(log n) sifts.
//   - Once an event has fired or been reaped its handle is inert:
//     Scheduled and Cancelled report false and Cancel is a no-op.
//   - Timer is the re-armable variant for long-lived callbacks (pacing,
//     RTO, serializers): allocated once, deadline extensions are lazy
//     field writes — wheel-granularity-agnostic, because the extension
//     never moves the queued entry — never a delete + insert.
//
// See PERF.md at the repository root for the wheel layout, the
// determinism argument, and the full pooling contract.
package sim
