// Package sim provides the deterministic discrete-event simulation
// engine every experiment runs on: a picosecond-resolution clock and a
// binary heap of scheduled events.
//
// # Role in the stack
//
// sim is the bottom layer. links, switches, transports and experiment
// runners all schedule callbacks here; nothing in the engine knows about
// packets or networks.
//
// # Invariants
//
//   - Single-threaded by design: one goroutine drives the heap, so
//     reproducible event ordering is structural, not locked-in. Ties in
//     event time are broken by scheduling order; two runs with the same
//     seed are byte-identical on every platform. Run concurrent
//     simulations on separate Engines (the exp.Suite does exactly that).
//   - The steady-state hot path allocates nothing: event nodes are
//     recycled through a free list with generation counters, so an Event
//     handle to recycled storage goes stale instead of aliasing a new
//     event. Cancel is lazy mark-and-skip (no heap surgery).
//   - Once an event has fired or been reaped its handle is inert:
//     Scheduled and Cancelled report false and Cancel is a no-op.
//   - Timer is the re-armable variant for long-lived callbacks (pacing,
//     RTO, serializers): allocated once, deadline extensions are lazy
//     field writes, never a heap delete + insert.
//
// See PERF.md at the repository root for the full pooling contract.
package sim
