// Package cc defines the congestion-control interface shared by every
// algorithm in the repository and implements the sender-based baselines
// the paper compares against: HPCC, TIMELY, DCQCN and Swift, plus a
// fixed-window reference. The paper's own contribution — PowerTCP and
// θ-PowerTCP — lives in internal/core and implements the same interface.
//
// All algorithms are driven per acknowledgment, exactly like the NIC/
// kernel deployments the paper targets: the transport calls OnAck with
// the measured RTT, the echoed INT stack, and bookkeeping about what the
// ACK covered, and reads back a window (bytes) and a pacing rate.
package cc

import (
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Limits carries the static per-flow configuration every algorithm needs.
type Limits struct {
	BaseRTT  sim.Duration  // τ: configured base round-trip time (§3.3)
	HostRate units.BitRate // NIC line rate at the sender
	MSS      int64         // maximum payload per packet
	Engine   *sim.Engine   // for algorithms that need timers (DCQCN)
}

// BDP returns the host bandwidth-delay product in bytes, the paper's
// cwnd_init = HostBw × τ (§3.3 "Parameters").
func (l Limits) BDP() float64 { return float64(l.HostRate.BDP(l.BaseRTT)) }

// Ack is the per-acknowledgment feedback handed to an algorithm.
type Ack struct {
	Now        sim.Time
	AckSeq     int64                 // cumulative sequence acknowledged
	NewlyAcked int64                 // bytes this ACK newly acknowledged
	SndNxt     int64                 // sender's next sequence (per-RTT bookkeeping)
	RTT        sim.Duration          // sample measured from the echoed timestamp
	ECNEcho    bool                  // acknowledged packet had CE set
	Hops       []telemetry.HopRecord // INT stack collected round-trip
}

// Algorithm is a congestion-control law. Implementations are per-flow and
// not safe for concurrent use (the simulator is single-threaded).
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Init is called once before any traffic with the flow's limits.
	Init(lim Limits)
	// OnAck processes one acknowledgment.
	OnAck(a Ack)
	// OnLoss signals a retransmission event (timeout or fast retransmit).
	OnLoss(now sim.Time)
	// Cwnd returns the current congestion window in bytes.
	Cwnd() float64
	// Rate returns the pacing rate. Zero means unpaced.
	Rate() units.BitRate
}

// CNPHandler is implemented by algorithms driven by explicit congestion
// notification packets (DCQCN).
type CNPHandler interface {
	OnCNP(now sim.Time)
}

// WantsECT reports whether the algorithm needs its data packets marked
// ECN-capable. Algorithms advertise it by implementing interface{ ECT() bool }.
func WantsECT(a Algorithm) bool {
	e, ok := a.(interface{ ECT() bool })
	return ok && e.ECT()
}

// Builder constructs a fresh per-flow Algorithm instance.
type Builder func() Algorithm

// clamp bounds a window to [lo, hi].
func clamp(w, lo, hi float64) float64 {
	if w < lo {
		return lo
	}
	if w > hi {
		return hi
	}
	return w
}

// windowRate converts a window into the paper's pacing rule rate = cwnd/τ,
// rounding to the nearest bit/s so exact windows map to exact rates.
func windowRate(cwnd float64, baseRTT sim.Duration, lineRate units.BitRate) units.BitRate {
	r := units.BitRate(cwnd*8/baseRTT.Seconds() + 0.5)
	return units.MinRate(r, lineRate)
}

// FixedWindow is a reference algorithm with a constant window, used by
// tests and by reTCP's packet-network mode.
type FixedWindow struct {
	Window float64 // bytes; 0 means one BDP
	lim    Limits
}

// Name implements Algorithm.
func (f *FixedWindow) Name() string { return "fixed" }

// Init implements Algorithm.
func (f *FixedWindow) Init(lim Limits) {
	f.lim = lim
	if f.Window == 0 {
		f.Window = lim.BDP()
	}
}

// OnAck implements Algorithm (no reaction).
func (f *FixedWindow) OnAck(Ack) {}

// OnLoss implements Algorithm (no reaction).
func (f *FixedWindow) OnLoss(sim.Time) {}

// Cwnd implements Algorithm.
func (f *FixedWindow) Cwnd() float64 { return f.Window }

// Rate implements Algorithm.
func (f *FixedWindow) Rate() units.BitRate {
	return windowRate(f.Window, f.lim.BaseRTT, f.lim.HostRate)
}
