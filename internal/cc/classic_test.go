package cc

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestDCTCPAlphaTracksMarking(t *testing.T) {
	d := NewDCTCP()
	d.Init(lims())
	if !WantsECT(d) {
		t.Fatal("DCTCP must be ECN-capable")
	}
	// One full window of fully marked ACKs → α moves toward 1 and the
	// window is cut.
	w0 := d.Cwnd()
	d.OnAck(Ack{AckSeq: 50_000, SndNxt: 100_000, NewlyAcked: 50_000, ECNEcho: true})
	d.OnAck(Ack{AckSeq: 110_000, SndNxt: 200_000, NewlyAcked: 60_000, ECNEcho: true})
	if d.Alpha() <= 0 {
		t.Fatalf("alpha = %v after marked window", d.Alpha())
	}
	if d.Cwnd() >= w0 {
		t.Fatalf("cwnd did not decrease under marking: %v", d.Cwnd())
	}
}

func TestDCTCPNoCutWithoutMarks(t *testing.T) {
	d := NewDCTCP()
	d.Init(lims())
	d.cwnd = 100_000
	d.OnAck(Ack{AckSeq: 50_000, SndNxt: 90_000, NewlyAcked: 50_000})
	d.OnAck(Ack{AckSeq: 95_000, SndNxt: 180_000, NewlyAcked: 45_000})
	if d.Cwnd() <= 100_000 {
		t.Fatalf("unmarked window must grow: %v", d.Cwnd())
	}
	if d.Alpha() != 0 {
		t.Fatalf("alpha = %v with no marks", d.Alpha())
	}
}

func TestDCTCPProportionalReaction(t *testing.T) {
	// A lightly marked window cuts less than a fully marked one.
	run := func(markEvery int) float64 {
		d := NewDCTCP()
		d.Init(lims())
		seq := int64(0)
		for w := 0; w < 20; w++ { // several observation windows
			for i := 0; i < 10; i++ {
				seq += 10_000
				d.OnAck(Ack{
					AckSeq: seq, SndNxt: seq + 100_000, NewlyAcked: 10_000,
					ECNEcho: markEvery > 0 && i%markEvery == 0,
				})
			}
		}
		return d.Cwnd()
	}
	light := run(10) // 10% of bytes marked
	heavy := run(1)  // 100% marked
	if heavy >= light {
		t.Fatalf("heavier marking must cut deeper: light %v vs heavy %v", light, heavy)
	}
}

func TestRenoSlowStartThenAvoidance(t *testing.T) {
	r := NewReno()
	r.Init(lims())
	if r.Rate() != 0 {
		t.Fatal("Reno must be ACK-clocked (Rate 0)")
	}
	w0 := r.Cwnd() // 10 MSS
	r.OnAck(Ack{NewlyAcked: int64(w0)})
	if got := r.Cwnd(); got < 2*w0-1 {
		t.Fatalf("slow start: cwnd %v after acking a window, want ≈2×%v", got, w0)
	}
	// Loss: halve and leave slow start.
	r.OnLoss(0)
	w1 := r.Cwnd()
	if w1 >= 2*w0 {
		t.Fatalf("loss did not halve: %v", w1)
	}
	// Now additive: acking a full window adds ≈1 MSS.
	r.OnAck(Ack{NewlyAcked: int64(w1)})
	gain := r.Cwnd() - w1
	if gain < 900 || gain > 1100 {
		t.Fatalf("congestion avoidance gain = %v, want ≈1 MSS", gain)
	}
}

func TestRenoLossFloor(t *testing.T) {
	r := NewReno()
	r.Init(lims())
	for i := 0; i < 30; i++ {
		r.OnLoss(sim.Time(i))
	}
	if r.Cwnd() < 2*1000 || math.IsNaN(r.Cwnd()) {
		t.Fatalf("repeated loss drove cwnd to %v", r.Cwnd())
	}
}
