package cc

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func lims() Limits {
	return Limits{BaseRTT: 20 * sim.Microsecond, HostRate: 100 * units.Gbps, MSS: 1000}
}

func hop(q int64, tx uint64, at sim.Duration) telemetry.HopRecord {
	return telemetry.HopRecord{QLen: q, TxBytes: tx, TS: sim.Time(at), Rate: 100 * units.Gbps}
}

func TestFixedWindowDefaults(t *testing.T) {
	f := &FixedWindow{}
	f.Init(lims())
	if f.Cwnd() != 250_000 {
		t.Fatalf("fixed window default = %v, want BDP", f.Cwnd())
	}
	if f.Rate() != 100*units.Gbps {
		t.Fatalf("fixed rate = %v", f.Rate())
	}
}

func TestWantsECT(t *testing.T) {
	if WantsECT(&FixedWindow{}) {
		t.Fatal("fixed window claims ECT")
	}
	if !WantsECT(NewDCQCN()) {
		t.Fatal("DCQCN must want ECT")
	}
}

func TestHPCCBelowTargetAdditive(t *testing.T) {
	h := NewHPCC()
	h.Init(lims())
	const dt = 10 * sim.Microsecond
	half := uint64((50 * units.Gbps).Bytes(dt))
	h.OnAck(Ack{AckSeq: 1, SndNxt: 2, Hops: []telemetry.HopRecord{hop(0, 0, 0)}})
	w0 := h.Cwnd()
	h.OnAck(Ack{AckSeq: 2, SndNxt: 3, Hops: []telemetry.HopRecord{hop(0, half, dt)}})
	// U ≈ 0.75 (EWMA of 1 and 0.5) stays below η=0.95... after enough
	// samples utilization drops and additive increase applies — but the
	// window is already at Winit, so it cannot exceed the cap.
	if h.Cwnd() > w0 {
		t.Fatalf("window exceeded Winit cap: %v > %v", h.Cwnd(), w0)
	}
	if h.Util() >= 1 {
		t.Fatalf("util = %v, want <1 at half load", h.Util())
	}
}

func TestHPCCOverloadMultiplicativeDecrease(t *testing.T) {
	h := NewHPCC()
	h.Init(lims())
	const dt = 10 * sim.Microsecond
	full := uint64((100 * units.Gbps).Bytes(dt))
	h.OnAck(Ack{AckSeq: 1, SndNxt: 2, Hops: []telemetry.HopRecord{hop(0, 0, 0)}})
	h.OnAck(Ack{AckSeq: 2, SndNxt: 3, Hops: []telemetry.HopRecord{hop(500_000, full, dt)}})
	// qlen/(bτ) = 500000/250000 = 2 plus txRate/b = 1 → U' = 3; smoothed
	// U = (1·10+3·10)/20 = 2 → W ≈ Wc/(2/0.95) ≈ 0.475·Winit + WAI.
	if h.Cwnd() > 0.55*250_000 || h.Cwnd() < 0.4*250_000 {
		t.Fatalf("HPCC window = %v, want ≈0.48·Winit", h.Cwnd())
	}
}

func TestHPCCReferenceWindowPerRTT(t *testing.T) {
	h := NewHPCC()
	h.Init(lims())
	const dt = sim.Microsecond
	full := uint64((100 * units.Gbps).Bytes(dt))
	h.OnAck(Ack{AckSeq: 1, SndNxt: 900_000, Hops: []telemetry.HopRecord{hop(0, 0, 0)}})
	h.OnAck(Ack{AckSeq: 2, SndNxt: 900_000, Hops: []telemetry.HopRecord{hop(500_000, full, dt)}})
	wcAfterFirst := h.wc
	// Second congested ACK within the same RTT: W recomputes from the
	// same Wc rather than compounding.
	h.OnAck(Ack{AckSeq: 3, SndNxt: 900_000, Hops: []telemetry.HopRecord{hop(500_000, 2*full, 2*dt)}})
	if h.wc != wcAfterFirst {
		t.Fatalf("Wc moved within an RTT: %v → %v", wcAfterFirst, h.wc)
	}
}

func TestTimelyGuardRails(t *testing.T) {
	tm := NewTimely()
	tm.Init(lims())
	tm.rate = 50 * units.Gbps
	// Below TLow: additive increase regardless of gradient.
	tm.OnAck(Ack{Now: 0, RTT: 20 * sim.Microsecond, AckSeq: 1, SndNxt: 2})
	tm.OnAck(Ack{Now: 1000, RTT: 30 * sim.Microsecond, AckSeq: 2, SndNxt: 3})
	if tm.Rate() != 50*units.Gbps+30*units.Mbps {
		t.Fatalf("rate below TLow = %v, want +δ", tm.Rate())
	}
	// Above THigh: multiplicative decrease.
	tm2 := NewTimely()
	tm2.Init(lims())
	tm2.rate = 50 * units.Gbps
	tm2.OnAck(Ack{Now: 0, RTT: 400 * sim.Microsecond, AckSeq: 1, SndNxt: 2})
	tm2.OnAck(Ack{Now: 1000, RTT: 1000 * sim.Microsecond, AckSeq: 2, SndNxt: 3})
	if tm2.Rate() >= 50*units.Gbps {
		t.Fatalf("rate above THigh did not decrease: %v", tm2.Rate())
	}
}

func TestTimelyGradientReaction(t *testing.T) {
	tm := NewTimely()
	tm.Init(lims())
	tm.rate = 50 * units.Gbps
	// RTTs between the guard rails with a positive gradient → decrease.
	rtts := []sim.Duration{100, 140, 180, 220}
	for i, us := range rtts {
		tm.OnAck(Ack{Now: sim.Time(i * 1000), RTT: us * sim.Microsecond,
			AckSeq: int64(i), SndNxt: int64(i) + 1})
	}
	if tm.Rate() >= 50*units.Gbps {
		t.Fatalf("positive gradient did not reduce rate: %v", tm.Rate())
	}
	// Negative gradient between the rails → increase (eventually HAI).
	tm2 := NewTimely()
	tm2.Init(lims())
	tm2.rate = 10 * units.Gbps
	rtts2 := []sim.Duration{300, 280, 260, 240, 220, 200, 180, 160}
	for i, us := range rtts2 {
		tm2.OnAck(Ack{Now: sim.Time(i * 1000), RTT: us * sim.Microsecond,
			AckSeq: int64(i), SndNxt: int64(i) + 1})
	}
	if tm2.Rate() <= 10*units.Gbps {
		t.Fatalf("negative gradient did not raise rate: %v", tm2.Rate())
	}
}

func TestDCQCNCutAndRecovery(t *testing.T) {
	eng := sim.New()
	d := NewDCQCN()
	l := lims()
	l.Engine = eng
	d.Init(l)
	if d.Rate() != 100*units.Gbps {
		t.Fatalf("initial rate = %v", d.Rate())
	}
	d.OnCNP(0)
	// α=1 at the first CNP → rate halves; α stays at 1 (the CNP update
	// (1−g)·α + g is a fixed point at 1 and only the timer decays it).
	if d.Rate() != 50*units.Gbps {
		t.Fatalf("rate after first CNP = %v, want 50G", d.Rate())
	}
	if a := d.Alpha(); a != 1 {
		t.Fatalf("alpha after first CNP = %v, want 1", a)
	}
	// Without further CNPs the increase timer drives fast recovery back
	// toward the 100G target.
	eng.RunUntil(sim.Time(400 * sim.Microsecond))
	if d.Rate() < 90*units.Gbps {
		t.Fatalf("fast recovery stalled at %v", d.Rate())
	}
	d.Stop()
}

func TestDCQCNAlphaDecays(t *testing.T) {
	eng := sim.New()
	d := NewDCQCN()
	l := lims()
	l.Engine = eng
	d.Init(l)
	d.OnCNP(0)
	a0 := d.Alpha()
	eng.RunUntil(sim.Time(300 * sim.Microsecond))
	if d.Alpha() >= a0 {
		t.Fatalf("alpha did not decay: %v → %v", a0, d.Alpha())
	}
	d.Stop()
}

func TestSwiftAIMD(t *testing.T) {
	s := NewSwift()
	s.Init(lims())
	s.cwnd = 100_000
	// Below target: additive increase.
	s.OnAck(Ack{Now: 0, RTT: 20 * sim.Microsecond, NewlyAcked: 1000})
	if s.Cwnd() <= 100_000 {
		t.Fatalf("Swift did not increase below target: %v", s.Cwnd())
	}
	// Far above target: multiplicative decrease, bounded by MaxMDF.
	w := s.Cwnd()
	s.OnAck(Ack{Now: 1000, RTT: 200 * sim.Microsecond, NewlyAcked: 1000})
	if s.Cwnd() >= w {
		t.Fatal("Swift did not decrease above target")
	}
	if s.Cwnd() < w*(1-s.MaxMDF)-1 {
		t.Fatalf("Swift decrease exceeded MaxMDF: %v → %v", w, s.Cwnd())
	}
}

func TestSwiftOneDecreasePerRTT(t *testing.T) {
	s := NewSwift()
	s.Init(lims())
	s.cwnd = 100_000
	s.OnAck(Ack{Now: 0, RTT: 100 * sim.Microsecond, NewlyAcked: 1000})
	w := s.Cwnd()
	// Immediately after (same RTT): no second cut.
	s.OnAck(Ack{Now: sim.Time(sim.Microsecond), RTT: 100 * sim.Microsecond, NewlyAcked: 1000})
	if s.Cwnd() < w {
		t.Fatalf("Swift cut twice in one RTT: %v → %v", w, s.Cwnd())
	}
}
