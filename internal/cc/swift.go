package cc

import (
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// Swift implements the essentials of Swift (Kumar et al., SIGCOMM 2020),
// TIMELY's voltage-based successor referenced throughout §2: AIMD on a
// delay target with per-RTT-bounded multiplicative decrease. Included as
// an additional baseline and for the voltage/current taxonomy ablation;
// the paper's figures use TIMELY.
type Swift struct {
	// TargetFactor sets the delay target as a multiple of τ (default 1.25).
	TargetFactor float64
	// AI is the additive increase in packets per RTT (default 1).
	AI float64
	// Beta is the multiplicative-decrease gain (default 0.8).
	Beta float64
	// MaxMDF bounds a single decrease (default 0.5).
	MaxMDF float64
	// MinCwnd floors the window in bytes (default 100).
	MinCwnd float64

	lim       Limits
	cwnd      float64
	lastDecAt sim.Time
	canDec    bool
	target    sim.Duration
}

// NewSwift returns a Swift instance with published defaults.
func NewSwift() *Swift { return &Swift{} }

// SwiftBuilder adapts NewSwift to Builder.
func SwiftBuilder() Builder { return func() Algorithm { return NewSwift() } }

// Name implements Algorithm.
func (s *Swift) Name() string { return "swift" }

// Init implements Algorithm.
func (s *Swift) Init(lim Limits) {
	s.lim = lim
	if s.TargetFactor == 0 {
		s.TargetFactor = 1.25
	}
	if s.AI == 0 {
		s.AI = 1
	}
	if s.Beta == 0 {
		s.Beta = 0.8
	}
	if s.MaxMDF == 0 {
		s.MaxMDF = 0.5
	}
	if s.MinCwnd == 0 {
		s.MinCwnd = 100
	}
	s.cwnd = lim.BDP()
	s.target = sim.Duration(float64(lim.BaseRTT) * s.TargetFactor)
	s.canDec = true
}

// Cwnd implements Algorithm.
func (s *Swift) Cwnd() float64 { return s.cwnd }

// Rate implements Algorithm: cwnd/τ pacing like the other window laws.
func (s *Swift) Rate() units.BitRate {
	r := units.BitRate(s.cwnd*8/s.lim.BaseRTT.Seconds() + 0.5)
	if r < units.Mbps {
		r = units.Mbps
	}
	return units.MinRate(r, s.lim.HostRate)
}

// OnLoss implements Algorithm.
func (s *Swift) OnLoss(sim.Time) {
	s.cwnd = math.Max(s.cwnd*(1-s.MaxMDF), s.MinCwnd)
}

// OnAck implements Algorithm.
func (s *Swift) OnAck(a Ack) {
	if a.RTT <= 0 {
		return
	}
	pkts := math.Max(s.cwnd/float64(s.lim.MSS), 1)
	ackedPkts := float64(a.NewlyAcked) / float64(s.lim.MSS)
	if a.RTT < s.target {
		// Additive increase scaled to deliver AI packets per RTT.
		s.cwnd += s.AI * ackedPkts / pkts * float64(s.lim.MSS)
	} else if a.Now.Sub(s.lastDecAt) > a.RTT || s.canDec {
		// At most one multiplicative decrease per RTT.
		over := float64(a.RTT-s.target) / float64(a.RTT)
		f := math.Max(1-s.Beta*over, 1-s.MaxMDF)
		s.cwnd *= f
		s.lastDecAt = a.Now
		s.canDec = false
	}
	if a.Now.Sub(s.lastDecAt) > a.RTT {
		s.canDec = true
	}
	s.cwnd = clamp(s.cwnd, s.MinCwnd, s.lim.BDP())
}
