package cc

import (
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// Reno implements TCP NewReno congestion avoidance — the loss-based
// reference at the bottom of the paper's taxonomy (Fig. 1): slow start
// to ssthresh, +1 MSS/RTT additive increase, halve on loss. §2.2 uses
// it as the example of a scheme that must fill the buffer to its
// maximum before reacting; the standing-queue ablation benchmark shows
// exactly that against PowerTCP.
type Reno struct {
	// MinCwnd floors the window (default one MSS).
	MinCwnd float64

	lim      Limits
	cwnd     float64
	ssthresh float64
}

// NewReno returns a NewReno instance.
func NewReno() *Reno { return &Reno{} }

// RenoBuilder adapts NewReno to Builder.
func RenoBuilder() Builder { return func() Algorithm { return NewReno() } }

// Name implements Algorithm.
func (r *Reno) Name() string { return "reno" }

// Init implements Algorithm: slow start from a small window.
func (r *Reno) Init(lim Limits) {
	r.lim = lim
	if r.MinCwnd == 0 {
		r.MinCwnd = float64(lim.MSS)
	}
	r.cwnd = 10 * float64(lim.MSS) // RFC 6928 initial window
	r.ssthresh = math.Inf(1)
}

// Cwnd implements Algorithm.
func (r *Reno) Cwnd() float64 { return r.cwnd }

// Rate implements Algorithm. Reno is ACK-clocked, not paced: returning
// zero disables the transport's pacer.
func (r *Reno) Rate() units.BitRate { return 0 }

// OnAck implements Algorithm.
func (r *Reno) OnAck(a Ack) {
	if a.NewlyAcked <= 0 {
		return
	}
	if r.cwnd < r.ssthresh {
		r.cwnd += float64(a.NewlyAcked) // slow start
	} else {
		// Congestion avoidance: one MSS per RTT.
		r.cwnd += float64(r.lim.MSS) * float64(a.NewlyAcked) / math.Max(r.cwnd, 1)
	}
}

// OnLoss implements Algorithm: multiplicative decrease.
func (r *Reno) OnLoss(sim.Time) {
	r.ssthresh = math.Max(r.cwnd/2, 2*float64(r.lim.MSS))
	r.cwnd = math.Max(r.ssthresh, r.MinCwnd)
}
