package cc

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// DCQCN implements the reaction-point side of DCQCN (Zhu et al., SIGCOMM
// 2015), the ECN-based scheme deployed for large-scale RDMA. Switches
// RED-mark ECN-capable packets; the receiver (notification point,
// implemented in internal/transport) sends at most one CNP per flow per
// 50 µs while marks arrive; and this sender (reaction point) cuts its
// rate on CNPs and recovers through the fast-recovery / additive /
// hyper-increase ladder driven by a timer and a byte counter.
//
// In the paper's classification DCQCN is voltage-based and coarse: the
// mark tells the sender *that* a queue exceeded a threshold, not how fast
// it is growing (§2, Fig. 2).
type DCQCN struct {
	// G is the α-update gain g (default 1/256).
	G float64
	// RateAI / RateHAI are the additive and hyper increase steps
	// (defaults 40 Mbps / 400 Mbps).
	RateAI, RateHAI units.BitRate
	// AlphaTimer is the α-decay period without CNPs (default 55 µs).
	AlphaTimer sim.Duration
	// IncTimer is the rate-increase timer period (default 55 µs).
	IncTimer sim.Duration
	// IncBytes is the byte-counter stage size (default 10 MB).
	IncBytes int64
	// F is the fast-recovery stage count (default 5).
	F int
	// MinRate floors the sending rate (default 40 Mbps).
	MinRate units.BitRate

	lim Limits

	rate   units.BitRate // RC
	target units.BitRate // RT
	alpha  float64

	timerStage int
	byteStage  int
	byteAcc    int64

	alphaTimer *sim.Timer
	incTimer   *sim.Timer
}

// NewDCQCN returns a DCQCN reaction point with published defaults.
func NewDCQCN() *DCQCN { return &DCQCN{} }

// DCQCNBuilder adapts NewDCQCN to Builder.
func DCQCNBuilder() Builder { return func() Algorithm { return NewDCQCN() } }

// Name implements Algorithm.
func (d *DCQCN) Name() string { return "dcqcn" }

// ECT marks DCQCN data packets ECN-capable (see WantsECT).
func (d *DCQCN) ECT() bool { return true }

// Init implements Algorithm.
func (d *DCQCN) Init(lim Limits) {
	d.lim = lim
	if d.G == 0 {
		d.G = 1.0 / 256
	}
	if d.RateAI == 0 {
		d.RateAI = 40 * units.Mbps
	}
	if d.RateHAI == 0 {
		d.RateHAI = 400 * units.Mbps
	}
	if d.AlphaTimer == 0 {
		d.AlphaTimer = 55 * sim.Microsecond
	}
	if d.IncTimer == 0 {
		d.IncTimer = 55 * sim.Microsecond
	}
	if d.IncBytes == 0 {
		d.IncBytes = 10 << 20
	}
	if d.F == 0 {
		d.F = 5
	}
	if d.MinRate == 0 {
		d.MinRate = 40 * units.Mbps
	}
	d.rate = lim.HostRate
	d.target = lim.HostRate
	d.alpha = 1
	if lim.Engine != nil {
		// Pre-bound, reschedulable timers: the per-CNP α-timer reset and
		// the periodic increase both re-arm without allocating.
		d.alphaTimer = lim.Engine.NewTimer(func() {
			d.alpha *= 1 - d.G
			d.armAlphaTimer()
		})
		d.incTimer = lim.Engine.NewTimer(func() {
			d.timerStage++
			d.raise()
			d.armIncTimer()
		})
	}
	d.armAlphaTimer()
	d.armIncTimer()
}

// Cwnd implements Algorithm: inflight cap proportional to the rate.
func (d *DCQCN) Cwnd() float64 {
	w := 2 * float64(d.rate.BDP(d.lim.BaseRTT))
	if w < float64(d.lim.MSS) {
		w = float64(d.lim.MSS)
	}
	return w
}

// Rate implements Algorithm.
func (d *DCQCN) Rate() units.BitRate { return d.rate }

// OnAck implements Algorithm: advances the byte counter.
func (d *DCQCN) OnAck(a Ack) {
	d.byteAcc += a.NewlyAcked
	for d.byteAcc >= d.IncBytes {
		d.byteAcc -= d.IncBytes
		d.byteStage++
		d.raise()
	}
}

// OnLoss implements Algorithm: RDMA transports treat retransmission as a
// serious event; halve like a CNP with α=1.
func (d *DCQCN) OnLoss(sim.Time) {
	d.target = d.rate
	d.rate = units.MaxRate(d.rate/2, d.MinRate)
	d.resetIncrease()
}

// OnCNP implements CNPHandler: the DCQCN rate cut.
func (d *DCQCN) OnCNP(sim.Time) {
	d.target = d.rate
	d.rate = units.MaxRate(units.BitRate(float64(d.rate)*(1-d.alpha/2)), d.MinRate)
	d.alpha = (1-d.G)*d.alpha + d.G
	d.resetIncrease()
	d.armAlphaTimer()
}

func (d *DCQCN) resetIncrease() {
	d.timerStage = 0
	d.byteStage = 0
	d.byteAcc = 0
	d.armIncTimer()
}

func (d *DCQCN) armAlphaTimer() {
	if d.alphaTimer != nil {
		d.alphaTimer.ArmAfter(d.AlphaTimer)
	}
}

func (d *DCQCN) armIncTimer() {
	if d.incTimer != nil {
		d.incTimer.ArmAfter(d.IncTimer)
	}
}

// raise performs one increase event: fast recovery toward the target for
// the first F stages, then additive increase of the target, and hyper
// increase once both counters pass F.
func (d *DCQCN) raise() {
	switch {
	case d.timerStage > d.F && d.byteStage > d.F:
		d.target = units.MinRate(d.target+d.RateHAI, d.lim.HostRate)
	case d.timerStage > d.F || d.byteStage > d.F:
		d.target = units.MinRate(d.target+d.RateAI, d.lim.HostRate)
	}
	d.rate = units.MinRate((d.rate+d.target)/2, d.lim.HostRate)
}

// Alpha exposes α for tests.
func (d *DCQCN) Alpha() float64 { return d.alpha }

// Stop cancels the algorithm's timers (flow teardown in long sweeps).
func (d *DCQCN) Stop() {
	if d.alphaTimer != nil {
		d.alphaTimer.Stop()
	}
	if d.incTimer != nil {
		d.incTimer.Stop()
	}
}
