package cc

import (
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM 2010), the
// canonical ECN-proportional law the paper's taxonomy places among
// voltage-based schemes (Fig. 1) and whose standing queue §2.2 calls
// out: switches mark packets above a step threshold K, the sender tracks
// the EWMA fraction α of marked bytes and cuts cwnd by α/2 once per
// window, so the queue oscillates around K (which must exceed b·τ/7)
// instead of draining to zero.
type DCTCP struct {
	// G is the α estimation gain (default 1/16).
	G float64
	// MinCwnd floors the window (default one MSS).
	MinCwnd float64

	lim Limits

	cwnd  float64
	alpha float64

	ackedBytes  int64 // bytes acked in the current observation window
	markedBytes int64 // of which carried an ECN echo
	windowEnd   int64 // sequence ending the observation window
}

// NewDCTCP returns a DCTCP instance with published defaults.
func NewDCTCP() *DCTCP { return &DCTCP{} }

// DCTCPBuilder adapts NewDCTCP to Builder.
func DCTCPBuilder() Builder { return func() Algorithm { return NewDCTCP() } }

// Name implements Algorithm.
func (d *DCTCP) Name() string { return "dctcp" }

// ECT marks DCTCP traffic ECN-capable.
func (d *DCTCP) ECT() bool { return true }

// Init implements Algorithm.
func (d *DCTCP) Init(lim Limits) {
	d.lim = lim
	if d.G == 0 {
		d.G = 1.0 / 16
	}
	if d.MinCwnd == 0 {
		d.MinCwnd = float64(lim.MSS)
	}
	d.cwnd = lim.BDP()
}

// Cwnd implements Algorithm.
func (d *DCTCP) Cwnd() float64 { return d.cwnd }

// Rate implements Algorithm. DCTCP is ACK-clocked like the kernel TCP it
// ships in — pacing at cwnd/τ would cap arrivals at the line rate and
// hide exactly the standing queue the scheme is known for.
func (d *DCTCP) Rate() units.BitRate { return 0 }

// OnLoss implements Algorithm: classic halving.
func (d *DCTCP) OnLoss(sim.Time) {
	d.cwnd = math.Max(d.cwnd/2, d.MinCwnd)
}

// OnAck implements Algorithm.
func (d *DCTCP) OnAck(a Ack) {
	d.ackedBytes += a.NewlyAcked
	if a.ECNEcho {
		d.markedBytes += a.NewlyAcked
	}
	// Additive increase: one MSS per RTT, spread across ACKs.
	d.cwnd += float64(d.lim.MSS) * float64(a.NewlyAcked) / math.Max(d.cwnd, 1)

	if a.AckSeq < d.windowEnd {
		d.clamp()
		return
	}
	// One observation window (≈ one RTT of data) completed.
	if d.ackedBytes > 0 {
		frac := float64(d.markedBytes) / float64(d.ackedBytes)
		d.alpha = (1-d.G)*d.alpha + d.G*frac
		if d.markedBytes > 0 {
			d.cwnd *= 1 - d.alpha/2
		}
	}
	d.ackedBytes, d.markedBytes = 0, 0
	d.windowEnd = a.SndNxt
	d.clamp()
}

func (d *DCTCP) clamp() {
	// DCTCP must be able to push the queue up to the marking threshold
	// K, so unlike the near-zero-queue laws its cap sits well above one
	// BDP (the standing queue of §2.2 is the point of the comparison).
	d.cwnd = clamp(d.cwnd, d.MinCwnd, 4*d.lim.BDP())
}

// Alpha exposes the marking-fraction EWMA (tests).
func (d *DCTCP) Alpha() float64 { return d.alpha }
