package cc

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// Timely implements TIMELY (Mittal et al., SIGCOMM 2015), the paper's
// representative current-based law: it reacts to the RTT *gradient*, with
// low/high RTT thresholds as guard rails and hyperactive increase (HAI)
// after repeated negative gradients. Rate-based; the window is only a cap
// on inflight data. As §2.2 shows, the gradient signal reacts fast but
// admits no unique equilibrium queue length.
type Timely struct {
	// EWMAAlpha weighs new RTT-difference samples (default 0.875).
	EWMAAlpha float64
	// Beta is the multiplicative-decrease factor (default 0.8).
	Beta float64
	// TLow/THigh are the RTT guard thresholds (defaults 50 µs / 500 µs,
	// as in the TIMELY paper's datacenter configuration).
	TLow, THigh sim.Duration
	// AddStep δ is the additive rate increment (default 30 Mbps).
	AddStep units.BitRate
	// HAIThresh is the consecutive-negative-gradient count that triggers
	// hyperactive increase (default 5).
	HAIThresh int
	// MinRate floors the sending rate (default 10 Mbps).
	MinRate units.BitRate

	lim Limits

	rate      units.BitRate
	rttDiff   float64 // EWMA of RTT differences, in seconds
	prevRTT   sim.Duration
	havePrev  bool
	negStreak int
	lastSeq   int64 // once-per-RTT update gate
}

// NewTimely returns a TIMELY instance with published defaults.
func NewTimely() *Timely { return &Timely{} }

// TimelyBuilder adapts NewTimely to Builder.
func TimelyBuilder() Builder { return func() Algorithm { return NewTimely() } }

// Name implements Algorithm.
func (t *Timely) Name() string { return "timely" }

// Init implements Algorithm.
func (t *Timely) Init(lim Limits) {
	t.lim = lim
	if t.EWMAAlpha == 0 {
		t.EWMAAlpha = 0.875
	}
	if t.Beta == 0 {
		t.Beta = 0.8
	}
	if t.TLow == 0 {
		t.TLow = 50 * sim.Microsecond
	}
	if t.THigh == 0 {
		t.THigh = 500 * sim.Microsecond
	}
	if t.AddStep == 0 {
		t.AddStep = 30 * units.Mbps
	}
	if t.HAIThresh == 0 {
		t.HAIThresh = 5
	}
	if t.MinRate == 0 {
		t.MinRate = 10 * units.Mbps
	}
	t.rate = lim.HostRate
}

// Cwnd implements Algorithm: a rate-proportional inflight cap (TIMELY
// itself is windowless; the cap only prevents unbounded bursts).
func (t *Timely) Cwnd() float64 {
	w := 2 * float64(t.rate.BDP(t.lim.BaseRTT))
	if w < float64(t.lim.MSS) {
		w = float64(t.lim.MSS)
	}
	return w
}

// Rate implements Algorithm.
func (t *Timely) Rate() units.BitRate { return t.rate }

// OnLoss implements Algorithm.
func (t *Timely) OnLoss(sim.Time) {
	t.rate = units.MaxRate(t.rate/2, t.MinRate)
}

// OnAck implements Algorithm. Updates run once per RTT, matching the
// TIMELY engine's completion-event granularity.
func (t *Timely) OnAck(a Ack) {
	if a.RTT <= 0 {
		return
	}
	if !t.havePrev {
		t.prevRTT = a.RTT
		t.havePrev = true
		return
	}
	if a.AckSeq < t.lastSeq {
		return
	}
	t.lastSeq = a.SndNxt

	newDiff := float64(a.RTT-t.prevRTT) / float64(sim.Second)
	t.prevRTT = a.RTT
	t.rttDiff = (1-t.EWMAAlpha)*t.rttDiff + t.EWMAAlpha*newDiff
	normGrad := t.rttDiff / t.lim.BaseRTT.Seconds()

	switch {
	case a.RTT < t.TLow:
		t.increase(1)
	case a.RTT > t.THigh:
		// Proportional decrease toward THigh.
		f := 1 - t.Beta*(1-float64(t.THigh)/float64(a.RTT))
		t.decreaseTo(float64(t.rate) * f)
	case normGrad <= 0:
		t.negStreak++
		n := 1
		if t.negStreak >= t.HAIThresh {
			n = 5 // hyperactive increase
		}
		t.increase(n)
	default:
		t.negStreak = 0
		t.decreaseTo(float64(t.rate) * (1 - t.Beta*normGrad))
	}
}

func (t *Timely) increase(n int) {
	t.rate = units.MinRate(t.rate+units.BitRate(n)*t.AddStep, t.lim.HostRate)
}

func (t *Timely) decreaseTo(r float64) {
	t.negStreak = 0
	t.rate = units.MaxRate(units.BitRate(r), t.MinRate)
}
