package cc

import (
	"testing"

	"repro/internal/sim"
)

func TestCubicSlowStartThenAnchor(t *testing.T) {
	c := NewCubic()
	c.Init(lims())
	if c.Rate() != 0 {
		t.Fatal("CUBIC must be ACK-clocked")
	}
	w0 := c.Cwnd()
	c.OnAck(Ack{Now: 0, NewlyAcked: int64(w0)})
	if c.Cwnd() < 2*w0-1 {
		t.Fatalf("slow start broken: %v", c.Cwnd())
	}
	// Loss anchors W_max at the loss window and cuts by β.
	atLoss := c.Cwnd()
	c.OnLoss(sim.Time(sim.Millisecond))
	if got := c.WMax() * 1000; got != atLoss {
		t.Fatalf("wmax = %v MSS, want anchor at %v bytes", c.WMax(), atLoss)
	}
	if c.Cwnd() >= atLoss || c.Cwnd() < atLoss*0.65 {
		t.Fatalf("post-loss cwnd = %v of %v", c.Cwnd(), atLoss)
	}
}

func TestCubicConcaveRecoveryTowardWMax(t *testing.T) {
	c := NewCubic()
	c.Init(lims())
	// Put CUBIC in congestion avoidance with a known anchor.
	c.cwnd = 100_000
	c.OnLoss(0) // wmax = 100 MSS, cwnd = 70 MSS, K = ∛(100·0.3/0.4)
	start := c.Cwnd()
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		now = now.Add(100 * sim.Microsecond)
		c.OnAck(Ack{Now: now, NewlyAcked: 1000})
	}
	// After 200ms (≫ K ≈ 4.2s? no: K = cbrt(75)= 4.2s in MSS/s³ units —
	// recovery is slow at CUBIC's WAN timescale), the window must have
	// grown from the cut but not overshot far past W_max yet.
	if c.Cwnd() <= start {
		t.Fatalf("no recovery growth: %v", c.Cwnd())
	}
	if c.Cwnd() > 2*100_000 {
		t.Fatalf("overshot anchor unreasonably: %v", c.Cwnd())
	}
}

func TestCubicConvexBeyondWMax(t *testing.T) {
	c := NewCubic()
	c.Init(lims())
	c.cwnd = 50_000
	c.OnLoss(0)
	// Integrate far past K: the cubic turns convex and growth accelerates.
	now := sim.Time(0)
	var atK, afterK float64
	kTime := sim.Duration(c.k * float64(sim.Second))
	for now < sim.Time(3*kTime) {
		now = now.Add(sim.Millisecond)
		c.OnAck(Ack{Now: now, NewlyAcked: 1000})
		if now <= sim.Time(kTime) {
			atK = c.Cwnd()
		}
	}
	afterK = c.Cwnd()
	if afterK <= atK {
		t.Fatalf("no convex growth past K: %v then %v", atK, afterK)
	}
	// Around t=K the window should be near W_max (the plateau).
	if atK < 45_000 || atK > 65_000 {
		t.Fatalf("plateau window = %v, want ≈wmax 50000", atK)
	}
}

func TestCubicRepeatedLossFloors(t *testing.T) {
	c := NewCubic()
	c.Init(lims())
	for i := 0; i < 50; i++ {
		c.OnLoss(sim.Time(i) * sim.Time(sim.Millisecond))
	}
	if c.Cwnd() < c.MinCwnd {
		t.Fatalf("cwnd below floor: %v", c.Cwnd())
	}
}
