package cc

import (
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// Cubic implements TCP CUBIC (Ha, Rhee, Xu 2008), the wide-area default
// the paper's taxonomy files under loss-based voltage CC (Fig. 1). The
// congestion-avoidance window follows the cubic
//
//	W(t) = C·(t−K)³ + W_max,   K = ∛(W_max·β/C)
//
// anchored at the window where the last loss occurred: concave recovery
// toward W_max, a plateau, then convex probing beyond it. Included as
// the loss-based reference for ablations; datacenter figures use the
// paper's comparison set.
type Cubic struct {
	// C is the cubic scaling constant in MSS/s³ (default 0.4).
	C float64
	// Beta is the multiplicative decrease, window fraction removed on
	// loss (default 0.3, i.e. cwnd ← 0.7·cwnd).
	Beta float64
	// MinCwnd floors the window (default 2 MSS).
	MinCwnd float64

	lim Limits

	cwnd     float64
	ssthresh float64
	wmax     float64 // in MSS units
	k        float64 // seconds from epoch start to reach wmax
	epoch    sim.Time
	hasEpoch bool
}

// NewCubic returns a CUBIC instance with published defaults.
func NewCubic() *Cubic { return &Cubic{} }

// CubicBuilder adapts NewCubic to Builder.
func CubicBuilder() Builder { return func() Algorithm { return NewCubic() } }

// Name implements Algorithm.
func (c *Cubic) Name() string { return "cubic" }

// Init implements Algorithm.
func (c *Cubic) Init(lim Limits) {
	c.lim = lim
	if c.C == 0 {
		c.C = 0.4
	}
	if c.Beta == 0 {
		c.Beta = 0.3
	}
	if c.MinCwnd == 0 {
		c.MinCwnd = 2 * float64(lim.MSS)
	}
	c.cwnd = 10 * float64(lim.MSS)
	c.ssthresh = math.Inf(1)
}

// Cwnd implements Algorithm.
func (c *Cubic) Cwnd() float64 { return c.cwnd }

// Rate implements Algorithm: CUBIC is ACK-clocked.
func (c *Cubic) Rate() units.BitRate { return 0 }

// OnAck implements Algorithm.
func (c *Cubic) OnAck(a Ack) {
	if a.NewlyAcked <= 0 {
		return
	}
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(a.NewlyAcked) // slow start
		return
	}
	if !c.hasEpoch {
		c.startEpoch(a.Now)
	}
	mss := float64(c.lim.MSS)
	t := a.Now.Sub(c.epoch).Seconds()
	target := (c.C*math.Pow(t-c.k, 3) + c.wmax) * mss
	if target > c.cwnd {
		// Approach the cubic target over roughly one RTT of ACKs.
		c.cwnd += (target - c.cwnd) * float64(a.NewlyAcked) / math.Max(c.cwnd, mss)
	} else {
		// At or past the plateau with target below: gentle probing
		// (CUBIC's TCP-friendliness floor, simplified).
		c.cwnd += mss * float64(a.NewlyAcked) / (100 * math.Max(c.cwnd, mss))
	}
}

// OnLoss implements Algorithm: anchor the cubic at the loss window.
func (c *Cubic) OnLoss(now sim.Time) {
	mss := float64(c.lim.MSS)
	c.wmax = c.cwnd / mss
	c.cwnd = math.Max(c.cwnd*(1-c.Beta), c.MinCwnd)
	c.ssthresh = c.cwnd
	c.startEpoch(now)
}

func (c *Cubic) startEpoch(now sim.Time) {
	c.epoch = now
	c.hasEpoch = true
	if c.wmax > 0 {
		c.k = math.Cbrt(c.wmax * c.Beta / c.C)
	} else {
		c.k = 0
	}
}

// WMax exposes the anchor window in MSS units (tests).
func (c *Cubic) WMax() float64 { return c.wmax }
