package cc

import (
	"math"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// HPCC implements High Precision Congestion Control (Li et al., SIGCOMM
// 2019), the paper's strongest baseline and the scheme whose INT feedback
// PowerTCP reuses. Per ACK it estimates the most-utilized hop
//
//	U_j = qlen/(b·τ) + txRate/b
//
// EWMA-smooths the maximum into U, and applies multiplicative-
// plus-additive control toward target utilization η:
//
//	W = Wc/(U/η) + W_AI
//
// where the reference window Wc is frozen for an RTT to avoid reacting to
// its own adjustments, and up to MaxStage additive-only steps are allowed
// below target (the paper's classification: a voltage-based law — it
// reacts to inflight state, not to its trend).
type HPCC struct {
	// Eta is the target utilization η (default 0.95).
	Eta float64
	// MaxStage bounds consecutive additive-increase stages (default 5).
	MaxStage int
	// ExpectedFlows sets W_AI = Winit·(1−η)/N (default 10).
	ExpectedFlows int
	// MinCwnd floors the window in bytes (default 100).
	MinCwnd float64

	lim   Limits
	wai   float64
	winit float64

	cwnd     float64
	wc       float64
	u        float64
	incStage int
	lastSeq  int64
	prev     []telemetry.HopRecord
	havePrev bool
}

// NewHPCC returns an HPCC instance with the published defaults.
func NewHPCC() *HPCC { return &HPCC{} }

// HPCCBuilder adapts NewHPCC to Builder.
func HPCCBuilder() Builder { return func() Algorithm { return NewHPCC() } }

// Name implements Algorithm.
func (h *HPCC) Name() string { return "hpcc" }

// Init implements Algorithm.
func (h *HPCC) Init(lim Limits) {
	h.lim = lim
	if h.Eta == 0 {
		h.Eta = 0.95
	}
	if h.MaxStage == 0 {
		h.MaxStage = 5
	}
	if h.ExpectedFlows == 0 {
		h.ExpectedFlows = 10
	}
	if h.MinCwnd == 0 {
		h.MinCwnd = 100
	}
	h.winit = lim.BDP()
	h.wai = h.winit * (1 - h.Eta) / float64(h.ExpectedFlows)
	h.cwnd = h.winit
	h.wc = h.winit
	h.u = 1
}

// Cwnd implements Algorithm.
func (h *HPCC) Cwnd() float64 { return h.cwnd }

// Rate implements Algorithm: rate = cwnd/τ.
func (h *HPCC) Rate() units.BitRate {
	r := units.BitRate(h.cwnd*8/h.lim.BaseRTT.Seconds() + 0.5)
	if r < units.Mbps {
		r = units.Mbps
	}
	return units.MinRate(r, h.lim.HostRate)
}

// OnLoss implements Algorithm.
func (h *HPCC) OnLoss(sim.Time) {
	h.cwnd = math.Max(h.cwnd/2, h.MinCwnd)
	h.wc = math.Min(h.wc, h.cwnd)
}

// OnAck implements Algorithm.
func (h *HPCC) OnAck(a Ack) {
	if len(a.Hops) == 0 {
		return
	}
	if !h.havePrev || len(h.prev) != len(a.Hops) {
		h.prev = append(h.prev[:0], a.Hops...)
		h.havePrev = true
		return
	}
	uNew, dt, ok := h.measure(a.Hops)
	h.prev = append(h.prev[:0], a.Hops...)
	if !ok {
		return
	}
	// EWMA over the sampling interval, as in the HPCC pseudocode.
	tau := h.lim.BaseRTT
	if dt > tau {
		dt = tau
	}
	h.u = (h.u*float64(tau-dt) + uNew*float64(dt)) / float64(tau)

	updateWc := a.AckSeq >= h.lastSeq
	var w float64
	if h.u >= h.Eta || h.incStage >= h.MaxStage {
		w = h.wc/(h.u/h.Eta) + h.wai
		if updateWc {
			h.incStage = 0
			h.wc = w
			h.lastSeq = a.SndNxt
		}
	} else {
		w = h.wc + h.wai
		if updateWc {
			h.incStage++
			h.wc = w
			h.lastSeq = a.SndNxt
		}
	}
	h.cwnd = clamp(w, h.MinCwnd, h.winit)
}

// measure returns max_j U_j and the Δt of the maximizing hop.
func (h *HPCC) measure(hops []telemetry.HopRecord) (u float64, dt sim.Duration, ok bool) {
	tau := h.lim.BaseRTT.Seconds()
	best := -1.0
	var bestDT sim.Duration
	for i := range hops {
		cur, prev := hops[i], h.prev[i]
		hdt := cur.TS.Sub(prev.TS)
		if hdt <= 0 {
			continue
		}
		bBps := cur.Rate.BytesPerSec()
		txRate := float64(cur.TxBytes-prev.TxBytes) / hdt.Seconds()
		uj := float64(cur.QLen)/(bBps*tau) + txRate/bBps
		if uj > best {
			best = uj
			bestDT = hdt
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestDT, true
}

// Util exposes the smoothed utilization estimate (tests).
func (h *HPCC) Util() float64 { return h.u }
