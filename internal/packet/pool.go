package packet

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// poolingEnabled is the global kill-switch used by determinism tests to
// compare pooled against pool-disabled runs. It defaults to on; flipping
// it must not change any simulation output, only allocation behavior.
var poolingEnabled atomic.Bool

func init() { poolingEnabled.Store(true) }

// SetPooling turns packet pooling on or off process-wide. It exists for
// the pooled-vs-unpooled determinism comparison; production code leaves
// pooling on.
func SetPooling(on bool) { poolingEnabled.Store(on) }

// PoolingEnabled reports whether packet pooling is active.
func PoolingEnabled() bool { return poolingEnabled.Load() }

// Pool is a free list of packets. Every simulation engine gets one pool
// shared by its hosts, switches and ports; packets are taken with Get at
// every send point and returned with Put at every consume point (NIC
// receive of a data/control packet, ACK consumption at the sender, and
// admission drops).
//
// Invariants (see PERF.md):
//   - After Put(p) the caller must not touch p or p.Hops again: both are
//     recycled in place and will be handed to an unrelated sender.
//   - A packet may be Put at most once per Get.
//   - Pools are engine-local and therefore goroutine-local; they are NOT
//     safe for concurrent use, matching the single-threaded engine.
//
// The nil *Pool is valid and degrades to plain allocation, so optional
// integration points can call through unconditionally.
type Pool struct {
	free []*Packet

	gets uint64 // total Get calls
	news uint64 // Gets that had to allocate
	puts uint64 // total Put calls
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet. The INT hop slice keeps its previous
// capacity (emptied in place), so steady-state INT stamping allocates
// nothing.
func (pl *Pool) Get() *Packet {
	if pl == nil || !poolingEnabled.Load() {
		return &Packet{Hops: make([]telemetry.HopRecord, 0, telemetry.PathHopCap)}
	}
	pl.gets++
	if k := len(pl.free); k > 0 {
		p := pl.free[k-1]
		pl.free[k-1] = nil
		pl.free = pl.free[:k-1]
		return p
	}
	pl.news++
	return &Packet{Hops: make([]telemetry.HopRecord, 0, telemetry.PathHopCap)}
}

// Put recycles p. The hop slice is truncated but its backing array is
// kept, and every other field is zeroed. Put of nil is a no-op.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil || !poolingEnabled.Load() {
		return
	}
	pl.puts++
	hops := p.Hops[:0]
	*p = Packet{}
	p.Hops = hops
	pl.free = append(pl.free, p)
}

// Stats reports pool traffic: total Gets, how many of them allocated, and
// total Puts. Benchmarks use it to report allocs/packet.
func (pl *Pool) Stats() (gets, news, puts uint64) {
	if pl == nil {
		return 0, 0, 0
	}
	return pl.gets, pl.news, pl.puts
}

// Live reports the packets currently checked out of the pool (Gets
// minus Puts) — the live-object watermark the guard package's pool
// budget samples at its sim-time checkpoints. The count is a pure
// function of the simulation's event history, so it is deterministic
// and partition-invariant when summed across a fabric's pools. With
// pooling disabled both counters stay zero and Live reports zero; the
// pool budget is documented as inert in that (test-only) mode.
func (pl *Pool) Live() uint64 {
	if pl == nil {
		return 0
	}
	return pl.gets - pl.puts
}

// Adopt seeds the free list with recycled packets from a finished run
// (see Drain). Adopted packets must already be zeroed — Put leaves them
// that way — so a pool warmed from another run hands out packets
// indistinguishable from fresh allocations. With pooling disabled the
// call is a no-op, keeping kill-switch runs allocation-honest.
func (pl *Pool) Adopt(ps []*Packet) {
	if pl == nil || len(ps) == 0 || !poolingEnabled.Load() {
		return
	}
	pl.free = append(pl.free, ps...)
}

// Drain empties the free list and returns it, so a suite harness can
// carry the warmed packets to the next run's pool. In-flight packets are
// not tracked and simply fall to the garbage collector.
func (pl *Pool) Drain() []*Packet {
	if pl == nil {
		return nil
	}
	free := pl.free
	pl.free = nil
	return free
}
