package packet

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/units"
)

func TestWireLen(t *testing.T) {
	p := &Packet{Kind: Data, PayloadLen: 1000}
	if got := p.WireLen(); got != 1048 {
		t.Fatalf("data wire len = %d, want 1048", got)
	}
	ack := &Packet{Kind: Ack}
	if got := ack.WireLen(); got != HeaderSize {
		t.Fatalf("ack wire len = %d", got)
	}
	// INT grows the packet by the option size.
	p.Hops = []telemetry.HopRecord{{Rate: 25 * units.Gbps}, {Rate: 100 * units.Gbps}}
	want := int64(1048 + telemetry.WireLen(2))
	if got := p.WireLen(); got != want {
		t.Fatalf("with 2 hops = %d, want %d", got, want)
	}
}

func TestEnd(t *testing.T) {
	p := &Packet{Seq: 5000, PayloadLen: 1000}
	if p.End() != 6000 {
		t.Fatalf("End = %d", p.End())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Data: "DATA", Ack: "ACK", CNP: "CNP", Grant: "GRANT", Request: "REQ",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestPacketString(t *testing.T) {
	d := &Packet{Kind: Data, Flow: 7, Seq: 100, PayloadLen: 50, Src: 1, Dst: 2}
	if s := d.String(); !strings.Contains(s, "[100,150)") || !strings.Contains(s, "flow=7") {
		t.Errorf("data string = %q", s)
	}
	a := &Packet{Kind: Ack, Flow: 7, AckSeq: 150}
	if s := a.String(); !strings.Contains(s, "ack=150") {
		t.Errorf("ack string = %q", s)
	}
	g := &Packet{Kind: Grant, Flow: 7}
	if s := g.String(); !strings.Contains(s, "GRANT") {
		t.Errorf("grant string = %q", s)
	}
}
