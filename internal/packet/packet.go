// Package packet defines the packet model shared by hosts, switches and
// transports. Packets are plain structs passed by pointer through the
// simulator; the INT header rides along as native values (see
// internal/telemetry for the wire codec used by the deployment path).
package packet

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// NodeID identifies a host or switch. IDs are assigned by the topology
// builder and are unique across the network.
type NodeID int32

// FlowID identifies a transport flow (or HOMA message stream).
type FlowID uint64

// Kind discriminates packet roles.
type Kind uint8

// Packet kinds.
const (
	Data    Kind = iota // transport payload
	Ack                 // cumulative acknowledgment, echoes INT
	CNP                 // DCQCN congestion notification packet
	Grant               // HOMA grant
	Request             // application-level request (incast trigger)
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case CNP:
		return "CNP"
	case Grant:
		return "GRANT"
	case Request:
		return "REQ"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Standard sizes in bytes. MSS plus HeaderSize matches the 25G RDMA
// configuration used by the HPCC/PowerTCP simulations (1000 B payload,
// 48 B of headers); the INT option grows the wire size per hop.
const (
	MSS         = 1000
	HeaderSize  = 48
	AckSize     = HeaderSize // pure ACK wire size (before INT echo)
	GrantSize   = HeaderSize
	CNPSize     = HeaderSize
	MaxPriority = 7 // switches implement 8 strict priority levels
)

// Packet is one simulated packet. Fields are grouped by the subsystem
// that owns them; a field not relevant to a packet's Kind is zero.
type Packet struct {
	ID   uint64
	Kind Kind
	Flow FlowID
	Src  NodeID
	Dst  NodeID

	// Transport (Data): [Seq, Seq+PayloadLen) is the byte range carried.
	Seq        int64
	PayloadLen int32
	Rtx        bool // retransmission (excluded from goodput accounting)

	// Transport (Ack).
	AckSeq   int64    // cumulative: receiver has everything below AckSeq
	EchoSent sim.Time // SentAt of the data packet being acknowledged
	EchoECN  bool     // the acknowledged data packet arrived CE-marked
	AckedNew int64    // bytes newly acknowledged (filled by the sender side)

	// HOMA.
	MsgID       uint64
	MsgLen      int64 // total message length, carried on every data packet
	GrantOffset int64 // Grant: sender may transmit up to this offset
	Unscheduled bool  // Data: part of the unscheduled burst

	// Network.
	Priority uint8 // strict-priority class (0 = highest)
	ECT      bool  // ECN-capable transport
	CE       bool  // congestion experienced (set by switches)
	TTL      uint8

	SentAt sim.Time // set by the sending host when first serialized

	// INT stack; one record per traversed switch egress port.
	Hops []telemetry.HopRecord
}

// WireLen returns the packet's size on the wire in bytes, including the
// INT option if any hop records are attached.
func (p *Packet) WireLen() int64 {
	n := int64(HeaderSize) + int64(p.PayloadLen)
	if len(p.Hops) > 0 {
		n += int64(telemetry.WireLen(len(p.Hops)))
	}
	return n
}

// End returns the byte offset just past the payload carried.
func (p *Packet) End() int64 { return p.Seq + int64(p.PayloadLen) }

// String renders a compact debugging description.
func (p *Packet) String() string {
	switch p.Kind {
	case Data:
		return fmt.Sprintf("%v flow=%d [%d,%d) %d→%d", p.Kind, p.Flow, p.Seq, p.End(), p.Src, p.Dst)
	case Ack:
		return fmt.Sprintf("%v flow=%d ack=%d %d→%d", p.Kind, p.Flow, p.AckSeq, p.Src, p.Dst)
	default:
		return fmt.Sprintf("%v flow=%d %d→%d", p.Kind, p.Flow, p.Src, p.Dst)
	}
}
