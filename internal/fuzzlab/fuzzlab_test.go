package fuzzlab

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/scenario"
)

// TestPinnedCorpus re-checks every shrunk counterexample pinned under
// testdata/corpus through the full invariant battery, including the
// serial-vs-partitioned byte comparison at 1/2/4/8 partitions. A spec
// lands here because it once minimized a violation; this test is the
// permanent regression gate keeping each one fixed.
func TestPinnedCorpus(t *testing.T) {
	specs, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(specs) < 5 {
		t.Fatalf("pinned corpus holds %d specs, want ≥5", len(specs))
	}
	for i := range specs {
		sp := specs[i]
		t.Run(sp.Name, func(t *testing.T) {
			if !sp.Partitionable() {
				t.Fatalf("corpus spec %s is not partitionable; the corpus pins the partition comparison too", sp.Name)
			}
			vs, err := Check(&sp, Options{})
			if err != nil {
				t.Fatalf("corpus spec no longer runs: %v", err)
			}
			for _, v := range vs {
				t.Errorf("pinned regression violated: %s", v)
			}
		})
	}
}

// TestGeneratorSmoke runs a band of generated specs through the serial
// invariants plus one partitioned comparison — the tier-1 slice of the
// fuzz surface. Every generated spec must build and run cleanly: an
// error is a generator bug, not a finding.
func TestGeneratorSmoke(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		sp := Generate(seed)
		vs, err := Check(&sp, Options{Parts: []int{1, 2}})
		if err != nil {
			t.Errorf("seed %d: generated spec does not run: %v", seed, err)
			continue
		}
		for _, v := range vs {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestSeededViolationCaughtAndShrunk proves the lab catches a planted
// fabric bug and minimizes its repro: a tampered Result simulating a
// drop counter that undercounts by one packet must break conservation,
// and the shrinker must cut the busy five-component scenario down to a
// ≤3-component (in practice one-component) repro that still exhibits
// the violation — deterministically.
func TestSeededViolationCaughtAndShrunk(t *testing.T) {
	// A busy but quick scenario: three traffic components, a link cut,
	// and an injected burst, all inside 120µs.
	sp := Spec{
		Seed:   3,
		Scheme: "powertcp",
		Topo:   TopoSpec{Kind: "leafspine", Leaves: 2, Spines: 2, ServersPerLeaf: 2},
		Traffic: []TrafficSpec{
			{Kind: "pulse", Receiver: &RefSpec{Kind: "host", I: 0}, FanIn: 2, FlowSize: 30_000},
			{Kind: "flows", Flows: []FlowEntry{
				{Src: &RefSpec{Kind: "host", I: 1}, Dst: &RefSpec{Kind: "host", I: 3}, Size: 20_000},
				{Src: &RefSpec{Kind: "host", I: 2}, Dst: &RefSpec{Kind: "host", I: 0}, Size: 15_000, StartUS: 10},
			}},
			{Kind: "rackpairs", FromRack: &RefSpec{Kind: "rack_start", Rack: 1},
				ToRack: &RefSpec{Kind: "rack_start", Rack: 0}, Count: 2, Size: 25_000},
		},
		Events: []EventSpec{
			{Kind: "fail", AtUS: 40, A: &SwitchRefSpec{Tier: "leaf", I: 0}, B: &SwitchRefSpec{Tier: "spine", I: 1}},
			{Kind: "inject", AtUS: 50, Inject: &TrafficSpec{Kind: "flows", Flows: []FlowEntry{
				{Src: &RefSpec{Kind: "host", I: 3}, Dst: &RefSpec{Kind: "host", I: 1}, Size: 10_000},
			}}},
		},
		ReconvergeUS: 15,
		HorizonUS:    120,
	}

	// The planted bug: whenever anything was delivered, the delivered
	// word over-reports by one MSS — as a miscounting receive path would.
	tamper := func(res *scenario.Result) {
		if res.Scalar("bytes_delivered") > 0 {
			res.Scalars["bytes_delivered"] += 1000
		}
	}
	opts := Options{Parts: []int{1}, SkipJain: true, Tamper: tamper}

	vs, err := Check(&sp, opts)
	if err != nil {
		t.Fatalf("seeded scenario does not run: %v", err)
	}
	caught := false
	for _, v := range vs {
		if v.Invariant == "conservation" {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("planted delivery miscount not caught; violations: %v", vs)
	}

	failing := func(c *Spec) bool {
		cvs, cerr := Check(c, opts)
		return cerr == nil && len(cvs) > 0
	}
	shrunk := Shrink(sp, failing)
	if n := len(shrunk.Traffic); n > 3 {
		t.Errorf("shrunk repro keeps %d traffic components, want ≤3", n)
	}
	// The repro needs exactly one traffic source to manifest a delivery
	// miscount — either a lone component or a lone injected one.
	if n := len(shrunk.Traffic) + len(shrunk.Events); n > 1 {
		t.Errorf("shrunk repro keeps %d traffic/event entries, want 1", n)
	}
	if !failing(&shrunk) {
		t.Errorf("shrunk repro no longer exhibits the violation")
	}
	// Determinism: shrinking the same spec under the same predicate must
	// reproduce the identical minimal repro, byte for byte.
	again := Shrink(sp, failing)
	if !bytes.Equal(Canonical(&shrunk), Canonical(&again)) {
		t.Errorf("shrink is not deterministic:\n%s\nvs\n%s", Canonical(&shrunk), Canonical(&again))
	}
}

// TestSpecJSONRoundTrip pins that the canonical corpus form survives a
// marshal/unmarshal cycle unchanged for generated specs — otherwise a
// pinned repro would drift from what the shrinker produced.
func TestSpecJSONRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sp := Generate(seed)
		var back Spec
		if err := json.Unmarshal(Canonical(&sp), &back); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(Canonical(&sp), Canonical(&back)) {
			t.Errorf("seed %d: spec changes across a JSON round trip", seed)
		}
	}
}

// TestDeepSweep is the nightly entry point: gated on POWERTCP_FUZZ_DEEP
// (a seed count), it sweeps that many fresh seeds through the full
// invariant battery, shrinks any finding, and writes the repro JSON to
// POWERTCP_FUZZ_OUT (or a temp dir) for the CI artifact upload — ready
// to be committed into testdata/corpus.
func TestDeepSweep(t *testing.T) {
	env := os.Getenv("POWERTCP_FUZZ_DEEP")
	if env == "" {
		t.Skip("deep sweep runs only with POWERTCP_FUZZ_DEEP=<seed count> (nightly CI)")
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		t.Fatalf("POWERTCP_FUZZ_DEEP must be a positive seed count, got %q", env)
	}
	out := os.Getenv("POWERTCP_FUZZ_OUT")
	if out == "" {
		out = t.TempDir()
	}
	// Nightly seeds start past the tier-1 smoke band so the sweep always
	// explores fresh specs.
	rep := Sweep(1000, n, Options{}, nil, testWriter{t})
	t.Logf("deep sweep: %d seeds checked, %d generator errors, %d findings",
		rep.Checked, rep.GenErrors, len(rep.Findings))
	if rep.GenErrors > 0 {
		t.Errorf("%d seeds produced invalid specs", rep.GenErrors)
	}
	for _, f := range rep.Findings {
		sp := f.Shrunk
		path, werr := WriteRepro(out, &sp)
		if werr != nil {
			t.Errorf("writing repro for seed %d: %v", f.Seed, werr)
			continue
		}
		t.Errorf("seed %d violated %d invariant(s); shrunk repro pinned at %s — commit it to testdata/corpus",
			f.Seed, len(f.Violations), path)
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}
