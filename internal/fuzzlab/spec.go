package fuzzlab

import "repro/internal/scenario"

// The Spec vocabulary was born here and was promoted to
// internal/scenario when the serving path (internal/serve) adopted the
// same wire form as its request body and cache-key input. The lab keeps
// these aliases so generators, shrinkers, corpus files, and external
// callers are untouched; the types, the Build compiler, and the
// canonical encoding (scenario.MarshalCanonical / scenario.DecodeSpec /
// scenario.SpecKey) now live next to the Scenario they compile into.
type (
	// Spec is a fully serializable scenario description; see
	// scenario.Spec for the field and canonical-encoding contract.
	Spec = scenario.Spec
	// TopoSpec describes the fabric axis.
	TopoSpec = scenario.TopoSpec
	// RefSpec is the serializable form of scenario.HostRef.
	RefSpec = scenario.RefSpec
	// SwitchRefSpec is the serializable form of scenario.SwitchRef.
	SwitchRefSpec = scenario.SwitchRefSpec
	// FlowEntry is one explicit transfer of a "flows" component.
	FlowEntry = scenario.FlowEntry
	// TrafficSpec is one workload component, a tagged union over Kind.
	TrafficSpec = scenario.TrafficSpec
	// EventSpec is one timeline entry.
	EventSpec = scenario.EventSpec
)
