package fuzzlab

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/guard"
	"repro/internal/scenario"
)

// Violation is one invariant breach on one run of a Spec.
type Violation struct {
	// Invariant names the breached property: "conservation",
	// "black-hole", "capacity", "fairness", "partition-divergence",
	// "fluid-conservation", "hybrid-determinism", or
	// "hybrid-divergence".
	Invariant string
	// Parts is the partition count of the breaching run (1 = serial).
	Parts int
	// Detail carries the numbers behind the breach.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s (parts=%d): %s", v.Invariant, v.Parts, v.Detail)
}

// Options tunes one Check call.
type Options struct {
	// Parts overrides the partition axis (nil uses Spec.PartsAxis).
	// Counts beyond 1 are ignored on fabrics that cannot shard.
	Parts []int
	// SkipJain disables the fairness-floor invariant.
	SkipJain bool
	// Tamper, when set, mutates the serial Result before the invariants
	// read it — the seam the lab's own tests use to prove a broken
	// counter is caught and shrunk. Production sweeps leave it nil.
	Tamper func(*scenario.Result)
}

// jainFloors is the per-scheme fairness floor on the symmetric
// permutation workload, calibrated against the current implementation
// with wide margin (observed indices sit well above). Schemes absent
// from the map use the conservative default.
var jainFloors = map[string]float64{
	"powertcp": 0.9,
	"hpcc":     0.9,
	"dctcp":    0.9,
	"swift":    0.9,
	"timely":   0.9,
	"dcqcn":    0.9,
	"homa":     0.9,
	"reno":     0.85,
}

const defaultJainFloor = 0.7

// slackBytes is the per-host rounding allowance of the capacity
// invariant: deliveries quantize to whole packets, so the aggregate may
// exceed rate×horizon by up to about one MTU per host.
const slackBytes = 2 * 1500

// Check runs the Spec through every invariant: it builds and runs the
// serial scenario, asserts byte conservation, the no-failure black-hole
// bound, the receive-capacity bound, and (when the workload is a lone
// symmetric permutation) the Jain fairness floor — then re-runs the
// identical spec at each further partition count and requires the
// encoded Results to be byte-identical to the serial run.
//
// A Build or Run error means the Spec itself is malformed (a generator
// bug or a shrinker overshoot) and is returned as the error; only a
// clean run can yield violations.
func Check(sp *Spec, opts Options) ([]Violation, error) {
	axis := opts.Parts
	if axis == nil {
		axis = sp.PartsAxis()
	}
	serial, err := runAt(sp, 1)
	if err != nil {
		return nil, err
	}
	if opts.Tamper != nil {
		opts.Tamper(serial)
	}

	var vs []Violation
	vs = append(vs, checkConservation(sp, serial)...)
	vs = append(vs, checkCapacity(sp, serial)...)
	if !opts.SkipJain {
		vs = append(vs, checkFairness(sp, serial)...)
	}
	if sp.HasFluid() {
		hvs, err := checkHybrid(sp, serial)
		if err != nil {
			return nil, err
		}
		vs = append(vs, hvs...)
	}

	var want bytes.Buffer
	if err := serial.EncodeJSON(&want); err != nil {
		return nil, fmt.Errorf("fuzzlab: encoding serial result: %w", err)
	}
	for _, parts := range axis {
		// Fluid specs are serial by validation (the coupler runs on the
		// one engine), so the partition sweep does not apply to them.
		if parts <= 1 || !sp.Partitionable() || sp.HasFluid() {
			continue
		}
		res, err := runAt(sp, parts)
		if err != nil {
			return nil, fmt.Errorf("fuzzlab: re-running at %d partitions: %w", parts, err)
		}
		var got bytes.Buffer
		if err := res.EncodeJSON(&got); err != nil {
			return nil, fmt.Errorf("fuzzlab: encoding %d-partition result: %w", parts, err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			vs = append(vs, Violation{
				Invariant: "partition-divergence",
				Parts:     parts,
				Detail:    diffJSON(want.Bytes(), got.Bytes()),
			})
		}
	}
	return vs, nil
}

func runAt(sp *Spec, parts int) (*scenario.Result, error) {
	sc, err := sp.Build(parts)
	if err != nil {
		return nil, err
	}
	// Panic capture: a generated spec that crashes the fabric is a
	// finding to report (and shrink), not a reason to kill the sweep.
	return guard.Capture(func() (*scenario.Result, error) { return scenario.Run(sc) })
}

// checkConservation asserts the payload ledger closes: the residual the
// probe computed must be zero, AND the identity recomputed from the
// published scalars must hold — so a corrupted individual counter is
// caught even if the fabric-side ledger still balances. When the
// timeline cuts no link, the failure-loss word must additionally be
// zero: a packet black-holed on a healthy fabric is a routing bug.
func checkConservation(sp *Spec, res *scenario.Result) []Violation {
	var vs []Violation
	emitted := res.Scalar("bytes_emitted")
	delivered := res.Scalar("bytes_delivered")
	dropped := res.Scalar("bytes_dropped")
	lost := res.Scalar("bytes_lost_fail")
	inflight := res.Scalar("bytes_inflight")
	if r := emitted - delivered - dropped - lost - inflight; r != 0 {
		vs = append(vs, Violation{
			Invariant: "conservation", Parts: 1,
			Detail: fmt.Sprintf("emitted %v − delivered %v − dropped %v − lost %v − inflight %v = %v, want 0",
				emitted, delivered, dropped, lost, inflight, r),
		})
	}
	if r := res.Scalar("bytes_residual"); r != 0 {
		vs = append(vs, Violation{
			Invariant: "conservation", Parts: 1,
			Detail: fmt.Sprintf("fabric ledger residual %v, want 0", r),
		})
	}
	if !sp.HasFailures() && lost != 0 {
		vs = append(vs, Violation{
			Invariant: "black-hole", Parts: 1,
			Detail: fmt.Sprintf("%v bytes lost to downed wires on a timeline with no link failures", lost),
		})
	}
	return vs
}

// checkCapacity bounds aggregate delivery by the receive line rate: no
// host can accept payload faster than its NIC drains it.
func checkCapacity(sp *Spec, res *scenario.Result) []Violation {
	perHost := deliveredByHost(res)
	rxGbps := res.Scalar("rx_cap_gbps_per_host")
	if perHost == nil || rxGbps <= 0 {
		return nil
	}
	horizonSec := float64(sp.HorizonUS) * 1e-6
	capPerHost := rxGbps * 1e9 / 8 * horizonSec
	var total float64
	for _, d := range perHost {
		if d > capPerHost+slackBytes {
			return []Violation{{
				Invariant: "capacity", Parts: 1,
				Detail: fmt.Sprintf("a host delivered %v bytes, line rate admits %v over %vµs",
					d, capPerHost, sp.HorizonUS),
			}}
		}
		total += d
	}
	if lim := capPerHost*float64(len(perHost)) + slackBytes*float64(len(perHost)); total > lim {
		return []Violation{{
			Invariant: "capacity", Parts: 1,
			Detail: fmt.Sprintf("aggregate delivery %v bytes exceeds fabric receive capacity %v", total, lim),
		}}
	}
	return nil
}

// checkFairness applies the Jain-index floor when the workload is
// exactly one symmetric permutation on an event-free symmetric fabric —
// the only shape where every host is statistically interchangeable and
// a fairness floor is sound.
func checkFairness(sp *Spec, res *scenario.Result) []Violation {
	// A fluid component delivers no per-host packet bytes, so the
	// per-host series the index reads would be vacuously uniform.
	if len(sp.Traffic) != 1 || sp.Traffic[0].Kind != "permutation" ||
		sp.Traffic[0].Override != "" || sp.Traffic[0].Fidelity != "" ||
		len(sp.Events) != 0 || sp.HorizonUS < 200 {
		return nil
	}
	perHost := deliveredByHost(res)
	if len(perHost) < 2 {
		return nil
	}
	idx := jain(perHost)
	floor, ok := jainFloors[sp.Scheme]
	if !ok {
		floor = defaultJainFloor
	}
	if idx < floor {
		return []Violation{{
			Invariant: "fairness", Parts: 1,
			Detail: fmt.Sprintf("Jain index %.3f below the %s floor %.2f on a symmetric permutation",
				idx, sp.Scheme, floor),
		}}
	}
	return nil
}

func deliveredByHost(res *scenario.Result) []float64 {
	for _, s := range res.Series {
		if s.Name == "delivered_bytes_by_host" {
			out := make([]float64, 0, len(s.Points))
			for _, p := range s.Points {
				out = append(out, p.V)
			}
			return out
		}
	}
	return nil
}

// jain returns the Jain fairness index of the allocation: 1 when all
// shares are equal, 1/n when one host takes everything.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1 // nothing delivered anywhere is (vacuously) fair
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// hybridFCTFactor bounds how far a packet-fidelity foreground flow's
// FCT (equivalently its goodput, size/FCT) may drift when the
// background runs at fluid instead of packet fidelity, across the
// whole generator space. The fluid model is an approximation — on
// adversarial generated mixes (greedy permutations, heavy poisson)
// the honest divergence reaches ~4× — so this is a catastrophe bound,
// not an accuracy contract: it catches a coupler that stops coupling
// (foreground FCTs collapse to unloaded values under a saturating
// background) or runs away (virtual share starving the foreground).
// The accuracy contract (±10% on calibration scenarios) lives in
// internal/scenario's differential test.
const hybridFCTFactor = 8.0

// runRecorded runs the spec serially and returns both the Result and
// the completed per-flow records (which scenario.Run discards on
// release).
func runRecorded(sp *Spec) (*scenario.Result, []scenario.FlowRecord, error) {
	sc, err := sp.Build(1)
	if err != nil {
		return nil, nil, err
	}
	var recs []scenario.FlowRecord
	res, err := guard.Capture(func() (*scenario.Result, error) {
		p, err := scenario.Prepare(sc)
		if err != nil {
			return nil, err
		}
		p.DriveTo(p.Horizon())
		res, err := p.Finish()
		if err != nil {
			return nil, err
		}
		recs = append(recs, p.Env().Lab.Records...)
		p.Release()
		return res, nil
	})
	return res, recs, err
}

// uniqueFCTs maps flow size → FCT for sizes that identify exactly one
// completed record — the only pairing between two runs' records that
// is unambiguous without flow identities.
func uniqueFCTs(recs []scenario.FlowRecord) map[int64]float64 {
	count := map[int64]int{}
	fct := map[int64]float64{}
	for _, r := range recs {
		count[r.Size]++
		fct[r.Size] = float64(r.FCT)
	}
	for sz, n := range count {
		if n != 1 {
			delete(fct, sz)
		}
	}
	return fct
}

// checkHybrid runs the hybrid-specific invariant battery on a spec with
// a fluid component:
//
//   - fluid-conservation: the coupler's integer ledger closes exactly —
//     fluid emitted − delivered − backlog ≡ 0 (the packet-side identity,
//     with fluid bytes folded in, is already covered by checkConservation).
//   - hybrid-determinism: two serial runs encode byte-identically; the
//     stand-in for the partition sweep fluid specs cannot take.
//   - hybrid-divergence: rerun with fluid fidelity stripped (all-packet)
//     and bound every unambiguously matched foreground flow's FCT ratio
//     by hybridFCTFactor.
func checkHybrid(sp *Spec, serial *scenario.Result) ([]Violation, error) {
	var vs []Violation
	em := serial.Scalar("fluid_bytes_emitted")
	del := serial.Scalar("fluid_bytes_delivered")
	back := serial.Scalar("fluid_bytes_backlog")
	if r := em - del - back; r != 0 {
		vs = append(vs, Violation{
			Invariant: "fluid-conservation", Parts: 1,
			Detail: fmt.Sprintf("fluid emitted %v − delivered %v − backlog %v = %v, want 0",
				em, del, back, r),
		})
	}

	resA, recsA, err := runRecorded(sp)
	if err != nil {
		return nil, fmt.Errorf("fuzzlab: re-running hybrid spec: %w", err)
	}
	resB, _, err := runRecorded(sp)
	if err != nil {
		return nil, fmt.Errorf("fuzzlab: re-running hybrid spec: %w", err)
	}
	var a, b bytes.Buffer
	if err := resA.EncodeJSON(&a); err != nil {
		return nil, fmt.Errorf("fuzzlab: encoding hybrid result: %w", err)
	}
	if err := resB.EncodeJSON(&b); err != nil {
		return nil, fmt.Errorf("fuzzlab: encoding hybrid result: %w", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		vs = append(vs, Violation{
			Invariant: "hybrid-determinism", Parts: 1,
			Detail: diffJSON(a.Bytes(), b.Bytes()),
		})
	}

	ref := *sp
	ref.Traffic = append([]TrafficSpec(nil), sp.Traffic...)
	for i := range ref.Traffic {
		ref.Traffic[i].Fidelity = ""
	}
	_, refRecs, err := runRecorded(&ref)
	if err != nil {
		return nil, fmt.Errorf("fuzzlab: running all-packet reference: %w", err)
	}
	refFCT := uniqueFCTs(refRecs)
	hybFCT := uniqueFCTs(recsA)
	sizes := make([]int64, 0, len(hybFCT))
	for sz := range hybFCT {
		sizes = append(sizes, sz)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	for _, sz := range sizes {
		h := hybFCT[sz]
		p, ok := refFCT[sz]
		if !ok || p <= 0 {
			// Completed in one fidelity only (horizon edge) or ambiguous
			// in the reference — no sound pairing to compare.
			continue
		}
		if ratio := h / p; ratio > hybridFCTFactor || ratio < 1/hybridFCTFactor {
			vs = append(vs, Violation{
				Invariant: "hybrid-divergence", Parts: 1,
				Detail: fmt.Sprintf("flow of size %d: hybrid FCT %.0fns vs all-packet %.0fns (ratio %.2f exceeds factor %v)",
					sz, h, p, ratio, hybridFCTFactor),
			})
		}
	}
	return vs, nil
}

// diffJSON summarizes where two encoded Results diverge, keeping the
// violation detail readable instead of dumping both documents.
func diffJSON(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("results diverge at line %d: serial %q vs partitioned %q",
				i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("results diverge in length: serial %d lines vs partitioned %d", len(wl), len(gl))
}
