package fuzzlab

import (
	"bytes"
	"fmt"

	"repro/internal/guard"
	"repro/internal/scenario"
)

// Violation is one invariant breach on one run of a Spec.
type Violation struct {
	// Invariant names the breached property: "conservation",
	// "black-hole", "capacity", "fairness", or "partition-divergence".
	Invariant string
	// Parts is the partition count of the breaching run (1 = serial).
	Parts int
	// Detail carries the numbers behind the breach.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s (parts=%d): %s", v.Invariant, v.Parts, v.Detail)
}

// Options tunes one Check call.
type Options struct {
	// Parts overrides the partition axis (nil uses Spec.PartsAxis).
	// Counts beyond 1 are ignored on fabrics that cannot shard.
	Parts []int
	// SkipJain disables the fairness-floor invariant.
	SkipJain bool
	// Tamper, when set, mutates the serial Result before the invariants
	// read it — the seam the lab's own tests use to prove a broken
	// counter is caught and shrunk. Production sweeps leave it nil.
	Tamper func(*scenario.Result)
}

// jainFloors is the per-scheme fairness floor on the symmetric
// permutation workload, calibrated against the current implementation
// with wide margin (observed indices sit well above). Schemes absent
// from the map use the conservative default.
var jainFloors = map[string]float64{
	"powertcp": 0.9,
	"hpcc":     0.9,
	"dctcp":    0.9,
	"swift":    0.9,
	"timely":   0.9,
	"dcqcn":    0.9,
	"homa":     0.9,
	"reno":     0.85,
}

const defaultJainFloor = 0.7

// slackBytes is the per-host rounding allowance of the capacity
// invariant: deliveries quantize to whole packets, so the aggregate may
// exceed rate×horizon by up to about one MTU per host.
const slackBytes = 2 * 1500

// Check runs the Spec through every invariant: it builds and runs the
// serial scenario, asserts byte conservation, the no-failure black-hole
// bound, the receive-capacity bound, and (when the workload is a lone
// symmetric permutation) the Jain fairness floor — then re-runs the
// identical spec at each further partition count and requires the
// encoded Results to be byte-identical to the serial run.
//
// A Build or Run error means the Spec itself is malformed (a generator
// bug or a shrinker overshoot) and is returned as the error; only a
// clean run can yield violations.
func Check(sp *Spec, opts Options) ([]Violation, error) {
	axis := opts.Parts
	if axis == nil {
		axis = sp.PartsAxis()
	}
	serial, err := runAt(sp, 1)
	if err != nil {
		return nil, err
	}
	if opts.Tamper != nil {
		opts.Tamper(serial)
	}

	var vs []Violation
	vs = append(vs, checkConservation(sp, serial)...)
	vs = append(vs, checkCapacity(sp, serial)...)
	if !opts.SkipJain {
		vs = append(vs, checkFairness(sp, serial)...)
	}

	var want bytes.Buffer
	if err := serial.EncodeJSON(&want); err != nil {
		return nil, fmt.Errorf("fuzzlab: encoding serial result: %w", err)
	}
	for _, parts := range axis {
		if parts <= 1 || !sp.Partitionable() {
			continue
		}
		res, err := runAt(sp, parts)
		if err != nil {
			return nil, fmt.Errorf("fuzzlab: re-running at %d partitions: %w", parts, err)
		}
		var got bytes.Buffer
		if err := res.EncodeJSON(&got); err != nil {
			return nil, fmt.Errorf("fuzzlab: encoding %d-partition result: %w", parts, err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			vs = append(vs, Violation{
				Invariant: "partition-divergence",
				Parts:     parts,
				Detail:    diffJSON(want.Bytes(), got.Bytes()),
			})
		}
	}
	return vs, nil
}

func runAt(sp *Spec, parts int) (*scenario.Result, error) {
	sc, err := sp.Build(parts)
	if err != nil {
		return nil, err
	}
	// Panic capture: a generated spec that crashes the fabric is a
	// finding to report (and shrink), not a reason to kill the sweep.
	return guard.Capture(func() (*scenario.Result, error) { return scenario.Run(sc) })
}

// checkConservation asserts the payload ledger closes: the residual the
// probe computed must be zero, AND the identity recomputed from the
// published scalars must hold — so a corrupted individual counter is
// caught even if the fabric-side ledger still balances. When the
// timeline cuts no link, the failure-loss word must additionally be
// zero: a packet black-holed on a healthy fabric is a routing bug.
func checkConservation(sp *Spec, res *scenario.Result) []Violation {
	var vs []Violation
	emitted := res.Scalar("bytes_emitted")
	delivered := res.Scalar("bytes_delivered")
	dropped := res.Scalar("bytes_dropped")
	lost := res.Scalar("bytes_lost_fail")
	inflight := res.Scalar("bytes_inflight")
	if r := emitted - delivered - dropped - lost - inflight; r != 0 {
		vs = append(vs, Violation{
			Invariant: "conservation", Parts: 1,
			Detail: fmt.Sprintf("emitted %v − delivered %v − dropped %v − lost %v − inflight %v = %v, want 0",
				emitted, delivered, dropped, lost, inflight, r),
		})
	}
	if r := res.Scalar("bytes_residual"); r != 0 {
		vs = append(vs, Violation{
			Invariant: "conservation", Parts: 1,
			Detail: fmt.Sprintf("fabric ledger residual %v, want 0", r),
		})
	}
	if !sp.HasFailures() && lost != 0 {
		vs = append(vs, Violation{
			Invariant: "black-hole", Parts: 1,
			Detail: fmt.Sprintf("%v bytes lost to downed wires on a timeline with no link failures", lost),
		})
	}
	return vs
}

// checkCapacity bounds aggregate delivery by the receive line rate: no
// host can accept payload faster than its NIC drains it.
func checkCapacity(sp *Spec, res *scenario.Result) []Violation {
	perHost := deliveredByHost(res)
	rxGbps := res.Scalar("rx_cap_gbps_per_host")
	if perHost == nil || rxGbps <= 0 {
		return nil
	}
	horizonSec := float64(sp.HorizonUS) * 1e-6
	capPerHost := rxGbps * 1e9 / 8 * horizonSec
	var total float64
	for _, d := range perHost {
		if d > capPerHost+slackBytes {
			return []Violation{{
				Invariant: "capacity", Parts: 1,
				Detail: fmt.Sprintf("a host delivered %v bytes, line rate admits %v over %vµs",
					d, capPerHost, sp.HorizonUS),
			}}
		}
		total += d
	}
	if lim := capPerHost*float64(len(perHost)) + slackBytes*float64(len(perHost)); total > lim {
		return []Violation{{
			Invariant: "capacity", Parts: 1,
			Detail: fmt.Sprintf("aggregate delivery %v bytes exceeds fabric receive capacity %v", total, lim),
		}}
	}
	return nil
}

// checkFairness applies the Jain-index floor when the workload is
// exactly one symmetric permutation on an event-free symmetric fabric —
// the only shape where every host is statistically interchangeable and
// a fairness floor is sound.
func checkFairness(sp *Spec, res *scenario.Result) []Violation {
	if len(sp.Traffic) != 1 || sp.Traffic[0].Kind != "permutation" ||
		sp.Traffic[0].Override != "" || len(sp.Events) != 0 || sp.HorizonUS < 200 {
		return nil
	}
	perHost := deliveredByHost(res)
	if len(perHost) < 2 {
		return nil
	}
	idx := jain(perHost)
	floor, ok := jainFloors[sp.Scheme]
	if !ok {
		floor = defaultJainFloor
	}
	if idx < floor {
		return []Violation{{
			Invariant: "fairness", Parts: 1,
			Detail: fmt.Sprintf("Jain index %.3f below the %s floor %.2f on a symmetric permutation",
				idx, sp.Scheme, floor),
		}}
	}
	return nil
}

func deliveredByHost(res *scenario.Result) []float64 {
	for _, s := range res.Series {
		if s.Name == "delivered_bytes_by_host" {
			out := make([]float64, 0, len(s.Points))
			for _, p := range s.Points {
				out = append(out, p.V)
			}
			return out
		}
	}
	return nil
}

// jain returns the Jain fairness index of the allocation: 1 when all
// shares are equal, 1/n when one host takes everything.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1 // nothing delivered anywhere is (vacuously) fair
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// diffJSON summarizes where two encoded Results diverge, keeping the
// violation detail readable instead of dumping both documents.
func diffJSON(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("results diverge at line %d: serial %q vs partitioned %q",
				i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("results diverge in length: serial %d lines vs partitioned %d", len(wl), len(gl))
}
