package fuzzlab

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// TestPinCorpus regenerates testdata/corpus. It is the maintenance tool
// behind the pinned regression set, gated on POWERTCP_FUZZ_PIN=1 so
// normal runs never rewrite testdata.
//
// Each entry plants a distinct counter bug (via the Tamper seam) that a
// real fabric regression could introduce, scans generator seeds for a
// partitionable spec the bug manifests on, shrinks the violation to its
// minimal repro, verifies the repro passes the REAL invariant battery
// at partitions 1/2/4/8 (the tamper was the bug, not the fabric), and
// pins it. The committed corpus is therefore exactly what a genuine
// finding would leave behind, named after the bug class that bred it.
func TestPinCorpus(t *testing.T) {
	if os.Getenv("POWERTCP_FUZZ_PIN") == "" {
		t.Skip("corpus regeneration runs only with POWERTCP_FUZZ_PIN=1")
	}
	scalar := func(name string) func(*scenario.Result) bool {
		return func(res *scenario.Result) bool { return res.Scalar(name) > 0 }
	}
	pins := []struct {
		name string
		// startSeed offsets the seed scan so distinct pins minimize from
		// distinct generated scenarios instead of all collapsing onto the
		// first seed that manifests everything.
		startSeed int64
		// manifests gates seed selection: the planted bug only fires on
		// runs with this property, so the shrunk repro must keep it.
		manifests func(*scenario.Result) bool
		tamper    func(*scenario.Result)
	}{
		{
			// A switch drop counter losing one packet's worth of payload.
			name:      "drop-undercount",
			startSeed: 1,
			manifests: scalar("bytes_dropped"),
			tamper:    func(r *scenario.Result) { r.Scalars["bytes_dropped"] -= 1000 },
		},
		{
			// A downed-wire loss path forgetting part of a packet.
			name:      "fail-loss-undercount",
			startSeed: 10,
			manifests: scalar("bytes_lost_fail"),
			tamper:    func(r *scenario.Result) { r.Scalars["bytes_lost_fail"] -= 48 },
		},
		{
			// A receive path crediting a duplicate delivery.
			name:      "delivery-overcount",
			startSeed: 20,
			manifests: scalar("bytes_delivered"),
			tamper:    func(r *scenario.Result) { r.Scalars["bytes_delivered"] += 1000 },
		},
		{
			// Queued/on-wire words leaking a byte at the horizon.
			name:      "inflight-leak",
			startSeed: 30,
			manifests: scalar("bytes_inflight"),
			tamper:    func(r *scenario.Result) { r.Scalars["bytes_inflight"] -= 1 },
		},
		{
			// A NIC admission counter double-charging an emission.
			name:      "emit-overcount",
			startSeed: 40,
			manifests: scalar("bytes_emitted"),
			tamper:    func(r *scenario.Result) { r.Scalars["bytes_emitted"] += 1500 },
		},
		{
			// Divergence flavor: the serial result drifting from the
			// partitioned runs (here planted into the serial engine-step
			// count, caught by the byte comparison at 2 partitions).
			name:      "partition-step-drift",
			startSeed: 50,
			manifests: scalar("engine_steps"),
			tamper:    func(r *scenario.Result) { r.Scalars["engine_steps"]++ },
		},
	}

	dir := filepath.Join("testdata", "corpus")
	for _, pin := range pins {
		pin := pin
		t.Run(pin.name, func(t *testing.T) {
			parts := []int{1}
			if pin.name == "partition-step-drift" {
				parts = []int{1, 2}
			}
			opts := Options{Parts: parts, SkipJain: true, Tamper: func(r *scenario.Result) {
				if pin.manifests(r) {
					pin.tamper(r)
				}
			}}
			found := false
			for seed := pin.startSeed; seed <= pin.startSeed+400 && !found; seed++ {
				sp := Generate(seed)
				if !sp.Partitionable() {
					continue
				}
				res, err := runAt(&sp, 1)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !pin.manifests(res) {
					continue
				}
				vs, err := Check(&sp, opts)
				if err != nil || len(vs) == 0 {
					continue
				}
				shrunk := Shrink(sp, func(c *Spec) bool {
					cvs, cerr := Check(c, opts)
					return cerr == nil && len(cvs) > 0
				})
				// The tamper stood in for the fabric bug; the minimized
				// repro must be clean under the real invariants before it
				// can gate regressions.
				rvs, rerr := Check(&shrunk, Options{})
				if rerr != nil {
					t.Fatalf("seed %d: shrunk repro does not run: %v", seed, rerr)
				}
				if len(rvs) > 0 {
					t.Fatalf("seed %d: shrunk repro fails the real invariants: %v", seed, rvs)
				}
				shrunk.Name = pin.name
				path, err := WriteRepro(dir, &shrunk)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("seed %d shrunk to %d component(s), %d event(s) → %s",
					seed, len(shrunk.Traffic), len(shrunk.Events), path)
				found = true
			}
			if !found {
				t.Fatalf("no seed in 1..400 manifests %s", pin.name)
			}
		})
	}
}
