package fuzzlab

import (
	"math/rand"
)

// BaseSchemes is the pool the generator draws base schemes from — every
// registered family that runs on switched topologies.
var BaseSchemes = []string{
	"powertcp", "hpcc", "dctcp", "swift", "timely", "reno", "dcqcn", "homa",
}

// overrideSchemes are the per-component overrides safe on any
// window-transport base: they need no INT and no ECN marking, so
// resolveOverride accepts them regardless of the fabric the base scheme
// built. HOMA bases take no overrides at all.
var overrideSchemes = []string{"reno", "cubic", "swift", "timely"}

// fabricInfo mirrors the geometry the generated topology will resolve
// to, so component generation can respect selector bounds without
// building the network.
type fabricInfo struct {
	hosts, racks, perRack int
}

func (f fabricInfo) multiRack() bool { return f.racks > 1 }

// Generate derives a well-formed Spec from a seed: every spec it
// returns must Build and Run cleanly — the invariant checker treats a
// Run error on a generated spec as a generator bug, not a finding. All
// randomness flows from the one seeded source, so the mapping is a pure
// function of seed.
func Generate(seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	sp := Spec{Seed: seed}
	sp.Scheme = BaseSchemes[rng.Intn(len(BaseSchemes))]
	sp.HorizonUS = 150 + rng.Int63n(451)

	var f fabricInfo
	switch roll := rng.Float64(); {
	case roll < 0.25:
		hosts := 3 + rng.Intn(6)
		sp.Topo = TopoSpec{Kind: "star", Hosts: hosts}
		f = fabricInfo{hosts: hosts, racks: 1, perRack: hosts}
	case roll < 0.70:
		leaves := 2 + rng.Intn(2)
		spines := 2 + rng.Intn(2)
		spl := 2 + rng.Intn(2)
		sp.Topo = TopoSpec{Kind: "leafspine", Leaves: leaves, Spines: spines, ServersPerLeaf: spl}
		f = fabricInfo{hosts: leaves * spl, racks: leaves, perRack: spl}
	default:
		// The default 4-pod fat-tree has 8 ToRs; only the rack width varies.
		spt := 1 + rng.Intn(2)
		sp.Topo = TopoSpec{Kind: "fattree", ServersPerTor: spt}
		f = fabricInfo{hosts: 8 * spt, racks: 8, perRack: spt}
	}
	if f.multiRack() && rng.Float64() < 0.2 {
		sp.Topo.Routing = []string{"ecmp", "wecmp"}[rng.Intn(2)]
	}

	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		tr := genComponent(rng, f, sp.HorizonUS)
		if sp.Scheme != "homa" && rng.Float64() < 0.2 {
			tr.Override = overrideSchemes[rng.Intn(len(overrideSchemes))]
		}
		sp.Traffic = append(sp.Traffic, tr)
	}

	// Hybrid co-simulation: with modest probability, promote one eligible
	// component to fluid fidelity. The roll happens before the event
	// block because fluid fidelity excludes link-failure timelines (fluid
	// demand is routed once, before the run) — the generator must respect
	// the same domain rule Run validates, or every fluid spec would be a
	// Build error instead of a checked scenario.
	hasFluid := false
	if rng.Float64() < 0.3 {
		var elig []int
		for i, tr := range sp.Traffic {
			switch tr.Kind {
			case "flows", "poisson", "permutation", "rackpairs":
				elig = append(elig, i)
			}
		}
		if len(elig) > 0 {
			sp.Traffic[elig[rng.Intn(len(elig))]].Fidelity = "fluid"
			hasFluid = true
		}
	}

	// Mid-run events only make sense on fabrics with path redundancy:
	// every generated leaf-spine has ≥2 spines and every fat-tree ToR has
	// 2 aggs, so a single cut degrades without disconnecting.
	if f.multiRack() && !hasFluid && rng.Float64() < 0.5 {
		h := sp.HorizonUS
		failAt := h/5 + rng.Int63n(h/2-h/5+1)
		var a, b SwitchRefSpec
		if sp.Topo.Kind == "leafspine" {
			a = SwitchRefSpec{Tier: "leaf", I: rng.Intn(sp.Topo.Leaves)}
			b = SwitchRefSpec{Tier: "spine", I: rng.Intn(sp.Topo.Spines)}
		} else {
			// A ToR wires to both aggs of its own pod (2 ToRs and 2 aggs per
			// pod), so pick the cut among links that exist.
			t := rng.Intn(8)
			a = SwitchRefSpec{Tier: "tor", I: t}
			b = SwitchRefSpec{Tier: "agg", I: (t/2)*2 + rng.Intn(2)}
		}
		sp.Events = append(sp.Events, EventSpec{Kind: "fail", AtUS: failAt, A: &a, B: &b})
		if rng.Float64() < 0.5 {
			sp.Events = append(sp.Events, EventSpec{
				Kind: "restore", AtUS: failAt + (h-failAt)/2, A: &a, B: &b,
			})
		}
		sp.ReconvergeUS = 10 + rng.Int63n(41)
	}
	if rng.Float64() < 0.3 {
		inj := genComponent(rng, f, sp.HorizonUS)
		sp.Events = append(sp.Events, EventSpec{
			Kind: "inject", AtUS: sp.HorizonUS/4 + rng.Int63n(sp.HorizonUS/4+1), Inject: &inj,
		})
	}
	return sp
}

// genComponent rolls one traffic component valid on the fabric. Every
// selector it emits stays in bounds by construction.
func genComponent(rng *rand.Rand, f fabricInfo, horizonUS int64) TrafficSpec {
	kinds := []string{"flows", "pulse", "staggered", "permutation"}
	if f.multiRack() {
		kinds = append(kinds, "poisson", "requests", "rackpairs")
	}
	switch kinds[rng.Intn(len(kinds))] {
	case "flows":
		cnt := 1 + rng.Intn(3)
		var list []FlowEntry
		for i := 0; i < cnt; i++ {
			src := rng.Intn(f.hosts)
			dst := rng.Intn(f.hosts - 1)
			if dst >= src {
				dst++
			}
			size := int64(2000 + rng.Int63n(98001))
			if rng.Float64() < 0.1 {
				size = -1 // Unbounded
			}
			list = append(list, FlowEntry{
				StartUS: rng.Int63n(horizonUS/3 + 1),
				Src:     &RefSpec{Kind: "host", I: src},
				Dst:     &RefSpec{Kind: "host", I: dst},
				Size:    size,
			})
		}
		return TrafficSpec{Kind: "flows", Flows: list}
	case "pulse":
		tr := TrafficSpec{
			Kind:     "pulse",
			AtUS:     rng.Int63n(horizonUS/4 + 1),
			Receiver: &RefSpec{Kind: "host", I: 0},
			FanIn:    2 + rng.Intn(5),
			FlowSize: 5000 + rng.Int63n(75001),
		}
		if !f.multiRack() {
			// On a star the zero span would exclude the receiver's rack —
			// which is every host — so name the sender pool explicitly.
			tr.SpanFrom = &RefSpec{Kind: "host", I: 1}
		}
		return tr
	case "staggered":
		maxCount := f.hosts - 1
		if maxCount > 4 {
			maxCount = 4
		}
		cnt := 1 + rng.Intn(maxCount)
		sizes := []int64{10_000 + rng.Int63n(40_001)}
		if rng.Float64() < 0.5 {
			sizes = append(sizes, 10_000+rng.Int63n(40_001))
		}
		return TrafficSpec{
			Kind:        "staggered",
			Receiver:    &RefSpec{Kind: "host", I: 0},
			FirstSender: &RefSpec{Kind: "host", I: 1},
			Count:       cnt,
			StaggerUS:   5 + rng.Int63n(16),
			Sizes:       sizes,
		}
	case "poisson":
		return TrafficSpec{
			Kind:         "poisson",
			Load:         0.2 + 0.6*rng.Float64(),
			GenHorizonUS: horizonUS,
			SeedOffset:   rng.Int63n(1000),
		}
	case "requests":
		fanIn := 2 + rng.Intn(3)
		if pool := f.hosts - f.perRack; fanIn > pool {
			fanIn = pool
		}
		// Aim for 1–5 expected requests inside the generation horizon.
		expected := float64(1 + rng.Intn(5))
		return TrafficSpec{
			Kind:         "requests",
			RequestRate:  expected / (float64(horizonUS) * 1e-6),
			RequestSize:  20_000 + rng.Int63n(80_001),
			FanIn:        fanIn,
			GenHorizonUS: horizonUS,
			SeedOffset:   rng.Int63n(1000),
		}
	case "rackpairs":
		from := rng.Intn(f.racks)
		to := rng.Intn(f.racks - 1)
		if to >= from {
			to++
		}
		var size int64 // zero means endless pairs
		if rng.Float64() < 0.5 {
			size = 20_000 + rng.Int63n(80_001)
		}
		return TrafficSpec{
			Kind:     "rackpairs",
			FromRack: &RefSpec{Kind: "rack_start", Rack: from},
			ToRack:   &RefSpec{Kind: "rack_start", Rack: to},
			Count:    1 + rng.Intn(f.perRack),
			Size:     size,
		}
	default: // permutation
		return TrafficSpec{Kind: "permutation", SeedOffset: rng.Int63n(1000)}
	}
}
