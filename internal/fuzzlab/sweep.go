package fuzzlab

import (
	"fmt"
	"io"
)

// Finding is one violating seed of a Sweep: the generated spec's
// violations plus its shrunk minimal repro.
type Finding struct {
	Seed       int64
	Violations []Violation
	Shrunk     Spec
}

// Report summarizes one Sweep.
type Report struct {
	// Checked counts the seeds actually run (a stop predicate may cut
	// the sweep short of Seeds).
	Checked int
	// GenErrors counts seeds whose generated spec failed to build or
	// run — always a generator bug, reported but not shrunk.
	GenErrors int
	Findings  []Finding
}

// Sweep checks generated specs for seeds start, start+1, … until n
// seeds ran or stop returns true (stop is consulted between seeds; nil
// never stops — deadline policy belongs to the caller, since this
// package is sim-path code and takes no wall-clock readings). Every
// violating spec is shrunk under the same options before it is
// reported. Progress lines go to w when non-nil.
func Sweep(start int64, n int, opts Options, stop func() bool, w io.Writer) Report {
	var rep Report
	for i := 0; i < n; i++ {
		if stop != nil && stop() {
			break
		}
		seed := start + int64(i)
		sp := Generate(seed)
		vs, err := Check(&sp, opts)
		rep.Checked++
		if err != nil {
			rep.GenErrors++
			if w != nil {
				fmt.Fprintf(w, "seed %d: generator emitted an invalid spec: %v\n", seed, err)
			}
			continue
		}
		if len(vs) == 0 {
			continue
		}
		if w != nil {
			for _, v := range vs {
				fmt.Fprintf(w, "seed %d: VIOLATION %s\n", seed, v)
			}
			fmt.Fprintf(w, "seed %d: shrinking…\n", seed)
		}
		shrunk := Shrink(sp, func(c *Spec) bool {
			cvs, cerr := Check(c, opts)
			return cerr == nil && len(cvs) > 0
		})
		rep.Findings = append(rep.Findings, Finding{Seed: seed, Violations: vs, Shrunk: shrunk})
		if w != nil {
			fmt.Fprintf(w, "seed %d: shrunk to %d traffic component(s), %d event(s)\n",
				seed, len(shrunk.Traffic), len(shrunk.Events))
		}
	}
	return rep
}
