package fuzzlab

import (
	"bytes"
)

// maxShrinkTries caps the total candidate evaluations of one Shrink
// call — each evaluation runs full simulations, so a runaway candidate
// space must degrade to "less minimal" rather than "never returns".
const maxShrinkTries = 4096

// Shrink greedily minimizes a failing Spec: it walks a fixed candidate
// order — drop a traffic component, drop an event, clear the override,
// shrink a topology dimension, halve the horizon, simplify a component
// value — accepts the first candidate that still fails, and restarts
// until no candidate fails. failing must report whether a Spec still
// exhibits the violation (a Spec that no longer builds or runs counts
// as not failing). The walk is deterministic: the same input spec and
// predicate always shrink to the same output.
func Shrink(sp Spec, failing func(*Spec) bool) Spec {
	cur := sp
	tries := 0
	for {
		improved := false
		for _, cand := range candidates(&cur) {
			if tries++; tries > maxShrinkTries {
				return cur
			}
			if failing(cand) {
				cur = *cand
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}

func clone(sp *Spec) *Spec {
	c := *sp
	c.Traffic = append([]TrafficSpec(nil), sp.Traffic...)
	for i := range c.Traffic {
		c.Traffic[i].Flows = append([]FlowEntry(nil), c.Traffic[i].Flows...)
		c.Traffic[i].Sizes = append([]int64(nil), c.Traffic[i].Sizes...)
	}
	c.Events = append([]EventSpec(nil), sp.Events...)
	return &c
}

// candidates enumerates every one-step reduction of the spec, in the
// fixed order the shrinker walks. Transforms that would leave the spec
// unchanged are skipped, so an accepted candidate always makes strict
// progress and the loop terminates.
func candidates(sp *Spec) []*Spec {
	base := Canonical(sp)
	var out []*Spec
	add := func(c *Spec) {
		if !bytes.Equal(Canonical(c), base) {
			out = append(out, c)
		}
	}

	for i := range sp.Traffic {
		c := clone(sp)
		c.Traffic = append(c.Traffic[:i:i], c.Traffic[i+1:]...)
		add(c)
	}
	for i := range sp.Events {
		c := clone(sp)
		c.Events = append(c.Events[:i:i], c.Events[i+1:]...)
		add(c)
	}
	if sp.ReconvergeUS != 0 {
		c := clone(sp)
		c.ReconvergeUS = 0
		add(c)
	}
	for i := range sp.Traffic {
		if sp.Traffic[i].Override != "" {
			c := clone(sp)
			c.Traffic[i].Override = ""
			add(c)
		}
	}

	switch sp.Topo.Kind {
	case "star":
		c := clone(sp)
		c.Topo.Hosts = floorHalve(c.Topo.Hosts, 2)
		add(c)
		c = clone(sp)
		c.Topo.Hosts--
		if c.Topo.Hosts >= 2 {
			add(c)
		}
	case "leafspine":
		for _, f := range []func(*TopoSpec){
			func(t *TopoSpec) { t.Leaves = 2 },
			func(t *TopoSpec) { t.Spines = 2 },
			func(t *TopoSpec) { t.ServersPerLeaf = floorHalve(t.ServersPerLeaf, 1) },
		} {
			c := clone(sp)
			f(&c.Topo)
			add(c)
		}
	case "fattree":
		c := clone(sp)
		c.Topo.ServersPerTor = 1
		add(c)
	}
	if sp.Topo.Routing != "" {
		c := clone(sp)
		c.Topo.Routing = ""
		add(c)
	}

	c := clone(sp)
	c.HorizonUS = floorHalve64(c.HorizonUS, 50)
	add(c)

	for i := range sp.Traffic {
		for _, cand := range simplifyComponent(sp, i) {
			add(cand)
		}
	}
	return out
}

// simplifyComponent enumerates the value-level reductions of one
// traffic component.
func simplifyComponent(sp *Spec, i int) []*Spec {
	var out []*Spec
	emit := func(f func(*TrafficSpec)) {
		c := clone(sp)
		f(&c.Traffic[i])
		out = append(out, c)
	}
	switch sp.Traffic[i].Kind {
	case "flows":
		for j := range sp.Traffic[i].Flows {
			j := j
			emit(func(t *TrafficSpec) { t.Flows = append(t.Flows[:j:j], t.Flows[j+1:]...) })
		}
		for j := range sp.Traffic[i].Flows {
			j := j
			emit(func(t *TrafficSpec) { t.Flows[j].StartUS = 0 })
			emit(func(t *TrafficSpec) { t.Flows[j].Size = floorHalve64(t.Flows[j].Size, 1000) })
		}
	case "pulse":
		emit(func(t *TrafficSpec) { t.FanIn = floorHalve(t.FanIn, 1) })
		emit(func(t *TrafficSpec) { t.FlowSize = floorHalve64(t.FlowSize, 1000) })
		emit(func(t *TrafficSpec) { t.AtUS = 0 })
	case "staggered":
		emit(func(t *TrafficSpec) { t.Count = floorHalve(t.Count, 1) })
		if len(sp.Traffic[i].Sizes) > 0 {
			emit(func(t *TrafficSpec) { t.Sizes = t.Sizes[:1] })
			emit(func(t *TrafficSpec) { t.Sizes[0] = floorHalve64(t.Sizes[0], 1000) })
		}
	case "poisson":
		emit(func(t *TrafficSpec) {
			if t.Load > 0.2 {
				t.Load = 0.2
			}
		})
	case "requests":
		emit(func(t *TrafficSpec) { t.FanIn = floorHalve(t.FanIn, 1) })
		emit(func(t *TrafficSpec) { t.RequestSize = floorHalve64(t.RequestSize, 1000) })
	case "rackpairs":
		emit(func(t *TrafficSpec) { t.Count = floorHalve(t.Count, 1) })
		emit(func(t *TrafficSpec) {
			// Replace endless pairs with a finite transfer, then halve it.
			if t.Size == 0 {
				t.Size = 20_000
			} else {
				t.Size = floorHalve64(t.Size, 1000)
			}
		})
	}
	return out
}

func floorHalve(v, floor int) int {
	if h := v / 2; h > floor {
		return h
	}
	return floor
}

func floorHalve64(v, floor int64) int64 {
	if v < 0 {
		return floor // Unbounded shrinks to a small finite transfer
	}
	if h := v / 2; h > floor {
		return h
	}
	return floor
}
