package fuzzlab

import (
	"testing"
)

// FuzzScenario is the native fuzzing entry point: the fuzzer mutates
// generator seeds, and every derived spec must run cleanly and hold
// every invariant (the fairness floor included — generated permutation
// specs are exactly the shape it applies to) plus the two-partition
// byte comparison. Run with `go test -fuzz=FuzzScenario ./internal/fuzzlab`.
func FuzzScenario(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 17, 42, 1 << 40, -9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sp := Generate(seed)
		vs, err := Check(&sp, Options{Parts: []int{1, 2}})
		if err != nil {
			t.Fatalf("seed %d: generated spec does not run: %v", seed, err)
		}
		for _, v := range vs {
			t.Errorf("seed %d: %s", seed, v)
		}
		if t.Failed() {
			shrunk := Shrink(sp, func(c *Spec) bool {
				cvs, cerr := Check(c, Options{Parts: []int{1, 2}})
				return cerr == nil && len(cvs) > 0
			})
			t.Logf("shrunk repro (pin under testdata/corpus):\n%s", Canonical(&shrunk))
		}
	})
}
