package fuzzlab

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/scenario"
)

// Canonical renders a Spec as the corpus JSON form: indented, trailing
// newline, field order fixed by the struct, version stamped. Two specs
// are equal exactly when their canonical bytes are — the equality the
// shrinker and the determinism tests rely on. (The corpus form is the
// human-readable sibling of scenario.MarshalCanonical's compact
// cache-key form; both carry the same version field and decode
// identically under scenario.DecodeSpec.)
func Canonical(sp *Spec) []byte {
	norm := *sp
	if norm.V == 0 {
		norm.V = scenario.SpecVersion
	}
	b, err := json.MarshalIndent(&norm, "", "  ")
	if err != nil {
		// Spec holds only plain data; marshaling cannot fail.
		panic(fmt.Sprintf("fuzzlab: marshaling spec: %v", err))
	}
	return append(b, '\n')
}

// WriteRepro pins a spec under dir as <name>.json (the spec's Name,
// falling back to its seed) and returns the written path. This is how a
// shrunk counterexample becomes a permanent regression test: the pinned
// corpus test re-checks every file here on every run.
func WriteRepro(dir string, sp *Spec) (string, error) {
	name := sp.Name
	if name == "" {
		name = fmt.Sprintf("seed-%d", sp.Seed)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, Canonical(sp), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus reads every *.json spec under dir, sorted by filename so
// iteration order is stable. Each spec's Name is set to its file stem.
func LoadCorpus(dir string) ([]Spec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	specs := make([]Spec, 0, len(names))
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		// Strict decode: a corpus file with a misspelled field would
		// otherwise silently pin a different scenario than it names.
		sp, err := scenario.DecodeSpec(b)
		if err != nil {
			return nil, fmt.Errorf("fuzzlab: corpus file %s: %w", n, err)
		}
		sp.Name = strings.TrimSuffix(n, ".json")
		specs = append(specs, *sp)
	}
	return specs, nil
}
