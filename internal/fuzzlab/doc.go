// Package fuzzlab is the scenario fuzzing and invariant lab: a seeded,
// shrinkable generator of well-formed scenario.Scenario values plus a
// metamorphic invariant checker that runs each generated scenario and
// asserts properties no golden file can express — exact end-to-end byte
// conservation, zero black-holed packets on failure-free timelines,
// aggregate goodput bounded by receiver capacity, per-scheme Jain
// fairness floors on symmetric permutations, and byte-identical Results
// across partition counts (the PDES fabric's central contract).
//
// On a violation, a deterministic greedy shrinker minimizes the
// offending Spec — dropping traffic components and events, shrinking
// topology dims, simplifying values — re-checking at every step, and
// the canonical JSON repro is pinned under testdata/corpus/ as a
// regression test. Three entry points exist: the tier-1 `go test`
// corpus mode, the native `go test -fuzz=FuzzScenario` harness feeding
// generator seeds, and the Sweep deep mode driven by the nightly CI job
// and `powersim -fuzz -deep`.
package fuzzlab
