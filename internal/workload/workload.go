// Package workload generates the paper's traffic (§4.1): the web-search
// flow-size distribution (from the DCTCP measurement study) driven as an
// open-loop Poisson process at a target ToR-uplink load, and the
// synthetic incast workload — a distributed file system where a requester
// fans a query out to servers in other racks that all respond at once.
package workload

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/sim"
	"repro/internal/units"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	Sample(rng *rand.Rand) int64
	Mean() float64
	Name() string
}

// cdfPoint is a knot of an empirical CDF.
type cdfPoint struct {
	size int64
	f    float64
}

// CDFDist samples by inverse-transform over a piecewise-linear CDF.
type CDFDist struct {
	name string
	pts  []cdfPoint
	mean float64
}

// NewCDF builds a distribution from (size, cumulative-probability) knots.
// The first knot's probability mass is uniform on (0, size0].
func NewCDF(name string, sizes []int64, probs []float64) *CDFDist {
	if len(sizes) != len(probs) || len(sizes) == 0 {
		panic("workload: bad CDF spec")
	}
	d := &CDFDist{name: name}
	for i := range sizes {
		d.pts = append(d.pts, cdfPoint{sizes[i], probs[i]})
	}
	sort.Slice(d.pts, func(i, j int) bool { return d.pts[i].f < d.pts[j].f })
	// Mean of the piecewise-linear inverse CDF: each segment contributes
	// Δf × midpoint.
	prevS, prevF := int64(0), 0.0
	for _, p := range d.pts {
		d.mean += (p.f - prevF) * float64(prevS+p.size) / 2
		prevS, prevF = p.size, p.f
	}
	return d
}

// Name implements SizeDist.
func (d *CDFDist) Name() string { return d.name }

// Mean implements SizeDist.
func (d *CDFDist) Mean() float64 { return d.mean }

// Sample implements SizeDist.
func (d *CDFDist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	prevS, prevF := int64(0), 0.0
	for _, p := range d.pts {
		if u <= p.f {
			span := p.f - prevF
			if span <= 0 {
				return p.size
			}
			frac := (u - prevF) / span
			v := float64(prevS) + frac*float64(p.size-prevS)
			if v < 1 {
				v = 1
			}
			return int64(v)
		}
		prevS, prevF = p.size, p.f
	}
	return d.pts[len(d.pts)-1].size
}

// WebSearch returns the web-search flow-size distribution of the DCTCP
// study as used by the HPCC/PowerTCP simulations: heavy-tailed, ~30% of
// flows under 10 KB, ~1.6 MB mean, 30 MB max.
func WebSearch() *CDFDist {
	return NewCDF("websearch",
		[]int64{6_000, 13_000, 19_000, 33_000, 53_000, 133_000, 667_000,
			1_333_000, 3_333_000, 6_667_000, 20_000_000, 30_000_000},
		[]float64{0.15, 0.2, 0.3, 0.4, 0.53, 0.6, 0.7,
			0.8, 0.9, 0.95, 0.99, 1.0})
}

// Fixed returns a degenerate distribution (tests, incast responses).
func Fixed(size int64) *CDFDist {
	return NewCDF("fixed", []int64{size}, []float64{1})
}

// Flow is one generated transfer.
type Flow struct {
	Start sim.Time
	Src   int // host index
	Dst   int
	Size  int64
}

// Poisson generates an open-loop Poisson flow-arrival process.
type Poisson struct {
	// Load is the offered load on the ToR uplinks, 0–1 (§4.1 evaluates
	// 0.2–0.95).
	Load float64
	// UplinkCapPerRack is the aggregate ToR uplink bandwidth of one rack.
	UplinkCapPerRack units.BitRate
	// Racks and HostsPerRack describe the host numbering.
	Racks, HostsPerRack int
	// Dist samples flow sizes.
	Dist SizeDist
	// Seed makes the trace deterministic.
	Seed int64
}

// Generate produces all flows with Start < horizon. Sources are uniform
// over all hosts; destinations uniform over hosts in *other* racks, so
// every generated flow crosses the ToR uplinks the load is defined
// against.
func (p *Poisson) Generate(horizon sim.Duration) []Flow {
	rng := rand.New(rand.NewSource(p.Seed))
	hosts := p.Racks * p.HostsPerRack
	// Aggregate inter-rack byte rate across all racks.
	bytesPerSec := p.Load * float64(p.UplinkCapPerRack) / 8 * float64(p.Racks)
	lambda := bytesPerSec / p.Dist.Mean() // flows per second
	if lambda <= 0 {
		return nil
	}
	var out []Flow
	t := 0.0
	for {
		t += rng.ExpFloat64() / lambda
		at := sim.Duration(t * float64(sim.Second))
		if at >= horizon {
			return out
		}
		src := rng.Intn(hosts)
		dst := src
		for dst/p.HostsPerRack == src/p.HostsPerRack {
			dst = rng.Intn(hosts)
		}
		out = append(out, Flow{
			Start: sim.Time(at),
			Src:   src,
			Dst:   dst,
			Size:  p.Dist.Sample(rng),
		})
	}
}

// Incast generates the synthetic distributed-file-system workload: at
// each request a requester picks FanIn servers uniformly from other
// racks; all respond simultaneously with RequestSize/FanIn bytes.
type Incast struct {
	// RequestRate is requests per second (Fig. 7c/d sweeps 1–16).
	RequestRate float64
	// RequestSize is the total file size per request (Fig. 7e/f: 1–8 MB).
	RequestSize int64
	// FanIn is the number of responding servers per request.
	FanIn int
	// Racks/HostsPerRack describe host numbering.
	Racks, HostsPerRack int
	Seed                int64
}

// Generate produces the response flows for all requests before horizon.
// Responses of one request share a Start time: that is the incast.
func (ic *Incast) Generate(horizon sim.Duration) []Flow {
	rng := rand.New(rand.NewSource(ic.Seed ^ 0x5deece66d))
	hosts := ic.Racks * ic.HostsPerRack
	if ic.RequestRate <= 0 || ic.FanIn <= 0 {
		return nil
	}
	if max := hosts - ic.HostsPerRack; ic.FanIn > max {
		ic.FanIn = max // cannot fan wider than the other racks' servers
	}
	per := int64(math.Ceil(float64(ic.RequestSize) / float64(ic.FanIn)))
	var out []Flow
	t := 0.0
	for {
		t += rng.ExpFloat64() / ic.RequestRate
		at := sim.Duration(t * float64(sim.Second))
		if at >= horizon {
			return out
		}
		req := rng.Intn(hosts)
		reqRack := req / ic.HostsPerRack
		chosen := map[int]bool{}
		for len(chosen) < ic.FanIn {
			s := rng.Intn(hosts)
			if s/ic.HostsPerRack == reqRack || chosen[s] {
				continue
			}
			chosen[s] = true
		}
		// Deterministic iteration order for reproducibility.
		var servers []int
		for s := range chosen {
			servers = append(servers, s)
		}
		sort.Ints(servers)
		for _, s := range servers {
			out = append(out, Flow{Start: sim.Time(at), Src: s, Dst: req, Size: per})
		}
	}
}

// Permutation derives a fixed-point-free host permutation from the
// seed: every host sends to exactly one host and receives from exactly
// one — the canonical multipath stress pattern.
func Permutation(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed ^ 0x5EED_0F_9E37))
	p := rng.Perm(n)
	for i := 0; i < n; i++ {
		if p[i] == i { // break fixed points deterministically
			j := (i + 1) % n
			p[i], p[j] = p[j], p[i]
		}
	}
	return p
}
