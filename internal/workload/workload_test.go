package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestWebSearchShape(t *testing.T) {
	d := WebSearch()
	rng := rand.New(rand.NewSource(1))
	var short, total int
	var max int64
	for i := 0; i < 100_000; i++ {
		s := d.Sample(rng)
		if s <= 0 || s > 30_000_000 {
			t.Fatalf("sample out of range: %d", s)
		}
		if s <= 10_000 {
			short++
		}
		if s > max {
			max = s
		}
		total++
	}
	// The web-search CDF puts roughly 17% of flows at ≤10KB.
	frac := float64(short) / float64(total)
	if frac < 0.10 || frac < 0.05 || frac > 0.35 {
		t.Fatalf("short-flow fraction = %v", frac)
	}
	if max < 10_000_000 {
		t.Fatalf("heavy tail missing: max sample %d", max)
	}
	// Mean should be heavy-tail dominated: several hundred KB at least.
	if d.Mean() < 300_000 || d.Mean() > 5_000_000 {
		t.Fatalf("mean = %v", d.Mean())
	}
}

// Property: empirical mean of samples approaches the analytic Mean().
func TestCDFMeanConsistent(t *testing.T) {
	d := WebSearch()
	rng := rand.New(rand.NewSource(42))
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	emp := sum / n
	if diff := emp/d.Mean() - 1; diff < -0.1 || diff > 0.1 {
		t.Fatalf("empirical mean %v vs analytic %v", emp, d.Mean())
	}
}

func TestFixedDist(t *testing.T) {
	d := Fixed(5000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if got := d.Sample(rng); got < 1 || got > 5000 {
			t.Fatalf("fixed sample = %d", got)
		}
	}
}

func TestPoissonLoadScaling(t *testing.T) {
	gen := func(load float64) []Flow {
		p := &Poisson{
			Load:             load,
			UplinkCapPerRack: 200 * units.Gbps,
			Racks:            4, HostsPerRack: 8,
			Dist: WebSearch(),
			Seed: 7,
		}
		return p.Generate(20 * sim.Millisecond)
	}
	lo, hi := gen(0.2), gen(0.8)
	if len(hi) < 3*len(lo) {
		t.Fatalf("4x load produced %d vs %d flows", len(hi), len(lo))
	}
	var bytes int64
	for _, f := range hi {
		bytes += f.Size
	}
	// Offered rate should be ≈ load × uplink × racks.
	offered := float64(bytes) * 8 / 0.020
	want := 0.8 * 200e9 * 4
	if offered < want/2 || offered > want*2 {
		t.Fatalf("offered %v bps, want ≈%v", offered, want)
	}
}

func TestPoissonCrossRackOnly(t *testing.T) {
	p := &Poisson{
		Load: 0.5, UplinkCapPerRack: 200 * units.Gbps,
		Racks: 4, HostsPerRack: 8, Dist: WebSearch(), Seed: 3,
	}
	for _, f := range p.Generate(10 * sim.Millisecond) {
		if f.Src/8 == f.Dst/8 {
			t.Fatalf("intra-rack flow generated: %d→%d", f.Src, f.Dst)
		}
		if f.Start < 0 || f.Src == f.Dst {
			t.Fatalf("bad flow %+v", f)
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	p := &Poisson{Load: 0.4, UplinkCapPerRack: 200 * units.Gbps,
		Racks: 2, HostsPerRack: 4, Dist: WebSearch(), Seed: 11}
	a := p.Generate(5 * sim.Millisecond)
	b := p.Generate(5 * sim.Millisecond)
	if len(a) != len(b) {
		t.Fatal("same seed, different traces")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestIncastStructure(t *testing.T) {
	ic := &Incast{
		RequestRate: 100, RequestSize: 2 << 20, FanIn: 16,
		Racks: 4, HostsPerRack: 8, Seed: 5,
	}
	flows := ic.Generate(100 * sim.Millisecond)
	if len(flows) == 0 {
		t.Fatal("no incast flows")
	}
	// Group by start time: each request is FanIn flows to one dst.
	byStart := map[sim.Time][]Flow{}
	for _, f := range flows {
		byStart[f.Start] = append(byStart[f.Start], f)
	}
	for at, group := range byStart {
		if len(group) != 16 {
			t.Fatalf("request at %v has %d responders", at, len(group))
		}
		dst := group[0].Dst
		var total int64
		seen := map[int]bool{}
		for _, f := range group {
			if f.Dst != dst {
				t.Fatal("mixed destinations in one request")
			}
			if f.Src/8 == dst/8 {
				t.Fatal("responder in requester's rack")
			}
			if seen[f.Src] {
				t.Fatal("duplicate responder")
			}
			seen[f.Src] = true
			total += f.Size
		}
		if total < 2<<20 {
			t.Fatalf("request total %d < requested size", total)
		}
	}
}

// Property: incast FanIn clamps to the servers available outside the
// requester's rack and never loops forever.
func TestIncastFanInClamp(t *testing.T) {
	prop := func(fanRaw uint8) bool {
		ic := &Incast{
			RequestRate: 1000, RequestSize: 1 << 20,
			FanIn: int(fanRaw) + 1,
			Racks: 2, HostsPerRack: 4, Seed: 9,
		}
		flows := ic.Generate(5 * sim.Millisecond)
		byStart := map[sim.Time]int{}
		for _, f := range flows {
			byStart[f.Start]++
		}
		for _, n := range byStart {
			if n > 4 { // only 4 hosts outside the requester's rack
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
