// Package stats provides the metrics the evaluation reports: percentile
// distributions (99.9p FCT slowdowns), CDFs of buffer occupancy, time
// series of throughput and queue length, and flow-size binning matching
// the paper's figures.
package stats

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/sim"
	"repro/internal/units"
)

// Dist accumulates samples and answers percentile queries.
type Dist struct {
	vals   []float64
	sorted bool
}

// Add appends one sample.
func (d *Dist) Add(v float64) {
	d.vals = append(d.vals, v)
	d.sorted = false
}

// Count returns the number of samples.
func (d *Dist) Count() int { return len(d.vals) }

// Presize grows the sample buffer to hold n values without further
// allocation. Experiments that know their sample count up front (period
// samplers, per-flow collectors) size the distribution once instead of
// doubling through appends.
func (d *Dist) Presize(n int) {
	if n > len(d.vals) {
		d.vals = slices.Grow(d.vals, n-len(d.vals))
	}
}

// Reset empties the distribution while keeping its backing array, so a
// recycled Dist accumulates the next run's samples allocation-free.
func (d *Dist) Reset() {
	d.vals = d.vals[:0]
	d.sorted = false
}

// Mean returns the sample mean (0 when empty).
func (d *Dist) Mean() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range d.vals {
		s += v
	}
	return s / float64(len(d.vals))
}

// Max returns the largest sample (0 when empty).
func (d *Dist) Max() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	d.sortIfNeeded()
	return d.vals[len(d.vals)-1]
}

func (d *Dist) sortIfNeeded() {
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank on the sorted samples; 0 when empty.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.vals) == 0 {
		return 0
	}
	d.sortIfNeeded()
	if p <= 0 {
		return d.vals[0]
	}
	// Multiply before dividing: for integer p the product p*n is exact
	// in float64 and the single division is correctly rounded, so Ceil
	// lands on the true nearest rank. Dividing first (p/100*n) makes
	// p/100 inexact and can overshoot the rank by one at exact
	// boundaries, e.g. p=28, n=25: 0.28*25 = 7.000000000000001.
	rank := int(math.Ceil(p*float64(len(d.vals))/100)) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(d.vals) {
		rank = len(d.vals) - 1
	}
	return d.vals[rank]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	V float64
	F float64
}

// CDF returns an n-point empirical CDF.
func (d *Dist) CDF(n int) []CDFPoint {
	if len(d.vals) == 0 || n < 2 {
		return nil
	}
	d.sortIfNeeded()
	out := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		idx := int(f * float64(len(d.vals)-1))
		out = append(out, CDFPoint{V: d.vals[idx], F: f})
	}
	return out
}

// TimeSeries records (time, value) pairs.
type TimeSeries struct {
	T []sim.Time
	V []float64
}

// Add appends a point.
func (ts *TimeSeries) Add(t sim.Time, v float64) {
	ts.T = append(ts.T, t)
	ts.V = append(ts.V, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.T) }

// Presize grows both columns to hold n points without further
// allocation (see Dist.Presize).
func (ts *TimeSeries) Presize(n int) {
	if n > len(ts.T) {
		ts.T = slices.Grow(ts.T, n-len(ts.T))
	}
	if n > len(ts.V) {
		ts.V = slices.Grow(ts.V, n-len(ts.V))
	}
}

// Reset empties the series while keeping both backing arrays.
func (ts *TimeSeries) Reset() {
	ts.T = ts.T[:0]
	ts.V = ts.V[:0]
}

// Max returns the maximum value (0 when empty).
func (ts *TimeSeries) Max() float64 {
	m := 0.0
	for _, v := range ts.V {
		if v > m {
			m = v
		}
	}
	return m
}

// MeanFrom averages values at times ≥ from.
func (ts *TimeSeries) MeanFrom(from sim.Time) float64 {
	var s float64
	var n int
	for i, t := range ts.T {
		if t >= from {
			s += ts.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// IdealFCT is the completion time of a flow of the given size on an idle
// path: one base RTT of latency plus serialization at the host rate
// (including per-MSS header overhead).
func IdealFCT(size int64, rate units.BitRate, baseRTT sim.Duration) sim.Duration {
	pkts := (size + 999) / 1000
	wire := size + pkts*48
	return baseRTT + rate.TxTime(wire)
}

// Slowdown is FCT normalized by the ideal FCT (≥ 1 up to noise).
func Slowdown(fct sim.Duration, size int64, rate units.BitRate, baseRTT sim.Duration) float64 {
	return float64(fct) / float64(IdealFCT(size, rate, baseRTT))
}

// FlowSizeBins are the x-axis buckets of Fig. 6 (upper bounds, bytes).
var FlowSizeBins = []int64{5_000, 20_000, 50_000, 100_000, 400_000, 800_000, 5_000_000, 30_000_000}

// ShortFlowMax and LongFlowMin classify flows as in §4.2 (short <10KB;
// long >1MB).
const (
	ShortFlowMax = 10_000
	LongFlowMin  = 1_000_000
)

// BinnedSlowdowns groups flow slowdowns into FlowSizeBins.
type BinnedSlowdowns struct {
	Bins []Dist // parallel to FlowSizeBins
}

// NewBinnedSlowdowns allocates the standard bins.
func NewBinnedSlowdowns() *BinnedSlowdowns {
	return &BinnedSlowdowns{Bins: make([]Dist, len(FlowSizeBins))}
}

// Add records a flow's slowdown in its size bin.
func (b *BinnedSlowdowns) Add(size int64, slowdown float64) {
	for i, hi := range FlowSizeBins {
		if size <= hi {
			b.Bins[i].Add(slowdown)
			return
		}
	}
	b.Bins[len(b.Bins)-1].Add(slowdown)
}

// Row formats one figure row: per-bin p-th percentile slowdown.
func (b *BinnedSlowdowns) Row(p float64) []float64 {
	out := make([]float64, len(b.Bins))
	for i := range b.Bins {
		out[i] = b.Bins[i].Percentile(p)
	}
	return out
}

// String renders a compact table of the 99.9p row.
func (b *BinnedSlowdowns) String() string {
	s := ""
	for i, v := range b.Row(99.9) {
		s += fmt.Sprintf("≤%s:%.1f ", SizeLabel(FlowSizeBins[i]), v)
	}
	return s
}

// SizeLabel renders 5_000 → "5K", 5_000_000 → "5M".
func SizeLabel(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Gbps converts a byte count over a duration into Gbit/s.
func Gbps(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e9
}
