package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestPercentiles(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{{50, 50}, {99, 99}, {100, 100}, {0, 1}, {99.9, 100}}
	for _, c := range cases {
		if got := d.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if d.Mean() != 50.5 {
		t.Errorf("mean = %v", d.Mean())
	}
	if d.Max() != 100 {
		t.Errorf("max = %v", d.Max())
	}
}

func TestEmptyDist(t *testing.T) {
	var d Dist
	if d.Percentile(99) != 0 || d.Mean() != 0 || d.Max() != 0 || d.Count() != 0 {
		t.Fatal("empty dist must return zeros")
	}
	if d.CDF(10) != nil {
		t.Fatal("empty CDF must be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	var d Dist
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		d.Add(rng.Float64() * 100)
	}
	cdf := d.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].V < cdf[i-1].V || cdf[i].F <= cdf[i-1].F {
			t.Fatal("CDF not monotone")
		}
	}
	if cdf[len(cdf)-1].F != 1 {
		t.Fatal("CDF does not reach 1")
	}
}

// Property: Percentile matches a reference nearest-rank implementation.
func TestPercentileModelProperty(t *testing.T) {
	prop := func(vals []float64, pRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var d Dist
		for _, v := range vals {
			d.Add(v)
		}
		p := float64(pRaw % 101)
		got := d.Percentile(p)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		rank := 0
		if p > 0 {
			rank = int(float64(len(sorted))*p/100+0.999999) - 1
			if rank >= len(sorted) {
				rank = len(sorted) - 1
			}
			if rank < 0 {
				rank = 0
			}
		}
		return got == sorted[rank]
	}
	// Fixed seed: the property run must be reproducible in CI. The
	// boundary cases the randomized seed used to trip over are pinned
	// explicitly in TestPercentileRankBoundary below.
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPercentileRankBoundary pins the rank computation at exact
// percentile boundaries. Computing ceil(p/100*n) overshot the nearest
// rank by one whenever p/100 is inexact and p*n/100 is an integer
// (e.g. p=28, n=25: 0.28*25 rounds to 7.000000000000001, so Ceil gave
// rank 8 instead of 7); Percentile now multiplies before dividing.
func TestPercentileRankBoundary(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want float64 // value at the correct nearest rank, samples 1..n
	}{
		{25, 28, 7},  // 28% of 25 = 7 exactly
		{25, 56, 14}, // 56% of 25 = 14 exactly
		{50, 14, 7},
		{100, 7, 7},
		{100, 14, 14},
	}
	for _, c := range cases {
		var d Dist
		for i := 1; i <= c.n; i++ {
			d.Add(float64(i))
		}
		if got := d.Percentile(c.p); got != c.want {
			t.Errorf("P%v of 1..%d = %v, want %v", c.p, c.n, got, c.want)
		}
	}
}

func TestSlowdown(t *testing.T) {
	// A flow finishing in exactly the ideal time has slowdown 1.
	size := int64(100_000)
	rate := 25 * units.Gbps
	rtt := 20 * sim.Microsecond
	ideal := IdealFCT(size, rate, rtt)
	if got := Slowdown(ideal, size, rate, rtt); got != 1 {
		t.Fatalf("slowdown at ideal = %v", got)
	}
	if got := Slowdown(3*ideal, size, rate, rtt); got != 3 {
		t.Fatalf("slowdown at 3x = %v", got)
	}
}

func TestBinnedSlowdowns(t *testing.T) {
	b := NewBinnedSlowdowns()
	b.Add(1_000, 2)      // ≤5K bin
	b.Add(1_500, 4)      // ≤5K bin
	b.Add(600_000, 7)    // ≤800K bin
	b.Add(99_000_000, 9) // beyond last bin → clamped into it
	row := b.Row(100)
	if row[0] != 4 {
		t.Fatalf("bin 5K p100 = %v", row[0])
	}
	if row[5] != 7 {
		t.Fatalf("bin 800K = %v", row[5])
	}
	if row[len(row)-1] != 9 {
		t.Fatalf("last bin = %v", row[len(row)-1])
	}
	if SizeLabel(FlowSizeBins[0]) != "5K" || SizeLabel(30_000_000) != "30M" {
		t.Fatal("size labels broken")
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	ts.Add(sim.Time(sim.Millisecond), 5)
	ts.Add(sim.Time(2*sim.Millisecond), 3)
	if ts.Max() != 5 || ts.Len() != 3 {
		t.Fatalf("max=%v len=%d", ts.Max(), ts.Len())
	}
	if got := ts.MeanFrom(sim.Time(sim.Millisecond)); got != 4 {
		t.Fatalf("MeanFrom = %v", got)
	}
}

func TestGbps(t *testing.T) {
	// 12.5 MB in 1 ms = 100 Gbps.
	if got := Gbps(12_500_000, sim.Millisecond); got < 99.9 || got > 100.1 {
		t.Fatalf("Gbps = %v", got)
	}
	if Gbps(100, 0) != 0 {
		t.Fatal("zero duration must yield 0")
	}
}

// Presize must make accumulation allocation-free and Reset must keep the
// warmed buffer — the telemetry-reuse invariant PERF.md documents.
func TestDistPresizeResetAllocs(t *testing.T) {
	var d Dist
	d.Presize(256)
	allocs := testing.AllocsPerRun(10, func() {
		d.Reset()
		for i := 0; i < 256; i++ {
			d.Add(float64(i % 7))
		}
		_ = d.Percentile(99)
	})
	if allocs > 0.5 {
		t.Fatalf("presized Dist allocates %.2f per run, want 0", allocs)
	}
	// Presize preserves existing samples.
	d.Reset()
	d.Add(1)
	d.Add(2)
	d.Presize(1024)
	if d.Count() != 2 || d.Mean() != 1.5 {
		t.Fatalf("Presize lost samples: count=%d mean=%v", d.Count(), d.Mean())
	}
}

func TestTimeSeriesPresizeResetAllocs(t *testing.T) {
	var ts TimeSeries
	ts.Presize(256)
	allocs := testing.AllocsPerRun(10, func() {
		ts.Reset()
		for i := 0; i < 256; i++ {
			ts.Add(sim.Time(i), float64(i))
		}
	})
	if allocs > 0.5 {
		t.Fatalf("presized TimeSeries allocates %.2f per run, want 0", allocs)
	}
	ts.Reset()
	ts.Add(1, 10)
	ts.Presize(1024)
	if ts.Len() != 1 || ts.V[0] != 10 {
		t.Fatalf("Presize lost points: %+v", ts)
	}
}
