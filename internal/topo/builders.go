package topo

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// StarConfig is N hosts on a single switch — the minimal incast fabric
// used by unit tests and the quickstart example.
type StarConfig struct {
	Hosts     int
	HostRate  units.BitRate
	LinkDelay sim.Duration
	Opts      Options
}

// Star builds a single-switch topology.
func Star(cfg StarConfig) *Network {
	if cfg.HostRate == 0 {
		cfg.HostRate = 25 * units.Gbps
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = sim.Microsecond
	}
	n := newNetwork(cfg.HostRate, cfg.Opts)
	si := n.addSwitch(cfg.Opts)
	for i := 0; i < cfg.Hosts; i++ {
		hi := n.addHost(cfg.Opts.Hosts)
		n.wireHost(hi, si, cfg.HostRate, cfg.LinkDelay, cfg.Opts)
	}
	// RTT: host→switch→host and back = 4 link delays, plus serialization
	// headroom of roughly two MSS packets at the host rate.
	n.BaseRTT = 4*cfg.LinkDelay + 2*cfg.HostRate.TxTime(1048) + 2*sim.Microsecond
	n.finish(cfg.Opts)
	return n
}

// DumbbellConfig is the classic shared-bottleneck microbenchmark: Left
// senders and Right receivers joined by one bottleneck link.
type DumbbellConfig struct {
	Left, Right     int
	HostRate        units.BitRate
	BottleneckRate  units.BitRate
	HostDelay       sim.Duration
	BottleneckDelay sim.Duration
	Opts            Options
}

// Dumbbell builds a two-switch topology with a single bottleneck.
func Dumbbell(cfg DumbbellConfig) *Network {
	if cfg.HostRate == 0 {
		cfg.HostRate = 100 * units.Gbps
	}
	if cfg.BottleneckRate == 0 {
		cfg.BottleneckRate = 100 * units.Gbps
	}
	if cfg.HostDelay == 0 {
		cfg.HostDelay = sim.Microsecond
	}
	if cfg.BottleneckDelay == 0 {
		cfg.BottleneckDelay = 4 * sim.Microsecond
	}
	n := newNetwork(cfg.HostRate, cfg.Opts)
	l := n.addSwitch(cfg.Opts)
	r := n.addSwitch(cfg.Opts)
	n.wireSwitches(l, r, cfg.BottleneckRate, cfg.BottleneckDelay, cfg.Opts)
	for i := 0; i < cfg.Left; i++ {
		hi := n.addHost(cfg.Opts.Hosts)
		n.wireHost(hi, l, cfg.HostRate, cfg.HostDelay, cfg.Opts)
	}
	for i := 0; i < cfg.Right; i++ {
		hi := n.addHost(cfg.Opts.Hosts)
		n.wireHost(hi, r, cfg.HostRate, cfg.HostDelay, cfg.Opts)
	}
	n.BaseRTT = 2*(2*cfg.HostDelay+cfg.BottleneckDelay) +
		4*cfg.BottleneckRate.TxTime(1048) + 2*sim.Microsecond
	n.finish(cfg.Opts)
	return n
}

// BottleneckPort returns the left→right bottleneck port of a Dumbbell
// (its egress queue is the one experiments monitor).
func (n *Network) BottleneckPort() interface {
	QueueBytes() int64
	TxBytes() uint64
} {
	return n.Switches[0].Ports()[0]
}

// LeafSpineConfig is the two-tier Clos fabric of the incast literature
// the paper's synthetic workload cites (Alizadeh & Edsall 2013): every
// leaf connects to every spine. Unlike the pod-structured fat-tree, any
// leaf pair is two hops apart with Spines-way ECMP.
type LeafSpineConfig struct {
	Leaves         int           // default 4
	Spines         int           // default 2
	ServersPerLeaf int           // default 8
	HostRate       units.BitRate // default 25 Gbps
	FabricRate     units.BitRate // default 100 Gbps
	// SpineRates overrides FabricRate per spine (spine i's leaf links run
	// at SpineRates[i]) — the asymmetric-capacity fabric the multipath
	// experiments stress. Shorter slices leave later spines at FabricRate.
	SpineRates []units.BitRate
	LinkDelay  sim.Duration // default 1 µs
	// Parts > 1 shards the fabric for parallel execution using the
	// rack-aligned plan from Partitions (ignored when Opts.Partition is
	// already set).
	Parts int
	Opts  Options
}

func (c *LeafSpineConfig) fillDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 4
	}
	if c.Spines == 0 {
		c.Spines = 2
	}
	if c.ServersPerLeaf == 0 {
		c.ServersPerLeaf = 8
	}
	if c.HostRate == 0 {
		c.HostRate = 25 * units.Gbps
	}
	if c.FabricRate == 0 {
		c.FabricRate = 100 * units.Gbps
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = sim.Microsecond
	}
}

// WithDefaults returns the config with every zero field filled, so
// callers can inspect the effective fabric.
func (c LeafSpineConfig) WithDefaults() LeafSpineConfig {
	c.fillDefaults()
	return c
}

// LeafSwitch returns the switch index of leaf l (leaves come first).
func (c LeafSpineConfig) LeafSwitch(l int) int { return l }

// SpineRate returns the effective leaf-link rate of spine sp: its
// SpineRates override when set, FabricRate otherwise. Builders and
// experiments share this rule.
func (c LeafSpineConfig) SpineRate(sp int) units.BitRate {
	if sp < len(c.SpineRates) && c.SpineRates[sp] > 0 {
		return c.SpineRates[sp]
	}
	return c.FabricRate
}

// SpineSwitch returns the switch index of spine s (after the leaves).
func (c LeafSpineConfig) SpineSwitch(s int) int {
	c.fillDefaults()
	return c.Leaves + s
}

// LeafSpine builds the fabric. Servers [l·ServersPerLeaf,
// (l+1)·ServersPerLeaf) share leaf l; Switches lists leaves then spines.
func LeafSpine(cfg LeafSpineConfig) *Network {
	cfg.fillDefaults()
	if cfg.Parts > 1 && cfg.Opts.Partition == nil {
		cfg.Opts.Partition = cfg.Partitions(cfg.Parts)
	}
	n := newNetwork(cfg.HostRate, cfg.Opts)
	leaves := make([]int, cfg.Leaves)
	spines := make([]int, cfg.Spines)
	for i := range leaves {
		leaves[i] = n.addSwitch(cfg.Opts)
	}
	for i := range spines {
		spines[i] = n.addSwitch(cfg.Opts)
	}
	for l := range leaves {
		for s := 0; s < cfg.ServersPerLeaf; s++ {
			hi := n.addHost(cfg.Opts.Hosts)
			n.wireHost(hi, leaves[l], cfg.HostRate, cfg.LinkDelay, cfg.Opts)
		}
		for sp := range spines {
			n.wireSwitches(leaves[l], spines[sp], cfg.SpineRate(sp), cfg.LinkDelay, cfg.Opts)
		}
	}
	// Cross-leaf path: host→leaf→spine→leaf→host.
	n.BaseRTT = 8*cfg.LinkDelay + 2*cfg.HostRate.TxTime(1048) +
		2*cfg.FabricRate.TxTime(1048) + 2*sim.Microsecond
	n.finish(cfg.Opts)
	return n
}

// ParkingLotConfig is the classic multi-bottleneck chain: Switches
// switches in a line, one host on each, plus one "through" sender at the
// head and receiver at the tail. The through flow crosses every link;
// cross flows each load one link. §3.5 uses this structure to explain
// why INT (which sees the *most* bottlenecked hop) beats RTT (which sees
// the *sum* of queuing delays) on multi-bottleneck paths.
type ParkingLotConfig struct {
	Switches  int           // chain length (≥2)
	HostRate  units.BitRate // default 100 Gbps
	LinkRate  units.BitRate // switch-switch, default 25 Gbps
	LinkDelay sim.Duration  // default 1 µs
	Opts      Options
}

// ParkingLot builds the chain. Hosts: 0 = through sender, 1 = through
// receiver (on the last switch), then one cross sender + receiver pair
// per link: cross flow i runs host(2+2i) → host(3+2i) over link i
// (switch i → switch i+1).
func ParkingLot(cfg ParkingLotConfig) *Network {
	if cfg.Switches < 2 {
		cfg.Switches = 2
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = 100 * units.Gbps
	}
	if cfg.LinkRate == 0 {
		cfg.LinkRate = 25 * units.Gbps
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = sim.Microsecond
	}
	n := newNetwork(cfg.HostRate, cfg.Opts)
	sw := make([]int, cfg.Switches)
	for i := range sw {
		sw[i] = n.addSwitch(cfg.Opts)
	}
	for i := 0; i+1 < len(sw); i++ {
		n.wireSwitches(sw[i], sw[i+1], cfg.LinkRate, cfg.LinkDelay, cfg.Opts)
	}
	// Through pair.
	h := n.addHost(cfg.Opts.Hosts)
	n.wireHost(h, sw[0], cfg.HostRate, cfg.LinkDelay, cfg.Opts)
	h = n.addHost(cfg.Opts.Hosts)
	n.wireHost(h, sw[len(sw)-1], cfg.HostRate, cfg.LinkDelay, cfg.Opts)
	// Cross pairs, one per inter-switch link.
	for i := 0; i+1 < len(sw); i++ {
		h = n.addHost(cfg.Opts.Hosts)
		n.wireHost(h, sw[i], cfg.HostRate, cfg.LinkDelay, cfg.Opts)
		h = n.addHost(cfg.Opts.Hosts)
		n.wireHost(h, sw[i+1], cfg.HostRate, cfg.LinkDelay, cfg.Opts)
	}
	// Worst-case RTT: the through path.
	oneWay := sim.Duration(cfg.Switches+1) * cfg.LinkDelay
	n.BaseRTT = 2*oneWay + sim.Duration(cfg.Switches)*2*cfg.LinkRate.TxTime(1048) + 2*sim.Microsecond
	n.finish(cfg.Opts)
	return n
}

// FatTreeConfig describes the paper's evaluation topology (§4.1). The
// zero value scaled by ServersPerTor reproduces it exactly; smaller
// ServersPerTor values keep the same structure at lower cost for tests.
type FatTreeConfig struct {
	Pods          int           // default 4
	TorsPerPod    int           // default 2
	AggsPerPod    int           // default 2
	Cores         int           // default 2
	ServersPerTor int           // default 32 (gives 256 servers)
	HostRate      units.BitRate // default 25 Gbps
	FabricRate    units.BitRate // default 100 Gbps
	EdgeDelay     sim.Duration  // default 1 µs (server and intra-pod links)
	CoreDelay     sim.Duration  // default 5 µs (links to core)
	// Parts > 1 shards the fabric for parallel execution using the
	// pod-aligned plan from Partitions (ignored when Opts.Partition is
	// already set).
	Parts int
	Opts  Options
}

// WithDefaults returns the config with every zero field replaced by the
// paper's §4.1 value, so callers can inspect the effective topology.
func (c FatTreeConfig) WithDefaults() FatTreeConfig {
	c.fillDefaults()
	return c
}

func (c *FatTreeConfig) fillDefaults() {
	if c.Pods == 0 {
		c.Pods = 4
	}
	if c.TorsPerPod == 0 {
		c.TorsPerPod = 2
	}
	if c.AggsPerPod == 0 {
		c.AggsPerPod = 2
	}
	if c.Cores == 0 {
		c.Cores = 2
	}
	if c.ServersPerTor == 0 {
		c.ServersPerTor = 32
	}
	if c.HostRate == 0 {
		c.HostRate = 25 * units.Gbps
	}
	if c.FabricRate == 0 {
		c.FabricRate = 100 * units.Gbps
	}
	if c.EdgeDelay == 0 {
		c.EdgeDelay = sim.Microsecond
	}
	if c.CoreDelay == 0 {
		c.CoreDelay = 5 * sim.Microsecond
	}
}

// FatTree builds the oversubscribed fat-tree. Hosts are numbered so that
// servers [t·ServersPerTor, (t+1)·ServersPerTor) share ToR t; ToRs are
// Switches[0..Pods·TorsPerPod), then aggregations, then cores.
func FatTree(cfg FatTreeConfig) *Network {
	cfg.fillDefaults()
	if cfg.Parts > 1 && cfg.Opts.Partition == nil {
		cfg.Opts.Partition = cfg.Partitions(cfg.Parts)
	}
	n := newNetwork(cfg.HostRate, cfg.Opts)

	nTors := cfg.Pods * cfg.TorsPerPod
	nAggs := cfg.Pods * cfg.AggsPerPod
	tors := make([]int, nTors)
	aggs := make([]int, nAggs)
	cores := make([]int, cfg.Cores)
	for i := range tors {
		tors[i] = n.addSwitch(cfg.Opts)
	}
	for i := range aggs {
		aggs[i] = n.addSwitch(cfg.Opts)
	}
	for i := range cores {
		cores[i] = n.addSwitch(cfg.Opts)
	}

	for t := 0; t < nTors; t++ {
		for s := 0; s < cfg.ServersPerTor; s++ {
			hi := n.addHost(cfg.Opts.Hosts)
			n.wireHost(hi, tors[t], cfg.HostRate, cfg.EdgeDelay, cfg.Opts)
		}
	}
	for p := 0; p < cfg.Pods; p++ {
		for t := 0; t < cfg.TorsPerPod; t++ {
			for a := 0; a < cfg.AggsPerPod; a++ {
				n.wireSwitches(tors[p*cfg.TorsPerPod+t], aggs[p*cfg.AggsPerPod+a],
					cfg.FabricRate, cfg.EdgeDelay, cfg.Opts)
			}
		}
	}
	for a := 0; a < nAggs; a++ {
		for c := 0; c < cfg.Cores; c++ {
			n.wireSwitches(aggs[a], cores[c], cfg.FabricRate, cfg.CoreDelay, cfg.Opts)
		}
	}

	// Longest round trip: 2×(2·edge (host,tor-agg) + core + core + 2·edge)
	// of propagation plus serialization headroom.
	oneWay := 4*cfg.EdgeDelay + 2*cfg.CoreDelay
	n.BaseRTT = 2*oneWay + 2*cfg.HostRate.TxTime(1048) + 4*cfg.FabricRate.TxTime(1048) + sim.Microsecond
	n.finish(cfg.Opts)
	return n
}

// Racks returns the rack (ToR) count of the configured fat-tree.
func (c FatTreeConfig) Racks() int {
	c.fillDefaults()
	return c.Pods * c.TorsPerPod
}

// TorOf returns the ToR switch index serving host hi in a FatTree built
// with the given config.
func TorOf(cfg FatTreeConfig, hi int) int {
	cfg.fillDefaults()
	return hi / cfg.ServersPerTor
}

// TorUplinkPorts returns the port indexes on ToR t that face the
// aggregation layer (the load metric of §4.1 is offered on ToR uplinks).
func (n *Network) TorUplinkPorts(t int) []int {
	var up []int
	for pi, ref := range n.swPeers[t] {
		if !ref.isHost {
			up = append(up, pi)
		}
	}
	return up
}
