package topo

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/swtch"
	"repro/internal/transport"
	"repro/internal/units"
)

// Node is the endpoint interface topology builders wire up. Both the
// window-transport host and the HOMA host implement it.
type Node interface {
	link.Receiver
	ID() packet.NodeID
	SetUplink(*link.Port)
	NIC() *link.Port
}

// HostFactory constructs an endpoint for the given node ID.
type HostFactory func(eng *sim.Engine, id packet.NodeID) Node

// TransportHosts is a HostFactory for the standard window transport.
func TransportHosts(cfg transport.Config) HostFactory {
	return func(eng *sim.Engine, id packet.NodeID) Node {
		return transport.NewHost(eng, id, cfg)
	}
}

// Options are shared across topology builders.
type Options struct {
	// Hosts constructs endpoints; required.
	Hosts HostFactory
	// BufferPerGbps sizes each switch's shared buffer proportionally to
	// its aggregate port bandwidth, following the paper's
	// "bandwidth-buffer ratio of Intel Tofino switches" (§4.1).
	// 0 keeps buffers unbounded. Tofino is ≈10 KB per Gbps.
	BufferPerGbps int64
	// Alpha is the Dynamic Thresholds factor (default 1).
	Alpha float64
	// INT enables telemetry stamping on every switch.
	INT bool
	// QuantizeINT stamps wire-accurate (quantized) records; see
	// swtch.Config.QuantizeINT.
	QuantizeINT bool
	// ECN configures RED marking (DCQCN runs).
	ECN swtch.ECNConfig
	// Queues builds the per-port queue discipline; nil means FIFO.
	Queues func() queue.Queue
	// Seed feeds all deterministic randomness derived from the topology.
	Seed int64
	// Routing selects the multipath strategy the control plane installs
	// (route.SinglePath, route.ECMP, route.WeightedECMP); nil means
	// per-flow ECMP, the behavior fabrics default to.
	Routing route.Strategy
	// Engine, when non-nil, is the event engine the network runs on —
	// the seam suite harnesses use to hand a Reset() engine (warmed slot
	// rings and node free list) from one run to the next. Nil builds a
	// fresh engine. The engine must be at time zero with no pending
	// events.
	Engine *sim.Engine
}

// TofinoBufferPerGbps is the default buffer/bandwidth ratio (§4.1).
const TofinoBufferPerGbps int64 = 10 * 1024

// Network is a wired topology ready to run experiments on.
type Network struct {
	Eng      *sim.Engine
	Hosts    []Node
	Switches []*swtch.Switch
	BaseRTT  sim.Duration
	HostRate units.BitRate
	// Pool is the engine-wide packet free list every endpoint and switch
	// recycles through.
	Pool *packet.Pool
	// Router is the routing control plane: it computed the installed
	// tables and can fail/restore links and reconverge (internal/route).
	Router *route.Router

	nextFlow uint64
	swPeers  [][]peerRef // per switch, per port: what the port points at
}

type peerRef struct {
	isHost bool
	idx    int // index into Hosts or Switches
}

// NextFlowID hands out unique flow IDs.
func (n *Network) NextFlowID() packet.FlowID {
	n.nextFlow++
	return packet.FlowID(n.nextFlow)
}

// TransportHost returns host i as a *transport.Host, panicking if the
// network was built with a different endpoint type.
func (n *Network) TransportHost(i int) *transport.Host {
	h, ok := n.Hosts[i].(*transport.Host)
	if !ok {
		panic(fmt.Sprintf("topo: host %d is %T, not *transport.Host", i, n.Hosts[i]))
	}
	return h
}

// HostID returns the node ID of host i.
func (n *Network) HostID(i int) packet.NodeID { return n.Hosts[i].ID() }

// newNetwork allocates the shell all builders fill in.
func newNetwork(hostRate units.BitRate, opts Options) *Network {
	eng := opts.Engine
	if eng == nil {
		eng = sim.New()
	}
	return &Network{Eng: eng, HostRate: hostRate, Pool: packet.NewPool()}
}

// poolUser lets endpoints opt into the network-wide packet free list
// without widening the HostFactory signature.
type poolUser interface {
	SetPool(*packet.Pool)
}

func (n *Network) addHost(f HostFactory) int {
	id := packet.NodeID(len(n.Hosts))
	h := f(n.Eng, id)
	if pu, ok := h.(poolUser); ok {
		pu.SetPool(n.Pool)
	}
	n.Hosts = append(n.Hosts, h)
	return len(n.Hosts) - 1
}

func (n *Network) addSwitch(opts Options) int {
	// Switch node IDs live above host IDs; they only matter for debug
	// output since routing is table-driven.
	id := packet.NodeID(1<<16 + len(n.Switches))
	s := swtch.New(n.Eng, id, swtch.Config{
		Alpha:       opts.Alpha,
		INT:         opts.INT,
		QuantizeINT: opts.QuantizeINT,
		ECN:         opts.ECN,
		Seed:        opts.Seed,
		Pool:        n.Pool,
	})
	n.Switches = append(n.Switches, s)
	n.swPeers = append(n.swPeers, nil)
	return len(n.Switches) - 1
}

func (n *Network) qFor(opts Options) queue.Queue {
	if opts.Queues != nil {
		return opts.Queues()
	}
	return nil
}

// wireHost connects host hi and switch si bidirectionally.
func (n *Network) wireHost(hi, si int, rate units.BitRate, delay sim.Duration, opts Options) {
	h := n.Hosts[hi]
	s := n.Switches[si]
	up := link.NewPort(n.Eng, rate, delay, s)
	up.Name = fmt.Sprintf("host%d.nic", hi)
	up.Pool = n.Pool
	h.SetUplink(up)
	s.AddPort(rate, delay, h, n.qFor(opts))
	n.swPeers[si] = append(n.swPeers[si], peerRef{isHost: true, idx: hi})
}

// wireSwitches connects switches ai and bi bidirectionally.
func (n *Network) wireSwitches(ai, bi int, rate units.BitRate, delay sim.Duration, opts Options) {
	n.Switches[ai].AddPort(rate, delay, n.Switches[bi], n.qFor(opts))
	n.swPeers[ai] = append(n.swPeers[ai], peerRef{idx: bi})
	n.Switches[bi].AddPort(rate, delay, n.Switches[ai], n.qFor(opts))
	n.swPeers[bi] = append(n.swPeers[bi], peerRef{idx: ai})
}

// finish sizes the shared buffers and hands the wired graph to the
// routing control plane, which computes and installs the tables under
// the configured strategy (per-flow ECMP by default).
func (n *Network) finish(opts Options) {
	if opts.BufferPerGbps > 0 {
		for _, s := range n.Switches {
			var gbps int64
			for _, pt := range s.Ports() {
				gbps += int64(pt.Rate / units.Gbps)
			}
			s.Shared().Total = opts.BufferPerGbps * gbps
		}
	}
	graph := make([][]route.PortRef, len(n.Switches))
	installers := make([]route.Installer, len(n.Switches))
	for si, s := range n.Switches {
		installers[si] = s
		ports := s.Ports()
		refs := make([]route.PortRef, len(n.swPeers[si]))
		for pi, peer := range n.swPeers[si] {
			refs[pi] = route.PortRef{Link: ports[pi]}
			if peer.isHost {
				refs[pi].ToHost = true
				refs[pi].Host = peer.idx
				refs[pi].HostID = n.Hosts[peer.idx].ID()
			} else {
				refs[pi].Peer = peer.idx
			}
		}
		graph[si] = refs
	}
	n.Router = route.NewRouter(n.Eng, graph, installers, opts.Routing)
}
