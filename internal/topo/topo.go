package topo

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/psim"
	"repro/internal/queue"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/swtch"
	"repro/internal/transport"
	"repro/internal/units"
)

// Node is the endpoint interface topology builders wire up. Both the
// window-transport host and the HOMA host implement it.
type Node interface {
	link.Receiver
	ID() packet.NodeID
	SetUplink(*link.Port)
	NIC() *link.Port
}

// HostFactory constructs an endpoint for the given node ID.
type HostFactory func(eng *sim.Engine, id packet.NodeID) Node

// TransportHosts is a HostFactory for the standard window transport.
func TransportHosts(cfg transport.Config) HostFactory {
	return func(eng *sim.Engine, id packet.NodeID) Node {
		return transport.NewHost(eng, id, cfg)
	}
}

// Options are shared across topology builders.
type Options struct {
	// Hosts constructs endpoints; required.
	Hosts HostFactory
	// BufferPerGbps sizes each switch's shared buffer proportionally to
	// its aggregate port bandwidth, following the paper's
	// "bandwidth-buffer ratio of Intel Tofino switches" (§4.1).
	// 0 keeps buffers unbounded. Tofino is ≈10 KB per Gbps.
	BufferPerGbps int64
	// Alpha is the Dynamic Thresholds factor (default 1).
	Alpha float64
	// INT enables telemetry stamping on every switch.
	INT bool
	// QuantizeINT stamps wire-accurate (quantized) records; see
	// swtch.Config.QuantizeINT.
	QuantizeINT bool
	// ECN configures RED marking (DCQCN runs).
	ECN swtch.ECNConfig
	// Queues builds the per-port queue discipline; nil means FIFO.
	Queues func() queue.Queue
	// Seed feeds all deterministic randomness derived from the topology.
	Seed int64
	// Routing selects the multipath strategy the control plane installs
	// (route.SinglePath, route.ECMP, route.WeightedECMP); nil means
	// per-flow ECMP, the behavior fabrics default to.
	Routing route.Strategy
	// Engine, when non-nil, is the event engine the network runs on —
	// the seam suite harnesses use to hand a Reset() engine (warmed slot
	// rings and node free list) from one run to the next. Nil builds a
	// fresh engine. The engine must be at time zero with no pending
	// events. Under a partition plan this engine becomes the control
	// engine (probes, routing events); each partition gets a fresh
	// engine of its own.
	Engine *sim.Engine
	// Partition, when non-nil with Parts > 1, shards the fabric for
	// parallel execution (internal/psim): every host and switch runs on
	// its partition's engine and packet pool, cut links deliver through
	// mailboxes, and the built Network carries a ready psim.Fabric.
	// Plans come from FatTreeConfig.Partitions / LeafSpineConfig.Partitions.
	Partition *Plan
}

// TofinoBufferPerGbps is the default buffer/bandwidth ratio (§4.1).
const TofinoBufferPerGbps int64 = 10 * 1024

// Network is a wired topology ready to run experiments on.
type Network struct {
	// Eng is the engine a serial network runs on. Under a partition plan
	// it is the control engine: probes and routing events live here and
	// fire single-threaded between partition slices (see internal/psim).
	Eng      *sim.Engine
	Hosts    []Node
	Switches []*swtch.Switch
	BaseRTT  sim.Duration
	HostRate units.BitRate
	// Pool is the engine-wide packet free list every endpoint and switch
	// recycles through. Under a partition plan it aliases Pools[0].
	Pool *packet.Pool
	// Router is the routing control plane: it computed the installed
	// tables and can fail/restore links and reconverge (internal/route).
	Router *route.Router

	// Partitioned-execution state, nil/empty on a serial network: the
	// per-partition engines and packet pools, the plan that placed every
	// entity, and the conservative-sync fabric that runs them.
	Engs  []*sim.Engine
	Pools []*packet.Pool
	Part  *Plan
	PSim  *psim.Fabric

	nextFlow uint64
	swPeers  [][]peerRef // per switch, per port: what the port points at
	hostTor  []int       // per host: index of the switch its NIC points at
}

type peerRef struct {
	isHost bool
	idx    int // index into Hosts or Switches
}

// NextFlowID hands out unique flow IDs.
func (n *Network) NextFlowID() packet.FlowID {
	n.nextFlow++
	return packet.FlowID(n.nextFlow)
}

// TransportHost returns host i as a *transport.Host, panicking if the
// network was built with a different endpoint type.
func (n *Network) TransportHost(i int) *transport.Host {
	h, ok := n.Hosts[i].(*transport.Host)
	if !ok {
		panic(fmt.Sprintf("topo: host %d is %T, not *transport.Host", i, n.Hosts[i]))
	}
	return h
}

// HostID returns the node ID of host i.
func (n *Network) HostID(i int) packet.NodeID { return n.Hosts[i].ID() }

// newNetwork allocates the shell all builders fill in. Under a
// partition plan it also spins up the per-partition engines and pools
// and the psim fabric with one bidirectional sync edge per cut.
func newNetwork(hostRate units.BitRate, opts Options) *Network {
	eng := opts.Engine
	if eng == nil {
		eng = sim.New()
	}
	n := &Network{Eng: eng, HostRate: hostRate, Pool: packet.NewPool()}
	if pl := opts.Partition; pl != nil && pl.Parts > 1 {
		pl.validate()
		n.Part = pl
		n.Engs = make([]*sim.Engine, pl.Parts)
		n.Pools = make([]*packet.Pool, pl.Parts)
		for i := range n.Engs {
			n.Engs[i] = sim.New()
			n.Pools[i] = packet.NewPool()
		}
		// Partition 0 shares the network-wide pool so warmed packets
		// adopted into it (scenario scratch reuse) stay in circulation.
		n.Pools[0] = n.Pool
		n.PSim = psim.New(eng, n.Engs)
		for _, c := range pl.Cuts {
			pa, pb := pl.SwitchPart[c.A], pl.SwitchPart[c.B]
			n.PSim.AddEdge(pa, pb, c.Lookahead)
			n.PSim.AddEdge(pb, pa, c.Lookahead)
		}
	}
	return n
}

// hostPart returns the partition owning host hi (0 when serial).
func (n *Network) hostPart(hi int) int {
	if n.Part == nil {
		return 0
	}
	return n.Part.HostPart[hi]
}

// switchPart returns the partition owning switch si (0 when serial).
func (n *Network) switchPart(si int) int {
	if n.Part == nil {
		return 0
	}
	return n.Part.SwitchPart[si]
}

// engFor returns partition part's engine (the shared engine when serial).
func (n *Network) engFor(part int) *sim.Engine {
	if n.Engs == nil {
		return n.Eng
	}
	return n.Engs[part]
}

// poolFor returns partition part's packet pool (the shared pool when
// serial).
func (n *Network) poolFor(part int) *packet.Pool {
	if n.Pools == nil {
		return n.Pool
	}
	return n.Pools[part]
}

// HostEngine returns the engine host hi runs on: the shared engine on
// a serial network, the owning partition's engine otherwise. Setup code
// that schedules on a host's behalf (flow launches) must use it.
func (n *Network) HostEngine(hi int) *sim.Engine { return n.engFor(n.hostPart(hi)) }

// Steps reports the total number of events executed: the single
// engine's count on a serial network, the sum over control and
// partition engines after a partitioned run — equal by construction.
func (n *Network) Steps() uint64 {
	if n.PSim != nil {
		return n.PSim.Steps()
	}
	return n.Eng.Steps()
}

// poolUser lets endpoints opt into the network-wide packet free list
// without widening the HostFactory signature.
type poolUser interface {
	SetPool(*packet.Pool)
}

func (n *Network) addHost(f HostFactory) int {
	id := packet.NodeID(len(n.Hosts))
	part := n.hostPart(len(n.Hosts))
	h := f(n.engFor(part), id)
	if pu, ok := h.(poolUser); ok {
		pu.SetPool(n.poolFor(part))
	}
	n.Hosts = append(n.Hosts, h)
	return len(n.Hosts) - 1
}

func (n *Network) addSwitch(opts Options) int {
	// Switch node IDs live above host IDs; they only matter for debug
	// output since routing is table-driven.
	id := packet.NodeID(1<<16 + len(n.Switches))
	part := n.switchPart(len(n.Switches))
	s := swtch.New(n.engFor(part), id, swtch.Config{
		Alpha:       opts.Alpha,
		INT:         opts.INT,
		QuantizeINT: opts.QuantizeINT,
		ECN:         opts.ECN,
		Seed:        opts.Seed,
		Pool:        n.poolFor(part),
	})
	n.Switches = append(n.Switches, s)
	n.swPeers = append(n.swPeers, nil)
	return len(n.Switches) - 1
}

func (n *Network) qFor(opts Options) queue.Queue {
	if opts.Queues != nil {
		return opts.Queues()
	}
	return nil
}

// wireHost connects host hi and switch si bidirectionally. Under a
// partition plan host and switch must be co-partitioned — plans keep
// racks whole, so host links are never cuts.
func (n *Network) wireHost(hi, si int, rate units.BitRate, delay sim.Duration, opts Options) {
	part := n.hostPart(hi)
	if sp := n.switchPart(si); sp != part {
		panic(fmt.Sprintf("topo: host %d (partition %d) wired to switch %d (partition %d)", hi, part, si, sp))
	}
	h := n.Hosts[hi]
	s := n.Switches[si]
	up := link.NewPort(n.engFor(part), rate, delay, s)
	up.Name = fmt.Sprintf("host%d.nic", hi)
	up.Pool = n.poolFor(part)
	h.SetUplink(up)
	s.AddPort(rate, delay, h, n.qFor(opts))
	n.swPeers[si] = append(n.swPeers[si], peerRef{isHost: true, idx: hi})
	for len(n.hostTor) <= hi {
		n.hostTor = append(n.hostTor, -1)
	}
	n.hostTor[hi] = si
}

// HostTor returns the index of the switch host hi's NIC points at, or
// -1 for a host wired directly to another host (no topology builder
// does that today).
func (n *Network) HostTor(hi int) int {
	if hi >= len(n.hostTor) {
		return -1
	}
	return n.hostTor[hi]
}

// WalkRoutes traverses every port a flow from host src to host dst can
// cross under the installed routing tables, calling visit with the
// fraction of the flow's load each port carries when per-flow ECMP
// hashing is averaged over many flows: the NIC carries 1.0, and at each
// switch the incoming fraction splits equally over the candidate ports
// (WCMP weighting arrives for free, since weighted tables repeat
// entries). This is the fluid limit of the packet forwarding path —
// internal/hybrid uses it to compile per-component demand matrices
// into per-link arrival rates. It must be called after the control
// plane has installed tables (any time after the builder returns) and
// reflects the tables as currently installed.
func (n *Network) WalkRoutes(src, dst int, visit func(pt *link.Port, fraction float64)) {
	if src == dst {
		return
	}
	visit(n.Hosts[src].NIC(), 1.0)
	dstID := n.Hosts[dst].ID()
	var walk func(si int, frac float64)
	walk = func(si int, frac float64) {
		s := n.Switches[si]
		cand := s.Route(dstID)
		if len(cand) == 0 {
			return
		}
		f := frac / float64(len(cand))
		ports := s.Ports()
		for _, pi := range cand {
			visit(ports[pi], f)
			if peer := n.swPeers[si][pi]; !peer.isHost {
				walk(peer.idx, f)
			}
		}
	}
	walk(n.hostTor[src], 1.0)
}

// wireSwitches connects switches ai and bi bidirectionally. When the
// two ends live on different partitions, each direction's deliveries
// are rerouted through a psim mailbox instead of a local engine event.
func (n *Network) wireSwitches(ai, bi int, rate units.BitRate, delay sim.Duration, opts Options) {
	pa := n.Switches[ai].AddPort(rate, delay, n.Switches[bi], n.qFor(opts))
	n.swPeers[ai] = append(n.swPeers[ai], peerRef{idx: bi})
	pb := n.Switches[bi].AddPort(rate, delay, n.Switches[ai], n.qFor(opts))
	n.swPeers[bi] = append(n.swPeers[bi], peerRef{idx: ai})
	if wa, wb := n.switchPart(ai), n.switchPart(bi); wa != wb {
		n.crossWire(n.Switches[ai].Ports()[pa], wb, n.Switches[bi])
		n.crossWire(n.Switches[bi].Ports()[pb], wa, n.Switches[ai])
	}
}

// crossWire reroutes pt's deliveries through a mailbox into partition
// dst. The sender consumes a causal child slot at transmit time
// (ChildKey) exactly where a local AtCall would have, so the injected
// delivery carries the canonical key the serial engine would have
// assigned; the delivery callback replicates Port.deliver — the
// wire-down check happens at the arrival instant, on the receiving
// side, with losses counted on the port's remote counter and the
// packet recycled into the receiver's pool.
func (n *Network) crossWire(pt *link.Port, dst int, peer link.Receiver) {
	pool := n.poolFor(dst)
	mb := n.PSim.NewMailbox(dst, func(arg any) {
		p := arg.(*packet.Packet)
		if pt.IsDown() {
			pt.NoteRemoteLost(p.PayloadLen)
			pool.Put(p)
			return
		}
		pt.NoteRemoteDelivered(p.PayloadLen)
		peer.Receive(p)
	})
	pt.X = func(at sim.Time, p *packet.Packet) {
		mb.Post(pt.Eng.ChildKey(at), p)
	}
}

// finish sizes the shared buffers and hands the wired graph to the
// routing control plane, which computes and installs the tables under
// the configured strategy (per-flow ECMP by default).
func (n *Network) finish(opts Options) {
	if opts.BufferPerGbps > 0 {
		for _, s := range n.Switches {
			var gbps int64
			for _, pt := range s.Ports() {
				gbps += int64(pt.Rate / units.Gbps)
			}
			s.Shared().Total = opts.BufferPerGbps * gbps
		}
	}
	graph := make([][]route.PortRef, len(n.Switches))
	installers := make([]route.Installer, len(n.Switches))
	for si, s := range n.Switches {
		installers[si] = s
		ports := s.Ports()
		refs := make([]route.PortRef, len(n.swPeers[si]))
		for pi, peer := range n.swPeers[si] {
			refs[pi] = route.PortRef{Link: ports[pi]}
			if peer.isHost {
				refs[pi].ToHost = true
				refs[pi].Host = peer.idx
				refs[pi].HostID = n.Hosts[peer.idx].ID()
			} else {
				refs[pi].Peer = peer.idx
			}
		}
		graph[si] = refs
	}
	n.Router = route.NewRouter(n.Eng, graph, installers, opts.Routing)
}
