package topo

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/units"
)

// Every host and switch of a fat-tree plan lands in exactly one valid
// partition, hosts follow their ToR, ToRs and aggs follow their pod,
// and the cut list is exactly the agg–core pairs whose partitions
// differ (the fabric wires every agg to every core).
func TestFatTreePartitions(t *testing.T) {
	cfg := FatTreeConfig{}.WithDefaults()
	nTors := cfg.Pods * cfg.TorsPerPod
	nAggs := cfg.Pods * cfg.AggsPerPod
	for _, p := range []int{1, 2, 3, 4, 8} {
		pl := cfg.Partitions(p)
		if pl.Parts != p {
			t.Fatalf("p=%d: Parts = %d", p, pl.Parts)
		}
		if len(pl.HostPart) != nTors*cfg.ServersPerTor {
			t.Fatalf("p=%d: %d host assignments, want %d", p, len(pl.HostPart), nTors*cfg.ServersPerTor)
		}
		if len(pl.SwitchPart) != nTors+nAggs+cfg.Cores {
			t.Fatalf("p=%d: %d switch assignments, want %d", p, len(pl.SwitchPart), nTors+nAggs+cfg.Cores)
		}
		for i, part := range pl.HostPart {
			if part < 0 || part >= p {
				t.Fatalf("p=%d: host %d in partition %d", p, i, part)
			}
			if tor := pl.SwitchPart[i/cfg.ServersPerTor]; part != tor {
				t.Fatalf("p=%d: host %d in partition %d but its ToR in %d", p, i, part, tor)
			}
		}
		for q := 0; q < cfg.Pods; q++ {
			want := q % p
			for tr := 0; tr < cfg.TorsPerPod; tr++ {
				if got := pl.SwitchPart[q*cfg.TorsPerPod+tr]; got != want {
					t.Fatalf("p=%d: pod %d ToR %d in partition %d, want %d", p, q, tr, got, want)
				}
			}
			for a := 0; a < cfg.AggsPerPod; a++ {
				if got := pl.SwitchPart[nTors+q*cfg.AggsPerPod+a]; got != want {
					t.Fatalf("p=%d: pod %d agg %d in partition %d, want %d", p, q, a, got, want)
				}
			}
		}
		// Reconstruct the expected cut set from the physical adjacency:
		// every agg wires to every core.
		wantLook := cfg.CoreDelay + cfg.FabricRate.TxTime(48)
		cuts := map[[2]int]bool{}
		for _, c := range pl.Cuts {
			if pl.SwitchPart[c.A] == pl.SwitchPart[c.B] {
				t.Fatalf("p=%d: cut %d–%d does not cross partitions", p, c.A, c.B)
			}
			if c.Lookahead != wantLook {
				t.Fatalf("p=%d: cut %d–%d lookahead %v, want %v", p, c.A, c.B, c.Lookahead, wantLook)
			}
			if cuts[[2]int{c.A, c.B}] {
				t.Fatalf("p=%d: duplicate cut %d–%d", p, c.A, c.B)
			}
			cuts[[2]int{c.A, c.B}] = true
		}
		for a := 0; a < nAggs; a++ {
			for co := 0; co < cfg.Cores; co++ {
				ai, ci := nTors+a, nTors+nAggs+co
				crosses := pl.SwitchPart[ai] != pl.SwitchPart[ci]
				if crosses != cuts[[2]int{ai, ci}] {
					t.Fatalf("p=%d: agg %d – core %d crossing=%v but cut listed=%v",
						p, a, co, crosses, cuts[[2]int{ai, ci}])
				}
			}
		}
	}
}

// The leaf-spine plan keeps every host with its leaf, assigns leaves
// and spines round-robin, and lists exactly the crossing leaf–spine
// links as cuts — with per-spine lookahead when SpineRates are set.
func TestLeafSpinePartitions(t *testing.T) {
	cfg := LeafSpineConfig{
		Leaves: 4, Spines: 3,
		SpineRates: []units.BitRate{40 * units.Gbps},
	}
	cfg.fillDefaults()
	for _, p := range []int{1, 2, 3, 4, 8} {
		pl := cfg.Partitions(p)
		if len(pl.HostPart) != cfg.Leaves*cfg.ServersPerLeaf {
			t.Fatalf("p=%d: %d host assignments", p, len(pl.HostPart))
		}
		if len(pl.SwitchPart) != cfg.Leaves+cfg.Spines {
			t.Fatalf("p=%d: %d switch assignments", p, len(pl.SwitchPart))
		}
		for i, part := range pl.HostPart {
			if part != pl.SwitchPart[i/cfg.ServersPerLeaf] {
				t.Fatalf("p=%d: host %d not co-partitioned with its leaf", p, i)
			}
		}
		for l := 0; l < cfg.Leaves; l++ {
			if pl.SwitchPart[l] != l%p {
				t.Fatalf("p=%d: leaf %d in partition %d", p, l, pl.SwitchPart[l])
			}
		}
		cuts := map[[2]int]bool{}
		for _, c := range pl.Cuts {
			want := cfg.LinkDelay + cfg.SpineRate(c.B-cfg.Leaves).TxTime(48)
			if c.Lookahead != want {
				t.Fatalf("p=%d: cut %d–%d lookahead %v, want %v", p, c.A, c.B, c.Lookahead, want)
			}
			cuts[[2]int{c.A, c.B}] = true
		}
		for l := 0; l < cfg.Leaves; l++ {
			for sp := 0; sp < cfg.Spines; sp++ {
				crosses := pl.SwitchPart[l] != pl.SwitchPart[cfg.Leaves+sp]
				if crosses != cuts[[2]int{l, cfg.Leaves + sp}] {
					t.Fatalf("p=%d: leaf %d – spine %d crossing=%v but cut listed=%v",
						p, l, sp, crosses, cuts[[2]int{l, cfg.Leaves + sp}])
				}
			}
		}
	}
}

// A plan with more partitions than pods leaves the extras empty and
// still builds a working network.
func TestPartitionsBeyondPods(t *testing.T) {
	cfg := FatTreeConfig{Pods: 2, TorsPerPod: 1, AggsPerPod: 1, Cores: 2, ServersPerTor: 2}
	pl := cfg.Partitions(8)
	if pl.Parts != 8 {
		t.Fatalf("Parts = %d", pl.Parts)
	}
	used := map[int]bool{}
	for _, p := range pl.SwitchPart {
		used[p] = true
	}
	if len(used) != 2 {
		t.Fatalf("expected 2 occupied partitions, got %d", len(used))
	}
	cfg.Parts = 8
	cfg.Opts.Hosts = TransportHosts(transport.Config{BaseRTT: 30 * sim.Microsecond})
	n := FatTree(cfg)
	if n.PSim == nil || len(n.Engs) != 8 {
		t.Fatalf("partitioned build: PSim=%v engines=%d", n.PSim != nil, len(n.Engs))
	}
}
