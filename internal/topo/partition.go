package topo

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// Cut is one switch-switch link crossing a partition boundary. A and B
// are switch indices; Lookahead is the minimum latency of any packet
// crossing the link in either direction — propagation delay plus the
// serialization time of the smallest possible wire frame (a bare
// header) at the link rate. It lower-bounds how far ahead of the
// sender's clock a crossing delivery can land, which is exactly the
// conservative-sync window internal/psim needs.
type Cut struct {
	A, B      int
	Lookahead sim.Duration
}

// Plan assigns every host and switch of a topology to one of Parts
// partitions and lists every cut link. Builders consume it (via
// Options.Partition) to place each entity on its partition's engine and
// packet pool and to wire cut links through mailboxes; see
// FatTreeConfig.Partitions and LeafSpineConfig.Partitions for the
// topology-natural assignment rules.
type Plan struct {
	Parts      int
	HostPart   []int
	SwitchPart []int
	Cuts       []Cut
}

// validate panics on an internally inconsistent plan — a partition
// index out of range or a cut that does not cross partitions. Builders
// call it so a hand-written plan fails at construction, not as a
// determinism divergence later.
func (pl *Plan) validate() {
	for i, p := range pl.HostPart {
		if p < 0 || p >= pl.Parts {
			panic(fmt.Sprintf("topo: host %d assigned to partition %d of %d", i, p, pl.Parts))
		}
	}
	for i, p := range pl.SwitchPart {
		if p < 0 || p >= pl.Parts {
			panic(fmt.Sprintf("topo: switch %d assigned to partition %d of %d", i, p, pl.Parts))
		}
	}
	for _, c := range pl.Cuts {
		if pl.SwitchPart[c.A] == pl.SwitchPart[c.B] {
			panic(fmt.Sprintf("topo: cut %d–%d does not cross partitions", c.A, c.B))
		}
		if c.Lookahead <= 0 {
			panic(fmt.Sprintf("topo: cut %d–%d has non-positive lookahead", c.A, c.B))
		}
	}
}

// minWireTx returns the serialization time of the smallest frame any
// packet can occupy on the wire (a bare header — pure ACKs, grants and
// CNPs are exactly this size).
func minWireTx(rate units.BitRate) sim.Duration {
	return rate.TxTime(packet.HeaderSize)
}

// Partitions returns the pod-aligned partition plan for a fat-tree: pod
// q goes to partition q mod p (its ToRs, aggregation switches and all
// their hosts follow), and core c to partition c mod p. Intra-pod links
// (host–ToR, ToR–agg) therefore never cross a boundary; the only cuts
// are agg–core links whose endpoints landed on different partitions,
// and every one of them carries CoreDelay of propagation — the longest
// wires in the fabric make the natural cut, maximizing the
// conservative-sync window. p is clamped to at least 1; partitions
// beyond the pod/core count simply stay empty.
func (c FatTreeConfig) Partitions(p int) *Plan {
	c.fillDefaults()
	if p < 1 {
		p = 1
	}
	nTors := c.Pods * c.TorsPerPod
	nAggs := c.Pods * c.AggsPerPod
	pl := &Plan{
		Parts:      p,
		HostPart:   make([]int, nTors*c.ServersPerTor),
		SwitchPart: make([]int, nTors+nAggs+c.Cores),
	}
	for t := 0; t < nTors; t++ {
		part := (t / c.TorsPerPod) % p
		pl.SwitchPart[t] = part
		for s := 0; s < c.ServersPerTor; s++ {
			pl.HostPart[t*c.ServersPerTor+s] = part
		}
	}
	for a := 0; a < nAggs; a++ {
		pl.SwitchPart[nTors+a] = (a / c.AggsPerPod) % p
	}
	look := c.CoreDelay + minWireTx(c.FabricRate)
	for co := 0; co < c.Cores; co++ {
		part := co % p
		pl.SwitchPart[nTors+nAggs+co] = part
		for a := 0; a < nAggs; a++ {
			if pl.SwitchPart[nTors+a] != part {
				pl.Cuts = append(pl.Cuts, Cut{A: nTors + a, B: nTors + nAggs + co, Lookahead: look})
			}
		}
	}
	pl.validate()
	return pl
}

// Partitions returns the rack-aligned partition plan for a leaf-spine
// fabric: leaf l goes to partition l mod p with all its hosts, spine s
// to partition s mod p. Host–leaf links never cross a boundary; the
// cuts are exactly the leaf–spine links whose endpoints differ, each
// with lookahead LinkDelay plus the minimum serialization time at that
// spine's effective link rate.
func (c LeafSpineConfig) Partitions(p int) *Plan {
	c.fillDefaults()
	if p < 1 {
		p = 1
	}
	pl := &Plan{
		Parts:      p,
		HostPart:   make([]int, c.Leaves*c.ServersPerLeaf),
		SwitchPart: make([]int, c.Leaves+c.Spines),
	}
	for l := 0; l < c.Leaves; l++ {
		part := l % p
		pl.SwitchPart[l] = part
		for s := 0; s < c.ServersPerLeaf; s++ {
			pl.HostPart[l*c.ServersPerLeaf+s] = part
		}
	}
	for sp := 0; sp < c.Spines; sp++ {
		part := sp % p
		pl.SwitchPart[c.Leaves+sp] = part
		look := c.LinkDelay + minWireTx(c.SpineRate(sp))
		for l := 0; l < c.Leaves; l++ {
			if pl.SwitchPart[l] != part {
				pl.Cuts = append(pl.Cuts, Cut{A: l, B: c.Leaves + sp, Lookahead: look})
			}
		}
	}
	pl.validate()
	return pl
}
