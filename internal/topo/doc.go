// Package topo builds the networks the paper evaluates on and wires
// every layer below the experiments together: hosts (transport or
// HOMA), switches, links, the shared packet pool, and the routing
// control plane.
//
// # Topologies
//
//   - Star and Dumbbell: single- and shared-bottleneck microbenchmarks.
//   - FatTree: the 4:1-oversubscribed fabric of §4.1 (2 cores, 4 pods
//     with 2 aggregation and 2 ToR switches each, 256 servers, 100 Gbps
//     fabric and 25 Gbps server links, 5 µs core and 1 µs edge
//     propagation), scalable down via ServersPerTor for tests.
//   - LeafSpine: the two-tier Clos of the incast literature, with
//     optional per-spine rate overrides (SpineRates) for asymmetric
//     fabrics.
//   - ParkingLot: the multi-bottleneck chain behind §3.5's INT-vs-RTT
//     argument.
//
// # Invariants
//
//   - Builders only wire; routing tables are computed and installed by
//     internal/route from the finished graph. Options.Routing picks the
//     multipath strategy (per-flow ECMP when nil), and Network.Router
//     can fail/restore links mid-run with reconvergence.
//   - Host and switch port creation order is deterministic and
//     documented per builder (servers first, then fabric ports in peer
//     order), so tests and experiments may index ports structurally.
//   - Every endpoint and switch shares the Network's packet free list;
//     BaseRTT is computed from the built topology so transports can use
//     the fabric's true τ.
package topo
