package topo_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/packet"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
)

func opts() topo.Options {
	return topo.Options{
		Hosts: topo.TransportHosts(transport.Config{BaseRTT: 30 * sim.Microsecond}),
		INT:   true,
	}
}

func smallFatTree() (*topo.Network, topo.FatTreeConfig) {
	cfg := topo.FatTreeConfig{ServersPerTor: 4, Opts: opts()}
	return topo.FatTree(cfg), cfg
}

func TestFatTreeShape(t *testing.T) {
	net, _ := smallFatTree()
	if len(net.Hosts) != 4*2*4 { // pods × tors × servers
		t.Fatalf("hosts = %d", len(net.Hosts))
	}
	if len(net.Switches) != 8+8+2 { // tors + aggs + cores
		t.Fatalf("switches = %d", len(net.Switches))
	}
	// ToR port count: servers + aggs-per-pod.
	if got := len(net.Switches[0].Ports()); got != 4+2 {
		t.Fatalf("ToR ports = %d", got)
	}
	// Core port count: one per agg.
	if got := len(net.Switches[17].Ports()); got != 8 {
		t.Fatalf("core ports = %d", got)
	}
}

func TestFatTreeRoutesEverywhere(t *testing.T) {
	net, _ := smallFatTree()
	for si, sw := range net.Switches {
		for hi := range net.Hosts {
			if r := sw.Route(net.HostID(hi)); len(r) == 0 {
				t.Fatalf("switch %d has no route to host %d", si, hi)
			}
		}
	}
	// A ToR must have multiple (ECMP) uplink candidates for a host in a
	// different pod.
	remote := net.HostID(len(net.Hosts) - 1)
	if r := net.Switches[0].Route(remote); len(r) < 2 {
		t.Fatalf("ToR 0 has %d uplink candidates for remote pod, want ≥2", len(r))
	}
	// ...and exactly one (the direct port) for its own server.
	if r := net.Switches[0].Route(net.HostID(0)); len(r) != 1 {
		t.Fatalf("ToR 0 direct route candidates = %d", len(r))
	}
}

func TestFatTreeBuffersSized(t *testing.T) {
	cfg := topo.FatTreeConfig{ServersPerTor: 4, Opts: opts()}
	cfg.Opts.BufferPerGbps = topo.TofinoBufferPerGbps
	net := topo.FatTree(cfg)
	// ToR: 4×25G + 2×100G = 300G → 300 × 10KiB.
	want := int64(300) * topo.TofinoBufferPerGbps
	if got := net.Switches[0].Shared().Total; got != want {
		t.Fatalf("ToR buffer = %d, want %d", got, want)
	}
}

func TestFatTreeEndToEnd(t *testing.T) {
	// Cross-pod transfer completes and traverses five switch hops of INT
	// in the data direction.
	net, cfg := smallFatTree()
	src := net.TransportHost(0)
	dstIdx := len(net.Hosts) - 1
	dst := net.TransportHost(dstIdx)
	if topo.TorOf(cfg, 0) == topo.TorOf(cfg, dstIdx) {
		t.Fatal("test hosts share a rack")
	}
	var done bool
	src.OnFlowDone = func(*transport.Flow) { done = true }
	src.StartFlow(net.NextFlowID(), dst.ID(), 1<<20, &cc.FixedWindow{}, 0)
	net.Eng.Run()
	if !done {
		t.Fatal("cross-pod flow did not finish")
	}
	if got := dst.ReceivedBytes(1); got != 1<<20 {
		t.Fatalf("received %d", got)
	}
}

func TestSameRackStaysLocal(t *testing.T) {
	net, _ := smallFatTree()
	src, dst := net.TransportHost(0), net.TransportHost(1)
	src.StartFlow(net.NextFlowID(), dst.ID(), 100_000, &cc.FixedWindow{}, 0)
	net.Eng.Run()
	// Only the shared ToR may have transmitted; aggs and cores stay idle.
	for si := 8; si < len(net.Switches); si++ {
		for _, pt := range net.Switches[si].Ports() {
			if pt.TxPackets() != 0 {
				t.Fatalf("non-ToR switch %d transmitted", si)
			}
		}
	}
}

func TestDumbbellBottleneck(t *testing.T) {
	net := topo.Dumbbell(topo.DumbbellConfig{
		Left: 2, Right: 2,
		HostRate:       100 * units.Gbps,
		BottleneckRate: 25 * units.Gbps,
		Opts:           opts(),
	})
	if len(net.Hosts) != 4 || len(net.Switches) != 2 {
		t.Fatalf("shape: %d hosts, %d switches", len(net.Hosts), len(net.Switches))
	}
	src, dst := net.TransportHost(0), net.TransportHost(2)
	src.StartFlow(net.NextFlowID(), dst.ID(), 500_000, &cc.FixedWindow{}, 0)
	net.Eng.Run()
	if dst.ReceivedTotal() != 500_000 {
		t.Fatalf("received %d", dst.ReceivedTotal())
	}
	if net.BottleneckPort().TxBytes() == 0 {
		t.Fatal("bottleneck port unused")
	}
}

func TestLeafSpineShapeAndECMP(t *testing.T) {
	net := topo.LeafSpine(topo.LeafSpineConfig{
		Leaves: 4, Spines: 3, ServersPerLeaf: 2, Opts: opts(),
	})
	if len(net.Hosts) != 8 || len(net.Switches) != 7 {
		t.Fatalf("shape: %d hosts, %d switches", len(net.Hosts), len(net.Switches))
	}
	// Cross-leaf routes have one ECMP candidate per spine.
	remote := net.HostID(7)
	if r := net.Switches[0].Route(remote); len(r) != 3 {
		t.Fatalf("leaf 0 ECMP candidates = %d, want 3", len(r))
	}
	// End to end across leaves.
	src, dst := net.TransportHost(0), net.TransportHost(7)
	src.StartFlow(net.NextFlowID(), dst.ID(), 300_000, &cc.FixedWindow{}, 0)
	net.Eng.Run()
	if dst.ReceivedTotal() != 300_000 {
		t.Fatalf("delivered %d", dst.ReceivedTotal())
	}
}

func TestParkingLotShape(t *testing.T) {
	net := topo.ParkingLot(topo.ParkingLotConfig{Switches: 4, Opts: opts()})
	// 4 switches, 2 through hosts + 3 cross pairs = 8 hosts.
	if len(net.Switches) != 4 || len(net.Hosts) != 8 {
		t.Fatalf("shape: %d switches, %d hosts", len(net.Switches), len(net.Hosts))
	}
	// Through flow must traverse every inter-switch link.
	src, dst := net.TransportHost(0), net.TransportHost(1)
	src.StartFlow(net.NextFlowID(), dst.ID(), 200_000, &cc.FixedWindow{}, 0)
	net.Eng.Run()
	if dst.ReceivedTotal() != 200_000 {
		t.Fatalf("through flow delivered %d", dst.ReceivedTotal())
	}
	for i := 0; i+1 < 4; i++ {
		// Port 0 of each non-last switch faces the next switch.
		if net.Switches[i].Ports()[0].TxPackets() == 0 && i > 0 {
			t.Fatalf("link %d unused by through flow", i)
		}
	}
}

func TestBaseRTTSanity(t *testing.T) {
	net, _ := smallFatTree()
	// Propagation alone is 2×14µs; computed base RTT must exceed it but
	// stay within ~2× (serialization headroom only).
	lo := sim.Duration(28 * sim.Microsecond)
	if net.BaseRTT < lo || net.BaseRTT > 2*lo {
		t.Fatalf("BaseRTT = %v, want within [%v, %v]", net.BaseRTT, lo, 2*lo)
	}
}

func TestTorUplinkPortsFaceAggregation(t *testing.T) {
	net, cfg := smallFatTree()
	nTors := cfg.WithDefaults().Pods * cfg.WithDefaults().TorsPerPod
	for tor := 0; tor < nTors; tor++ {
		up := net.TorUplinkPorts(tor)
		if len(up) != 2 { // AggsPerPod
			t.Fatalf("ToR %d uplinks = %v, want 2", tor, up)
		}
		// Ports are created servers-first, so uplinks are the tail ports.
		for i, pi := range up {
			if pi != 4+i {
				t.Fatalf("ToR %d uplink ports = %v, want [4 5]", tor, up)
			}
		}
		// Uplink ports run at fabric rate, host ports at host rate.
		ports := net.Switches[tor].Ports()
		for _, pi := range up {
			if ports[pi].Rate != 100*units.Gbps {
				t.Fatalf("uplink port rate = %v", ports[pi].Rate)
			}
		}
		if ports[0].Rate != 25*units.Gbps {
			t.Fatalf("host port rate = %v", ports[0].Rate)
		}
	}
}

// Every ToR's installed ECMP tables must cover all of its uplinks for
// remote-pod destinations — the "no silent single-path fallback" guard.
func TestFatTreeECMPTablesCoverAllUplinks(t *testing.T) {
	net, cfg := smallFatTree()
	c := cfg.WithDefaults()
	nTors := c.Pods * c.TorsPerPod
	for tor := 0; tor < nTors; tor++ {
		var remote []packet.NodeID
		for hi := range net.Hosts {
			if topo.TorOf(cfg, hi) != tor {
				remote = append(remote, net.HostID(hi))
			}
		}
		spread := route.PathSpread(net.Switches[tor].Route, remote)
		up := net.TorUplinkPorts(tor)
		if len(spread) != len(up) {
			t.Fatalf("ToR %d tables use ports %v, want all uplinks %v", tor, spread, up)
		}
	}
}

// A permutation-style workload must put traffic on every ToR uplink
// under ECMP — and on exactly one per ToR under single-path routing.
func TestFatTreeECMPSpreadsPermutationTraffic(t *testing.T) {
	run := func(strategy route.Strategy) (used, total int) {
		o := opts()
		o.Routing = strategy
		cfg := topo.FatTreeConfig{ServersPerTor: 4, Opts: o}
		net := topo.FatTree(cfg)
		n := len(net.Hosts)
		// Each host sends 4 flows to its cross-pod partner: distinct flow
		// IDs hash independently, exercising the uplink choice densely.
		for i := 0; i < n; i++ {
			dst := net.TransportHost((i + n/2) % n)
			src := net.TransportHost(i)
			for k := 0; k < 4; k++ {
				src.StartFlow(net.NextFlowID(), dst.ID(), 20_000, &cc.FixedWindow{}, 0)
			}
		}
		net.Eng.Run()
		c := cfg.WithDefaults()
		for tor := 0; tor < c.Pods*c.TorsPerPod; tor++ {
			for _, pi := range net.TorUplinkPorts(tor) {
				total++
				if net.Switches[tor].Ports()[pi].TxPackets() > 0 {
					used++
				}
			}
		}
		return used, total
	}

	used, total := run(route.ECMP{})
	if used != total {
		t.Fatalf("ECMP left uplinks idle: %d/%d carried traffic", used, total)
	}
	used, total = run(route.SinglePath{})
	if used >= total {
		t.Fatalf("single-path used every uplink (%d/%d): spreading detector is blind", used, total)
	}
}

func TestLeafSpineSpineRatesOverride(t *testing.T) {
	cfg := topo.LeafSpineConfig{
		Leaves: 2, Spines: 2, ServersPerLeaf: 2,
		SpineRates: []units.BitRate{100 * units.Gbps, 50 * units.Gbps},
		Opts:       opts(),
	}
	net := topo.LeafSpine(cfg)
	ports := net.Switches[cfg.LeafSwitch(0)].Ports()
	// Ports: 2 servers, then one uplink per spine.
	if ports[2].Rate != 100*units.Gbps || ports[3].Rate != 50*units.Gbps {
		t.Fatalf("uplink rates = %v, %v", ports[2].Rate, ports[3].Rate)
	}
	if net.Switches[cfg.SpineSwitch(1)].Ports()[0].Rate != 50*units.Gbps {
		t.Fatal("spine-side rate does not match its override")
	}
}

// Cutting a leaf-spine link and reconverging must keep end-to-end
// transfers working through the surviving spine.
func TestNetworkSurvivesLinkFailure(t *testing.T) {
	cfg := topo.LeafSpineConfig{Leaves: 2, Spines: 2, ServersPerLeaf: 1, Opts: opts()}
	net := topo.LeafSpine(cfg)
	net.Router.FailLink(cfg.LeafSwitch(0), cfg.SpineSwitch(0))
	net.Router.FailLink(cfg.LeafSwitch(1), cfg.SpineSwitch(0))
	net.Router.Rebuild()
	src, dst := net.TransportHost(0), net.TransportHost(1)
	src.StartFlow(net.NextFlowID(), dst.ID(), 200_000, &cc.FixedWindow{}, 0)
	net.Eng.Run()
	if got := dst.ReceivedTotal(); got != 200_000 {
		t.Fatalf("transfer over surviving spine delivered %d", got)
	}
	if net.Switches[cfg.SpineSwitch(0)].Ports()[0].TxPackets() != 0 {
		t.Fatal("failed spine still forwarded traffic")
	}
}
