// Package units provides bandwidth and data-size arithmetic shared by the
// simulator and the congestion-control algorithms.
//
// All conversions between bytes, rates, and durations live here so that
// the rest of the codebase never multiplies "8" or "1e12" inline. Rates
// that are whole multiples of 1 Mbps (every rate in the paper) convert to
// and from picoseconds exactly, keeping the simulation deterministic.
package units

import (
	"fmt"

	"repro/internal/sim"
)

// BitRate is a link or pacing rate in bits per second.
type BitRate int64

// Common rates.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1000 * BitPerSecond
	Mbps                 = 1000 * Kbps
	Gbps                 = 1000 * Mbps
)

// String formats the rate with its natural unit, e.g. "25Gbps".
func (r BitRate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// BytesPerSec returns the rate in bytes per second as a float.
func (r BitRate) BytesPerSec() float64 { return float64(r) / 8 }

// InGbps returns the rate in gigabits per second as a float — the unit
// figures and probes report in.
func (r BitRate) InGbps() float64 { return float64(r) / float64(Gbps) }

// TxTime returns the time to serialize n bytes onto a link of rate r.
// For rates that are whole Mbps the result is exact integer math
// (n·8·10⁶ ps-bits divided by the rate in Mbps); otherwise it falls back
// to float math, which is still accurate to well under a picosecond for
// realistic packet sizes.
func (r BitRate) TxTime(n int64) sim.Duration {
	if r <= 0 {
		panic("units: TxTime on non-positive rate")
	}
	if r%Mbps == 0 {
		// ps = bits * 1e12 / bps = n*8 * 1e6 / (bps/1e6)
		return sim.Duration(n * 8 * 1_000_000 / int64(r/Mbps))
	}
	return sim.Duration(float64(n) * 8 * 1e12 / float64(r))
}

// Bytes returns how many whole bytes r transmits in d.
func (r BitRate) Bytes(d sim.Duration) int64 {
	if d <= 0 {
		return 0
	}
	if r%Mbps == 0 {
		return int64(d) * int64(r/Mbps) / (8 * 1_000_000)
	}
	return int64(float64(r) / 8 * d.Seconds())
}

// BDP returns the bandwidth-delay product in bytes for round-trip rtt.
func (r BitRate) BDP(rtt sim.Duration) int64 { return r.Bytes(rtt) }

// RateFromBytes returns the rate that sends n bytes in d. It is the
// inverse of Bytes and is used for pacing (rate = cwnd/τ).
func RateFromBytes(n int64, d sim.Duration) BitRate {
	if d <= 0 {
		return 0
	}
	return BitRate(float64(n) * 8 / d.Seconds())
}

// MinRate/MaxRate clamp helpers.
func MinRate(a, b BitRate) BitRate {
	if a < b {
		return a
	}
	return b
}

func MaxRate(a, b BitRate) BitRate {
	if a > b {
		return a
	}
	return b
}
