package units

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTxTimeExact(t *testing.T) {
	cases := []struct {
		rate  BitRate
		bytes int64
		want  sim.Duration
	}{
		{100 * Gbps, 1048, 83840 * sim.Picosecond}, // 1048B at 100G = 83.84ns
		{25 * Gbps, 1048, 335360 * sim.Picosecond},
		{100 * Gbps, 1, 80 * sim.Picosecond},
		{1 * Gbps, 1500, 12 * sim.Microsecond},
		{10 * Mbps, 1250, sim.Millisecond},
	}
	for _, c := range cases {
		if got := c.rate.TxTime(c.bytes); got != c.want {
			t.Errorf("TxTime(%v, %d) = %v, want %v", c.rate, c.bytes, got, c.want)
		}
	}
}

func TestBDP(t *testing.T) {
	// 100Gbps × 20µs base RTT = 250000 bytes.
	if got := (100 * Gbps).BDP(20 * sim.Microsecond); got != 250000 {
		t.Fatalf("BDP = %d, want 250000", got)
	}
	// 25Gbps × 24µs = 75000 bytes.
	if got := (25 * Gbps).BDP(24 * sim.Microsecond); got != 75000 {
		t.Fatalf("BDP = %d, want 75000", got)
	}
}

func TestRateFromBytes(t *testing.T) {
	// cwnd = BDP, τ = 20µs → rate = line rate.
	r := RateFromBytes(250000, 20*sim.Microsecond)
	if r < 100*Gbps-Mbps || r > 100*Gbps+Mbps {
		t.Fatalf("RateFromBytes = %v, want ≈100Gbps", r)
	}
}

func TestString(t *testing.T) {
	for _, c := range []struct {
		r BitRate
		s string
	}{
		{25 * Gbps, "25Gbps"}, {100 * Mbps, "100Mbps"}, {5 * Kbps, "5Kbps"}, {7, "7bps"},
	} {
		if got := c.r.String(); got != c.s {
			t.Errorf("%d.String() = %q, want %q", int64(c.r), got, c.s)
		}
	}
}

// Property: Bytes(TxTime(n)) recovers n up to the 1-byte floor loss of
// integer division, and exactly when the rate's Mbps value divides the
// bit count (the integer fast path must be self-consistent).
func TestTxTimeBytesRoundTrip(t *testing.T) {
	prop := func(nRaw uint32, rRaw uint16) bool {
		n := int64(nRaw%100_000) + 1
		r := BitRate(int64(rRaw%1000)+1) * 100 * Mbps
		d := r.TxTime(n)
		got := r.Bytes(d)
		if n*8*1_000_000%int64(r/Mbps) == 0 {
			return got == n
		}
		return got == n || got == n-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: TxTime is additive: TxTime(a)+TxTime(b) == TxTime(a+b) on the
// exact integer path.
func TestTxTimeAdditive(t *testing.T) {
	prop := func(a, b uint16, rRaw uint8) bool {
		r := BitRate(int64(rRaw)+1) * Gbps
		// Use byte counts divisible by the rate to stay on exact values.
		x, y := int64(a), int64(b)
		return r.TxTime(x)+r.TxTime(y) == r.TxTime(x+y) ||
			// integer floor division may lose at most 1ps per term
			r.TxTime(x)+r.TxTime(y)+2 >= r.TxTime(x+y)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAndNegativeDurations(t *testing.T) {
	if got := (25 * Gbps).Bytes(0); got != 0 {
		t.Errorf("Bytes(0) = %d", got)
	}
	if got := (25 * Gbps).Bytes(-sim.Microsecond); got != 0 {
		t.Errorf("Bytes(<0) = %d", got)
	}
	if got := RateFromBytes(100, 0); got != 0 {
		t.Errorf("RateFromBytes(_, 0) = %v", got)
	}
}
