package swtch

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestQuantizedINTStamps(t *testing.T) {
	eng := sim.New()
	sw := New(eng, 1, Config{INT: true, QuantizeINT: true})
	dst := &sink{}
	sw.AddPort(1*units.Gbps, 0, dst, nil) // slow: queue builds
	sw.SetRoute(7, []int{0})
	for i := 0; i < 10; i++ {
		sw.Receive(data(1, 7, 997)) // odd size → unaligned raw qlen
	}
	eng.Run()
	for _, p := range dst.pkts {
		if len(p.Hops) != 1 {
			t.Fatalf("hops = %d", len(p.Hops))
		}
		h := p.Hops[0]
		if h.QLen%64 != 0 {
			t.Fatalf("QLen %d not quantized to 64B units", h.QLen)
		}
		if h.TxBytes%256 != 0 {
			t.Fatalf("TxBytes %d not quantized to 256B units", h.TxBytes)
		}
		if q := h.Quantize(); q != h {
			t.Fatalf("stamp not a fixed point of Quantize: %+v vs %+v", h, q)
		}
	}
}
