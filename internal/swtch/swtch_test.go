package swtch

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

type sink struct{ pkts []*packet.Packet }

func (s *sink) Receive(p *packet.Packet) { s.pkts = append(s.pkts, p) }

func data(flow packet.FlowID, dst packet.NodeID, n int32) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Flow: flow, Dst: dst, PayloadLen: n, ECT: true}
}

func TestForwardingAndINT(t *testing.T) {
	eng := sim.New()
	sw := New(eng, 1, Config{INT: true})
	dst := &sink{}
	sw.AddPort(100*units.Gbps, sim.Microsecond, dst, nil)
	sw.SetRoute(7, []int{0})
	sw.Receive(data(1, 7, 1000))
	eng.Run()
	if len(dst.pkts) != 1 {
		t.Fatalf("forwarded %d packets", len(dst.pkts))
	}
	p := dst.pkts[0]
	if len(p.Hops) != 1 {
		t.Fatalf("INT hops = %d, want 1", len(p.Hops))
	}
	h := p.Hops[0]
	if h.Rate != 100*units.Gbps || h.QLen != 0 {
		t.Fatalf("hop = %+v", h)
	}
}

func TestINTDisabled(t *testing.T) {
	eng := sim.New()
	sw := New(eng, 1, Config{})
	dst := &sink{}
	sw.AddPort(100*units.Gbps, 0, dst, nil)
	sw.SetRoute(7, []int{0})
	sw.Receive(data(1, 7, 1000))
	eng.Run()
	if len(dst.pkts[0].Hops) != 0 {
		t.Fatal("INT stamped while disabled")
	}
}

func TestECNMarking(t *testing.T) {
	eng := sim.New()
	sw := New(eng, 1, Config{ECN: ECNConfig{KMin: 2000, KMax: 4000, PMax: 1.0}})
	dst := &sink{}
	sw.AddPort(1*units.Gbps, 0, dst, nil) // slow: queue builds
	sw.SetRoute(7, []int{0})
	for i := 0; i < 10; i++ {
		sw.Receive(data(1, 7, 1000))
	}
	eng.Run()
	var marked int
	for _, p := range dst.pkts {
		if p.CE {
			marked++
		}
	}
	// First dequeues see >4000B queued (always mark); the last see <2000B
	// (never mark).
	if marked == 0 || marked == len(dst.pkts) {
		t.Fatalf("marked %d/%d, want partial marking", marked, len(dst.pkts))
	}
	if dst.pkts[len(dst.pkts)-1].CE {
		t.Fatal("last packet (empty queue) marked")
	}
	if sw.Marked() != uint64(marked) {
		t.Fatalf("Marked() = %d, counted %d", sw.Marked(), marked)
	}
}

func TestNonECTNeverMarked(t *testing.T) {
	eng := sim.New()
	sw := New(eng, 1, Config{ECN: ECNConfig{KMin: 0, KMax: 1, PMax: 1}})
	dst := &sink{}
	sw.AddPort(1*units.Gbps, 0, dst, nil)
	sw.SetRoute(7, []int{0})
	for i := 0; i < 5; i++ {
		p := data(1, 7, 1000)
		p.ECT = false
		sw.Receive(p)
	}
	eng.Run()
	for _, p := range dst.pkts {
		if p.CE {
			t.Fatal("non-ECT packet marked")
		}
	}
}

func TestSharedBufferDropsAndReleases(t *testing.T) {
	eng := sim.New()
	sw := New(eng, 1, Config{BufferBytes: 5000, Alpha: 100})
	dst := &sink{}
	sw.AddPort(1*units.Gbps, 0, dst, nil)
	sw.SetRoute(7, []int{0})
	for i := 0; i < 10; i++ { // 10×1048B > 5000B
		sw.Receive(data(1, 7, 1000))
	}
	if sw.Dropped() == 0 {
		t.Fatal("no admission drops on a 5KB buffer")
	}
	eng.Run()
	if sw.Shared().Used() != 0 {
		t.Fatalf("buffer leak: %dB still used", sw.Shared().Used())
	}
	if len(dst.pkts)+int(sw.Dropped()) != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", len(dst.pkts), sw.Dropped())
	}
}

func TestECMPIsPerFlowConsistent(t *testing.T) {
	eng := sim.New()
	sw := New(eng, 1, Config{})
	a, b := &sink{}, &sink{}
	sw.AddPort(100*units.Gbps, 0, a, nil)
	sw.AddPort(100*units.Gbps, 0, b, nil)
	sw.SetRoute(7, []int{0, 1})
	for i := 0; i < 20; i++ {
		sw.Receive(data(42, 7, 100))
	}
	for flow := packet.FlowID(0); flow < 50; flow++ {
		sw.Receive(data(flow, 7, 100))
	}
	eng.Run()
	// Flow 42's packets (20 from the first loop plus one from the sweep)
	// all went the same way.
	count42 := 0
	for _, p := range a.pkts {
		if p.Flow == 42 {
			count42++
		}
	}
	if count42 != 0 && count42 != 21 {
		t.Fatalf("flow 42 split across ports: %d of 21 on port A", count42)
	}
	// Across 50 flows, both ports see traffic.
	if len(a.pkts) == 0 || len(b.pkts) == 0 {
		t.Fatalf("ECMP skew: %d vs %d", len(a.pkts), len(b.pkts))
	}
}

func TestNoRoutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing route did not panic")
		}
	}()
	eng := sim.New()
	sw := New(eng, 1, Config{})
	sw.Receive(data(1, 99, 100))
}

func TestINTTxBytesMonotonic(t *testing.T) {
	eng := sim.New()
	sw := New(eng, 1, Config{INT: true})
	dst := &sink{}
	sw.AddPort(10*units.Gbps, 0, dst, nil)
	sw.SetRoute(7, []int{0})
	for i := 0; i < 8; i++ {
		sw.Receive(data(1, 7, 500))
	}
	eng.Run()
	var last uint64
	for i, p := range dst.pkts {
		tx := p.Hops[0].TxBytes
		if i > 0 && tx <= last {
			t.Fatalf("txBytes not increasing: %d then %d", last, tx)
		}
		last = tx
	}
}

// recycler consumes delivered packets back into the pool like a host NIC.
type recycler struct {
	pool *packet.Pool
	got  int
}

func (r *recycler) Receive(p *packet.Packet) {
	r.got++
	r.pool.Put(p)
}

// The ECMP forwarding path — table lookup, flow hash, port Send — must
// not allocate per packet in steady state; multipath rides the same
// zero-allocation guarantee as the single-path fast path (PERF.md).
func TestECMPForwardingZeroAllocSteadyState(t *testing.T) {
	eng := sim.New()
	pool := packet.NewPool()
	sink := &recycler{pool: pool}
	sw := New(eng, 1, Config{INT: true, Pool: pool})
	sw.AddPort(100*units.Gbps, sim.Microsecond, sink, nil)
	sw.AddPort(100*units.Gbps, sim.Microsecond, sink, nil)
	sw.SetRoute(7, []int{0, 1})

	send := func(n int) {
		for i := 0; i < n; i++ {
			p := pool.Get()
			p.Kind = packet.Data
			p.Flow = packet.FlowID(i)
			p.Src = 3
			p.Dst = 7
			p.PayloadLen = 1000
			sw.Receive(p)
		}
		eng.Run()
	}
	// Warm the pool, both port serializers, and the engine's timing
	// wheel: each burst advances the clock, so repeating the burst walks
	// the wheel through its slot ring until every slot the steady state
	// lands in has capacity.
	for i := 0; i < 512; i++ {
		send(64)
	}

	allocs := testing.AllocsPerRun(100, func() { send(64) })
	if allocs > 0.5 {
		t.Fatalf("ECMP forwarding allocates %.2f allocs per 64-packet burst, want 0", allocs)
	}
	if sink.got == 0 {
		t.Fatal("no packets forwarded")
	}
}
