// Package swtch models an output-queued datacenter switch: ECMP
// forwarding, a shared-memory buffer governed by Dynamic Thresholds
// (§4.1), RED-style ECN marking for DCQCN, and INT stamping at dequeue —
// the egress queue length, cumulative transmitted bytes, timestamp and
// link bandwidth exactly as the paper's Tofino pipeline exports (§3.6).
package swtch

import (
	"fmt"
	"math/rand"

	"repro/internal/buffer"
	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// ECNConfig is RED-style marking: below KMin never mark, above KMax
// always mark, linear probability PMax in between. The zero value
// disables marking.
type ECNConfig struct {
	KMin int64
	KMax int64
	PMax float64
}

// Enabled reports whether marking is configured.
func (e ECNConfig) Enabled() bool { return e.KMax > 0 }

// Config carries per-switch settings.
type Config struct {
	// BufferBytes is the shared-memory pool size; 0 means unbounded.
	BufferBytes int64
	// Alpha is the Dynamic Thresholds factor (default 1).
	Alpha float64
	// INT enables telemetry stamping at dequeue.
	INT bool
	// QuantizeINT stamps records as they would survive the wire format
	// (64 B queue units, wrapping counters — telemetry.Quantize), i.e.
	// what a real Tofino pipeline exports rather than exact simulator
	// state. Algorithms must tolerate it; tests assert they do.
	QuantizeINT bool
	// ECN configures RED marking of ECN-capable packets.
	ECN ECNConfig
	// Seed feeds the marking RNG so runs stay deterministic.
	Seed int64
	// Pool, when set, recycles admission-dropped packets into the
	// engine's shared packet free list.
	Pool *packet.Pool
}

// Switch is one switch instance. It implements link.Receiver.
type Switch struct {
	id    packet.NodeID
	eng   *sim.Engine
	cfg   Config
	share *buffer.Shared
	ports []*link.Port
	table map[packet.NodeID][]int
	rng   *rand.Rand

	marked  uint64
	dropped uint64
}

// New creates a switch.
func New(eng *sim.Engine, id packet.NodeID, cfg Config) *Switch {
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	return &Switch{
		id:    id,
		eng:   eng,
		cfg:   cfg,
		share: buffer.NewShared(cfg.BufferBytes, cfg.Alpha),
		table: map[packet.NodeID][]int{},
		rng:   rand.New(rand.NewSource(cfg.Seed ^ int64(id)<<20 ^ 0x9E3779B9)),
	}
}

// ID returns the switch's node ID.
func (s *Switch) ID() packet.NodeID { return s.id }

// Shared exposes the buffer pool (metrics).
func (s *Switch) Shared() *buffer.Shared { return s.share }

// Ports returns the egress ports in creation order.
func (s *Switch) Ports() []*link.Port { return s.ports }

// Marked returns the number of CE marks applied.
func (s *Switch) Marked() uint64 { return s.marked }

// Dropped returns the number of admission drops.
func (s *Switch) Dropped() uint64 { return s.dropped }

// AddPort creates an egress port toward peer with the given line rate,
// propagation delay, and queue discipline (nil for a FIFO), and wires the
// shared-buffer accounting, ECN, and INT hooks. It returns the port's
// index for routing tables.
func (s *Switch) AddPort(rate units.BitRate, delay sim.Duration, peer link.Receiver, q queue.Queue) int {
	pt := link.NewPort(s.eng, rate, delay, peer)
	pt.Name = fmt.Sprintf("sw%d.p%d", s.id, len(s.ports))
	pt.Pool = s.cfg.Pool
	if q != nil {
		pt.Q = q
	}
	pt.Admit = func(p *packet.Packet) bool {
		return s.share.Admit(pt.Q.Bytes(), p.WireLen())
	}
	pt.OnDrop = func(*packet.Packet) { s.dropped++ }
	pt.OnDequeue = func(p *packet.Packet) { s.onDequeue(pt, p) }
	s.ports = append(s.ports, pt)
	return len(s.ports) - 1
}

func (s *Switch) onDequeue(pt *link.Port, p *packet.Packet) {
	// Release the memory reserved at admission before stamping grows the
	// packet's wire size.
	s.share.Release(p.WireLen())

	// Congestion signals see both fidelities: the real queue plus any
	// fluid backlog the hybrid coupler folded into the port, so INT qlen
	// and ECN marks reflect background load that is never packetized.
	qlen := pt.QueueBytes() + pt.VirtualBacklog()
	if p.ECT && s.cfg.ECN.Enabled() && s.shouldMark(qlen) {
		if !p.CE {
			s.marked++
		}
		p.CE = true
	}
	if s.cfg.INT {
		h := telemetry.HopRecord{
			QLen:    qlen,
			TxBytes: pt.TxBytes(),
			TS:      s.eng.Now(),
			Rate:    pt.Rate,
		}
		if s.cfg.QuantizeINT {
			h = h.Quantize()
		}
		p.Hops = append(p.Hops, h)
	}
}

func (s *Switch) shouldMark(qlen int64) bool {
	e := s.cfg.ECN
	switch {
	case qlen <= e.KMin:
		return false
	case qlen >= e.KMax:
		return true
	default:
		prob := e.PMax * float64(qlen-e.KMin) / float64(e.KMax-e.KMin)
		return s.rng.Float64() < prob
	}
}

// SetRoute installs the ECMP candidate ports for a destination.
func (s *Switch) SetRoute(dst packet.NodeID, portIdx []int) {
	s.table[dst] = portIdx
}

// PresizeRoutes implements route.TablePresizer: it sizes the (still
// empty) table for the destinations the control plane is about to
// install, so the initial build does not rehash the map per insert.
func (s *Switch) PresizeRoutes(destinations int) {
	if len(s.table) == 0 && destinations > 0 {
		s.table = make(map[packet.NodeID][]int, destinations)
	}
}

// Route returns the candidate egress ports for dst (testing).
func (s *Switch) Route(dst packet.NodeID) []int { return s.table[dst] }

// Receive implements link.Receiver: forward the packet toward its
// destination, hashing the flow's addressing tuple over the candidate
// ports the routing control plane installed (see internal/route). The
// path is a table lookup plus one hash — no allocation per packet.
func (s *Switch) Receive(p *packet.Packet) {
	cand := s.table[p.Dst]
	if len(cand) == 0 {
		panic(fmt.Sprintf("swtch: switch %d has no route to %d", s.id, p.Dst))
	}
	idx := cand[0]
	if len(cand) > 1 {
		idx = cand[route.FlowHash(p.Src, p.Dst, p.Flow)%uint64(len(cand))]
	}
	s.ports[idx].Send(p)
}
