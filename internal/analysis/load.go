package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Loader parses and type-checks packages from source. One loader
// shares a file set and a source importer across Load calls, so a
// dependency is type-checked once per process no matter how many
// targets import it.
//
// Type checking resolves imports with the standard library's source
// importer, which requires running inside the module (cmd/powervet and
// the tests both do) — that keeps the framework dependency-free in an
// offline build environment.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh file set and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses every non-test Go file in dir and type-checks the result
// as importPath.
func (l *Loader) Load(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s", importPath, dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

// A ListedPackage is one `go list` result.
type ListedPackage struct {
	ImportPath string
	Dir        string
}

// GoList expands package patterns ("./...") into import paths and
// directories by shelling out to the go command, exactly as `go vet`
// would.
func GoList(patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}"}, patterns...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}
	var pkgs []ListedPackage
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, dir, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		pkgs = append(pkgs, ListedPackage{ImportPath: path, Dir: dir})
	}
	return pkgs, nil
}
