package analysis

import (
	"os"
	"slices"
	"testing"
)

// TestSimPathListMatchesInternal is the meta-test the analyzer scoping
// rests on: every package under internal/ must be either in
// SimPathPackages (analyzed) or in ExcludedPackages (skipped, with a
// written reason) — never both, never neither. Adding an internal
// package therefore forces an explicit decision about its determinism
// contract.
func TestSimPathListMatchesInternal(t *testing.T) {
	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatal(err)
	}
	var actual []string
	for _, e := range entries {
		if e.IsDir() {
			actual = append(actual, e.Name())
		}
	}
	if len(actual) < 10 {
		t.Fatalf("found only %d internal packages — wrong working directory?", len(actual))
	}
	for _, name := range actual {
		inSim := slices.Contains(SimPathPackages, name)
		_, inExcluded := ExcludedPackages[name]
		switch {
		case inSim && inExcluded:
			t.Errorf("internal/%s is both in SimPathPackages and ExcludedPackages", name)
		case !inSim && !inExcluded:
			t.Errorf("internal/%s is in neither SimPathPackages nor ExcludedPackages: decide its determinism contract and add it to one (with a reason if excluded)", name)
		}
	}
	for _, name := range SimPathPackages {
		if !slices.Contains(actual, name) {
			t.Errorf("SimPathPackages lists %q, which does not exist under internal/", name)
		}
	}
	for name, reason := range ExcludedPackages {
		if !slices.Contains(actual, name) {
			t.Errorf("ExcludedPackages lists %q, which does not exist under internal/", name)
		}
		if reason == "" {
			t.Errorf("ExcludedPackages[%q] has no reason: every exclusion must be documented", name)
		}
	}
	if !slices.IsSorted(SimPathPackages) {
		t.Errorf("SimPathPackages is not sorted")
	}
}

func TestAnalyzerScoping(t *testing.T) {
	if got := len(AnalyzersFor("repro/internal/sim")); got != 4 {
		t.Errorf("sim-path package gets %d analyzers, want 4", got)
	}
	if got := len(AnalyzersFor("repro/cmd/figures")); got != 3 {
		t.Errorf("cmd package gets %d analyzers, want 3 (no simclock: CLIs may read the wall clock)", got)
	}
	for _, a := range AnalyzersFor("repro/cmd/figures") {
		if a.Name == "simclock" {
			t.Errorf("simclock must not run on cmd packages")
		}
	}
	if got := AnalyzersFor("repro/internal/livenet"); got != nil {
		t.Errorf("livenet is excluded but gets %d analyzers", len(got))
	}
	if got := AnalyzersFor("repro/examples/quickstart"); got != nil {
		t.Errorf("examples are out of scope but get %d analyzers", len(got))
	}
	if got := AnalyzersFor("repro"); len(got) != 3 {
		t.Errorf("root package gets %d analyzers, want 3", len(got))
	}
}

// TestAnalyzerMetadata pins the reporting identity: names, directives
// and docs must be present and unique, since suppression comments and
// CI output key on them.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Directive == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 4 {
		t.Errorf("expected the four powervet analyzers, got %d", len(seen))
	}
}
