// Package detrange is the analysistest fixture for the detrange
// analyzer: positive hits, allowlisted order-insensitive bodies, and
// //powervet:ordered suppressions.
package detrange

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

// orderSensitive ranges over a map with a side-effecting body.
func orderSensitive(m map[string]int) {
	for k := range m { // want "order-sensitive range over map"
		fmt.Println(k)
	}
}

// counting is allowlisted: integer counting is commutative.
func counting(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// intSum is allowlisted: integer accumulation is commutative.
func intSum(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

// floatSum stays flagged: float addition is not associative, so the
// rounding depends on iteration order.
func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "order-sensitive range over map"
		total += v
	}
	return total
}

// keyedTransfer is allowlisted: each key writes its own slot.
func keyedTransfer(m map[int]string, out []string) {
	for k, v := range m {
		out[k] = v
	}
}

// computedIndex stays flagged: k%3 collides across keys.
func computedIndex(m map[int]string, out []string) {
	for k, v := range m { // want "order-sensitive range over map"
		out[k%3] = v
	}
}

// accumulatorFeed stays flagged: the keyed write reads a counter the
// body mutates, so the written values depend on visit order.
func accumulatorFeed(m map[int]string, out []int) {
	i := 0
	for k := range m { // want "order-sensitive range over map"
		i++
		out[k] = i
	}
}

// collectThenSort is allowlisted here; the resultorder analyzer owns
// the follow-up obligation that keys is sorted before use.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// latch is allowlisted: every write stores the same constant.
func latch(m map[string]int) bool {
	seen := false
	for range m {
		seen = true
	}
	return seen
}

// anyNegative is allowlisted: guarded latch plus break.
func anyNegative(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			found = true
			break
		}
	}
	return found
}

// unorderedKeys stays flagged: maps.Keys yields in random order.
func unorderedKeys(m map[string]int) []string {
	return slices.Collect(maps.Keys(m)) // want "unordered maps.Keys iterator"
}

// sortedKeys is allowlisted: the iterator flows straight into a sort.
func sortedKeys(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// justified carries a suppression with a reason: recorded, not failed.
func justified(m map[string]int) {
	//powervet:ordered fixture justification: sink is order-blind
	for k := range m { // suppressed "order-sensitive range over map"
		fmt.Println(k)
	}
}

// unjustified carries a bare directive: not silenced, and the message
// says why.
func unjustified(m map[string]int) {
	//powervet:ordered
	for k := range m { // want "needs a justification"
		fmt.Println(k)
	}
}

// deletion is allowlisted: delete is order-insensitive by construction.
func deletion(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}
