// Package pooluse is the analysistest fixture for the pooluse
// analyzer: use-after-Put and double-Put of pooled packets, stale
// sim.Event handles after Cancel, kills by reassignment, and the
// block-local boundary of the analysis.
package pooluse

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// useAfterPut touches a recycled packet.
func useAfterPut(pl *packet.Pool) int64 {
	p := pl.Get()
	pl.Put(p)
	return p.Seq // want `use of packet p after it was released`
}

// doublePut releases the same packet twice.
func doublePut(pl *packet.Pool) {
	p := pl.Get()
	pl.Put(p)
	pl.Put(p) // want `double release of packet p`
}

// reassignmentKills is clean: p holds a fresh packet after Get.
func reassignmentKills(pl *packet.Pool) int64 {
	p := pl.Get()
	pl.Put(p)
	p = pl.Get()
	return p.Seq
}

// conditionalPut is clean for the analyzer: the release does not
// execute unconditionally, so the fall-through use is not flagged
// (block-local analysis; the runtime determinism suite covers this).
func conditionalPut(pl *packet.Pool, drop bool) int64 {
	p := pl.Get()
	if drop {
		pl.Put(p)
		return 0
	}
	return p.Seq
}

// nestedUse is flagged: the release is unconditional, the later use
// merely conditional.
func nestedUse(pl *packet.Pool, log bool) int64 {
	p := pl.Get()
	pl.Put(p)
	if log {
		return p.Seq // want `use of packet p after it was released`
	}
	return 0
}

// copyBeforePut is the sanctioned pattern: take what you need first.
func copyBeforePut(pl *packet.Pool) int64 {
	p := pl.Get()
	seq := p.Seq
	pl.Put(p)
	return seq
}

// staleHandle uses an event handle after cancelling it: the handle
// answers for a recycled node from then on.
func staleHandle(eng *sim.Engine) bool {
	ev := eng.At(5, func() {})
	eng.Cancel(ev)
	return ev.Scheduled() // want `use of event handle ev after it was released`
}

// doubleCancel is flagged as a double release.
func doubleCancel(eng *sim.Engine) {
	ev := eng.At(5, func() {})
	eng.Cancel(ev)
	eng.Cancel(ev) // want `double release of event handle ev`
}

// rearmedHandle is clean: the handle is reassigned before reuse.
func rearmedHandle(eng *sim.Engine) bool {
	ev := eng.At(5, func() {})
	eng.Cancel(ev)
	ev = eng.At(10, func() {})
	return ev.Scheduled()
}

// justified carries a suppression with a reason: recorded, not failed.
func justified(pl *packet.Pool) int64 {
	p := pl.Get()
	pl.Put(p)
	//powervet:pool fixture justification: reading a field of a just-recycled packet for a diagnostic
	return p.Seq // suppressed `use of packet p after it was released`
}
