// Package resultorder is the analysistest fixture for the resultorder
// analyzer: map-derived slices must be sorted before they are consumed.
package resultorder

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

// unsortedRange iterates a collected key slice in map order.
func unsortedRange(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys { // want `map-derived slice keys .* used without a sort`
		fmt.Println(k, m[k])
	}
}

// sortedRange is the sanctioned collect-then-sort pattern.
func sortedRange(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// passedToEncoder hands the unsorted slice to another function.
func passedToEncoder(m map[string]float64) {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	fmt.Println(names) // want `map-derived slice names .* used without a sort`
}

// collectedIterator tracks slices.Collect(maps.Keys(m)) the same way.
func collectedIterator(m map[string]int) {
	ks := slices.Collect(maps.Keys(m))
	fmt.Println(ks) // want `map-derived slice ks .* used without a sort`
}

// collectedIteratorSorted is clean.
func collectedIteratorSorted(m map[string]int) {
	ks := slices.Collect(maps.Keys(m))
	slices.Sort(ks)
	fmt.Println(ks)
}

// lenIsOrderBlind: len/cap reads and further appends are not
// consumption; the sort before the real consumer keeps this clean.
func lenIsOrderBlind(m1, m2 map[string]int) []string {
	var keys []string
	for k := range m1 {
		keys = append(keys, k)
	}
	for k := range m2 {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Strings(keys)
	return keys
}

// returnedUnsorted escapes the function in map order.
func returnedUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys // want `map-derived slice keys .* used without a sort`
}

// sortFuncAlsoCounts: any registered sort establishes order.
func sortFuncAlsoCounts(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b string) int {
		if a < b {
			return -1
		}
		return 1
	})
	return keys
}

// justified carries a suppression with a reason: recorded, not failed.
func justified(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	//powervet:ordered fixture justification: consumer deduplicates into a set
	return keys // suppressed `map-derived slice keys .* used without a sort`
}
