// Package simclock is the analysistest fixture for the simclock
// analyzer: wall-clock reads, global randomness, the sanctioned seeded
// patterns, and //powervet:clock suppressions.
package simclock

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// wallClock reads the wall clock three ways.
func wallClock(start time.Time) time.Duration {
	now := time.Now()       // want `time\.Now on the simulation path`
	_ = time.Since(start)   // want `time\.Since on the simulation path`
	time.Sleep(time.Second) // want `time\.Sleep on the simulation path`
	_ = time.Until(now)     // want `time\.Until on the simulation path`
	return time.Millisecond // constants are fine: no clock is read
}

// globalRand draws from the process-global generators.
func globalRand() int {
	_ = rand.Float64()   // want `global rand\.Float64 on the simulation path`
	_ = randv2.IntN(10)  // want `global rand\.IntN on the simulation path`
	rand.Shuffle(1, nil) // want `global rand\.Shuffle on the simulation path`
	return rand.Intn(10) // want `global rand\.Intn on the simulation path`
}

// seeded is the sanctioned pattern: explicit source, per-run seed.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// methodsOnValues are fine: time.Time/Duration arithmetic reads no
// clock.
func methodsOnValues(t time.Time, d time.Duration) float64 {
	_ = t.Add(d)
	return d.Seconds()
}

// shadowed is fine: a local variable may be named like the package.
func shadowed() int {
	type fakeRand struct{ n int }
	rand := fakeRand{n: 4}
	return rand.n
}

// justified carries a suppression with a reason: recorded, not failed.
func justified() time.Time {
	//powervet:clock fixture justification: diagnostic print only
	return time.Now() // suppressed `time\.Now on the simulation path`
}
