package analysis

import (
	"go/ast"
	"go/types"
)

// Simclock bans wall-clock reads and global (unseeded, process-shared)
// randomness in simulation-path packages. Simulated time must come from
// the engine clock (sim.Engine.Now) and every random draw from the
// per-run seeded *rand.Rand, or fixed-seed runs stop being replayable.
//
// Banned: time.Now/Since/Until and the runtime-timer constructors
// (Sleep, After, AfterFunc, Tick, NewTimer, NewTicker), plus every
// package-level math/rand and math/rand/v2 function except the
// explicit-source constructors (New, NewSource, NewZipf, NewPCG,
// NewChaCha8) — rand.New(rand.NewSource(seed)) is the sanctioned
// pattern, rand.Intn is a draw from process-global state.
//
// There is no in-tree justification for a wall-clock read on the
// simulation path, so the suppression directive (`//powervet:clock`)
// exists for completeness but the tree is expected to carry none;
// packages where the wall clock is the point (livenet) are excluded
// wholesale with a documented reason in ExcludedPackages.
var Simclock = &Analyzer{
	Name:      "simclock",
	Doc:       "bans time.Now/time.Since and global math/rand in simulation-path packages",
	Directive: "clock",
	Run:       runSimclock,
}

// bannedTimeFuncs are the package-level time functions that read the
// wall clock or arm runtime timers.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand constructors that take an explicit
// source or seed; everything else package-level draws from the shared
// global generator.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runSimclock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only function references are draws or clock reads; type
			// references like `*rand.Rand` in a signature are how the
			// sanctioned seeded generator is passed around.
			obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			// Only package-qualified references count: methods on a
			// *rand.Rand (a seeded generator) or on time.Time values
			// are fine, as is a local variable that shadows the
			// package name.
			if !isPackageQualifier(pass, sel) {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), "time.%s on the simulation path (use the engine clock: sim.Engine.Now / sim.Timer)", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), "global %s.%s on the simulation path (draw from the per-run seeded *rand.Rand instead)", obj.Pkg().Name(), obj.Name())
				}
			}
			return true
		})
	}
}

// isPackageQualifier reports whether sel's base expression names an
// imported package (as opposed to a value whose methods happen to
// collide, e.g. a *rand.Rand variable named rand).
func isPackageQualifier(pass *Pass, sel *ast.SelectorExpr) bool {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkgName := pass.Info.Uses[id].(*types.PkgName)
	return isPkgName
}
