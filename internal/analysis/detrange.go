package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detrange flags iteration over unordered collections in
// simulation-path packages: `for range` over a map, and calls to the
// unordered iterators maps.Keys/maps.Values/maps.All outside a sorting
// wrapper. Go randomizes map iteration order per run, so any such loop
// whose body is order-sensitive breaks the fixed-seed ⇒
// byte-identical-output guarantee.
//
// A loop escapes in three ways:
//
//   - Its body is order-insensitive by the conservative allowlist:
//     every statement is a commutative accumulation (integer ++/--,
//     +=/-=/|=/&=/^= with a call-free right-hand side), an idempotent
//     constant latch (x = <literal>), delete(), a write into another
//     map keyed by the loop variable, a pure collection append (the
//     resultorder analyzer then requires the sort), break/continue, or
//     an if over a call-free condition whose branches contain only the
//     above.
//   - The keys flow straight into a sort: slices.Sorted(maps.Keys(m)).
//   - The site carries `//powervet:ordered <reason>`.
var Detrange = &Analyzer{
	Name:      "detrange",
	Doc:       "flags order-sensitive iteration over unordered maps in simulation-path packages",
	Directive: "ordered",
	Run:       runDetrange,
}

func runDetrange(pass *Pass) {
	// Calls of unordered iterators that are immediately sorted or
	// collected are fine; collect the sanctioned call nodes first.
	sanctioned := map[*ast.CallExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if funcPkgPath(fn) != "slices" {
					return true
				}
				switch fn.Name() {
				case "Sorted", "SortedFunc", "SortedStableFunc":
					for _, arg := range n.Args {
						if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
							sanctioned[inner] = true
						}
					}
				}
			case *ast.AssignStmt:
				// s := slices.Collect(maps.Keys(m)) hands the ordering
				// obligation to resultorder, which tracks s to its
				// first consumer. A Collect that is returned or passed
				// on directly escapes that tracking and stays flagged.
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 && isUnorderedCollect(pass.Info, n.Rhs[0]) {
					if collect, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
						if inner, ok := ast.Unparen(collect.Args[0]).(*ast.CallExpr); ok {
							sanctioned[inner] = true
						}
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.Info.Types[n.X].Type
				if !isMapType(t) {
					return true
				}
				if orderInsensitiveBody(pass.Info, n) {
					return true
				}
				pass.Reportf(n.For, "order-sensitive range over map %s (map iteration order is randomized; sort the keys or justify with //powervet:ordered)",
					types.TypeString(t, types.RelativeTo(pass.Pkg)))
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if funcPkgPath(fn) != "maps" {
					return true
				}
				switch fn.Name() {
				case "Keys", "Values", "All":
					if sanctioned[n] {
						return true
					}
					pass.Reportf(n.Pos(), "unordered maps.%s iterator (wrap in slices.Sorted or justify with //powervet:ordered)", fn.Name())
				}
			}
			return true
		})
	}
}

// orderInsensitiveBody reports whether every statement of the range
// body is on the commutative/idempotent allowlist, with rng the range
// statement supplying the loop variables.
func orderInsensitiveBody(info *types.Info, rng *ast.RangeStmt) bool {
	keyObj := definedObject(info, rng.Key)
	valObj := definedObject(info, rng.Value)
	// Objects the body itself mutates: an allowed accumulation feeding
	// an allowed keyed write (i++; m2[k] = i) is order-sensitive in
	// composition, so right-hand sides may not read anything the body
	// writes.
	mutated := map[types.Object]bool{}
	for _, st := range rng.Body.List {
		collectMutated(info, st, mutated)
	}
	cx := detrangeCtx{info: info, keyObj: keyObj, valObj: valObj, mutated: mutated}
	for _, st := range rng.Body.List {
		if !cx.orderInsensitiveStmt(st) {
			return false
		}
	}
	return true
}

type detrangeCtx struct {
	info    *types.Info
	keyObj  types.Object
	valObj  types.Object
	mutated map[types.Object]bool
}

// collectMutated records every object st assigns or increments, at any
// nesting depth.
func collectMutated(info *types.Info, st ast.Stmt, out map[types.Object]bool) {
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := usedObject(info, lhs); obj != nil {
					out[obj] = true
				}
			}
		case *ast.IncDecStmt:
			if obj := usedObject(info, n.X); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
}

// readsMutated reports whether e reads any object the loop body writes.
func (cx detrangeCtx) readsMutated(e ast.Expr) bool {
	if e == nil || len(cx.mutated) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && cx.mutated[cx.info.Uses[id]] {
			found = true
			return false
		}
		return true
	})
	return found
}

func definedObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func (cx detrangeCtx) orderInsensitiveStmt(st ast.Stmt) bool {
	info := cx.info
	switch st := st.(type) {
	case *ast.IncDecStmt:
		// n++ / n-- (or hist[v]++): commutative counting, as long as
		// the operand expression itself cannot observe order through a
		// call.
		return !hasCall(st.X)
	case *ast.AssignStmt:
		return cx.orderInsensitiveAssign(st)
	case *ast.ExprStmt:
		// delete(m, k) is the one call that is order-insensitive by
		// construction.
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "delete" && info.Uses[id] == types.Universe.Lookup("delete")
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE
	case *ast.IfStmt:
		// Guarded accumulation: condition must be call-free (calls may
		// observe order through side effects) and must not read
		// anything the body mutates, branches recurse.
		if st.Init != nil && !cx.orderInsensitiveStmt(st.Init) {
			return false
		}
		if hasCall(st.Cond) || cx.readsMutated(st.Cond) {
			return false
		}
		for _, s := range st.Body.List {
			if !cx.orderInsensitiveStmt(s) {
				return false
			}
		}
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				for _, s := range e.List {
					if !cx.orderInsensitiveStmt(s) {
						return false
					}
				}
			case *ast.IfStmt:
				return cx.orderInsensitiveStmt(e)
			}
		}
		return true
	case *ast.BlockStmt:
		for _, s := range st.List {
			if !cx.orderInsensitiveStmt(s) {
				return false
			}
		}
		return true
	case *ast.EmptyStmt:
		return true
	}
	return false
}

func (cx detrangeCtx) orderInsensitiveAssign(st *ast.AssignStmt) bool {
	info := cx.info
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// x op= e is commutative for integers; float addition is not
		// associative, so summing float map values in map order is a
		// real determinism bug and stays flagged.
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		if hasCall(st.Rhs[0]) || cx.readsMutated(st.Rhs[0]) {
			return false
		}
		t := info.Types[st.Lhs[0]].Type
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
	case token.ASSIGN, token.DEFINE:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		lhs, rhs := st.Lhs[0], st.Rhs[0]
		// Idempotent latch: x = <constant>. Every iteration that writes
		// a given location writes the same value, so order is moot.
		if info.Types[rhs].Value != nil && !hasCall(rhs) && !hasCall(lhs) {
			return true
		}
		// Keyed transfer: m2[k] = <expr> with the index being exactly
		// the loop key writes each key's slot once, so iteration order
		// cannot matter. The index must be the bare key — a computed
		// index like m2[k%3] can collide across keys and stays
		// flagged. Works for maps and for slices/arrays (distinct
		// keys, distinct elements). The value may not read anything
		// the body mutates.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && cx.keyObj != nil {
			if indexedByKey(info, ix, cx.keyObj) && !hasCall(rhs) && !cx.readsMutated(rhs) {
				return true
			}
		}
		// Pure collection: s = append(s, ...) with call-free element
		// expressions. The slice content becomes order-dependent, which
		// is exactly what the resultorder analyzer tracks — it requires
		// a sort before the slice is consumed.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && info.Uses[id] == types.Universe.Lookup("append") {
				for _, arg := range call.Args[1:] {
					if hasCall(arg) {
						return false
					}
				}
				return true
			}
		}
		return false
	}
	return false
}

// indexedByKey reports whether ix indexes a map, slice or array with
// exactly the loop-key identifier.
func indexedByKey(info *types.Info, ix *ast.IndexExpr, keyObj types.Object) bool {
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	if !ok || info.Uses[id] != keyObj {
		return false
	}
	t := info.Types[ix.X].Type
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		// *[N]T auto-dereferences on indexing.
		return true
	}
	return false
}

// hasCall reports whether e contains any call or channel receive —
// operations whose side effects could observe iteration order.
func hasCall(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Builtin len/cap/min/max are pure.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "len", "cap", "min", "max":
					return true
				}
			}
			found = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsObject reports whether e references obj.
func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil || e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
