package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Resultorder enforces the collect-then-sort discipline that keeps the
// Result envelope and every encoder byte-deterministic: a slice whose
// contents were collected from map iteration (`for k := range m { ks =
// append(ks, k) }` or `slices.Collect(maps.Keys(m))`) carries the map's
// randomized order, so it must pass through a sort before it is ranged
// over, indexed, or handed to any other function.
//
// Detrange deliberately allows the collection loop itself (appending is
// the sanctioned way out of a map range); this analyzer closes the
// loop by tracking the collected slice to its first consumer within the
// same statement list. A sort call — sort.Strings/Ints/Float64s/Slice/
// SliceStable/Sort or slices.Sort/SortFunc/SortStableFunc — clears the
// taint; any other consumer first is a finding.
var Resultorder = &Analyzer{
	Name:      "resultorder",
	Doc:       "requires map-derived slices to be sorted before use in encoders and Result envelopes",
	Directive: "ordered",
	Run:       runResultorder,
}

func runResultorder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkOrderList(pass, n.List)
			case *ast.CaseClause:
				checkOrderList(pass, n.Body)
			case *ast.CommClause:
				checkOrderList(pass, n.Body)
			}
			return true
		})
	}
}

// checkOrderList scans one statement list for map-derived slices and
// their consumers.
func checkOrderList(pass *Pass, list []ast.Stmt) {
	tainted := map[types.Object]token.Pos{} // slice object → collection site
	for _, st := range list {
		// Consumption first: a statement may both consume and retaint.
		if len(tainted) > 0 {
			reportUnsortedUses(pass, st, tainted)
		}
		switch st := st.(type) {
		case *ast.RangeStmt:
			// for k[, v] := range m { s = append(s, ...) } taints s.
			if isMapType(pass.Info.Types[st.X].Type) {
				for _, inner := range st.Body.List {
					if obj := collectedSlice(pass.Info, inner); obj != nil {
						tainted[obj] = st.Pos()
					}
				}
			}
		case *ast.AssignStmt:
			// s := slices.Collect(maps.Keys(m)) taints s.
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
				if isUnorderedCollect(pass.Info, st.Rhs[0]) {
					if obj := usedObject(pass.Info, st.Lhs[0]); obj != nil {
						tainted[obj] = st.Pos()
					}
				}
			}
		}
	}
}

// collectedSlice returns the object of s when stmt has the form
// s = append(s, ...), else nil.
func collectedSlice(info *types.Info, stmt ast.Stmt) types.Object {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
		return nil
	}
	return usedObject(info, as.Lhs[0])
}

// isUnorderedCollect reports whether e is slices.Collect over an
// unordered maps iterator.
func isUnorderedCollect(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "slices" || fn.Name() != "Collect" || len(call.Args) != 1 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	ifn := calleeFunc(info, inner)
	if ifn == nil || funcPkgPath(ifn) != "maps" {
		return false
	}
	switch ifn.Name() {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

// sortFuncs maps (package, function) pairs that establish order on
// their first argument.
var sortFuncs = map[[2]string]bool{
	{"sort", "Strings"}:          true,
	{"sort", "Ints"}:             true,
	{"sort", "Float64s"}:         true,
	{"sort", "Slice"}:            true,
	{"sort", "SliceStable"}:      true,
	{"sort", "Sort"}:             true,
	{"sort", "Stable"}:           true,
	{"slices", "Sort"}:           true,
	{"slices", "SortFunc"}:       true,
	{"slices", "SortStableFunc"}: true,
}

// reportUnsortedUses clears taint on sort calls and flags any other use
// of a tainted slice in st.
func reportUnsortedUses(pass *Pass, st ast.Stmt, tainted map[types.Object]token.Pos) {
	// Sort calls clear the taint before the use scan.
	sortedHere := map[*ast.Ident]bool{}
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || len(call.Args) == 0 {
			return true
		}
		if !sortFuncs[[2]string{funcPkgPath(fn), fn.Name()}] {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		// sort.Sort(byX(s)) wraps the slice in a conversion; unwrap one
		// call/conversion layer.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = ast.Unparen(conv.Args[0])
		}
		if id, ok := arg.(*ast.Ident); ok {
			if obj := usedObject(pass.Info, id); obj != nil {
				if _, ok := tainted[obj]; ok {
					delete(tainted, obj)
					sortedHere[id] = true
				}
			}
		}
		return true
	})
	// Benign mentions: growing the collection further with another
	// s = append(s, ...) anywhere in st (e.g. a second collection
	// loop), and order-blind len/cap reads.
	benign := map[*ast.Ident]bool{}
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case ast.Stmt:
			if obj := collectedSlice(pass.Info, n); obj != nil {
				ast.Inspect(n, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && usedObject(pass.Info, id) == obj {
						benign[id] = true
					}
					return true
				})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && pass.Info.Uses[id] == types.Universe.Lookup(id.Name) {
				for _, arg := range n.Args {
					if aid, ok := ast.Unparen(arg).(*ast.Ident); ok {
						benign[aid] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(st, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || sortedHere[id] || benign[id] {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if site, ok := tainted[obj]; ok {
			pass.Reportf(id.Pos(), "map-derived slice %s (collected at line %d) used without a sort — its order is the map's randomized iteration order",
				obj.Name(), pass.Fset.Position(site).Line)
			delete(tainted, obj)
		}
		return true
	})
}
