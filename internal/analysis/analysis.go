package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one powervet check. The shape deliberately
// mirrors golang.org/x/tools/go/analysis.Analyzer so the checks can be
// lifted onto the real multichecker unchanged once x/tools is
// available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("detrange").
	Name string
	// Doc is the one-paragraph description printed by `powervet -list`.
	Doc string
	// Directive is the suppression word: a `//powervet:<Directive>
	// <reason>` comment on (or directly above) a flagged line silences
	// the finding. The reason is mandatory.
	Directive string
	// Run reports findings on one type-checked package via pass.Reportf.
	Run func(*Pass)
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed is true when the site carries a justified powervet
	// directive; Reason holds the justification. Suppressed findings do
	// not fail the gate but are listed by `powervet -v`.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags      []Diagnostic
	directives map[string]map[int]directive // filename → line → directive
}

type directive struct {
	name   string
	reason string
}

var directiveRE = regexp.MustCompile(`^//powervet:([a-z]+)(?:\s+(.*))?$`)

// buildDirectives indexes every //powervet: comment by file and line.
func (p *Pass) buildDirectives() {
	p.directives = map[string]map[int]directive{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = map[int]directive{}
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = directive{name: m[1], reason: strings.TrimSpace(m[2])}
			}
		}
	}
}

// directiveFor returns the directive governing pos: one on the same
// line (trailing comment) or on the line directly above (own-line
// comment).
func (p *Pass) directiveFor(pos token.Position) (directive, bool) {
	if p.directives == nil {
		p.buildDirectives()
	}
	byLine := p.directives[pos.Filename]
	if byLine == nil {
		return directive{}, false
	}
	if d, ok := byLine[pos.Line]; ok {
		return d, true
	}
	d, ok := byLine[pos.Line-1]
	return d, ok
}

// Reportf records a finding at pos. If the site carries the analyzer's
// suppression directive with a justification, the finding is recorded
// as suppressed; a directive without a justification does not suppress
// and is itself called out, so the tree can never accumulate
// unexplained escapes.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	d := Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)}
	if dir, ok := p.directiveFor(position); ok && dir.name == p.Analyzer.Directive {
		if dir.reason != "" {
			d.Suppressed = true
			d.Reason = dir.reason
		} else {
			d.Message += fmt.Sprintf(" (//powervet:%s needs a justification)", dir.name)
		}
	}
	p.diags = append(p.diags, d)
}

// Diagnostics returns the findings in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

// Run executes one analyzer over a loaded package and returns its
// findings.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	a.Run(pass)
	return pass.Diagnostics()
}

// All returns the full powervet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detrange, Simclock, Pooluse, Resultorder}
}

// calleeFunc resolves the called package-level function or method for a
// call expression, or nil when the callee is not a known func object
// (builtin, conversion, function-typed variable).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package a function belongs
// to ("" for builtins and method expressions on unnamed types).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvNamed returns the named type of fn's receiver (dereferencing one
// pointer), or nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// usedObject resolves an identifier expression to its object, looking
// through parentheses. Only plain identifiers resolve; selector bases
// and index expressions return nil.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
