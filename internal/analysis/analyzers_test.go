package analysis

import "testing"

// The four analyzer fixtures follow the x/tools analysistest contract:
// every `// want` marker must be matched by an active diagnostic, every
// `// suppressed` marker by a finding silenced through a justified
// //powervet directive, and no diagnostic may be unexpected. The
// fixtures cover positive hits, every allowlisted escape, and the
// suppression syntax for each analyzer.

func TestDetrangeFixture(t *testing.T) {
	RunFixture(t, Detrange, "detrange")
}

func TestSimclockFixture(t *testing.T) {
	RunFixture(t, Simclock, "simclock")
}

func TestPooluseFixture(t *testing.T) {
	RunFixture(t, Pooluse, "pooluse")
}

func TestResultorderFixture(t *testing.T) {
	RunFixture(t, Resultorder, "resultorder")
}

// TestSuiteCleanOnRealPackages is the in-process version of the CI
// gate's core claim for two load-bearing packages: the scenario
// execution layer (owns the Result envelope) and the routing control
// plane are free of active findings. The full-tree sweep runs in CI via
// `go run ./cmd/powervet ./...`.
func TestSuiteCleanOnRealPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking real packages from source is slow")
	}
	loader := NewLoader()
	for path, dir := range map[string]string{
		"repro/internal/scenario": "../scenario",
		"repro/internal/route":    "../route",
	} {
		pkg, err := loader.Load(path, dir)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		for _, a := range All() {
			for _, d := range Run(a, pkg) {
				if !d.Suppressed {
					t.Errorf("%s: unexpected finding: %s", path, d.String())
				}
			}
		}
	}
}
