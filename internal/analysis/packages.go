package analysis

import "strings"

// modulePath is the import-path prefix of this module.
const modulePath = "repro"

// SimPathPackages names every internal package on the simulation path —
// the code whose execution order, clock reads and RNG draws feed the
// fixed-seed ⇒ byte-identical-output guarantee. All four analyzers run
// over these. The meta-test in packages_test.go pins this list to the
// actual contents of internal/: a new internal package must be added
// here or to ExcludedPackages with a written reason, never silently
// skipped.
var SimPathPackages = []string{
	"buffer",    // Dynamic-Thresholds admission — decides drops
	"cc",        // congestion-control baselines — per-ACK control flow
	"core",      // PowerTCP / θ-PowerTCP laws — the paper's algorithms
	"exp",       // experiment registry + suite fan-out feeding Result encoders
	"fluid",     // RK4 fluid model — deterministic integration
	"fuzzlab",   // scenario generator/shrinker — seeded RNG, reproducible minimization
	"guard",     // run supervision — budgets trip at sim-time checkpoints, so no wall clock allowed
	"homa",      // HOMA transport — grants, resends
	"hybrid",    // fluid/packet coupling — exchange ticks are engine events, RK4 order fixed
	"link",      // ports, serialization, delivery ordering
	"monitor",   // taps and captures embedded in golden outputs
	"packet",    // packet struct + pool — recycling must not alter output
	"psim",      // parallel conservative-sync fabric — barrier order IS the output order
	"queue",     // FIFO rings on the hot path
	"rdcn",      // reconfigurable-DCN schedule + reTCP
	"route",     // ECMP/WCMP tables, BFS rebuilds, failure events
	"scenario",  // Topology×Traffic×Events×Probes execution + Result envelope
	"sim",       // the event engine itself — the clock everyone must use
	"stats",     // distributions/series aggregated into results
	"swtch",     // switch forwarding, hash-based path choice
	"telemetry", // INT hop records carried in packets
	"topo",      // fabric construction — wiring order fixes IDs
	"transport", // flows, hosts, pacing, RTO
	"units",     // bitrate/size arithmetic used in every computation
	"wire",      // packet serialization — byte layout of the deployment path
	"workload",  // seeded traffic generators — the RNG discipline lives here
}

// ExcludedPackages maps internal packages that are deliberately outside
// the simulation-path determinism contract to the reason why. Every
// exclusion must carry a reason; the meta-test enforces that the union
// of SimPathPackages and ExcludedPackages is exactly the set of
// internal packages.
var ExcludedPackages = map[string]string{
	// livenet is the real-network deployment path: wall-clock
	// timestamps, kernel sockets and OS scheduling are the point of the
	// package (the paper's §3.6 run over loopback), so simclock's
	// engine-clock rule cannot apply. Its inherent timing variance is
	// why its adaptation test is gated behind POWERTCP_LIVENET=1 — the
	// same boundary, enforced once at the package level here instead of
	// per call site.
	"livenet": "real-network path: wall clock and kernel sockets are the point; runtime counterpart gated by POWERTCP_LIVENET=1",
	// The linter does not lint itself: analysis runs at development
	// time, never inside a simulation.
	"analysis": "powervet's own implementation; not simulation code",
	// serve is the HTTP boundary of powersimd: Retry-After hints,
	// admission control, and request timeouts are wall-clock concerns by
	// design. Nothing in it schedules onto a sim engine — runs execute
	// through guard, which stays on the sim-path list.
	"serve": "powersimd HTTP layer: wall-clock admission control and Retry-After live here, outside the sim path by design",
}

// IsSimPath reports whether importPath is a simulation-path package
// subject to the full analyzer suite.
func IsSimPath(importPath string) bool {
	rel, ok := strings.CutPrefix(importPath, modulePath+"/internal/")
	if !ok {
		return false
	}
	for _, p := range SimPathPackages {
		if rel == p {
			return true
		}
	}
	return false
}

// IsOutputPath reports whether importPath produces user-visible output
// from simulation results (the root package and the cmd tools). These
// run the ordering analyzers (detrange, resultorder, pooluse) so that
// encoders stay byte-deterministic, but not simclock: a CLI may
// legitimately read the wall clock for progress reporting.
func IsOutputPath(importPath string) bool {
	return importPath == modulePath || strings.HasPrefix(importPath, modulePath+"/cmd/")
}

// AnalyzersFor returns the analyzers that apply to importPath, nil when
// the package is out of scope.
func AnalyzersFor(importPath string) []*Analyzer {
	switch {
	case IsSimPath(importPath):
		return All()
	case IsOutputPath(importPath):
		return []*Analyzer{Detrange, Pooluse, Resultorder}
	default:
		return nil
	}
}
