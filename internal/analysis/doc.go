// Package analysis implements powervet, the repo's compile-time
// determinism and hot-path linter: a small go/analysis-shaped framework
// (Analyzer, Pass, Diagnostic) built on the standard library's
// go/parser + go/types source importer, plus four repo-specific
// analyzers that prove the simulator's two load-bearing guarantees
// statically instead of sampling them at runtime:
//
//   - detrange: no iteration over unordered maps in simulation-path
//     packages, unless the loop body is provably order-insensitive or
//     the site carries a justified //powervet:ordered comment.
//   - simclock: no time.Now/time.Since/global math/rand in
//     simulation-path packages — simulated time comes from the engine
//     clock and randomness from the per-run seeded RNG.
//   - pooluse: no use-after-Put or double-Put of packet.Pool packets,
//     and no use of a sim.Event handle after Engine.Cancel, within a
//     basic block (the bug class PERF.md's pooling invariants document).
//   - resultorder: a slice collected from map iteration must be sorted
//     before it is ranged over or handed to an encoder — the rule that
//     keeps Result envelopes byte-identical at fixed seeds.
//
// A finding is suppressed by a line comment of the form
//
//	//powervet:<directive> <justification>
//
// on the flagged line or the line above it; the justification is
// mandatory, so every suppression in the tree is self-explaining. The
// driver is cmd/powervet (`go run ./cmd/powervet ./...`), wired into CI
// as a hard gate. The API mirrors golang.org/x/tools/go/analysis so the
// analyzers can be ported to a real `go vet -vettool` multichecker
// mechanically once that dependency is available; the build environment
// for this repo is offline, so the framework stays stdlib-only.
package analysis
