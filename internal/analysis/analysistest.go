package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
)

// TB is the subset of *testing.T the fixture runner needs, kept as an
// interface so this file stays out of the test binary's import graph.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// expectation is one parsed want/suppressed marker.
type expectation struct {
	file       string
	line       int
	re         *regexp.Regexp
	suppressed bool
	matched    bool
}

// markerRE matches `// want "re"` and `// want ` + "`re`" + ` markers
// (double-quoted or backquoted, as in x/tools analysistest).
var markerRE = regexp.MustCompile("//\\s*(want|suppressed)\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// RunFixture loads testdata/src/<fixture>, runs one analyzer over it,
// and compares the diagnostics against the fixture's inline markers —
// the same contract as x/tools' analysistest:
//
//	for k := range m { // want "order-sensitive"
//
// expects an active finding on that line whose message matches the
// regexp, and
//
//	//powervet:ordered some reason
//	for k := range m { // suppressed "order-sensitive"
//
// expects the finding to fire but be silenced by a justified
// directive. Every diagnostic must be expected and every expectation
// must be matched; anything else fails the test.
func RunFixture(t TB, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	loader := NewLoader()
	pkg, err := loader.Load("fixture/"+fixture, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseMarkers(pkg.Fset, c)...)
			}
		}
	}

	for _, d := range Run(a, pkg) {
		if !matchExpectation(wants, d) {
			kind := "diagnostic"
			if d.Suppressed {
				kind = "suppressed diagnostic"
			}
			t.Errorf("unexpected %s: %s", kind, d.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			kind := "want"
			if w.suppressed {
				kind = "suppressed"
			}
			t.Errorf("%s:%d: no diagnostic matched %s %q", w.file, w.line, kind, w.re.String())
		}
	}
}

// parseMarkers extracts want/suppressed expectations from one comment.
func parseMarkers(fset *token.FileSet, c *ast.Comment) []*expectation {
	var out []*expectation
	pos := fset.Position(c.Pos())
	for _, m := range markerRE.FindAllStringSubmatch(c.Text, -1) {
		src := m[2]
		if m[3] != "" {
			src = m[3]
		}
		re, err := regexp.Compile(src)
		if err != nil {
			panic(fmt.Sprintf("%s:%d: bad marker regexp %q: %v", pos.Filename, pos.Line, src, err))
		}
		out = append(out, &expectation{
			file:       pos.Filename,
			line:       pos.Line,
			re:         re,
			suppressed: m[1] == "suppressed",
		})
	}
	return out
}

// matchExpectation marks and reports the first unmatched expectation
// compatible with d.
func matchExpectation(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.suppressed != d.Suppressed {
			continue
		}
		if w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if !w.re.MatchString(d.Message) {
			continue
		}
		w.matched = true
		return true
	}
	return false
}
