package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Pooluse checks the pooling invariants PERF.md documents but nothing
// machine-checks: after `pool.Put(p)` the packet belongs to an
// unrelated future sender, so touching p — or Putting it a second time
// — corrupts simulation state in a way that only surfaces later as an
// impossible packet. Likewise a sim.Event handle is stale after
// Engine.Cancel: further Scheduled/Cancelled/Cancel calls on it answer
// for a recycled node and always report the constant no-event answer,
// which almost always means the code meant to track a new handle.
//
// The analysis is block-local dataflow, matching how the bug class
// actually appears (release then touch within one function): within
// each statement list, a release call (packet.Pool.Put, sim.Engine
// Cancel) marks its identifier operand released; any later statement in
// the same list that mentions the identifier is flagged, until an
// assignment to it kills the released state. Uses in sibling branches
// or across loop iterations are out of scope — the runtime
// pooled-vs-unpooled determinism suite still covers those.
var Pooluse = &Analyzer{
	Name:      "pooluse",
	Doc:       "flags use-after-Put/double-Put of pooled packets and use of cancelled event handles",
	Directive: "pool",
	Run:       runPooluse,
}

// releaseTable maps (package path, receiver type, method) to the
// argument index that the call releases.
type releaseSig struct {
	pkg    string
	recv   string
	method string
}

var releaseFuncs = map[releaseSig]struct {
	arg  int
	what string // noun for diagnostics
}{
	{pkg: "repro/internal/packet", recv: "Pool", method: "Put"}:   {arg: 0, what: "packet"},
	{pkg: "repro/internal/sim", recv: "Engine", method: "Cancel"}: {arg: 0, what: "event handle"},
}

func runPooluse(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			// Walk every statement list inside the function
			// independently; nested function literals are visited by
			// the outer Inspect, so skip them here.
			ast.Inspect(body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok && n != nil {
					return false
				}
				switch n := n.(type) {
				case *ast.BlockStmt:
					checkStmtList(pass, n.List)
				case *ast.CaseClause:
					checkStmtList(pass, n.Body)
				case *ast.CommClause:
					checkStmtList(pass, n.Body)
				}
				return true
			})
			return false // the inner Inspect handled this function's body
		})
	}
}

// released records where an object was released within the current
// statement list.
type released struct {
	pos  token.Pos
	what string
}

// checkStmtList runs the release/use scan over one straight-line
// statement list.
func checkStmtList(pass *Pass, list []ast.Stmt) {
	freed := map[types.Object]released{}
	for _, st := range list {
		// Uses of already-freed objects anywhere in this statement,
		// except positions that kill (assignment LHS) or re-release
		// (second Put — reported as double release).
		if len(freed) > 0 {
			reportFreedUses(pass, st, freed)
		}
		// Kills: plain assignment to the object gives it a fresh value.
		if as, ok := st.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if obj := usedObject(pass.Info, lhs); obj != nil {
					delete(freed, obj)
				}
			}
		}
		// New releases introduced by this statement. Only releases that
		// execute unconditionally count: the scan stops at nested
		// statement lists (if/for/switch bodies), which run their own
		// scan with a fresh state — a conditional Put does not poison
		// the fall-through path.
		ast.Inspect(st, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.BlockStmt:
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			rel, obj := releaseCall(pass.Info, call)
			if obj == nil {
				return true
			}
			freed[obj] = released{pos: call.Pos(), what: rel.what}
			return true
		})
	}
}

// reportFreedUses flags identifiers in st that refer to freed objects,
// skipping assignment left-hand sides (kills) and the release calls
// themselves (double releases are reported separately).
func reportFreedUses(pass *Pass, st ast.Stmt, freed map[types.Object]released) {
	killed := map[types.Object]bool{}
	if as, ok := st.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := usedObject(pass.Info, id); obj != nil {
					killed[obj] = true
				}
			}
		}
	}
	// Identifiers that are the operand of a release call in this
	// statement: a second release of a freed object is a double
	// release, not a plain use.
	releaseOperand := map[*ast.Ident]bool{}
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if rel, _ := releaseCall(pass.Info, call); rel.what != "" {
			if id, ok := ast.Unparen(call.Args[relArgIndex(pass.Info, call)]).(*ast.Ident); ok {
				releaseOperand[id] = true
			}
		}
		return true
	})
	ast.Inspect(st, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || killed[obj] {
			return true
		}
		rel, wasFreed := freed[obj]
		if !wasFreed {
			return true
		}
		if releaseOperand[id] {
			pass.Reportf(id.Pos(), "double release of %s %s (already released at line %d)",
				rel.what, obj.Name(), pass.Fset.Position(rel.pos).Line)
		} else {
			pass.Reportf(id.Pos(), "use of %s %s after it was released at line %d (released storage is recycled; copy what you need before the release)",
				rel.what, obj.Name(), pass.Fset.Position(rel.pos).Line)
		}
		// Report each object once per block to keep the signal
		// readable.
		delete(freed, obj)
		return true
	})
}

// releaseCall reports whether call is a registered release call and
// resolves its released identifier operand (nil when the operand is
// not a plain identifier).
func releaseCall(info *types.Info, call *ast.CallExpr) (struct {
	arg  int
	what string
}, types.Object) {
	var zero struct {
		arg  int
		what string
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return zero, nil
	}
	named := recvNamed(fn)
	if named == nil {
		return zero, nil
	}
	sig := releaseSig{pkg: funcPkgPath(fn), recv: named.Obj().Name(), method: fn.Name()}
	rel, ok := releaseFuncs[sig]
	if !ok || rel.arg >= len(call.Args) {
		return zero, nil
	}
	return rel, usedObject(info, call.Args[rel.arg])
}

// relArgIndex returns the released-argument index of a known release
// call (0 when the call is not registered; callers gate on releaseCall
// first).
func relArgIndex(info *types.Info, call *ast.CallExpr) int {
	fn := calleeFunc(info, call)
	if fn == nil {
		return 0
	}
	named := recvNamed(fn)
	if named == nil {
		return 0
	}
	if rel, ok := releaseFuncs[releaseSig{pkg: funcPkgPath(fn), recv: named.Obj().Name(), method: fn.Name()}]; ok {
		return rel.arg
	}
	return 0
}
