// Package link models a switch or host egress port: an output queue
// drained at line rate onto a point-to-point link with fixed propagation
// delay (store-and-forward, as in ns-3's point-to-point model the paper
// evaluates on).
//
// Ports expose hooks that the owning device uses to implement INT
// stamping, ECN marking, and shared-buffer accounting at dequeue time,
// mirroring where a real traffic manager takes those actions.
//
// The drain loop is allocation-free in steady state: the serializer is a
// pre-bound sim.Timer, and each delivery is an argument-carrying engine
// event (sim.Engine.AtCall) whose callback is bound once per port —
// kick() schedules zero new objects per packet. Scheduling the delivery
// at dequeue time (rather than chaining deliveries off one timer) keeps
// same-instant cross-port event ordering identical to a per-closure
// implementation, which the determinism suite relies on.
package link

import (
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/units"
)

// Receiver consumes packets delivered by a link.
type Receiver interface {
	Receive(p *packet.Packet)
}

// Port is one egress port: queue + serializer + wire.
type Port struct {
	Name  string
	Eng   *sim.Engine
	Rate  units.BitRate // line rate
	Delay sim.Duration  // propagation delay to Peer
	Peer  Receiver
	Q     queue.Queue

	// Admit is consulted before enqueueing; returning false drops the
	// packet (shared-buffer admission). Nil admits everything.
	Admit func(p *packet.Packet) bool
	// OnDequeue runs when a packet is scheduled for transmission, before
	// its serialization time is computed; devices use it to stamp INT,
	// mark ECN, and release shared-buffer memory.
	OnDequeue func(p *packet.Packet)
	// OnDrop observes admission drops (for metrics).
	OnDrop func(p *packet.Packet)
	// Pool, when set, recycles admission-dropped packets (the
	// NIC/switch-side Put point of the engine's packet free list).
	Pool *packet.Pool
	// X, when set, replaces direct delivery scheduling: instead of an
	// engine event invoking Peer.Receive, the packet and its computed
	// arrival instant are handed to X (a cross-partition mailbox post —
	// see internal/topo's cut wiring and internal/psim). The wire-down
	// check that deliver would have performed moves to the mailbox's
	// delivery callback on the receiving side.
	X func(at sim.Time, p *packet.Packet)

	txBytes uint64 // cumulative wire bytes transmitted
	txPkts  uint64
	drops   uint64
	lost    uint64 // packets lost on a downed wire (local delivery path)
	// remoteLost counts packets lost on a downed cut wire, counted by the
	// receiving partition's delivery callback. It is a separate word from
	// lost because the two are written by different goroutines (sender
	// partition at transmit time, receiver partition at delivery time);
	// the psim barrier orders each against the final read in Lost.
	remoteLost uint64

	// Payload-byte ledger. Each word is updated at exactly one point of
	// the packet's life through this port, so the network-wide sums form
	// an exact conservation identity (the fuzzlab invariant): everything
	// accepted is eventually transmitted or still queued; everything
	// transmitted is delivered, lost on a downed wire, or still on the
	// wire. The pl* words are written by the port's own engine; the
	// remotePl* words only by the receiving partition's mailbox callback
	// on a cut (same discipline as remoteLost).
	plAccepted        uint64 // admitted into the queue
	plDropped         uint64 // rejected at admission
	plTx              uint64 // dequeued for transmission
	plLostTx          uint64 // serialized onto a downed wire
	plDelivered       uint64 // handed to Peer (local delivery path)
	plLostRx          uint64 // lost at the delivery instant (local path)
	remotePlDelivered uint64 // handed to Peer across a partition cut
	remotePlLost      uint64 // lost at delivery across a partition cut

	// Virtual fluid load (hybrid co-simulation, internal/hybrid). The
	// coupler folds each fluid component's analytic backlog into the
	// port as vBacklog — extra queue bytes visible to INT/ECN through
	// VirtualBacklog — and as vShare, the fraction of the serializer the
	// fluid traffic occupies; packet serialization slows by 1/(1−vShare)
	// so packets experience the residual capacity, exactly as they would
	// behind real background packets. Both are zero outside hybrid runs,
	// keeping the packet-only drain loop branch-identical.
	vBacklog int64
	vShare   float64

	busy   bool
	paused bool
	down   bool

	// Reusable transmit state, bound lazily on first kick: the timer that
	// ends the current serialization and the delivery callback shared by
	// every packet this port puts on the wire.
	txDone    *sim.Timer
	deliverFn func(any)
}

// NewPort builds a port with a fresh FIFO queue.
func NewPort(eng *sim.Engine, rate units.BitRate, delay sim.Duration, peer Receiver) *Port {
	return &Port{Eng: eng, Rate: rate, Delay: delay, Peer: peer, Q: queue.NewFIFO()}
}

// TxBytes returns the cumulative bytes transmitted (the INT txBytes field).
func (pt *Port) TxBytes() uint64 { return pt.txBytes }

// TxPackets returns the cumulative packets transmitted.
func (pt *Port) TxPackets() uint64 { return pt.txPkts }

// Drops returns the number of packets dropped at admission.
func (pt *Port) Drops() uint64 { return pt.drops }

// QueueBytes returns the bytes currently queued.
func (pt *Port) QueueBytes() int64 { return pt.Q.Bytes() }

// PayloadAccepted returns the cumulative payload bytes admitted into the
// queue (for a host NIC: everything the endpoint emitted).
func (pt *Port) PayloadAccepted() uint64 { return pt.plAccepted }

// PayloadDropped returns the cumulative payload bytes rejected at
// admission (shared-buffer drops).
func (pt *Port) PayloadDropped() uint64 { return pt.plDropped }

// PayloadDelivered returns the cumulative payload bytes handed to the
// peer, whichever side of a partition cut counted them.
func (pt *Port) PayloadDelivered() uint64 { return pt.plDelivered + pt.remotePlDelivered }

// PayloadLost returns the cumulative payload bytes discarded on the
// downed wire — at transmit time, at the local delivery instant, or by
// the remote side of a partition cut.
func (pt *Port) PayloadLost() uint64 { return pt.plLostTx + pt.plLostRx + pt.remotePlLost }

// PayloadQueued returns the payload bytes currently sitting in the
// queue (accepted but not yet dequeued for transmission).
func (pt *Port) PayloadQueued() uint64 { return pt.plAccepted - pt.plTx }

// PayloadOnWire returns the payload bytes transmitted but not yet
// delivered, lost, or consumed by the remote side of a cut — in-flight
// on the wire (or parked in a cross-partition mailbox) at read time.
func (pt *Port) PayloadOnWire() uint64 {
	return pt.plTx - pt.plLostTx - pt.plDelivered - pt.plLostRx - pt.remotePlDelivered - pt.remotePlLost
}

// SetVirtualLoad installs the fluid load the hybrid coupler computed
// for this port at the last exchange instant: backlog bytes of analytic
// queue and the serializer capacity share in [0,1) the fluid traffic
// occupies until the next exchange. Zero/zero restores pure packet
// behavior.
func (pt *Port) SetVirtualLoad(backlog int64, share float64) {
	pt.vBacklog = backlog
	pt.vShare = share
}

// VirtualBacklog returns the fluid backlog bytes currently folded into
// this port (zero outside hybrid runs). Devices add it to QueueBytes
// when stamping INT qlen and deciding ECN marks, so congestion signals
// reflect the load of both fidelities.
func (pt *Port) VirtualBacklog() int64 { return pt.vBacklog }

// Send enqueues p for transmission, subject to admission control, and
// starts the serializer if idle.
func (pt *Port) Send(p *packet.Packet) {
	if pt.Admit != nil && !pt.Admit(p) {
		pt.drops++
		pt.plDropped += uint64(p.PayloadLen)
		if pt.OnDrop != nil {
			pt.OnDrop(p)
		}
		pt.Pool.Put(p)
		return
	}
	pt.plAccepted += uint64(p.PayloadLen)
	pt.Q.Push(p)
	pt.kick()
}

// Pause stops the serializer after the in-flight packet completes; used
// by the circuit switch model during reconfiguration nights.
func (pt *Port) Pause() { pt.paused = true }

// Resume restarts a paused serializer.
func (pt *Port) Resume() {
	if !pt.paused {
		return
	}
	pt.paused = false
	pt.kick()
}

// Kick re-evaluates the serializer; devices call it after making new
// packets drainable (e.g. a VOQ class becoming active).
func (pt *Port) Kick() { pt.kick() }

// SetDown cuts (or restores) the wire — the data-plane half of a link
// failure (see internal/route). While down the serializer keeps
// draining, so device-side buffer accounting at dequeue stays exact,
// but everything serialized onto the dead wire is discarded into the
// pool at transmit time, and packets already in flight when the cut
// lands are lost at their delivery instant. Restoring the wire only
// resumes delivery — the control plane decides when routes may use the
// link again.
func (pt *Port) SetDown(down bool) { pt.down = down }

// IsDown reports whether the wire is currently cut.
func (pt *Port) IsDown() bool { return pt.down }

// Lost returns the number of packets discarded on the downed wire,
// whichever side of a partition cut counted them.
func (pt *Port) Lost() uint64 { return pt.lost + pt.remoteLost }

// NoteRemoteLost records a packet (and its payload bytes) lost at its
// delivery instant on a cut crossing a partition boundary. Called only
// by the receiving partition's mailbox delivery callback — never by the
// port's own goroutine — keeping it race-free against the local lost
// counter.
func (pt *Port) NoteRemoteLost(payload int32) {
	pt.remoteLost++
	pt.remotePlLost += uint64(payload)
}

// NoteRemoteDelivered records payload bytes handed to the peer across a
// partition cut. Same single-writer discipline as NoteRemoteLost.
func (pt *Port) NoteRemoteDelivered(payload int32) { pt.remotePlDelivered += uint64(payload) }

func (pt *Port) kick() {
	if pt.busy || pt.paused {
		return
	}
	p := pt.Q.Pop()
	if p == nil {
		return
	}
	if pt.OnDequeue != nil {
		pt.OnDequeue(p)
	}
	wire := p.WireLen() // after OnDequeue: includes any freshly stamped INT hop
	pt.txBytes += uint64(wire)
	pt.txPkts++
	pt.plTx += uint64(p.PayloadLen)
	tx := pt.Rate.TxTime(wire)
	if pt.vShare > 0 {
		// Fluid traffic holds vShare of the serializer: packets see the
		// residual rate Rate·(1−vShare), i.e. serialization stretched by
		// 1/(1−vShare). Integer nanoseconds keep this deterministic.
		tx = sim.Duration(float64(tx) / (1 - pt.vShare))
	}
	pt.busy = true
	if pt.txDone == nil {
		pt.txDone = pt.Eng.NewTimer(pt.onTxDone)
		pt.deliverFn = pt.deliver
	}
	now := pt.Eng.Now()
	pt.txDone.Arm(now.Add(tx))
	if pt.down {
		// Serialized into a cut cable: lost immediately, whatever the
		// wire's state by the time a delivery would have fired.
		pt.lost++
		pt.plLostTx += uint64(p.PayloadLen)
		pt.Pool.Put(p)
		return
	}
	at := now.Add(tx + pt.Delay)
	if pt.X != nil {
		pt.X(at, p)
		return
	}
	pt.Eng.AtCall(at, pt.deliverFn, p)
}

func (pt *Port) onTxDone() {
	pt.busy = false
	pt.kick()
}

// deliver hands one packet to the peer; it is the shared AtCall callback
// for every delivery this port schedules. Packets already in flight
// when a cut lands are lost here, at what would have been their
// delivery instant (packets transmitted while the wire was down never
// get a delivery scheduled — see kick).
func (pt *Port) deliver(arg any) {
	p := arg.(*packet.Packet)
	if pt.down {
		pt.lost++
		pt.plLostRx += uint64(p.PayloadLen)
		pt.Pool.Put(p)
		return
	}
	pt.plDelivered += uint64(p.PayloadLen)
	pt.Peer.Receive(p)
}
