package link

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// recycler consumes delivered packets straight back into the pool, like
// a transport endpoint does.
type recycler struct {
	pool *packet.Pool
	got  int
}

func (r *recycler) Receive(p *packet.Packet) {
	r.got++
	r.pool.Put(p)
}

// The port forward path — pool Get, Send, serialize, deliver, pool Put —
// must not allocate per packet in steady state. This is the link half of
// the tentpole's zero-allocation guarantee (the engine half lives in
// internal/sim).
func TestPortZeroAllocSteadyState(t *testing.T) {
	eng := sim.New()
	pool := packet.NewPool()
	dst := &recycler{pool: pool}
	pt := NewPort(eng, 100*units.Gbps, sim.Microsecond, dst)
	pt.Pool = pool

	send := func(n int) {
		for i := 0; i < n; i++ {
			p := pool.Get()
			p.ID = uint64(i)
			p.Kind = packet.Data
			p.PayloadLen = 1000
			pt.Send(p)
		}
		eng.Run()
	}
	// Warm the pool, queue ring, engine free list, and the timing
	// wheel's slot ring (each burst advances the clock, so repeated
	// bursts touch — and size — every wheel slot the loop lands in).
	for i := 0; i < 512; i++ {
		send(64)
	}

	allocs := testing.AllocsPerRun(100, func() { send(64) })
	if allocs > 0.5 {
		t.Fatalf("port forward path allocates %.2f allocs per 64-packet burst, want 0", allocs)
	}
	if dst.got == 0 {
		t.Fatal("no packets delivered")
	}
}

// An admission drop must recycle the packet through the port's pool.
func TestPortDropRecycles(t *testing.T) {
	eng := sim.New()
	pool := packet.NewPool()
	dst := &recycler{pool: pool}
	pt := NewPort(eng, 100*units.Gbps, 0, dst)
	pt.Pool = pool
	pt.Admit = func(p *packet.Packet) bool { return false }

	p := pool.Get()
	pt.Send(p)
	eng.Run()
	if pt.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", pt.Drops())
	}
	gets, _, puts := pool.Stats()
	if puts != 1 {
		t.Fatalf("pool puts = %d, want 1 (dropped packet not recycled)", puts)
	}
	if q := pool.Get(); q != p {
		t.Fatal("dropped packet was not the one recycled")
	}
	_ = gets
}
