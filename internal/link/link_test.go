package link

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

type sink struct {
	eng  *sim.Engine
	pkts []*packet.Packet
	at   []sim.Time
}

func (s *sink) Receive(p *packet.Packet) {
	s.pkts = append(s.pkts, p)
	s.at = append(s.at, s.eng.Now())
}

func mk(id uint64, payload int32) *packet.Packet {
	return &packet.Packet{ID: id, Kind: packet.Data, PayloadLen: payload}
}

func TestPortTiming(t *testing.T) {
	eng := sim.New()
	dst := &sink{eng: eng}
	pt := NewPort(eng, 100*units.Gbps, 5*sim.Microsecond, dst)
	p := mk(1, 1000) // wire = 1048B → 83.84ns at 100G
	pt.Send(p)
	eng.Run()
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(dst.pkts))
	}
	want := sim.Time(83840*sim.Picosecond + 5*sim.Microsecond)
	if dst.at[0] != want {
		t.Fatalf("arrival at %v, want %v", dst.at[0], want)
	}
	if pt.TxBytes() != 1048 {
		t.Fatalf("TxBytes = %d", pt.TxBytes())
	}
}

func TestPortBackToBackSerialization(t *testing.T) {
	eng := sim.New()
	dst := &sink{eng: eng}
	pt := NewPort(eng, 100*units.Gbps, 0, dst)
	pt.Send(mk(1, 1000))
	pt.Send(mk(2, 1000))
	eng.Run()
	if len(dst.pkts) != 2 {
		t.Fatalf("delivered %d", len(dst.pkts))
	}
	gap := dst.at[1] - dst.at[0]
	if sim.Duration(gap) != 83840*sim.Picosecond {
		t.Fatalf("inter-arrival = %v, want one serialization time", sim.Duration(gap))
	}
}

func TestPortAdmissionDrop(t *testing.T) {
	eng := sim.New()
	dst := &sink{eng: eng}
	pt := NewPort(eng, 100*units.Gbps, 0, dst)
	var dropped []*packet.Packet
	pt.Admit = func(p *packet.Packet) bool { return p.ID != 2 }
	pt.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p) }
	pt.Send(mk(1, 100))
	pt.Send(mk(2, 100))
	pt.Send(mk(3, 100))
	eng.Run()
	if len(dst.pkts) != 2 || pt.Drops() != 1 || len(dropped) != 1 || dropped[0].ID != 2 {
		t.Fatalf("delivered=%d drops=%d", len(dst.pkts), pt.Drops())
	}
}

func TestPortOnDequeueSeesQueueState(t *testing.T) {
	eng := sim.New()
	dst := &sink{eng: eng}
	pt := NewPort(eng, 100*units.Gbps, 0, dst)
	var qlens []int64
	pt.OnDequeue = func(p *packet.Packet) { qlens = append(qlens, pt.QueueBytes()) }
	pt.Send(mk(1, 1000))
	pt.Send(mk(2, 1000))
	pt.Send(mk(3, 1000))
	eng.Run()
	// The first Send dequeues immediately onto an idle serializer, so the
	// hook sees an empty queue; packets 2 and 3 then queue behind it and
	// the hook sees the bytes still waiting after each pop.
	want := []int64{0, 1048, 0}
	for i := range want {
		if qlens[i] != want[i] {
			t.Fatalf("qlen[%d] = %d, want %d", i, qlens[i], want[i])
		}
	}
}

func TestPortPauseResume(t *testing.T) {
	eng := sim.New()
	dst := &sink{eng: eng}
	pt := NewPort(eng, 100*units.Gbps, 0, dst)
	pt.Pause()
	pt.Send(mk(1, 100))
	eng.RunUntil(sim.Time(sim.Millisecond))
	if len(dst.pkts) != 0 {
		t.Fatal("paused port transmitted")
	}
	pt.Resume()
	eng.Run()
	if len(dst.pkts) != 1 {
		t.Fatal("resumed port did not transmit")
	}
	pt.Resume() // resume when not paused is a no-op
}

func TestPortFIFOOrderPreserved(t *testing.T) {
	eng := sim.New()
	dst := &sink{eng: eng}
	pt := NewPort(eng, 25*units.Gbps, sim.Microsecond, dst)
	for i := uint64(0); i < 50; i++ {
		pt.Send(mk(i, 500))
	}
	eng.Run()
	for i, p := range dst.pkts {
		if p.ID != uint64(i) {
			t.Fatalf("reordered: pkt %d has ID %d", i, p.ID)
		}
	}
}
