// Package psim runs one simulation across several timing-wheel engines
// in parallel — conservative parallel discrete-event simulation (PDES)
// in the classic null-message lineage — while reproducing the serial
// engine's firing order byte-for-byte at any partition count.
//
// # Model
//
// The fabric is sharded along topology-natural cuts (pods for
// fat-trees, leaf/spine groups for leaf-spine; see
// internal/topo.Plan): each partition owns a subset of hosts, switches
// and queues and drives them with its own sim.Engine on its own
// goroutine. Every cut link i→j carries a lookahead L(i,j) = the
// minimum latency of any message crossing it (propagation delay plus
// minimum serialization time) — a hard physical lower bound on how far
// in the future a send from i can affect j.
//
// Cross-partition packet deliveries become mailbox messages: the
// sending port consumes a causal child slot on its engine
// (sim.Engine.ChildKey), ships the resulting canonical key with the
// packet, and the coordinator injects it into the destination engine
// (sim.Engine.InjectKey) at the next barrier. The injected entry is
// bit-identical to the one a serial run would have scheduled, so the
// canonical order (at, dsched, phash, k) — a pure function of the
// causal tree, independent of which engine executes which branch —
// makes every partition fire its events in exactly the serial
// sub-order.
//
// # Synchronization
//
// The coordinator advances the run in barrier rounds. In each round a
// partition may execute up to (exclusively) the canonical key
// min(KeyBefore(safe_i), nextCtrl), where safe_i = min over incoming
// cut edges j→i of clock_j + L(j,i): no message that a neighbor has
// yet to send can arrive before safe_i, so everything earlier is
// causally settled. Events shared by the whole fabric — probe
// samplers, routing changes — live on a separate control engine that
// fires only at a barrier, with every partition paused at exactly the
// control event's canonical key, never past it; control callbacks may
// therefore read and mutate any partition's state single-threaded.
// The run terminates when no control event remains at or before the
// horizon, no messages are in flight, and every partition has drained
// up to the horizon.
//
// # Why the result is byte-identical to serial
//
// Three facts combine: (1) the canonical key totally orders all events
// and is partition-invariant; (2) same-instant causal chains never
// cross a cut (lookahead > 0 means an arrival's timestamp strictly
// exceeds its send time), so a partition never needs an event another
// partition has not yet sent while events below its bound remain; (3)
// bounds only ever stop a partition at keys no other pending or future
// event can precede. Induction over barrier rounds then gives: the
// multiset of fired (key, callback) pairs and each partition's firing
// sub-order equal the serial run's, and the record merge by canonical
// key (internal/scenario) reconstructs the serial append order
// exactly. PERF.md § PDES carries the full argument.
package psim

import (
	"sync"

	"repro/internal/sim"
)

// msg is one cross-partition delivery: the canonical key the serial
// engine would have given the delivery event, plus the callback
// argument (the packet).
type msg struct {
	key sim.Key
	arg any
}

// Mailbox buffers deliveries for one directed cut link. Exactly one
// sending partition posts into a given mailbox (a mailbox belongs to
// one boundary port), and the coordinator drains it only between
// barrier rounds, so no lock is needed: the round barrier's
// happens-before edge publishes the buffer.
type Mailbox struct {
	dst     int
	deliver func(any)
	buf     []msg
}

// Post enqueues a delivery under its pre-computed canonical key. Called
// by the owning sender partition only, during its run slice.
func (m *Mailbox) Post(k sim.Key, arg any) {
	m.buf = append(m.buf, msg{key: k, arg: arg})
}

// edge is one directed cut with its lookahead.
type edge struct {
	from int
	look sim.Duration
}

// Fabric couples the partition engines, the control engine, the cut
// topology and the mailboxes into one runnable parallel simulation.
type Fabric struct {
	ctrl  *sim.Engine
	parts []*sim.Engine
	in    [][]edge   // in[i]: incoming cut edges of partition i
	boxes []*Mailbox // drained in creation order — deterministic

	steps uint64 // filled by Run: total events fired across all engines
}

// New returns a fabric over the given control engine and partition
// engines. Cut edges and mailboxes are registered before Run.
func New(ctrl *sim.Engine, parts []*sim.Engine) *Fabric {
	return &Fabric{ctrl: ctrl, parts: parts, in: make([][]edge, len(parts))}
}

// AddEdge declares a directed cut from partition `from` to partition
// `to` with the given lookahead (minimum latency of any crossing
// message). Multiple edges between the same pair simply all constrain
// the bound; the minimum governs.
func (f *Fabric) AddEdge(from, to int, look sim.Duration) {
	if look <= 0 {
		panic("psim: cut lookahead must be positive")
	}
	f.in[to] = append(f.in[to], edge{from: from, look: look})
}

// NewMailbox registers a mailbox delivering into partition dst via the
// given callback (invoked through InjectKey with the posted argument).
// Registration order fixes drain order.
func (f *Fabric) NewMailbox(dst int, deliver func(any)) *Mailbox {
	m := &Mailbox{dst: dst, deliver: deliver}
	f.boxes = append(f.boxes, m)
	return m
}

// Steps reports the total number of events executed across the control
// and partition engines by the last Run — by construction equal to the
// serial engine's step count for the same scenario.
func (f *Fabric) Steps() uint64 { return f.steps }

// Tripped reports whether any engine in the fabric hit an in-loop limit
// (sim.Engine.SetLimits), returning the trip whose refused event orders
// earliest in the canonical order — a deterministic choice even when
// several partitions trip in the same barrier round. A tripped fabric
// is frozen: Run returns without advancing further until the engines
// are Reset.
func (f *Fabric) Tripped() *sim.Trip {
	var best *sim.Trip
	consider := func(tr *sim.Trip) {
		if tr == nil {
			return
		}
		if best == nil || tr.Key.Less(best.Key) {
			best = tr
		}
	}
	consider(f.ctrl.Tripped())
	for _, e := range f.parts {
		consider(e.Tripped())
	}
	return best
}

// Run executes the partitioned simulation up to and including horizon,
// then leaves every engine's clock at horizon — the partitioned
// equivalent of sim.Engine.RunUntil(horizon) on a serial engine.
func (f *Fabric) Run(horizon sim.Time) {
	p := len(f.parts)
	end := sim.KeyAtEnd(horizon)

	// A fabric left tripped by an earlier Run slice stays frozen; the
	// step tally is still refreshed so callers see the watermark.
	if f.Tripped() != nil {
		f.tally()
		return
	}

	// Persistent worker goroutines, one per partition: each round the
	// coordinator publishes a bound per partition, releases the workers,
	// and joins them on a WaitGroup. The Add/Wait pair carries the
	// happens-before edges that publish mailbox buffers and engine state
	// back to the coordinator.
	bounds := make([]sim.Key, p)
	start := make([]chan struct{}, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		start[i] = make(chan struct{}, 1)
		go func(i int) {
			for range start[i] {
				f.parts[i].RunUntilKey(bounds[i])
				wg.Done()
			}
		}(i)
	}
	defer func() {
		for i := 0; i < p; i++ {
			close(start[i])
		}
	}()

	for {
		// The next control event's key, capped by the horizon. While
		// ctrlDue, no partition may run to or past kg.
		kg := end
		ctrlDue := false
		if k, ok := f.ctrl.PeekKey(); ok && !end.Less(k) {
			kg, ctrlDue = k, true
		}

		// Per-partition bound: strictly below the earliest possible
		// future arrival, and never at/past the next control event.
		for i := 0; i < p; i++ {
			b := end
			for _, e := range f.in[i] {
				safe := f.parts[e.from].Now().Add(e.look)
				if c := sim.KeyBefore(safe); c.Less(b) {
					b = c
				}
			}
			if kg.Less(b) {
				b = kg
			}
			bounds[i] = b
		}

		// Parallel slice: each partition advances to its bound.
		wg.Add(p)
		for i := 0; i < p; i++ {
			start[i] <- struct{}{}
		}
		wg.Wait()

		// A tripped partition's RunUntilKey returns without advancing, so
		// the coordinator would re-issue the same bounds forever; freeze
		// the whole fabric at the first trip instead. Undelivered mailbox
		// posts are left buffered — a tripped run never resumes.
		if f.Tripped() != nil {
			f.tally()
			return
		}

		// Drain mailboxes in creation order; within a mailbox, in post
		// order. Injection order cannot affect firing order — the
		// canonical key decides — but a fixed order keeps the whole
		// coordinator deterministic.
		delivered := false
		for _, m := range f.boxes {
			if len(m.buf) == 0 {
				continue
			}
			delivered = true
			eng := f.parts[m.dst]
			for _, d := range m.buf {
				eng.InjectKey(d.key, m.deliver, d.arg)
			}
			clear(m.buf)
			m.buf = m.buf[:0]
		}
		if delivered {
			// New arrivals may order before this round's control key or
			// below a neighbor's bound; recompute everything.
			continue
		}

		// Quiescent below the bounds. Fire the next control event once
		// every partition has both reached its timestamp and drained all
		// events ordering before it.
		if ctrlDue {
			ready := true
			for i := 0; i < p && ready; i++ {
				if f.parts[i].Now() < kg.At {
					ready = false
					break
				}
				if k, ok := f.parts[i].PeekKey(); ok && k.Less(kg) {
					ready = false
				}
			}
			if ready {
				// Single-threaded control slice: all partitions are paused
				// at or before kg.At with nothing earlier pending, so the
				// callback may touch any partition's state.
				if !f.ctrl.Step() && f.ctrl.Tripped() != nil {
					// The control engine refused the event: without this
					// break the due-but-unfired control key would spin the
					// coordinator forever.
					f.tally()
					return
				}
			}
			continue
		}

		// No control work left at or before the horizon: finish when
		// every partition has drained up to and including it.
		done := true
		for i := 0; i < p; i++ {
			if f.parts[i].Now() < horizon {
				done = false
				break
			}
			if k, ok := f.parts[i].PeekKey(); ok && !end.Less(k) {
				done = false
				break
			}
		}
		if done {
			break
		}
	}

	// Leave the control clock at the horizon, like a serial RunUntil.
	f.ctrl.RunUntil(horizon)

	f.tally()
}

// tally refreshes the cross-engine step count.
func (f *Fabric) tally() {
	f.steps = f.ctrl.Steps()
	for _, e := range f.parts {
		f.steps += e.Steps()
	}
}
