package livenet

import (
	"os"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/units"
)

// liveEnv builds a loopback chain or skips when the sandbox forbids
// sockets.
func liveEnv(t *testing.T, rate units.BitRate, queueCap int64) (*Sender, *Bottleneck, *Receiver, func()) {
	t.Helper()
	snd, bn, rcv, cleanup, err := Loopback(rate, queueCap)
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	return snd, bn, rcv, cleanup
}

func TestLiveTransferPowerTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets in -short mode")
	}
	// 200 Mbps bottleneck: slow enough that wall-clock jitter is small
	// relative to serialization, fast enough that 300KB finishes in ~12ms.
	snd, bn, rcv, cleanup := liveEnv(t, 200*units.Mbps, 256<<10)
	defer cleanup()

	const size = 300_000
	st, err := snd.Transfer(bn.Addr(), 1, size,
		core.New(core.Config{}), 2*sim.Millisecond, 10*units.Gbps, 30*time.Second)
	if err != nil {
		t.Fatalf("transfer: %v (%v)", err, bn)
	}
	if rcv.Received() < size {
		t.Fatalf("receiver saw %d bytes", rcv.Received())
	}
	// Goodput cannot exceed the bottleneck (plus generous jitter slack)
	// and should reach a reasonable fraction of it. The floor is loose:
	// sandboxed/CI kernels pace loopback UDP far below the configured
	// bottleneck, and this test only guards against a stalled transfer.
	if st.Goodput > 400*units.Mbps {
		t.Fatalf("goodput %v exceeds the physical bottleneck", st.Goodput)
	}
	if st.Goodput < 5*units.Mbps {
		t.Fatalf("goodput %v suspiciously low", st.Goodput)
	}
	t.Logf("live PowerTCP: %v over %v, cwnd=%.0fB rtx=%d drops=%d",
		st.Goodput, st.Elapsed, st.FinalCwnd, st.Retransmits, bn.Drops())
}

func TestLiveWindowAdaptsToBottleneck(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets in -short mode")
	}
	if os.Getenv("POWERTCP_LIVENET") != "1" {
		// This test asserts a real congestion response over loopback UDP
		// under wall-clock timing. Sandboxed/CI kernels pace loopback far
		// below the configured bottleneck and jitter the RTT enough that
		// the cwnd minimum is not reliably reached, so it only runs when
		// explicitly requested.
		t.Skip("live window-adaptation test needs real loopback timing; set POWERTCP_LIVENET=1 to run")
	}
	snd, bn, _, cleanup := liveEnv(t, 100*units.Mbps, 256<<10)
	defer cleanup()

	// The configured host rate (10G) wildly exceeds the 100 Mbps
	// bottleneck: the power signal must pull cwnd far below the initial
	// host BDP while the queue is standing (it recovers once the
	// transfer's tail drains, so we check the in-flight minimum).
	mon := monitor.Wrap(core.New(core.Config{}), 0)
	baseRTT := 2 * sim.Millisecond
	init := float64((10 * units.Gbps).BDP(baseRTT))
	_, err := snd.Transfer(bn.Addr(), 2, 150_000, mon, baseRTT,
		10*units.Gbps, 30*time.Second)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	minCwnd := init
	for _, s := range mon.Samples {
		if s.Cwnd < minCwnd {
			minCwnd = s.Cwnd
		}
	}
	if minCwnd > init/2 {
		t.Fatalf("cwnd never adapted below half the init window: min %.0f of %.0f", minCwnd, init)
	}
}

func TestLiveBottleneckDropsWhenOverrun(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets in -short mode")
	}
	// A tiny queue plus a fixed oversized window forces tail drops: the
	// fixed window paces at cwnd/τ = 4 Gbps into a 50 Mbps bottleneck.
	snd, bn, _, cleanup := liveEnv(t, 50*units.Mbps, 8<<10)
	defer cleanup()
	alg := &cc.FixedWindow{Window: 1 << 20}
	_, err := snd.Transfer(bn.Addr(), 3, 100_000, alg, 2*sim.Millisecond,
		10*units.Gbps, 30*time.Second)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if bn.Drops() == 0 {
		t.Fatal("expected tail drops with an oversized window")
	}
}
