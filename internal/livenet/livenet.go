// Package livenet is the proof-of-concept deployment path: PowerTCP
// running over real UDP sockets, with a userspace bottleneck process
// standing in for the paper's Tofino switch — it rate-limits traffic
// through an emulated egress queue and stamps the INT option
// (internal/telemetry wire format inside internal/wire headers) exactly
// where a hardware pipeline would, at dequeue.
//
// The paper's §3.6 implemented this split as a Linux kernel congestion-
// control module plus a P4 program; here both ends are ordinary Go
// processes exchanging wire-format packets over the loopback interface,
// which keeps the whole control loop — measured power included — real:
// timestamps come from the wall clock, queues from actual socket
// backlog, and the algorithm consumes them through the same
// cc.Algorithm interface the simulator uses.
package livenet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cc"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/units"
	"repro/internal/wire"
)

// paceQuantum bounds how far ahead of the ideal pacing clock a loop may
// run before sleeping. OS timers are tens of microseconds coarse, so
// sleeping per packet would throttle everything to ~1 packet per tick;
// instead packets go out in short bursts and the loop sleeps only once
// the accumulated debt exceeds a quantum.
const paceQuantum = time.Millisecond

// clock maps the wall clock onto sim.Time so the algorithms' picosecond
// arithmetic works unchanged.
type clock struct{ start time.Time }

func newClock() *clock { return &clock{start: time.Now()} }

func (c *clock) now() sim.Time {
	return sim.Time(sim.Duration(time.Since(c.start)) * sim.Nanosecond / sim.Duration(time.Nanosecond))
}

// Bottleneck is the userspace "switch": it receives datagrams on In,
// queues them up to QueueCap bytes, drains at Rate, stamps INT at
// dequeue, and forwards to Out.
type Bottleneck struct {
	Rate     units.BitRate
	QueueCap int64

	in       *net.UDPConn
	out      *net.UDPConn
	clk      *clock
	queue    chan []byte
	qBytes   atomic.Int64
	txBytes  atomic.Uint64
	drops    atomic.Uint64
	closed   chan struct{}
	closeOne sync.Once
}

// NewBottleneck listens on a fresh loopback port and forwards to dst.
func NewBottleneck(rate units.BitRate, queueCap int64, dst *net.UDPAddr, clk *clock) (*Bottleneck, error) {
	in, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	out, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		in.Close()
		return nil, err
	}
	b := &Bottleneck{
		Rate: rate, QueueCap: queueCap,
		in: in, out: out, clk: clk,
		queue:  make(chan []byte, 4096),
		closed: make(chan struct{}),
	}
	go b.readLoop()
	go b.drainLoop()
	return b, nil
}

// Addr returns the address senders should target.
func (b *Bottleneck) Addr() *net.UDPAddr { return b.in.LocalAddr().(*net.UDPAddr) }

// Drops returns the number of tail-dropped datagrams.
func (b *Bottleneck) Drops() uint64 { return b.drops.Load() }

// Close stops the bottleneck.
func (b *Bottleneck) Close() {
	b.closeOne.Do(func() {
		close(b.closed)
		b.in.Close()
		b.out.Close()
	})
}

func (b *Bottleneck) readLoop() {
	buf := make([]byte, 65536)
	for {
		n, err := b.in.Read(buf)
		if err != nil {
			return
		}
		if b.qBytes.Load()+int64(n) > b.QueueCap {
			b.drops.Add(1)
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		select {
		case b.queue <- pkt:
			b.qBytes.Add(int64(n))
		default:
			b.drops.Add(1)
		}
	}
}

func (b *Bottleneck) drainLoop() {
	// Ideal-clock pacing: `next` is when the current packet finishes
	// serializing on the emulated link. Sleeping is allowed to overshoot
	// (OS timers are tens of µs coarse); the ideal clock then lets the
	// next packets go back-to-back until reality catches up, so the
	// *average* drain rate is exact.
	next := time.Now()
	for {
		var pkt []byte
		select {
		case pkt = <-b.queue:
		case <-b.closed:
			return
		}
		now := time.Now()
		if next.Before(now) {
			next = now
		}
		next = next.Add(b.Rate.TxTime(int64(len(pkt))).Std())
		if d := time.Until(next); d > paceQuantum {
			time.Sleep(d)
		}
		b.qBytes.Add(-int64(len(pkt)))
		stamped := b.stamp(pkt)
		b.txBytes.Add(uint64(len(pkt)))
		if _, err := b.out.Write(stamped); err != nil {
			return
		}
	}
}

// stamp decodes the wire packet, appends this hop's INT record, and
// re-encodes — the dequeue-time telemetry of §3.6.
func (b *Bottleneck) stamp(raw []byte) []byte {
	p, err := wire.Unmarshal(raw)
	if err != nil {
		return raw // not ours; forward untouched
	}
	p.Hops = append(p.Hops, telemetry.HopRecord{
		QLen:    b.qBytes.Load(),
		TxBytes: b.txBytes.Load(),
		TS:      b.clk.now(),
		Rate:    b.Rate,
	}.Quantize())
	out, err := wire.Marshal(p)
	if err != nil {
		return raw
	}
	return out
}

// Receiver terminates transfers: it tracks received ranges per flow and
// acknowledges every packet, echoing the INT stack to the sender.
type Receiver struct {
	conn  *net.UDPConn
	ackTo *net.UDPConn
	got   map[packet.FlowID]*transport.IntervalSet
	bytes atomic.Int64
	mu    sync.Mutex
}

// NewReceiver listens on a fresh loopback port and sends ACKs to ackDst
// (the sender's listening socket; the reverse path is uncongested, as in
// the paper's single-bottleneck experiments).
func NewReceiver(ackDst *net.UDPAddr) (*Receiver, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	ackTo, err := net.DialUDP("udp", nil, ackDst)
	if err != nil {
		conn.Close()
		return nil, err
	}
	r := &Receiver{conn: conn, ackTo: ackTo, got: map[packet.FlowID]*transport.IntervalSet{}}
	go r.run()
	return r, nil
}

// Addr returns the receiver's data address.
func (r *Receiver) Addr() *net.UDPAddr { return r.conn.LocalAddr().(*net.UDPAddr) }

// Received returns total payload bytes received (including duplicates).
func (r *Receiver) Received() int64 { return r.bytes.Load() }

// Close stops the receiver.
func (r *Receiver) Close() {
	r.conn.Close()
	r.ackTo.Close()
}

func (r *Receiver) run() {
	buf := make([]byte, 65536)
	for {
		n, err := r.conn.Read(buf)
		if err != nil {
			return
		}
		p, err := wire.Unmarshal(buf[:n])
		if err != nil || p.Kind != packet.Data {
			continue
		}
		r.mu.Lock()
		iv := r.got[p.Flow]
		if iv == nil {
			iv = &transport.IntervalSet{}
			r.got[p.Flow] = iv
		}
		iv.Add(p.Seq, p.End())
		cum := iv.CumulativeFrom(0)
		r.mu.Unlock()
		r.bytes.Add(int64(p.PayloadLen))

		ack := &packet.Packet{
			Kind:     packet.Ack,
			Flow:     p.Flow,
			AckSeq:   cum,
			EchoSent: p.EchoSent, // sender's send timestamp rides along
			Hops:     p.Hops,
		}
		out, err := wire.Marshal(ack)
		if err != nil {
			continue
		}
		r.ackTo.Write(out)
	}
}

// TransferStats summarizes a live transfer.
type TransferStats struct {
	Bytes       int64
	Elapsed     time.Duration
	Goodput     units.BitRate
	Retransmits int
	FinalCwnd   float64
}

// Sender drives one windowed, paced transfer using any cc.Algorithm.
type Sender struct {
	conn *net.UDPConn // receives ACKs
	clk  *clock
}

// NewSender opens the sender's ACK socket.
func NewSender(clk *clock) (*Sender, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	return &Sender{conn: conn, clk: clk}, nil
}

// Addr returns the socket ACKs must be sent to.
func (s *Sender) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close releases the socket.
func (s *Sender) Close() { s.conn.Close() }

// Transfer sends size bytes of flow id to dst under alg and blocks until
// fully acknowledged or timeout.
func (s *Sender) Transfer(dst *net.UDPAddr, id packet.FlowID, size int64,
	alg cc.Algorithm, baseRTT sim.Duration, rate units.BitRate, timeout time.Duration) (TransferStats, error) {

	out, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		return TransferStats{}, err
	}
	defer out.Close()

	alg.Init(cc.Limits{BaseRTT: baseRTT, HostRate: rate, MSS: 1000})

	const mss = 1000
	var (
		mu     sync.Mutex
		sndUna int64
		rtx    int
	)
	sndNxt := int64(0)

	// ACK pump.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 65536)
		for {
			s.conn.SetReadDeadline(time.Now().Add(timeout))
			n, err := s.conn.Read(buf)
			if err != nil {
				return
			}
			p, err := wire.Unmarshal(buf[:n])
			if err != nil || p.Kind != packet.Ack {
				continue
			}
			now := s.clk.now()
			mu.Lock()
			newly := int64(0)
			if p.AckSeq > sndUna {
				newly = p.AckSeq - sndUna
				sndUna = p.AckSeq
			}
			una := sndUna
			mu.Unlock()
			alg.OnAck(cc.Ack{
				Now:        now,
				AckSeq:     p.AckSeq,
				NewlyAcked: newly,
				SndNxt:     sndNxt,
				RTT:        now.Sub(p.EchoSent),
				Hops:       p.Hops,
			})
			if una >= size {
				return
			}
		}
	}()

	start := time.Now()
	stall := time.Now()
	nextSend := time.Now() // ideal pacing clock (see drainLoop)
	for {
		mu.Lock()
		una := sndUna
		mu.Unlock()
		if una >= size {
			break
		}
		if time.Since(start) > timeout {
			return TransferStats{}, errors.New("livenet: transfer timed out")
		}
		// Retransmit on stall (coarse RTO).
		if time.Since(stall) > 50*time.Millisecond {
			mu.Lock()
			sndNxt = sndUna
			rtx++
			mu.Unlock()
			stall = time.Now()
		}
		inflight := sndNxt - una
		if sndNxt >= size || float64(inflight) >= alg.Cwnd() {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		n := int64(mss)
		if size-sndNxt < n {
			n = size - sndNxt
		}
		p := &packet.Packet{
			Kind:       packet.Data,
			Flow:       id,
			Seq:        sndNxt,
			PayloadLen: int32(n),
			EchoSent:   s.clk.now(), // echoed back for RTT measurement
		}
		raw, err := wire.Marshal(p)
		if err != nil {
			return TransferStats{}, err
		}
		// Pad to the full wire size so the bottleneck's rate limiting
		// sees realistic packet lengths.
		frame := make([]byte, int64(len(raw))+n)
		copy(frame, raw)
		if _, err := out.Write(frame); err != nil {
			return TransferStats{}, err
		}
		sndNxt += n
		stall = time.Now()
		if r := alg.Rate(); r > 0 {
			now := time.Now()
			if nextSend.Before(now) {
				nextSend = now
			}
			nextSend = nextSend.Add(r.TxTime(int64(len(frame))).Std())
			if d := time.Until(nextSend); d > paceQuantum {
				time.Sleep(d)
			}
		}
	}
	elapsed := time.Since(start)
	<-done
	return TransferStats{
		Bytes:       size,
		Elapsed:     elapsed,
		Goodput:     units.BitRate(float64(size*8) / elapsed.Seconds()),
		Retransmits: rtx,
		FinalCwnd:   alg.Cwnd(),
	}, nil
}

// Loopback wires a complete sender→bottleneck→receiver chain on
// 127.0.0.1 and returns the pieces plus a cleanup function.
func Loopback(rate units.BitRate, queueCap int64) (*Sender, *Bottleneck, *Receiver, func(), error) {
	clk := newClock()
	snd, err := NewSender(clk)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rcv, err := NewReceiver(snd.Addr())
	if err != nil {
		snd.Close()
		return nil, nil, nil, nil, err
	}
	bn, err := NewBottleneck(rate, queueCap, rcv.Addr(), clk)
	if err != nil {
		snd.Close()
		rcv.Close()
		return nil, nil, nil, nil, err
	}
	cleanup := func() {
		bn.Close()
		rcv.Close()
		snd.Close()
	}
	return snd, bn, rcv, cleanup, nil
}

// String implements fmt.Stringer for diagnostics.
func (b *Bottleneck) String() string {
	return fmt.Sprintf("bottleneck %v q=%dB drops=%d", b.Rate, b.qBytes.Load(), b.drops.Load())
}
