package guard

import (
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// crashProbe panics at a fixed sim time — the injected "model bug"
// crash class.
type crashProbe struct{ at sim.Duration }

func (p crashProbe) Install(env *scenario.Env) error {
	env.Eng().After(p.at, func() { panic("injected crash") })
	return nil
}
func (crashProbe) Finalize(*scenario.Env, *scenario.Result) error { return nil }

// livelockProbe schedules a zero-delay self-rescheduling event: the
// clock never advances past the trigger instant again.
type livelockProbe struct{ at sim.Duration }

func (p livelockProbe) Install(env *scenario.Env) error {
	eng := env.Eng()
	var spin func()
	spin = func() { eng.After(0, spin) }
	eng.After(p.at, spin)
	return nil
}
func (livelockProbe) Finalize(*scenario.Env, *scenario.Result) error { return nil }

func incastSpec() *scenario.Spec {
	for _, sp := range scenario.SpecPresets() {
		if sp.Name == "incast" {
			sp := sp
			return &sp
		}
	}
	panic("no incast preset")
}

// TestInjection is the table-driven crash/livelock/budget battery: each
// injected failure must surface as its typed error, at every partition
// count, without killing the process.
func TestInjection(t *testing.T) {
	cases := []struct {
		name  string
		sup   func() *Supervisor
		check func(t *testing.T, res *scenario.Result, err error)
	}{
		{
			name: "crash",
			sup: func() *Supervisor {
				return &Supervisor{instrument: []scenario.Probe{crashProbe{at: 100 * sim.Microsecond}}}
			},
			check: func(t *testing.T, res *scenario.Result, err error) {
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("err = %v, want *PanicError", err)
				}
				if !strings.Contains(pe.Error(), "injected crash") || len(pe.Stack) == 0 {
					t.Fatalf("panic error lacks value/stack: %v", pe)
				}
			},
		},
		{
			name: "livelock",
			sup: func() *Supervisor {
				return &Supervisor{
					Budget:     Budget{MaxSameInstant: 10_000},
					instrument: []scenario.Probe{livelockProbe{at: 50 * sim.Microsecond}},
				}
			},
			check: func(t *testing.T, res *scenario.Result, err error) {
				var le *LivelockError
				if !errors.As(err, &le) {
					t.Fatalf("err = %v, want *LivelockError", err)
				}
				if le.At != sim.Time(0).Add(50*sim.Microsecond) {
					t.Fatalf("stuck instant %v, want 50µs", le.At)
				}
			},
		},
		{
			name: "over-budget-events",
			sup: func() *Supervisor {
				return &Supervisor{Budget: Budget{MaxEvents: 500}}
			},
			check: func(t *testing.T, res *scenario.Result, err error) {
				var be *BudgetExceeded
				if !errors.As(err, &be) {
					t.Fatalf("err = %v, want *BudgetExceeded", err)
				}
				if be.Resource != "events" || be.Observed <= be.Limit {
					t.Fatalf("bad watermark: %+v", be)
				}
			},
		},
		{
			name: "over-budget-simtime",
			sup: func() *Supervisor {
				return &Supervisor{Budget: Budget{MaxSimTime: 100 * sim.Microsecond}}
			},
			check: func(t *testing.T, res *scenario.Result, err error) {
				var be *BudgetExceeded
				if !errors.As(err, &be) || be.Resource != "sim_time" {
					t.Fatalf("err = %v, want sim_time *BudgetExceeded", err)
				}
			},
		},
		{
			name: "over-budget-packets",
			sup: func() *Supervisor {
				return &Supervisor{Budget: Budget{MaxLivePackets: 1}}
			},
			check: func(t *testing.T, res *scenario.Result, err error) {
				var be *BudgetExceeded
				if !errors.As(err, &be) || be.Resource != "live_packets" {
					t.Fatalf("err = %v, want live_packets *BudgetExceeded", err)
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		for _, parts := range []int{1, 2} {
			parts := parts
			t.Run(tc.name, func(t *testing.T) {
				res, err := tc.sup().RunSpec(incastSpec(), parts)
				if res != nil {
					t.Fatalf("parts=%d: got a Result alongside the failure", parts)
				}
				tc.check(t, res, err)
			})
		}
	}
}

// TestBudgetPartitionInvariant: the budget watermark a trip reports is
// identical at partitions 1/2/4/8 — checkpoints are sim-time
// coordinates and the event set below a sim time is
// partition-invariant.
func TestBudgetPartitionInvariant(t *testing.T) {
	sp := incastSpec()
	var want *BudgetExceeded
	for _, parts := range []int{1, 2, 4, 8} {
		sup := &Supervisor{Budget: Budget{MaxEvents: 2000, MaxLivePackets: 0}}
		_, err := sup.RunSpec(sp, parts)
		var be *BudgetExceeded
		if !errors.As(err, &be) {
			t.Fatalf("parts=%d: err = %v, want *BudgetExceeded", parts, err)
		}
		if want == nil {
			want = be
			continue
		}
		if !reflect.DeepEqual(want, be) {
			t.Errorf("budget accounting diverges at parts=%d:\n  parts=1 %+v\n  parts=%d %+v", parts, want, parts, be)
		}
	}
}

// TestTripByteReproducible: the same over-budget run twice gives
// deep-equal errors; and a livelock trip pins the same stuck instant
// and canonical key both times.
func TestTripByteReproducible(t *testing.T) {
	run := func() error {
		sup := &Supervisor{Budget: Budget{MaxEvents: 1500}}
		_, err := sup.RunSpec(incastSpec(), 1)
		return err
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("budget trip not reproducible:\n  %v\n  %v", a, b)
	}
	lrun := func() *LivelockError {
		sup := &Supervisor{
			Budget:     Budget{MaxSameInstant: 5000},
			instrument: []scenario.Probe{livelockProbe{at: 30 * sim.Microsecond}},
		}
		_, err := sup.RunSpec(incastSpec(), 1)
		var le *LivelockError
		if !errors.As(err, &le) {
			t.Fatalf("err = %v, want *LivelockError", err)
		}
		return le
	}
	if a, b := lrun(), lrun(); !reflect.DeepEqual(a, b) {
		t.Errorf("livelock trip not reproducible:\n  %+v\n  %+v", a, b)
	}
}

// TestSupervisedBytesIdentical: a supervised run that stays within
// budget produces byte-identical Result JSON to the unsupervised path,
// serial and partitioned.
func TestSupervisedBytesIdentical(t *testing.T) {
	sp := incastSpec()
	encode := func(res *scenario.Result) string {
		var b strings.Builder
		if err := res.EncodeJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	sc, err := sp.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := scenario.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := encode(plain)
	for _, parts := range []int{1, 2} {
		sup := &Supervisor{Budget: Budget{MaxEvents: 1 << 40, MaxLivePackets: 1 << 40, CheckEvery: 20 * sim.Microsecond}}
		res, err := sup.RunSpec(sp, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if got := encode(res); got != want {
			t.Errorf("parts=%d: supervised Result differs from unsupervised:\n got %s\nwant %s", parts, got, want)
		}
	}
}

// TestReproBundle: a supervised failure with ReproDir set writes a
// replayable bundle whose embedded Spec decodes to the same content
// address, and the typed error carries the path.
func TestReproBundle(t *testing.T) {
	dir := t.TempDir()
	sup := &Supervisor{
		ReproDir:   dir,
		instrument: []scenario.Probe{crashProbe{at: 100 * sim.Microsecond}},
	}
	sp := incastSpec()
	_, err := sup.RunSpec(sp, 2)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Bundle == "" {
		t.Fatal("panic error carries no bundle path")
	}
	raw, err := os.ReadFile(pe.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	var bundle ReproBundle
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatal(err)
	}
	if bundle.Parts != 2 || bundle.Seed != sp.Seed || !strings.Contains(bundle.Error, "injected crash") {
		t.Fatalf("bundle misrecords the run: %+v", bundle)
	}
	back, err := scenario.DecodeSpec(bundle.Spec)
	if err != nil {
		t.Fatalf("bundle spec does not decode: %v", err)
	}
	wantKey, _ := scenario.SpecKey(sp, sp.Seed, 2)
	gotKey, _ := scenario.SpecKey(back, bundle.Seed, bundle.Parts)
	if gotKey != wantKey {
		t.Fatalf("bundle replays a different run: key %s, want %s", gotKey, wantKey)
	}
}

// TestCaptureTransparent: Capture passes healthy results through
// untouched and never recovers anything but panics.
func TestCaptureTransparent(t *testing.T) {
	want := &scenario.Result{Experiment: "x"}
	res, err := Capture(func() (*scenario.Result, error) { return want, nil })
	if res != want || err != nil {
		t.Fatalf("Capture altered a healthy run: %v, %v", res, err)
	}
	sentinel := errors.New("boom")
	if _, err := Capture(func() (*scenario.Result, error) { return nil, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Capture rewrote a plain error: %v", err)
	}
}
