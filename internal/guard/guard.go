// Package guard supervises simulation runs: deterministic budgets,
// livelock detection, and panic capture around the scenario run path,
// so one broken or adversarial input produces a typed, replayable error
// instead of a wedged or dead process.
//
// # Determinism contract
//
// Supervision must never change what a healthy run computes. The
// supervisor therefore schedules nothing on the engine: it drives the
// run in sim-time slices (scenario.Prepared.DriveTo) and evaluates
// budgets between slices, at checkpoints that are pure sim-time
// coordinates. The event set executed below a sim time is identical at
// any partition count (the PDES fabric's core invariant), so the
// aggregate step count and live-packet watermark observed at a
// checkpoint — and hence WHICH checkpoint first exceeds a budget, and
// the watermark it reports — are byte-reproducible at a fixed seed and
// invariant across partitions 1/2/4/8. A supervised run that stays
// within budget produces byte-identical Result JSON to an unsupervised
// one.
//
// Two in-loop engine limits (sim.SetLimits) back the checkpoints up
// where sim-time slicing cannot reach:
//
//   - The livelock detector (always on): a model stuck scheduling
//     zero-delay events never advances the clock, so no checkpoint
//     would ever be reached. The engine trips after
//     sim.DefaultMaxSameInstant consecutive same-instant events and the
//     supervisor reports a LivelockError with the stuck (at, key).
//   - A hard step backstop (only with MaxEvents set): an event storm
//     advancing picoseconds per event reaches the next checkpoint only
//     after executing an unbounded number of events. The backstop caps
//     each engine at several times the whole-run budget so the
//     deterministic checkpoint trip fires first on every realistic
//     over-budget run; a backstop trip itself is still deterministic at
//     a fixed seed and partition count, but — being per-engine — not
//     partition-invariant, and is reported as BudgetExceeded with
//     Backstop set.
//
// Wall-clock deadlines are deliberately absent: they live strictly
// outside the sim path (cmd/powersimd and internal/serve carry them),
// keeping this package clean under the simclock analyzer and the
// determinism contract free of real-time dependence.
//
// # Repro bundles
//
// When a supervised run fails and the input is Spec-shaped, the
// supervisor writes a repro bundle — the canonical Spec JSON plus seed,
// partition count, and the error — under ReproDir, and the typed error
// carries the bundle path. `powersim fuzz -replay` or a three-line test
// can re-run the exact failing input.
package guard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// DefaultCheckEvery is the budget checkpoint period: fine enough that
// an over-budget run is stopped within tens of microseconds of
// simulated time past its limit, coarse enough that checkpoint overhead
// (a handful of counter reads) is unmeasurable against the millions of
// events a slice executes.
const DefaultCheckEvery = 50 * sim.Microsecond

// backstopFactor sizes the per-engine hard step cap relative to
// MaxEvents. It must exceed 1 by enough that the aggregate checkpoint
// trip always fires first on runs whose clock advances (any engine
// reaching factor× the whole-run budget implies a checkpoint at the
// budget crossing came and went), with slack for the events of the
// first checkpoint slice.
const backstopFactor = 4

// backstopSlack is the additive floor of the step backstop, covering
// tiny budgets whose first checkpoint slice alone executes more than
// backstopFactor× the budget.
const backstopSlack = 1 << 20

// Budget bounds one supervised run. The zero value applies no budget
// (livelock detection stays on — it is a correctness check, not a
// quota).
type Budget struct {
	// MaxEvents caps events executed, aggregated across all engines
	// driving the fabric. 0 = unlimited.
	MaxEvents uint64
	// MaxSimTime caps the simulated time span (from time zero). A run
	// whose horizon exceeds it is cut off deterministically at the cap.
	// 0 = unlimited.
	MaxSimTime sim.Duration
	// MaxLivePackets caps the live pooled-packet watermark observed at
	// checkpoints, aggregated across partition pools. 0 = unlimited.
	// (Inert in the test-only pooling-disabled mode, where pools count
	// nothing.)
	MaxLivePackets uint64
	// CheckEvery is the checkpoint period; 0 uses DefaultCheckEvery.
	CheckEvery sim.Duration
	// MaxSameInstant overrides the livelock threshold; 0 keeps
	// sim.DefaultMaxSameInstant.
	MaxSameInstant uint64
}

// checkEvery returns the effective checkpoint period.
func (b Budget) checkEvery() sim.Duration {
	if b.CheckEvery > 0 {
		return b.CheckEvery
	}
	return DefaultCheckEvery
}

// BudgetExceeded reports a run stopped at a deterministic budget
// checkpoint (or, with Backstop set, by the per-engine hard step cap).
type BudgetExceeded struct {
	// Resource is "events", "sim_time", or "live_packets".
	Resource string
	// Limit is the configured budget, Observed the watermark that broke
	// it (events executed, picoseconds of horizon, or live packets).
	Limit    uint64
	Observed uint64
	// At is the sim-time checkpoint that tripped.
	At sim.Time
	// Backstop marks an in-loop per-engine step-cap trip instead of a
	// checkpoint trip (deterministic at fixed seed and parts, but not
	// partition-invariant).
	Backstop bool
	// Bundle is the repro bundle path ("" when none was written).
	Bundle string
}

func (e *BudgetExceeded) Error() string {
	kind := "budget"
	if e.Backstop {
		kind = "backstop"
	}
	return fmt.Sprintf("guard: %s budget exceeded at sim time %v (%s: limit %d, observed %d)%s",
		e.Resource, e.At, kind, e.Limit, e.Observed, bundleSuffix(e.Bundle))
}

// LivelockError reports a run whose clock stopped advancing: the engine
// fired SameRun consecutive events at instant At without time moving,
// with Key the canonical key of the next event it refused to execute.
type LivelockError struct {
	At      sim.Time
	Key     sim.Key
	SameRun uint64
	// Bundle is the repro bundle path ("" when none was written).
	Bundle string
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("guard: livelock: clock stuck at %v after %d same-instant events (next key phash=%#x k=%d)%s",
		e.At, e.SameRun, e.Key.PHash, e.Key.K, bundleSuffix(e.Bundle))
}

// PanicError reports a crash on the run path, converted to an error by
// Capture. Value is the recovered panic value and Stack the goroutine
// stack at the panic site.
type PanicError struct {
	Value any
	Stack []byte
	// Bundle is the repro bundle path ("" when none was written).
	Bundle string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: run panicked: %v%s\n%s", e.Value, bundleSuffix(e.Bundle), e.Stack)
}

func bundleSuffix(path string) string {
	if path == "" {
		return ""
	}
	return " [repro: " + path + "]"
}

// Capture invokes run, converting a panic into a *PanicError. It is the
// minimal supervision layer — suite runners wrap each per-spec run in
// Capture so one crashing spec cannot take down its siblings or the
// process. By design it does NOT release or recycle anything the run
// allocated: a mid-panic lab is in an unknown state and must fall to
// the garbage collector, never back into the scratch pool.
func Capture(run func() (*scenario.Result, error)) (res *scenario.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return run()
}

// Supervisor runs scenarios under a Budget with panic capture and
// optional repro bundling. The zero value is usable: no budgets, no
// bundle dir, livelock detection on.
type Supervisor struct {
	Budget Budget
	// ReproDir, when non-empty, receives a repro bundle for every
	// supervised failure of a Spec-shaped run (RunSpec).
	ReproDir string

	// instrument, when set, appends probes to every Spec-built scenario —
	// the Tamper-style injection seam the supervisor's own tests use to
	// plant crashes and livelocks inside otherwise healthy specs.
	// Production callers leave it nil.
	instrument []scenario.Probe
}

// RunScenario executes an already-built Scenario under the supervisor's
// budget. Scenarios are single-use; the caller loses nothing on
// failure because the input is consumed either way. No repro bundle is
// written (a built Scenario has no serializable form — use RunSpec for
// that).
func (s *Supervisor) RunScenario(sc scenario.Scenario) (*scenario.Result, error) {
	return Capture(func() (*scenario.Result, error) {
		p, err := scenario.Prepare(sc)
		if err != nil {
			return nil, err
		}
		if err := s.drive(p); err != nil {
			// Typed-error paths may recycle: the engines froze at a
			// well-defined point and Release resets them.
			p.Release()
			return nil, err
		}
		res, err := p.Finish()
		p.Release()
		return res, err
	})
}

// RunSpec builds and executes a Spec at the given partition count under
// the supervisor's budget. On a supervised failure (panic, livelock,
// budget) with ReproDir set, a repro bundle is written and its path
// attached to the returned error.
func (s *Supervisor) RunSpec(sp *scenario.Spec, parts int) (*scenario.Result, error) {
	if parts < 1 {
		parts = 1
	}
	res, err := Capture(func() (*scenario.Result, error) {
		sc, err := sp.Build(parts)
		if err != nil {
			return nil, err
		}
		sc.Probes = append(sc.Probes, s.instrument...)
		return s.RunScenario(sc)
	})
	if err != nil && s.ReproDir != "" {
		s.attachBundle(err, sp, parts)
	}
	return res, err
}

// drive advances a prepared run to its (possibly budget-clamped)
// horizon in checkpoint slices, enforcing the budget between slices.
func (s *Supervisor) drive(p *scenario.Prepared) error {
	b := s.Budget
	horizon := p.Horizon()
	end := horizon
	if b.MaxSimTime > 0 && sim.Time(0).Add(b.MaxSimTime) < horizon {
		end = sim.Time(0).Add(b.MaxSimTime)
	}
	var backstop uint64
	if b.MaxEvents > 0 {
		backstop = backstopFactor*b.MaxEvents + backstopSlack
	}
	p.ArmLimits(backstop, b.MaxSameInstant)

	step := b.checkEvery()
	for t := sim.Time(0); t < end; {
		t = t.Add(step)
		if t > end {
			t = end
		}
		p.DriveTo(t)
		if tr := p.Trip(); tr != nil {
			return tripError(tr, p.Steps())
		}
		if b.MaxEvents > 0 && p.Steps() > b.MaxEvents {
			return &BudgetExceeded{Resource: "events", Limit: b.MaxEvents, Observed: p.Steps(), At: t}
		}
		if b.MaxLivePackets > 0 && p.LivePackets() > b.MaxLivePackets {
			return &BudgetExceeded{Resource: "live_packets", Limit: b.MaxLivePackets, Observed: p.LivePackets(), At: t}
		}
	}
	if end < horizon {
		// The sim-time budget cuts the run off below its own horizon —
		// an unconditional, trivially partition-invariant trip.
		return &BudgetExceeded{Resource: "sim_time", Limit: uint64(b.MaxSimTime), Observed: uint64(horizon), At: end}
	}
	return nil
}

// tripError converts an in-loop engine trip into the matching typed
// error. aggSteps is the fabric-wide step count at the stop, reported
// as the observed watermark for step-cap trips.
func tripError(tr *sim.Trip, aggSteps uint64) error {
	switch tr.Reason {
	case sim.TripLivelock:
		return &LivelockError{At: tr.At, Key: tr.Key, SameRun: tr.SameRun}
	default:
		return &BudgetExceeded{Resource: "events", Limit: tr.Steps, Observed: aggSteps, At: tr.At, Backstop: true}
	}
}

// ReproBundle is the replayable record of a supervised failure: the
// exact run input plus the error that stopped it. Spec is embedded in
// canonical form, so `scenario.DecodeSpec` (or powersim fuzz -replay)
// reproduces the identical cache key and run.
type ReproBundle struct {
	V     int             `json:"v"`
	Spec  json.RawMessage `json:"spec"`
	Seed  int64           `json:"seed"`
	Parts int             `json:"parts"`
	Error string          `json:"error"`
}

// WriteBundle pins a failing (spec, parts) run plus its error under
// dir, named by the run's content address, and returns the path.
func WriteBundle(dir string, sp *scenario.Spec, parts int, runErr error) (string, error) {
	canon, err := scenario.MarshalCanonical(sp)
	if err != nil {
		return "", err
	}
	key, err := scenario.SpecKey(sp, sp.Seed, parts)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(&ReproBundle{
		V:     scenario.SpecVersion,
		Spec:  canon,
		Seed:  sp.Seed,
		Parts: parts,
		Error: runErr.Error(),
	}, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "repro-"+key[:16]+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// attachBundle writes a repro bundle for a supervised failure and
// stamps its path into the typed error. Non-supervised errors (a
// malformed Spec failing Build) carry no bundle — the input never ran.
func (s *Supervisor) attachBundle(err error, sp *scenario.Spec, parts int) {
	var slot *string
	switch e := err.(type) {
	case *PanicError:
		slot = &e.Bundle
	case *LivelockError:
		slot = &e.Bundle
	case *BudgetExceeded:
		slot = &e.Bundle
	default:
		return
	}
	if path, werr := WriteBundle(s.ReproDir, sp, parts, err); werr == nil {
		*slot = path
	}
}
