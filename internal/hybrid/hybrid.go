// Package hybrid couples the paper's fluid model (internal/fluid) to
// the packet engine: traffic components marked Fluid by a scenario
// compile to per-link time-varying background arrival-rate processes,
// integrated with RK4 on the simulation clock, while packet-fidelity
// components keep running packet-by-packet through the same ports.
//
// The coupling is two-way and happens at a fixed exchange interval:
//
//   - packet → fluid: at each exchange instant every coupled link's ODE
//     observes the port's real queue depth, so the fluid aggregate
//     reacts to foreground congestion exactly as the law prescribes;
//   - fluid → packet: the integrated fluid arrival rate becomes integer
//     bytes through a remainder-carrying accumulator, feeds a per-link
//     backlog ledger, and is folded back into the port as virtual
//     backlog (inflating the INT/ECN queue signal the schemes read) and
//     a serializer capacity share (stretching packet serialization to
//     the residual rate) — see link.Port.SetVirtualLoad.
//
// Determinism is preserved by construction: the exchange ticks are
// ordinary engine events under their own causal-origin key, links are
// visited in fixed creation order, the ODE state advances only from
// values read at tick instants, and all cross-fidelity byte flow goes
// through the integer ledger — so a fixed seed yields byte-identical
// Results, like every other mode of the engine.
//
// Conservation is exact, not approximate: per link,
// emitted − delivered − backlog ≡ 0 holds at every instant because the
// three words move together in integer bytes (the ODE only shapes the
// rates). The scenario accounting probe folds these totals into the
// network-wide byte ledger the fuzzlab invariant checks.
package hybrid

import (
	"math"
	"sort"

	"repro/internal/fluid"
	"repro/internal/link"
	"repro/internal/sim"
)

// maxShare caps the serializer fraction fluid traffic may claim, so a
// saturating background stretches packet serialization 20× rather than
// starving the foreground outright (a real fabric would also never
// fully starve a backlogged class — the foreground's own packets keep
// arriving and claim slots).
const maxShare = 0.95

// rateDelta is one edge of a link's piecewise-constant offered-demand
// profile: at time at, the offered rate changes by dRate bytes/s and
// the count of active closed-loop (greedy) contributions by dGreedy.
type rateDelta struct {
	at      sim.Time
	dRate   float64
	dGreedy int
}

// LinkFluid is the fluid state of one coupled egress port.
type LinkFluid struct {
	Port *link.Port
	Sys  fluid.LinkSystem
	St   fluid.State

	// Integer byte ledger: emitted − delivered − backlog ≡ 0 always.
	emitted   int64
	delivered int64
	backlog   int64
	carry     float64 // fractional arrival remainder (bytes)

	lastTx uint64 // Port.TxBytes() at the previous exchange instant

	deltas    []rateDelta
	di        int
	curRate   float64
	curGreedy int
}

// AddContribution adds one traffic contribution to the link's offered
// demand: rate bytes/s over [start, end). Greedy marks a closed-loop
// component (an endless flow that wants whatever the window allows) —
// while any greedy contribution is active the demand cap is lifted and
// the control law alone throttles the aggregate.
func (lf *LinkFluid) AddContribution(start, end sim.Time, rate float64, greedy bool) {
	if end <= start || rate <= 0 {
		return
	}
	g := 0
	if greedy {
		g = 1
	}
	lf.deltas = append(lf.deltas, rateDelta{at: start, dRate: rate, dGreedy: g})
	lf.deltas = append(lf.deltas, rateDelta{at: end, dRate: -rate, dGreedy: -g})
}

// demandBytes integrates the offered demand over (t0, t1], advancing
// the piecewise-constant profile, and reports whether any closed-loop
// contribution was active in the interval.
func (lf *LinkFluid) demandBytes(t0, t1 sim.Time) (bytes float64, greedy bool) {
	t := t0
	if lf.curGreedy > 0 {
		greedy = true
	}
	for lf.di < len(lf.deltas) && lf.deltas[lf.di].at <= t1 {
		d := lf.deltas[lf.di]
		if d.at > t {
			bytes += lf.curRate * (d.at - t).Seconds()
			t = d.at
		}
		lf.curRate += d.dRate
		lf.curGreedy += d.dGreedy
		if lf.curGreedy > 0 {
			greedy = true
		}
		lf.di++
	}
	bytes += lf.curRate * (t1 - t).Seconds()
	return bytes, greedy
}

// Emitted returns the fluid payload bytes that have arrived at this
// link so far (the fluid analogue of payload accepted).
func (lf *LinkFluid) Emitted() int64 { return lf.emitted }

// Delivered returns the fluid payload bytes the link has served.
func (lf *LinkFluid) Delivered() int64 { return lf.delivered }

// Backlog returns the fluid bytes currently queued at the link.
func (lf *LinkFluid) Backlog() int64 { return lf.backlog }

// Coupler owns the fluid side of a hybrid run: one LinkFluid per
// coupled port and the exchange loop that advances them.
type Coupler struct {
	Eng *sim.Engine
	// Interval is the exchange interval Δ between couplings.
	Interval sim.Duration
	// Horizon bounds the exchange loop.
	Horizon sim.Time

	links  []*LinkFluid
	byPort map[*link.Port]*LinkFluid
	lastT  sim.Time
}

// New builds a coupler on eng exchanging every interval until horizon.
func New(eng *sim.Engine, interval sim.Duration, horizon sim.Time) *Coupler {
	if interval <= 0 {
		interval = sim.Microsecond
	}
	return &Coupler{
		Eng:      eng,
		Interval: interval,
		Horizon:  horizon,
		byPort:   map[*link.Port]*LinkFluid{},
	}
}

// LinkFor returns the fluid instance coupled to pt, creating it from
// the System template on first use (B is taken from the port's line
// rate; Beta, if zero, defaults to 5% of the link BDP, matching the
// paper's figure configuration of β̂ = 12.5 kB at a 250 kB BDP).
func (c *Coupler) LinkFor(pt *link.Port, tmpl fluid.System) *LinkFluid {
	if lf, ok := c.byPort[pt]; ok {
		return lf
	}
	sys := tmpl
	sys.B = pt.Rate
	if sys.Beta == 0 {
		sys.Beta = 0.05 * sys.BDP()
	}
	lf := &LinkFluid{
		Port: pt,
		Sys:  fluid.LinkSystem{System: sys, Demand: math.Inf(1)},
		// The aggregate starts at the additive-increase floor, the fluid
		// analogue of flows ramping from a small initial window.
		St: fluid.State{W: sys.Beta},
	}
	c.byPort[pt] = lf
	c.links = append(c.links, lf)
	return lf
}

// Links returns the coupled links in creation order.
func (c *Coupler) Links() []*LinkFluid { return c.links }

// Totals sums the ledger across all coupled links. By construction
// emitted − delivered − backlog ≡ 0.
func (c *Coupler) Totals() (emitted, delivered, backlog int64) {
	for _, lf := range c.links {
		emitted += lf.emitted
		delivered += lf.delivered
		backlog += lf.backlog
	}
	return
}

// Start freezes each link's demand profile and schedules the exchange
// loop. The caller must have set the engine's causal origin for the
// coupler (scenario setup uses a dedicated origin-key namespace), so
// the tick chain's canonical keys are stable regardless of what else
// the run schedules.
func (c *Coupler) Start() {
	for _, lf := range c.links {
		d := lf.deltas
		sort.SliceStable(d, func(i, j int) bool { return d[i].at < d[j].at })
		lf.lastTx = lf.Port.TxBytes()
	}
	c.lastT = c.Eng.Now()
	c.Eng.After(c.Interval, c.tick)
}

// tick is one exchange: advance every link's ODE across the elapsed
// interval against the observed packet queue, convert the integrated
// arrival rate to integer bytes, serve the backlog with the capacity
// the packet side left unused, and install the resulting virtual load
// on the port for the next interval.
func (c *Coupler) tick() {
	now := c.Eng.Now()
	h := (now - c.lastT).Seconds()
	for _, lf := range c.links {
		c.exchange(lf, c.lastT, now, h)
	}
	c.lastT = now
	if next := now.Add(c.Interval); next <= c.Horizon {
		c.Eng.After(c.Interval, c.tick)
	}
}

func (c *Coupler) exchange(lf *LinkFluid, t0, t1 sim.Time, h float64) {
	b := lf.Sys.B.BytesPerSec()
	offered, greedy := lf.demandBytes(t0, t1)
	if greedy {
		lf.Sys.Demand = math.Inf(1)
	} else {
		lf.Sys.Demand = offered / h
	}
	qPkt := float64(lf.Port.QueueBytes())

	// Advance the aggregate window; the fluid queue component tracks the
	// integer ledger, not the ODE's own estimate (synced below).
	lf.St = lf.Sys.StepCoupled(lf.St, qPkt, h)
	lam := lf.Sys.Lambda(lf.St, qPkt)

	// Arrivals: λ·Δ in integer bytes with remainder carry, additionally
	// capped by the offered bytes (a finite demand can't arrive faster
	// than it was offered, whatever the window says).
	arr := lam * h
	if !greedy && arr > offered {
		arr = offered
	}
	exact := arr + lf.carry
	a := int64(exact)
	if a < 0 {
		a = 0
	}
	lf.carry = exact - float64(a)

	// Service: the line moved b·Δ bytes this interval; whatever the
	// packet side actually serialized comes off the top, the rest drains
	// fluid backlog. Measuring real packet wire bytes (not an estimate)
	// is what makes the capacity split exact.
	txNow := lf.Port.TxBytes()
	pktWire := int64(txNow - lf.lastTx)
	lf.lastTx = txNow
	svc := int64(b*h) - pktWire
	if svc < 0 {
		svc = 0
	}
	avail := lf.backlog + a
	served := avail
	if served > svc {
		served = svc
	}
	lf.emitted += a
	lf.delivered += served
	lf.backlog = avail - served

	// Sync the ODE's queue estimate to the authoritative ledger before
	// the next step, and fold the result back into the port: backlog as
	// INT/ECN-visible bytes, and the share of the next interval's
	// serializer capacity the fluid side will claim.
	lf.St.Q = float64(lf.backlog)
	want := float64(lf.backlog) + lam*h
	share := 0.0
	if capacity := b * h; capacity > 0 {
		share = want / capacity
	}
	if share > maxShare {
		share = maxShare
	}
	if share < 0 {
		share = 0
	}
	lf.Port.SetVirtualLoad(lf.backlog, share)
}
