// Package scenario is the composition layer over the simulation core:
// an experiment is a declarative Scenario value with four orthogonal
// axes — Topology (star / fat-tree / leaf-spine / rotor fabrics with a
// routing strategy), Traffic (a list of typed workload components:
// Poisson×CDF, incast pulses, permutations, fixed staggered flows —
// each optionally running its own congestion-control scheme), Events (a
// timeline of link failures, repairs, and injected traffic, applied
// with control-plane reconvergence), and Probes (pluggable samplers
// that write scalars and series into the common Result envelope).
//
// One generic Run executes any such assembly: it builds the fabric,
// launches every traffic component in order, schedules the timeline,
// installs the probes, drives the engine to the horizon, and lets each
// probe finalize its metrics. The per-figure experiments of the paper
// (internal/exp) are thin presets returning Scenario values, so a new
// scenario — two traffic classes under different schemes, an incast
// pulse during a failover, a load step mid-run — is a value, not a new
// runner file. This mirrors how NS-2 (whose scheduler lineage
// internal/sim follows, see PERF.md) gets its scenario diversity from a
// composition layer rather than bespoke drivers.
//
// Everything is deterministic: traffic components derive their RNG from
// Scenario.Seed plus a per-component offset, events run on the
// simulation engine, and probes only observe — identical scenarios
// produce byte-identical Results.
package scenario
