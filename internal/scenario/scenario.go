package scenario

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rdcn"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
	"repro/internal/workload"
)

// Scenario is a declarative experiment: a fabric, the traffic offered
// on it, a timeline of mid-run events, and the probes that turn the run
// into a Result. Build one from the typed axis values and execute it
// with Run. Scenarios are single-use: probes accumulate run state, so
// construct a fresh value (presets do) for every run.
type Scenario struct {
	// Name labels the Result (the experiment registry overwrites it with
	// the registered name).
	Name string
	// Scheme is the base congestion-control scheme: it decides the host
	// transport and the switch features (INT, ECN, priority queues) the
	// fabric is built with. Traffic components may override the per-flow
	// algorithm via WithScheme.
	Scheme Scheme
	// Seed drives all workload and switch randomness.
	Seed int64
	// Topology describes the fabric.
	Topology Topology
	// Traffic components are generated and launched in order.
	Traffic []Traffic
	// Events is the mid-run timeline (link failures, injected traffic).
	Events Timeline
	// Probes sample the run and write into the Result envelope.
	Probes []Probe
	// Until is the run horizon. RotorTopology derives its own horizon
	// (Weeks rotor weeks) and ignores it.
	Until sim.Duration
}

// Fabric is the topology metadata traffic selectors resolve against:
// host counts, rack geometry, and the uplink capacity the offered-load
// components are defined over.
type Fabric struct {
	Hosts        int
	Racks        int
	HostsPerRack int
	// UplinkCapPerRack is the aggregate rack-uplink bandwidth the
	// Poisson load is offered against (0 for single-switch fabrics).
	UplinkCapPerRack units.BitRate
	// UnboundedSize is the scheme-appropriate "runs past any window"
	// flow size the Unbounded sentinel resolves to.
	UnboundedSize int64
}

// Unbounded marks a traffic component's flow as endless background
// traffic; launch resolves it to the scheme-appropriate size.
const Unbounded int64 = -1

// HostRef names a host relative to the fabric, so traffic components
// stay valid across topology scales. The zero HostRef is unset — it
// does not name host 0 — so forgetting a selector errors instead of
// silently targeting the first host, and optional references (Span.To)
// can tell "absent" from Host(0).
type HostRef struct {
	kind refKind
	rack int
	i    int
}

type refKind int

const (
	refUnset refKind = iota
	refIndex
	refFromEnd
	refRackStart
	refRackHost
)

// isSet reports whether the reference names anything.
func (h HostRef) isSet() bool { return h.kind != refUnset }

// Host references host i (absolute index).
func Host(i int) HostRef { return HostRef{kind: refIndex, i: i} }

// HostFromEnd references the i-th host from the end (1 = last host).
func HostFromEnd(i int) HostRef { return HostRef{kind: refFromEnd, i: i} }

// RackStart references the first host of rack r.
func RackStart(r int) HostRef { return HostRef{kind: refRackStart, rack: r} }

// RackHost references host i of rack r.
func RackHost(r, i int) HostRef { return HostRef{kind: refRackHost, rack: r, i: i} }

// Resolve returns the absolute host index of the reference. Rack-based
// references are bounds-checked against their own rack, so RackHost(0,
// perRack) errors instead of silently naming the first host of rack 1.
func (h HostRef) Resolve(f Fabric) (int, error) {
	var idx int
	switch h.kind {
	case refUnset:
		return 0, fmt.Errorf("scenario: unset host reference (use Host/HostFromEnd/RackStart/RackHost)")
	case refIndex:
		idx = h.i
	case refFromEnd:
		idx = f.Hosts - h.i
	case refRackStart, refRackHost:
		if h.rack < 0 || h.rack >= f.Racks {
			return 0, fmt.Errorf("scenario: host reference names rack %d, fabric has %d racks", h.rack, f.Racks)
		}
		if h.kind == refRackHost && (h.i < 0 || h.i >= f.HostsPerRack) {
			return 0, fmt.Errorf("scenario: host reference names host %d of rack %d, racks hold %d hosts",
				h.i, h.rack, f.HostsPerRack)
		}
		idx = h.rack*f.HostsPerRack + h.i
	}
	if idx < 0 || idx >= f.Hosts {
		return 0, fmt.Errorf("scenario: host reference resolves to %d, fabric has %d hosts", idx, f.Hosts)
	}
	return idx, nil
}

// Span is a half-open host range [From, To). An unset To (the zero
// HostRef) means end-of-hosts; an unset From makes the whole Span
// absent.
type Span struct {
	From, To HostRef
}

// SwitchRef names a switch by its topology role, resolved against the
// concrete topology (Leaf/Spine for leaf-spine, Tor/Agg/Core for
// fat-tree, SwitchIndex anywhere).
type SwitchRef struct {
	kind switchKind
	i    int
}

type switchKind int

const (
	swIndex switchKind = iota
	swLeaf
	swSpine
	swTor
	swAgg
	swCore
)

// SwitchIndex references switch i of the built network directly.
func SwitchIndex(i int) SwitchRef { return SwitchRef{kind: swIndex, i: i} }

// Leaf references leaf switch i of a leaf-spine fabric.
func Leaf(i int) SwitchRef { return SwitchRef{kind: swLeaf, i: i} }

// Spine references spine switch i of a leaf-spine fabric.
func Spine(i int) SwitchRef { return SwitchRef{kind: swSpine, i: i} }

// Tor references ToR switch i of a fat-tree.
func Tor(i int) SwitchRef { return SwitchRef{kind: swTor, i: i} }

// Agg references aggregation switch i of a fat-tree.
func Agg(i int) SwitchRef { return SwitchRef{kind: swAgg, i: i} }

// Core references core switch i of a fat-tree.
func Core(i int) SwitchRef { return SwitchRef{kind: swCore, i: i} }

// Topology describes the fabric axis of a Scenario. Implementations
// build the network and fill the Env's fabric metadata.
type Topology interface {
	build(env *Env) error
}

// resolveRouting turns a strategy name into a route.Strategy ("" keeps
// the fabric's per-flow ECMP default).
func resolveRouting(name string) (route.Strategy, error) {
	if name == "" {
		return nil, nil
	}
	return route.StrategyByName(name)
}

// StarTopology is n hosts on one switch — the minimal shared-bottleneck
// fabric (fairness, microbenchmarks).
type StarTopology struct {
	Hosts    int
	HostRate units.BitRate // default 25 Gbps
}

func (t StarTopology) build(env *Env) error {
	if t.Hosts < 2 {
		return fmt.Errorf("scenario: star topology needs ≥2 hosts, got %d", t.Hosts)
	}
	if t.HostRate < 0 {
		return fmt.Errorf("scenario: star topology host rate %v is negative", t.HostRate)
	}
	if t.HostRate == 0 {
		env.Lab = NewStarLab(env.Scheme, t.Hosts, env.Seed)
	} else {
		l := &Lab{Scheme: env.Scheme}
		cfg := topo.StarConfig{Hosts: t.Hosts, HostRate: t.HostRate, Opts: l.labOpts(env.Seed, nil)}
		cfg.Opts.Hosts = l.hostFactory(12 * sim.Microsecond)
		l.Net = topo.Star(cfg)
		l.wireCollectors()
		env.Lab = l
	}
	env.Fabric = Fabric{
		Hosts:         t.Hosts,
		Racks:         1,
		HostsPerRack:  t.Hosts,
		UnboundedSize: env.Lab.UnboundedSize(),
	}
	return nil
}

func (t StarTopology) resolveSwitch(ref SwitchRef, env *Env) (int, error) {
	if ref.kind != swIndex || ref.i != 0 {
		return 0, fmt.Errorf("scenario: star topology has a single switch; use SwitchIndex(0)")
	}
	return 0, nil
}

// FatTreeTopology is the paper's §4.1 oversubscribed fat-tree scaled by
// ServersPerTor (default 8; 32 is paper scale).
type FatTreeTopology struct {
	ServersPerTor int
	// Routing selects the multipath strategy by name ("", "ecmp",
	// "single", "wecmp"); empty keeps per-flow ECMP.
	Routing string
	// Partitions > 1 runs the fabric sharded across that many parallel
	// engines along pod cuts (internal/psim); output is byte-identical
	// to the serial run at any count. 0 or 1 runs serially.
	Partitions int
	// Pods, TorsPerPod, AggsPerPod and Cores override the paper's 4-pod
	// structure (0 keeps each default) — the scale benchmarks build
	// multi-pod 10k-host fabrics through these.
	Pods       int
	TorsPerPod int
	AggsPerPod int
	Cores      int
}

func (t FatTreeTopology) build(env *Env) error {
	// Structural dims are validated here, not panicked on downstream: the
	// fuzzlab shrinker legitimately drives them through zero and below.
	for _, d := range []struct {
		name string
		v    int
	}{
		{"ServersPerTor", t.ServersPerTor}, {"Partitions", t.Partitions},
		{"Pods", t.Pods}, {"TorsPerPod", t.TorsPerPod},
		{"AggsPerPod", t.AggsPerPod}, {"Cores", t.Cores},
	} {
		if d.v < 0 {
			return fmt.Errorf("scenario: fat-tree %s %d is negative", d.name, d.v)
		}
	}
	strategy, err := resolveRouting(t.Routing)
	if err != nil {
		return err
	}
	spt := t.ServersPerTor
	if spt == 0 {
		spt = 8
	}
	env.Lab = NewConfiguredFatTreeLab(env.Scheme, topo.FatTreeConfig{
		Pods:          t.Pods,
		TorsPerPod:    t.TorsPerPod,
		AggsPerPod:    t.AggsPerPod,
		Cores:         t.Cores,
		ServersPerTor: spt,
		Parts:         t.Partitions,
	}, env.Seed, strategy)
	cfg := env.Lab.FTCfg
	racks := cfg.Racks()
	env.Fabric = Fabric{
		Hosts:            racks * spt,
		Racks:            racks,
		HostsPerRack:     spt,
		UplinkCapPerRack: units.BitRate(cfg.AggsPerPod) * cfg.FabricRate,
		UnboundedSize:    env.Lab.UnboundedSize(),
	}
	return nil
}

func (t FatTreeTopology) resolveSwitch(ref SwitchRef, env *Env) (int, error) {
	cfg := env.Lab.FTCfg
	nTors := cfg.Racks()
	nAggs := cfg.Pods * cfg.AggsPerPod
	switch ref.kind {
	case swIndex:
		return ref.i, nil
	case swTor:
		if err := tierCheck("ToR", ref.i, nTors); err != nil {
			return 0, err
		}
		return ref.i, nil
	case swAgg:
		if err := tierCheck("aggregation", ref.i, nAggs); err != nil {
			return 0, err
		}
		return nTors + ref.i, nil
	case swCore:
		if err := tierCheck("core", ref.i, cfg.Cores); err != nil {
			return 0, err
		}
		return nTors + nAggs + ref.i, nil
	}
	return 0, fmt.Errorf("scenario: switch reference not valid on a fat-tree (use Tor/Agg/Core/SwitchIndex)")
}

// tierCheck bounds a role-based switch reference to its tier, so an
// overflowing index errors instead of silently naming a switch of the
// next tier.
func tierCheck(tier string, i, n int) error {
	if i < 0 || i >= n {
		return fmt.Errorf("scenario: %s switch %d out of range (fabric has %d)", tier, i, n)
	}
	return nil
}

// LeafSpineTopology is the two-tier Clos fabric, with optional per-spine
// rate asymmetry.
type LeafSpineTopology struct {
	Leaves, Spines, ServersPerLeaf int
	// SpineRates overrides the fabric rate per spine (asymmetric cores).
	SpineRates []units.BitRate
	// Routing selects the multipath strategy by name; empty keeps
	// per-flow ECMP.
	Routing string
	// Partitions > 1 runs the fabric sharded across that many parallel
	// engines along leaf/spine cuts (internal/psim); output is
	// byte-identical to the serial run at any count. 0 or 1 runs
	// serially.
	Partitions int
}

func (t LeafSpineTopology) build(env *Env) error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"Leaves", t.Leaves}, {"Spines", t.Spines},
		{"ServersPerLeaf", t.ServersPerLeaf}, {"Partitions", t.Partitions},
	} {
		if d.v < 0 {
			return fmt.Errorf("scenario: leaf-spine %s %d is negative", d.name, d.v)
		}
	}
	for i, r := range t.SpineRates {
		if r < 0 {
			return fmt.Errorf("scenario: leaf-spine spine %d rate %v is negative", i, r)
		}
	}
	strategy, err := resolveRouting(t.Routing)
	if err != nil {
		return err
	}
	cfg := topo.LeafSpineConfig{
		Leaves:         t.Leaves,
		Spines:         t.Spines,
		ServersPerLeaf: t.ServersPerLeaf,
		SpineRates:     t.SpineRates,
		Parts:          t.Partitions,
	}
	env.Lab = NewLeafSpineLab(env.Scheme, cfg, env.Seed, strategy)
	ls := env.Lab.LSCfg
	var uplink units.BitRate
	for sp := 0; sp < ls.Spines; sp++ {
		uplink += ls.SpineRate(sp)
	}
	env.Fabric = Fabric{
		Hosts:            ls.Leaves * ls.ServersPerLeaf,
		Racks:            ls.Leaves,
		HostsPerRack:     ls.ServersPerLeaf,
		UplinkCapPerRack: uplink,
		UnboundedSize:    env.Lab.UnboundedSize(),
	}
	return nil
}

func (t LeafSpineTopology) resolveSwitch(ref SwitchRef, env *Env) (int, error) {
	ls := env.Lab.LSCfg
	switch ref.kind {
	case swIndex:
		return ref.i, nil
	case swLeaf:
		if err := tierCheck("leaf", ref.i, ls.Leaves); err != nil {
			return 0, err
		}
		return ls.LeafSwitch(ref.i), nil
	case swSpine:
		if err := tierCheck("spine", ref.i, ls.Spines); err != nil {
			return 0, err
		}
		return ls.SpineSwitch(ref.i), nil
	}
	return 0, fmt.Errorf("scenario: switch reference not valid on a leaf-spine (use Leaf/Spine/SwitchIndex)")
}

// RotorTopology is the reconfigurable DCN of §5: Tors racks joined by a
// rotating circuit switch plus a multi-hop packet network. The run
// horizon is Weeks rotor weeks (Scenario.Until is ignored).
type RotorTopology struct {
	Tors, ServersPerTor int
	PacketRate          units.BitRate
	Weeks               int
}

func (t RotorTopology) build(env *Env) error {
	if t.Weeks <= 0 {
		return fmt.Errorf("scenario: rotor topology needs Weeks ≥ 1")
	}
	if t.Tors < 0 || t.Tors == 1 {
		return fmt.Errorf("scenario: rotor topology needs ≥2 ToRs (0 keeps the default), got %d", t.Tors)
	}
	if t.ServersPerTor < 0 {
		return fmt.Errorf("scenario: rotor ServersPerTor %d is negative", t.ServersPerTor)
	}
	if t.PacketRate < 0 {
		return fmt.Errorf("scenario: rotor packet rate %v is negative", t.PacketRate)
	}
	env.Rotor = rdcn.Build(rdcn.Config{
		Tors:          t.Tors,
		ServersPerTor: t.ServersPerTor,
		PacketRate:    t.PacketRate,
		Prebuffer:     env.Scheme.PrebufferFor,
		INT:           true,
	})
	env.Horizon = sim.Time(sim.Duration(t.Weeks) * env.Rotor.Sched.Week())
	env.Fabric = Fabric{
		Hosts:         t.Tors * t.ServersPerTor,
		Racks:         t.Tors,
		HostsPerRack:  t.ServersPerTor,
		UnboundedSize: transport.Unbounded, // rotor servers run the window transport
	}
	return nil
}

// switchResolver is implemented by topologies whose switches events can
// reference.
type switchResolver interface {
	resolveSwitch(ref SwitchRef, env *Env) (int, error)
}

// LaunchedFlow records one launched transfer: the generated flow plus
// the flow ID the transport assigned, in launch order. Probes use it to
// follow per-flow progress.
type LaunchedFlow struct {
	workload.Flow
	ID packet.FlowID
}
