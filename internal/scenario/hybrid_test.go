package scenario

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// hybridFCTTolerance is the stated accuracy contract of the hybrid
// co-simulation: on the calibration scenarios below, every packet-
// fidelity foreground flow's FCT under a fluid background must be
// within ±10% of its FCT when the same background runs at packet
// fidelity. The three scenarios cover all three fluid laws (Power,
// Voltage, Current) and two traffic kinds (poisson, rackpairs); the
// empirically observed worst case is ~4.9% (rackpairs under HPCC), so
// 10% leaves headroom without being vacuous.
const hybridFCTTolerance = 0.10

// hybridForeground is the shared packet-fidelity probe workload: three
// flows with deliberately odd, unique sizes so their records can be
// matched between runs by size alone (the generated backgrounds draw
// sizes from workload CDFs that never produce these exact values).
func hybridForeground() []FlowEntry {
	return []FlowEntry{
		{StartUS: 20, Src: &RefSpec{Kind: "host", I: 1}, Dst: &RefSpec{Kind: "host", I: 13}, Size: 123_451},
		{StartUS: 60, Src: &RefSpec{Kind: "host", I: 6}, Dst: &RefSpec{Kind: "host", I: 10}, Size: 61_211},
		{StartUS: 120, Src: &RefSpec{Kind: "host", I: 2}, Dst: &RefSpec{Kind: "host", I: 14}, Size: 30_603},
	}
}

// hybridCalibrationSpecs returns the differential calibration suite:
// small leaf-spine scenarios whose background component carries
// Fidelity "fluid". Stripping that field yields the all-packet
// reference run.
func hybridCalibrationSpecs() []Spec {
	topo := TopoSpec{Kind: "leafspine", Leaves: 4, Spines: 2, ServersPerLeaf: 4}
	return []Spec{
		{Name: "poisson-powertcp", Seed: 11, Scheme: "powertcp", Topo: topo,
			Traffic: []TrafficSpec{
				{Kind: "poisson", Load: 0.3, GenHorizonUS: 300, Fidelity: "fluid"},
				{Kind: "flows", Flows: hybridForeground()},
			}, HorizonUS: 500},
		{Name: "rackpairs-hpcc", Seed: 12, Scheme: "hpcc", Topo: topo,
			Traffic: []TrafficSpec{
				{Kind: "rackpairs", FromRack: &RefSpec{Kind: "rack_start", Rack: 2}, ToRack: &RefSpec{Kind: "rack_start", Rack: 3}, Count: 2, Size: 60_000, Fidelity: "fluid"},
				{Kind: "flows", Flows: hybridForeground()},
			}, HorizonUS: 500},
		{Name: "poisson-timely", Seed: 21, Scheme: "timely", Topo: topo,
			Traffic: []TrafficSpec{
				{Kind: "poisson", Load: 0.3, GenHorizonUS: 300, SeedOffset: 5, Fidelity: "fluid"},
				{Kind: "flows", Flows: hybridForeground()},
			}, HorizonUS: 500},
	}
}

// hybridRunRecords executes sp serially and returns the completed
// per-flow records (white-box: read from the Lab before release).
func hybridRunRecords(t *testing.T, sp Spec) []FlowRecord {
	t.Helper()
	sc, err := sp.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	p.DriveTo(p.Horizon())
	if _, err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	recs := append([]FlowRecord(nil), p.Env().Lab.Records...)
	p.Release()
	return recs
}

// fctBySize returns the FCT of the unique completed record with the
// given size, failing if the size is missing or ambiguous.
func fctBySize(t *testing.T, recs []FlowRecord, size int64) float64 {
	t.Helper()
	var fcts []float64
	for _, r := range recs {
		if r.Size == size {
			fcts = append(fcts, float64(r.FCT))
		}
	}
	if len(fcts) != 1 {
		t.Fatalf("foreground flow of size %d matched %d records, want exactly 1", size, len(fcts))
	}
	return fcts[0]
}

// TestHybridDifferential is the fidelity contract of internal/hybrid:
// for each calibration scenario, run once with the background at fluid
// fidelity and once with the identical background at packet fidelity,
// and require every foreground flow's FCT to agree within
// hybridFCTTolerance. This is the test that keeps the fluid coupling
// honest — a regression in the virtual-backlog fold, the serializer
// stretch, or the ODE law mapping shows up here as drift.
func TestHybridDifferential(t *testing.T) {
	for _, sp := range hybridCalibrationSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			hyb := hybridRunRecords(t, sp)

			pkt := sp
			pkt.Traffic = append([]TrafficSpec(nil), sp.Traffic...)
			for i := range pkt.Traffic {
				pkt.Traffic[i].Fidelity = ""
			}
			ref := hybridRunRecords(t, pkt)

			for _, fe := range hybridForeground() {
				h := fctBySize(t, hyb, fe.Size)
				p := fctBySize(t, ref, fe.Size)
				if err := math.Abs(h/p - 1); err > hybridFCTTolerance {
					t.Errorf("size %d: hybrid FCT %.0fns vs packet %.0fns — relative error %.3f exceeds %.2f",
						fe.Size, h, p, err, hybridFCTTolerance)
				}
			}
		})
	}
}

// TestHybridDeterminism: a fixed seed makes the hybrid preset's full
// Result envelope byte-identical across two independent serial runs —
// the same guarantee every packet-only scenario carries, extended over
// the RK4 exchange ticks.
func TestHybridDeterminism(t *testing.T) {
	encode := func() []byte {
		var sp Spec
		for _, p := range SpecPresets() {
			if p.Name == "hybrid" {
				sp = p
			}
		}
		if sp.Name == "" {
			t.Fatal("no hybrid preset")
		}
		sc, err := sp.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("hybrid run not deterministic: two seed-fixed runs encoded %d vs %d bytes", len(a), len(b))
	}
}

// TestHybridResultGolden pins the seed-fixed hybrid preset's encoded
// Result under testdata/golden/. Like the canonical pins, this is a
// drift alarm: any change to the coupler's integration order, the
// exchange schedule, or the fluid accounting fold alters these bytes
// and must be an explicit decision (regenerate with
// POWERTCP_UPDATE_GOLDEN=1), never an accident.
func TestHybridResultGolden(t *testing.T) {
	update := os.Getenv("POWERTCP_UPDATE_GOLDEN") != ""
	var sp Spec
	for _, p := range SpecPresets() {
		if p.Name == "hybrid" {
			sp = p
		}
	}
	sc, err := sp.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "hybrid.json")
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with POWERTCP_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("hybrid preset output drifted from recorded golden %s (%d vs %d bytes)", path, len(buf.Bytes()), len(want))
	}
}

// TestHybridConservation: the fluid byte ledger closes exactly —
// emitted − delivered − backlog ≡ 0 — and folding it into the global
// accounting keeps bytes_residual at zero, on every calibration
// scenario and the preset.
func TestHybridConservation(t *testing.T) {
	specs := append(hybridCalibrationSpecs(), SpecPresets()...)
	for _, sp := range specs {
		if !sp.HasFluid() {
			continue
		}
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			sc, err := sp.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			em := res.Scalars["fluid_bytes_emitted"]
			del := res.Scalars["fluid_bytes_delivered"]
			back := res.Scalars["fluid_bytes_backlog"]
			if em <= 0 {
				t.Fatal("fluid component emitted no bytes")
			}
			if em-del-back != 0 {
				t.Errorf("fluid ledger leaks: emitted %v − delivered %v − backlog %v = %v", em, del, back, em-del-back)
			}
			if r := res.Scalars["bytes_residual"]; r != 0 {
				t.Errorf("bytes_residual = %v after fluid fold, want 0", r)
			}
		})
	}
}
