package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// This file defines the canonical Spec wire form — the documented
// encoding behind corpus pins, repro bundles, and powersimd cache keys.
//
// Canonical form:
//
//   - One compact JSON document (no insignificant whitespace), keys in
//     lexicographic order at every object level, no trailing newline.
//   - The version field "v" is always present and equals SpecVersion.
//   - Fields at their zero value are omitted exactly where the Spec
//     struct tags say omitempty — the canonical bytes of a spec and of
//     its decode→encode round trip are identical.
//
// Two Specs are semantically equal exactly when their canonical bytes
// are equal, and SpecKey extends that equality to the full run identity
// (spec, seed, partition count): because the engine is deterministic, a
// run's Result bytes are a pure function of its SpecKey — which is what
// makes the content-addressed Result cache (internal/serve) exact
// rather than heuristic.
//
// DecodeSpec is strict: unknown fields and version mismatches are
// errors, so a request written against a future spec vocabulary can
// never be silently misread as this one (and then cached under a key
// that collides with the misreading).

// SpecVersion is the current canonical Spec encoding version.
//
// Version history:
//   - 1: initial canonical form.
//   - 2: adds the per-component "fidelity" field (hybrid packet/fluid
//     co-simulation). Version-1 documents are a strict subset of the
//     v2 vocabulary, so DecodeSpec accepts them and normalizes.
const SpecVersion = 2

// legacySpecVersion is the oldest version DecodeSpec still accepts;
// every field vocabulary since then is a subset of the current one.
const legacySpecVersion = 1

// MarshalCanonical renders the Spec in canonical form. A zero V is
// normalized to SpecVersion; any other mismatched version is an error
// (an in-memory Spec carrying a foreign version is a decode that should
// have failed).
func MarshalCanonical(sp *Spec) ([]byte, error) {
	if sp.V != 0 && sp.V != SpecVersion {
		return nil, fmt.Errorf("scenario: cannot canonicalize spec version %d (current %d)", sp.V, SpecVersion)
	}
	norm := *sp
	norm.V = SpecVersion
	// Struct-marshal first (field tags decide omission), then round-trip
	// through an untyped map so encoding/json re-emits every object with
	// lexicographically sorted keys. UseNumber keeps 64-bit seeds exact —
	// float64 would corrupt seeds above 2^53.
	first, err := json.Marshal(&norm)
	if err != nil {
		return nil, fmt.Errorf("scenario: marshaling spec: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(first))
	dec.UseNumber()
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing spec: %w", err)
	}
	return json.Marshal(doc)
}

// DecodeSpec parses canonical (or hand-written) Spec JSON strictly:
// unknown fields are rejected, and the document's version must be
// SpecVersion, a still-supported legacy version, or absent/zero
// (accepted for pre-versioning documents). The returned Spec has V
// normalized to SpecVersion.
func DecodeSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	// A second document in the payload is malformed input, not trailing
	// garbage to ignore.
	if dec.More() {
		return nil, fmt.Errorf("scenario: decoding spec: trailing data after JSON document")
	}
	switch sp.V {
	case 0, legacySpecVersion, SpecVersion:
		sp.V = SpecVersion
	default:
		return nil, fmt.Errorf("scenario: unsupported spec version %d (current %d)", sp.V, SpecVersion)
	}
	return &sp, nil
}

// SpecKey returns the content address of one run:
// hex(sha256(canonical(spec) ‖ seed ‖ parts)). Seed and partition count
// are hashed alongside the spec because both are run inputs the Spec
// body does not fully pin down (the service may override the seed, and
// parts selects the execution fabric — identical Results by the
// determinism contract, but a distinct supervised run worth its own
// cache slot while budgets are partition-aware).
func SpecKey(sp *Spec, seed int64, parts int) (string, error) {
	canon, err := MarshalCanonical(sp)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(canon)
	var tail [16]byte
	binary.BigEndian.PutUint64(tail[:8], uint64(seed))
	binary.BigEndian.PutUint64(tail[8:], uint64(parts))
	h.Write(tail[:])
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}
