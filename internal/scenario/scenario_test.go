package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// A scenario is a value: the same assembly must produce byte-identical
// results run after run.
func mixScenario(seed int64) Scenario {
	return Scenario{
		Name:     "mix",
		Scheme:   mustScheme(PowerTCP),
		Seed:     seed,
		Topology: LeafSpineTopology{Leaves: 2, Spines: 2, ServersPerLeaf: 4},
		Traffic: []Traffic{
			RackPairs{FromRack: RackStart(0), ToRack: RackStart(1), Count: 2},
			WithScheme(Reno, IncastPulse{
				At: 500 * sim.Microsecond, Receiver: Host(0), FanIn: 3, FlowSize: 200_000,
			}),
		},
		Events: Timeline{
			Events: []Event{
				LinkFail{At: sim.Millisecond, A: Leaf(0), B: Spine(0)},
				LinkRestore{At: 2 * sim.Millisecond, A: Leaf(0), B: Spine(0)},
			},
			Reconverge: 100 * sim.Microsecond,
		},
		Probes: []Probe{
			&GoodputProbe{Period: 50 * sim.Microsecond},
			&QueueProbe{Switch: Leaf(0), Port: 4, Period: 50 * sim.Microsecond},
			FCTProbe{},
		},
		Until: 3 * sim.Millisecond,
	}
}

func mustScheme(name string) Scheme {
	s, err := ResolveScheme(name)
	if err != nil {
		panic(err)
	}
	return s
}

// The composed scenario — two traffic classes under different schemes,
// an incast pulse during a failover timeline — was impossible to
// express through the flat Spec; here it is one value.
func TestComposedScenarioRunsAndIsDeterministic(t *testing.T) {
	encode := func() []byte {
		r, err := Run(mixScenario(3))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("identical scenarios produced different results")
	}

	r, err := Run(mixScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Scalar("engine_steps") == 0 {
		t.Fatal("no engine steps recorded")
	}
	if r.Scalar("completed") < 3 {
		t.Fatalf("incast pulse flows did not complete: %v", r.Scalar("completed"))
	}
	if len(r.Series) < 3 {
		t.Fatalf("probes emitted %d series, want goodput+queue+fct", len(r.Series))
	}
	if r.Scalar("goodput_gbps_avg") <= 0 {
		t.Fatal("goodput probe recorded nothing")
	}
}

// Traffic classes run under their own scheme: a Reno class on a
// PowerTCP fabric must behave differently than the same flows under the
// base scheme.
func TestTrafficClassSchemeChangesBehavior(t *testing.T) {
	base := func(class Traffic) *Result {
		r, err := Run(Scenario{
			Scheme:   mustScheme(PowerTCP),
			Seed:     5,
			Topology: FatTreeTopology{ServersPerTor: 4},
			Traffic: []Traffic{
				Flows{List: []FlowSpec{{Src: HostFromEnd(1), Dst: Host(0), Size: Unbounded}}},
				class,
			},
			Probes: []Probe{FCTProbe{}},
			Until:  2 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	pulse := IncastPulse{At: 200 * sim.Microsecond, Receiver: Host(0), FanIn: 4, FlowSize: 300_000,
		Senders: Span{From: RackStart(1), To: HostFromEnd(1)}}
	same := base(pulse)
	reno := base(WithScheme(Reno, pulse))
	var sb, rb bytes.Buffer
	if err := same.EncodeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := reno.EncodeJSON(&rb); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sb.Bytes(), rb.Bytes()) {
		t.Fatal("Reno traffic class produced results identical to the base scheme")
	}
}

func TestTrafficClassValidation(t *testing.T) {
	run := func(baseName, className string) error {
		_, err := Run(Scenario{
			Scheme:   mustScheme(baseName),
			Seed:     1,
			Topology: FatTreeTopology{ServersPerTor: 4},
			Traffic: []Traffic{WithScheme(className,
				Flows{List: []FlowSpec{{Src: Host(8), Dst: Host(0), Size: 100_000}}})},
			Probes: []Probe{FCTProbe{}},
			Until:  sim.Millisecond,
		})
		return err
	}
	if err := run(PowerTCP, Homa); err == nil || !strings.Contains(err.Error(), "per-flow algorithm") {
		t.Fatalf("HOMA traffic class accepted: %v", err)
	}
	if err := run(Homa, Reno); err == nil || !strings.Contains(err.Error(), "HOMA") {
		t.Fatalf("traffic class on a HOMA fabric accepted: %v", err)
	}
	if err := run(Reno, HPCC); err == nil || !strings.Contains(err.Error(), "INT") {
		t.Fatalf("INT-requiring class on a non-INT fabric accepted: %v", err)
	}
	if err := run(Reno, DCQCN); err == nil || !strings.Contains(err.Error(), "ECN") {
		t.Fatalf("ECN-requiring class on a non-ECN fabric accepted: %v", err)
	}
	// Both schemes mark, but with different RED profiles: the fabric can
	// only be built with one, so the mismatch must error too.
	if err := run(DCQCN, DCTCP); err == nil || !strings.Contains(err.Error(), "ECN") {
		t.Fatalf("ECN class with a mismatched marking profile accepted: %v", err)
	}
	if err := run(PowerTCP, Reno); err != nil {
		t.Fatalf("compatible traffic class rejected: %v", err)
	}
}

// An incast pulse whose sender pool is empty must error, not "run" a
// scenario that measures nothing (the default span skips the
// receiver's rack, which on a single-switch fabric is every host).
func TestIncastPulseNeedsSenders(t *testing.T) {
	_, err := Run(Scenario{
		Scheme:   mustScheme(PowerTCP),
		Topology: StarTopology{Hosts: 8},
		Traffic:  []Traffic{IncastPulse{Receiver: Host(0), FanIn: 4, FlowSize: 100_000}},
		Probes:   []Probe{FCTProbe{}},
		Until:    sim.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "no eligible senders") {
		t.Fatalf("senderless incast pulse accepted: %v", err)
	}
	// An unset receiver is an unset reference, not host 0.
	_, err = Run(Scenario{
		Scheme:   mustScheme(PowerTCP),
		Topology: FatTreeTopology{ServersPerTor: 4},
		Traffic:  []Traffic{IncastPulse{FanIn: 4, FlowSize: 100_000}},
		Probes:   []Probe{FCTProbe{}},
		Until:    sim.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "unset host reference") {
		t.Fatalf("unset receiver accepted: %v", err)
	}
}

// InjectTraffic is the declarative load step: a second Poisson class
// joining mid-run must add flows after the step instant only.
func TestInjectTrafficLoadStep(t *testing.T) {
	run := func(step bool) *Result {
		sc := Scenario{
			Scheme:   mustScheme(PowerTCP),
			Seed:     7,
			Topology: FatTreeTopology{ServersPerTor: 4},
			Traffic: []Traffic{
				PoissonLoad{Load: 0.1, Horizon: 2 * sim.Millisecond},
			},
			Probes: []Probe{FCTProbe{}},
			Until:  3 * sim.Millisecond,
		}
		if step {
			sc.Events.Events = append(sc.Events.Events, InjectTraffic{
				At: sim.Millisecond,
				Traffic: PoissonLoad{Load: 0.3, Horizon: sim.Millisecond,
					SeedOffset: 11},
			})
		}
		r, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	flat := run(false)
	stepped := run(true)
	if stepped.Scalar("started") <= flat.Scalar("started") {
		t.Fatalf("load step added no flows: %v vs %v",
			stepped.Scalar("started"), flat.Scalar("started"))
	}
}

func TestCwndProbeRecordsTrajectory(t *testing.T) {
	r, err := Run(Scenario{
		Scheme:   mustScheme(PowerTCP),
		Seed:     1,
		Topology: StarTopology{Hosts: 3},
		Traffic: []Traffic{Flows{List: []FlowSpec{
			{Src: Host(1), Dst: Host(0), Size: 2 << 20},
			{Src: Host(2), Dst: Host(0), Size: 2 << 20},
		}}},
		Probes: []Probe{&CwndProbe{FlowIndex: 1, Every: 10 * sim.Microsecond}},
		Until:  2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cwnd *Series
	for i := range r.Series {
		if r.Series[i].Name == "flow1_cwnd_bytes" {
			cwnd = &r.Series[i]
		}
	}
	if cwnd == nil || len(cwnd.Points) == 0 {
		t.Fatalf("cwnd probe recorded nothing: %+v", r.Series)
	}
}

func TestScenarioErrors(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Scheme:   mustScheme(PowerTCP),
			Topology: StarTopology{Hosts: 4},
			Until:    sim.Millisecond,
		}
	}

	if _, err := Run(Scenario{Scheme: mustScheme(PowerTCP)}); err == nil {
		t.Fatal("scenario without topology accepted")
	}

	sc := base()
	sc.Until = 0
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("scenario without horizon accepted: %v", err)
	}

	sc = base()
	sc.Events.Events = []Event{LinkFail{At: 1, A: Leaf(0), B: Spine(0)}}
	if _, err := Run(sc); err == nil {
		t.Fatal("leaf/spine link event on a star accepted")
	}

	sc = base()
	sc.Traffic = []Traffic{Flows{List: []FlowSpec{{Src: Host(9), Dst: Host(0), Size: 1}}}}
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "host reference") {
		t.Fatalf("out-of-range host reference accepted: %v", err)
	}

	sc = base()
	sc.Probes = []Probe{&QueueProbe{Switch: SwitchIndex(0), Port: 99, Period: sim.Microsecond}}
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "port") {
		t.Fatalf("out-of-range queue port accepted: %v", err)
	}

	sc = base()
	sc.Scheme = mustScheme(Homa)
	sc.Probes = []Probe{&CwndProbe{}}
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "HOMA") {
		t.Fatalf("cwnd probe on HOMA accepted: %v", err)
	}

	if _, err := Run(Scenario{
		Scheme:   mustScheme(PowerTCP),
		Topology: RotorTopology{Tors: 4, ServersPerTor: 2, Weeks: 1},
		Traffic: []Traffic{WithScheme(Reno,
			RackPairs{FromRack: RackStart(0), ToRack: RackStart(1)})},
	}); err == nil || !strings.Contains(err.Error(), "rotor") {
		t.Fatal("traffic-class scheme on the rotor topology accepted")
	}
}

// Schemes the fabric cannot drive error instead of crashing or
// silently substituting another algorithm.
func TestSchemeFabricMismatches(t *testing.T) {
	// reTCP has no per-flow algorithm builder: switched topologies must
	// reject it up front, not crash on a nil function.
	re, err := ResolveScheme("retcp-600")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Scenario{
		Scheme:   re,
		Topology: StarTopology{Hosts: 3},
		Traffic:  []Traffic{Flows{List: []FlowSpec{{Src: Host(1), Dst: Host(0), Size: 1000}}}},
		Until:    sim.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "per-flow algorithm") {
		t.Fatalf("reTCP on a switched topology accepted: %v", err)
	}

	// The rotor topology only supports the Fig. 8 competitors; anything
	// else used to fall back to HPCC silently.
	_, err = Run(Scenario{
		Scheme:   mustScheme(Timely),
		Topology: RotorTopology{Tors: 4, ServersPerTor: 2, Weeks: 1},
		Traffic:  []Traffic{RackPairs{FromRack: RackStart(0), ToRack: RackStart(1)}},
	})
	if err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("rotor accepted timely: %v", err)
	}
}

// Out-of-range traffic selectors and tier-overflowing switch
// references return errors instead of panicking or silently naming a
// switch of the wrong tier.
func TestRangeValidation(t *testing.T) {
	_, err := Run(Scenario{
		Scheme:   mustScheme(PowerTCP),
		Topology: StarTopology{Hosts: 4},
		Traffic: []Traffic{Staggered{Receiver: Host(0), FirstSender: Host(1),
			Count: 6, Stagger: sim.Millisecond, Sizes: []int64{1 << 20}}},
		Until: sim.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "senders") {
		t.Fatalf("overflowing staggered sender range accepted: %v", err)
	}

	_, err = Run(Scenario{
		Scheme:   mustScheme(PowerTCP),
		Topology: LeafSpineTopology{Leaves: 2, Spines: 2, ServersPerLeaf: 4},
		Traffic:  []Traffic{RackPairs{FromRack: Host(6), ToRack: RackStart(1)}},
		Until:    sim.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "rack pairs") {
		t.Fatalf("overflowing rack pair range accepted: %v", err)
	}

	// Self-flows corrupt probes silently: every component that could
	// hairpin a host to itself must refuse to.
	selfFlows := []Traffic{
		Flows{List: []FlowSpec{{Src: Host(2), Dst: Host(2), Size: 1000}}},
		Staggered{Receiver: Host(2), FirstSender: Host(1), Count: 3,
			Stagger: sim.Millisecond, Sizes: []int64{1 << 20}},
	}
	for _, tr := range selfFlows {
		_, err = Run(Scenario{
			Scheme:   mustScheme(PowerTCP),
			Topology: StarTopology{Hosts: 4},
			Traffic:  []Traffic{tr},
			Until:    sim.Millisecond,
		})
		if err == nil || !(strings.Contains(err.Error(), "itself") || strings.Contains(err.Error(), "includes the receiver")) {
			t.Fatalf("self-flow component %T accepted: %v", tr, err)
		}
	}
	_, err = Run(Scenario{
		Scheme:   mustScheme(PowerTCP),
		Topology: LeafSpineTopology{Leaves: 2, Spines: 2, ServersPerLeaf: 4},
		Traffic:  []Traffic{RackPairs{FromRack: RackStart(1), ToRack: RackStart(1)}},
		Until:    sim.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("same-rack rack pairs accepted: %v", err)
	}

	// Leaf(2) on a 2-leaf fabric is spine 0's index — it must error, not
	// cut a spine's link.
	_, err = Run(Scenario{
		Scheme:   mustScheme(PowerTCP),
		Topology: LeafSpineTopology{Leaves: 2, Spines: 2, ServersPerLeaf: 4},
		Events: Timeline{Events: []Event{
			LinkFail{At: sim.Millisecond, A: Leaf(2), B: Spine(0)},
		}},
		Until: 2 * sim.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "leaf switch 2 out of range") {
		t.Fatalf("tier-overflowing Leaf reference accepted: %v", err)
	}
	_, err = Run(Scenario{
		Scheme:   mustScheme(PowerTCP),
		Topology: FatTreeTopology{ServersPerTor: 4},
		Probes:   []Probe{&QueueProbe{Switch: Tor(8), Period: sim.Microsecond}},
		Until:    sim.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "ToR switch 8 out of range") {
		t.Fatalf("tier-overflowing Tor reference accepted: %v", err)
	}
}

// RotorTopology derives its horizon from Weeks; a stray Until must not
// truncate or extend the run (the documented contract).
func TestRotorHorizonIgnoresUntil(t *testing.T) {
	run := func(until sim.Duration) []byte {
		r, err := Run(Scenario{
			Scheme:   mustScheme(PowerTCP),
			Seed:     1,
			Topology: RotorTopology{Tors: 4, ServersPerTor: 2, Weeks: 1},
			Traffic:  []Traffic{RackPairs{FromRack: RackStart(0), ToRack: RackStart(1)}},
			Until:    until,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(0), run(50*sim.Microsecond)) {
		t.Fatal("Until changed a rotor run's horizon")
	}
}

// Host and rack references resolve relative to the fabric.
func TestHostRefResolution(t *testing.T) {
	f := Fabric{Hosts: 32, Racks: 8, HostsPerRack: 4}
	cases := []struct {
		ref  HostRef
		want int
	}{
		{Host(3), 3},
		{HostFromEnd(1), 31},
		{RackStart(2), 8},
		{RackHost(7, 3), 31},
	}
	for _, c := range cases {
		got, err := c.ref.Resolve(f)
		if err != nil || got != c.want {
			t.Fatalf("%+v resolved to %d, %v; want %d", c.ref, got, err, c.want)
		}
	}
	if _, err := Host(32).Resolve(f); err == nil {
		t.Fatal("out-of-range host resolved")
	}
}

// The permutation component must derive the same trace as the workload
// helper and never map a host to itself.
func TestPermutationTraffic(t *testing.T) {
	f := Fabric{Hosts: 16, Racks: 4, HostsPerRack: 4}
	flows, err := Permutation{}.generate(f, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 16 {
		t.Fatalf("generated %d flows", len(flows))
	}
	perm := workload.Permutation(16, 9)
	for i, fl := range flows {
		if fl.Src == fl.Dst {
			t.Fatalf("flow %d maps host %d to itself", i, fl.Src)
		}
		if fl.Dst != perm[i] {
			t.Fatalf("flow %d diverges from workload.Permutation", i)
		}
	}
}
