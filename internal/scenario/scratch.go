package scenario

import (
	"sync"

	"repro/internal/packet"
	"repro/internal/sim"
)

// runScratch carries warmed, content-free buffers from a finished run to
// the next one: the event engine (Reset keeps its slot rings, overflow
// backing, and node free list), the packet pool's free list, and the
// lab's flow-record accumulator. Suites repeat near-identical runs —
// every figure is b.N repetitions or a panel of same-scale specs — so
// recycling turns per-run pool warm-up (the dominant allocs/op of the
// large incast) into a one-time cost.
//
// Scratches hold no simulation state: a recycled engine is
// observationally identical to sim.New() and recycled packets are zeroed
// by Pool.Put, so recycling cannot change any run's output — the
// parallel-vs-serial and pooled-vs-unpooled determinism suites pin this.
// The sync.Pool keeps scratches per-P, so concurrent suite workers never
// contend or share a live scratch.
type runScratch struct {
	eng     *sim.Engine
	packets []*packet.Packet
	records []FlowRecord
}

var scratchPool = sync.Pool{New: func() any { return &runScratch{} }}

func getScratch() *runScratch { return scratchPool.Get().(*runScratch) }

// Release returns the lab's reusable buffers to the scratch pool. The
// lab (network, hosts, switches) must not be used afterwards: its engine
// is reset and its packet pool drained. Runners call this once the
// Result is fully composed; labs that are never released just leave
// their buffers to the garbage collector.
func (l *Lab) Release() {
	sc := l.scratch
	if sc == nil || l.Net == nil {
		return
	}
	l.scratch = nil
	if l.Net.Pools != nil {
		// Partitioned: every partition pool's free list carries over
		// (Pools[0] aliases Net.Pool). The partition engines are per-run
		// and fall to the garbage collector; only the control engine —
		// the one the builder got from the scratch — is recycled.
		sc.packets = sc.packets[:0]
		for _, pl := range l.Net.Pools {
			sc.packets = append(sc.packets, pl.Drain()...)
		}
	} else {
		sc.packets = l.Net.Pool.Drain()
	}
	l.Net.Eng.Reset()
	sc.eng = l.Net.Eng
	sc.records = l.Records[:0]
	l.Records = nil
	scratchPool.Put(sc)
}
