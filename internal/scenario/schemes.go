package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/sim"
)

// SchemeOption composes an ablation variant onto a resolved Scheme:
// γ and per-RTT updates for the PowerTCP family, overcommitment for
// HOMA, prebuffering for reTCP, and the Dynamic-Thresholds α for any
// scheme. Options validate their target and return errors instead of
// panicking.
type SchemeOption func(*Scheme) error

// SchemeFactory produces the base Scheme for a registered name.
type SchemeFactory func(name string) (Scheme, error)

var (
	schemeMu       sync.RWMutex
	schemeExact    = map[string]SchemeFactory{}
	schemeFamilies = map[string]SchemeFactory{} // keyed by name prefix
)

// RegisterScheme adds a scheme under an exact name. It errors on
// duplicates so two packages cannot silently fight over a name.
func RegisterScheme(name string, build SchemeFactory) error {
	if name == "" || build == nil {
		return fmt.Errorf("scenario: RegisterScheme needs a name and a factory")
	}
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if _, dup := schemeExact[name]; dup {
		return fmt.Errorf("scenario: scheme %q already registered", name)
	}
	schemeExact[name] = build
	return nil
}

// RegisterSchemeFamily adds a parameterized scheme family resolved by
// name prefix (e.g. "homa-oc" covers "homa-oc3"). The factory receives
// the full name and parses its parameter.
func RegisterSchemeFamily(prefix string, build SchemeFactory) error {
	if prefix == "" || build == nil {
		return fmt.Errorf("scenario: RegisterSchemeFamily needs a prefix and a factory")
	}
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if _, dup := schemeFamilies[prefix]; dup {
		return fmt.Errorf("scenario: scheme family %q already registered", prefix)
	}
	schemeFamilies[prefix] = build
	return nil
}

func mustRegisterScheme(name string, build SchemeFactory) {
	if err := RegisterScheme(name, build); err != nil {
		panic(err)
	}
}

// SchemeNames returns the exactly-registered scheme names, sorted.
// Parameterized families (homa-oc<N>, retcp-<µs>) are not enumerable and
// therefore not listed.
func SchemeNames() []string {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	return schemeNamesLocked()
}

// ResolveScheme resolves a scheme name and composes the given options
// onto it. Unknown names, malformed family parameters (homa-oc0) and
// options applied to the wrong scheme all return errors.
func ResolveScheme(name string, opts ...SchemeOption) (Scheme, error) {
	build, err := lookupScheme(name)
	if err != nil {
		return Scheme{}, err
	}
	s, err := build(name)
	if err != nil {
		return Scheme{}, err
	}
	s.Name = name
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return Scheme{}, err
		}
	}
	s.materialize()
	return s, nil
}

func lookupScheme(name string) (SchemeFactory, error) {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	if build, ok := schemeExact[name]; ok {
		return build, nil
	}
	// Match families in sorted prefix order: if a name ever matches two
	// prefixes, the winner must not depend on map iteration order.
	prefixes := make([]string, 0, len(schemeFamilies))
	for prefix := range schemeFamilies {
		prefixes = append(prefixes, prefix)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		if strings.HasPrefix(name, prefix) {
			return schemeFamilies[prefix], nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scheme %q (known: %s, plus the homa-oc<N> and retcp-<µs> families)",
		name, strings.Join(schemeNamesLocked(), ", "))
}

func schemeNamesLocked() []string {
	names := make([]string, 0, len(schemeExact))
	for n := range schemeExact {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// materialize rebuilds the algorithm builder for schemes whose
// configuration is composed from options (the PowerTCP family).
func (s *Scheme) materialize() {
	cfg := core.Config{Gamma: s.Gamma, UpdatePerRTT: s.PerRTT}
	switch s.Kind {
	case KindPowerTCP:
		s.Alg = cfg.Builder()
	case KindTheta:
		s.Alg = cfg.ThetaBuilder()
	}
}

// Scheme options.

// Gamma overrides the PowerTCP-family EWMA weight γ ∈ (0,1] (§3.3).
func Gamma(g float64) SchemeOption {
	return func(s *Scheme) error {
		if s.Kind != KindPowerTCP && s.Kind != KindTheta {
			return fmt.Errorf("scenario: γ override does not apply to scheme %q", s.Name)
		}
		if g <= 0 || g > 1 {
			return fmt.Errorf("scenario: γ = %v out of (0,1]", g)
		}
		s.Gamma = g
		return nil
	}
}

// PerRTT limits PowerTCP-family window updates to once per RTT, the
// RDCN case study's configuration (§5).
func PerRTT(on bool) SchemeOption {
	return func(s *Scheme) error {
		if s.Kind != KindPowerTCP && s.Kind != KindTheta {
			return fmt.Errorf("scenario: per-RTT updates do not apply to scheme %q", s.Name)
		}
		s.PerRTT = on
		return nil
	}
}

// Alpha overrides the switches' Dynamic-Thresholds factor α (buffer
// management ablations; any scheme).
func Alpha(a float64) SchemeOption {
	return func(s *Scheme) error {
		if a <= 0 {
			return fmt.Errorf("scenario: DT α = %v must be positive", a)
		}
		s.DTAlpha = a
		return nil
	}
}

// Overcommit sets HOMA's concurrent-grant degree (≥1).
func Overcommit(n int) SchemeOption {
	return func(s *Scheme) error {
		if s.Kind != KindHoma {
			return fmt.Errorf("scenario: overcommitment does not apply to scheme %q", s.Name)
		}
		if n < 1 {
			return fmt.Errorf("scenario: overcommit %d must be ≥1", n)
		}
		s.Overcommit = n
		return nil
	}
}

// Prebuffer sets reTCP's circuit-day prebuffering lead time (§5).
func Prebuffer(d sim.Duration) SchemeOption {
	return func(s *Scheme) error {
		if s.Kind != KindReTCP {
			return fmt.Errorf("scenario: prebuffering does not apply to scheme %q", s.Name)
		}
		if d <= 0 {
			return fmt.Errorf("scenario: prebuffer %v must be positive", d)
		}
		s.PrebufferFor = d
		return nil
	}
}

// Built-in schemes.

func fixedScheme(proto Scheme) SchemeFactory {
	return func(string) (Scheme, error) { return proto, nil }
}

func init() {
	mustRegisterScheme(PowerTCP, fixedScheme(Scheme{Kind: KindPowerTCP, INT: true}))
	mustRegisterScheme(ThetaPowerTCP, fixedScheme(Scheme{Kind: KindTheta}))
	mustRegisterScheme(HPCC, fixedScheme(Scheme{Kind: KindCC, INT: true, Alg: cc.HPCCBuilder()}))
	mustRegisterScheme(Timely, fixedScheme(Scheme{Kind: KindCC, Alg: cc.TimelyBuilder()}))
	mustRegisterScheme(DCQCN, fixedScheme(Scheme{Kind: KindCC, ECN: DCQCNECN, Alg: cc.DCQCNBuilder()}))
	mustRegisterScheme(Swift, fixedScheme(Scheme{Kind: KindCC, Alg: cc.SwiftBuilder()}))
	mustRegisterScheme(DCTCP, fixedScheme(Scheme{Kind: KindCC, ECN: DCTCPECN, Alg: cc.DCTCPBuilder()}))
	mustRegisterScheme(Reno, fixedScheme(Scheme{Kind: KindCC, Alg: cc.RenoBuilder()}))
	mustRegisterScheme(Cubic, fixedScheme(Scheme{Kind: KindCC, Alg: cc.CubicBuilder()}))
	mustRegisterScheme(Homa, fixedScheme(Scheme{Kind: KindHoma, PrioQueues: true, Overcommit: 1}))

	// homa-oc<N>: overcommitment composed from the name.
	if err := RegisterSchemeFamily("homa-oc", func(name string) (Scheme, error) {
		n, err := strconv.Atoi(strings.TrimPrefix(name, "homa-oc"))
		if err != nil {
			return Scheme{}, fmt.Errorf("scenario: malformed HOMA overcommit scheme %q", name)
		}
		s := Scheme{Kind: KindHoma, PrioQueues: true}
		if err := Overcommit(n)(&s); err != nil {
			return Scheme{}, fmt.Errorf("scenario: scheme %q: %w", name, err)
		}
		return s, nil
	}); err != nil {
		panic(err)
	}

	// retcp-<µs>: prebuffering composed from the name.
	if err := RegisterSchemeFamily("retcp-", func(name string) (Scheme, error) {
		us, err := strconv.Atoi(strings.TrimPrefix(name, "retcp-"))
		if err != nil {
			return Scheme{}, fmt.Errorf("scenario: malformed reTCP scheme %q", name)
		}
		s := Scheme{Kind: KindReTCP}
		if err := Prebuffer(sim.Duration(us) * sim.Microsecond)(&s); err != nil {
			return Scheme{}, fmt.Errorf("scenario: scheme %q: %w", name, err)
		}
		return s, nil
	}); err != nil {
		panic(err)
	}
}
