package scenario

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/hybrid"
	"repro/internal/link"
	"repro/internal/sim"
)

// This file compiles a Fluid-fidelity traffic component into per-link
// demand contributions for the hybrid coupler (internal/hybrid). The
// component's flow trace is generated exactly as at packet fidelity —
// same generator, same seed — but instead of launching transports, each
// flow becomes a time-windowed arrival-rate contribution on every port
// its packets would have crossed, split over ECMP candidates by
// topo.Network.WalkRoutes (the fluid limit of per-flow hashing).
//
// Restrictions (all validated here, never silently ignored): fluid
// components need a switched topology, serial execution (the coupler's
// exchange loop runs on the one engine), a static routing plane (no
// link-failure timeline — demand is routed once at prepare), and an
// open traffic shape whose offered rate is well defined up front
// (Flows, PoissonLoad, Permutation, RackPairs; pulse/staggered/request
// shapes are reactive foreground patterns that belong at packet
// fidelity).

// hybridExchangeDivisor sets the exchange interval to BaseRTT/4: well
// below the RTT the ODE's time constants are defined over, so the RK4
// step resolves the law's dynamics, while keeping the per-link tick
// cost negligible against the packet event stream it replaces.
const hybridExchangeDivisor = 4

// fluidEligible reports whether a traffic component's shape can carry
// fluid fidelity.
func fluidEligible(tr Traffic) bool {
	switch tr.(type) {
	case Flows, PoissonLoad, Permutation, RackPairs:
		return true
	}
	return false
}

// fluidLawFor maps a congestion-control scheme to the fluid control-law
// family of §2: PowerTCP variants integrate the power law, TIMELY the
// current (RTT-gradient) law, and everything else the voltage
// (queue/delay) law — the family the paper itself files HPCC, Swift,
// DCTCP and the loss-based schemes under.
func fluidLawFor(s Scheme) (fluid.Law, float64) {
	gamma := s.Gamma
	if gamma == 0 {
		gamma = 0.9
	}
	switch {
	case s.Kind == KindPowerTCP || s.Kind == KindTheta:
		return fluid.Power, gamma
	case s.Name == Timely:
		return fluid.Current, gamma
	}
	return fluid.Voltage, gamma
}

// launchFluid compiles one fluid component onto the coupler, creating
// the coupler on first use. law is the component's effective scheme
// (the override if present, the base scheme otherwise) — it selects the
// control-law family the aggregate obeys.
func (env *Env) launchFluid(tr Traffic, law Scheme, shift sim.Duration) error {
	if env.Rotor != nil {
		return fmt.Errorf("scenario: fluid fidelity is not supported on the rotor topology")
	}
	if env.Lab.Net.Part != nil {
		return fmt.Errorf("scenario: fluid fidelity requires serial execution (got %d partitions)", env.Lab.Net.Part.Parts)
	}
	if !fluidEligible(tr) {
		return fmt.Errorf("scenario: traffic kind %T cannot run at fluid fidelity (eligible: Flows, PoissonLoad, Permutation, RackPairs)", tr)
	}
	if shift > 0 {
		return fmt.Errorf("scenario: injected traffic cannot run at fluid fidelity")
	}
	for _, ev := range env.Scenario.Events.Events {
		if _, ok := ev.(LinkFail); ok {
			return fmt.Errorf("scenario: fluid fidelity cannot be combined with link failures (fluid demand is routed once, before the run)")
		}
	}

	net := env.Lab.Net
	if env.Hybrid == nil {
		interval := net.BaseRTT / hybridExchangeDivisor
		env.Hybrid = hybrid.New(env.Eng(), interval, env.Horizon)
	}
	c := env.Hybrid

	flows, err := tr.generate(env.Fabric, env.Seed)
	if err != nil {
		return err
	}

	lawKind, gamma := fluidLawFor(law)
	tmpl := fluid.System{
		Tau:   net.BaseRTT,
		Gamma: gamma,
		Dt:    net.BaseRTT / 2,
		Law:   lawKind,
	}
	nicRate := net.HostRate.BytesPerSec()
	for _, f := range flows {
		if f.Start < 0 {
			return fmt.Errorf("scenario: flow %d→%d starts at negative time %v", f.Src, f.Dst, f.Start)
		}
		if f.Size != Unbounded && f.Size <= 0 {
			return fmt.Errorf("scenario: flow %d→%d has non-positive size %d (use Unbounded for endless flows)",
				f.Src, f.Dst, f.Size)
		}
		start := f.Start
		end := env.Horizon
		greedy := true
		if f.Size != Unbounded {
			// A sized flow offers NIC line rate for the time an
			// uncongested transfer would take; congestion shows up as the
			// aggregate window cap, not as a stretched window of offered
			// demand (open-loop arrivals do not slow down).
			greedy = false
			dur := net.HostRate.TxTime(f.Size)
			end = start.Add(dur)
			if end > env.Horizon {
				end = env.Horizon
			}
		}
		if end <= start {
			continue
		}
		net.WalkRoutes(f.Src, f.Dst, func(pt *link.Port, frac float64) {
			c.LinkFor(pt, tmpl).AddContribution(start, end, nicRate*frac, greedy)
		})
	}
	return nil
}
