package scenario

import (
	"fmt"

	"repro/internal/sim"
)

// Spec is a fully serializable scenario description — the wire form of
// a run. The fuzz lab's generator emits Specs, its shrinker edits them,
// the pinned corpus stores them, and the powersimd service accepts them
// as request bodies; Build compiles one into a fresh Scenario
// (scenarios are single-use), so one Spec can be run repeatedly and at
// different partition counts.
//
// The JSON encoding is canonical and versioned — see MarshalCanonical,
// DecodeSpec, and SpecKey in canonical.go. V carries the encoding
// version (SpecVersion); a zero V in an in-memory Spec is normalized to
// the current version on encode.
type Spec struct {
	V            int           `json:"v"`
	Name         string        `json:"name,omitempty"`
	Seed         int64         `json:"seed"`
	Scheme       string        `json:"scheme"`
	Topo         TopoSpec      `json:"topo"`
	Traffic      []TrafficSpec `json:"traffic"`
	Events       []EventSpec   `json:"events,omitempty"`
	ReconvergeUS int64         `json:"reconverge_us,omitempty"`
	HorizonUS    int64         `json:"horizon_us"`
}

// TopoSpec describes the fabric axis. Kind selects the topology; the
// dimension fields that apply to other kinds are ignored (and kept
// zero by the generator, so canonical JSON stays minimal).
type TopoSpec struct {
	// Kind is "star", "leafspine", or "fattree".
	Kind string `json:"kind"`
	// Hosts sizes a star.
	Hosts int `json:"hosts,omitempty"`
	// Leaves/Spines/ServersPerLeaf size a leaf-spine.
	Leaves         int `json:"leaves,omitempty"`
	Spines         int `json:"spines,omitempty"`
	ServersPerLeaf int `json:"servers_per_leaf,omitempty"`
	// ServersPerTor sizes a fat-tree (the default 4-pod structure).
	ServersPerTor int `json:"servers_per_tor,omitempty"`
	// Routing names the multipath strategy ("" keeps per-flow ECMP).
	Routing string `json:"routing,omitempty"`
}

// RefSpec is the serializable form of HostRef.
type RefSpec struct {
	// Kind is "host", "from_end", "rack_start", or "rack_host".
	Kind string `json:"kind"`
	Rack int    `json:"rack,omitempty"`
	I    int    `json:"i,omitempty"`
}

func (r *RefSpec) toRef() (HostRef, error) {
	if r == nil {
		return HostRef{}, fmt.Errorf("scenario: missing host reference")
	}
	switch r.Kind {
	case "host":
		return Host(r.I), nil
	case "from_end":
		return HostFromEnd(r.I), nil
	case "rack_start":
		return RackStart(r.Rack), nil
	case "rack_host":
		return RackHost(r.Rack, r.I), nil
	}
	return HostRef{}, fmt.Errorf("scenario: unknown host reference kind %q", r.Kind)
}

// SwitchRefSpec is the serializable form of SwitchRef.
type SwitchRefSpec struct {
	// Tier is "leaf", "spine", "tor", "agg", "core", or "index".
	Tier string `json:"tier"`
	I    int    `json:"i"`
}

func (r *SwitchRefSpec) toRef() (SwitchRef, error) {
	if r == nil {
		return SwitchRef{}, fmt.Errorf("scenario: missing switch reference")
	}
	switch r.Tier {
	case "leaf":
		return Leaf(r.I), nil
	case "spine":
		return Spine(r.I), nil
	case "tor":
		return Tor(r.I), nil
	case "agg":
		return Agg(r.I), nil
	case "core":
		return Core(r.I), nil
	case "index":
		return SwitchIndex(r.I), nil
	}
	return SwitchRef{}, fmt.Errorf("scenario: unknown switch tier %q", r.Tier)
}

// FlowEntry is one explicit transfer of a "flows" component.
type FlowEntry struct {
	StartUS int64    `json:"start_us,omitempty"`
	Src     *RefSpec `json:"src"`
	Dst     *RefSpec `json:"dst"`
	// Size in bytes; -1 means Unbounded.
	Size int64 `json:"size"`
}

// TrafficSpec is one workload component, a tagged union over Kind.
// Fields that do not apply to the Kind stay zero.
type TrafficSpec struct {
	// Kind is "flows", "pulse", "staggered", "poisson", "requests",
	// "permutation", or "rackpairs".
	Kind string `json:"kind"`
	// Override runs this component under its own per-flow scheme
	// (WithScheme); empty keeps the base scheme.
	Override string `json:"override,omitempty"`
	// Fidelity selects the simulation mode: "" or "packet" runs the
	// component packet-by-packet, "fluid" compiles it into the hybrid
	// coupler's per-link background demand (WithFidelity). Added in
	// spec version 2.
	Fidelity string `json:"fidelity,omitempty"`

	Flows []FlowEntry `json:"flows,omitempty"`

	AtUS     int64    `json:"at_us,omitempty"`
	Receiver *RefSpec `json:"receiver,omitempty"`
	FanIn    int      `json:"fan_in,omitempty"`
	FlowSize int64    `json:"flow_size,omitempty"`
	SpanFrom *RefSpec `json:"span_from,omitempty"`
	SpanTo   *RefSpec `json:"span_to,omitempty"`

	FirstSender *RefSpec `json:"first_sender,omitempty"`
	Count       int      `json:"count,omitempty"`
	StaggerUS   int64    `json:"stagger_us,omitempty"`
	Sizes       []int64  `json:"sizes,omitempty"`

	Load        float64 `json:"load,omitempty"`
	RequestRate float64 `json:"request_rate,omitempty"`
	RequestSize int64   `json:"request_size,omitempty"`
	// GenHorizonUS bounds open-loop trace generation (poisson, requests).
	GenHorizonUS int64 `json:"gen_horizon_us,omitempty"`

	FromRack *RefSpec `json:"from_rack,omitempty"`
	ToRack   *RefSpec `json:"to_rack,omitempty"`
	Size     int64    `json:"size,omitempty"`

	SeedOffset int64 `json:"seed_offset,omitempty"`
}

// EventSpec is one timeline entry.
type EventSpec struct {
	// Kind is "fail", "restore", or "inject".
	Kind string         `json:"kind"`
	AtUS int64          `json:"at_us"`
	A    *SwitchRefSpec `json:"a,omitempty"`
	B    *SwitchRefSpec `json:"b,omitempty"`
	// Inject carries the injected component for Kind "inject".
	Inject *TrafficSpec `json:"inject,omitempty"`
}

func us(v int64) sim.Duration { return sim.Duration(v) * sim.Microsecond }

// Partitionable reports whether the fabric supports PDES sharding —
// the specs eligible for the serial-vs-partitioned comparison.
func (s *Spec) Partitionable() bool {
	return s.Topo.Kind == "leafspine" || s.Topo.Kind == "fattree"
}

// PartsAxis returns the partition counts the invariant checker compares
// this spec across: [1] for unshardable fabrics and for hybrid specs
// (the fluid coupler's exchange loop is serial-only), the full 1/2/4/8
// axis otherwise.
func (s *Spec) PartsAxis() []int {
	if !s.Partitionable() || s.HasFluid() {
		return []int{1}
	}
	return []int{1, 2, 4, 8}
}

// HasFluid reports whether any traffic component runs at fluid
// fidelity — the gate for the hybrid-vs-packet agreement invariant and
// for the serial-only execution restriction.
func (s *Spec) HasFluid() bool {
	for i := range s.Traffic {
		if s.Traffic[i].Fidelity == "fluid" {
			return true
		}
	}
	return false
}

func (s *Spec) buildTopology(parts int) (Topology, error) {
	switch s.Topo.Kind {
	case "star":
		return StarTopology{Hosts: s.Topo.Hosts}, nil
	case "leafspine":
		return LeafSpineTopology{
			Leaves:         s.Topo.Leaves,
			Spines:         s.Topo.Spines,
			ServersPerLeaf: s.Topo.ServersPerLeaf,
			Routing:        s.Topo.Routing,
			Partitions:     parts,
		}, nil
	case "fattree":
		return FatTreeTopology{
			ServersPerTor: s.Topo.ServersPerTor,
			Routing:       s.Topo.Routing,
			Partitions:    parts,
		}, nil
	}
	return nil, fmt.Errorf("scenario: unknown topology kind %q", s.Topo.Kind)
}

func (t *TrafficSpec) build() (Traffic, error) {
	var built Traffic
	switch t.Kind {
	case "flows":
		list := make([]FlowSpec, 0, len(t.Flows))
		for _, fe := range t.Flows {
			src, err := fe.Src.toRef()
			if err != nil {
				return nil, err
			}
			dst, err := fe.Dst.toRef()
			if err != nil {
				return nil, err
			}
			list = append(list, FlowSpec{
				Start: sim.Time(us(fe.StartUS)), Src: src, Dst: dst, Size: fe.Size,
			})
		}
		built = Flows{List: list}
	case "pulse":
		rx, err := t.Receiver.toRef()
		if err != nil {
			return nil, err
		}
		var span Span
		if t.SpanFrom != nil {
			if span.From, err = t.SpanFrom.toRef(); err != nil {
				return nil, err
			}
		}
		if t.SpanTo != nil {
			if span.To, err = t.SpanTo.toRef(); err != nil {
				return nil, err
			}
		}
		built = IncastPulse{
			At: us(t.AtUS), Receiver: rx, FanIn: t.FanIn,
			FlowSize: t.FlowSize, Senders: span,
		}
	case "staggered":
		rx, err := t.Receiver.toRef()
		if err != nil {
			return nil, err
		}
		first, err := t.FirstSender.toRef()
		if err != nil {
			return nil, err
		}
		built = Staggered{
			Receiver: rx, FirstSender: first, Count: t.Count,
			Stagger: us(t.StaggerUS), Sizes: t.Sizes,
		}
	case "poisson":
		built = PoissonLoad{
			Load: t.Load, Start: us(t.AtUS),
			Horizon: us(t.GenHorizonUS), SeedOffset: t.SeedOffset,
		}
	case "requests":
		built = IncastRequests{
			RequestRate: t.RequestRate, RequestSize: t.RequestSize,
			FanIn: t.FanIn, Start: us(t.AtUS),
			Horizon: us(t.GenHorizonUS), SeedOffset: t.SeedOffset,
		}
	case "permutation":
		built = Permutation{SeedOffset: t.SeedOffset}
	case "rackpairs":
		from, err := t.FromRack.toRef()
		if err != nil {
			return nil, err
		}
		to, err := t.ToRack.toRef()
		if err != nil {
			return nil, err
		}
		built = RackPairs{FromRack: from, ToRack: to, Count: t.Count, Size: t.Size}
	default:
		return nil, fmt.Errorf("scenario: unknown traffic kind %q", t.Kind)
	}
	if t.Override != "" {
		built = WithScheme(t.Override, built)
	}
	switch t.Fidelity {
	case "", "packet":
	case "fluid":
		built = WithFidelity(Fluid, built)
	default:
		return nil, fmt.Errorf("scenario: unknown traffic fidelity %q (want \"packet\" or \"fluid\")", t.Fidelity)
	}
	return built, nil
}

func (e *EventSpec) build() (Event, error) {
	switch e.Kind {
	case "fail", "restore":
		a, err := e.A.toRef()
		if err != nil {
			return nil, err
		}
		b, err := e.B.toRef()
		if err != nil {
			return nil, err
		}
		if e.Kind == "fail" {
			return LinkFail{At: us(e.AtUS), A: a, B: b}, nil
		}
		return LinkRestore{At: us(e.AtUS), A: a, B: b}, nil
	case "inject":
		if e.Inject == nil {
			return nil, fmt.Errorf("scenario: inject event carries no traffic component")
		}
		tr, err := e.Inject.build()
		if err != nil {
			return nil, err
		}
		return InjectTraffic{At: us(e.AtUS), Traffic: tr}, nil
	}
	return nil, fmt.Errorf("scenario: unknown event kind %q", e.Kind)
}

// HasFailures reports whether the timeline cuts any link — the gate for
// the zero-black-hole invariant.
func (s *Spec) HasFailures() bool {
	for _, e := range s.Events {
		if e.Kind == "fail" {
			return true
		}
	}
	return false
}

// Build compiles the Spec into a fresh single-use Scenario sharded
// across parts partition engines (1 runs serially), instrumented with
// the accounting and FCT probes the invariant checker and the serving
// path read.
func (s *Spec) Build(parts int) (Scenario, error) {
	topo, err := s.buildTopology(parts)
	if err != nil {
		return Scenario{}, err
	}
	scheme, err := ResolveScheme(s.Scheme)
	if err != nil {
		return Scenario{}, err
	}
	var traffic []Traffic
	for i := range s.Traffic {
		tr, err := s.Traffic[i].build()
		if err != nil {
			return Scenario{}, err
		}
		traffic = append(traffic, tr)
	}
	var events []Event
	for i := range s.Events {
		ev, err := s.Events[i].build()
		if err != nil {
			return Scenario{}, err
		}
		events = append(events, ev)
	}
	name := s.Name
	if name == "" {
		name = fmt.Sprintf("fuzz-%d", s.Seed)
	}
	return Scenario{
		Name:     name,
		Scheme:   scheme,
		Seed:     s.Seed,
		Topology: topo,
		Traffic:  traffic,
		Events:   Timeline{Events: events, Reconverge: us(s.ReconvergeUS)},
		Probes:   []Probe{AccountingProbe{}, FCTProbe{}},
		Until:    us(s.HorizonUS),
	}, nil
}
