package scenario

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestPresetGoldens pins the canonical bytes and SpecKey of every
// experiment preset under testdata/canonical/. The pins are the drift
// alarm for the content-addressed cache: any change to the Spec struct,
// its tags, or the canonicalization algorithm shows up here as a byte
// diff, forcing an explicit decision (bump SpecVersion, regenerate with
// POWERTCP_UPDATE_GOLDEN=1) instead of silently remapping every cache
// key in the wild.
func TestPresetGoldens(t *testing.T) {
	update := os.Getenv("POWERTCP_UPDATE_GOLDEN") != ""
	dir := filepath.Join("testdata", "canonical")
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	presets := SpecPresets()
	if len(presets) != 9 {
		t.Fatalf("got %d presets, want one per registered experiment plus the hybrid preset (9)", len(presets))
	}
	for _, sp := range presets {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			canon, err := MarshalCanonical(&sp)
			if err != nil {
				t.Fatal(err)
			}
			key, err := SpecKey(&sp, sp.Seed, 1)
			if err != nil {
				t.Fatal(err)
			}
			// The preset must be a valid run input, not just valid JSON.
			if _, err := sp.Build(1); err != nil {
				t.Fatalf("preset does not build: %v", err)
			}
			got := []byte(fmt.Sprintf("%s\n%s\n", key, canon))
			path := filepath.Join(dir, sp.Name+".golden")
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with POWERTCP_UPDATE_GOLDEN=1): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("canonical encoding drifted for %q:\n got %s\nwant %s\nIf intentional, bump SpecVersion and regenerate goldens.",
					sp.Name, got, want)
			}
		})
	}
}

// TestCanonicalRoundTrip: canonical bytes survive decode→re-encode
// unchanged, and key order is sorted regardless of struct declaration
// order.
func TestCanonicalRoundTrip(t *testing.T) {
	for _, sp := range SpecPresets() {
		sp := sp
		canon, err := MarshalCanonical(&sp)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeSpec(canon)
		if err != nil {
			t.Fatalf("%s: canonical bytes do not decode: %v", sp.Name, err)
		}
		again, err := MarshalCanonical(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, again) {
			t.Fatalf("%s: canonical encode not a fixed point:\n first %s\nsecond %s", sp.Name, canon, again)
		}
		if bytes.Contains(canon, []byte("\n")) || bytes.Contains(canon, []byte(": ")) {
			t.Fatalf("%s: canonical form is not compact: %s", sp.Name, canon)
		}
	}
}

// TestCanonicalSeedPrecision: seeds above 2^53 survive the
// canonicalization round trip exactly (UseNumber, not float64).
func TestCanonicalSeedPrecision(t *testing.T) {
	sp := SpecPresets()[0]
	sp.Seed = (1 << 62) + 12345
	canon, err := MarshalCanonical(&sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(canon)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != sp.Seed {
		t.Fatalf("seed corrupted by canonicalization: %d → %d", sp.Seed, back.Seed)
	}
}

// TestDecodeSpecStrict: unknown fields, foreign versions, and trailing
// documents are rejected; a missing version is normalized to current.
func TestDecodeSpecStrict(t *testing.T) {
	base := `{"seed":1,"scheme":"powertcp","topo":{"kind":"star","hosts":4},"traffic":[{"kind":"permutation"}],"horizon_us":100}`
	sp, err := DecodeSpec([]byte(base))
	if err != nil {
		t.Fatalf("pre-versioning document rejected: %v", err)
	}
	if sp.V != SpecVersion {
		t.Fatalf("missing version normalized to %d, want %d", sp.V, SpecVersion)
	}
	for name, doc := range map[string]string{
		"unknown field":   `{"v":1,"seed":1,"scheme":"powertcp","topo":{"kind":"star"},"horizon_us":1,"bogus":true}`,
		"unknown nested":  `{"v":1,"seed":1,"scheme":"powertcp","topo":{"kind":"star","racks":2},"horizon_us":1}`,
		"foreign version": `{"v":99,"seed":1,"scheme":"powertcp","topo":{"kind":"star"},"horizon_us":1}`,
		"trailing data":   base + `{"v":1}`,
	} {
		if _, err := DecodeSpec([]byte(doc)); err == nil {
			t.Errorf("%s accepted, want error", name)
		}
	}
}

// TestSpecKeyDiscriminates: the run identity hash separates spec, seed,
// and partition count.
func TestSpecKeyDiscriminates(t *testing.T) {
	sp := SpecPresets()[0]
	k1, err := SpecKey(&sp, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := SpecKey(&sp, 2, 1)
	k3, _ := SpecKey(&sp, 1, 2)
	other := sp
	other.HorizonUS++
	k4, _ := SpecKey(&other, 1, 1)
	seen := map[string]string{k1: "base"}
	for name, k := range map[string]string{"seed": k2, "parts": k3, "spec": k4} {
		if prev, dup := seen[k]; dup {
			t.Errorf("SpecKey collision between %s and %s variants", prev, name)
		}
		seen[k] = name
	}
	again, _ := SpecKey(&sp, 1, 1)
	if again != k1 {
		t.Errorf("SpecKey not stable: %s vs %s", k1, again)
	}
}
