package scenario

import (
	"bytes"
	"testing"
)

// buildResult populates a Result with scalars inserted in the given
// order; the encoded bytes must not depend on it.
func buildResult(names []string) *Result {
	r := &Result{Experiment: "incast", Scheme: "powertcp", Seed: 7, Label: "demo"}
	for i, n := range names {
		r.SetScalar(n, float64(i)*1.5+0.25)
	}
	r.AddSeries(Series{
		Name: "queue_kb", XLabel: "time_us",
		Points: []SeriesPoint{{X: 0, V: 1}, {X: 20, V: 2.5}},
	})
	return r
}

// TestResultEncodingByteDeterministic is the regression test behind the
// resultorder analyzer: encoding the same Result twice — and encoding
// two Results whose scalar maps were populated in different orders —
// must produce identical bytes, for both encoders. A map-ordering leak
// in either encoder shows up here without needing a full golden run.
func TestResultEncodingByteDeterministic(t *testing.T) {
	forward := buildResult([]string{"avg_goodput_gbps", "engine_steps", "peak_queue_kb", "p99_fct_us"})
	// Same scalars, reversed insertion order: the map's internal layout
	// (and therefore its iteration order) differs.
	backward := buildResult([]string{"p99_fct_us", "peak_queue_kb", "engine_steps", "avg_goodput_gbps"})
	// Note buildResult derives values from insertion position; align them.
	for n := range backward.Scalars {
		backward.Scalars[n] = forward.Scalars[n]
	}

	type encoder struct {
		name   string
		encode func(*Result, *bytes.Buffer) error
	}
	encoders := []encoder{
		{"json", func(r *Result, b *bytes.Buffer) error { return r.EncodeJSON(b) }},
		{"tsv", func(r *Result, b *bytes.Buffer) error { return r.EncodeTSV(b) }},
	}
	for _, enc := range encoders {
		var first, second, other bytes.Buffer
		if err := enc.encode(forward, &first); err != nil {
			t.Fatalf("%s: %v", enc.name, err)
		}
		if err := enc.encode(forward, &second); err != nil {
			t.Fatalf("%s: %v", enc.name, err)
		}
		if err := enc.encode(backward, &other); err != nil {
			t.Fatalf("%s: %v", enc.name, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: encoding the same Result twice produced different bytes", enc.name)
		}
		if !bytes.Equal(first.Bytes(), other.Bytes()) {
			t.Errorf("%s: scalar insertion order leaked into the encoding:\n%s\nvs\n%s",
				enc.name, first.Bytes(), other.Bytes())
		}
	}
}

// TestResultSetEncodingByteDeterministic covers the suite-level
// encoders the figure pipeline uses.
func TestResultSetEncodingByteDeterministic(t *testing.T) {
	rs := []*Result{
		buildResult([]string{"a", "b", "c"}),
		buildResult([]string{"c", "b", "a"}),
	}
	var first, second bytes.Buffer
	if err := EncodeJSONResults(&first, rs); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSONResults(&second, rs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("EncodeJSONResults is not byte-deterministic")
	}
	first.Reset()
	second.Reset()
	if err := EncodeTSVResults(&first, rs); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTSVResults(&second, rs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("EncodeTSVResults is not byte-deterministic")
	}
}
