package scenario

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/rdcn"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Env is the built run a Scenario executes in: the fabric (a Lab for
// switched topologies, a rotor network for RotorTopology), the resolved
// fabric metadata, and the flows launched so far. Probes receive it on
// Install and Finalize.
type Env struct {
	Scenario *Scenario
	Scheme   Scheme
	Seed     int64
	Fabric   Fabric
	// Lab is the switched-topology harness (nil for RotorTopology).
	Lab *Lab
	// Rotor is the reconfigurable DCN (nil otherwise).
	Rotor *rdcn.Network
	// Horizon is the absolute run end.
	Horizon sim.Time
	// Launched lists every launched flow in launch order.
	Launched []LaunchedFlow
	// Hybrid is the fluid/packet coupler, created lazily when the first
	// fluid-fidelity component launches (nil on all-packet runs).
	Hybrid *hybrid.Coupler

	// wrapAlg, when set by a probe's BeforeTraffic hook, interposes on
	// every per-flow algorithm (monitoring probes).
	wrapAlg func(i int, alg cc.Algorithm) cc.Algorithm
}

// Eng returns the simulation engine of the built fabric — on a
// partitioned network, the control engine probes and routing events
// schedule on.
func (env *Env) Eng() *sim.Engine {
	if env.Rotor != nil {
		return env.Rotor.Eng
	}
	return env.Lab.Net.Eng
}

// Steps reports the total events executed by the run across every
// engine driving the fabric (one engine serially; control plus
// partition engines — an identical total — when partitioned).
func (env *Env) Steps() uint64 {
	if env.Rotor != nil {
		return env.Rotor.Eng.Steps()
	}
	return env.Lab.Net.Steps()
}

// TrafficPreparer is an optional Probe refinement: BeforeTraffic runs
// after the fabric is built but before any flow launches, the hook
// monitoring probes use to interpose on per-flow algorithms.
type TrafficPreparer interface {
	BeforeTraffic(env *Env) error
}

// Run executes a Scenario: build the topology, launch every traffic
// component in order, schedule the event timeline, install the probes,
// drive the engine to the horizon, and let each probe finalize into the
// Result envelope. The run owns an isolated engine, so distinct
// scenarios may Run concurrently.
//
// Run is the unsupervised composition of Prepare → DriveTo(horizon) →
// Finish → Release. Supervised callers (internal/guard) use the pieces
// directly so they can slice the drive at budget checkpoints; the
// composed behavior — and the Result bytes at a fixed seed — are
// identical either way.
func Run(sc Scenario) (*Result, error) {
	p, err := Prepare(sc)
	if err != nil {
		return nil, err
	}
	p.DriveTo(p.Horizon())
	res, err := p.Finish()
	// Deliberately not deferred: a panic during the drive or finalize
	// must NOT recycle the lab's buffers into the scratch pool (the
	// engine and packet free lists are in an unknown state mid-unwind).
	// The unwound lab falls to the garbage collector instead; typed
	// error returns are safe to recycle.
	p.Release()
	return res, err
}

// Prepared is a built, launched, probe-installed run that has not been
// driven yet: the seam run supervision needs between "set the world up"
// and "turn the crank". The caller drives the engine with DriveTo —
// once to the horizon for an unsupervised run, or in sim-time slices
// with budget checks between them — then composes the Result with
// Finish and recycles the lab with Release.
type Prepared struct {
	env      *Env
	released bool
}

// Prepare builds and arms a Scenario without executing any simulated
// event: topology, traffic launches, event timeline, probe
// installation. On error the partially built lab is recycled; on a
// panic (a model bug in a builder or probe) nothing is recycled and the
// lab falls to the garbage collector, keeping the scratch pool clean.
func Prepare(sc Scenario) (*Prepared, error) {
	if sc.Topology == nil {
		return nil, fmt.Errorf("scenario: no topology")
	}
	env := &Env{Scenario: &sc, Scheme: sc.Scheme, Seed: sc.Seed}
	if err := sc.Topology.build(env); err != nil {
		return nil, err
	}
	p := &Prepared{env: env}
	if err := p.setup(); err != nil {
		p.Release()
		return nil, err
	}
	return p, nil
}

// setup is the launch/schedule/install phase of Prepare, split out so
// Prepare can recycle the lab on any error path.
func (p *Prepared) setup() error {
	env := p.env
	sc := env.Scenario
	if env.Lab != nil {
		// Switched topologies launch through the lab, which needs either
		// the HOMA transport or a per-flow algorithm builder.
		if !sc.Scheme.IsHoma() && sc.Scheme.Alg == nil {
			return fmt.Errorf("scenario: scheme %q provides no per-flow algorithm for a switched topology",
				sc.Scheme.Name)
		}
	}
	// A topology that derives its own horizon (RotorTopology's Weeks)
	// keeps it; Until drives everything else.
	if env.Horizon == 0 && sc.Until > 0 {
		env.Horizon = sim.Time(sc.Until)
	}
	if env.Horizon <= 0 {
		return fmt.Errorf("scenario: no run horizon (set Until)")
	}

	for _, pr := range sc.Probes {
		if tp, ok := pr.(TrafficPreparer); ok {
			if err := tp.BeforeTraffic(env); err != nil {
				return err
			}
		}
	}
	for _, tr := range sc.Traffic {
		if err := env.launchComponent(tr, 0); err != nil {
			return err
		}
	}
	if env.Hybrid != nil {
		// The coupler's exchange ticks are their own causal root, so the
		// tick chain's canonical keys do not depend on how many flows or
		// probes the scenario also schedules.
		env.Eng().SetOrigin(originHybridKey)
		env.Hybrid.Start()
	}

	if sc.Events.Reconverge < 0 {
		return fmt.Errorf("scenario: negative reconvergence delay %v", sc.Events.Reconverge)
	}
	var links []route.LinkEvent
	for _, ev := range sc.Events.Events {
		if err := ev.apply(env, &links); err != nil {
			return err
		}
	}
	if len(links) > 0 {
		// Routing events are a causal root on the control engine; the
		// explicit origin makes their canonical keys identical whether
		// that engine is the only one (serial) or the psim control engine.
		env.Eng().SetOrigin(originRouteKey)
		env.Lab.Net.Router.Schedule(links, sc.Events.Reconverge)
	}

	for i, pr := range sc.Probes {
		// Each probe is its own causal root (samplers it installs descend
		// from it), keyed by probe index.
		env.Eng().SetOrigin(originProbeKey | uint64(i))
		if err := pr.Install(env); err != nil {
			return err
		}
	}
	return nil
}

// Horizon returns the absolute end time of the run.
func (p *Prepared) Horizon() sim.Time { return p.env.Horizon }

// Env exposes the built run environment (fabric, launched flows,
// engines) for probes-adjacent tooling; the supervised drive loop only
// needs the methods on Prepared itself.
func (p *Prepared) Env() *Env { return p.env }

// DriveTo advances the simulation to time t (clamped at the horizon).
// Driving in slices is byte-identical to one call at the horizon: on a
// serial engine consecutive RunUntil calls compose exactly, and the
// partitioned fabric's barrier protocol terminates each slice with
// every engine's clock at the slice end, so the next slice resumes the
// identical event order. A tripped run (Trip non-nil) stops advancing.
func (p *Prepared) DriveTo(t sim.Time) {
	if t > p.env.Horizon {
		t = p.env.Horizon
	}
	if p.env.Lab != nil && p.env.Lab.Net.PSim != nil {
		// Partitioned: the conservative-sync fabric drives the partition
		// engines in parallel and the control engine between slices; the
		// per-partition completion records merge back into the exact
		// serial append order in Finish.
		p.env.Lab.Net.PSim.Run(t)
	} else {
		p.env.Eng().RunUntil(t)
	}
}

// ArmLimits installs in-loop engine limits (sim.Engine.SetLimits) on
// every engine driving the fabric: the control/serial engine and, when
// partitioned, each partition engine. stopSteps is a PER-ENGINE hard
// backstop — deterministic but partition-dependent — so supervised
// budget accounting compares aggregate Steps() at sim-time checkpoints
// instead and sets this cap far above the real budget (see
// internal/guard).
func (p *Prepared) ArmLimits(stopSteps, maxSameInstant uint64) {
	p.env.Eng().SetLimits(stopSteps, maxSameInstant)
	if p.env.Lab != nil {
		for _, e := range p.env.Lab.Net.Engs {
			e.SetLimits(stopSteps, maxSameInstant)
		}
	}
}

// Trip reports the in-loop limit stop that froze the run, or nil while
// it is healthy. On a partitioned fabric the earliest refused event in
// canonical order is returned (deterministic even when several
// partitions trip in one barrier round).
func (p *Prepared) Trip() *sim.Trip {
	if p.env.Lab != nil && p.env.Lab.Net.PSim != nil {
		return p.env.Lab.Net.PSim.Tripped()
	}
	return p.env.Eng().Tripped()
}

// Steps reports the events executed so far across every engine driving
// the fabric. At a given sim-time checkpoint the total is
// partition-count-invariant: the partitioned fabric fires exactly the
// serial event set below any barrier time.
func (p *Prepared) Steps() uint64 { return p.env.Steps() }

// LivePackets reports the packets currently checked out of the fabric's
// pools — the live-object watermark of the guard pool budget. Summed
// across partition pools the count at a sim-time checkpoint is
// partition-count-invariant. (With packet pooling globally disabled —
// a test-only mode — pools count nothing and this reports zero.)
func (p *Prepared) LivePackets() uint64 {
	if p.env.Rotor != nil {
		return p.env.Rotor.Pool.Live()
	}
	if pools := p.env.Lab.Net.Pools; pools != nil {
		var n uint64
		for _, pl := range pools {
			n += pl.Live()
		}
		return n
	}
	return p.env.Lab.Net.Pool.Live()
}

// Finish merges partitioned completion records and finalizes every
// probe into the Result envelope. Call it once, after the final
// DriveTo.
func (p *Prepared) Finish() (*Result, error) {
	env := p.env
	sc := env.Scenario
	if env.Lab != nil && env.Lab.Net.PSim != nil {
		env.Lab.mergeRecords()
	}
	res := &Result{Experiment: sc.Name, Scheme: sc.Scheme.Name, Seed: sc.Seed}
	for _, pr := range sc.Probes {
		if err := pr.Finalize(env, res); err != nil {
			return nil, err
		}
	}
	if _, ok := res.Scalars["engine_steps"]; !ok {
		res.SetScalar("engine_steps", float64(env.Steps()))
	}
	return res, nil
}

// Release recycles the lab's warmed buffers into the scratch pool
// (idempotent; a no-op for rotor runs, which have no lab). Never call
// it after a panic on the run path — see Run.
func (p *Prepared) Release() {
	if p.released {
		return
	}
	p.released = true
	if p.env.Lab != nil {
		p.env.Lab.Release()
	}
}

// launchComponent generates one traffic component's trace and launches
// it, applying the component's scheme override if present. shift moves
// every start time (InjectTraffic events). Components marked Fluid
// divert to the hybrid coupler instead of launching flows.
func (env *Env) launchComponent(wrapped Traffic, shift sim.Duration) error {
	tr, schemeName, hasOverride, fd := unwrapTraffic(wrapped)
	var override Scheme
	if hasOverride {
		var err error
		if override, err = resolveOverride(schemeName, env.Scheme); err != nil {
			return err
		}
		if env.Rotor != nil {
			return fmt.Errorf("scenario: traffic-class schemes are not supported on the rotor topology")
		}
	}
	if fd == Fluid {
		law := override
		if !hasOverride {
			law = env.Scheme
		}
		return env.launchFluid(tr, law, shift)
	}
	flows, err := tr.generate(env.Fabric, env.Seed)
	if err != nil {
		return err
	}
	if shift > 0 {
		for i := range flows {
			flows[i].Start = flows[i].Start.Add(shift)
		}
	}
	// Every component's trace passes one sanity gate: sizes must be
	// positive (or the Unbounded sentinel) and starts non-negative —
	// malformed values the fuzzlab shrinker legitimately produces at
	// boundaries must error here, not corrupt transport state downstream.
	for _, f := range flows {
		if f.Size != Unbounded && f.Size <= 0 {
			return fmt.Errorf("scenario: flow %d→%d has non-positive size %d (use Unbounded for endless flows)",
				f.Src, f.Dst, f.Size)
		}
		if f.Start < 0 {
			return fmt.Errorf("scenario: flow %d→%d starts at negative time %v", f.Src, f.Dst, f.Start)
		}
	}
	if env.Rotor != nil {
		return env.launchRotor(tr, flows)
	}
	for _, f := range flows {
		launch := f
		if launch.Size == Unbounded {
			launch.Size = env.Fabric.UnboundedSize
		}
		var alg cc.Algorithm
		if hasOverride {
			alg = override.Alg()
		} else if env.wrapAlg != nil && !env.Scheme.IsHoma() {
			alg = env.Scheme.Alg()
		}
		if alg != nil && env.wrapAlg != nil {
			alg = env.wrapAlg(len(env.Launched), alg)
		}
		id := env.Lab.LaunchAlg(launch, alg)
		env.Launched = append(env.Launched, LaunchedFlow{Flow: f, ID: id})
	}
	return nil
}

// launchRotor launches a component on the reconfigurable DCN. Per-flow
// algorithms are built per network (reTCP needs the rotor schedule);
// reTCP's fair-share accounting sees the component's flow count.
func (env *Env) launchRotor(tr Traffic, flows []workload.Flow) error {
	if err := RotorSupports(env.Scheme); err != nil {
		return err
	}
	net := env.Rotor
	spt := env.Fabric.HostsPerRack
	for _, f := range flows {
		if f.Src/spt == f.Dst/spt {
			return fmt.Errorf("scenario: rotor flows must cross racks (src %d, dst %d)", f.Src, f.Dst)
		}
		src := net.HostsOfTor(f.Src / spt)[f.Src%spt]
		dst := net.HostsOfTor(f.Dst / spt)[f.Dst%spt]
		size := f.Size
		if size == Unbounded {
			size = env.Fabric.UnboundedSize
		}
		alg := rotorAlg(env.Scheme, net, f.Src/spt, f.Dst/spt, len(flows))
		if env.wrapAlg != nil {
			alg = env.wrapAlg(len(env.Launched), alg)
		}
		id := net.NextFlowID()
		src.StartFlow(id, dst.ID(), size, alg, f.Start)
		env.Launched = append(env.Launched, LaunchedFlow{Flow: f, ID: id})
	}
	return nil
}

// RotorSupports restricts rotor runs to the schemes rotorAlg can
// actually build — anything else would silently fall back to HPCC. It
// is the single source of the Fig. 8 competitor list; the exp rdcn
// preset's Supports check delegates here.
func RotorSupports(scheme Scheme) error {
	switch scheme.Kind {
	case KindPowerTCP, KindReTCP:
		return nil
	case KindCC:
		if scheme.Name == HPCC {
			return nil
		}
	}
	return fmt.Errorf("scenario: the rotor topology does not support scheme %q (supported: %s, %s, retcp-<µs>)",
		scheme.Name, PowerTCP, HPCC)
}

// rotorAlg builds the per-flow algorithm for a rotor-network run.
// PowerTCP and HPCC limit window updates to once per RTT for the fair
// comparison with reTCP (§5); reTCP is built against the network's
// rotor schedule and the flow count sharing the monitored circuit.
func rotorAlg(scheme Scheme, net *rdcn.Network, srcTor, dstTor, flowsSharing int) cc.Algorithm {
	switch scheme.Kind {
	case KindPowerTCP:
		return core.New(core.Config{Gamma: scheme.Gamma, UpdatePerRTT: true})
	case KindReTCP:
		return &rdcn.ReTCP{
			Sched:        net.Sched,
			SrcTor:       srcTor,
			DstTor:       dstTor,
			Prebuffer:    scheme.PrebufferFor,
			PacketRate:   net.Cfg.PacketRate,
			CircuitRate:  net.Cfg.CircuitRate,
			FlowsSharing: flowsSharing,
		}
	default: // hpcc
		return cc.NewHPCC()
	}
}
