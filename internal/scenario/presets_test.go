package scenario

import "testing"

// TestPresetsRun compiles and executes every preset serially: the
// presets double as powersimd's smoke workload and README examples, so
// each must be a complete, runnable request body — not merely valid
// JSON.
func TestPresetsRun(t *testing.T) {
	for _, sp := range SpecPresets() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			sc, err := sp.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Scalar("engine_steps") <= 0 {
				t.Fatal("preset run executed no events")
			}
		})
	}
}
