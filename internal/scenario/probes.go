package scenario

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Probe is the measurement axis of a Scenario. Install runs after
// traffic and events are scheduled (attach samplers here); Finalize
// runs after the engine reaches the horizon and writes scalars and
// series into the shared Result envelope. Probes that must interpose
// before any flow launches additionally implement TrafficPreparer.
type Probe interface {
	Install(env *Env) error
	Finalize(env *Env, res *Result) error
}

// ReceivedTotal returns the payload bytes received by host i on any
// fabric.
func (env *Env) ReceivedTotal(i int) int64 {
	if env.Rotor != nil {
		spt := env.Fabric.HostsPerRack
		return env.Rotor.HostsOfTor(i / spt)[i%spt].ReceivedTotal()
	}
	return env.Lab.ReceivedTotal(i)
}

// until resolves a probe's sampling end: 0 means the run horizon.
func (env *Env) until(d sim.Duration) sim.Time {
	if d > 0 {
		return sim.Time(d)
	}
	return env.Horizon
}

// GoodputProbe samples the aggregate receive rate of a host set and
// emits it as a time series plus a mean-goodput scalar.
type GoodputProbe struct {
	// Name labels the series ("goodput_gbps" when empty) and prefixes
	// the scalar.
	Name string
	// Receivers restricts the sampled hosts (nil means every host).
	Receivers []HostRef
	Period    sim.Duration
	// Until bounds sampling; 0 samples to the horizon.
	Until sim.Duration

	hosts []int
	t     []sim.Time
	gbps  []float64
}

func (p *GoodputProbe) Install(env *Env) error {
	if p.Period <= 0 {
		return fmt.Errorf("scenario: goodput probe needs a sampling Period")
	}
	if p.Receivers == nil {
		for i := 0; i < env.Fabric.Hosts; i++ {
			p.hosts = append(p.hosts, i)
		}
	} else {
		for _, r := range p.Receivers {
			i, err := r.Resolve(env.Fabric)
			if err != nil {
				return err
			}
			p.hosts = append(p.hosts, i)
		}
	}
	var last int64
	SampleEvery(env.Eng(), p.Period, env.until(p.Until), func(now sim.Time) {
		var cur int64
		for _, h := range p.hosts {
			cur += env.ReceivedTotal(h)
		}
		p.t = append(p.t, now)
		p.gbps = append(p.gbps, stats.Gbps(cur-last, p.Period))
		last = cur
	})
	return nil
}

func (p *GoodputProbe) Finalize(env *Env, res *Result) error {
	name := p.Name
	if name == "" {
		name = "goodput_gbps"
	}
	var sum float64
	for _, g := range p.gbps {
		sum += g
	}
	if n := len(p.gbps); n > 0 {
		res.SetScalar(name+"_avg", sum/float64(n))
	}
	res.AddSeries(TimeSeries(name, p.t, p.gbps))
	return nil
}

// QueueProbe samples one switch egress queue and emits its depth as a
// time series plus a peak scalar.
type QueueProbe struct {
	// Name labels the series ("queue_kb" when empty).
	Name   string
	Switch SwitchRef
	Port   int
	Period sim.Duration
	Until  sim.Duration

	t  []sim.Time
	kb []float64
}

func (p *QueueProbe) Install(env *Env) error {
	if p.Period <= 0 {
		return fmt.Errorf("scenario: queue probe needs a sampling Period")
	}
	resolver, ok := env.Scenario.Topology.(switchResolver)
	if !ok || env.Lab == nil {
		return fmt.Errorf("scenario: queue probe needs a switched topology")
	}
	si, err := resolver.resolveSwitch(p.Switch, env)
	if err != nil {
		return err
	}
	if si < 0 || si >= len(env.Lab.Net.Switches) {
		return fmt.Errorf("scenario: queue probe switch %d out of range", si)
	}
	ports := env.Lab.Net.Switches[si].Ports()
	if p.Port < 0 || p.Port >= len(ports) {
		return fmt.Errorf("scenario: queue probe port %d out of range (switch %d has %d ports)", p.Port, si, len(ports))
	}
	port := ports[p.Port]
	SampleEvery(env.Eng(), p.Period, env.until(p.Until), func(now sim.Time) {
		p.t = append(p.t, now)
		p.kb = append(p.kb, float64(port.QueueBytes())/1024)
	})
	return nil
}

func (p *QueueProbe) Finalize(env *Env, res *Result) error {
	name := p.Name
	if name == "" {
		name = "queue_kb"
	}
	var peak float64
	for _, q := range p.kb {
		if q > peak {
			peak = q
		}
	}
	res.SetScalar(name+"_peak", peak)
	res.AddSeries(TimeSeries(name, p.t, p.kb))
	return nil
}

// FCTProbe bins the completed flows' slowdowns (FCT over ideal transfer
// time) into the paper's size bins and records completion counts and
// class percentiles.
type FCTProbe struct{}

func (p FCTProbe) Install(env *Env) error {
	if env.Lab == nil {
		return fmt.Errorf("scenario: FCT probe needs a switched topology (rotor hosts run open-ended flows)")
	}
	return nil
}

func (p FCTProbe) Finalize(env *Env, res *Result) error {
	res.SetScalar("started", float64(env.Lab.Started()))
	res.SetScalar("completed", float64(len(env.Lab.Records)))
	res.SetScalar("short_p999", env.Lab.ClassP(99.9, 0, stats.ShortFlowMax))
	res.SetScalar("long_p999", env.Lab.ClassP(99.9, stats.LongFlowMin, 0))
	binned := env.Lab.Binned()
	s := Series{Name: "p999_slowdown_by_size", XLabel: "size_bytes"}
	for i, v := range binned.Row(99.9) {
		s.Points = append(s.Points, SeriesPoint{X: float64(stats.FlowSizeBins[i]), V: v})
	}
	res.AddSeries(s)
	return nil
}

// CwndProbe records the congestion-window and rate trajectory of one
// launched flow (by launch index) through the monitor interposer — the
// data behind cwnd-over-time plots.
type CwndProbe struct {
	// FlowIndex selects the flow in launch order.
	FlowIndex int
	// Every keeps one sample per period (0 records every ACK).
	Every sim.Duration

	mon *monitor.CC
}

// BeforeTraffic implements TrafficPreparer: it interposes on the
// selected flow's algorithm before any launch.
func (p *CwndProbe) BeforeTraffic(env *Env) error {
	if env.Scheme.IsHoma() {
		return fmt.Errorf("scenario: cwnd probe needs a per-flow algorithm; scheme %q is HOMA", env.Scheme.Name)
	}
	prev := env.wrapAlg
	env.wrapAlg = func(i int, alg cc.Algorithm) cc.Algorithm {
		if prev != nil {
			alg = prev(i, alg)
		}
		if i == p.FlowIndex && p.mon == nil {
			p.mon = monitor.Wrap(alg, p.Every)
			return p.mon
		}
		return alg
	}
	return nil
}

func (p *CwndProbe) Install(env *Env) error { return nil }

func (p *CwndProbe) Finalize(env *Env, res *Result) error {
	if p.mon == nil {
		return fmt.Errorf("scenario: cwnd probe flow index %d was never launched", p.FlowIndex)
	}
	cwnd := Series{Name: fmt.Sprintf("flow%d_cwnd_bytes", p.FlowIndex), XLabel: "time_us"}
	rate := Series{Name: fmt.Sprintf("flow%d_rate_gbps", p.FlowIndex), XLabel: "time_us"}
	for _, s := range p.mon.Samples {
		us := s.At.Seconds() * 1e6
		cwnd.Points = append(cwnd.Points, SeriesPoint{X: us, V: s.Cwnd})
		rate.Points = append(rate.Points, SeriesPoint{X: us, V: s.Rate.InGbps()})
	}
	res.AddSeries(cwnd)
	res.AddSeries(rate)
	return nil
}
