package scenario

// SpecPresets returns one small, fully specified Spec per registered
// experiment family (internal/exp's registry: asymmetry, failover,
// fairness, incast, load-sweep, permutation, rdcn, websearch) plus the
// hybrid co-simulation preset (fluid background under packet
// foreground), sorted by name. They serve three masters:
//
//   - The canonical-encoding golden test pins each preset's canonical
//     bytes and SpecKey, so the cache-key encoding cannot drift
//     silently — any byte-level change to the wire form fails the pin
//     and forces a SpecVersion bump decision.
//   - powersimd's benchmarks and smoke tests submit them as a
//     realistic repeated figure workload.
//   - They are copy-paste request bodies for the README quickstart.
//
// The presets are figure-shaped miniatures, not the figure configs
// themselves: topologies are scaled down so a preset runs in
// milliseconds. The rdcn preset approximates the rotor experiment with
// its nearest packet-switched equivalent (an all-to-all permutation on
// a leaf-spine), because the reconfigurable-topology vocabulary is not
// expressible as a Spec; it exists to exercise the encoding, and is
// documented as such.
func SpecPresets() []Spec {
	return []Spec{
		{
			V:      SpecVersion,
			Name:   "asymmetry",
			Seed:   1,
			Scheme: "powertcp",
			Topo:   TopoSpec{Kind: "leafspine", Leaves: 4, Spines: 2, ServersPerLeaf: 4},
			Traffic: []TrafficSpec{
				{Kind: "rackpairs", FromRack: &RefSpec{Kind: "host", I: 0}, ToRack: &RefSpec{Kind: "host", I: 2}, Count: 4, Size: 200_000},
			},
			HorizonUS: 400,
		},
		{
			V:      SpecVersion,
			Name:   "failover",
			Seed:   2,
			Scheme: "powertcp",
			Topo:   TopoSpec{Kind: "leafspine", Leaves: 2, Spines: 2, ServersPerLeaf: 4},
			Traffic: []TrafficSpec{
				{Kind: "rackpairs", FromRack: &RefSpec{Kind: "host", I: 0}, ToRack: &RefSpec{Kind: "host", I: 1}, Count: 4, Size: -1},
			},
			Events: []EventSpec{
				{Kind: "fail", AtUS: 100, A: &SwitchRefSpec{Tier: "leaf", I: 0}, B: &SwitchRefSpec{Tier: "spine", I: 0}},
				{Kind: "restore", AtUS: 250, A: &SwitchRefSpec{Tier: "leaf", I: 0}, B: &SwitchRefSpec{Tier: "spine", I: 0}},
			},
			ReconvergeUS: 20,
			HorizonUS:    400,
		},
		{
			V:      SpecVersion,
			Name:   "fairness",
			Seed:   3,
			Scheme: "powertcp",
			Topo:   TopoSpec{Kind: "star", Hosts: 8},
			Traffic: []TrafficSpec{
				{Kind: "staggered", Receiver: &RefSpec{Kind: "from_end", I: 1}, FirstSender: &RefSpec{Kind: "host", I: 0}, Count: 4, StaggerUS: 50, Sizes: []int64{-1, -1, -1, -1}},
			},
			HorizonUS: 500,
		},
		{
			// Hybrid co-simulation: an analytically integrated fluid
			// background (poisson websearch load) under packet-fidelity
			// foreground flows — the internal/hybrid preset.
			V:      SpecVersion,
			Name:   "hybrid",
			Seed:   9,
			Scheme: "powertcp",
			Topo:   TopoSpec{Kind: "leafspine", Leaves: 4, Spines: 2, ServersPerLeaf: 4},
			Traffic: []TrafficSpec{
				{Kind: "poisson", Load: 0.4, GenHorizonUS: 300, Fidelity: "fluid"},
				{Kind: "flows", Flows: []FlowEntry{
					{Src: &RefSpec{Kind: "host", I: 0}, Dst: &RefSpec{Kind: "host", I: 12}, Size: 120_000},
					{StartUS: 50, Src: &RefSpec{Kind: "host", I: 5}, Dst: &RefSpec{Kind: "host", I: 9}, Size: 60_000},
				}},
			},
			HorizonUS: 400,
		},
		{
			V:      SpecVersion,
			Name:   "incast",
			Seed:   4,
			Scheme: "powertcp",
			Topo:   TopoSpec{Kind: "fattree", ServersPerTor: 2},
			Traffic: []TrafficSpec{
				{Kind: "pulse", AtUS: 10, Receiver: &RefSpec{Kind: "host", I: 0}, FanIn: 8, FlowSize: 100_000},
			},
			HorizonUS: 400,
		},
		{
			V:      SpecVersion,
			Name:   "load-sweep",
			Seed:   5,
			Scheme: "dctcp",
			Topo:   TopoSpec{Kind: "leafspine", Leaves: 4, Spines: 4, ServersPerLeaf: 2},
			Traffic: []TrafficSpec{
				{Kind: "poisson", Load: 0.4, GenHorizonUS: 200},
			},
			HorizonUS: 400,
		},
		{
			V:      SpecVersion,
			Name:   "permutation",
			Seed:   6,
			Scheme: "powertcp",
			Topo:   TopoSpec{Kind: "fattree", ServersPerTor: 2},
			Traffic: []TrafficSpec{
				{Kind: "permutation"},
			},
			HorizonUS: 300,
		},
		{
			// Packet-switched stand-in for the rotor experiment (see the
			// function comment).
			V:      SpecVersion,
			Name:   "rdcn",
			Seed:   7,
			Scheme: "hpcc",
			Topo:   TopoSpec{Kind: "leafspine", Leaves: 4, Spines: 2, ServersPerLeaf: 2},
			Traffic: []TrafficSpec{
				{Kind: "permutation", SeedOffset: 1},
			},
			HorizonUS: 300,
		},
		{
			V:      SpecVersion,
			Name:   "websearch",
			Seed:   8,
			Scheme: "powertcp",
			Topo:   TopoSpec{Kind: "fattree", ServersPerTor: 2},
			Traffic: []TrafficSpec{
				{Kind: "poisson", Load: 0.3, GenHorizonUS: 150},
				{Kind: "requests", RequestRate: 20_000, RequestSize: 20_000, FanIn: 4, GenHorizonUS: 150, SeedOffset: 2},
			},
			HorizonUS: 400,
		},
	}
}
