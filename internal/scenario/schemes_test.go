package scenario

import "testing"

// TestSchemeFamilyMatchDeterministic pins the fix for a latent
// map-iteration bug powervet's detrange analyzer found: family lookup
// used to range over the schemeFamilies map, so a name matching two
// prefixes would resolve to whichever the runtime visited first.
// Prefixes are now tried in sorted order; an ambiguous name must always
// resolve to the lexicographically smallest matching prefix.
func TestSchemeFamilyMatchDeterministic(t *testing.T) {
	// The two factories produce schemes distinguished by Gamma (Name is
	// overwritten with the requested name by ResolveScheme).
	mk := func(gamma float64) SchemeFactory {
		return func(name string) (Scheme, error) {
			s, err := ResolveScheme(PowerTCP)
			if err != nil {
				return Scheme{}, err
			}
			s.Gamma = gamma
			return s, nil
		}
	}
	const short, long = 0.111, 0.222
	if err := RegisterSchemeFamily("zzfam-", mk(short)); err != nil {
		t.Fatal(err)
	}
	if err := RegisterSchemeFamily("zzfam-long", mk(long)); err != nil {
		t.Fatal(err)
	}
	// "zzfam-long-7" matches both registered prefixes. Across many
	// lookups the winner must be stable and must be the sorted-first
	// prefix; before the fix this flipped with map iteration order.
	for i := 0; i < 50; i++ {
		s, err := ResolveScheme("zzfam-long-7")
		if err != nil {
			t.Fatal(err)
		}
		if s.Gamma != short {
			t.Fatalf("lookup %d resolved to family gamma=%v, want the sorted-first prefix zzfam- (gamma=%v)", i, s.Gamma, short)
		}
	}
}
