package scenario

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// rejectScenario wraps one malformed axis value into a minimal
// otherwise-valid scenario.
func rejectScenario(mutate func(*Scenario)) Scenario {
	sc := Scenario{
		Name:     "reject",
		Seed:     1,
		Topology: LeafSpineTopology{Leaves: 2, Spines: 2, ServersPerLeaf: 2},
		Traffic: []Traffic{Flows{List: []FlowSpec{{
			Src: Host(0), Dst: RackStart(1), Size: 10_000,
		}}}},
		Until: 100 * sim.Microsecond,
	}
	mutate(&sc)
	return sc
}

// TestRunRejectsMalformedScenarios pins that every malformed selector,
// topology dim, flow value, and event the fuzzlab generator/shrinker
// can legitimately produce is rejected with an error — never a panic.
// Each case names the substring its error must carry, so a rejection
// cannot silently migrate to a different (possibly wrong) code path.
func TestRunRejectsMalformedScenarios(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string
	}{
		{"no topology", func(sc *Scenario) { sc.Topology = nil }, "no topology"},
		{"no horizon", func(sc *Scenario) { sc.Until = 0 }, "no run horizon"},
		{"star too small", func(sc *Scenario) { sc.Topology = StarTopology{Hosts: 1} }, "≥2 hosts"},
		{"star negative rate", func(sc *Scenario) {
			sc.Topology = StarTopology{Hosts: 4, HostRate: -units.Gbps}
		}, "negative"},
		{"fat-tree negative servers", func(sc *Scenario) {
			sc.Topology = FatTreeTopology{ServersPerTor: -1}
		}, "ServersPerTor -1 is negative"},
		{"fat-tree negative pods", func(sc *Scenario) {
			sc.Topology = FatTreeTopology{ServersPerTor: 2, Pods: -2}
		}, "Pods -2 is negative"},
		{"fat-tree negative partitions", func(sc *Scenario) {
			sc.Topology = FatTreeTopology{ServersPerTor: 2, Partitions: -4}
		}, "Partitions -4 is negative"},
		{"leaf-spine negative leaves", func(sc *Scenario) {
			sc.Topology = LeafSpineTopology{Leaves: -1, Spines: 2, ServersPerLeaf: 2}
		}, "Leaves -1 is negative"},
		{"leaf-spine negative spine rate", func(sc *Scenario) {
			sc.Topology = LeafSpineTopology{Leaves: 2, Spines: 2, ServersPerLeaf: 2,
				SpineRates: []units.BitRate{-units.Gbps}}
		}, "rate"},
		{"leaf-spine bad routing", func(sc *Scenario) {
			sc.Topology = LeafSpineTopology{Leaves: 2, Spines: 2, ServersPerLeaf: 2, Routing: "spray"}
		}, "spray"},
		{"rotor one tor", func(sc *Scenario) {
			sc.Topology = RotorTopology{Tors: 1, ServersPerTor: 2, Weeks: 1}
		}, "≥2 ToRs"},
		{"unset host ref", func(sc *Scenario) {
			sc.Traffic = []Traffic{Flows{List: []FlowSpec{{Dst: Host(1), Size: 1000}}}}
		}, "unset host reference"},
		{"host out of range", func(sc *Scenario) {
			sc.Traffic = []Traffic{Flows{List: []FlowSpec{{Src: Host(99), Dst: Host(0), Size: 1000}}}}
		}, "fabric has 4 hosts"},
		{"rack out of range", func(sc *Scenario) {
			sc.Traffic = []Traffic{Flows{List: []FlowSpec{{Src: RackStart(7), Dst: Host(0), Size: 1000}}}}
		}, "rack 7"},
		{"rack-local overflow", func(sc *Scenario) {
			// Host 2 of a 2-host rack exists globally (it is rack 1's first
			// host) but must not resolve across the rack boundary.
			sc.Traffic = []Traffic{Flows{List: []FlowSpec{{Src: RackHost(0, 2), Dst: Host(0), Size: 1000}}}}
		}, "racks hold 2 hosts"},
		{"negative rack host", func(sc *Scenario) {
			sc.Traffic = []Traffic{Flows{List: []FlowSpec{{Src: RackHost(0, -1), Dst: Host(3), Size: 1000}}}}
		}, "host -1"},
		{"zero-size flow", func(sc *Scenario) {
			sc.Traffic = []Traffic{Flows{List: []FlowSpec{{Src: Host(0), Dst: Host(2), Size: 0}}}}
		}, "non-positive size"},
		{"negative-size flow", func(sc *Scenario) {
			sc.Traffic = []Traffic{Flows{List: []FlowSpec{{Src: Host(0), Dst: Host(2), Size: -7}}}}
		}, "non-positive size"},
		{"self flow", func(sc *Scenario) {
			sc.Traffic = []Traffic{Flows{List: []FlowSpec{{Src: Host(1), Dst: Host(1), Size: 1000}}}}
		}, "to itself"},
		{"zero-host span", func(sc *Scenario) {
			sc.Traffic = []Traffic{IncastPulse{Receiver: Host(0), FanIn: 4, FlowSize: 1000,
				Senders: Span{From: Host(2), To: Host(2)}}}
		}, "no eligible senders"},
		{"zero fan-in", func(sc *Scenario) {
			sc.Traffic = []Traffic{IncastPulse{Receiver: Host(0), FanIn: 0, FlowSize: 1000}}
		}, "FanIn"},
		{"pulse zero flow size", func(sc *Scenario) {
			sc.Traffic = []Traffic{IncastPulse{Receiver: Host(0), FanIn: 2, FlowSize: 0}}
		}, "non-positive size"},
		{"negative event time", func(sc *Scenario) {
			sc.Events = Timeline{Events: []Event{LinkFail{At: -sim.Microsecond, A: Leaf(0), B: Spine(0)}}}
		}, "negative time"},
		{"negative restore time", func(sc *Scenario) {
			sc.Events = Timeline{Events: []Event{LinkRestore{At: -sim.Microsecond, A: Leaf(0), B: Spine(0)}}}
		}, "negative time"},
		{"negative inject time", func(sc *Scenario) {
			sc.Events = Timeline{Events: []Event{InjectTraffic{At: -sim.Microsecond,
				Traffic: Flows{List: []FlowSpec{{Src: Host(0), Dst: Host(2), Size: 1000}}}}}}
		}, "negative time"},
		{"negative reconverge", func(sc *Scenario) {
			sc.Events = Timeline{Reconverge: -sim.Microsecond}
		}, "reconvergence"},
		{"event switch out of range", func(sc *Scenario) {
			sc.Events = Timeline{Events: []Event{LinkFail{At: sim.Microsecond, A: Leaf(0), B: Spine(9)}}}
		}, "spine switch 9"},
		{"fluid pulse", func(sc *Scenario) {
			sc.Traffic = []Traffic{WithFidelity(Fluid, IncastPulse{Receiver: Host(0), FanIn: 2, FlowSize: 1000})}
		}, "cannot run at fluid fidelity"},
		{"fluid staggered", func(sc *Scenario) {
			sc.Traffic = []Traffic{WithFidelity(Fluid, Staggered{Receiver: Host(0), FirstSender: Host(1), Count: 2, Sizes: []int64{1000, 1000}})}
		}, "cannot run at fluid fidelity"},
		{"fluid requests", func(sc *Scenario) {
			sc.Traffic = []Traffic{WithFidelity(Fluid, IncastRequests{RequestRate: 1000, RequestSize: 1000, FanIn: 2, Horizon: 50 * sim.Microsecond})}
		}, "cannot run at fluid fidelity"},
		{"fluid with link failure", func(sc *Scenario) {
			sc.Traffic = []Traffic{WithFidelity(Fluid, sc.Traffic[0])}
			sc.Events = Timeline{Events: []Event{LinkFail{At: sim.Microsecond, A: Leaf(0), B: Spine(0)}}}
		}, "link failures"},
		{"fluid inject", func(sc *Scenario) {
			sc.Events = Timeline{Events: []Event{InjectTraffic{At: sim.Microsecond,
				Traffic: WithFidelity(Fluid, Flows{List: []FlowSpec{{Src: Host(0), Dst: Host(2), Size: 1000}}})}}}
		}, "injected traffic cannot run at fluid fidelity"},
		{"fluid partitioned", func(sc *Scenario) {
			sc.Topology = FatTreeTopology{ServersPerTor: 2, Partitions: 2}
			sc.Traffic = []Traffic{WithFidelity(Fluid, Flows{List: []FlowSpec{{Src: Host(0), Dst: Host(8), Size: 1000}}})}
		}, "serial execution"},
		{"fluid rotor", func(sc *Scenario) {
			sc.Topology = RotorTopology{Tors: 4, ServersPerTor: 2, Weeks: 2}
			sc.Traffic = []Traffic{WithFidelity(Fluid, Permutation{})}
		}, "rotor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := rejectScenario(tc.mutate)
			scheme, err := ResolveScheme("powertcp")
			if err != nil {
				t.Fatal(err)
			}
			sc.Scheme = scheme
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Run panicked instead of erroring: %v", r)
				}
			}()
			_, err = Run(sc)
			if err == nil {
				t.Fatalf("Run accepted the malformed scenario")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Run error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
