package scenario

import (
	"repro/internal/cc"
	"repro/internal/homa"
	"repro/internal/packet"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
	"repro/internal/workload"
)

// FlowRecord is one completed transfer.
type FlowRecord struct {
	Size     int64
	FCT      sim.Duration
	Slowdown float64
}

// Causal-origin key namespaces. Setup code — flow launches, probe
// installation, routing-event registration — schedules events outside
// any engine callback, so each scheduling burst sets an explicit origin
// (sim.Engine.SetOrigin) derived from a stable entity identity. The
// namespaces keep launches, probes and route schedules from colliding;
// within a namespace the entity counter (launch number, probe index)
// disambiguates. Identical origins are set on the serial engine and on
// the partitioned engines, which is what makes setup-event canonical
// keys — and therefore the whole firing order — mode-invariant.
const (
	originFlowKey   = uint64(1) << 56
	originProbeKey  = uint64(2) << 56
	originRouteKey  = uint64(3) << 56
	originHybridKey = uint64(4) << 56
)

// keyedRecord is a FlowRecord tagged with the canonical key of the
// event that produced it, for the cross-partition merge.
type keyedRecord struct {
	key sim.Key
	rec FlowRecord
}

// Lab is a built network plus the scheme-appropriate launch/collect
// plumbing shared by the experiment runners.
type Lab struct {
	Scheme  Scheme
	Net     *topo.Network
	FTCfg   topo.FatTreeConfig
	LSCfg   topo.LeafSpineConfig
	Records []FlowRecord

	started int
	scratch *runScratch
	// partRecs holds per-partition keyed record buffers on a partitioned
	// network (nil when serial): each partition's completion callbacks
	// append only to their own buffer, race-free, and mergeRecords
	// rebuilds the exact serial append order from the canonical keys.
	partRecs [][]keyedRecord
}

// labOpts assembles the switch/buffer options every lab shares. The
// scheme's DTAlpha (composed via the Alpha scheme option) overrides the
// Dynamic Thresholds factor; 0 keeps the default α=1. It also claims a
// recycled scratch, handing its warmed engine (if any) to the builder.
func (l *Lab) labOpts(seed int64, routing route.Strategy) topo.Options {
	l.scratch = getScratch()
	return topo.Options{
		BufferPerGbps: topo.TofinoBufferPerGbps,
		Alpha:         l.Scheme.DTAlpha,
		INT:           l.Scheme.INT,
		ECN:           l.Scheme.ECN,
		Queues:        l.Scheme.queueFactory(),
		Seed:          seed,
		Routing:       routing,
		Engine:        l.scratch.eng,
	}
}

// NewFatTreeLab builds the paper's fat-tree (§4.1) scaled to
// serversPerTor servers per rack under default per-flow ECMP.
func NewFatTreeLab(scheme Scheme, serversPerTor int, seed int64) *Lab {
	return NewRoutedFatTreeLab(scheme, serversPerTor, seed, nil, 0)
}

// NewRoutedFatTreeLab is NewFatTreeLab with an explicit multipath
// strategy (nil keeps per-flow ECMP) and partition count (≤1 runs
// serially; >1 shards pods across engines — see topo.Plan).
func NewRoutedFatTreeLab(scheme Scheme, serversPerTor int, seed int64, routing route.Strategy, parts int) *Lab {
	return NewConfiguredFatTreeLab(scheme,
		topo.FatTreeConfig{ServersPerTor: serversPerTor, Parts: parts}, seed, routing)
}

// NewConfiguredFatTreeLab builds a fat-tree lab from an explicit
// structural config — pods, cores, partitioning — for fabrics beyond
// the paper's default 4-pod shape (the 10k-host scale benchmarks size
// theirs this way). cfg.Opts is replaced with the lab's shared options.
func NewConfiguredFatTreeLab(scheme Scheme, cfg topo.FatTreeConfig, seed int64, routing route.Strategy) *Lab {
	l := &Lab{Scheme: scheme}
	cfg.Opts = l.labOpts(seed, routing)
	cfg = cfg.WithDefaults()
	cfg.Opts.Hosts = l.hostFactory(30 * sim.Microsecond)
	l.Net = topo.FatTree(cfg)
	l.FTCfg = cfg
	l.wireCollectors()
	return l
}

// NewStarLab builds an n-host single-switch network at 25 Gbps.
func NewStarLab(scheme Scheme, hosts int, seed int64) *Lab {
	l := &Lab{Scheme: scheme}
	cfg := topo.StarConfig{
		Hosts:    hosts,
		HostRate: 25 * units.Gbps,
		Opts:     l.labOpts(seed, nil),
	}
	cfg.Opts.Hosts = l.hostFactory(12 * sim.Microsecond)
	l.Net = topo.Star(cfg)
	l.wireCollectors()
	return l
}

// NewLeafSpineLab builds a two-tier Clos fabric under the given
// multipath strategy; cfg carries the structural knobs (leaves, spines,
// per-spine rates) and the lab fills in the shared options.
func NewLeafSpineLab(scheme Scheme, cfg topo.LeafSpineConfig, seed int64, routing route.Strategy) *Lab {
	l := &Lab{Scheme: scheme}
	cfg.Opts = l.labOpts(seed, routing)
	cfg.Opts.Hosts = l.hostFactory(16 * sim.Microsecond)
	l.Net = topo.LeafSpine(cfg)
	l.LSCfg = cfg.WithDefaults()
	l.wireCollectors()
	return l
}

// hostFactory builds scheme-appropriate hosts at the topology's base
// RTT (the paper configures τ as the fabric's maximum RTT).
func (l *Lab) hostFactory(baseRTT sim.Duration) topo.HostFactory {
	return func(eng *sim.Engine, id packet.NodeID) topo.Node {
		if l.Scheme.IsHoma() {
			return homa.NewHost(eng, id, homa.Config{
				BaseRTT:    baseRTT,
				Overcommit: l.Scheme.Overcommit,
			})
		}
		return transport.NewHost(eng, id, transport.Config{BaseRTT: baseRTT})
	}
}

// wireCollectors attaches completion callbacks on every host and moves
// the scratch's recycled buffers into the freshly built network.
func (l *Lab) wireCollectors() {
	if sc := l.scratch; sc != nil {
		l.Net.Pool.Adopt(sc.packets)
		sc.packets = nil
		l.Records = sc.records
		sc.records = nil
	}
	if l.Net.Part != nil {
		l.partRecs = make([][]keyedRecord, l.Net.Part.Parts)
	}
	for i, n := range l.Net.Hosts {
		if l.partRecs != nil {
			// Partitioned: completions land in the owning partition's
			// buffer tagged with the producing event's canonical key.
			p := l.Net.Part.HostPart[i]
			eng := l.Net.Engs[p]
			switch h := n.(type) {
			case *transport.Host:
				h.OnFlowDone = func(f *transport.Flow) { l.recordPart(p, eng, f.Size, f.FCT()) }
			case *homa.Host:
				h.OnMessageDone = func(_ uint64, size int64, fct sim.Duration) {
					l.recordPart(p, eng, size, fct)
				}
			}
			continue
		}
		switch h := n.(type) {
		case *transport.Host:
			h.OnFlowDone = func(f *transport.Flow) { l.record(f.Size, f.FCT()) }
		case *homa.Host:
			h.OnMessageDone = func(_ uint64, size int64, fct sim.Duration) {
				l.record(size, fct)
			}
		}
	}
}

func (l *Lab) record(size int64, fct sim.Duration) {
	l.Records = append(l.Records, FlowRecord{
		Size:     size,
		FCT:      fct,
		Slowdown: stats.Slowdown(fct, size, l.Net.HostRate, l.Net.BaseRTT),
	})
}

// recordPart is record for a partitioned run: called only from
// partition p's goroutine, it appends to that partition's own buffer,
// keyed by the canonical position of the completing event.
func (l *Lab) recordPart(p int, eng *sim.Engine, size int64, fct sim.Duration) {
	l.partRecs[p] = append(l.partRecs[p], keyedRecord{
		key: eng.ExecKey(),
		rec: FlowRecord{
			Size:     size,
			FCT:      fct,
			Slowdown: stats.Slowdown(fct, size, l.Net.HostRate, l.Net.BaseRTT),
		},
	})
}

// mergeRecords rebuilds Records from the per-partition buffers after a
// partitioned run. Each buffer is already ascending in canonical key
// (a partition fires its events in the serial sub-order), so a k-way
// merge by key reproduces the exact serial append order: the global
// firing order is the canonical order, and every record's key is its
// producing event's position in it.
func (l *Lab) mergeRecords() {
	if l.partRecs == nil {
		return
	}
	idx := make([]int, len(l.partRecs))
	for {
		best := -1
		for p := range l.partRecs {
			if idx[p] >= len(l.partRecs[p]) {
				continue
			}
			if best < 0 || l.partRecs[p][idx[p]].key.Less(l.partRecs[best][idx[best]].key) {
				best = p
			}
		}
		if best < 0 {
			break
		}
		l.Records = append(l.Records, l.partRecs[best][idx[best]].rec)
		idx[best]++
	}
	for p := range l.partRecs {
		l.partRecs[p] = l.partRecs[p][:0]
	}
}

// UnboundedSize returns the "runs past any window" flow size for the
// lab's scheme: the transport supports a true Unbounded marker, HOMA
// messages need a finite (but effectively infinite) length.
func (l *Lab) UnboundedSize() int64 {
	if l.Scheme.IsHoma() {
		return 1 << 33
	}
	return transport.Unbounded
}

// Launch starts one workload flow (transport flow or HOMA message) and
// returns the flow ID it was assigned.
func (l *Lab) Launch(f workload.Flow) packet.FlowID { return l.LaunchAlg(f, nil) }

// LaunchAlg is Launch with an explicit per-flow algorithm — the seam
// scenario traffic classes use to run components under their own
// scheme. nil keeps the lab scheme's algorithm; HOMA messages carry no
// per-flow algorithm and ignore it.
func (l *Lab) LaunchAlg(f workload.Flow, alg cc.Algorithm) packet.FlowID {
	l.started++
	id := l.Net.NextFlowID()
	dst := l.Net.HostID(f.Dst)
	// Each launch is a causal root: its origin key is the launch
	// counter, identical on the serial engine and on the source host's
	// partition engine, so the launch event's canonical key — and every
	// packet event descending from it — is the same at any partition
	// count.
	l.Net.HostEngine(f.Src).SetOrigin(originFlowKey | uint64(l.started))
	switch h := l.Net.Hosts[f.Src].(type) {
	case *transport.Host:
		if alg == nil {
			alg = l.Scheme.Alg()
		}
		h.StartFlow(id, dst, f.Size, alg, f.Start)
	case *homa.Host:
		h.Send(id, dst, f.Size, f.Start)
	}
	return id
}

// LaunchAll starts a whole trace.
func (l *Lab) LaunchAll(flows []workload.Flow) {
	for _, f := range flows {
		l.Launch(f)
	}
}

// Started returns the number of launched flows.
func (l *Lab) Started() int { return l.started }

// ReceivedTotal returns the payload bytes received by host i.
func (l *Lab) ReceivedTotal(i int) int64 {
	switch h := l.Net.Hosts[i].(type) {
	case *transport.Host:
		return h.ReceivedTotal()
	case *homa.Host:
		return h.ReceivedTotal()
	}
	return 0
}

// DeliveredPayload returns the raw payload bytes delivered to host i,
// retransmitted duplicates included — the endpoint-side word of the
// byte-conservation identity (ReceivedTotal deduplicates under HOMA).
func (l *Lab) DeliveredPayload(i int) int64 {
	switch h := l.Net.Hosts[i].(type) {
	case *transport.Host:
		return h.DeliveredPayload()
	case *homa.Host:
		return h.DeliveredPayload()
	}
	return 0
}

// ReceivedBytes returns the payload bytes host i received on one flow.
func (l *Lab) ReceivedBytes(i int, id packet.FlowID) int64 {
	switch h := l.Net.Hosts[i].(type) {
	case *transport.Host:
		return h.ReceivedBytes(id)
	case *homa.Host:
		return h.ReceivedBytes(id)
	}
	return 0
}

// SampleEvery invokes fn(now) at the given period until the horizon.
func SampleEvery(eng *sim.Engine, period sim.Duration, until sim.Time, fn func(now sim.Time)) {
	var tick func()
	tick = func() {
		now := eng.Now()
		if now > until {
			return
		}
		fn(now)
		eng.After(period, tick)
	}
	eng.After(0, tick)
}

// Binned summarizes the lab's completed flows into the paper's size bins.
func (l *Lab) Binned() *stats.BinnedSlowdowns {
	b := stats.NewBinnedSlowdowns()
	for _, r := range l.Records {
		b.Add(r.Size, r.Slowdown)
	}
	return b
}

// ClassP returns the p-th percentile slowdown over flows in
// (sizes limited by lo < size ≤ hi; hi ≤ 0 means unbounded).
func (l *Lab) ClassP(p float64, lo, hi int64) float64 {
	var d stats.Dist
	for _, r := range l.Records {
		if r.Size > lo && (hi <= 0 || r.Size <= hi) {
			d.Add(r.Slowdown)
		}
	}
	return d.Percentile(p)
}
