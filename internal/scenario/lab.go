package scenario

import (
	"repro/internal/cc"
	"repro/internal/homa"
	"repro/internal/packet"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
	"repro/internal/workload"
)

// FlowRecord is one completed transfer.
type FlowRecord struct {
	Size     int64
	FCT      sim.Duration
	Slowdown float64
}

// Lab is a built network plus the scheme-appropriate launch/collect
// plumbing shared by the experiment runners.
type Lab struct {
	Scheme  Scheme
	Net     *topo.Network
	FTCfg   topo.FatTreeConfig
	LSCfg   topo.LeafSpineConfig
	Records []FlowRecord

	started int
	scratch *runScratch
}

// labOpts assembles the switch/buffer options every lab shares. The
// scheme's DTAlpha (composed via the Alpha scheme option) overrides the
// Dynamic Thresholds factor; 0 keeps the default α=1. It also claims a
// recycled scratch, handing its warmed engine (if any) to the builder.
func (l *Lab) labOpts(seed int64, routing route.Strategy) topo.Options {
	l.scratch = getScratch()
	return topo.Options{
		BufferPerGbps: topo.TofinoBufferPerGbps,
		Alpha:         l.Scheme.DTAlpha,
		INT:           l.Scheme.INT,
		ECN:           l.Scheme.ECN,
		Queues:        l.Scheme.queueFactory(),
		Seed:          seed,
		Routing:       routing,
		Engine:        l.scratch.eng,
	}
}

// NewFatTreeLab builds the paper's fat-tree (§4.1) scaled to
// serversPerTor servers per rack under default per-flow ECMP.
func NewFatTreeLab(scheme Scheme, serversPerTor int, seed int64) *Lab {
	return NewRoutedFatTreeLab(scheme, serversPerTor, seed, nil)
}

// NewRoutedFatTreeLab is NewFatTreeLab with an explicit multipath
// strategy (nil keeps per-flow ECMP).
func NewRoutedFatTreeLab(scheme Scheme, serversPerTor int, seed int64, routing route.Strategy) *Lab {
	l := &Lab{Scheme: scheme}
	cfg := topo.FatTreeConfig{
		ServersPerTor: serversPerTor,
		Opts:          l.labOpts(seed, routing),
	}.WithDefaults()
	cfg.Opts.Hosts = l.hostFactory(30 * sim.Microsecond)
	l.Net = topo.FatTree(cfg)
	l.FTCfg = cfg
	l.wireCollectors()
	return l
}

// NewStarLab builds an n-host single-switch network at 25 Gbps.
func NewStarLab(scheme Scheme, hosts int, seed int64) *Lab {
	l := &Lab{Scheme: scheme}
	cfg := topo.StarConfig{
		Hosts:    hosts,
		HostRate: 25 * units.Gbps,
		Opts:     l.labOpts(seed, nil),
	}
	cfg.Opts.Hosts = l.hostFactory(12 * sim.Microsecond)
	l.Net = topo.Star(cfg)
	l.wireCollectors()
	return l
}

// NewLeafSpineLab builds a two-tier Clos fabric under the given
// multipath strategy; cfg carries the structural knobs (leaves, spines,
// per-spine rates) and the lab fills in the shared options.
func NewLeafSpineLab(scheme Scheme, cfg topo.LeafSpineConfig, seed int64, routing route.Strategy) *Lab {
	l := &Lab{Scheme: scheme}
	cfg.Opts = l.labOpts(seed, routing)
	cfg.Opts.Hosts = l.hostFactory(16 * sim.Microsecond)
	l.Net = topo.LeafSpine(cfg)
	l.LSCfg = cfg.WithDefaults()
	l.wireCollectors()
	return l
}

// hostFactory builds scheme-appropriate hosts at the topology's base
// RTT (the paper configures τ as the fabric's maximum RTT).
func (l *Lab) hostFactory(baseRTT sim.Duration) topo.HostFactory {
	return func(eng *sim.Engine, id packet.NodeID) topo.Node {
		if l.Scheme.IsHoma() {
			return homa.NewHost(eng, id, homa.Config{
				BaseRTT:    baseRTT,
				Overcommit: l.Scheme.Overcommit,
			})
		}
		return transport.NewHost(eng, id, transport.Config{BaseRTT: baseRTT})
	}
}

// wireCollectors attaches completion callbacks on every host and moves
// the scratch's recycled buffers into the freshly built network.
func (l *Lab) wireCollectors() {
	if sc := l.scratch; sc != nil {
		l.Net.Pool.Adopt(sc.packets)
		sc.packets = nil
		l.Records = sc.records
		sc.records = nil
	}
	for _, n := range l.Net.Hosts {
		switch h := n.(type) {
		case *transport.Host:
			h.OnFlowDone = func(f *transport.Flow) { l.record(f.Size, f.FCT()) }
		case *homa.Host:
			h.OnMessageDone = func(_ uint64, size int64, fct sim.Duration) {
				l.record(size, fct)
			}
		}
	}
}

func (l *Lab) record(size int64, fct sim.Duration) {
	l.Records = append(l.Records, FlowRecord{
		Size:     size,
		FCT:      fct,
		Slowdown: stats.Slowdown(fct, size, l.Net.HostRate, l.Net.BaseRTT),
	})
}

// UnboundedSize returns the "runs past any window" flow size for the
// lab's scheme: the transport supports a true Unbounded marker, HOMA
// messages need a finite (but effectively infinite) length.
func (l *Lab) UnboundedSize() int64 {
	if l.Scheme.IsHoma() {
		return 1 << 33
	}
	return transport.Unbounded
}

// Launch starts one workload flow (transport flow or HOMA message) and
// returns the flow ID it was assigned.
func (l *Lab) Launch(f workload.Flow) packet.FlowID { return l.LaunchAlg(f, nil) }

// LaunchAlg is Launch with an explicit per-flow algorithm — the seam
// scenario traffic classes use to run components under their own
// scheme. nil keeps the lab scheme's algorithm; HOMA messages carry no
// per-flow algorithm and ignore it.
func (l *Lab) LaunchAlg(f workload.Flow, alg cc.Algorithm) packet.FlowID {
	l.started++
	id := l.Net.NextFlowID()
	dst := l.Net.HostID(f.Dst)
	switch h := l.Net.Hosts[f.Src].(type) {
	case *transport.Host:
		if alg == nil {
			alg = l.Scheme.Alg()
		}
		h.StartFlow(id, dst, f.Size, alg, f.Start)
	case *homa.Host:
		h.Send(id, dst, f.Size, f.Start)
	}
	return id
}

// LaunchAll starts a whole trace.
func (l *Lab) LaunchAll(flows []workload.Flow) {
	for _, f := range flows {
		l.Launch(f)
	}
}

// Started returns the number of launched flows.
func (l *Lab) Started() int { return l.started }

// ReceivedTotal returns the payload bytes received by host i.
func (l *Lab) ReceivedTotal(i int) int64 {
	switch h := l.Net.Hosts[i].(type) {
	case *transport.Host:
		return h.ReceivedTotal()
	case *homa.Host:
		return h.ReceivedTotal()
	}
	return 0
}

// ReceivedBytes returns the payload bytes host i received on one flow.
func (l *Lab) ReceivedBytes(i int, id packet.FlowID) int64 {
	switch h := l.Net.Hosts[i].(type) {
	case *transport.Host:
		return h.ReceivedBytes(id)
	case *homa.Host:
		return h.ReceivedBytes(id)
	}
	return 0
}

// SampleEvery invokes fn(now) at the given period until the horizon.
func SampleEvery(eng *sim.Engine, period sim.Duration, until sim.Time, fn func(now sim.Time)) {
	var tick func()
	tick = func() {
		now := eng.Now()
		if now > until {
			return
		}
		fn(now)
		eng.After(period, tick)
	}
	eng.After(0, tick)
}

// Binned summarizes the lab's completed flows into the paper's size bins.
func (l *Lab) Binned() *stats.BinnedSlowdowns {
	b := stats.NewBinnedSlowdowns()
	for _, r := range l.Records {
		b.Add(r.Size, r.Slowdown)
	}
	return b
}

// ClassP returns the p-th percentile slowdown over flows in
// (sizes limited by lo < size ≤ hi; hi ≤ 0 means unbounded).
func (l *Lab) ClassP(p float64, lo, hi int64) float64 {
	var d stats.Dist
	for _, r := range l.Records {
		if r.Size > lo && (hi <= 0 || r.Size <= hi) {
			d.Add(r.Slowdown)
		}
	}
	return d.Percentile(p)
}
