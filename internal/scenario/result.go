package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// SeriesPoint is one (x, value) sample of a Series.
type SeriesPoint struct {
	X float64 `json:"x"`
	V float64 `json:"v"`
}

// Series is a named data series of a Result — a time series (X in
// microseconds), a CDF (X in bytes or KB), or a sweep (X a load or
// rate), as named by the XLabel.
type Series struct {
	Name   string        `json:"name"`
	XLabel string        `json:"x_label,omitempty"`
	Points []SeriesPoint `json:"points"`
}

// Result is the common envelope every experiment returns: identity
// (experiment, scheme, label, seed), a scalar metrics map, and named
// series. Raw carries the experiment's typed payload (IncastResult,
// FairnessResult, ...) for renderers that need figure-specific detail;
// it is excluded from the JSON encoding.
type Result struct {
	Experiment string             `json:"experiment"`
	Scheme     string             `json:"scheme"`
	Label      string             `json:"label,omitempty"`
	Seed       int64              `json:"seed"`
	Scalars    map[string]float64 `json:"scalars,omitempty"`
	Series     []Series           `json:"series,omitempty"`
	Raw        any                `json:"-"`
}

// SetScalar records one headline metric.
func (r *Result) SetScalar(name string, v float64) {
	if r.Scalars == nil {
		r.Scalars = map[string]float64{}
	}
	r.Scalars[name] = v
}

// Scalar returns a recorded metric (0 if absent).
func (r *Result) Scalar(name string) float64 { return r.Scalars[name] }

// ScalarNames returns the recorded metric names, sorted.
func (r *Result) ScalarNames() []string {
	names := make([]string, 0, len(r.Scalars))
	for n := range r.Scalars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddSeries appends a named series.
func (r *Result) AddSeries(s Series) { r.Series = append(r.Series, s) }

// TimeSeries builds a Series from parallel time/value slices, with X in
// microseconds — the repo's common plot axis.
func TimeSeries(name string, t []sim.Time, v []float64) Series {
	s := Series{Name: name, XLabel: "time_us", Points: make([]SeriesPoint, len(v))}
	for i := range v {
		s.Points[i] = SeriesPoint{X: t[i].Seconds() * 1e6, V: v[i]}
	}
	return s
}

// EncodeJSON writes the result as indented JSON. Map keys are sorted by
// encoding/json, so equal results encode to identical bytes — the
// property the suite determinism test asserts.
func (r *Result) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// EncodeTSV writes the result as tab-separated blocks with '#' comment
// headers: one scalars block, then one block per series. The layout is
// gnuplot/matplotlib friendly and byte-deterministic (scalars sorted).
func (r *Result) EncodeTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# experiment=%s scheme=%s seed=%d", r.Experiment, r.Scheme, r.Seed); err != nil {
		return err
	}
	if r.Label != "" {
		if _, err := fmt.Fprintf(w, " label=%s", r.Label); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if len(r.Scalars) > 0 {
		if _, err := fmt.Fprintln(w, "# metric\tvalue"); err != nil {
			return err
		}
		for _, name := range r.ScalarNames() {
			if _, err := fmt.Fprintf(w, "%s\t%g\n", name, r.Scalars[name]); err != nil {
				return err
			}
		}
	}
	for _, s := range r.Series {
		x := s.XLabel
		if x == "" {
			x = "x"
		}
		if _, err := fmt.Fprintf(w, "\n# series=%s\n# %s\t%s\n", s.Name, x, s.Name); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%g\t%g\n", p.X, p.V); err != nil {
				return err
			}
		}
	}
	return nil
}

// EncodeJSONResults writes a whole result set as one JSON array.
func EncodeJSONResults(w io.Writer, rs []*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// EncodeTSVResults writes a whole result set as consecutive TSV blocks.
func EncodeTSVResults(w io.Writer, rs []*Result) error {
	for i, r := range rs {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := r.EncodeTSV(w); err != nil {
			return err
		}
	}
	return nil
}
