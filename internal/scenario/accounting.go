package scenario

import (
	"fmt"
)

// ByteAccounting is the network-wide payload-byte ledger at a point in
// time: every payload byte an endpoint emitted is — exactly — either
// delivered to an endpoint, dropped at a switch's shared-buffer
// admission, lost on a downed wire, or still inside the fabric (queued
// at a port or serialized onto a wire). The words are measured at
// independent layers (NIC admission, host receive bookkeeping, per-port
// drop/loss counters), so Residual() == 0 is a genuine cross-layer
// conservation check rather than an arithmetic identity — the central
// invariant of internal/fuzzlab.
type ByteAccounting struct {
	// Emitted is the payload offered by endpoint NICs (accepted into the
	// NIC queue; host NICs run no admission control).
	Emitted int64
	// Delivered is the raw payload received by endpoints, counting
	// retransmitted duplicates — what the wire actually handed over.
	Delivered int64
	// Dropped is the payload rejected at switch shared-buffer admission.
	Dropped int64
	// Lost is the payload discarded on downed wires (link failures):
	// serialized onto a dead wire, or in flight when the cut landed.
	Lost int64
	// Queued is the payload sitting in port queues at read time.
	Queued int64
	// OnWire is the payload transmitted but not yet delivered or lost —
	// on a wire, or parked in a cross-partition mailbox.
	OnWire int64
}

// InFlight returns the payload still inside the fabric.
func (a ByteAccounting) InFlight() int64 { return a.Queued + a.OnWire }

// Residual returns the conservation defect — zero on a correct fabric.
func (a ByteAccounting) Residual() int64 {
	return a.Emitted - a.Delivered - a.Dropped - a.Lost - a.InFlight()
}

// Accounting reads the current payload ledger off the built fabric.
// Only switched topologies carry the per-port counters it sums; the
// rotor network is not supported.
func (env *Env) Accounting() (ByteAccounting, error) {
	if env.Lab == nil {
		return ByteAccounting{}, fmt.Errorf("scenario: byte accounting needs a switched topology")
	}
	var a ByteAccounting
	net := env.Lab.Net
	for i, h := range net.Hosts {
		nic := h.NIC()
		a.Emitted += int64(nic.PayloadAccepted() + nic.PayloadDropped())
		a.Delivered += env.Lab.DeliveredPayload(i)
		a.Dropped += int64(nic.PayloadDropped())
		a.Lost += int64(nic.PayloadLost())
		a.Queued += int64(nic.PayloadQueued())
		a.OnWire += int64(nic.PayloadOnWire())
	}
	for _, s := range net.Switches {
		for _, pt := range s.Ports() {
			a.Dropped += int64(pt.PayloadDropped())
			a.Lost += int64(pt.PayloadLost())
			a.Queued += int64(pt.PayloadQueued())
			a.OnWire += int64(pt.PayloadOnWire())
		}
	}
	if env.Hybrid != nil {
		// Fluid bytes obey the same identity: everything the coupler's
		// integer ledger emitted is either delivered or still backlogged
		// (fluid traffic is never dropped or failure-lost — fluid excludes
		// failure timelines by validation).
		em, del, back := env.Hybrid.Totals()
		a.Emitted += em
		a.Delivered += del
		a.Queued += back
	}
	return a, nil
}

// AccountingProbe surfaces the run's final byte ledger as Result
// scalars (bytes_emitted, bytes_delivered, bytes_dropped,
// bytes_lost_fail, bytes_inflight, bytes_residual) plus a per-host
// delivered-bytes series — the envelope the fuzzlab conservation,
// black-hole, capacity, and fairness invariants read, without reaching
// into fabric internals.
type AccountingProbe struct{}

func (AccountingProbe) Install(env *Env) error {
	if env.Lab == nil {
		return fmt.Errorf("scenario: the accounting probe needs a switched topology")
	}
	return nil
}

func (AccountingProbe) Finalize(env *Env, res *Result) error {
	a, err := env.Accounting()
	if err != nil {
		return err
	}
	res.SetScalar("bytes_emitted", float64(a.Emitted))
	res.SetScalar("bytes_delivered", float64(a.Delivered))
	res.SetScalar("bytes_dropped", float64(a.Dropped))
	res.SetScalar("bytes_lost_fail", float64(a.Lost))
	res.SetScalar("bytes_inflight", float64(a.InFlight()))
	res.SetScalar("bytes_residual", float64(a.Residual()))
	if env.Hybrid != nil {
		// Hybrid runs additionally expose the fluid slice of the ledger,
		// so the invariant checker can assert fluid conservation on its
		// own (emitted − delivered − backlog ≡ 0) besides the combined
		// residual. Packet-only envelopes are byte-identical to before.
		em, del, back := env.Hybrid.Totals()
		res.SetScalar("fluid_bytes_emitted", float64(em))
		res.SetScalar("fluid_bytes_delivered", float64(del))
		res.SetScalar("fluid_bytes_backlog", float64(back))
	}
	// The per-host receive line rate bounds aggregate goodput: no host
	// can accept payload faster than its NIC drains it.
	res.SetScalar("rx_cap_gbps_per_host", env.Lab.Net.HostRate.InGbps())
	s := Series{Name: "delivered_bytes_by_host", XLabel: "host"}
	for i := range env.Lab.Net.Hosts {
		s.Points = append(s.Points, SeriesPoint{X: float64(i), V: float64(env.Lab.DeliveredPayload(i))})
	}
	res.AddSeries(s)
	return nil
}
