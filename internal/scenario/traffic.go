package scenario

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Traffic is one workload component of a Scenario. Components generate
// their flow trace against the fabric metadata; the generic Run launches
// every component's flows in order, so mixes and overlays are plain
// list entries instead of special-cased runner knobs.
type Traffic interface {
	generate(f Fabric, seed int64) ([]workload.Flow, error)
}

// FlowSpec is one explicitly placed transfer of a Flows component.
type FlowSpec struct {
	Start sim.Time
	Src   HostRef
	Dst   HostRef
	Size  int64 // bytes, or Unbounded
}

// Flows launches an explicit list of transfers — the building block for
// hand-crafted scenarios and for long background flows.
type Flows struct {
	List []FlowSpec
}

func (t Flows) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	out := make([]workload.Flow, 0, len(t.List))
	for _, fs := range t.List {
		src, err := fs.Src.Resolve(f)
		if err != nil {
			return nil, err
		}
		dst, err := fs.Dst.Resolve(f)
		if err != nil {
			return nil, err
		}
		if src == dst {
			return nil, fmt.Errorf("scenario: flow from host %d to itself", src)
		}
		out = append(out, workload.Flow{Start: fs.Start, Src: src, Dst: dst, Size: fs.Size})
	}
	return out, nil
}

// IncastPulse fires FanIn simultaneous responses of FlowSize bytes each
// into Receiver at time At — the Figure 4 burst. Senders are drawn in
// index order from the Senders span; the zero span draws from every
// host outside the receiver's rack.
type IncastPulse struct {
	At       sim.Duration
	Receiver HostRef
	FanIn    int
	FlowSize int64
	Senders  Span
}

func (t IncastPulse) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	rx, err := t.Receiver.Resolve(f)
	if err != nil {
		return nil, err
	}
	if t.FanIn <= 0 {
		return nil, fmt.Errorf("scenario: incast pulse needs FanIn ≥ 1")
	}
	from, to := 0, f.Hosts
	skipRack := -1
	if t.Senders.From.isSet() {
		if from, err = t.Senders.From.Resolve(f); err != nil {
			return nil, err
		}
		if t.Senders.To.isSet() {
			if to, err = t.Senders.To.Resolve(f); err != nil {
				return nil, err
			}
		}
	} else if f.HostsPerRack > 0 {
		skipRack = rx / f.HostsPerRack
	}
	var out []workload.Flow
	for i := from; len(out) < t.FanIn && i < to; i++ {
		if i == rx || (skipRack >= 0 && i/f.HostsPerRack == skipRack) {
			continue
		}
		out = append(out, workload.Flow{
			Start: sim.Time(t.At), Src: i, Dst: rx, Size: t.FlowSize,
		})
	}
	// A pulse wider than the sender pool caps at the pool (the probe
	// records the launched fan-in), but a pulse with no eligible sender
	// at all would "run" while measuring nothing.
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: incast pulse found no eligible senders for receiver %d", rx)
	}
	return out, nil
}

// Staggered launches Count flows toward Receiver with arrival spacing
// Stagger — the Figure 5 arrive-and-leave staircase. Flow i starts at
// i·Stagger from sender FirstSender+i with size Sizes[i] (the last size
// repeats when the list is shorter than Count).
type Staggered struct {
	Receiver    HostRef
	FirstSender HostRef
	Count       int
	Stagger     sim.Duration
	Sizes       []int64
}

func (t Staggered) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	rx, err := t.Receiver.Resolve(f)
	if err != nil {
		return nil, err
	}
	first, err := t.FirstSender.Resolve(f)
	if err != nil {
		return nil, err
	}
	if t.Count <= 0 || len(t.Sizes) == 0 {
		return nil, fmt.Errorf("scenario: staggered flows need Count ≥ 1 and at least one size")
	}
	if first+t.Count > f.Hosts {
		return nil, fmt.Errorf("scenario: staggered flows need %d senders from host %d, fabric has %d hosts",
			t.Count, first, f.Hosts)
	}
	if first <= rx && rx < first+t.Count {
		return nil, fmt.Errorf("scenario: staggered sender range [%d,%d) includes the receiver %d",
			first, first+t.Count, rx)
	}
	out := make([]workload.Flow, 0, t.Count)
	for i := 0; i < t.Count; i++ {
		size := t.Sizes[len(t.Sizes)-1]
		if i < len(t.Sizes) {
			size = t.Sizes[i]
		}
		out = append(out, workload.Flow{
			Start: sim.Time(sim.Duration(i) * t.Stagger),
			Src:   first + i, Dst: rx, Size: size,
		})
	}
	return out, nil
}

// PoissonLoad offers the web-search-style open-loop Poisson process at a
// target rack-uplink load (§4.1): sources uniform over all hosts,
// destinations uniform over other racks.
type PoissonLoad struct {
	// Load is the offered load on the rack uplinks, 0–1.
	Load float64
	// Dist samples flow sizes; nil means the web-search distribution.
	Dist workload.SizeDist
	// Start shifts the whole trace (load steps); flows arrive in
	// [Start, Start+Horizon).
	Start sim.Duration
	// Horizon bounds trace generation.
	Horizon sim.Duration
	// SeedOffset decorrelates this component from others sharing the
	// scenario seed.
	SeedOffset int64
}

func (t PoissonLoad) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	if f.UplinkCapPerRack == 0 || f.Racks < 2 {
		return nil, fmt.Errorf("scenario: Poisson load needs a multi-rack fabric with uplink capacity")
	}
	if t.Horizon <= 0 {
		return nil, fmt.Errorf("scenario: Poisson load needs a generation Horizon")
	}
	dist := t.Dist
	if dist == nil {
		dist = workload.WebSearch()
	}
	gen := &workload.Poisson{
		Load:             t.Load,
		UplinkCapPerRack: f.UplinkCapPerRack,
		Racks:            f.Racks,
		HostsPerRack:     f.HostsPerRack,
		Dist:             dist,
		Seed:             seed + t.SeedOffset,
	}
	flows := gen.Generate(t.Horizon)
	if t.Start > 0 {
		for i := range flows {
			flows[i].Start = flows[i].Start.Add(t.Start)
		}
	}
	return flows, nil
}

// IncastRequests overlays the synthetic distributed-file-system incast
// workload (Fig. 7c–f): requests arrive at RequestRate; each fans out to
// FanIn responders in other racks that answer simultaneously with
// RequestSize/FanIn bytes.
type IncastRequests struct {
	RequestRate float64
	RequestSize int64
	FanIn       int
	Start       sim.Duration
	Horizon     sim.Duration
	SeedOffset  int64
}

func (t IncastRequests) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	if f.Racks < 2 {
		return nil, fmt.Errorf("scenario: incast requests need a multi-rack fabric")
	}
	if t.Horizon <= 0 {
		return nil, fmt.Errorf("scenario: incast requests need a generation Horizon")
	}
	gen := &workload.Incast{
		RequestRate:  t.RequestRate,
		RequestSize:  t.RequestSize,
		FanIn:        t.FanIn,
		Racks:        f.Racks,
		HostsPerRack: f.HostsPerRack,
		Seed:         seed + t.SeedOffset,
	}
	flows := gen.Generate(t.Horizon)
	if t.Start > 0 {
		for i := range flows {
			flows[i].Start = flows[i].Start.Add(t.Start)
		}
	}
	return flows, nil
}

// Permutation launches one endless flow per host along a fixed-point-
// free host permutation derived from the seed — the canonical multipath
// stress.
type Permutation struct {
	SeedOffset int64
}

func (t Permutation) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	perm := workload.Permutation(f.Hosts, seed+t.SeedOffset)
	out := make([]workload.Flow, 0, f.Hosts)
	for src, dst := range perm {
		out = append(out, workload.Flow{Start: 0, Src: src, Dst: dst, Size: Unbounded})
	}
	return out, nil
}

// RackPairs launches endless flows from the servers of one rack to
// their index counterparts in another — the cross-fabric load of the
// asymmetry and failover scenarios. Count 0 pairs the whole rack; a
// Count larger than the rack is an error.
type RackPairs struct {
	FromRack HostRef // resolved as the first host of the source rack
	ToRack   HostRef // resolved as the first host of the destination rack
	Count    int
	Size     int64 // bytes per flow; 0 means Unbounded
}

func (t RackPairs) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	src0, err := t.FromRack.Resolve(f)
	if err != nil {
		return nil, err
	}
	dst0, err := t.ToRack.Resolve(f)
	if err != nil {
		return nil, err
	}
	if t.Count > f.HostsPerRack {
		return nil, fmt.Errorf("scenario: rack pairs Count %d exceeds the rack size %d", t.Count, f.HostsPerRack)
	}
	n := t.Count
	if n <= 0 {
		n = f.HostsPerRack
	}
	if src0+n > f.Hosts || dst0+n > f.Hosts {
		return nil, fmt.Errorf("scenario: rack pairs need %d hosts from %d and %d, fabric has %d",
			n, src0, dst0, f.Hosts)
	}
	if src0 == dst0 {
		return nil, fmt.Errorf("scenario: rack pairs from rack host %d to itself", src0)
	}
	size := t.Size
	if size == 0 {
		size = Unbounded
	}
	out := make([]workload.Flow, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, workload.Flow{Start: 0, Src: src0 + i, Dst: dst0 + i, Size: size})
	}
	return out, nil
}

// Custom wraps an arbitrary generator function, the escape hatch for
// traffic shapes the typed components do not cover.
type Custom struct {
	Generate func(f Fabric, seed int64) []workload.Flow
}

func (t Custom) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	if t.Generate == nil {
		return nil, fmt.Errorf("scenario: Custom traffic needs a Generate function")
	}
	return t.Generate(f, seed), nil
}

// WithScheme runs a traffic component's flows under their own
// congestion-control scheme, so one scenario can mix traffic classes
// (e.g. a Reno background under a PowerTCP incast). The override must
// provide a per-flow algorithm, and any switch features it needs (INT,
// ECN marking) must already be enabled by the scenario's base scheme —
// the fabric is built once.
func WithScheme(scheme string, t Traffic) Traffic {
	return classed{scheme: scheme, inner: t}
}

type classed struct {
	scheme string
	inner  Traffic
}

func (t classed) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	return t.inner.generate(f, seed)
}

// Fidelity selects how a traffic component is simulated: packet by
// packet (the default), or as an analytic fluid aggregate coupled to
// the packet fabric through internal/hybrid.
type Fidelity int

const (
	// Packet simulates every flow packet-by-packet (full fidelity).
	Packet Fidelity = iota
	// Fluid compiles the component into per-link background
	// arrival-rate processes integrated on the simulation clock — the
	// scale knob for large background loads. Only open-shape components
	// (Flows, PoissonLoad, Permutation, RackPairs) can carry it, and
	// fluid components exclude link-failure timelines, injection, the
	// rotor fabric, and partitioned execution.
	Fluid
)

// WithFidelity runs a traffic component at the given fidelity, so one
// scenario can mix an analytically simulated background with
// packet-accurate foreground flows ("websearch load at 80% on a fabric
// too big to packet-simulate"). WithFidelity(Packet, t) is t's default
// behavior.
func WithFidelity(fd Fidelity, t Traffic) Traffic {
	return fidelitied{fd: fd, inner: t}
}

type fidelitied struct {
	fd    Fidelity
	inner Traffic
}

func (t fidelitied) generate(f Fabric, seed int64) ([]workload.Flow, error) {
	return t.inner.generate(f, seed)
}

// unwrapTraffic strips the wrapper chain off a component, collecting
// the outermost scheme override and fidelity regardless of nesting
// order (WithScheme over WithFidelity or the reverse).
func unwrapTraffic(tr Traffic) (inner Traffic, scheme string, hasScheme bool, fd Fidelity) {
	for {
		switch t := tr.(type) {
		case classed:
			if !hasScheme {
				scheme, hasScheme = t.scheme, true
			}
			tr = t.inner
		case fidelitied:
			if fd == Packet {
				fd = t.fd
			}
			tr = t.inner
		default:
			return tr, scheme, hasScheme, fd
		}
	}
}

// resolveOverride resolves and checks a per-component scheme override
// against the base scheme's fabric features.
func resolveOverride(name string, base Scheme) (Scheme, error) {
	over, err := ResolveScheme(name)
	if err != nil {
		return Scheme{}, err
	}
	if over.Alg == nil {
		return Scheme{}, fmt.Errorf("scenario: traffic-class scheme %q has no per-flow algorithm", name)
	}
	if base.IsHoma() {
		return Scheme{}, fmt.Errorf("scenario: traffic-class schemes need the window transport; base scheme %q is HOMA", base.Name)
	}
	if over.INT && !base.INT {
		return Scheme{}, fmt.Errorf("scenario: traffic-class scheme %q needs INT, but the fabric was built for %q without it",
			name, base.Name)
	}
	if over.ECN.Enabled() && over.ECN != base.ECN {
		return Scheme{}, fmt.Errorf("scenario: traffic-class scheme %q needs its own ECN marking profile, but the fabric was built with %q's switch configuration",
			name, base.Name)
	}
	return over, nil
}
