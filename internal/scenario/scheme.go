package scenario

import (
	"repro/internal/cc"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/swtch"
)

// Scheme names accepted by the registry (matching the paper's legends).
const (
	PowerTCP      = "powertcp"
	ThetaPowerTCP = "theta-powertcp"
	HPCC          = "hpcc"
	Timely        = "timely"
	DCQCN         = "dcqcn"
	Swift         = "swift"
	DCTCP         = "dctcp" // taxonomy reference (Fig. 1), ablations
	Reno          = "reno"  // loss-based reference, ablations
	Cubic         = "cubic" // loss-based WAN reference, ablations
	Homa          = "homa"  // overcommitment 1; "homa-oc<N>" selects N
)

// RDCN scheme names (Fig. 8 legend). reTCP variants carry their
// prebuffering in microseconds; "retcp-<N>" selects N µs.
const (
	ReTCP600  = "retcp-600"
	ReTCP1800 = "retcp-1800"
)

// Schemes lists every sender-based scheme, in the paper's legend order.
var Schemes = []string{PowerTCP, ThetaPowerTCP, HPCC, Timely, DCQCN, Homa}

// Kind classifies a scheme by the transport/plumbing it requires.
type Kind int

const (
	// KindCC is a plain sender-based algorithm with a fixed builder.
	KindCC Kind = iota
	// KindPowerTCP and KindTheta rebuild their cc.Builder from the
	// scheme's composed core.Config (γ, per-RTT updates).
	KindPowerTCP
	KindTheta
	// KindHoma uses the receiver-driven HOMA transport.
	KindHoma
	// KindReTCP is the RDCN prebuffering baseline (§5).
	KindReTCP
)

// Scheme bundles a congestion-control choice with the switch features it
// needs: INT stamping for the telemetry-driven laws, RED/ECN for DCQCN,
// and strict-priority queues for HOMA. Ablation knobs (Gamma, PerRTT,
// DTAlpha, Overcommit, PrebufferFor) are composed by SchemeOptions at
// resolution time.
type Scheme struct {
	Name string
	Kind Kind
	// Alg builds a per-flow algorithm; nil for HOMA (its own transport)
	// and reTCP (built per-network by the RDCN runner).
	Alg cc.Builder
	// INT enables telemetry stamping on the switches.
	INT bool
	// ECN configures RED marking (DCQCN).
	ECN swtch.ECNConfig
	// PrioQueues replaces FIFO egress queues with 8-level strict
	// priority (HOMA).
	PrioQueues bool
	// Overcommit is HOMA's concurrent-grant degree (≥1).
	Overcommit int
	// Gamma overrides PowerTCP's EWMA weight (ablations); 0 = default.
	Gamma float64
	// PerRTT limits PowerTCP updates to once per RTT (§5).
	PerRTT bool
	// DTAlpha overrides the switches' Dynamic-Thresholds factor
	// (0 keeps the default α=1) for buffer-management ablations.
	DTAlpha float64
	// PrebufferFor is reTCP's circuit-day prebuffering lead time.
	PrebufferFor sim.Duration
}

// IsHoma reports whether the scheme uses the receiver-driven transport.
func (s Scheme) IsHoma() bool { return s.Kind == KindHoma }

// DCQCNECN is the marking profile used for DCQCN runs, following the
// HPCC paper's configuration the authors adopt (§4.1).
var DCQCNECN = swtch.ECNConfig{KMin: 100 << 10, KMax: 400 << 10, PMax: 0.2}

// DCTCPECN is DCTCP's step marking at threshold K (the paper notes the
// flows oscillate around K > b·τ/7, §2.2).
var DCTCPECN = swtch.ECNConfig{KMin: 65 << 10, KMax: 65<<10 + 1, PMax: 1}

// queueFactory returns the per-port queue constructor for the scheme.
func (s Scheme) queueFactory() func() queue.Queue {
	if s.PrioQueues {
		return func() queue.Queue { return queue.NewPrio() }
	}
	return nil
}
