package scenario

import (
	"fmt"

	"repro/internal/route"
	"repro/internal/sim"
)

// Timeline is the event axis of a Scenario: typed events applied in
// list order, plus the control-plane reconvergence delay between a link
// event and the routing tables reflecting it.
type Timeline struct {
	Events     []Event
	Reconverge sim.Duration
}

// Event is one timeline entry. Link events cut or repair wires through
// the routing control plane; InjectTraffic adds a whole workload
// component mid-run.
type Event interface {
	apply(env *Env, links *[]route.LinkEvent) error
}

// LinkFail cuts the A–B wire (both directions) at At. Packets already
// serialized onto the wire are lost at delivery; routing reconverges
// Timeline.Reconverge later.
type LinkFail struct {
	At   sim.Duration
	A, B SwitchRef
}

func (e LinkFail) apply(env *Env, links *[]route.LinkEvent) error {
	if e.At < 0 {
		return fmt.Errorf("scenario: link failure at negative time %v", e.At)
	}
	a, b, err := env.resolveLink(e.A, e.B)
	if err != nil {
		return err
	}
	*links = append(*links, route.LinkEvent{At: sim.Time(e.At), A: a, B: b, Down: true})
	return nil
}

// LinkRestore repairs the A–B wire at At.
type LinkRestore struct {
	At   sim.Duration
	A, B SwitchRef
}

func (e LinkRestore) apply(env *Env, links *[]route.LinkEvent) error {
	if e.At < 0 {
		return fmt.Errorf("scenario: link restore at negative time %v", e.At)
	}
	a, b, err := env.resolveLink(e.A, e.B)
	if err != nil {
		return err
	}
	*links = append(*links, route.LinkEvent{At: sim.Time(e.At), A: a, B: b})
	return nil
}

// InjectTraffic launches a traffic component shifted to start at At —
// load steps and bursts mid-run. The component's flows are generated
// up front (the workload is open-loop), so determinism is unaffected.
type InjectTraffic struct {
	At      sim.Duration
	Traffic Traffic
}

func (e InjectTraffic) apply(env *Env, links *[]route.LinkEvent) error {
	if e.Traffic == nil {
		return fmt.Errorf("scenario: InjectTraffic needs a traffic component")
	}
	if e.At < 0 {
		return fmt.Errorf("scenario: traffic injected at negative time %v", e.At)
	}
	if _, _, _, fd := unwrapTraffic(e.Traffic); fd == Fluid {
		// Fluid demand profiles are compiled against the routing tables
		// once, before the run starts; injection is a packet-fidelity
		// concept.
		return fmt.Errorf("scenario: injected traffic cannot run at fluid fidelity")
	}
	return env.launchComponent(e.Traffic, e.At)
}

func (env *Env) resolveLink(a, b SwitchRef) (int, int, error) {
	res, ok := env.Scenario.Topology.(switchResolver)
	if !ok || env.Lab == nil {
		return 0, 0, fmt.Errorf("scenario: link events need a switched topology with a routing control plane")
	}
	ai, err := res.resolveSwitch(a, env)
	if err != nil {
		return 0, 0, err
	}
	bi, err := res.resolveSwitch(b, env)
	if err != nil {
		return 0, 0, err
	}
	if n := len(env.Lab.Net.Switches); ai < 0 || ai >= n || bi < 0 || bi >= n {
		return 0, 0, fmt.Errorf("scenario: link event references switch %d–%d, network has %d switches", ai, bi, n)
	}
	return ai, bi, nil
}
