package monitor_test

import (
	"bytes"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// Telemetry allocs guard (the monitor-side companion of the AllocsPerRun
// tests in internal/sim and internal/link): once a tap's ring and a CC
// monitor's sample buffer are sized from run metadata, observing traffic
// must not allocate.

func TestTapRingSteadyStateAllocs(t *testing.T) {
	eng := sim.New()
	sink := &nullSink{}
	tap := monitor.NewTap(sink, 64, eng.Now)
	p := &packet.Packet{Kind: packet.Data, PayloadLen: 1000}
	// The ring is presized at construction; fill it so eviction mode is
	// also exercised.
	for i := 0; i < 128; i++ {
		tap.Receive(p)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			tap.Receive(p)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("full tap ring allocates %.2f allocs per 64-packet burst, want 0", allocs)
	}
	if tap.Total() == 0 {
		t.Fatal("tap observed nothing")
	}
}

func TestCCMonitorPresizedSteadyStateAllocs(t *testing.T) {
	mon := monitor.Wrap(core.New(core.Config{}), 0)
	mon.Init(cc.Limits{BaseRTT: 10 * sim.Microsecond, HostRate: 25 * units.Gbps, MSS: 1000})
	const samples = 512
	mon.Presize(samples)
	ack := cc.Ack{Now: sim.Time(sim.Microsecond), RTT: 10 * sim.Microsecond, AckSeq: 1, NewlyAcked: 1000}
	allocs := testing.AllocsPerRun(4, func() {
		mon.Reset()
		for i := 0; i < samples; i++ {
			ack.Now += sim.Time(sim.Microsecond)
			ack.AckSeq++
			mon.OnAck(ack)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("presized monitor allocates %.2f allocs per %d-sample run, want 0", allocs, samples)
	}
	if len(mon.Samples) != samples {
		t.Fatalf("recorded %d samples, want %d", len(mon.Samples), samples)
	}
}

// ReadCapture presizes its replay slice from the stream size, so a
// replay performs one slice allocation regardless of frame count.
func TestReadCapturePresizesFromStreamSize(t *testing.T) {
	var buf bytes.Buffer
	cw, err := monitor.NewCaptureWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := &packet.Packet{Kind: packet.Data, Flow: 7, Seq: 3, PayloadLen: 1000}
	const frames = 200
	for i := 0; i < frames; i++ {
		if err := cw.Write(sim.Time(i)*sim.Time(sim.Microsecond), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	got, err := monitor.ReadCapture(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != frames {
		t.Fatalf("replayed %d frames, want %d", len(got), frames)
	}
	// The presize is an upper-bound estimate: it must cover every frame
	// in one allocation (capacity ≥ frames) without growing.
	if cap(got) < frames {
		t.Fatalf("replay slice capacity %d < %d frames (presize missed)", cap(got), frames)
	}
}

type nullSink struct{ n int }

func (s *nullSink) Receive(p *packet.Packet) { s.n++ }
