package monitor_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func TestCaptureRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cw, err := monitor.NewCaptureWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []*packet.Packet{
		{Kind: packet.Data, Flow: 1, Seq: 0, PayloadLen: 1000},
		{Kind: packet.Ack, Flow: 1, AckSeq: 1000,
			Hops: []telemetry.HopRecord{{QLen: 4096, Rate: 25 * units.Gbps}}},
		{Kind: packet.Grant, Flow: 2, MsgID: 9, MsgLen: 1 << 20, GrantOffset: 5000, Seq: -1},
	}
	for i, p := range pkts {
		if err := cw.Write(sim.Time(sim.Duration(i)*sim.Microsecond), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.Count() != 3 {
		t.Fatalf("count = %d", cw.Count())
	}

	got, err := monitor.ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d frames", len(got))
	}
	for i, cp := range got {
		if cp.At != sim.Time(sim.Duration(i)*sim.Microsecond) {
			t.Fatalf("frame %d at %v", i, cp.At)
		}
		if cp.Pkt.Kind != pkts[i].Kind || cp.Pkt.Flow != pkts[i].Flow {
			t.Fatalf("frame %d decoded to %+v", i, cp.Pkt)
		}
	}
	if got[2].Pkt.GrantOffset != 5000 || got[2].Pkt.MsgID != 9 {
		t.Fatalf("grant fields lost: %+v", got[2].Pkt)
	}
	if got[1].Pkt.Hops[0].QLen != 4096 {
		t.Fatalf("INT lost: %+v", got[1].Pkt.Hops)
	}
}

func TestCaptureRejectsGarbage(t *testing.T) {
	if _, err := monitor.ReadCapture(bytes.NewReader([]byte{1, 2, 3, 4, 5})); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated frame body.
	var buf bytes.Buffer
	cw, _ := monitor.NewCaptureWriter(&buf)
	cw.Write(0, &packet.Packet{Kind: packet.Data, PayloadLen: 100})
	cw.Flush()
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := monitor.ReadCapture(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated capture accepted")
	}
}

func TestCaptureTapOnLiveTraffic(t *testing.T) {
	net := buildStar()
	src, dst := net.TransportHost(0), net.TransportHost(1)
	var buf bytes.Buffer
	cw, err := monitor.NewCaptureWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tap := &monitor.CaptureTap{Inner: dst, W: cw, Now: net.Eng.Now}
	net.Switches[0].Ports()[1].Peer = tap

	src.StartFlow(net.NextFlowID(), dst.ID(), 50_000, core.New(core.Config{}), 0)
	net.Eng.Run()
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}

	replay, err := monitor.ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) < 50 {
		t.Fatalf("captured %d frames, want ≥50 data packets", len(replay))
	}
	// Timestamps monotone, all frames decode to data with INT stamped.
	var last sim.Time
	var payload int64
	for _, cp := range replay {
		if cp.At < last {
			t.Fatal("capture timestamps not monotone")
		}
		last = cp.At
		if cp.Pkt.Kind == packet.Data {
			payload += int64(cp.Pkt.PayloadLen)
			if len(cp.Pkt.Hops) == 0 {
				t.Fatal("data frame lost its INT stack")
			}
		}
	}
	if payload != 50_000 {
		t.Fatalf("captured payload = %d", payload)
	}
}
