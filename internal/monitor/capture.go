package monitor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Capture persists packets crossing a tap point as a stream of
// timestamped wire-format frames — the repository's pcap equivalent.
// Frame layout (big endian): u64 timestamp (ps), u32 length, then the
// internal/wire encoding of the packet headers.
//
// CaptureTap streams live; ReadCapture replays a stream for offline
// analysis. The format is pinned by round-trip tests.

const captureMagic uint32 = 0x50545243 // "PTRC"

// CaptureWriter appends frames to an io.Writer.
type CaptureWriter struct {
	w     *bufio.Writer
	count uint64
}

// NewCaptureWriter writes the stream header and returns a writer.
func NewCaptureWriter(w io.Writer) (*CaptureWriter, error) {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.BigEndian, captureMagic); err != nil {
		return nil, err
	}
	return &CaptureWriter{w: bw}, nil
}

// Write appends one packet observed at time at.
func (cw *CaptureWriter) Write(at sim.Time, p *packet.Packet) error {
	raw, err := wire.Marshal(p)
	if err != nil {
		return fmt.Errorf("monitor: capture encode: %w", err)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(at))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(raw)))
	if _, err := cw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := cw.w.Write(raw); err != nil {
		return err
	}
	cw.count++
	return nil
}

// Count returns the number of frames written.
func (cw *CaptureWriter) Count() uint64 { return cw.count }

// Flush drains buffered frames to the underlying writer.
func (cw *CaptureWriter) Flush() error { return cw.w.Flush() }

// CapturedPacket is one replayed frame.
type CapturedPacket struct {
	At  sim.Time
	Pkt *packet.Packet
}

// ErrBadCapture reports a corrupt stream.
var ErrBadCapture = errors.New("monitor: bad capture stream")

// ReadCapture replays an entire capture stream.
func ReadCapture(r io.Reader) ([]CapturedPacket, error) {
	// When the source knows its size (bytes.Reader/Buffer, strings.Reader
	// — checked before the buffered reader consumes it), presize the
	// replay slice: a frame is a 12-byte header plus at least a base wire
	// header, so size/(12+wire.BaseLen) bounds the frame count above.
	sized := 0
	if l, ok := r.(interface{ Len() int }); ok {
		sized = l.Len()
	}
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.BigEndian, &magic); err != nil {
		return nil, err
	}
	if magic != captureMagic {
		return nil, ErrBadCapture
	}
	var out []CapturedPacket
	if n := sized / (12 + wire.BaseLen); n > 0 {
		out = make([]CapturedPacket, 0, n)
	}
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		at := sim.Time(binary.BigEndian.Uint64(hdr[0:]))
		n := binary.BigEndian.Uint32(hdr[8:])
		if n > 1<<20 {
			return nil, ErrBadCapture
		}
		raw := make([]byte, n)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("monitor: truncated capture: %w", err)
		}
		p, err := wire.Unmarshal(raw)
		if err != nil {
			return nil, fmt.Errorf("monitor: capture decode: %w", err)
		}
		out = append(out, CapturedPacket{At: at, Pkt: p})
	}
}

// CaptureTap records every packet crossing it into a CaptureWriter while
// forwarding to the inner receiver.
type CaptureTap struct {
	Inner link.Receiver
	W     *CaptureWriter
	Now   func() sim.Time
	// OnError observes write failures (captures never break forwarding).
	OnError func(error)
}

// Receive implements link.Receiver.
func (t *CaptureTap) Receive(p *packet.Packet) {
	if err := t.W.Write(t.Now(), p); err != nil && t.OnError != nil {
		t.OnError(err)
	}
	t.Inner.Receive(p)
}
