// Package monitor provides instrumentation wrappers: a congestion-
// control interposer that records the window/rate/feedback trajectory of
// a flow (the data behind cwnd-over-time plots), and a packet tap that
// records traffic crossing any link.Receiver.
//
// Both wrappers are pass-through: experiments behave identically with or
// without them, which the tests assert.
package monitor

import (
	"fmt"
	"io"
	"slices"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// CCSample is one recorded control-law update.
type CCSample struct {
	At       sim.Time
	Cwnd     float64
	Rate     units.BitRate
	RTT      sim.Duration
	AckSeq   int64
	Losses   uint64
	HopCount int
}

// CC wraps an Algorithm and records a sample on every ACK.
type CC struct {
	Inner cc.Algorithm
	// Every keeps one sample per period (0 records every ACK).
	Every sim.Duration

	Samples []CCSample
	losses  uint64
	lastAt  sim.Time
	haveAny bool
}

// Wrap returns a recording wrapper around alg.
func Wrap(alg cc.Algorithm, every sim.Duration) *CC {
	return &CC{Inner: alg, Every: every}
}

// Presize grows the sample buffer to hold n records without further
// allocation. Callers that know the run horizon and sampling period —
// expected samples ≈ horizon/Every — size the monitor once so recording
// stays off the allocator during the run.
func (m *CC) Presize(n int) {
	if n > len(m.Samples) {
		m.Samples = slices.Grow(m.Samples, n-len(m.Samples))
	}
}

// Reset drops the recorded trajectory while keeping the buffer, so a
// monitor can be reused across suite repetitions without reallocating.
func (m *CC) Reset() {
	m.Samples = m.Samples[:0]
	m.losses = 0
	m.lastAt = 0
	m.haveAny = false
}

// Name implements cc.Algorithm.
func (m *CC) Name() string { return m.Inner.Name() + "+monitor" }

// Init implements cc.Algorithm.
func (m *CC) Init(lim cc.Limits) { m.Inner.Init(lim) }

// Cwnd implements cc.Algorithm.
func (m *CC) Cwnd() float64 { return m.Inner.Cwnd() }

// Rate implements cc.Algorithm.
func (m *CC) Rate() units.BitRate { return m.Inner.Rate() }

// OnLoss implements cc.Algorithm.
func (m *CC) OnLoss(now sim.Time) {
	m.losses++
	m.Inner.OnLoss(now)
}

// OnCNP forwards congestion notifications when the inner algorithm
// consumes them.
func (m *CC) OnCNP(now sim.Time) {
	if h, ok := m.Inner.(cc.CNPHandler); ok {
		h.OnCNP(now)
	}
}

// ECT forwards the inner algorithm's ECN capability.
func (m *CC) ECT() bool { return cc.WantsECT(m.Inner) }

// Stop forwards teardown to timer-driven inner algorithms.
func (m *CC) Stop() {
	if s, ok := m.Inner.(interface{ Stop() }); ok {
		s.Stop()
	}
}

// OnAck implements cc.Algorithm.
func (m *CC) OnAck(a cc.Ack) {
	m.Inner.OnAck(a)
	if m.haveAny && m.Every > 0 && a.Now.Sub(m.lastAt) < m.Every {
		return
	}
	m.haveAny = true
	m.lastAt = a.Now
	m.Samples = append(m.Samples, CCSample{
		At:       a.Now,
		Cwnd:     m.Inner.Cwnd(),
		Rate:     m.Inner.Rate(),
		RTT:      a.RTT,
		AckSeq:   a.AckSeq,
		Losses:   m.losses,
		HopCount: len(a.Hops),
	})
}

// WriteCSV dumps the samples as CSV.
func (m *CC) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_us,cwnd_bytes,rate_gbps,rtt_us,ack_seq,losses"); err != nil {
		return err
	}
	for _, s := range m.Samples {
		if _, err := fmt.Fprintf(w, "%.2f,%.0f,%.3f,%.2f,%d,%d\n",
			float64(s.At)/float64(sim.Microsecond), s.Cwnd,
			float64(s.Rate)/1e9, s.RTT.Micros(), s.AckSeq, s.Losses); err != nil {
			return err
		}
	}
	return nil
}

// TraceEntry is one packet observation at a tap point.
type TraceEntry struct {
	At   sim.Time
	Kind packet.Kind
	Flow packet.FlowID
	Seq  int64
	Len  int64
	CE   bool
}

// Tap records packets flowing into a link.Receiver, keeping the most
// recent Cap entries in a ring.
type Tap struct {
	Inner link.Receiver
	Cap   int
	// Filter keeps only matching packets when non-nil.
	Filter func(p *packet.Packet) bool

	entries []TraceEntry
	next    int
	total   uint64
	now     func() sim.Time
}

// NewTap wraps inner; now supplies timestamps (usually Engine.Now).
// A positive capacity presizes the ring up front — the declared Cap is
// run metadata, so the tap never grows while packets flow.
func NewTap(inner link.Receiver, capacity int, now func() sim.Time) *Tap {
	t := &Tap{Inner: inner, Cap: capacity, now: now}
	if capacity > 0 {
		t.entries = make([]TraceEntry, 0, capacity)
	}
	return t
}

// Receive implements link.Receiver.
func (t *Tap) Receive(p *packet.Packet) {
	if t.Filter == nil || t.Filter(p) {
		e := TraceEntry{
			At: t.now(), Kind: p.Kind, Flow: p.Flow,
			Seq: p.Seq, Len: p.WireLen(), CE: p.CE,
		}
		if t.Cap > 0 && len(t.entries) >= t.Cap {
			t.entries[t.next] = e
			t.next = (t.next + 1) % t.Cap
		} else {
			t.entries = append(t.entries, e)
		}
		t.total++
	}
	t.Inner.Receive(p)
}

// Total returns the number of packets observed (including evicted ones).
func (t *Tap) Total() uint64 { return t.total }

// Entries returns the retained observations in arrival order.
func (t *Tap) Entries() []TraceEntry {
	if t.Cap <= 0 || len(t.entries) < t.Cap {
		return t.entries
	}
	out := make([]TraceEntry, 0, t.Cap)
	out = append(out, t.entries[t.next:]...)
	out = append(out, t.entries[:t.next]...)
	return out
}

// WriteText dumps the retained entries in a tcpdump-ish line format.
func (t *Tap) WriteText(w io.Writer) error {
	for _, e := range t.Entries() {
		ce := ""
		if e.CE {
			ce = " CE"
		}
		if _, err := fmt.Fprintf(w, "%12v %-5v flow=%d seq=%d len=%d%s\n",
			e.At, e.Kind, e.Flow, e.Seq, e.Len, ce); err != nil {
			return err
		}
	}
	return nil
}
