package monitor_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
)

func buildStar() *topo.Network {
	return topo.Star(topo.StarConfig{
		Hosts:    2,
		HostRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts: topo.TransportHosts(transport.Config{BaseRTT: 10 * sim.Microsecond}),
			INT:   true,
		},
	})
}

func TestCCMonitorRecordsAndIsTransparent(t *testing.T) {
	// Run the same flow with and without the monitor: identical FCT.
	run := func(alg cc.Algorithm) (sim.Duration, int) {
		net := buildStar()
		src, dst := net.TransportHost(0), net.TransportHost(1)
		f := src.StartFlow(net.NextFlowID(), dst.ID(), 500_000, alg, 0)
		net.Eng.Run()
		samples := 0
		if m, ok := alg.(*monitor.CC); ok {
			samples = len(m.Samples)
		}
		return f.FCT(), samples
	}
	plainFCT, _ := run(core.New(core.Config{}))
	mon := monitor.Wrap(core.New(core.Config{}), 0)
	monFCT, n := run(mon)
	if plainFCT != monFCT {
		t.Fatalf("monitor changed behaviour: %v vs %v", plainFCT, monFCT)
	}
	if n == 0 {
		t.Fatal("no samples recorded")
	}
	// Per-ACK sampling: one sample per received ACK (500 packets).
	if n < 400 {
		t.Fatalf("only %d samples", n)
	}
	var buf bytes.Buffer
	if err := mon.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "time_us,") || strings.Count(buf.String(), "\n") < n {
		t.Fatal("CSV dump malformed")
	}
}

func TestCCMonitorSamplingPeriod(t *testing.T) {
	net := buildStar()
	src, dst := net.TransportHost(0), net.TransportHost(1)
	mon := monitor.Wrap(core.New(core.Config{}), 100*sim.Microsecond)
	src.StartFlow(net.NextFlowID(), dst.ID(), 2_000_000, mon, 0)
	net.Eng.Run()
	// 2MB at ≈25G lasts ≈700µs: expect single-digit samples, not ~2000.
	if len(mon.Samples) > 30 {
		t.Fatalf("period ignored: %d samples", len(mon.Samples))
	}
}

func TestCCMonitorForwardsExtensions(t *testing.T) {
	m := monitor.Wrap(cc.NewDCQCN(), 0)
	if !m.ECT() {
		t.Fatal("ECT not forwarded")
	}
	lim := cc.Limits{BaseRTT: 10 * sim.Microsecond, HostRate: 25 * units.Gbps, MSS: 1000}
	m.Init(lim)
	before := m.Rate()
	m.OnCNP(0)
	if m.Rate() >= before {
		t.Fatal("CNP not forwarded to DCQCN")
	}
	m.Stop()
	if got := m.Name(); !strings.Contains(got, "dcqcn") {
		t.Fatalf("name = %q", got)
	}
}

type nullReceiver struct{ got []*packet.Packet }

func (n *nullReceiver) Receive(p *packet.Packet) { n.got = append(n.got, p) }

func TestTapRingAndFilter(t *testing.T) {
	inner := &nullReceiver{}
	now := sim.Time(0)
	tap := monitor.NewTap(inner, 4, func() sim.Time { return now })
	tap.Filter = func(p *packet.Packet) bool { return p.Kind == packet.Data }
	for i := 0; i < 10; i++ {
		now = sim.Time(sim.Duration(i) * sim.Microsecond)
		kind := packet.Data
		if i%3 == 0 {
			kind = packet.Ack
		}
		tap.Receive(&packet.Packet{Kind: kind, Seq: int64(i), PayloadLen: 100})
	}
	if len(inner.got) != 10 {
		t.Fatalf("tap swallowed packets: %d delivered", len(inner.got))
	}
	// 10 packets, 4 are Acks (0,3,6,9) → 6 data observed, ring keeps 4.
	if tap.Total() != 6 {
		t.Fatalf("total = %d", tap.Total())
	}
	entries := tap.Entries()
	if len(entries) != 4 {
		t.Fatalf("retained %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].At < entries[i-1].At {
			t.Fatal("ring order broken")
		}
	}
	var buf bytes.Buffer
	if err := tap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 4 {
		t.Fatalf("text dump lines = %d", strings.Count(buf.String(), "\n"))
	}
}

func TestTapOnLiveLink(t *testing.T) {
	// Interpose a tap between the switch and the receiving host.
	net := buildStar()
	src, dst := net.TransportHost(0), net.TransportHost(1)
	port := net.Switches[0].Ports()[1] // faces host 1
	tap := monitor.NewTap(dst, 0, net.Eng.Now)
	port.Peer = tap
	src.StartFlow(net.NextFlowID(), dst.ID(), 100_000, core.New(core.Config{}), 0)
	net.Eng.Run()
	if dst.ReceivedTotal() != 100_000 {
		t.Fatalf("tap broke delivery: %d", dst.ReceivedTotal())
	}
	if tap.Total() < 100 {
		t.Fatalf("tap saw %d packets", tap.Total())
	}
}
