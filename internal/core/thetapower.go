package core

import (
	"math"

	"repro/internal/cc"
	"repro/internal/sim"
	"repro/internal/units"
)

// ThetaPowerTCP is Algorithm 2: the standalone variant for legacy
// networks without INT. Rearranging e/f (Eq. 8) expresses normalized
// power purely in terms of the RTT θ and its gradient θ̇:
//
//	Γnorm = (θ̇ + 1)·θ/τ
//
// so only accurate end-host timestamps are required. The trade-off the
// paper documents (§3.5, §4.2): txRate is assumed to equal the bottleneck
// bandwidth, so θ-PowerTCP cannot see under-utilization and relies on the
// slow additive increase to fill freed bandwidth — short flows still
// benefit, medium and long flows pay for it. Window updates happen once
// per RTT (Algorithm 2, UpdateWindow guard).
type ThetaPowerTCP struct {
	cfg Config
	lim cc.Limits

	cwnd    float64
	rate    units.BitRate
	oldCwnd float64
	snapSeq int64

	prevRTT     sim.Duration
	prevAckTime sim.Time
	havePrev    bool
	smooth      float64
	lastUpdated int64 // Algorithm 2's lastUpdated sequence gate
}

// NewTheta returns a θ-PowerTCP instance.
func NewTheta(cfg Config) *ThetaPowerTCP { return &ThetaPowerTCP{cfg: cfg} }

// ThetaBuilder adapts NewTheta to cc.Builder.
func ThetaBuilder(cfg Config) cc.Builder {
	return func() cc.Algorithm { return NewTheta(cfg) }
}

// ThetaBuilder adapts the configuration to cc.Builder for the θ variant.
func (c Config) ThetaBuilder() cc.Builder { return ThetaBuilder(c) }

// Config returns the instance's configuration (see PowerTCP.Config).
func (p *ThetaPowerTCP) Config() Config { return p.cfg }

// Name implements cc.Algorithm.
func (p *ThetaPowerTCP) Name() string { return "theta-powertcp" }

// Init implements cc.Algorithm.
func (p *ThetaPowerTCP) Init(lim cc.Limits) {
	p.lim = lim
	p.cfg.fillDefaults(lim)
	p.cwnd = lim.BDP()
	p.oldCwnd = p.cwnd
	p.rate = lim.HostRate
	p.smooth = 1
}

// Cwnd implements cc.Algorithm.
func (p *ThetaPowerTCP) Cwnd() float64 { return p.cwnd }

// Rate implements cc.Algorithm.
func (p *ThetaPowerTCP) Rate() units.BitRate { return p.rate }

// OnLoss implements cc.Algorithm (as for PowerTCP).
func (p *ThetaPowerTCP) OnLoss(sim.Time) { p.setCwnd(p.cwnd / 2) }

// OnAck implements cc.Algorithm (Algorithm 2, procedure NewAck).
func (p *ThetaPowerTCP) OnAck(a cc.Ack) {
	if a.RTT <= 0 {
		return
	}
	if !p.havePrev {
		p.prevRTT, p.prevAckTime = a.RTT, a.Now
		p.havePrev = true
		return
	}
	dt := a.Now.Sub(p.prevAckTime) // tc − tc_prev (line 10)
	if dt <= 0 {
		return
	}
	thetaDot := float64(a.RTT-p.prevRTT) / float64(dt) // dRTT/dt (line 11)
	tau := p.lim.BaseRTT
	norm := (thetaDot + 1) * float64(a.RTT) / float64(tau) // Γnorm (line 12)

	// prevRTT/t_c roll forward on every ACK (lines 7–8).
	p.prevRTT, p.prevAckTime = a.RTT, a.Now

	// Smoothing (line 13), with Δt capped at τ as for Algorithm 1.
	sdt := dt
	if sdt > tau {
		sdt = tau
	}
	p.smooth = (p.smooth*float64(tau-sdt) + norm*float64(sdt)) / float64(tau)

	// UpdateWindow's once-per-RTT gate (lines 16–18).
	if a.AckSeq < p.lastUpdated {
		return
	}
	g := p.cfg.Gamma
	normS := math.Max(p.smooth, minNormPower)
	p.setCwnd(g*(p.oldCwnd/normS+p.cfg.Beta) + (1-g)*p.cwnd)
	p.lastUpdated = a.SndNxt // lastUpdated = snd_nxt (line 22)
	if a.AckSeq >= p.snapSeq {
		p.oldCwnd = p.cwnd
		p.snapSeq = a.SndNxt
	}
}

func (p *ThetaPowerTCP) setCwnd(w float64) {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return
	}
	p.cwnd = clampF(w, p.cfg.MinCwnd, p.cfg.MaxCwnd)
	p.rate = rateFor(p.cwnd, p.lim)
}

// NormPowerSmoothed exposes Γ_smooth for tests and instrumentation.
func (p *ThetaPowerTCP) NormPowerSmoothed() float64 { return p.smooth }
