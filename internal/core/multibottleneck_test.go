package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
)

// parkingLot builds a 3-switch chain (2 inter-switch 25G links) with a
// through pair and a cross pair per link.
func parkingLot(quantized bool) *topo.Network {
	return topo.ParkingLot(topo.ParkingLotConfig{
		Switches: 3,
		Opts: topo.Options{
			Hosts:       topo.TransportHosts(transport.Config{BaseRTT: 20 * sim.Microsecond}),
			INT:         true,
			QuantizeINT: quantized,
		},
	})
}

// §3.5: on a multi-bottleneck path the INT law reacts to the most
// bottlenecked hop. The through flow competes with one cross flow on
// each link; fair share of each 25G link is 12.5G, and the through flow
// must neither starve nor overrun it.
func TestPowerTCPMultiBottleneckShare(t *testing.T) {
	net := parkingLot(false)
	through := net.TransportHost(0)
	thrDst := net.TransportHost(1)
	through.StartFlow(net.NextFlowID(), thrDst.ID(), transport.Unbounded,
		core.New(core.Config{}), 0)
	// Cross flow on link 0 (host2→host3) and link 1 (host4→host5).
	net.TransportHost(2).StartFlow(net.NextFlowID(), net.HostID(3), transport.Unbounded,
		core.New(core.Config{}), 0)
	net.TransportHost(4).StartFlow(net.NextFlowID(), net.HostID(5), transport.Unbounded,
		core.New(core.Config{}), 0)

	net.Eng.RunUntil(sim.Time(4 * sim.Millisecond))
	start := thrDst.ReceivedTotal()
	net.Eng.RunUntil(sim.Time(7 * sim.Millisecond))
	rate := units.RateFromBytes(thrDst.ReceivedTotal()-start, 3*sim.Millisecond)
	if rate < 7*units.Gbps || rate > 16*units.Gbps {
		t.Fatalf("through flow rate = %v, want ≈12.5G fair share", rate)
	}
	// The cross flows take the rest of their links.
	cross := net.TransportHost(3).ReceivedTotal() + net.TransportHost(5).ReceivedTotal()
	if cross == 0 {
		t.Fatal("cross flows starved")
	}
}

// The window must track the most-congested hop: with the second link
// far slower, PowerTCP's through flow converges to that link's capacity
// without piling a queue on the first.
func TestPowerTCPTracksWorstHop(t *testing.T) {
	net := topo.ParkingLot(topo.ParkingLotConfig{
		Switches: 3,
		LinkRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts: topo.TransportHosts(transport.Config{BaseRTT: 20 * sim.Microsecond}),
			INT:   true,
		},
	})
	// Congest only link 1 with a cross flow; link 0 stays uncontended.
	dst := net.TransportHost(1)
	net.TransportHost(0).StartFlow(net.NextFlowID(), dst.ID(), transport.Unbounded,
		core.New(core.Config{}), 0)
	net.TransportHost(4).StartFlow(net.NextFlowID(), net.HostID(5), transport.Unbounded,
		core.New(core.Config{}), 0)
	net.Eng.RunUntil(sim.Time(5 * sim.Millisecond))
	// Link 0's queue (switch 0 → switch 1 port) must stay small: the
	// through flow is limited by link 1, not queuing at link 0.
	q0 := net.Switches[0].Ports()[0].QueueBytes()
	if q0 > 100_000 {
		t.Fatalf("queue piled on the uncongested hop: %dB", q0)
	}
}

// PowerTCP must keep converging when the INT records are quantized to
// the 64-bit wire format (what a real switch pipeline exports).
func TestPowerTCPWithQuantizedINT(t *testing.T) {
	net := topo.Dumbbell(topo.DumbbellConfig{
		Left: 1, Right: 1,
		HostRate:       100 * units.Gbps,
		BottleneckRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts:       topo.TransportHosts(transport.Config{BaseRTT: 16 * sim.Microsecond}),
			INT:         true,
			QuantizeINT: true,
		},
	})
	dst := net.TransportHost(1)
	net.TransportHost(0).StartFlow(net.NextFlowID(), dst.ID(), transport.Unbounded,
		core.New(core.Config{}), 0)
	rate := goodput(net, dst, 3*sim.Millisecond, 6*sim.Millisecond)
	if rate < 21*units.Gbps {
		t.Fatalf("quantized INT broke convergence: %v", rate)
	}
	if q := net.BottleneckPort().QueueBytes(); q > 150_000 {
		t.Fatalf("quantized INT standing queue = %dB", q)
	}
}
