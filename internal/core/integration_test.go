package core_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/swtch"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
)

// dumbbell builds senders→25G bottleneck→receivers with INT, 100G hosts.
func dumbbell(senders int) *topo.Network {
	return topo.Dumbbell(topo.DumbbellConfig{
		Left:           senders,
		Right:          senders,
		HostRate:       100 * units.Gbps,
		BottleneckRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts: topo.TransportHosts(transport.Config{BaseRTT: 16 * sim.Microsecond}),
			INT:   true,
		},
	})
}

// runFor advances the network and samples receiver bytes over a window.
func goodput(net *topo.Network, rx *transport.Host, from, to sim.Duration) units.BitRate {
	net.Eng.RunUntil(sim.Time(from))
	start := rx.ReceivedTotal()
	net.Eng.RunUntil(sim.Time(to))
	return units.RateFromBytes(rx.ReceivedTotal()-start, to-from)
}

func TestPowerTCPConvergesOnBottleneck(t *testing.T) {
	net := dumbbell(1)
	src, dst := net.TransportHost(0), net.TransportHost(1)
	src.StartFlow(net.NextFlowID(), dst.ID(), transport.Unbounded,
		core.New(core.Config{}), 0)

	rate := goodput(net, dst, 3*sim.Millisecond, 5*sim.Millisecond)
	if rate < 22*units.Gbps {
		t.Fatalf("goodput = %v, want ≈25G (no throughput loss at equilibrium)", rate)
	}
	// Equilibrium queue is β̂ = hostBDP/N per flow — small, not empty, and
	// far from the uncontrolled BDP-sized standing queue of loss-based CC.
	q := net.BottleneckPort().QueueBytes()
	hostBDP := (100 * units.Gbps).BDP(16 * sim.Microsecond)
	if q > hostBDP/2 {
		t.Fatalf("standing queue %dB exceeds half a host BDP (%dB)", q, hostBDP/2)
	}
}

func TestPowerTCPFairnessTwoFlows(t *testing.T) {
	net := dumbbell(2)
	rxA, rxB := net.TransportHost(2), net.TransportHost(3)
	net.TransportHost(0).StartFlow(net.NextFlowID(), rxA.ID(), transport.Unbounded,
		core.New(core.Config{}), 0)
	net.TransportHost(1).StartFlow(net.NextFlowID(), rxB.ID(), transport.Unbounded,
		core.New(core.Config{}), 0)

	net.Eng.RunUntil(sim.Time(4 * sim.Millisecond))
	a0, b0 := rxA.ReceivedTotal(), rxB.ReceivedTotal()
	net.Eng.RunUntil(sim.Time(6 * sim.Millisecond))
	a := float64(rxA.ReceivedTotal() - a0)
	b := float64(rxB.ReceivedTotal() - b0)
	sum, diff := a+b, a-b
	if diff < 0 {
		diff = -diff
	}
	if sum == 0 || diff/sum > 0.15 {
		t.Fatalf("unfair split: %v vs %v bytes", a, b)
	}
	// Aggregate should still fill the bottleneck.
	if got := units.RateFromBytes(int64(sum), 2*sim.Millisecond); got < 21*units.Gbps {
		t.Fatalf("aggregate goodput = %v", got)
	}
}

func TestThetaPowerTCPHoldsThroughput(t *testing.T) {
	net := dumbbell(1)
	src, dst := net.TransportHost(0), net.TransportHost(1)
	src.StartFlow(net.NextFlowID(), dst.ID(), transport.Unbounded,
		core.NewTheta(core.Config{}), 0)
	rate := goodput(net, dst, 3*sim.Millisecond, 6*sim.Millisecond)
	// θ-PowerTCP cannot see under-utilization (§3.5) so it is allowed to
	// run below line rate, but must stay in a sane band.
	if rate < 15*units.Gbps {
		t.Fatalf("θ-PowerTCP goodput = %v, want ≥15G", rate)
	}
	q := net.BottleneckPort().QueueBytes()
	if q > 200_000 {
		t.Fatalf("θ-PowerTCP standing queue = %dB", q)
	}
}

func TestHPCCBaselineConverges(t *testing.T) {
	net := dumbbell(1)
	src, dst := net.TransportHost(0), net.TransportHost(1)
	src.StartFlow(net.NextFlowID(), dst.ID(), transport.Unbounded, cc.NewHPCC(), 0)
	rate := goodput(net, dst, 3*sim.Millisecond, 6*sim.Millisecond)
	// HPCC targets η=0.95 of the bottleneck.
	if rate < 20*units.Gbps {
		t.Fatalf("HPCC goodput = %v", rate)
	}
	if q := net.BottleneckPort().QueueBytes(); q > 150_000 {
		t.Fatalf("HPCC standing queue = %dB", q)
	}
}

func TestDCTCPStandingQueueVsPowerTCP(t *testing.T) {
	// §2.2: ECN-based CC oscillates around its marking threshold K — a
	// standing queue PowerTCP does not have. Single long flow, 25G
	// bottleneck, K = 65 KB step marking.
	run := func(alg cc.Algorithm, ecn bool) int64 {
		opts := topo.Options{
			Hosts: topo.TransportHosts(transport.Config{BaseRTT: 16 * sim.Microsecond}),
			INT:   true,
		}
		if ecn {
			opts.ECN = swtch.ECNConfig{KMin: 65 << 10, KMax: 65<<10 + 1, PMax: 1}
		}
		net := topo.Dumbbell(topo.DumbbellConfig{
			Left: 1, Right: 1,
			HostRate:       100 * units.Gbps,
			BottleneckRate: 25 * units.Gbps,
			Opts:           opts,
		})
		net.TransportHost(0).StartFlow(net.NextFlowID(), net.HostID(1),
			transport.Unbounded, alg, 0)
		// Mean queue over the steady-state half of the run.
		var sum, n int64
		for at := 3 * sim.Millisecond; at <= 6*sim.Millisecond; at += 50 * sim.Microsecond {
			net.Eng.RunUntil(sim.Time(at))
			sum += net.BottleneckPort().QueueBytes()
			n++
		}
		return sum / n
	}
	dctcpQ := run(cc.NewDCTCP(), true)
	powerQ := run(core.New(core.Config{}), false)
	// DCTCP's mean queue sits in the vicinity of K; PowerTCP's near β̂.
	if dctcpQ < 20_000 {
		t.Fatalf("DCTCP standing queue = %dB, expected ≳K/3 (K=65KB)", dctcpQ)
	}
	if powerQ >= dctcpQ {
		t.Fatalf("PowerTCP queue %dB not below DCTCP's %dB", powerQ, dctcpQ)
	}
}

func TestPowerTCPDrainsIncastQuickly(t *testing.T) {
	// 8 senders slam one receiver through a star; PowerTCP must keep the
	// post-incast queue near zero while finishing all flows.
	net := topo.Star(topo.StarConfig{
		Hosts:    9,
		HostRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts:         topo.TransportHosts(transport.Config{BaseRTT: 12 * sim.Microsecond}),
			BufferPerGbps: topo.TofinoBufferPerGbps,
			INT:           true,
		},
	})
	done := 0
	for i := 1; i < 9; i++ {
		h := net.TransportHost(i)
		h.OnFlowDone = func(*transport.Flow) { done++ }
		h.StartFlow(net.NextFlowID(), net.HostID(0), 500_000, core.New(core.Config{}), 0)
	}
	net.Eng.Run()
	if done != 8 {
		t.Fatalf("completed %d/8 incast flows", done)
	}
	// All queues empty at the end.
	for _, sw := range net.Switches {
		if used := sw.Shared().Used(); used != 0 {
			t.Fatalf("switch buffer not drained: %dB", used)
		}
	}
}
