package core

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func limits() cc.Limits {
	return cc.Limits{
		BaseRTT:  20 * sim.Microsecond,
		HostRate: 100 * units.Gbps,
		MSS:      1000,
	}
}

// hop builds a record for a 100G link.
func hop(q int64, tx uint64, at sim.Duration) telemetry.HopRecord {
	return telemetry.HopRecord{QLen: q, TxBytes: tx, TS: sim.Time(at), Rate: 100 * units.Gbps}
}

func TestInitStartsAtLineRate(t *testing.T) {
	p := New(Config{})
	p.Init(limits())
	if p.Cwnd() != 250_000 { // 100G × 20µs
		t.Fatalf("cwnd_init = %v, want BDP 250000", p.Cwnd())
	}
	if p.Rate() != 100*units.Gbps {
		t.Fatalf("initial rate = %v, want line rate", p.Rate())
	}
}

func TestNormPowerAtEquilibrium(t *testing.T) {
	// Queue empty and stable, link transmitting at line rate: λ = b,
	// ν = b·τ, so Γnorm = 1 and the window only creeps up by γβ (clamped
	// at the BDP cap).
	p := New(Config{})
	p.Init(limits())
	const dt = 10 * sim.Microsecond
	bBytes := uint64((100 * units.Gbps).Bytes(dt))
	p.OnAck(cc.Ack{AckSeq: 1000, SndNxt: 2000, Hops: []telemetry.HopRecord{hop(0, 0, 0)}})
	p.OnAck(cc.Ack{AckSeq: 2000, SndNxt: 3000, Hops: []telemetry.HopRecord{hop(0, bBytes, dt)}})
	if got := p.NormPowerSmoothed(); got < 0.99 || got > 1.01 {
		t.Fatalf("Γ_smooth = %v, want ≈1 at equilibrium", got)
	}
	if p.Cwnd() != 250_000 {
		t.Fatalf("cwnd moved off the cap at equilibrium: %v", p.Cwnd())
	}
}

func TestReactsToQueueBuildup(t *testing.T) {
	// Queue grows 0→100KB in 10µs while the link transmits at line rate:
	// Γnorm = ((q̇+µ)(q+bτ))/(b²τ) = 2.52, so the window must shrink.
	p := New(Config{})
	p.Init(limits())
	const dt = 10 * sim.Microsecond
	bBytes := uint64((100 * units.Gbps).Bytes(dt))
	p.OnAck(cc.Ack{AckSeq: 1000, SndNxt: 2000, Hops: []telemetry.HopRecord{hop(0, 0, 0)}})
	p.OnAck(cc.Ack{AckSeq: 2000, SndNxt: 3000, Hops: []telemetry.HopRecord{hop(100_000, bBytes, dt)}})
	// Smoothed power: (1·10µs + 2.52·10µs)/20µs = 1.76.
	if got := p.NormPowerSmoothed(); got < 1.7 || got > 1.82 {
		t.Fatalf("Γ_smooth = %v, want ≈1.76", got)
	}
	if p.Cwnd() >= 250_000 {
		t.Fatalf("cwnd did not decrease under congestion: %v", p.Cwnd())
	}
}

func TestReactsToQueueDrainWithSpareCapacity(t *testing.T) {
	// Queue draining and link under-utilized: power below base → window
	// grows (multiplicative increase toward the freed bandwidth).
	p := New(Config{MaxCwnd: 1e9})
	p.Init(limits())
	p.setCwnd(50_000) // start well below BDP
	p.oldCwnd = 50_000
	const dt = 10 * sim.Microsecond
	half := uint64((50 * units.Gbps).Bytes(dt)) // half line rate
	p.OnAck(cc.Ack{AckSeq: 1000, SndNxt: 2000, Hops: []telemetry.HopRecord{hop(50_000, 0, 0)}})
	p.OnAck(cc.Ack{AckSeq: 2000, SndNxt: 3000, Hops: []telemetry.HopRecord{hop(0, half, dt)}})
	if p.Cwnd() <= 50_000 {
		t.Fatalf("cwnd did not grow with spare capacity: %v", p.Cwnd())
	}
}

func TestDistinguishesFig2cCases(t *testing.T) {
	// Figure 2c: with the same queue length, a draining queue (case 2)
	// must trigger a weaker reaction than one filling at 8× (case 3) —
	// the distinction voltage-based CC cannot make.
	mkNorm := func(qStart, qEnd int64) float64 {
		p := New(Config{})
		p.Init(limits())
		const dt = 5 * sim.Microsecond
		b := uint64((100 * units.Gbps).Bytes(dt))
		p.OnAck(cc.Ack{AckSeq: 1, SndNxt: 2, Hops: []telemetry.HopRecord{hop(qStart, 0, 0)}})
		p.OnAck(cc.Ack{AckSeq: 2, SndNxt: 3, Hops: []telemetry.HopRecord{hop(qEnd, b, dt)}})
		return p.NormPowerSmoothed()
	}
	fill := mkNorm(100_000, 500_000)  // filling fast
	drain := mkNorm(500_000, 100_000) // draining from the same level
	if fill <= drain {
		t.Fatalf("power CC failed to separate filling (%v) from draining (%v)", fill, drain)
	}
}

func TestPerRTTGate(t *testing.T) {
	p := New(Config{UpdatePerRTT: true})
	p.Init(limits())
	const dt = sim.Microsecond
	b := uint64((100 * units.Gbps).Bytes(dt))
	// Prime, then two congested acks inside the same RTT window: only the
	// first may update.
	p.OnAck(cc.Ack{AckSeq: 1000, SndNxt: 100_000, Hops: []telemetry.HopRecord{hop(0, 0, 0)}})
	p.OnAck(cc.Ack{AckSeq: 2000, SndNxt: 100_000, Hops: []telemetry.HopRecord{hop(400_000, b, dt)}})
	w1 := p.Cwnd()
	p.OnAck(cc.Ack{AckSeq: 3000, SndNxt: 100_000, Hops: []telemetry.HopRecord{hop(800_000, 2*b, 2*dt)}})
	if p.Cwnd() != w1 {
		t.Fatalf("window updated twice within an RTT: %v → %v", w1, p.Cwnd())
	}
}

func TestLossHalvesWindow(t *testing.T) {
	p := New(Config{})
	p.Init(limits())
	p.OnLoss(0)
	if p.Cwnd() != 125_000 {
		t.Fatalf("cwnd after loss = %v, want 125000", p.Cwnd())
	}
}

func TestIgnoresBrokenSamples(t *testing.T) {
	p := New(Config{})
	p.Init(limits())
	w := p.Cwnd()
	p.OnAck(cc.Ack{})                                                        // no INT
	p.OnAck(cc.Ack{Hops: []telemetry.HopRecord{hop(0, 0, 5)}})               // prime
	p.OnAck(cc.Ack{Hops: []telemetry.HopRecord{hop(0, 0, 5)}})               // dt = 0
	p.OnAck(cc.Ack{Hops: []telemetry.HopRecord{hop(0, 0, 4), hop(0, 0, 4)}}) // hop count change
	if p.Cwnd() != w {
		t.Fatalf("window moved on degenerate input: %v", p.Cwnd())
	}
}

func TestThetaPowerTCPBasics(t *testing.T) {
	p := NewTheta(Config{})
	p.Init(limits())
	if p.Cwnd() != 250_000 {
		t.Fatalf("θ cwnd_init = %v", p.Cwnd())
	}
	// RTT at base and flat: Γnorm = (0+1)·τ/τ = 1 → smooth stays 1.
	now := sim.Time(0)
	p.OnAck(cc.Ack{Now: now, RTT: 20 * sim.Microsecond, AckSeq: 1, SndNxt: 2})
	now = now.Add(10 * sim.Microsecond)
	p.OnAck(cc.Ack{Now: now, RTT: 20 * sim.Microsecond, AckSeq: 2, SndNxt: 3})
	if got := p.NormPowerSmoothed(); got < 0.99 || got > 1.01 {
		t.Fatalf("θ Γ_smooth = %v, want 1", got)
	}
	// Rising RTT (queue building): power above 1 and window shrinks.
	now = now.Add(10 * sim.Microsecond)
	p.OnAck(cc.Ack{Now: now, RTT: 40 * sim.Microsecond, AckSeq: 20_000, SndNxt: 30_000})
	if p.NormPowerSmoothed() <= 1 {
		t.Fatalf("θ Γ_smooth = %v after RTT jump, want >1", p.NormPowerSmoothed())
	}
	if p.Cwnd() >= 250_000 {
		t.Fatalf("θ window did not shrink: %v", p.Cwnd())
	}
}

func TestThetaOncePerRTTGate(t *testing.T) {
	p := NewTheta(Config{})
	p.Init(limits())
	now := sim.Time(0)
	p.OnAck(cc.Ack{Now: now, RTT: 20 * sim.Microsecond, AckSeq: 1, SndNxt: 500_000})
	now = now.Add(5 * sim.Microsecond)
	p.OnAck(cc.Ack{Now: now, RTT: 60 * sim.Microsecond, AckSeq: 2, SndNxt: 500_000})
	w := p.Cwnd()
	now = now.Add(5 * sim.Microsecond)
	// AckSeq below lastUpdated (=500000): smoothing continues but the
	// window must not move.
	p.OnAck(cc.Ack{Now: now, RTT: 80 * sim.Microsecond, AckSeq: 3, SndNxt: 500_000})
	if p.Cwnd() != w {
		t.Fatalf("θ window updated twice in one RTT")
	}
}

func TestGammaZeroDefaultsApplied(t *testing.T) {
	p := New(Config{})
	p.Init(limits())
	if p.cfg.Gamma != 0.9 {
		t.Fatalf("γ default = %v, want 0.9", p.cfg.Gamma)
	}
	wantBeta := 250_000.0 / 10
	if p.cfg.Beta != wantBeta {
		t.Fatalf("β default = %v, want %v", p.cfg.Beta, wantBeta)
	}
}
