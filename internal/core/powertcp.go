// Package core implements the paper's contribution: the power-based
// congestion-control laws PowerTCP (Algorithm 1, INT feedback) and
// θ-PowerTCP (Algorithm 2, delay feedback).
//
// Power is the product of network voltage ν = q + b·τ (BDP plus buffered
// bytes) and network current λ = q̇ + µ (queue gradient plus transmission
// rate), Γ = λ·ν (Eq. 5/6). Property 1 gives Γ(t) = b·w(t−t_f): measured
// power reveals the *aggregate* window occupying the bottleneck, which is
// what lets a per-flow sender make precise multiplicative decisions. Each
// update applies
//
//	cwnd ← γ·(cwnd_old/Γnorm + β) + (1−γ)·cwnd     (Eq. 7)
//
// with Γnorm = Γ/(b²τ) the power normalized by its equilibrium value,
// cwnd_old the window one RTT ago, β the additive-increase share, and γ
// an EWMA weight. The law is Lyapunov- and asymptotically stable with
// equilibrium (wₑ, qₑ) = (b·τ + β̂, β̂) and converges with time constant
// δt/γ (Theorems 1–2, reproduced numerically in internal/fluid).
package core

import (
	"math"

	"repro/internal/cc"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Config parameterizes both PowerTCP variants. The zero value yields the
// paper's recommended settings.
type Config struct {
	// Gamma is the EWMA weight γ ∈ (0,1] for window updates; the paper
	// recommends 0.9 from a parameter sweep (§3.3).
	Gamma float64
	// Beta is the additive increase in bytes. Zero derives the paper's
	// β = HostBw·τ/ExpectedFlows at Init time.
	Beta float64
	// ExpectedFlows is N in β = HostBw·τ/N, the flows expected to share
	// the host NIC (§3.3 "Parameters"). Default 10.
	ExpectedFlows int
	// UpdatePerRTT limits window updates to once per RTT, the
	// configuration used for the RDCN case study's fair comparison with
	// reTCP (§5). Default: update on every ACK (θ-PowerTCP always
	// updates once per RTT, per Algorithm 2).
	UpdatePerRTT bool
	// MinCwnd floors the window (bytes) so pacing never reaches zero.
	// Default 100 bytes (large incasts need sub-MSS windows).
	MinCwnd float64
	// MaxCwnd caps the window in bytes; 0 defaults to the host BDP, the
	// paper's cwnd_init (flows start at line rate, §3.3).
	MaxCwnd float64
}

func (c *Config) fillDefaults(lim cc.Limits) {
	if c.Gamma == 0 {
		c.Gamma = 0.9
	}
	if c.ExpectedFlows == 0 {
		c.ExpectedFlows = 10
	}
	if c.Beta == 0 {
		c.Beta = lim.BDP() / float64(c.ExpectedFlows)
	}
	if c.MinCwnd == 0 {
		c.MinCwnd = 100
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = lim.BDP()
	}
}

// minNormPower floors the normalized power before dividing, so a
// momentarily idle bottleneck (Γ ≈ 0) produces a strong but finite
// multiplicative increase rather than an infinite window.
const minNormPower = 1e-3

// PowerTCP is Algorithm 1: the INT-based variant.
type PowerTCP struct {
	cfg Config
	lim cc.Limits

	cwnd    float64
	rate    units.BitRate
	oldCwnd float64 // cwnd snapshot from one RTT ago
	snapSeq int64   // sequence boundary for the next snapshot

	prev     []telemetry.HopRecord
	havePrev bool
	smooth   float64 // Γ_smooth, normalized
	lastUpd  int64   // per-RTT update gate (UpdatePerRTT)
}

// New returns a PowerTCP instance with the given configuration.
func New(cfg Config) *PowerTCP { return &PowerTCP{cfg: cfg} }

// Builder adapts New to the cc.Builder registry shape.
func Builder(cfg Config) cc.Builder {
	return func() cc.Algorithm { return New(cfg) }
}

// Builder adapts the configuration to cc.Builder — the hook the
// experiment scheme registry uses to materialize registered configs.
func (c Config) Builder() cc.Builder { return Builder(c) }

// Config returns the instance's configuration (post-Init it includes the
// derived defaults). Experiment tests use it to verify that scheme
// options actually reached the built algorithm.
func (p *PowerTCP) Config() Config { return p.cfg }

// Name implements cc.Algorithm.
func (p *PowerTCP) Name() string { return "powertcp" }

// Init implements cc.Algorithm: flows start at line rate with
// cwnd_init = HostBw·τ.
func (p *PowerTCP) Init(lim cc.Limits) {
	p.lim = lim
	p.cfg.fillDefaults(lim)
	p.cwnd = lim.BDP()
	p.oldCwnd = p.cwnd
	p.rate = lim.HostRate
	p.smooth = 1 // assume equilibrium power until the first measurement
}

// Cwnd implements cc.Algorithm.
func (p *PowerTCP) Cwnd() float64 { return p.cwnd }

// Rate implements cc.Algorithm: rate = cwnd/τ (Algorithm 1, line 6).
func (p *PowerTCP) Rate() units.BitRate { return p.rate }

// OnLoss implements cc.Algorithm. Loss under PowerTCP means admission
// drops at a shared buffer; halving mirrors the conservative reaction of
// the HPCC reference implementation to retransmissions.
func (p *PowerTCP) OnLoss(sim.Time) {
	p.setCwnd(p.cwnd / 2)
}

// OnAck implements cc.Algorithm (Algorithm 1, procedure NewAck).
func (p *PowerTCP) OnAck(a cc.Ack) {
	if len(a.Hops) == 0 {
		return // no INT this path; nothing to react to
	}
	if !p.havePrev || len(p.prev) != len(a.Hops) {
		p.prev = append(p.prev[:0], a.Hops...)
		p.havePrev = true
		return
	}
	norm, dt, ok := p.normPower(a.Hops)
	// prevInt = ack.H (line 7): always roll the reference forward.
	p.prev = append(p.prev[:0], a.Hops...)
	if !ok {
		return
	}
	p.smoothPower(norm, dt)

	if p.cfg.UpdatePerRTT && a.AckSeq < p.lastUpd {
		return
	}
	p.updateWindow(a)
	p.lastUpd = a.SndNxt
}

// normPower is Algorithm 1's NormPower: the maximum normalized power
// across hops, with the Δt of the maximizing hop.
func (p *PowerTCP) normPower(hops []telemetry.HopRecord) (norm float64, dt sim.Duration, ok bool) {
	tau := p.lim.BaseRTT.Seconds()
	best := -1.0
	var bestDT sim.Duration
	for i := range hops {
		h, prev := hops[i], p.prev[i]
		hdt := h.TS.Sub(prev.TS)
		if hdt <= 0 {
			continue
		}
		dts := hdt.Seconds()
		qdot := float64(h.QLen-prev.QLen) / dts     // dq/dt (line 12)
		mu := float64(h.TxBytes-prev.TxBytes) / dts // txRate (line 13)
		lambda := qdot + mu                         // current λ (line 14)
		bBps := h.Rate.BytesPerSec()                //
		nu := float64(h.QLen) + bBps*tau            // voltage ν = qlen + BDP (15–16)
		gamma := lambda * nu                        // power Γ′ (line 17)
		e := bBps * bBps * tau                      // base power b²τ (line 18)
		if g := gamma / e; g > best {               // Γ′norm, max over hops (19–21)
			best = g
			bestDT = hdt
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestDT, true
}

// smoothPower applies line 24's EWMA over the update interval:
// Γs ← (Γs·(τ−Δt) + Γnorm·Δt)/τ.
func (p *PowerTCP) smoothPower(norm float64, dt sim.Duration) {
	tau := p.lim.BaseRTT
	if dt > tau {
		dt = tau
	}
	p.smooth = (p.smooth*float64(tau-dt) + norm*float64(dt)) / float64(tau)
}

// updateWindow is Algorithm 1's UpdateWindow plus the once-per-RTT
// old-window bookkeeping of UpdateOld.
func (p *PowerTCP) updateWindow(a cc.Ack) {
	norm := math.Max(p.smooth, minNormPower)
	g := p.cfg.Gamma
	p.setCwnd(g*(p.oldCwnd/norm+p.cfg.Beta) + (1-g)*p.cwnd)
	if a.AckSeq >= p.snapSeq { // one RTT has passed since the snapshot
		p.oldCwnd = p.cwnd
		p.snapSeq = a.SndNxt
	}
}

func (p *PowerTCP) setCwnd(w float64) {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return
	}
	p.cwnd = clampF(w, p.cfg.MinCwnd, p.cfg.MaxCwnd)
	p.rate = rateFor(p.cwnd, p.lim)
}

// NormPowerSmoothed exposes Γ_smooth for tests and instrumentation.
func (p *PowerTCP) NormPowerSmoothed() float64 { return p.smooth }

func clampF(w, lo, hi float64) float64 {
	if w < lo {
		return lo
	}
	if w > hi {
		return hi
	}
	return w
}

// rateFor paces at cwnd/τ capped to the NIC line rate.
func rateFor(cwnd float64, lim cc.Limits) units.BitRate {
	r := units.BitRate(cwnd*8/lim.BaseRTT.Seconds() + 0.5)
	if r < 1*units.Mbps {
		r = 1 * units.Mbps // keep the pacer alive at tiny windows
	}
	return units.MinRate(r, lim.HostRate)
}
