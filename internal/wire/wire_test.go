package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func samplePacket() *packet.Packet {
	return &packet.Packet{
		Kind: packet.Data, Flow: 42, Src: 3, Dst: 9,
		Seq: 123_000, PayloadLen: 1000, Priority: 2,
		ECT: true, Rtx: true,
		EchoSent: sim.Time(55 * sim.Microsecond),
		Hops: []telemetry.HopRecord{
			{QLen: 4096, TxBytes: 1 << 20, TS: sim.Time(10 * sim.Microsecond), Rate: 25 * units.Gbps},
		},
	}
}

// normalize reduces a packet to its wire-visible fields (quantized INT,
// ns-truncated timestamps) so round-trip comparisons are exact.
func normalize(p *packet.Packet) packet.Packet {
	q := *p
	q.SentAt = 0
	q.ID = 0
	q.AckedNew = 0
	q.TTL = 0
	q.EchoECN = false // not carried; the CE bit covers the wire case
	q.EchoSent = sim.Time(sim.Duration(q.EchoSent) / sim.Nanosecond * sim.Nanosecond)
	q.Hops = nil
	for _, h := range p.Hops {
		q.Hops = append(q.Hops, h.Quantize())
	}
	if q.Kind == packet.Grant {
		q.AckSeq = 0
	} else {
		q.GrantOffset = 0
	}
	return q
}

func equalPkts(a, b packet.Packet) bool {
	if len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	a.Hops, b.Hops = nil, nil
	return reflect.DeepEqual(a, b)
}

func TestRoundTripData(t *testing.T) {
	p := samplePacket()
	buf, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != Len(p) {
		t.Fatalf("encoded %d bytes, Len says %d", len(buf), Len(p))
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPkts(normalize(got), normalize(p)) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestRoundTripGrantWithExtension(t *testing.T) {
	p := &packet.Packet{
		Kind: packet.Grant, Flow: 7, Src: 1, Dst: 2,
		Seq: -1, GrantOffset: 500_000, Priority: 5,
		MsgID: 0xDEAD, MsgLen: 2 << 20,
	}
	buf, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != BaseLen+MsgExtLen {
		t.Fatalf("grant encoded to %d bytes", len(buf))
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GrantOffset != 500_000 || got.MsgID != 0xDEAD || got.MsgLen != 2<<20 {
		t.Fatalf("grant fields lost: %+v", got)
	}
	if got.Seq != -1 {
		t.Fatalf("negative resend sentinel lost: %d", got.Seq)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err != ErrShort {
		t.Errorf("nil: %v", err)
	}
	buf, _ := Marshal(samplePacket())
	buf[0] = 0
	if _, err := Unmarshal(buf); err != ErrBadMagic {
		t.Errorf("magic: %v", err)
	}
	buf, _ = Marshal(samplePacket())
	if _, err := Unmarshal(buf[:len(buf)-3]); err == nil {
		t.Error("truncated INT accepted")
	}
	// Truncated message extension.
	g := &packet.Packet{Kind: packet.Grant, MsgID: 1, MsgLen: 10}
	buf, _ = Marshal(g)
	if _, err := Unmarshal(buf[:BaseLen+2]); err != ErrShort {
		t.Errorf("truncated ext: %v", err)
	}
}

// Property: random packets survive the round trip modulo documented
// quantization.
func TestRoundTripProperty(t *testing.T) {
	rates := []units.BitRate{25 * units.Gbps, 100 * units.Gbps}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &packet.Packet{
			Kind:        packet.Kind(rng.Intn(5)),
			Flow:        packet.FlowID(rng.Uint64()),
			Src:         packet.NodeID(rng.Int31()),
			Dst:         packet.NodeID(rng.Int31()),
			Seq:         rng.Int63n(1 << 40),
			PayloadLen:  int32(rng.Intn(1500)),
			Priority:    uint8(rng.Intn(8)),
			ECT:         rng.Intn(2) == 0,
			CE:          rng.Intn(2) == 0,
			Rtx:         rng.Intn(2) == 0,
			Unscheduled: rng.Intn(2) == 0,
			EchoSent:    sim.Time(sim.Duration(rng.Int63n(1e15))),
		}
		if p.Kind == packet.Grant {
			p.GrantOffset = rng.Int63n(1 << 30)
			p.MsgID = rng.Uint64()
			p.MsgLen = rng.Int63n(1 << 30)
		} else {
			p.AckSeq = rng.Int63n(1 << 40)
		}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			p.Hops = append(p.Hops, telemetry.HopRecord{
				QLen:    rng.Int63n(1 << 21),
				TxBytes: rng.Uint64(),
				TS:      sim.Time(sim.Duration(rng.Int63n(1e12))),
				Rate:    rates[rng.Intn(len(rates))],
			})
		}
		buf, err := Marshal(p)
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return equalPkts(normalize(got), normalize(p))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	buf, _ := Marshal(samplePacket())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
