// Package wire serializes packets to bytes — the deployment path of the
// paper's §3.6/§5: a fixed 48-byte base header (the header budget the
// RDMA simulations account per MSS) followed, when telemetry is present,
// by the INT option of internal/telemetry (32-bit base + 64 bits per
// hop, TCP option kind 36).
//
// The simulator itself passes packets as Go structs for speed; this
// codec exists for the proof-of-concept interop path (kernel module /
// Tofino pipeline), for trace files, and to pin the header layout with
// tests. Payload bytes are not carried — like the paper's simulations,
// only sizes matter — so Unmarshal reconstructs a packet whose
// PayloadLen is set but whose contents are implicit.
//
// Base header layout (big endian):
//
//	off  size  field
//	 0    1    magic (0x50 'P')
//	 1    1    kind
//	 2    1    flags: bit0 ECT, bit1 CE, bit2 Rtx, bit3 Unscheduled,
//	           bit4 msg-extension present, bit5 INT option present
//	 3    1    priority
//	 4    4    src node
//	 8    4    dst node
//	12    8    flow id
//	20    8    seq (Data) / resend seq (Grant)
//	28    8    ack seq (Ack) / grant offset (Grant)
//	36    4    payload length
//	40    8    echoed send timestamp, nanoseconds
//
// The optional 16-byte message extension (HOMA) carries MsgID and MsgLen.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// BaseLen is the fixed header length; it equals packet.HeaderSize so the
// simulated wire sizes match the codec's.
const BaseLen = packet.HeaderSize

// MsgExtLen is the optional HOMA extension length.
const MsgExtLen = 16

const wireMagic = 0x50

// Flag bits.
const (
	flagECT byte = 1 << iota
	flagCE
	flagRtx
	flagUnscheduled
	flagMsgExt
	flagINT
)

// Errors returned by the codec.
var (
	ErrShort    = errors.New("wire: buffer too short")
	ErrBadMagic = errors.New("wire: bad magic")
)

// needsExt reports whether the packet carries HOMA message state.
func needsExt(p *packet.Packet) bool {
	return p.MsgID != 0 || p.MsgLen != 0 || p.GrantOffset != 0
}

// Len returns the encoded size of p's headers (excluding payload bytes).
func Len(p *packet.Packet) int {
	n := BaseLen
	if needsExt(p) {
		n += MsgExtLen
	}
	if len(p.Hops) > 0 {
		n += telemetry.WireLen(len(p.Hops))
	}
	return n
}

// Marshal encodes p's headers.
func Marshal(p *packet.Packet) ([]byte, error) {
	buf := make([]byte, BaseLen, Len(p))
	buf[0] = wireMagic
	buf[1] = byte(p.Kind)
	var flags byte
	if p.ECT {
		flags |= flagECT
	}
	if p.CE {
		flags |= flagCE
	}
	if p.Rtx {
		flags |= flagRtx
	}
	if p.Unscheduled {
		flags |= flagUnscheduled
	}
	if needsExt(p) {
		flags |= flagMsgExt
	}
	if len(p.Hops) > 0 {
		flags |= flagINT
	}
	buf[2] = flags
	buf[3] = p.Priority
	binary.BigEndian.PutUint32(buf[4:], uint32(p.Src))
	binary.BigEndian.PutUint32(buf[8:], uint32(p.Dst))
	binary.BigEndian.PutUint64(buf[12:], uint64(p.Flow))
	binary.BigEndian.PutUint64(buf[20:], uint64(p.Seq))
	binary.BigEndian.PutUint64(buf[28:], uint64(ackField(p)))
	binary.BigEndian.PutUint32(buf[36:], uint32(p.PayloadLen))
	binary.BigEndian.PutUint64(buf[40:], uint64(sim.Duration(p.EchoSent)/sim.Nanosecond))

	if needsExt(p) {
		var ext [MsgExtLen]byte
		binary.BigEndian.PutUint64(ext[0:], p.MsgID)
		binary.BigEndian.PutUint64(ext[8:], uint64(p.MsgLen))
		buf = append(buf, ext[:]...)
	}
	if len(p.Hops) > 0 {
		intOpt, err := telemetry.Marshal(p.Hops)
		if err != nil {
			return nil, fmt.Errorf("wire: INT option: %w", err)
		}
		buf = append(buf, intOpt...)
	}
	return buf, nil
}

// ackField multiplexes the 28..35 slot: grant offset for grants,
// cumulative ack otherwise.
func ackField(p *packet.Packet) int64 {
	if p.Kind == packet.Grant {
		return p.GrantOffset
	}
	return p.AckSeq
}

// Unmarshal decodes a header produced by Marshal.
func Unmarshal(buf []byte) (*packet.Packet, error) {
	if len(buf) < BaseLen {
		return nil, ErrShort
	}
	if buf[0] != wireMagic {
		return nil, ErrBadMagic
	}
	flags := buf[2]
	p := &packet.Packet{
		Kind:        packet.Kind(buf[1]),
		Priority:    buf[3],
		ECT:         flags&flagECT != 0,
		CE:          flags&flagCE != 0,
		Rtx:         flags&flagRtx != 0,
		Unscheduled: flags&flagUnscheduled != 0,
		Src:         packet.NodeID(binary.BigEndian.Uint32(buf[4:])),
		Dst:         packet.NodeID(binary.BigEndian.Uint32(buf[8:])),
		Flow:        packet.FlowID(binary.BigEndian.Uint64(buf[12:])),
		Seq:         int64(binary.BigEndian.Uint64(buf[20:])),
		PayloadLen:  int32(binary.BigEndian.Uint32(buf[36:])),
		EchoSent:    sim.Time(sim.Duration(binary.BigEndian.Uint64(buf[40:])) * sim.Nanosecond),
	}
	ackOrGrant := int64(binary.BigEndian.Uint64(buf[28:]))
	if p.Kind == packet.Grant {
		p.GrantOffset = ackOrGrant
	} else {
		p.AckSeq = ackOrGrant
	}
	rest := buf[BaseLen:]
	if flags&flagMsgExt != 0 {
		if len(rest) < MsgExtLen {
			return nil, ErrShort
		}
		p.MsgID = binary.BigEndian.Uint64(rest[0:])
		p.MsgLen = int64(binary.BigEndian.Uint64(rest[8:]))
		rest = rest[MsgExtLen:]
	}
	if flags&flagINT != 0 {
		hops, err := telemetry.Unmarshal(rest)
		if err != nil {
			return nil, fmt.Errorf("wire: INT option: %w", err)
		}
		p.Hops = hops
	}
	return p, nil
}
