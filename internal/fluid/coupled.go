package fluid

import "math"

// LinkSystem extends the single-bottleneck System to one per-link
// instance of a hybrid run (internal/hybrid): the aggregate fluid
// window over one egress port, coupled to the packet simulation through
// the externally observed packet queue depth and capped by the offered
// demand routed over the link.
//
// The coupling closes both ways. The packet side enters the ODE as
// qPkt — the real queue bytes the port holds at the exchange instant —
// so the law reacts to total congestion (fluid backlog + packet
// backlog), exactly as the aggregate of real background flows would
// have seen the queue their packets share with the foreground. The
// fluid side leaves the ODE as the arrival rate Lambda, which
// internal/hybrid folds back into the port as virtual backlog and a
// serializer capacity share.
//
// Demand distinguishes open-loop components (a Poisson trace offers a
// finite rate regardless of congestion) from closed-loop ones (an
// endless permutation flow wants line rate and is throttled only by the
// control law): the arrival rate is min(W/θ, Demand).
type LinkSystem struct {
	System
	// Demand is the offered arrival-rate ceiling in bytes/second
	// (math.Inf(1) for closed-loop greedy components).
	Demand float64
}

// Lambda returns the instantaneous fluid arrival rate at the link in
// bytes/second: the window-limited rate W/θ with θ = (q_fluid+q_pkt)/b
// + τ, capped by the offered demand. qPkt is the packet-side queue
// depth in bytes.
func (s *LinkSystem) Lambda(st State, qPkt float64) float64 {
	b := s.bBytes()
	theta := (st.Q+qPkt)/b + s.Tau.Seconds()
	lam := st.W / theta
	if lam > s.Demand {
		lam = s.Demand
	}
	if lam < 0 {
		lam = 0
	}
	return lam
}

// derivCoupled is deriv with the packet queue folded into the law's
// queue observation and the demand cap applied to the arrival rate.
// The fluid queue still drains at the full line rate here — the exact
// capacity split against packets is settled by the integer ledger in
// internal/hybrid, which measures what the packet side actually
// transmitted; the ODE only needs the trend.
func (s *LinkSystem) derivCoupled(st State, qPkt float64) (dw, dq float64) {
	b := s.bBytes()
	tau := s.Tau.Seconds()
	q := st.Q + qPkt
	lambda := s.Lambda(st, qPkt)
	dq = lambda - b
	if st.Q <= 0 && dq < 0 {
		dq = 0
	}
	gr := s.Gamma / s.Dt.Seconds()
	var ef float64
	switch s.Law {
	case Voltage:
		ef = (b * tau) / (q + b*tau)
	case Current:
		ef = 1 / (dq/b + 1)
	case Power:
		ef = (b * b * tau) / ((dq + b) * (q + b*tau))
	}
	dw = gr * (st.W*ef - st.W + s.Beta)
	return dw, dq
}

// StepCoupled advances the per-link state by h seconds with classic
// RK4, holding the packet queue depth qPkt quasi-static over the step
// (the exchange interval is chosen well below τ, so the packet side
// cannot move far within one step). The window is clamped at one byte
// and the fluid queue at zero, mirroring Step.
func (s *LinkSystem) StepCoupled(st State, qPkt, h float64) State {
	k1w, k1q := s.derivCoupled(st, qPkt)
	k2w, k2q := s.derivCoupled(State{st.W + h/2*k1w, math.Max(0, st.Q+h/2*k1q)}, qPkt)
	k3w, k3q := s.derivCoupled(State{st.W + h/2*k2w, math.Max(0, st.Q+h/2*k2q)}, qPkt)
	k4w, k4q := s.derivCoupled(State{st.W + h*k3w, math.Max(0, st.Q+h*k3q)}, qPkt)
	st.W += h / 6 * (k1w + 2*k2w + 2*k3w + k4w)
	st.Q = math.Max(0, st.Q+h/6*(k1q+2*k2q+2*k3q+k4q))
	if st.W < 1 {
		st.W = 1
	}
	return st
}
