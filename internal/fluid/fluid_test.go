package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

// paperSystem is Figure 3's setup: 100 Gbps bottleneck, 20 µs base RTT.
func paperSystem(law Law) *System {
	return &System{
		B:     100 * units.Gbps,
		Tau:   20 * sim.Microsecond,
		Gamma: 0.9,
		Dt:    10 * sim.Microsecond,
		Beta:  12_500, // β̂ = 5% of BDP
		Law:   law,
	}
}

func settle(s *System, st0 State) State {
	tr := s.Trajectory(st0, 1e-6, 4000) // 4 ms
	return tr[len(tr)-1]
}

func TestVoltageUniqueEquilibrium(t *testing.T) {
	s := paperSystem(Voltage)
	eq, ok := s.Equilibrium()
	if !ok {
		t.Fatal("voltage law must have an equilibrium")
	}
	for _, st0 := range []State{{1e4, 0}, {5e5, 2e5}, {2.5e5, 1e5}} {
		end := settle(s, st0)
		if math.Abs(end.W-eq.W) > 0.05*eq.W {
			t.Fatalf("from %+v settled at W=%.0f, want %.0f", st0, end.W, eq.W)
		}
		if math.Abs(end.Q-eq.Q) > 0.2*eq.Q+1000 {
			t.Fatalf("from %+v settled at Q=%.0f, want %.0f", st0, end.Q, eq.Q)
		}
	}
}

func TestPowerUniqueEquilibriumAndNoThroughputLoss(t *testing.T) {
	s := paperSystem(Power)
	eq, _ := s.Equilibrium()
	bdp := s.BDP()
	for _, st0 := range []State{{5e4, 0}, {5e5, 2e5}, {2.5e5, 0}, {4e5, 5e4}} {
		tr := s.Trajectory(st0, 1e-6, 4000)
		end := tr[len(tr)-1]
		if math.Abs(end.W-eq.W) > 0.05*eq.W {
			t.Fatalf("power law from %+v settled at W=%.0f, want %.0f", st0, end.W, eq.W)
		}
		// Fig. 3c: starting at/above the BDP, the power law's trajectory
		// never dives below the BDP line (no throughput loss).
		if st0.W >= bdp {
			for i, st := range tr {
				if s.Inflight(st) < 0.98*bdp {
					t.Fatalf("power law lost throughput at step %d from %+v: inflight %.0f < BDP %.0f",
						i, st0, s.Inflight(st), bdp)
				}
			}
		}
	}
}

func TestVoltageOverreacts(t *testing.T) {
	// Fig. 3a: from a congested start, the voltage law overshoots below
	// the BDP (throughput loss) somewhere along the trajectory.
	s := paperSystem(Voltage)
	tr := s.Trajectory(State{W: 5e5, Q: 2.5e5}, 1e-6, 4000)
	bdp := s.BDP()
	lost := false
	for _, st := range tr {
		if s.Inflight(st) < 0.98*bdp {
			lost = true
			break
		}
	}
	if !lost {
		t.Fatal("voltage law did not overshoot below the BDP (expected throughput loss)")
	}
}

// Property (Fig. 3b): the current law has no unique equilibrium — two
// different congested starting queues settle at visibly different queue
// levels even though both stabilize.
func TestCurrentNoUniqueEquilibrium(t *testing.T) {
	s := paperSystem(Current)
	if _, ok := s.Equilibrium(); ok {
		t.Fatal("current law must report no unique equilibrium")
	}
	endA := settle(s, State{W: 4e5, Q: 1e5})
	endB := settle(s, State{W: 4e5, Q: 2.4e5})
	if math.Abs(endA.Q-endB.Q) < 20_000 {
		t.Fatalf("current law forgot initial queues: %.0f vs %.0f", endA.Q, endB.Q)
	}
}

func TestMDResponsesMatchFig2(t *testing.T) {
	s := paperSystem(Voltage)
	b := s.bBytes()
	// Fig. 2a: voltage is flat in buildup rate; current is linear.
	v0 := s.MDResponse(1e5, 0)
	v8 := s.MDResponse(1e5, 8*b)
	if v0 != v8 {
		t.Fatal("voltage MD must ignore buildup rate")
	}
	c := paperSystem(Current)
	if got := c.MDResponse(1e5, 8*b); math.Abs(got-9) > 1e-9 {
		t.Fatalf("current MD at 8x = %v, want 9", got)
	}
	// Fig. 2b: current is flat in queue length.
	if c.MDResponse(0, 2*b) != c.MDResponse(1e6, 2*b) {
		t.Fatal("current MD must ignore queue length")
	}
}

func TestFig2cNumbers(t *testing.T) {
	s := paperSystem(Power)
	cases := s.Fig2cCases()
	round := func(v float64) float64 { return math.Round(v*100) / 100 }
	if got := round(cases[0].VoltageMD); got != 3.24 {
		t.Fatalf("case-1 voltage MD = %v, want 3.24", got)
	}
	if got := cases[0].CurrentMD; got != 9 {
		t.Fatalf("case-1 current MD = %v, want 9", got)
	}
	if got := round(cases[1].VoltageMD); got != 2.12 {
		t.Fatalf("case-2 voltage MD = %v, want 2.12", got)
	}
	if got := cases[1].CurrentMD; got != 1 {
		t.Fatalf("case-2 current MD = %v, want 1", got)
	}
	if got := round(cases[2].VoltageMD); got != 2.12 {
		t.Fatalf("case-3 voltage MD = %v, want 2.12", got)
	}
	if got := cases[2].CurrentMD; got != 9 {
		t.Fatalf("case-3 current MD = %v, want 9", got)
	}
	// Power distinguishes all three cases.
	p1, p2, p3 := cases[0].PowerMD, cases[1].PowerMD, cases[2].PowerMD
	if p1 == p3 || p2 == p3 || p1 == p2 {
		t.Fatalf("power MD failed to separate the cases: %v %v %v", p1, p2, p3)
	}
}

func TestTheorem1Eigenvalues(t *testing.T) {
	s := paperSystem(Power)
	e1, e2 := s.Eigenvalues()
	if e1 >= 0 || e2 >= 0 {
		t.Fatalf("eigenvalues (%v, %v) must both be negative", e1, e2)
	}
	if math.Abs(e1-(-1/20e-6)) > 1 {
		t.Fatalf("e1 = %v, want −1/τ", e1)
	}
	if math.Abs(e2-(-0.9/10e-6)) > 1 {
		t.Fatalf("e2 = %v, want −γ/δt", e2)
	}
}

func TestTheorem2Convergence(t *testing.T) {
	s := paperSystem(Power)
	tc := s.ConvergenceConstant(1e5)
	want := s.Dt.Seconds() / s.Gamma // δt/γ
	if math.Abs(tc-want)/want > 0.02 {
		t.Fatalf("convergence constant = %v s, want δt/γ = %v s", tc, want)
	}
}

// Property: from any reasonable start, the power law's trajectory is
// bounded and converges toward equilibrium (Lyapunov stability
// numerically).
func TestPowerStabilityProperty(t *testing.T) {
	s := paperSystem(Power)
	eq, _ := s.Equilibrium()
	prop := func(wRaw, qRaw uint16) bool {
		st := State{
			W: 1e4 + float64(wRaw)*9, // up to ~6e5
			Q: float64(qRaw) * 4,     // up to ~2.6e5
		}
		tr := s.Trajectory(st, 1e-6, 6000)
		for _, x := range tr {
			if math.IsNaN(x.W) || x.W > 2e6 || x.Q > 2e6 {
				return false
			}
		}
		end := tr[len(tr)-1]
		return math.Abs(end.W-eq.W) < 0.1*eq.W
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
