// Package fluid implements the paper's control-theoretic model (§2,
// Appendix A/C): the single-bottleneck fluid equations for queue and
// aggregate-window dynamics under the three control-law families
// (voltage-based, current-based, power-based), integrated with RK4.
//
// It regenerates the analytic artifacts:
//
//   - Figure 2a/2b: multiplicative-decrease response surfaces of voltage-
//     vs current-based laws against queue buildup rate and queue length.
//   - Figure 2c: the three-case indistinguishability table.
//   - Figure 3a–c: phase-plot trajectories (window vs inflight) from a
//     grid of initial states to equilibrium.
//   - Theorems 1–2: eigenvalues of the linearized PowerTCP system and the
//     numeric convergence time constant δt/γ.
package fluid

import (
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// Law identifies a control-law family of Eq. 19–21.
type Law int

// The three families of §2 plus the paper's law.
const (
	// Voltage reacts to q + bτ (queue-length/delay-based: HPCC, Swift).
	Voltage Law = iota
	// Current reacts to q̇/b + 1 (RTT-gradient-based: TIMELY).
	Current
	// Power reacts to the product (PowerTCP, Eq. 7).
	Power
)

func (l Law) String() string {
	switch l {
	case Voltage:
		return "voltage"
	case Current:
		return "current"
	default:
		return "power"
	}
}

// System is the single-bottleneck fluid model.
type System struct {
	B     units.BitRate // bottleneck bandwidth b
	Tau   sim.Duration  // base RTT τ
	Gamma float64       // EWMA weight γ
	Dt    sim.Duration  // window update interval δt
	Beta  float64       // aggregate additive increase β̂ (bytes)
	Law   Law
}

// bBytes returns b in bytes/second.
func (s *System) bBytes() float64 { return s.B.BytesPerSec() }

// BDP returns b·τ in bytes.
func (s *System) BDP() float64 { return s.bBytes() * s.Tau.Seconds() }

// State is (aggregate window, queue) in bytes.
type State struct {
	W float64
	Q float64
}

// Inflight is the bytes actually in the network: the window, saturated at
// BDP + queue (a window larger than that cannot put more bytes in
// flight). Trajectories dipping below the BDP line lose throughput.
func (s *System) Inflight(st State) float64 {
	return math.Min(st.W, s.BDP()+st.Q)
}

// deriv computes (ẇ, q̇) at state st (Eq. 9 and Eq. 22, delays dropped).
func (s *System) deriv(st State) (dw, dq float64) {
	b := s.bBytes()
	tau := s.Tau.Seconds()
	theta := st.Q/b + tau
	lambda := st.W / theta // arrival rate at the queue
	dq = lambda - b
	if st.Q <= 0 && dq < 0 {
		dq = 0
	}
	gr := s.Gamma / s.Dt.Seconds()
	var ef float64 // the ratio e/f of the law
	switch s.Law {
	case Voltage:
		ef = (b * tau) / (st.Q + b*tau)
	case Current:
		ef = 1 / (dq/b + 1)
	case Power:
		// e/f = b²τ / ((q̇+µ)(q+bτ)) with µ = b under congestion.
		ef = (b * b * tau) / ((dq + b) * (st.Q + b*tau))
	}
	dw = gr * (st.W*ef - st.W + s.Beta)
	return dw, dq
}

// Step advances the state by h seconds with classic RK4, clamping the
// queue at zero.
func (s *System) Step(st State, h float64) State {
	k1w, k1q := s.deriv(st)
	k2w, k2q := s.deriv(State{st.W + h/2*k1w, math.Max(0, st.Q+h/2*k1q)})
	k3w, k3q := s.deriv(State{st.W + h/2*k2w, math.Max(0, st.Q+h/2*k2q)})
	k4w, k4q := s.deriv(State{st.W + h*k3w, math.Max(0, st.Q+h*k3q)})
	st.W += h / 6 * (k1w + 2*k2w + 2*k3w + k4w)
	st.Q = math.Max(0, st.Q+h/6*(k1q+2*k2q+2*k3q+k4q))
	if st.W < 1 {
		st.W = 1
	}
	return st
}

// Trajectory integrates from st0 for steps of h seconds, returning the
// visited states (including the start).
func (s *System) Trajectory(st0 State, h float64, steps int) []State {
	out := make([]State, 0, steps+1)
	st := st0
	out = append(out, st)
	for i := 0; i < steps; i++ {
		st = s.Step(st, h)
		out = append(out, st)
	}
	return out
}

// Equilibrium returns the analytic fixed point (wₑ, qₑ) for the law:
// voltage and power share (bτ + β̂, β̂); current has none (it returns the
// state-dependent resting point of whatever trajectory, signalled by
// ok=false).
func (s *System) Equilibrium() (State, bool) {
	switch s.Law {
	case Current:
		return State{}, false
	default:
		return State{W: s.BDP() + s.Beta, Q: s.Beta}, true
	}
}

// MDResponse returns the multiplicative-decrease factor f/e a law applies
// given queue length q (bytes) and buildup rate qdot (bytes/s) — the
// response surfaces of Figure 2. Values >1 shrink the window.
func (s *System) MDResponse(q, qdot float64) float64 {
	b := s.bBytes()
	tau := s.Tau.Seconds()
	switch s.Law {
	case Voltage:
		return (q + b*tau) / (b * tau)
	case Current:
		md := qdot/b + 1
		if md < 1 {
			md = 1 // gradient laws do not multiplicatively increase
		}
		return md
	default:
		v := (q + b*tau) / (b * tau)
		c := qdot/b + 1
		if c < 0 {
			c = 0
		}
		return v * c
	}
}

// Eigenvalues returns the eigenvalues (−1/τ, −γ/δt) of the linearized
// PowerTCP system of Theorem 1; both negative ⇒ asymptotic stability.
func (s *System) Eigenvalues() (float64, float64) {
	return -1 / s.Tau.Seconds(), -s.Gamma / s.Dt.Seconds()
}

// ConvergenceConstant numerically fits the exponential decay constant of
// the window error after a perturbation and returns it in seconds;
// Theorem 2 predicts δt/γ.
func (s *System) ConvergenceConstant(winit float64) float64 {
	eq, ok := s.Equilibrium()
	if !ok {
		return math.NaN()
	}
	// Integrate the reduced window ODE ẇ = γr(wₑ − w) (Eq. 15).
	gr := s.Gamma / s.Dt.Seconds()
	h := s.Dt.Seconds() / 100
	w := winit
	t := 0.0
	e0 := math.Abs(winit - eq.W)
	for math.Abs(w-eq.W) > e0/math.E {
		w += h * gr * (eq.W - w)
		t += h
		if t > 1 {
			return math.Inf(1)
		}
	}
	return t
}

// Fig2cCase describes one column of Figure 2c.
type Fig2cCase struct {
	Name      string
	Q         float64 // queue length (bytes)
	QDot      float64 // buildup rate (bytes/s)
	VoltageMD float64
	CurrentMD float64
	PowerMD   float64
}

// Fig2cCases reproduces the three scenarios of Figure 2c: with q₁ =
// 2.24·bτ and q₂ = 1.12·bτ, voltage-based CC cannot tell case 2 from
// case 3 (both 2.12) and current-based CC cannot tell case 1 from case 3
// (both 9).
func (s *System) Fig2cCases() []Fig2cCase {
	b := s.bBytes()
	q1 := 2.24 * s.BDP()
	q2 := 1.12 * s.BDP()
	mk := func(name string, q, qdot float64) Fig2cCase {
		volt := System{B: s.B, Tau: s.Tau, Law: Voltage}
		curr := System{B: s.B, Tau: s.Tau, Law: Current}
		pow := System{B: s.B, Tau: s.Tau, Law: Power}
		return Fig2cCase{
			Name: name, Q: q, QDot: qdot,
			VoltageMD: volt.MDResponse(q, qdot),
			CurrentMD: curr.MDResponse(q, qdot),
			PowerMD:   pow.MDResponse(q, qdot),
		}
	}
	return []Fig2cCase{
		mk("case-1: q1 filling at 8x", q1, 8*b),
		mk("case-2: q2 draining at max", q2, -b),
		mk("case-3: q2 filling at 8x", q2, 8*b),
	}
}
