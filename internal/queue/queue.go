// Package queue provides the egress-queue disciplines used by switch
// ports: a plain FIFO, an 8-level strict-priority queue (HOMA), and a
// class queue with an externally selected active class (the
// per-destination virtual output queues of the RDCN case study).
package queue

import "repro/internal/packet"

// Queue is the interface a port drains. Push never fails; admission
// control happens before Push (see internal/buffer).
type Queue interface {
	Push(p *packet.Packet)
	Pop() *packet.Packet
	Peek() *packet.Packet
	Len() int
	Bytes() int64
}

// FIFO is a first-in-first-out packet queue backed by a growable ring.
// The ring's capacity is always a power of two so index wrapping is a
// bit-mask instead of a modulo — this is the innermost loop of every
// port's drain path. The zero value is an empty queue ready for use.
type FIFO struct {
	buf   []*packet.Packet
	head  int
	n     int
	bytes int64
}

// NewFIFO returns an empty FIFO.
func NewFIFO() *FIFO { return &FIFO{} }

// Push appends p.
func (q *FIFO) Push(p *packet.Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
	q.bytes += p.WireLen()
}

func (q *FIFO) grow() {
	// 8 and doubling keep the capacity a power of two.
	next := make([]*packet.Packet, max(8, 2*len(q.buf)))
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = next
	q.head = 0
}

// Pop removes and returns the oldest packet, or nil if empty.
func (q *FIFO) Pop() *packet.Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.bytes -= p.WireLen()
	return p
}

// Peek returns the oldest packet without removing it, or nil if empty.
func (q *FIFO) Peek() *packet.Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Len returns the number of queued packets.
func (q *FIFO) Len() int { return q.n }

// Bytes returns the total wire bytes queued.
func (q *FIFO) Bytes() int64 { return q.bytes }

// Prio is a strict-priority queue with packet.MaxPriority+1 levels;
// level 0 drains first. Packets with out-of-range priorities are clamped.
type Prio struct {
	levels [packet.MaxPriority + 1]FIFO
	n      int
	bytes  int64
}

// NewPrio returns an empty strict-priority queue.
func NewPrio() *Prio { return &Prio{} }

// Push enqueues p at its priority level.
func (q *Prio) Push(p *packet.Packet) {
	lvl := p.Priority
	if lvl > packet.MaxPriority {
		lvl = packet.MaxPriority
	}
	q.levels[lvl].Push(p)
	q.n++
	q.bytes += p.WireLen()
}

// Pop removes the oldest packet of the highest non-empty priority.
func (q *Prio) Pop() *packet.Packet {
	for i := range q.levels {
		if p := q.levels[i].Pop(); p != nil {
			q.n--
			q.bytes -= p.WireLen()
			return p
		}
	}
	return nil
}

// Peek returns the packet Pop would return.
func (q *Prio) Peek() *packet.Packet {
	for i := range q.levels {
		if p := q.levels[i].Peek(); p != nil {
			return p
		}
	}
	return nil
}

// Len returns the number of queued packets across all levels.
func (q *Prio) Len() int { return q.n }

// Bytes returns the total wire bytes queued across all levels.
func (q *Prio) Bytes() int64 { return q.bytes }

// LevelBytes returns the bytes queued at one priority level.
func (q *Prio) LevelBytes(lvl int) int64 { return q.levels[lvl].Bytes() }

// Class is a queue partitioned into classes (e.g. per-destination VOQs)
// of which exactly one — the active class — is drainable at a time.
// Pushes go to the class chosen by the classifier; Pop serves only the
// active class, modelling a circuit switch that connects one output.
type Class struct {
	Classify func(p *packet.Packet) int

	classes map[int]*FIFO
	active  int
	n       int
	bytes   int64
}

// NewClass returns an empty class queue. classify maps a packet to its
// class (for VOQs: the destination ToR).
func NewClass(classify func(p *packet.Packet) int) *Class {
	return &Class{Classify: classify, classes: map[int]*FIFO{}, active: -1}
}

// SetActive selects which class Pop serves; -1 disables draining.
func (q *Class) SetActive(class int) { q.active = class }

// Active returns the currently drainable class.
func (q *Class) Active() int { return q.active }

// Push enqueues p in its class.
func (q *Class) Push(p *packet.Packet) {
	c := q.Classify(p)
	f := q.classes[c]
	if f == nil {
		f = NewFIFO()
		q.classes[c] = f
	}
	f.Push(p)
	q.n++
	q.bytes += p.WireLen()
}

// Pop removes the oldest packet of the active class, or returns nil when
// the active class is empty or draining is disabled.
func (q *Class) Pop() *packet.Packet {
	f := q.classes[q.active]
	if f == nil {
		return nil
	}
	p := f.Pop()
	if p != nil {
		q.n--
		q.bytes -= p.WireLen()
	}
	return p
}

// Peek returns the packet Pop would return.
func (q *Class) Peek() *packet.Packet {
	f := q.classes[q.active]
	if f == nil {
		return nil
	}
	return f.Peek()
}

// Len returns the number of packets queued across all classes.
func (q *Class) Len() int { return q.n }

// Bytes returns the wire bytes queued across all classes.
func (q *Class) Bytes() int64 { return q.bytes }

// ClassBytes returns the wire bytes queued for one class.
func (q *Class) ClassBytes(class int) int64 {
	if f := q.classes[class]; f != nil {
		return f.Bytes()
	}
	return 0
}
