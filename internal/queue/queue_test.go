package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func mkPkt(id uint64, payload int32, prio uint8) *packet.Packet {
	return &packet.Packet{ID: id, Kind: packet.Data, PayloadLen: payload, Priority: prio}
}

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO()
	for i := uint64(0); i < 100; i++ {
		q.Push(mkPkt(i, 100, 0))
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := uint64(0); i < 100; i++ {
		if p := q.Peek(); p.ID != i {
			t.Fatalf("Peek = %d, want %d", p.ID, i)
		}
		if p := q.Pop(); p.ID != i {
			t.Fatalf("Pop = %d, want %d", p.ID, i)
		}
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Fatal("empty queue returned a packet")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	q := NewFIFO()
	id := uint64(0)
	// Interleave pushes and pops to force the ring head to wrap.
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Push(mkPkt(id, 10, 0))
			id++
		}
		for i := 0; i < 5; i++ {
			q.Pop()
		}
	}
	want := uint64(50 * 5)
	for p := q.Pop(); p != nil; p = q.Pop() {
		if p.ID != want {
			t.Fatalf("wrap order broke: got %d, want %d", p.ID, want)
		}
		want++
	}
	if want != id {
		t.Fatalf("drained to %d, want %d", want, id)
	}
}

func TestFIFOBytes(t *testing.T) {
	q := NewFIFO()
	p1, p2 := mkPkt(1, 1000, 0), mkPkt(2, 500, 0)
	q.Push(p1)
	q.Push(p2)
	want := p1.WireLen() + p2.WireLen()
	if q.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", q.Bytes(), want)
	}
	q.Pop()
	if q.Bytes() != p2.WireLen() {
		t.Fatalf("Bytes after pop = %d, want %d", q.Bytes(), p2.WireLen())
	}
}

func TestPrioStrictOrder(t *testing.T) {
	q := NewPrio()
	q.Push(mkPkt(1, 10, 5))
	q.Push(mkPkt(2, 10, 0))
	q.Push(mkPkt(3, 10, 5))
	q.Push(mkPkt(4, 10, 7))
	q.Push(mkPkt(5, 10, 0))
	wantOrder := []uint64{2, 5, 1, 3, 4}
	for _, want := range wantOrder {
		if p := q.Pop(); p == nil || p.ID != want {
			t.Fatalf("Pop = %v, want %d", p, want)
		}
	}
}

func TestPrioClampsPriority(t *testing.T) {
	q := NewPrio()
	q.Push(mkPkt(1, 10, 200)) // clamped to MaxPriority
	q.Push(mkPkt(2, 10, packet.MaxPriority))
	if p := q.Pop(); p.ID != 1 {
		t.Fatalf("clamped packet not at MaxPriority level; got %d", p.ID)
	}
	if q.LevelBytes(packet.MaxPriority) == 0 {
		t.Fatal("LevelBytes empty after clamped push")
	}
}

func TestClassQueueActiveSwitching(t *testing.T) {
	q := NewClass(func(p *packet.Packet) int { return int(p.Dst) })
	push := func(id uint64, dst int32) {
		p := mkPkt(id, 10, 0)
		p.Dst = packet.NodeID(dst)
		q.Push(p)
	}
	push(1, 7)
	push(2, 9)
	push(3, 7)
	if q.Pop() != nil {
		t.Fatal("inactive class queue popped a packet")
	}
	q.SetActive(7)
	if p := q.Pop(); p.ID != 1 {
		t.Fatalf("active class 7: got %v", p)
	}
	if got := q.ClassBytes(9); got == 0 {
		t.Fatal("class 9 should still hold bytes")
	}
	q.SetActive(9)
	if p := q.Pop(); p.ID != 2 {
		t.Fatalf("active class 9: got %v", p)
	}
	q.SetActive(-1)
	if q.Pop() != nil {
		t.Fatal("disabled class queue popped a packet")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

// Property: for any op sequence, Bytes() equals the sum of WireLen of the
// packets currently inside, and Len() the count — conservation under
// push/pop for all three disciplines.
func TestConservationProperty(t *testing.T) {
	prop := func(seed int64, which uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		switch which % 3 {
		case 0:
			q = NewFIFO()
		case 1:
			q = NewPrio()
		default:
			cq := NewClass(func(p *packet.Packet) int { return int(p.ID % 4) })
			cq.SetActive(rng.Intn(4))
			q = cq
		}
		inside := int64(0)
		count := 0
		for i := 0; i < 200; i++ {
			if rng.Intn(3) > 0 {
				p := mkPkt(uint64(i), int32(rng.Intn(1500)), uint8(rng.Intn(8)))
				q.Push(p)
				inside += p.WireLen()
				count++
			} else if p := q.Pop(); p != nil {
				inside -= p.WireLen()
				count--
			}
		}
		return q.Bytes() == inside && q.Len() == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFIFOPushPop(b *testing.B) {
	q := NewFIFO()
	p := mkPkt(1, 1000, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(p)
		q.Pop()
	}
}
