// Package buffer implements shared-memory switch buffering with the
// Dynamic Thresholds algorithm of Choudhury and Hahne (IEEE/ACM ToN 1998),
// which the paper enables on every switch (§4.1) and credits for HOMA's
// behaviour under limited buffers.
//
// Under DT, a packet destined to a queue of current length q is admitted
// iff q < α · (B − Σ), where B is the total shared buffer and Σ the bytes
// currently in use across all queues. The admission threshold shrinks as
// the buffer fills, so heavily loaded ports cannot monopolize the memory
// and some headroom always remains for newly active queues.
package buffer

// Shared is a shared-memory buffer pool guarded by Dynamic Thresholds.
// A Total of zero or less means an unbounded buffer (every packet is
// admitted), which models the "practically infinite buffers" setup the
// paper contrasts HOMA's original evaluation with.
type Shared struct {
	Total int64   // total shared memory in bytes
	Alpha float64 // DT scaling factor (datacenter switches default to 1)

	used  int64
	drops uint64
}

// NewShared returns a DT-managed pool of total bytes with factor alpha.
func NewShared(total int64, alpha float64) *Shared {
	return &Shared{Total: total, Alpha: alpha}
}

// Used returns the bytes currently occupied across all queues.
func (s *Shared) Used() int64 { return s.used }

// Free returns the unoccupied bytes (0 for unbounded pools).
func (s *Shared) Free() int64 {
	if s.Total <= 0 {
		return 0
	}
	return s.Total - s.used
}

// Drops returns the number of packets rejected by Admit.
func (s *Shared) Drops() uint64 { return s.drops }

// Threshold returns the current DT admission threshold α·(B−Σ).
func (s *Shared) Threshold() float64 {
	return s.Alpha * float64(s.Total-s.used)
}

// Admit decides whether a packet of size n may join a queue currently
// holding qlen bytes, and reserves the memory if so. Callers must balance
// every successful Admit with a Release when the packet leaves the buffer.
func (s *Shared) Admit(qlen, n int64) bool {
	if s.Total <= 0 { // unbounded
		s.used += n
		return true
	}
	if s.used+n > s.Total || float64(qlen) >= s.Threshold() {
		s.drops++
		return false
	}
	s.used += n
	return true
}

// Release returns n bytes to the pool.
func (s *Shared) Release(n int64) {
	s.used -= n
	if s.used < 0 {
		panic("buffer: release underflow")
	}
}
