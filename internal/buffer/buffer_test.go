package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdmitBasics(t *testing.T) {
	s := NewShared(10_000, 1.0)
	if !s.Admit(0, 1000) {
		t.Fatal("empty buffer rejected a packet")
	}
	if s.Used() != 1000 {
		t.Fatalf("Used = %d", s.Used())
	}
	s.Release(1000)
	if s.Used() != 0 {
		t.Fatalf("Used after release = %d", s.Used())
	}
}

func TestDynamicThreshold(t *testing.T) {
	// α=1, B=10000. With Σ=6000 the threshold is 4000: a queue already at
	// 4000 must be refused, a queue at 3999 admitted.
	s := NewShared(10_000, 1.0)
	if !s.Admit(0, 6000) {
		t.Fatal("setup admit failed")
	}
	if s.Admit(4000, 100) {
		t.Fatal("queue at threshold was admitted")
	}
	if !s.Admit(3999, 100) {
		t.Fatal("queue below threshold was refused")
	}
}

func TestAlphaScaling(t *testing.T) {
	// α=0.5 halves the admissible queue length.
	s := NewShared(10_000, 0.5)
	if s.Admit(5000, 100) {
		t.Fatal("α=0.5: queue of B/2 admitted on empty buffer")
	}
	if !s.Admit(4999, 100) {
		t.Fatal("α=0.5: queue below α·B refused")
	}
}

func TestTotalCapacityHardLimit(t *testing.T) {
	s := NewShared(1000, 100) // huge α: only the hard limit binds
	if !s.Admit(0, 900) {
		t.Fatal("900/1000 refused")
	}
	if s.Admit(0, 200) {
		t.Fatal("admission past Total")
	}
	if s.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", s.Drops())
	}
}

func TestUnboundedBuffer(t *testing.T) {
	s := NewShared(0, 1.0)
	for i := 0; i < 1000; i++ {
		if !s.Admit(int64(i)*1500, 1500) {
			t.Fatal("unbounded buffer refused a packet")
		}
	}
	if s.Free() != 0 {
		t.Fatalf("Free on unbounded = %d", s.Free())
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release underflow did not panic")
		}
	}()
	NewShared(1000, 1).Release(1)
}

// Property: under any admit/release trace, Used stays within [0, Total]
// and equals admitted-released exactly.
func TestAccountingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewShared(100_000, 0.5+rng.Float64())
		var held []int64
		var sum int64
		for i := 0; i < 500; i++ {
			if rng.Intn(2) == 0 {
				n := int64(rng.Intn(1500)) + 1
				if s.Admit(int64(rng.Intn(50_000)), n) {
					held = append(held, n)
					sum += n
				}
			} else if len(held) > 0 {
				n := held[len(held)-1]
				held = held[:len(held)-1]
				s.Release(n)
				sum -= n
			}
			if s.Used() != sum || s.Used() < 0 || s.Used() > s.Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (DT headroom): while the pool is below Total, a packet for an
// empty queue (qlen 0) of size ≤ threshold is always admitted — DT never
// starves a newly active queue.
func TestNewQueueNeverStarvedProperty(t *testing.T) {
	prop := func(fillRaw uint16) bool {
		s := NewShared(100_000, 1.0)
		fill := int64(fillRaw) % 99_000
		if fill > 0 && !s.Admit(0, fill) {
			return false
		}
		if s.Threshold() > 1 {
			return s.Admit(0, 1)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
