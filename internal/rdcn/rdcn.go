package rdcn

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/swtch"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/units"
)

// Config describes the RDCN topology of §5: Tors ToR switches with
// ServersPerTor servers each, a shared packet-switched core, and one
// rotor circuit switch. The zero value scaled by Tors/ServersPerTor
// reproduces the paper's setup (25 ToRs × 10 servers, 25 Gbps packet
// links, 100 Gbps circuits, 225 µs days, 20 µs nights, base RTT 24 µs).
type Config struct {
	Tors          int
	ServersPerTor int
	HostRate      units.BitRate // server ↔ ToR
	PacketRate    units.BitRate // ToR ↔ packet core (Fig. 8b sweeps this)
	CircuitRate   units.BitRate // ToR ↔ rotor
	Day           sim.Duration
	Night         sim.Duration
	// Prebuffer routes packets into the circuit VOQ this long before
	// their circuit day begins (reTCP's prebuffering; 0 for PowerTCP and
	// HPCC runs, which use the circuit only while it is up).
	Prebuffer sim.Duration
	// INT enables telemetry stamping at every egress (ToR and core).
	INT bool
	// HostCfg configures the window transport on the servers. BaseRTT 0
	// derives the topology's maximum base RTT.
	HostCfg transport.Config
	// EdgeDelay/CoreDelay are propagation delays (defaults 1 µs / 5 µs).
	EdgeDelay, CoreDelay sim.Duration
}

func (c *Config) fillDefaults() {
	if c.Tors == 0 {
		c.Tors = 25
	}
	if c.ServersPerTor == 0 {
		c.ServersPerTor = 10
	}
	if c.HostRate == 0 {
		c.HostRate = 25 * units.Gbps
	}
	if c.PacketRate == 0 {
		c.PacketRate = 25 * units.Gbps
	}
	if c.CircuitRate == 0 {
		c.CircuitRate = 100 * units.Gbps
	}
	if c.Day == 0 {
		c.Day = 225 * sim.Microsecond
	}
	if c.Night == 0 {
		c.Night = 20 * sim.Microsecond
	}
	if c.EdgeDelay == 0 {
		c.EdgeDelay = sim.Microsecond
	}
	if c.CoreDelay == 0 {
		c.CoreDelay = 5 * sim.Microsecond
	}
}

// Network is a built RDCN.
type Network struct {
	Eng   *sim.Engine
	Cfg   Config
	Sched *Schedule
	Tors  []*Tor
	Core  *swtch.Switch
	Hosts []*transport.Host
	Pool  *packet.Pool

	BaseRTT  sim.Duration
	nextFlow uint64
}

// NextFlowID hands out unique flow IDs.
func (n *Network) NextFlowID() packet.FlowID {
	n.nextFlow++
	return packet.FlowID(n.nextFlow)
}

// TorOf returns the ToR index serving a host/node ID.
func (n *Network) TorOf(id packet.NodeID) int {
	return int(id) / n.Cfg.ServersPerTor
}

// HostsOfTor returns the hosts under ToR t.
func (n *Network) HostsOfTor(t int) []*transport.Host {
	s := n.Cfg.ServersPerTor
	return n.Hosts[t*s : (t+1)*s]
}

// Tor is a ToR switch with per-destination VOQs on its circuit port.
// It implements link.Receiver.
type Tor struct {
	Idx int
	net *Network

	hostPorts []*link.Port // indexed by local server offset
	pktPort   *link.Port
	circPort  *link.Port
	voq       *queue.Class
}

// VOQBytes returns the bytes waiting in the VOQ toward dstTor.
func (t *Tor) VOQBytes(dstTor int) int64 { return t.voq.ClassBytes(dstTor) }

// CircuitPort exposes the circuit-facing port (utilization metrics).
func (t *Tor) CircuitPort() *link.Port { return t.circPort }

// PacketPort exposes the packet-core-facing port.
func (t *Tor) PacketPort() *link.Port { return t.pktPort }

// Receive implements link.Receiver: local delivery, or circuit-vs-packet
// path selection for remote racks.
func (t *Tor) Receive(p *packet.Packet) {
	dstTor := t.net.TorOf(p.Dst)
	if dstTor == t.Idx {
		off := int(p.Dst) - t.Idx*t.net.Cfg.ServersPerTor
		t.hostPorts[off].Send(p)
		return
	}
	if t.net.Sched.ActiveOrUpcoming(t.Idx, dstTor, t.net.Eng.Now(), t.net.Cfg.Prebuffer) {
		t.circPort.Send(p)
		return
	}
	t.pktPort.Send(p)
}

func (t *Tor) String() string { return fmt.Sprintf("tor-%d", t.Idx) }

// circuitFabric delivers a packet emerging from a ToR's circuit port to
// the destination ToR. The VOQ discipline guarantees only packets for the
// currently matched ToR are in flight.
type circuitFabric struct{ net *Network }

func (f *circuitFabric) Receive(p *packet.Packet) {
	f.net.Tors[f.net.TorOf(p.Dst)].Receive(p)
}

// Build wires the RDCN and starts the rotor schedule.
func Build(cfg Config) *Network {
	cfg.fillDefaults()
	eng := sim.New()
	n := &Network{Eng: eng, Cfg: cfg, Pool: packet.NewPool()}
	n.Sched = &Schedule{Tors: cfg.Tors, Day: cfg.Day, Night: cfg.Night}
	// A prebuffer lead approaching the rotor week would classify every
	// destination as "upcoming" and starve the packet path (including
	// ACKs). Clamp it so at least two slots of each cycle stay packet-
	// routed; Build callers at paper scale are unaffected.
	if maxLead := n.Sched.Week() - 2*n.Sched.Slot(); cfg.Prebuffer > maxLead {
		n.Cfg.Prebuffer = maxLead
	}

	// Base RTT: the packet path is the longest (edge+core+core+edge one
	// way); the paper's 24 µs figure for 1 µs/5 µs delays.
	n.BaseRTT = 2*(2*cfg.EdgeDelay+2*cfg.CoreDelay) +
		2*cfg.HostRate.TxTime(1048) + 2*cfg.PacketRate.TxTime(1048)
	hostCfg := cfg.HostCfg
	if hostCfg.BaseRTT == 0 {
		hostCfg.BaseRTT = n.BaseRTT
	}
	// Circuit day/night path flapping reorders packets; rely on RTO.
	if hostCfg.DupAckThreshold == 0 {
		hostCfg.DupAckThreshold = -1
	}

	n.Core = swtch.New(eng, packet.NodeID(1<<18), swtch.Config{INT: cfg.INT, Pool: n.Pool})

	fabric := &circuitFabric{net: n}
	for ti := 0; ti < cfg.Tors; ti++ {
		tor := &Tor{Idx: ti, net: n}
		n.Tors = append(n.Tors, tor)
		// Servers.
		for s := 0; s < cfg.ServersPerTor; s++ {
			id := packet.NodeID(ti*cfg.ServersPerTor + s)
			h := transport.NewHost(eng, id, hostCfg)
			h.SetPool(n.Pool)
			n.Hosts = append(n.Hosts, h)
			up := link.NewPort(eng, cfg.HostRate, cfg.EdgeDelay, tor)
			up.Name = fmt.Sprintf("rdcn-host%d.nic", id)
			up.Pool = n.Pool
			h.SetUplink(up)
			down := newINTPort(eng, cfg.HostRate, cfg.EdgeDelay, h, nil, cfg.INT)
			down.Name = fmt.Sprintf("tor%d.host%d", ti, s)
			tor.hostPorts = append(tor.hostPorts, down)
		}
		// Packet core uplink.
		tor.pktPort = newINTPort(eng, cfg.PacketRate, cfg.CoreDelay, n.Core, nil, cfg.INT)
		tor.pktPort.Name = fmt.Sprintf("tor%d.pkt", ti)
		// Circuit port with per-destination VOQs, dark until its first day.
		voq := queue.NewClass(func(p *packet.Packet) int { return n.TorOf(p.Dst) })
		tor.voq = voq
		tor.circPort = newINTPort(eng, cfg.CircuitRate, cfg.CoreDelay, fabric, voq, cfg.INT)
		tor.circPort.Name = fmt.Sprintf("tor%d.circuit", ti)
		tor.circPort.Pause()
	}
	// Core routes every host via its ToR's core-facing port. The core's
	// port k faces ToR k.
	for ti, tor := range n.Tors {
		n.Core.AddPort(cfg.PacketRate, cfg.CoreDelay, tor, nil)
		for s := 0; s < cfg.ServersPerTor; s++ {
			n.Core.SetRoute(packet.NodeID(ti*cfg.ServersPerTor+s), []int{ti})
		}
	}

	n.runRotor(0)
	return n
}

// newINTPort builds a port that stamps INT at dequeue when enabled.
func newINTPort(eng *sim.Engine, rate units.BitRate, delay sim.Duration, peer link.Receiver, q queue.Queue, stamp bool) *link.Port {
	pt := link.NewPort(eng, rate, delay, peer)
	if q != nil {
		pt.Q = q
	}
	if stamp {
		pt.OnDequeue = func(p *packet.Packet) {
			p.Hops = append(p.Hops, telemetry.HopRecord{
				QLen:    pt.QueueBytes(),
				TxBytes: pt.TxBytes(),
				TS:      eng.Now(),
				Rate:    pt.Rate,
			})
		}
	}
	return pt
}

// runRotor drives one slot (day + night) starting at slot index k and
// reschedules itself forever; experiments bound runs with RunUntil.
func (n *Network) runRotor(k int) {
	m := k % n.Sched.Matchings()
	// Day start: install matching m everywhere and light the circuits.
	for _, tor := range n.Tors {
		tor.voq.SetActive(n.Sched.DstOf(tor.Idx, m))
		tor.circPort.Resume()
	}
	n.Eng.After(n.Cfg.Day, func() {
		// Night: circuits go dark for reconfiguration.
		for _, tor := range n.Tors {
			tor.circPort.Pause()
		}
		n.Eng.After(n.Cfg.Night, func() { n.runRotor(k + 1) })
	})
}
