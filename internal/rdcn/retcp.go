package rdcn

import (
	"repro/internal/cc"
	"repro/internal/sim"
	"repro/internal/units"
)

// ReTCP models reTCP (Mukerjee et al., NSDI 2020), the state-of-the-art
// circuit-aware transport the case study compares against. reTCP reacts
// to *explicit circuit state*: ahead of its destination's circuit day it
// ramps the window to the circuit's bandwidth-delay product so the ToR
// VOQ is pre-filled ("prebuffering") and the circuit is saturated from
// its first microsecond; when the day ends it falls back to a window
// sized for the packet network.
//
// The paper evaluates prebuffering Δ of 1800 µs (the original paper's
// suggestion) and 600 µs (their sweep's minimum); the cost is queuing
// delay — prebuffered bytes sit in the VOQ for up to Δ (Fig. 8).
//
// ReTCP implements cc.Algorithm. Routing-side prebuffering (the ToR
// steering packets into the VOQ Δ early) is configured separately via
// Config.Prebuffer; both must use the same Δ for a faithful model.
type ReTCP struct {
	// Sched/SrcTor/DstTor identify the circuit this flow rides.
	Sched  *Schedule
	SrcTor int
	DstTor int
	// Prebuffer is Δ: how long before a day the window ramps.
	Prebuffer sim.Duration
	// PktWindow and CircuitWindow are the two operating points in bytes.
	// Zero values derive: PktWindow = PacketRate·τ/flows and
	// CircuitWindow = CircuitRate·τ/flows via the Shares fields.
	PktWindow, CircuitWindow float64
	// PacketRate/CircuitRate/FlowsSharing derive the default windows.
	PacketRate, CircuitRate units.BitRate
	FlowsSharing            int

	lim     cc.Limits
	cwnd    float64
	boosted bool
	timer   *sim.Timer // pre-bound ramp timer; alternates up/down phases
	dayEnd  sim.Time   // end of the day being ridden while boosted
}

// Name implements cc.Algorithm.
func (r *ReTCP) Name() string { return "retcp" }

// Init implements cc.Algorithm: derive windows and start tracking the
// rotor calendar.
func (r *ReTCP) Init(lim cc.Limits) {
	r.lim = lim
	if r.FlowsSharing == 0 {
		r.FlowsSharing = 1
	}
	if r.PktWindow == 0 {
		r.PktWindow = float64(r.PacketRate.BDP(lim.BaseRTT)) / float64(r.FlowsSharing)
	}
	if r.CircuitWindow == 0 {
		r.CircuitWindow = float64(r.CircuitRate.BDP(lim.BaseRTT)) / float64(r.FlowsSharing)
	}
	if r.PktWindow < float64(lim.MSS) {
		r.PktWindow = float64(lim.MSS)
	}
	r.cwnd = r.PktWindow
	if lim.Engine != nil && r.Sched != nil {
		r.timer = lim.Engine.NewTimer(r.onTimer)
	}
	r.schedule()
}

// schedule arms the ramp-up timer Δ before the next day connecting
// SrcTor→DstTor; onTimer then chains the ramp-down at that day's end.
func (r *ReTCP) schedule() {
	if r.timer == nil {
		return
	}
	eng := r.lim.Engine
	day := r.Sched.NextDayStart(r.SrcTor, r.DstTor, eng.Now())
	up := day.Add(-r.Prebuffer)
	if up < eng.Now() {
		up = eng.Now()
	}
	r.dayEnd = day.Add(r.Sched.Day)
	r.timer.Arm(up)
}

// onTimer alternates between the two operating points: ramp up Δ before
// the day, ramp down when the day ends.
func (r *ReTCP) onTimer() {
	if !r.boosted {
		r.boosted = true
		r.cwnd = r.CircuitWindow
		r.timer.Arm(r.dayEnd)
		return
	}
	r.boosted = false
	r.cwnd = r.PktWindow
	r.schedule()
}

// OnAck implements cc.Algorithm (reTCP's reaction is schedule-driven).
func (r *ReTCP) OnAck(cc.Ack) {}

// OnLoss implements cc.Algorithm: halve within the current mode's bounds.
func (r *ReTCP) OnLoss(sim.Time) {
	r.cwnd /= 2
	if r.cwnd < float64(r.lim.MSS) {
		r.cwnd = float64(r.lim.MSS)
	}
}

// Cwnd implements cc.Algorithm.
func (r *ReTCP) Cwnd() float64 { return r.cwnd }

// Rate implements cc.Algorithm: pace the window over τ.
func (r *ReTCP) Rate() units.BitRate {
	rate := units.BitRate(r.cwnd*8/r.lim.BaseRTT.Seconds() + 0.5)
	if rate < units.Mbps {
		rate = units.Mbps
	}
	return units.MinRate(rate, r.lim.HostRate)
}

// Stop implements the transport teardown hook.
func (r *ReTCP) Stop() {
	if r.timer != nil {
		r.timer.Stop()
	}
}
