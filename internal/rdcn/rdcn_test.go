package rdcn

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/units"
)

func TestScheduleBasics(t *testing.T) {
	s := &Schedule{Tors: 25, Day: 225 * sim.Microsecond, Night: 20 * sim.Microsecond}
	if s.Matchings() != 24 {
		t.Fatalf("matchings = %d", s.Matchings())
	}
	if s.Slot() != 245*sim.Microsecond {
		t.Fatalf("slot = %v", s.Slot())
	}
	if s.Week() != 24*245*sim.Microsecond {
		t.Fatalf("week = %v", s.Week())
	}
	// Matching 0 connects i → i+1.
	if s.DstOf(0, 0) != 1 || s.DstOf(24, 0) != 0 {
		t.Fatal("DstOf matching 0 broken")
	}
	if m := s.MatchingFor(3, 4); m != 0 {
		t.Fatalf("MatchingFor(3,4) = %d", m)
	}
	if m := s.MatchingFor(4, 3); m != 23 {
		t.Fatalf("MatchingFor(4,3) = %d", m)
	}
	if s.MatchingFor(7, 7) != -1 {
		t.Fatal("self matching must be -1")
	}
}

// Property: every ordered ToR pair is connected exactly once per week,
// and MatchingFor agrees with DstOf.
func TestScheduleCoversAllPairs(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw%20) + 3
		s := &Schedule{Tors: n, Day: sim.Microsecond, Night: sim.Microsecond}
		for src := 0; src < n; src++ {
			seen := map[int]int{}
			for m := 0; m < s.Matchings(); m++ {
				d := s.DstOf(src, m)
				if d == src {
					return false
				}
				seen[d]++
				if s.MatchingFor(src, d) != m {
					return false
				}
			}
			if len(seen) != n-1 {
				return false
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleTimeDecomposition(t *testing.T) {
	s := &Schedule{Tors: 4, Day: 100 * sim.Microsecond, Night: 10 * sim.Microsecond}
	m, inDay, into := s.At(sim.Time(50 * sim.Microsecond))
	if m != 0 || !inDay || into != 50*sim.Microsecond {
		t.Fatalf("At(50µs) = %d %v %v", m, inDay, into)
	}
	m, inDay, _ = s.At(sim.Time(105 * sim.Microsecond))
	if m != 0 || inDay {
		t.Fatalf("At(105µs) in night: %d %v", m, inDay)
	}
	m, inDay, _ = s.At(sim.Time(115 * sim.Microsecond))
	if m != 1 || !inDay {
		t.Fatalf("At(115µs): %d %v", m, inDay)
	}
	// Wraps after a week (3 slots).
	m, _, _ = s.At(sim.Time(3 * 110 * sim.Microsecond))
	if m != 0 {
		t.Fatalf("week wrap: m = %d", m)
	}
}

func TestNextDayStart(t *testing.T) {
	s := &Schedule{Tors: 4, Day: 100 * sim.Microsecond, Night: 10 * sim.Microsecond}
	// src 0 → dst 2 is matching 1, whose day starts at 110µs.
	if got := s.NextDayStart(0, 2, 0); got != sim.Time(110*sim.Microsecond) {
		t.Fatalf("NextDayStart = %v", got)
	}
	// From inside that day, the next start is one week later.
	if got := s.NextDayStart(0, 2, sim.Time(150*sim.Microsecond)); got != sim.Time((110+330)*sim.Microsecond) {
		t.Fatalf("NextDayStart mid-day = %v", got)
	}
}

func TestActiveOrUpcoming(t *testing.T) {
	s := &Schedule{Tors: 4, Day: 100 * sim.Microsecond, Night: 10 * sim.Microsecond}
	if !s.ActiveOrUpcoming(0, 1, sim.Time(10*sim.Microsecond), 0) {
		t.Fatal("matching 0 active at t=10µs")
	}
	if s.ActiveOrUpcoming(0, 2, sim.Time(10*sim.Microsecond), 0) {
		t.Fatal("matching 1 must not be active at t=10µs")
	}
	// With a 105µs lead, the day at 110µs is upcoming from t=10µs.
	if !s.ActiveOrUpcoming(0, 2, sim.Time(10*sim.Microsecond), 105*sim.Microsecond) {
		t.Fatal("prebuffer lead not honoured")
	}
}

func small() Config {
	return Config{
		Tors:          4,
		ServersPerTor: 2,
		Day:           100 * sim.Microsecond,
		Night:         10 * sim.Microsecond,
		INT:           true,
	}
}

func TestPrebufferClampedToSchedule(t *testing.T) {
	// A prebuffer approaching the rotor week would steer everything
	// (ACKs included) into dark VOQs; Build must clamp it.
	cfg := small() // 4 ToRs → week 330µs, slot 110µs
	cfg.Prebuffer = 10 * sim.Millisecond
	net := Build(cfg)
	maxLead := net.Sched.Week() - 2*net.Sched.Slot()
	if net.Cfg.Prebuffer != maxLead {
		t.Fatalf("prebuffer not clamped: %v, want %v", net.Cfg.Prebuffer, maxLead)
	}
	// A paper-scale prebuffer passes through untouched.
	cfg2 := Config{Prebuffer: 1800 * sim.Microsecond}
	net2 := Build(cfg2) // defaults: 25 ToRs, week 5.88ms
	if net2.Cfg.Prebuffer != 1800*sim.Microsecond {
		t.Fatalf("paper-scale prebuffer altered: %v", net2.Cfg.Prebuffer)
	}
}

func TestRDCNDeliversOverCircuitAndPacket(t *testing.T) {
	net := Build(small())
	src := net.Hosts[0] // tor 0
	dst := net.Hosts[6] // tor 3
	var done bool
	src.OnFlowDone = func(*transport.Flow) { done = true }
	src.StartFlow(net.NextFlowID(), dst.ID(), 2<<20,
		core.New(core.Config{}), 0)
	net.Eng.RunUntil(sim.Time(20 * sim.Millisecond))
	if !done {
		t.Fatal("flow across the RDCN did not finish")
	}
	// Both paths must have carried traffic: the circuit during days for
	// matching 2 (0→3), the packet core otherwise.
	if net.Tors[0].CircuitPort().TxPackets() == 0 {
		t.Fatal("circuit carried nothing")
	}
	if net.Tors[0].PacketPort().TxPackets() == 0 {
		t.Fatal("packet path carried nothing")
	}
}

func TestVOQHoldsOnlyActiveDestination(t *testing.T) {
	net := Build(small())
	// At t=0 matching 0 is up: tor0→tor1 rides the circuit; anything for
	// tor2 goes to the packet path, so VOQ(2) stays empty.
	net.Hosts[0].StartFlow(net.NextFlowID(), net.Hosts[2].ID(), transport.Unbounded,
		core.New(core.Config{}), 0) // dst tor 1
	net.Hosts[1].StartFlow(net.NextFlowID(), net.Hosts[4].ID(), transport.Unbounded,
		core.New(core.Config{}), 0) // dst tor 2
	net.Eng.RunUntil(sim.Time(50 * sim.Microsecond))
	if net.Tors[0].VOQBytes(2) != 0 {
		t.Fatalf("VOQ(2) filled while its circuit is down: %dB", net.Tors[0].VOQBytes(2))
	}
}

func TestReTCPWindowFollowsCalendar(t *testing.T) {
	net := Build(small())
	sched := net.Sched
	r := &ReTCP{
		Sched: sched, SrcTor: 0, DstTor: 2,
		Prebuffer:   30 * sim.Microsecond,
		PacketRate:  net.Cfg.PacketRate,
		CircuitRate: net.Cfg.CircuitRate,
	}
	net.Hosts[0].StartFlow(net.NextFlowID(), net.Hosts[4].ID(), transport.Unbounded, r, 0)
	// Day for 0→2 is [110µs, 210µs); prebuffer from 80µs.
	net.Eng.RunUntil(sim.Time(70 * sim.Microsecond))
	pkt := r.Cwnd()
	net.Eng.RunUntil(sim.Time(90 * sim.Microsecond))
	boosted := r.Cwnd()
	if boosted <= pkt {
		t.Fatalf("window not boosted before the day: %v → %v", pkt, boosted)
	}
	net.Eng.RunUntil(sim.Time(230 * sim.Microsecond))
	if got := r.Cwnd(); got != pkt {
		t.Fatalf("window not restored after the day: %v", got)
	}
}

func TestPrebufferFillsVOQBeforeDay(t *testing.T) {
	cfg := small()
	cfg.Prebuffer = 50 * sim.Microsecond
	net := Build(cfg)
	r := &ReTCP{
		Sched: net.Sched, SrcTor: 0, DstTor: 2,
		Prebuffer:   cfg.Prebuffer,
		PacketRate:  net.Cfg.PacketRate,
		CircuitRate: net.Cfg.CircuitRate,
	}
	net.Hosts[0].StartFlow(net.NextFlowID(), net.Hosts[4].ID(), transport.Unbounded, r, 0)
	// Day for 0→2 starts at 110µs; from 60µs packets steer to the VOQ.
	net.Eng.RunUntil(sim.Time(105 * sim.Microsecond))
	if net.Tors[0].VOQBytes(2) == 0 {
		t.Fatal("prebuffering put nothing in the VOQ before the day")
	}
}

func TestCircuitCarriesAtCircuitRate(t *testing.T) {
	// During a day, an unbounded flow between matched ToRs should push
	// well above the packet rate.
	cfg := small()
	net := Build(cfg)
	// tor0→tor1 matched at slot 0, then every 330µs.
	for i := 0; i < 2; i++ {
		net.Hosts[i].StartFlow(net.NextFlowID(), net.Hosts[2+i].ID(), transport.Unbounded,
			core.New(core.Config{}), 0)
	}
	net.Eng.RunUntil(sim.Time(95 * sim.Microsecond))
	circ := net.Tors[0].CircuitPort().TxBytes()
	if circ == 0 {
		t.Fatal("no circuit bytes during the day")
	}
	// Utilization of the 100µs day at 100G would be 1.25MB; hosts are
	// 2×25G so the ceiling is 50G → ~600KB. Expect at least 30% of that.
	if circ < 150_000 {
		t.Fatalf("circuit moved only %dB during its day", circ)
	}
	_ = units.Gbps
}
