// Package rdcn models the reconfigurable datacenter network of the
// paper's case study (§5): ToR switches attached both to a packet-
// switched core and to a single optical circuit switch that rotates
// through a fixed permutation schedule — each matching held for one
// "day" (225 µs) followed by a reconfiguration "night" (20 µs), every ToR
// pair directly connected once per "week" of N−1 matchings. ToRs hold
// per-destination virtual output queues (VOQs) and forward on the circuit
// exclusively when it is (or is about to be) available.
package rdcn

import "repro/internal/sim"

// Schedule is the rotor switch's fixed permutation calendar.
type Schedule struct {
	Tors  int          // number of ToR switches (ports on the rotor)
	Day   sim.Duration // time a matching stays installed (circuit on)
	Night sim.Duration // reconfiguration gap (circuit dark)
}

// Slot is one day+night period.
func (s *Schedule) Slot() sim.Duration { return s.Day + s.Night }

// Week is the time for the rotor to cycle through all N−1 matchings.
func (s *Schedule) Week() sim.Duration {
	return sim.Duration(s.Tors-1) * s.Slot()
}

// Matchings returns the number of distinct matchings (N−1).
func (s *Schedule) Matchings() int { return s.Tors - 1 }

// DstOf returns the ToR that tor's circuit reaches under matching m:
// the rotor implements the cyclic permutation family i → i+m+1 (mod N),
// which connects every ordered pair exactly once per week.
func (s *Schedule) DstOf(tor, m int) int {
	return (tor + m + 1) % s.Tors
}

// MatchingFor returns the matching index under which src's circuit
// reaches dst. src == dst has no matching and returns -1.
func (s *Schedule) MatchingFor(src, dst int) int {
	if src == dst {
		return -1
	}
	return ((dst-src-1)%s.Tors + s.Tors) % s.Tors
}

// At decomposes a time into (matching index, inDay, time into the slot).
func (s *Schedule) At(t sim.Time) (m int, inDay bool, into sim.Duration) {
	slot := s.Slot()
	abs := sim.Duration(t)
	idx := int(abs/slot) % s.Matchings()
	into = abs % slot
	return idx, into < s.Day, into
}

// NextDayStart returns the first time ≥ from at which the matching
// connecting src→dst begins a day.
func (s *Schedule) NextDayStart(src, dst int, from sim.Time) sim.Time {
	m := s.MatchingFor(src, dst)
	if m < 0 {
		return sim.Forever
	}
	slot := s.Slot()
	week := s.Week()
	// Day starts for matching m occur at m·slot + k·week.
	base := sim.Duration(m) * slot
	if sim.Duration(from) <= base {
		return sim.Time(base)
	}
	k := (sim.Duration(from) - base + week - 1) / week
	return sim.Time(base + k*week)
}

// ActiveOrUpcoming reports whether src's circuit to dst is currently in a
// day, or will enter one within lead. Used for routing: lead 0 is the
// paper's "forward on the circuit exclusively when available"; a positive
// lead implements reTCP's prebuffering window.
func (s *Schedule) ActiveOrUpcoming(src, dst int, now sim.Time, lead sim.Duration) bool {
	m := s.MatchingFor(src, dst)
	if m < 0 {
		return false
	}
	cur, inDay, _ := s.At(now)
	if cur == m && inDay {
		return true
	}
	if lead <= 0 {
		return false
	}
	next := s.NextDayStart(src, dst, now)
	return next.Sub(now) <= lead
}
