package transport

// IntervalSet tracks received byte ranges on the receiver side and yields
// the cumulative acknowledgment point. Ranges are half-open [start, end)
// and kept sorted and disjoint; insertion merges neighbours.
type IntervalSet struct {
	iv []interval
}

type interval struct{ start, end int64 }

// Add records the range [start, end). Overlapping or adjacent ranges are
// merged. Empty or inverted ranges are ignored.
func (s *IntervalSet) Add(start, end int64) {
	if end <= start {
		return
	}
	// Find insertion point: first interval with iv.end >= start.
	i := 0
	for i < len(s.iv) && s.iv[i].end < start {
		i++
	}
	j := i
	for j < len(s.iv) && s.iv[j].start <= end {
		if s.iv[j].start < start {
			start = s.iv[j].start
		}
		if s.iv[j].end > end {
			end = s.iv[j].end
		}
		j++
	}
	// Splice [start, end) over s.iv[i:j] in place: receiving is per-packet
	// work, so the set must not allocate beyond its backing array's growth.
	if i == j {
		s.iv = append(s.iv, interval{})
		copy(s.iv[i+1:], s.iv[i:])
		s.iv[i] = interval{start, end}
		return
	}
	s.iv[i] = interval{start, end}
	if j > i+1 {
		s.iv = append(s.iv[:i+1], s.iv[j:]...)
	}
}

// CumulativeFrom returns the highest offset c ≥ base such that every byte
// in [base, c) has been received.
func (s *IntervalSet) CumulativeFrom(base int64) int64 {
	for _, iv := range s.iv {
		if iv.start > base {
			break
		}
		if iv.end > base {
			base = iv.end
		}
	}
	return base
}

// Contains reports whether every byte of [start, end) has been received.
func (s *IntervalSet) Contains(start, end int64) bool {
	for _, iv := range s.iv {
		if iv.start <= start && end <= iv.end {
			return true
		}
	}
	return end <= start
}

// Bytes returns the total number of bytes covered.
func (s *IntervalSet) Bytes() int64 {
	var n int64
	for _, iv := range s.iv {
		n += iv.end - iv.start
	}
	return n
}

// Spans returns the number of disjoint ranges held (diagnostics).
func (s *IntervalSet) Spans() int { return len(s.iv) }
