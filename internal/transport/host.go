package transport

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Config carries host-wide transport parameters.
type Config struct {
	BaseRTT     sim.Duration // τ: maximum base RTT of the topology (§4.1)
	MSS         int64        // payload bytes per packet; defaults to packet.MSS
	RTO         sim.Duration // retransmission timeout; defaults to 40×BaseRTT, min 1 ms
	CNPInterval sim.Duration // min gap between DCQCN CNPs per flow; defaults to 50 µs
	AckPriority uint8        // priority class for ACKs
	// DupAckThreshold triggers fast retransmit (default 3). Negative
	// disables fast retransmit entirely — used on circuit networks where
	// day/night path switches reorder packets routinely.
	DupAckThreshold int
}

func (c *Config) fillDefaults() {
	if c.MSS == 0 {
		c.MSS = packet.MSS
	}
	if c.RTO == 0 {
		c.RTO = 40 * c.BaseRTT
		if c.RTO < sim.Millisecond {
			c.RTO = sim.Millisecond
		}
	}
	if c.CNPInterval == 0 {
		c.CNPInterval = 50 * sim.Microsecond
	}
	if c.DupAckThreshold == 0 {
		c.DupAckThreshold = 3
	}
}

// Host is a server endpoint running the window transport.
type Host struct {
	id   packet.NodeID
	eng  *sim.Engine
	cfg  Config
	nic  *link.Port
	pool *packet.Pool

	flows  map[packet.FlowID]*Flow
	rcv    map[packet.FlowID]*rcvState
	nextID uint64

	// OnFlowDone is invoked when a sized flow is fully acknowledged.
	OnFlowDone func(*Flow)
	// OnData observes every data packet delivered to this host, after
	// receiver bookkeeping (experiment instrumentation: per-packet
	// latency, CE fractions, ...).
	OnData func(p *packet.Packet)

	rcvdTotal int64 // payload bytes received across all flows
}

// rcvState is per-flow receiver bookkeeping.
type rcvState struct {
	got     IntervalSet
	bytes   int64 // payload bytes received (including retransmits)
	lastCNP sim.Time
	sawCNP  bool
}

// NewHost creates a transport host. The NIC uplink is attached later by
// the topology builder via SetUplink.
func NewHost(eng *sim.Engine, id packet.NodeID, cfg Config) *Host {
	cfg.fillDefaults()
	return &Host{
		id:    id,
		eng:   eng,
		cfg:   cfg,
		pool:  packet.NewPool(),
		flows: map[packet.FlowID]*Flow{},
		rcv:   map[packet.FlowID]*rcvState{},
	}
}

// ID returns the host's node ID.
func (h *Host) ID() packet.NodeID { return h.id }

// SetUplink attaches the NIC egress port.
func (h *Host) SetUplink(p *link.Port) { h.nic = p }

// SetPool shares an engine-wide packet free list with the host (topology
// builders call this so every endpoint and switch recycles through one
// pool). Hosts start with a private pool, so standalone use needs no
// setup.
func (h *Host) SetPool(pl *packet.Pool) {
	if pl != nil {
		h.pool = pl
	}
}

// Pool returns the host's packet free list (benchmark instrumentation).
func (h *Host) Pool() *packet.Pool { return h.pool }

// NIC returns the host's egress port.
func (h *Host) NIC() *link.Port { return h.nic }

// Engine returns the simulation engine the host runs on.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Config returns the host transport configuration.
func (h *Host) Config() Config { return h.cfg }

// ReceivedBytes returns the payload bytes received for one flow.
func (h *Host) ReceivedBytes(id packet.FlowID) int64 {
	if rs := h.rcv[id]; rs != nil {
		return rs.bytes
	}
	return 0
}

// ReceivedTotal returns payload bytes received across all flows. The
// window transport counts raw arrivals (retransmitted ranges included).
func (h *Host) ReceivedTotal() int64 { return h.rcvdTotal }

// DeliveredPayload returns the raw payload bytes delivered to this
// host — for the window transport identical to ReceivedTotal, named
// separately so the byte-conservation identity reads the same word on
// every host type (HOMA's ReceivedTotal deduplicates).
func (h *Host) DeliveredPayload() int64 { return h.rcvdTotal }

// Receive implements link.Receiver. Every arriving packet is consumed
// here: data packets are recycled after receiver bookkeeping (and the
// OnData hook), ACKs after the sending flow processed them, CNPs after
// notifying the reaction point. Nothing downstream may retain a *Packet
// past these calls — see the pooling invariants in PERF.md.
func (h *Host) Receive(p *packet.Packet) {
	switch p.Kind {
	case packet.Data:
		h.onData(p)
	case packet.Ack:
		if f := h.flows[p.Flow]; f != nil {
			f.onAck(p)
		}
	case packet.CNP:
		if f := h.flows[p.Flow]; f != nil {
			if n, ok := f.CC.(cc.CNPHandler); ok {
				n.OnCNP(h.eng.Now())
			}
		}
	}
	h.pool.Put(p)
}

func (h *Host) onData(p *packet.Packet) {
	rs := h.rcv[p.Flow]
	if rs == nil {
		rs = &rcvState{}
		h.rcv[p.Flow] = rs
	}
	rs.got.Add(p.Seq, p.End())
	rs.bytes += int64(p.PayloadLen)
	h.rcvdTotal += int64(p.PayloadLen)

	// DCQCN NP side: at most one CNP per flow per CNPInterval while CE
	// marks keep arriving.
	if p.CE && p.ECT {
		now := h.eng.Now()
		if !rs.sawCNP || now.Sub(rs.lastCNP) >= h.cfg.CNPInterval {
			rs.lastCNP = now
			rs.sawCNP = true
			cnp := h.pool.Get()
			cnp.ID = h.pktID()
			cnp.Kind = packet.CNP
			cnp.Flow = p.Flow
			cnp.Src = h.id
			cnp.Dst = p.Src
			cnp.Priority = h.cfg.AckPriority
			h.send(cnp)
		}
	}

	ack := h.pool.Get()
	ack.ID = h.pktID()
	ack.Kind = packet.Ack
	ack.Flow = p.Flow
	ack.Src = h.id
	ack.Dst = p.Src
	ack.AckSeq = rs.got.CumulativeFrom(0)
	ack.EchoSent = p.SentAt
	ack.EchoECN = p.CE
	ack.Priority = h.cfg.AckPriority
	// The ACK carries the INT records collected on the data path and
	// keeps collecting on the return path (§3.3: the sender receives
	// metadata from all switches along the round trip). The copy lands in
	// the recycled hop slice, so it allocates nothing in steady state.
	ack.Hops = append(ack.Hops, p.Hops...)
	h.send(ack)
	if h.OnData != nil {
		h.OnData(p)
	}
}

func (h *Host) send(p *packet.Packet) {
	p.SentAt = h.eng.Now()
	h.nic.Send(p)
}

func (h *Host) pktID() uint64 {
	h.nextID++
	return h.nextID
}

// Flows returns the host's sending flows (stable iteration not needed by
// the simulator; experiment code indexes by ID).
func (h *Host) Flow(id packet.FlowID) *Flow { return h.flows[id] }

// String implements fmt.Stringer.
func (h *Host) String() string { return fmt.Sprintf("host-%d", h.id) }
