package transport

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Unbounded marks a flow with no end (long-running background traffic).
const Unbounded int64 = -1

// Flow is one sender-side transport connection.
type Flow struct {
	ID       packet.FlowID
	Src      *Host
	Dst      packet.NodeID
	Size     int64 // bytes to transfer, or Unbounded
	CC       cc.Algorithm
	Priority uint8

	StartAt  sim.Time
	FinishAt sim.Time
	Done     bool

	sndNxt     int64
	sndUna     int64
	maxSent    int64 // highest sequence ever transmitted
	dupAcks    int
	inRecovery bool
	recover    int64
	nextSendAt sim.Time

	// Pre-bound timers: pacing credit arrival and retransmission timeout.
	// Both are armed and re-armed without allocating (see sim.Timer).
	pacer *sim.Timer
	rto   *sim.Timer

	Retransmits uint64
	started     bool
	ect         bool
}

// StartFlow registers a new flow on h toward dst and schedules its first
// transmission at 'at'. alg becomes the flow's congestion controller.
func (h *Host) StartFlow(id packet.FlowID, dst packet.NodeID, size int64, alg cc.Algorithm, at sim.Time) *Flow {
	f := &Flow{
		ID:      id,
		Src:     h,
		Dst:     dst,
		Size:    size,
		CC:      alg,
		StartAt: at,
	}
	f.pacer = h.eng.NewTimer(f.trySend)
	f.rto = h.eng.NewTimer(f.onRTO)
	h.flows[id] = f
	h.eng.At(at, f.start)
	return f
}

func (f *Flow) start() {
	f.started = true
	f.CC.Init(cc.Limits{
		BaseRTT:  f.Src.cfg.BaseRTT,
		HostRate: f.Src.nic.Rate,
		MSS:      f.Src.cfg.MSS,
		Engine:   f.Src.eng,
	})
	f.ect = cc.WantsECT(f.CC)
	f.nextSendAt = f.Src.eng.Now()
	f.trySend()
}

// remaining returns bytes not yet handed to the network (MaxInt for
// unbounded flows).
func (f *Flow) remaining() int64 {
	if f.Size == Unbounded {
		return 1 << 62
	}
	return f.Size - f.sndNxt
}

// Inflight returns the bytes sent but not yet cumulatively acknowledged.
func (f *Flow) Inflight() int64 { return f.sndNxt - f.sndUna }

// SndUna returns the cumulative acknowledgment point.
func (f *Flow) SndUna() int64 { return f.sndUna }

// SndNxt returns the next sequence to send.
func (f *Flow) SndNxt() int64 { return f.sndNxt }

// FCT returns the flow completion time; valid once Done.
func (f *Flow) FCT() sim.Duration { return f.FinishAt.Sub(f.StartAt) }

func (f *Flow) trySend() {
	if f.Done {
		return
	}
	eng := f.Src.eng
	now := eng.Now()
	for f.remaining() > 0 && float64(f.Inflight()) < f.CC.Cwnd() && now >= f.nextSendAt {
		n := f.Src.cfg.MSS
		if r := f.remaining(); r < n {
			n = r
		}
		f.emit(f.sndNxt, n, false)
		f.sndNxt += n
	}
	// Blocked on pacing: wake up when the next credit arrives. Blocked on
	// the window: the next ACK wakes us.
	if f.remaining() > 0 && float64(f.Inflight()) < f.CC.Cwnd() && now < f.nextSendAt {
		if !f.pacer.Armed() {
			f.pacer.Arm(f.nextSendAt)
		}
	}
	f.armRTO()
}

// emit transmits one data packet and charges the pacer. Any byte below
// the high-water mark is a retransmission, whether it comes from fast
// retransmit or from a go-back-N rewind after an RTO.
func (f *Flow) emit(seq, n int64, rtx bool) {
	if seq < f.maxSent {
		rtx = true
	}
	if seq+n > f.maxSent {
		f.maxSent = seq + n
	}
	p := f.Src.pool.Get()
	p.ID = f.Src.pktID()
	p.Kind = packet.Data
	p.Flow = f.ID
	p.Src = f.Src.id
	p.Dst = f.Dst
	p.Seq = seq
	p.PayloadLen = int32(n)
	p.Rtx = rtx
	p.Priority = f.Priority
	p.ECT = f.ect
	f.Src.send(p)
	if rtx {
		f.Retransmits++
	}
	if rate := f.CC.Rate(); rate > 0 {
		gap := rate.TxTime(p.WireLen())
		now := f.Src.eng.Now()
		if f.nextSendAt < now {
			f.nextSendAt = now
		}
		f.nextSendAt = f.nextSendAt.Add(gap)
	}
}

func (f *Flow) onAck(p *packet.Packet) {
	if f.Done {
		return
	}
	now := f.Src.eng.Now()
	newly := int64(0)
	switch {
	case p.AckSeq > f.sndUna:
		newly = p.AckSeq - f.sndUna
		f.sndUna = p.AckSeq
		f.dupAcks = 0
		f.resetRTO()
		if f.inRecovery {
			if f.sndUna >= f.recover {
				f.inRecovery = false
			} else {
				// NewReno partial ACK: the next hole is lost too.
				f.retransmitHead()
			}
		}
	case p.AckSeq == f.sndUna && f.Inflight() > 0:
		f.dupAcks++
		thresh := f.Src.cfg.DupAckThreshold
		if thresh > 0 && f.dupAcks == thresh && !f.inRecovery {
			f.inRecovery = true
			f.recover = f.sndNxt
			f.CC.OnLoss(now)
			f.retransmitHead()
		}
	}

	f.CC.OnAck(cc.Ack{
		Now:        now,
		AckSeq:     p.AckSeq,
		NewlyAcked: newly,
		SndNxt:     f.sndNxt,
		RTT:        now.Sub(p.EchoSent),
		ECNEcho:    p.EchoECN,
		Hops:       p.Hops,
	})

	if f.Size != Unbounded && f.sndUna >= f.Size {
		f.finish(now)
		return
	}
	f.trySend()
}

func (f *Flow) retransmitHead() {
	n := f.Src.cfg.MSS
	if f.Size != Unbounded && f.Size-f.sndUna < n {
		n = f.Size - f.sndUna
	}
	if n <= 0 {
		return
	}
	f.emit(f.sndUna, n, true)
}

func (f *Flow) finish(now sim.Time) {
	f.Done = true
	f.FinishAt = now
	f.pacer.Stop()
	f.rto.Stop()
	if s, ok := f.CC.(interface{ Stop() }); ok {
		s.Stop() // timer-driven algorithms must release their timers
	}
	if f.Src.OnFlowDone != nil {
		f.Src.OnFlowDone(f)
	}
}

func (f *Flow) armRTO() {
	if f.Inflight() == 0 || f.Done {
		return
	}
	if !f.rto.Armed() {
		f.rto.ArmAfter(f.Src.cfg.RTO)
	}
}

// resetRTO pushes the timeout a full RTO out from now. With the lazy
// Timer this is a pair of field writes per ACK, not a heap delete and
// re-insert.
func (f *Flow) resetRTO() {
	if f.Inflight() == 0 || f.Done {
		f.rto.Stop()
		return
	}
	f.rto.ArmAfter(f.Src.cfg.RTO)
}

func (f *Flow) onRTO() {
	if f.Done || f.Inflight() == 0 {
		return
	}
	// Go-back-N: rewind to the cumulative ACK point and let the window
	// algorithm react to the loss.
	f.sndNxt = f.sndUna
	f.dupAcks = 0
	f.inRecovery = false
	f.CC.OnLoss(f.Src.eng.Now())
	f.nextSendAt = f.Src.eng.Now()
	f.trySend()
}

// String implements fmt.Stringer.
func (f *Flow) String() string {
	return fmt.Sprintf("flow-%d %d→%d size=%d", f.ID, f.Src.id, f.Dst, f.Size)
}
