package transport_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
)

func star(n int, bufPerGbps int64) *topo.Network {
	return topo.Star(topo.StarConfig{
		Hosts:    n,
		HostRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts:         topo.TransportHosts(transport.Config{BaseRTT: 10 * sim.Microsecond}),
			BufferPerGbps: bufPerGbps,
			INT:           true,
		},
	})
}

func TestSingleFlowCompletes(t *testing.T) {
	net := star(2, 0)
	src, dst := net.TransportHost(0), net.TransportHost(1)
	var done *transport.Flow
	src.OnFlowDone = func(f *transport.Flow) { done = f }
	size := int64(1 << 20)
	f := src.StartFlow(net.NextFlowID(), dst.ID(), size, &cc.FixedWindow{}, 0)
	net.Eng.Run()
	if done != f || !f.Done {
		t.Fatal("flow did not complete")
	}
	if got := dst.ReceivedBytes(f.ID); got != size {
		t.Fatalf("receiver got %d bytes, want %d", got, size)
	}
	// Ideal FCT at 25G for 1MiB ≈ size/rate + rtt; the fixed window is a
	// full BDP so the flow should finish within 2x ideal.
	ideal := (25 * units.Gbps).TxTime(size+size/1000*48) + net.BaseRTT
	if f.FCT() > 2*ideal {
		t.Fatalf("FCT %v > 2×ideal %v", f.FCT(), 2*ideal)
	}
	if f.Retransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", f.Retransmits)
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	net := star(8, 0)
	var finished int
	size := int64(200_000)
	for i := 1; i < 8; i++ {
		src := net.TransportHost(i)
		src.OnFlowDone = func(*transport.Flow) { finished++ }
		src.StartFlow(net.NextFlowID(), net.HostID(0), size, &cc.FixedWindow{}, 0)
	}
	net.Eng.Run()
	if finished != 7 {
		t.Fatalf("finished = %d, want 7", finished)
	}
	if got := net.TransportHost(0).ReceivedTotal(); got != 7*size {
		t.Fatalf("receiver total = %d, want %d", got, 7*size)
	}
}

func TestLossRecoveryUnderTinyBuffer(t *testing.T) {
	// A buffer of ~13KB per port forces drops during an 8:1 incast with
	// full-BDP fixed windows; every flow must still complete via fast
	// retransmit / RTO.
	net := star(9, 512) // 512B per Gbps → 25G port ≈ 13KB shared
	var finished int
	var rtx uint64
	for i := 1; i < 9; i++ {
		src := net.TransportHost(i)
		src.OnFlowDone = func(f *transport.Flow) { finished++; rtx += f.Retransmits }
		src.StartFlow(net.NextFlowID(), net.HostID(0), 300_000, &cc.FixedWindow{}, 0)
	}
	net.Eng.Run()
	if finished != 8 {
		t.Fatalf("finished = %d, want 8", finished)
	}
	if rtx == 0 {
		t.Fatal("expected retransmissions under a tiny buffer")
	}
	if drops := net.Switches[0].Dropped(); drops == 0 {
		t.Fatal("expected admission drops")
	}
}

func TestINTEchoedToSender(t *testing.T) {
	net := star(2, 0)
	src, dst := net.TransportHost(0), net.TransportHost(1)
	probe := &hopCounter{}
	src.StartFlow(net.NextFlowID(), dst.ID(), 100_000, probe, 0)
	net.Eng.Run()
	if probe.maxHops < 2 {
		t.Fatalf("INT hops on acks = %d, want ≥2 (data + ack direction)", probe.maxHops)
	}
	if probe.acks == 0 {
		t.Fatal("no acks observed")
	}
}

// hopCounter is a fixed-window algorithm that records INT arrival.
type hopCounter struct {
	cc.FixedWindow
	acks    int
	maxHops int
}

func (h *hopCounter) OnAck(a cc.Ack) {
	h.acks++
	if len(a.Hops) > h.maxHops {
		h.maxHops = len(a.Hops)
	}
	h.FixedWindow.OnAck(a)
}

func TestUnboundedFlowKeepsSending(t *testing.T) {
	net := star(2, 0)
	src, dst := net.TransportHost(0), net.TransportHost(1)
	f := src.StartFlow(net.NextFlowID(), dst.ID(), transport.Unbounded, &cc.FixedWindow{}, 0)
	net.Eng.RunUntil(sim.Time(2 * sim.Millisecond))
	got := dst.ReceivedBytes(f.ID)
	// 25 Gbps for 2ms ≈ 6.25MB of payload (minus header overhead).
	if got < 5_000_000 {
		t.Fatalf("unbounded flow moved only %d bytes in 2ms", got)
	}
	if f.Done {
		t.Fatal("unbounded flow marked done")
	}
}

func TestFlowPacingSpacesPackets(t *testing.T) {
	// A fixed window of half a BDP paces at half line rate: receiving
	// 100KB should take about twice the line-rate time.
	net := star(2, 0)
	src, dst := net.TransportHost(0), net.TransportHost(1)
	halfBDP := float64((25 * units.Gbps).BDP(10*sim.Microsecond)) / 2
	var fct sim.Duration
	src.OnFlowDone = func(f *transport.Flow) { fct = f.FCT() }
	src.StartFlow(net.NextFlowID(), dst.ID(), 100_000, &cc.FixedWindow{Window: halfBDP}, 0)
	net.Eng.Run()
	lineTime := (25 * units.Gbps).TxTime(100_000)
	if fct < lineTime*3/2 {
		t.Fatalf("FCT %v too fast for half-rate pacing (line time %v)", fct, lineTime)
	}
	_ = packet.MSS
}
