package transport

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	var s IntervalSet
	s.Add(0, 1000)
	if got := s.CumulativeFrom(0); got != 1000 {
		t.Fatalf("cum = %d, want 1000", got)
	}
	s.Add(2000, 3000) // hole at [1000,2000)
	if got := s.CumulativeFrom(0); got != 1000 {
		t.Fatalf("cum with hole = %d", got)
	}
	s.Add(1000, 2000) // fill the hole
	if got := s.CumulativeFrom(0); got != 3000 {
		t.Fatalf("cum after fill = %d", got)
	}
	if s.Spans() != 1 {
		t.Fatalf("spans = %d, want 1 after merge", s.Spans())
	}
}

func TestIntervalMergeAdjacent(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(10, 20) // adjacent, must merge
	if s.Spans() != 1 || s.Bytes() != 20 {
		t.Fatalf("spans=%d bytes=%d", s.Spans(), s.Bytes())
	}
}

func TestIntervalOverlapAbsorb(t *testing.T) {
	var s IntervalSet
	s.Add(100, 200)
	s.Add(50, 300) // absorbs the first
	if s.Spans() != 1 || s.Bytes() != 250 {
		t.Fatalf("spans=%d bytes=%d", s.Spans(), s.Bytes())
	}
	s.Add(150, 180) // fully contained, no-op
	if s.Bytes() != 250 {
		t.Fatalf("contained add changed bytes: %d", s.Bytes())
	}
}

func TestIntervalContains(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	s.Add(30, 40)
	for _, c := range []struct {
		a, b int64
		want bool
	}{
		{10, 20, true}, {12, 18, true}, {10, 21, false},
		{25, 26, false}, {30, 40, true}, {15, 35, false}, {5, 5, true},
	} {
		if got := s.Contains(c.a, c.b); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalIgnoresEmpty(t *testing.T) {
	var s IntervalSet
	s.Add(10, 10)
	s.Add(20, 5)
	if s.Spans() != 0 || s.Bytes() != 0 {
		t.Fatalf("empty adds stored: spans=%d", s.Spans())
	}
}

// Property: against a brute-force bitmap model, IntervalSet agrees on
// cumulative point, total bytes, and span disjointness.
func TestIntervalSetModelProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const space = 500
		var s IntervalSet
		model := make([]bool, space)
		for op := 0; op < 60; op++ {
			a := int64(rng.Intn(space))
			b := a + int64(rng.Intn(50))
			if b > space {
				b = space
			}
			s.Add(a, b)
			for i := a; i < b; i++ {
				model[i] = true
			}
		}
		// cumulative
		cum := int64(0)
		for cum < space && model[cum] {
			cum++
		}
		if s.CumulativeFrom(0) != cum {
			return false
		}
		// total bytes
		var total int64
		for _, v := range model {
			if v {
				total++
			}
		}
		if s.Bytes() != total {
			return false
		}
		// spot-check Contains
		for k := 0; k < 20; k++ {
			a := int64(rng.Intn(space))
			b := a + int64(rng.Intn(40))
			if b > space {
				b = space
			}
			want := true
			for i := a; i < b; i++ {
				if !model[i] {
					want = false
					break
				}
			}
			if s.Contains(a, b) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
