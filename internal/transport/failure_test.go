package transport_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
)

// blackhole drops every packet while armed; used to exercise RTO-driven
// recovery (fast retransmit cannot fire when nothing returns).
type blackhole struct {
	inner   topo.Node
	dropped int
	armed   bool
}

func (b *blackhole) Receive(p *packet.Packet) {
	if b.armed {
		b.dropped++
		return
	}
	b.inner.Receive(p)
}

func TestRTORecoversFromBlackhole(t *testing.T) {
	net := topo.Star(topo.StarConfig{
		Hosts:    2,
		HostRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts: topo.TransportHosts(transport.Config{
				BaseRTT: 10 * sim.Microsecond,
				RTO:     500 * sim.Microsecond,
			}),
		},
	})
	src, dst := net.TransportHost(0), net.TransportHost(1)
	// Interpose the blackhole on the switch port facing the receiver.
	hole := &blackhole{inner: dst}
	net.Switches[0].Ports()[1].Peer = hole

	f := src.StartFlow(net.NextFlowID(), dst.ID(), 400_000, &cc.FixedWindow{}, 0)

	// Let traffic flow, then blackhole everything for 2 ms, then heal.
	net.Eng.At(sim.Time(50*sim.Microsecond), func() { hole.armed = true })
	net.Eng.At(sim.Time(2050*sim.Microsecond), func() { hole.armed = false })
	net.Eng.RunUntil(sim.Time(50 * sim.Millisecond))
	net.Eng.Run()

	if !f.Done {
		t.Fatalf("flow never recovered from blackhole (inflight=%d una=%d nxt=%d rtx=%d)",
			f.Inflight(), f.SndUna(), f.SndNxt(), f.Retransmits)
	}
	if hole.dropped == 0 {
		t.Fatal("blackhole dropped nothing — test is vacuous")
	}
	if f.Retransmits == 0 {
		t.Fatal("recovery without retransmissions is impossible here")
	}
	if got := dst.ReceivedBytes(f.ID); got < 400_000 {
		t.Fatalf("receiver got %d contiguous-counted bytes", got)
	}
}

func TestReorderingToleratedWithFastRtxDisabled(t *testing.T) {
	// With DupAckThreshold < 0 (the RDCN configuration), heavy dup-ACKs
	// from reordering must not trigger spurious retransmissions.
	net := topo.Star(topo.StarConfig{
		Hosts:    2,
		HostRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts: topo.TransportHosts(transport.Config{
				BaseRTT:         10 * sim.Microsecond,
				DupAckThreshold: -1,
			}),
		},
	})
	src, dst := net.TransportHost(0), net.TransportHost(1)
	// A reorderer that delays every 20th packet by 30µs.
	n := 0
	delayer := topo.Node(dst)
	reorder := receiverFunc(func(p *packet.Packet) {
		n++
		if p.Kind == packet.Data && n%20 == 0 {
			pp := p
			net.Eng.After(30*sim.Microsecond, func() { delayer.Receive(pp) })
			return
		}
		delayer.Receive(p)
	})
	net.Switches[0].Ports()[1].Peer = reorder

	f := src.StartFlow(net.NextFlowID(), dst.ID(), 300_000, &cc.FixedWindow{}, 0)
	net.Eng.Run()
	if !f.Done {
		t.Fatal("flow did not complete under reordering")
	}
	if f.Retransmits != 0 {
		t.Fatalf("spurious retransmissions with fast-rtx disabled: %d", f.Retransmits)
	}
}

type receiverFunc func(p *packet.Packet)

func (f receiverFunc) Receive(p *packet.Packet) { f(p) }
