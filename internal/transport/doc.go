// Package transport implements the sender-based reliable transport the
// congestion-control algorithms ride on: window-limited, rate-paced
// senders (rate = cwnd/τ, §3.3), per-packet cumulative ACKs that echo
// the INT stack and ECN marks, NewReno-style fast retransmit, and a
// retransmission timeout. Receivers additionally generate DCQCN CNPs.
//
// # Role in the stack
//
// A transport Host is one server NIC: it terminates flows in both
// directions and owns the egress port toward its ToR. Experiment labs
// (internal/exp) attach a cc.Algorithm per flow; the algorithms never
// see the transport, only OnAck/OnLoss-style signals.
//
// # Invariants
//
//   - Packets handed to Receive are consumed: the host copies what it
//     needs and recycles them into the engine's pool. Hooks (OnData,
//     OnFlowDone, monitor taps) must not retain packet pointers.
//   - Pacing and RTO run on pre-bound sim.Timers; the steady-state send
//     path allocates nothing beyond pool misses.
//   - A flow with Size = Unbounded never finishes on its own —
//     background traffic for windows measured by the experiment.
//   - Retransmissions are excluded from goodput accounting (Rtx flag),
//     so receiver-side ReceivedBytes measures useful bytes only.
package transport
