// Package route is the routing control plane of the simulator. It
// computes forwarding tables over the switch graph a topology builder
// wires up and installs them into the switches, separating *how paths
// are chosen* (a pluggable Strategy: single-path, per-flow ECMP,
// capacity-weighted ECMP) from *how packets are forwarded* (the
// switches' table-driven data plane, which stays allocation-free).
//
// The package also models link failures: a Router can down and restore
// switch-to-switch links at scheduled simulation times. A failure cuts
// the wire immediately — packets serialized onto a downed link are lost
// at delivery time — while the routing tables reconverge only after a
// configurable control-plane delay, so schemes see the realistic
// black-holing window between a cut and the reroute.
//
// Determinism: path choice hashes the flow key (FlowHash) with no RNG,
// rebuilds walk switches and ports in index order, and failure events
// run on the simulation engine. Identical seeds therefore produce
// byte-identical results regardless of strategy or failure schedule.
package route

import (
	"fmt"
	"sort"

	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// PortRef describes one egress port of a switch in the routing graph.
// Exactly one of ToHost/switch linkage applies: when ToHost is set the
// port faces host Host (node HostID); otherwise it faces switch Peer.
type PortRef struct {
	Link   *link.Port
	ToHost bool
	Host   int // peer host index (ToHost)
	HostID packet.NodeID
	Peer   int // peer switch index (!ToHost)
}

// Installer receives computed candidate port lists, keyed by destination
// node. *swtch.Switch implements it.
type Installer interface {
	SetRoute(dst packet.NodeID, ports []int)
}

// TablePresizer is an optional Installer refinement: the router tells
// each installer how many destinations the initial build will install,
// so table maps are sized once instead of rehashing while the control
// plane fills them.
type TablePresizer interface {
	PresizeRoutes(destinations int)
}

// Candidate is one equal-cost next hop offered to a Strategy.
type Candidate struct {
	Port int
	Rate units.BitRate
}

// Strategy turns the equal-cost candidate set for one (switch,
// destination) pair into the installed port list the switch hashes
// over. Expand runs on the control plane (topology build, reconvergence)
// and appends its ports to out, returning the extended slice — the
// Router carves tables out of one chunked arena instead of allocating a
// slice per (switch, destination) pair. The data plane only indexes the
// installed slice.
type Strategy interface {
	Name() string
	Expand(cand []Candidate, out []int) []int
}

// SinglePath always installs the lowest-indexed candidate — the
// deterministic shortest-path baseline that concentrates every flow of a
// destination onto one uplink.
type SinglePath struct{}

// Name implements Strategy.
func (SinglePath) Name() string { return "single" }

// Expand implements Strategy.
func (SinglePath) Expand(cand []Candidate, out []int) []int {
	if len(cand) == 0 {
		return out
	}
	best := cand[0].Port
	for _, c := range cand[1:] {
		if c.Port < best {
			best = c.Port
		}
	}
	return append(out, best)
}

// ECMP installs every equal-cost candidate; the switch spreads flows
// over them with FlowHash. This is the classic per-flow five-tuple ECMP
// of leaf-spine fabrics, hash imbalance included.
type ECMP struct{}

// Name implements Strategy.
func (ECMP) Name() string { return "ecmp" }

// Expand implements Strategy.
func (ECMP) Expand(cand []Candidate, out []int) []int {
	for _, c := range cand {
		out = append(out, c.Port)
	}
	return out
}

// WeightedECMP replicates each candidate proportionally to its link
// capacity (WCMP), so a spine with twice the bandwidth receives twice
// the hash space. Replication is normalized by the GCD of the
// capacities; when that would exceed MaxReplicas for some candidate,
// all weights are rescaled proportionally (every candidate keeps at
// least one entry) so extreme capacity ratios bound the table size
// without silently distorting the split.
type WeightedECMP struct {
	// MaxReplicas bounds the per-candidate replication factor; 0 means 16.
	MaxReplicas int
}

// Name implements Strategy.
func (WeightedECMP) Name() string { return "wecmp" }

// Expand implements Strategy.
func (w WeightedECMP) Expand(cand []Candidate, out []int) []int {
	if len(cand) == 0 {
		return out
	}
	cap := int64(w.MaxReplicas)
	if cap <= 0 {
		cap = 16
	}
	// Weights in whole Gbps (fabric rates are integral Gbps); a rate
	// below 1 Gbps still gets weight 1 so no candidate vanishes.
	g := int64(0)
	maxW := int64(0)
	var wbuf [16]int64
	weights := wbuf[:0]
	if len(cand) > len(wbuf) {
		weights = make([]int64, 0, len(cand))
	}
	weights = weights[:len(cand)]
	for i, c := range cand {
		weights[i] = int64(c.Rate / units.Gbps)
		if weights[i] < 1 {
			weights[i] = 1
		}
		g = gcd(g, weights[i])
		if weights[i] > maxW {
			maxW = weights[i]
		}
	}
	// When the GCD-normalized replication would exceed the cap, rescale
	// every weight proportionally (rounding, floor 1) instead of
	// clamping candidates independently — a 100G:3G pair must stay
	// ~33:1, not collapse to cap:3.
	scaleNum, scaleDen := int64(1), g
	if maxW/g > cap {
		scaleNum, scaleDen = cap, maxW
	}
	for i, c := range cand {
		n := (weights[i]*scaleNum + scaleDen/2) / scaleDen
		if n < 1 {
			n = 1
		}
		for k := int64(0); k < n; k++ {
			out = append(out, c.Port)
		}
	}
	return out
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Strategies lists the registered strategy names, sorted.
func Strategies() []string { return []string{"ecmp", "single", "wecmp"} }

// StrategyByName resolves a strategy name ("single", "ecmp", "wecmp").
// The empty name resolves to ECMP, the fabric default.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "", "ecmp":
		return ECMP{}, nil
	case "single":
		return SinglePath{}, nil
	case "wecmp":
		return WeightedECMP{}, nil
	default:
		return nil, fmt.Errorf("route: unknown strategy %q (known: ecmp, single, wecmp)", name)
	}
}

// FlowHash is the deterministic per-flow ECMP key: a splitmix64-style
// mix over the flow's addressing tuple (source, destination, flow ID —
// the simulator's stand-in for the classic five-tuple). All switches
// share it, so a flow follows one path end to end, and reruns at the
// same seed follow the same paths.
func FlowHash(src, dst packet.NodeID, flow packet.FlowID) uint64 {
	x := uint64(flow)
	x ^= uint64(uint32(src))<<32 | uint64(uint32(dst))
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Router owns the routing control plane of one network: the graph, the
// strategy, the set of currently-failed links, and the installers
// (switches) that receive computed tables.
type Router struct {
	eng        *sim.Engine
	graph      [][]PortRef // per switch, per port
	installers []Installer // same order as graph
	strategy   Strategy

	hostIDs  []packet.NodeID // host index → node ID
	down     map[[2]int]bool // undirected switch pairs currently cut
	rebuilds int

	// Scratch reused across rebuilds.
	dist     []int
	frontier []int
	next     []int
	cand     []Candidate
	// arena is the chunked backing store installed tables are carved
	// from: one allocation per chunk instead of one per (switch,
	// destination) pair. Chunks are never reset or reused within a
	// router's lifetime, so tables installed by earlier rebuilds — and
	// the stale entries partitioned switches keep — stay valid.
	arena []int
}

// NewRouter builds a router over the graph and installs the initial
// tables. graph[i] lists switch i's egress ports in port order;
// installers[i] is the switch itself.
func NewRouter(eng *sim.Engine, graph [][]PortRef, installers []Installer, strategy Strategy) *Router {
	if strategy == nil {
		strategy = ECMP{}
	}
	r := &Router{
		eng:        eng,
		graph:      graph,
		installers: installers,
		strategy:   strategy,
		down:       map[[2]int]bool{},
		dist:       make([]int, len(graph)),
	}
	seen := map[int]packet.NodeID{}
	maxHost := -1
	for _, ports := range graph {
		for _, ref := range ports {
			if ref.ToHost {
				seen[ref.Host] = ref.HostID
				if ref.Host > maxHost {
					maxHost = ref.Host
				}
			}
		}
	}
	r.hostIDs = make([]packet.NodeID, maxHost+1)
	for hi, id := range seen {
		r.hostIDs[hi] = id
	}
	for _, inst := range installers {
		if p, ok := inst.(TablePresizer); ok {
			p.PresizeRoutes(len(r.hostIDs))
		}
	}
	r.Rebuild()
	return r
}

// Strategy returns the active path-selection strategy.
func (r *Router) Strategy() Strategy { return r.strategy }

// Rebuilds counts control-plane table recomputations (1 after build).
func (r *Router) Rebuilds() int { return r.rebuilds }

// DownLinks returns the number of currently-failed links.
func (r *Router) DownLinks() int { return len(r.down) }

func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// FailLink cuts the link between switches a and b in both directions:
// packets already serialized onto it are lost at delivery time and new
// transmissions are discarded. Routing tables are NOT recomputed —
// callers model control-plane reconvergence by calling Rebuild later
// (or by using Schedule, which does both with a delay).
func (r *Router) FailLink(a, b int) {
	r.down[linkKey(a, b)] = true
	r.setLinkDown(a, b, true)
}

// RestoreLink re-activates a failed link. As with FailLink, tables are
// recomputed only by an explicit Rebuild.
func (r *Router) RestoreLink(a, b int) {
	delete(r.down, linkKey(a, b))
	r.setLinkDown(a, b, false)
}

func (r *Router) setLinkDown(a, b int, down bool) {
	cut := 0
	for _, pair := range [2][2]int{{a, b}, {b, a}} {
		for _, ref := range r.graph[pair[0]] {
			if !ref.ToHost && ref.Peer == pair[1] {
				ref.Link.SetDown(down)
				cut++
			}
		}
	}
	if cut == 0 {
		// A failure script naming a non-existent link is a wiring bug in
		// the caller (local vs global switch indexes, usually); failing
		// loudly beats measuring an intact network as if it were cut.
		panic(fmt.Sprintf("route: switches %d and %d share no link", a, b))
	}
}

// LinkEvent is one scheduled link state change between two switches.
type LinkEvent struct {
	At   sim.Time
	A, B int
	Down bool
}

// Schedule arms the failure script on the engine: at each event's time
// the data plane changes immediately (FailLink/RestoreLink), and the
// routing tables reconverge one control-plane delay later — the window
// during which traffic hashed onto the dead path is black-holed.
func (r *Router) Schedule(events []LinkEvent, reconverge sim.Duration) {
	for _, ev := range events {
		ev := ev
		r.eng.At(ev.At, func() {
			if ev.Down {
				r.FailLink(ev.A, ev.B)
			} else {
				r.RestoreLink(ev.A, ev.B)
			}
			r.eng.After(reconverge, r.Rebuild)
		})
	}
}

// Rebuild recomputes every routing table from the current link state: a
// BFS per destination host over the switch graph (skipping failed
// links), equal-cost candidates expanded by the strategy, installed into
// the switches. Switches left with no path to a destination keep their
// stale entry — pointing at a dead port that drops — mirroring a real
// partition rather than pretending the packet was never sent.
func (r *Router) Rebuild() {
	r.rebuilds++
	const inf = int(1e9)
	for hi, dst := range r.hostIDs {
		for i := range r.dist {
			r.dist[i] = inf
		}
		r.frontier = r.frontier[:0]
		// Seed: switches directly attached to the host.
		for si := range r.graph {
			for _, ref := range r.graph[si] {
				if ref.ToHost && ref.Host == hi {
					r.dist[si] = 1
					r.frontier = append(r.frontier, si)
				}
			}
		}
		frontier, next := r.frontier, r.next[:0]
		for len(frontier) > 0 {
			next = next[:0]
			for _, si := range frontier {
				for _, ref := range r.graph[si] {
					if ref.ToHost || r.down[linkKey(si, ref.Peer)] {
						continue
					}
					if r.dist[ref.Peer] == inf {
						r.dist[ref.Peer] = r.dist[si] + 1
						next = append(next, ref.Peer)
					}
				}
			}
			frontier, next = next, frontier
		}
		r.frontier, r.next = frontier[:0], next[:0]

		for si := range r.graph {
			if r.dist[si] == inf {
				continue
			}
			r.cand = r.cand[:0]
			direct := false
			for pi, ref := range r.graph[si] {
				if ref.ToHost && ref.Host == hi {
					r.cand = append(r.cand[:0], Candidate{Port: pi, Rate: ref.Link.Rate})
					direct = true
					break
				}
				if !ref.ToHost && !r.down[linkKey(si, ref.Peer)] && r.dist[ref.Peer] == r.dist[si]-1 {
					r.cand = append(r.cand, Candidate{Port: pi, Rate: ref.Link.Rate})
				}
			}
			if len(r.cand) == 0 {
				continue // partitioned: keep the stale table entry
			}
			ports := r.expandInto(r.cand)
			if direct || len(ports) > 0 {
				r.installers[si].SetRoute(dst, ports)
			}
		}
	}
}

// maxExpansion bounds how many ports a strategy can emit for n
// candidates, so the arena reserves enough headroom that Expand never
// reallocates mid-append.
func maxExpansion(s Strategy, n int) int {
	switch w := s.(type) {
	case SinglePath:
		return 1
	case ECMP:
		return n
	case WeightedECMP:
		m := int(w.MaxReplicas)
		if m <= 0 {
			m = 16
		}
		return m * n
	default:
		return 16 * n
	}
}

// expandInto runs the strategy over cand, carving the installed table
// out of the arena. The returned slice is capacity-capped, so later
// arena appends can never write through it.
func (r *Router) expandInto(cand []Candidate) []int {
	need := maxExpansion(r.strategy, len(cand))
	if cap(r.arena)-len(r.arena) < need {
		size := 4096
		if need > size {
			size = need
		}
		r.arena = make([]int, 0, size)
	}
	start := len(r.arena)
	r.arena = r.strategy.Expand(cand, r.arena)
	return r.arena[start:len(r.arena):len(r.arena)]
}

// PathSpread reports, for the given switch, how many distinct egress
// ports its installed table uses across all destinations — a quick
// diagnostic that multipath is actually engaged (tests use it to catch
// silent single-path fallbacks).
func PathSpread(table func(dst packet.NodeID) []int, dsts []packet.NodeID) []int {
	used := map[int]bool{}
	for _, d := range dsts {
		for _, p := range table(d) {
			used[p] = true
		}
	}
	out := make([]int, 0, len(used))
	for p := range used {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
