package route

import (
	"testing"

	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestStrategyByName(t *testing.T) {
	for name, want := range map[string]string{
		"": "ecmp", "ecmp": "ecmp", "single": "single", "wecmp": "wecmp",
	} {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("StrategyByName(%q): %v", name, err)
		}
		if s.Name() != want {
			t.Fatalf("StrategyByName(%q).Name() = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := StrategyByName("bogus"); err == nil {
		t.Fatal("unknown strategy did not error")
	}
}

func TestSinglePathPicksLowestPort(t *testing.T) {
	got := SinglePath{}.Expand([]Candidate{{Port: 3}, {Port: 1}, {Port: 2}}, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("SinglePath expanded to %v, want [1]", got)
	}
	if got := (SinglePath{}).Expand(nil, nil); got != nil {
		t.Fatalf("SinglePath on empty candidates = %v", got)
	}
}

func TestECMPKeepsAllCandidates(t *testing.T) {
	got := ECMP{}.Expand([]Candidate{{Port: 0}, {Port: 2}, {Port: 5}}, nil)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("ECMP expanded to %v", got)
	}
}

func TestWeightedECMPReplicatesByCapacity(t *testing.T) {
	got := WeightedECMP{}.Expand([]Candidate{
		{Port: 0, Rate: 100 * units.Gbps},
		{Port: 1, Rate: 50 * units.Gbps},
	}, nil)
	// GCD(100, 50) = 50 → port 0 twice, port 1 once.
	if len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("WCMP expanded to %v, want [0 0 1]", got)
	}
	// Equal capacities degrade to plain ECMP.
	eq := WeightedECMP{}.Expand([]Candidate{
		{Port: 0, Rate: 100 * units.Gbps},
		{Port: 1, Rate: 100 * units.Gbps},
	}, nil)
	if len(eq) != 2 {
		t.Fatalf("equal-rate WCMP expanded to %v", eq)
	}
	// Extreme ratios are capped so tables stay bounded.
	capped := WeightedECMP{MaxReplicas: 4}.Expand([]Candidate{
		{Port: 0, Rate: 400 * units.Gbps},
		{Port: 1, Rate: 1 * units.Gbps},
	}, nil)
	n0 := 0
	for _, p := range capped {
		if p == 0 {
			n0++
		}
	}
	if n0 != 4 {
		t.Fatalf("replication cap ignored: %v", capped)
	}
}

func TestFlowHashDeterministicAndSpreads(t *testing.T) {
	if FlowHash(1, 2, 3) != FlowHash(1, 2, 3) {
		t.Fatal("hash is not a function of its inputs")
	}
	if FlowHash(1, 2, 3) == FlowHash(2, 1, 3) {
		t.Fatal("hash ignores direction")
	}
	buckets := [4]int{}
	for f := packet.FlowID(0); f < 256; f++ {
		buckets[FlowHash(7, 9, f)%4]++
	}
	for i, n := range buckets {
		if n == 0 {
			t.Fatalf("bucket %d empty across 256 flows: %v", i, buckets)
		}
	}
}

// tableStub records installed routes like a switch would.
type tableStub struct{ routes map[packet.NodeID][]int }

func newTableStub() *tableStub { return &tableStub{routes: map[packet.NodeID][]int{}} }

func (ts *tableStub) SetRoute(dst packet.NodeID, ports []int) { ts.routes[dst] = ports }

// diamond builds the minimal multipath graph: host 0 on switch 0, host 1
// on switch 3, two disjoint two-hop paths 0-1-3 and 0-2-3.
func diamond(eng *sim.Engine) ([][]PortRef, []*tableStub) {
	port := func(rate units.BitRate) *link.Port { return link.NewPort(eng, rate, 0, nil) }
	g := [][]PortRef{
		{ // switch 0: host 0, then uplinks to 1 and 2
			{Link: port(25 * units.Gbps), ToHost: true, Host: 0, HostID: 100},
			{Link: port(100 * units.Gbps), Peer: 1},
			{Link: port(100 * units.Gbps), Peer: 2},
		},
		{ // switch 1
			{Link: port(100 * units.Gbps), Peer: 0},
			{Link: port(100 * units.Gbps), Peer: 3},
		},
		{ // switch 2
			{Link: port(100 * units.Gbps), Peer: 0},
			{Link: port(100 * units.Gbps), Peer: 3},
		},
		{ // switch 3: host 1, then uplinks
			{Link: port(25 * units.Gbps), ToHost: true, Host: 1, HostID: 101},
			{Link: port(100 * units.Gbps), Peer: 1},
			{Link: port(100 * units.Gbps), Peer: 2},
		},
	}
	stubs := []*tableStub{newTableStub(), newTableStub(), newTableStub(), newTableStub()}
	return g, stubs
}

func installers(stubs []*tableStub) []Installer {
	out := make([]Installer, len(stubs))
	for i, s := range stubs {
		out[i] = s
	}
	return out
}

func TestRouterInstallsECMPAndReconverges(t *testing.T) {
	eng := sim.New()
	g, stubs := diamond(eng)
	r := NewRouter(eng, g, installers(stubs), ECMP{})

	if got := stubs[0].routes[101]; len(got) != 2 {
		t.Fatalf("switch 0 ECMP candidates for host 1 = %v, want 2", got)
	}
	if got := stubs[0].routes[100]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("switch 0 direct route = %v, want [0]", got)
	}

	// Cut 0–1: the wire goes down instantly, tables only after Rebuild.
	r.FailLink(0, 1)
	if !g[0][1].Link.IsDown() || !g[1][0].Link.IsDown() {
		t.Fatal("failed link's ports are not down in both directions")
	}
	if got := stubs[0].routes[101]; len(got) != 2 {
		t.Fatalf("tables changed before reconvergence: %v", got)
	}
	r.Rebuild()
	if got := stubs[0].routes[101]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("post-failure route = %v, want [2] (via switch 2)", got)
	}
	// Switch 1 is still reachable from switch 3's side and keeps a path.
	if got := stubs[1].routes[101]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("switch 1 route after failure = %v", got)
	}

	r.RestoreLink(0, 1)
	r.Rebuild()
	if got := stubs[0].routes[101]; len(got) != 2 {
		t.Fatalf("restored route = %v, want 2 candidates", got)
	}
	if g[0][1].Link.IsDown() {
		t.Fatal("restored link still down")
	}
	if r.Rebuilds() != 3 { // initial + failure + restore
		t.Fatalf("rebuilds = %d", r.Rebuilds())
	}
}

func TestRouterPartitionKeepsStaleRoute(t *testing.T) {
	eng := sim.New()
	g, stubs := diamond(eng)
	r := NewRouter(eng, g, installers(stubs), ECMP{})
	// Cut both paths out of switch 0: it is partitioned from host 1.
	r.FailLink(0, 1)
	r.FailLink(0, 2)
	r.Rebuild()
	// The stale entry remains — packets black-hole on the dead port
	// instead of panicking on a missing route.
	if got := stubs[0].routes[101]; len(got) == 0 {
		t.Fatal("partition erased the stale route")
	}
	if r.DownLinks() != 2 {
		t.Fatalf("down links = %d", r.DownLinks())
	}
}

func TestRouterScheduleRunsOnEngine(t *testing.T) {
	eng := sim.New()
	g, stubs := diamond(eng)
	r := NewRouter(eng, g, installers(stubs), ECMP{})
	fail, restore := sim.Time(100*sim.Microsecond), sim.Time(300*sim.Microsecond)
	r.Schedule([]LinkEvent{
		{At: fail, A: 0, B: 1, Down: true},
		{At: restore, A: 0, B: 1, Down: false},
	}, 50*sim.Microsecond)

	eng.RunUntil(sim.Time(120 * sim.Microsecond))
	if !g[0][1].Link.IsDown() {
		t.Fatal("link not cut at its scheduled time")
	}
	if got := stubs[0].routes[101]; len(got) != 2 {
		t.Fatal("tables reconverged before the control-plane delay")
	}
	eng.RunUntil(sim.Time(200 * sim.Microsecond))
	if got := stubs[0].routes[101]; len(got) != 1 {
		t.Fatalf("tables did not reconverge after the delay: %v", got)
	}
	eng.RunUntil(sim.Time(400 * sim.Microsecond))
	if g[0][1].Link.IsDown() {
		t.Fatal("link not restored")
	}
	if got := stubs[0].routes[101]; len(got) != 2 {
		t.Fatalf("tables did not reconverge after restore: %v", got)
	}
}

func TestWeightedStrategyInstallsReplicatedTables(t *testing.T) {
	eng := sim.New()
	g, stubs := diamond(eng)
	// Make the 0→2 path twice as fat as 0→1.
	g[0][1].Link.Rate = 50 * units.Gbps
	g[0][2].Link.Rate = 100 * units.Gbps
	NewRouter(eng, g, installers(stubs), WeightedECMP{})
	got := stubs[0].routes[101]
	n1, n2 := 0, 0
	for _, p := range got {
		switch p {
		case 1:
			n1++
		case 2:
			n2++
		}
	}
	if n1 != 1 || n2 != 2 {
		t.Fatalf("weighted table = %v, want port 2 twice and port 1 once", got)
	}
}

func TestFailLinkOnNonAdjacentPairPanics(t *testing.T) {
	eng := sim.New()
	g, stubs := diamond(eng)
	r := NewRouter(eng, g, installers(stubs), ECMP{})
	defer func() {
		if recover() == nil {
			t.Fatal("failing a non-existent link did not panic")
		}
	}()
	r.FailLink(1, 2) // switches 1 and 2 share no link in the diamond
}
