// Package serve implements the powersimd HTTP service: scenario Specs
// come in as canonical JSON, run under a guard.Supervisor, and leave as
// Result envelopes addressed by their content key. Identical submissions
// never recompute — the (canonical spec, seed, parts) hash is the cache
// key, and simulation determinism guarantees the cached envelope is
// byte-identical to a fresh run.
//
// The package deliberately lives OUTSIDE the simulation-path
// determinism contract (see internal/analysis): admission control,
// Retry-After hints, and request timeouts are wall-clock concerns, and
// this is the only layer (with cmd/powersimd) allowed to have them.
// Nothing here schedules onto a sim engine; budgets are enforced inside
// guard at deterministic sim-time checkpoints.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/guard"
	"repro/internal/scenario"
)

// Config tunes one Server.
type Config struct {
	// Workers bounds concurrently executing simulations; ≤0 means 1.
	Workers int
	// Queue bounds requests waiting for a worker beyond the ones
	// running; a submission beyond Workers+Queue is shed with 429.
	Queue int
	// RetryAfterSec is the Retry-After hint (seconds) sent with 429
	// and 503 responses; ≤0 means 1.
	RetryAfterSec int
	// CacheDir, when non-empty, persists every envelope on disk so a
	// restarted daemon still answers repeats from cache.
	CacheDir string
	// Budget is applied to every supervised run.
	Budget guard.Budget
	// ReproDir, when non-empty, receives repro bundles for failed runs.
	ReproDir string
}

// Stats is the /v1/stats snapshot.
type Stats struct {
	Requests  uint64 `json:"requests"`
	CacheHits uint64 `json:"cache_hits"`
	Runs      uint64 `json:"runs"`
	Failures  uint64 `json:"failures"`
	Shed      uint64 `json:"shed"`
	Entries   int    `json:"cache_entries"`
	Draining  bool   `json:"draining"`
}

// Server is the powersimd request brain: content-addressed result
// cache, bounded admission, and a guard.Supervisor around every run.
// Construct with New; the zero value is not usable.
type Server struct {
	cfg Config

	// admit bounds admitted-but-unfinished submissions (running +
	// queued); workers bounds the running ones.
	admit   chan struct{}
	workers chan struct{}

	// run executes one (spec, parts) run. It defaults to the
	// supervisor; tests swap in a blocking stand-in to saturate
	// admission deterministically.
	run func(sp *scenario.Spec, parts int) (*scenario.Result, error)

	draining atomic.Bool
	inflight sync.WaitGroup

	mu    sync.Mutex
	cache map[string][]byte // key → envelope bytes

	requests  atomic.Uint64
	cacheHits atomic.Uint64
	runs      atomic.Uint64
	failures  atomic.Uint64
	shed      atomic.Uint64
}

// New builds a Server and, when CacheDir is set, reloads previously
// persisted envelopes.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.RetryAfterSec <= 0 {
		cfg.RetryAfterSec = 1
	}
	s := &Server{
		cfg:     cfg,
		admit:   make(chan struct{}, cfg.Workers+cfg.Queue),
		workers: make(chan struct{}, cfg.Workers),
		cache:   make(map[string][]byte),
	}
	sup := &guard.Supervisor{Budget: cfg.Budget, ReproDir: cfg.ReproDir}
	s.run = sup.RunSpec
	if cfg.CacheDir != "" {
		if err := s.loadCache(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Handler returns the HTTP API:
//
//	POST /v1/run?parts=N   Spec JSON → Result envelope (X-Powersim-Cache: hit|miss)
//	POST /v1/suite?parts=N JSON array of Specs → array of envelopes/errors
//	GET  /v1/stats         counters snapshot
//	GET  /healthz          200 while serving, 503 while draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/suite", s.handleSuite)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// Drain stops admitting work, waits for in-flight runs to finish, and
// flushes the cache index. Safe to call once; used on SIGTERM.
func (s *Server) Drain() error {
	s.draining.Store(true)
	s.inflight.Wait()
	return s.flushIndex()
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Kind   string `json:"kind"`
	Bundle string `json:"bundle,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a scenario Spec", "method")
		return
	}
	sp, parts, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	env, hit, err := s.resolve(sp, parts)
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	if hit {
		w.Header().Set("X-Powersim-Cache", "hit")
	} else {
		w.Header().Set("X-Powersim-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(env)
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON array of Specs", "method")
		return
	}
	// Admission is per spec inside resolve — holding a worker slot here
	// while the fan-out waits for workers would deadlock at Workers=1.
	// Individual specs past capacity come back as per-slot overload
	// errors instead of failing the whole suite.
	parts, ok := partsParam(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error(), "read")
		return
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(body, &raws); err != nil {
		httpError(w, http.StatusBadRequest, "suite body must be a JSON array of Specs: "+err.Error(), "decode")
		return
	}

	type slot struct {
		Key    string          `json:"key,omitempty"`
		Result json.RawMessage `json:"result,omitempty"`
		Error  *errorBody      `json:"error,omitempty"`
	}
	out := make([]slot, len(raws))
	var wg sync.WaitGroup
	for i, raw := range raws {
		sp, err := scenario.DecodeSpec(raw)
		if err != nil {
			out[i].Error = &errorBody{Error: err.Error(), Kind: "decode"}
			continue
		}
		wg.Add(1)
		go func(i int, sp *scenario.Spec) {
			defer wg.Done()
			env, _, err := s.resolve(sp, parts)
			if err != nil {
				out[i].Error = runErrorBody(err)
				return
			}
			key, _ := scenario.SpecKey(sp, sp.Seed, parts)
			out[i] = slot{Key: key, Result: env}
		}(i, sp)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := len(s.cache)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(Stats{
		Requests:  s.requests.Load(),
		CacheHits: s.cacheHits.Load(),
		Runs:      s.runs.Load(),
		Failures:  s.failures.Load(),
		Shed:      s.shed.Load(),
		Entries:   entries,
		Draining:  s.draining.Load(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// decodeRequest parses the parts parameter and strict Spec body,
// answering the request itself on failure.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*scenario.Spec, int, bool) {
	parts, ok := partsParam(w, r)
	if !ok {
		return nil, 0, false
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error(), "read")
		return nil, 0, false
	}
	sp, err := scenario.DecodeSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error(), "decode")
		return nil, 0, false
	}
	return sp, parts, true
}

func partsParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	parts := 1
	if v := r.URL.Query().Get("parts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "parts must be a positive integer", "decode")
			return 0, false
		}
		parts = n
	}
	return parts, true
}

// resolve answers one (spec, parts) submission: cache first, then a
// supervised run behind admission control. The returned envelope bytes
// for a given key are identical forever — cold runs store exactly what
// later hits return.
func (s *Server) resolve(sp *scenario.Spec, parts int) (env []byte, hit bool, err error) {
	key, err := scenario.SpecKey(sp, sp.Seed, parts)
	if err != nil {
		return nil, false, &requestError{status: http.StatusBadRequest, kind: "decode", msg: err.Error()}
	}
	if env := s.lookup(key); env != nil {
		s.cacheHits.Add(1)
		return env, true, nil
	}
	if err := s.acquire(); err != nil {
		return nil, false, err
	}
	defer s.release()

	// Double-check after the possible queue wait: an identical
	// submission may have landed the entry meanwhile.
	if env := s.lookup(key); env != nil {
		s.cacheHits.Add(1)
		return env, true, nil
	}
	s.runs.Add(1)
	res, err := s.run(sp, parts)
	if err != nil {
		s.failures.Add(1)
		return nil, false, err
	}
	env, err = encodeEnvelope(key, sp, parts, res)
	if err != nil {
		s.failures.Add(1)
		return nil, false, err
	}
	s.store(key, env)
	return env, false, nil
}

// requestError carries an HTTP status decided before any run happened.
type requestError struct {
	status int
	kind   string
	msg    string
}

func (e *requestError) Error() string { return e.msg }

// acquire takes an admission token (non-blocking — full queue sheds the
// request) and then a worker slot (blocking — this is the queue wait).
func (s *Server) acquire() error {
	if s.draining.Load() {
		return &requestError{status: http.StatusServiceUnavailable, kind: "draining", msg: "server is draining"}
	}
	select {
	case s.admit <- struct{}{}:
	default:
		s.shed.Add(1)
		return &requestError{status: http.StatusTooManyRequests, kind: "overload", msg: "queue full, retry later"}
	}
	s.inflight.Add(1)
	s.workers <- struct{}{}
	return nil
}

func (s *Server) release() {
	<-s.workers
	<-s.admit
	s.inflight.Done()
}

func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	var re *requestError
	if errors.As(err, &re) {
		if re.status == http.StatusTooManyRequests || re.status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSec))
		}
		httpError(w, re.status, re.msg, re.kind)
		return
	}
	body := runErrorBody(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusUnprocessableEntity)
	json.NewEncoder(w).Encode(body)
}

// runErrorBody maps guard's typed errors to the error envelope.
func runErrorBody(err error) *errorBody {
	var (
		be *guard.BudgetExceeded
		le *guard.LivelockError
		pe *guard.PanicError
		re *requestError
	)
	switch {
	case errors.As(err, &re):
		return &errorBody{Error: re.msg, Kind: re.kind}
	case errors.As(err, &be):
		return &errorBody{Error: be.Error(), Kind: "budget", Bundle: be.Bundle}
	case errors.As(err, &le):
		return &errorBody{Error: le.Error(), Kind: "livelock", Bundle: le.Bundle}
	case errors.As(err, &pe):
		return &errorBody{Error: pe.Error(), Kind: "panic", Bundle: pe.Bundle}
	default:
		return &errorBody{Error: err.Error(), Kind: "run"}
	}
}

func httpError(w http.ResponseWriter, status int, msg, kind string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg, Kind: kind})
}

// envelope is the /v1/run response: run identity plus the Result
// document. The bytes are produced once per key and cached verbatim, so
// cold and hit responses are byte-identical.
type envelope struct {
	V      int             `json:"v"`
	Key    string          `json:"key"`
	Seed   int64           `json:"seed"`
	Parts  int             `json:"parts"`
	Result json.RawMessage `json:"result"`
}

func encodeEnvelope(key string, sp *scenario.Spec, parts int, res *scenario.Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err != nil {
		return nil, err
	}
	return json.Marshal(envelope{
		V:      scenario.SpecVersion,
		Key:    key,
		Seed:   sp.Seed,
		Parts:  parts,
		Result: bytes.TrimRight(buf.Bytes(), "\n"),
	})
}

// lookup checks memory first, then the disk cache (promoting a disk hit
// into memory).
func (s *Server) lookup(key string) []byte {
	s.mu.Lock()
	env, ok := s.cache[key]
	s.mu.Unlock()
	if ok {
		return env
	}
	if s.cfg.CacheDir == "" {
		return nil
	}
	b, err := os.ReadFile(s.entryPath(key))
	if err != nil {
		return nil
	}
	s.mu.Lock()
	s.cache[key] = b
	s.mu.Unlock()
	return b
}

func (s *Server) store(key string, env []byte) {
	s.mu.Lock()
	s.cache[key] = env
	s.mu.Unlock()
	if s.cfg.CacheDir == "" {
		return
	}
	// Best-effort persistence: a failed write only costs a future
	// recomputation. Write-then-rename keeps readers off partial files.
	tmp := s.entryPath(key) + ".tmp"
	if err := os.WriteFile(tmp, env, 0o644); err == nil {
		os.Rename(tmp, s.entryPath(key))
	}
}

func (s *Server) entryPath(key string) string {
	return filepath.Join(s.cfg.CacheDir, key+".json")
}

// loadCache repopulates the in-memory map from CacheDir.
func (s *Server) loadCache() error {
	if err := os.MkdirAll(s.cfg.CacheDir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.cfg.CacheDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".json" || name == "index.json" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.cfg.CacheDir, name))
		if err != nil {
			continue
		}
		s.cache[name[:len(name)-len(".json")]] = b
	}
	return nil
}

// flushIndex writes a sorted key index next to the entries — the
// drain-time manifest that makes the cache directory self-describing.
func (s *Server) flushIndex() error {
	if s.cfg.CacheDir == "" {
		return nil
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.cache))
	for k := range s.cache {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	b, err := json.MarshalIndent(struct {
		V    int      `json:"v"`
		Keys []string `json:"keys"`
	}{V: scenario.SpecVersion, Keys: keys}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.cfg.CacheDir, "index.json"), append(b, '\n'), 0o644)
}
