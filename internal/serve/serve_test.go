package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/guard"
	"repro/internal/scenario"
)

func presetJSON(t *testing.T, name string) []byte {
	t.Helper()
	for _, sp := range scenario.SpecPresets() {
		if sp.Name == name {
			b, err := scenario.MarshalCanonical(&sp)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
	}
	t.Fatalf("no preset %q", name)
	return nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunCachedVsCold: the second submission of an identical spec is a
// cache hit with a byte-identical envelope; a different partition count
// is a different run identity (cold again, different key).
func TestRunCachedVsCold(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheDir: t.TempDir()})
	spec := presetJSON(t, "incast")

	cold := post(t, ts.URL+"/v1/run", spec)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", cold.StatusCode, readAll(t, cold))
	}
	if h := cold.Header.Get("X-Powersim-Cache"); h != "miss" {
		t.Fatalf("cold run cache header %q, want miss", h)
	}
	coldBody := readAll(t, cold)

	hit := post(t, ts.URL+"/v1/run", spec)
	if h := hit.Header.Get("X-Powersim-Cache"); h != "hit" {
		t.Fatalf("second run cache header %q, want hit", h)
	}
	hitBody := readAll(t, hit)
	if !bytes.Equal(coldBody, hitBody) {
		t.Fatal("cached envelope differs from cold envelope")
	}

	var env struct {
		V     int             `json:"v"`
		Key   string          `json:"key"`
		Parts int             `json:"parts"`
		Res   json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(coldBody, &env); err != nil {
		t.Fatal(err)
	}
	if env.V != scenario.SpecVersion || env.Parts != 1 || len(env.Key) != 64 || len(env.Res) == 0 {
		t.Fatalf("malformed envelope: v=%d parts=%d key=%q", env.V, env.Parts, env.Key)
	}

	sharded := post(t, ts.URL+"/v1/run?parts=2", spec)
	if h := sharded.Header.Get("X-Powersim-Cache"); h != "miss" {
		t.Fatalf("parts=2 should be a distinct run identity, got cache %q", h)
	}
	var env2 struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(readAll(t, sharded), &env2); err != nil {
		t.Fatal(err)
	}
	if env2.Key == env.Key {
		t.Fatal("parts=1 and parts=2 share a cache key")
	}
}

// TestDiskCacheSurvivesRestart: a new Server over the same CacheDir
// answers from cache without rerunning.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := presetJSON(t, "fairness")
	_, ts := newTestServer(t, Config{CacheDir: dir})
	first := readAll(t, post(t, ts.URL+"/v1/run", spec))

	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	s2.run = func(*scenario.Spec, int) (*scenario.Result, error) {
		t.Error("restarted server reran a cached spec")
		return nil, nil
	}
	resp := post(t, ts2.URL+"/v1/run", spec)
	if h := resp.Header.Get("X-Powersim-Cache"); h != "hit" {
		t.Fatalf("restart lookup: cache %q, want hit", h)
	}
	if !bytes.Equal(first, readAll(t, resp)) {
		t.Fatal("envelope changed across restart")
	}
}

// TestBadRequests: non-canonical or malformed submissions are rejected
// with 400 before any run.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		url  string
		body string
	}{
		"unknown field":  {"/v1/run", `{"v":1,"seed":1,"scheme":"powertcp","topo":{"kind":"star","hosts":4},"horizon_us":50,"bogus":1}`},
		"not json":       {"/v1/run", `hello`},
		"foreign v":      {"/v1/run", `{"v":99,"seed":1,"scheme":"powertcp","topo":{"kind":"star","hosts":4},"horizon_us":50}`},
		"bad parts":      {"/v1/run?parts=0", `{}`},
		"non-int parts":  {"/v1/run?parts=x", `{}`},
		"suite not list": {"/v1/suite", `{"v":1}`},
	} {
		resp := post(t, ts.URL+tc.url, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestRunFailureTyped: a run that trips its budget comes back 422 with
// the typed kind, and the daemon keeps serving.
func TestRunFailureTyped(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: guard.Budget{MaxEvents: 500}})
	resp := post(t, ts.URL+"/v1/run", presetJSON(t, "incast"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(readAll(t, resp), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Kind != "budget" || !strings.Contains(eb.Error, "events") {
		t.Fatalf("error envelope %+v, want budget/events", eb)
	}
	// The daemon survives the failure and keeps serving.
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("healthz after a failed run: %d, want 200", health.StatusCode)
	}
}

// TestOverloadSheds: with one worker wedged and the queue full, the
// next submission is shed with 429 + Retry-After instead of piling up.
func TestOverloadSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 0, RetryAfterSec: 7})
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s.run = func(*scenario.Spec, int) (*scenario.Result, error) {
		once.Do(func() { close(started) })
		<-block
		return &scenario.Result{Experiment: "stub"}, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := post(t, ts.URL+"/v1/run", presetJSON(t, "incast"))
		readAll(t, resp)
	}()
	<-started // the lone worker is now wedged and the admission token held

	shed := post(t, ts.URL+"/v1/run", presetJSON(t, "fairness"))
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", shed.StatusCode)
	}
	if ra := shed.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After %q, want 7", ra)
	}
	close(block)
	wg.Wait()

	var st Stats
	if err := json.Unmarshal(readAll(t, post(t, ts.URL+"/v1/stats", nil)), &st); err == nil && st.Shed != 1 {
		t.Fatalf("shed counter %d, want 1", st.Shed)
	}
}

// TestSuiteFanOut: a suite request answers every spec, reuses the cache
// across duplicates, and isolates per-spec failures.
func TestSuiteFanOut(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	incast := presetJSON(t, "incast")
	bad := []byte(`{"v":1,"seed":1,"scheme":"no-such-scheme","topo":{"kind":"star","hosts":4},"traffic":[{"kind":"permutation"}],"horizon_us":50}`)
	body := []byte("[" + string(incast) + "," + string(bad) + "," + string(incast) + "]")

	resp := post(t, ts.URL+"/v1/suite", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var out []struct {
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
		Error  *struct{ Error, Kind string }
	}
	if err := json.Unmarshal(readAll(t, resp), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d slots, want 3", len(out))
	}
	if out[0].Error != nil || out[2].Error != nil || out[1].Error == nil {
		t.Fatalf("failure isolation broken: %+v", out)
	}
	if !bytes.Equal(out[0].Result, out[2].Result) || out[0].Key != out[2].Key {
		t.Fatal("duplicate specs in one suite disagree")
	}
}

// TestDrain: draining flips healthz to 503, sheds new submissions with
// 503, waits for in-flight work, and flushes the cache index.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CacheDir: dir})
	readAll(t, post(t, ts.URL+"/v1/run", presetJSON(t, "incast")))

	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	shed := post(t, ts.URL+"/v1/run", presetJSON(t, "fairness"))
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: %d, want 503", shed.StatusCode)
	}
	var index struct {
		V    int      `json:"v"`
		Keys []string `json:"keys"`
	}
	b, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &index); err != nil {
		t.Fatal(err)
	}
	if len(index.Keys) != 1 || len(index.Keys[0]) != 64 {
		t.Fatalf("drain index %+v, want one 64-hex key", index)
	}
}

// TestEnvelopeMatchesDirectRun: the served result payload is exactly
// what scenario.Run computes for the same spec — serving adds no
// transformation.
func TestEnvelopeMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	raw := presetJSON(t, "permutation")
	sp, err := scenario.DecodeSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	sup := &guard.Supervisor{}
	want, err := sup.RunSpec(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	var encoded bytes.Buffer
	if err := want.EncodeJSON(&encoded); err != nil {
		t.Fatal(err)
	}
	// The envelope embeds the Result compacted; compact the direct
	// encoding the same way before comparing bytes.
	var wantCompact bytes.Buffer
	if err := json.Compact(&wantCompact, encoded.Bytes()); err != nil {
		t.Fatal(err)
	}
	var env struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(readAll(t, post(t, ts.URL+"/v1/run", raw)), &env); err != nil {
		t.Fatal(err)
	}
	if got, want := string(env.Result), wantCompact.String(); got != want {
		t.Fatalf("served result differs from direct run:\n got %.200s\nwant %.200s", got, want)
	}
}
