package telemetry

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

func sampleHops() []HopRecord {
	return []HopRecord{
		{QLen: 4096, TxBytes: 123456, TS: sim.Time(500 * sim.Microsecond), Rate: 100 * units.Gbps},
		{QLen: 0, TxBytes: 99, TS: sim.Time(3 * sim.Microsecond), Rate: 25 * units.Gbps},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	hops := sampleHops()
	buf, err := Marshal(hops)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != WireLen(len(hops)) {
		t.Fatalf("wire len = %d, want %d", len(buf), WireLen(len(hops)))
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hops {
		want := hops[i].Quantize()
		if got[i] != want {
			t.Errorf("hop %d: got %+v, want quantized %+v", i, got[i], want)
		}
	}
}

func TestMarshalTooManyHops(t *testing.T) {
	hops := make([]HopRecord, MaxHops+1)
	for i := range hops {
		hops[i].Rate = 25 * units.Gbps
	}
	if _, err := Marshal(hops); err != ErrTooManyHops {
		t.Fatalf("err = %v, want ErrTooManyHops", err)
	}
}

func TestMarshalUnknownRate(t *testing.T) {
	if _, err := Marshal([]HopRecord{{Rate: 3}}); err == nil {
		t.Fatal("unknown rate did not error")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err != ErrShortBuffer {
		t.Errorf("nil buffer: err = %v", err)
	}
	buf, _ := Marshal(sampleHops())
	buf[0] = 0
	if _, err := Unmarshal(buf); err != ErrBadHeader {
		t.Errorf("bad magic: err = %v", err)
	}
	buf, _ = Marshal(sampleHops())
	if _, err := Unmarshal(buf[:len(buf)-1]); err != ErrShortBuffer {
		t.Errorf("truncated: err = %v", err)
	}
}

func TestRateCodes(t *testing.T) {
	for _, r := range []units.BitRate{25 * units.Gbps, 100 * units.Gbps} {
		c, err := RateCode(r)
		if err != nil {
			t.Fatal(err)
		}
		back, err := RateFromCode(c)
		if err != nil || back != r {
			t.Fatalf("code round-trip for %v: got %v, %v", r, back, err)
		}
	}
	if _, err := RateFromCode(200); err == nil {
		t.Fatal("bad code did not error")
	}
}

// Property: wire round-trip equals Quantize, and quantization error is
// bounded by the documented units.
func TestRoundTripProperty(t *testing.T) {
	prop := func(qRaw uint32, tx uint64, tsRaw uint32, rIdx uint8) bool {
		rates := []units.BitRate{25 * units.Gbps, 100 * units.Gbps, 40 * units.Gbps}
		h := HopRecord{
			QLen:    int64(qRaw % 2_000_000),
			TxBytes: tx,
			TS:      sim.Time(sim.Duration(tsRaw) * sim.Nanosecond),
			Rate:    rates[int(rIdx)%len(rates)],
		}
		buf, err := Marshal([]HopRecord{h})
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil || len(got) != 1 {
			return false
		}
		want := h.Quantize()
		if got[0] != want {
			return false
		}
		// Error bounds on the lossy fields.
		if h.QLen <= QLenMax && (h.QLen-got[0].QLen < 0 || h.QLen-got[0].QLen >= qlenUnit) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	hops := sampleHops()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(hops); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	buf, _ := Marshal(sampleHops())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
