// Package telemetry implements the in-band network telemetry (INT)
// metadata that PowerTCP and HPCC consume.
//
// Each switch hop appends one HopRecord when a packet is scheduled for
// transmission (at dequeue from the traffic manager, matching the paper's
// Tofino implementation, §3.6). The record carries the egress queue
// length, the cumulative transmitted byte counter of the egress port, a
// timestamp, and the configured link bandwidth — exactly the fields of
// HPCC's INT header that PowerTCP reuses (§3.3, "Feedback").
//
// In the simulator the records travel as native Go values for speed, but
// the package also provides the on-the-wire codec used by the paper's
// switch component: a 32-bit base header plus one 64-bit record per hop,
// carried in TCP option 36 (§5). The codec quantizes fields the way a
// real pipeline must and is exercised by the property tests.
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// HopRecord is the per-hop egress metadata pushed by a switch.
type HopRecord struct {
	QLen    int64         // egress queue length in bytes at dequeue
	TxBytes uint64        // cumulative bytes transmitted by the egress port
	TS      sim.Time      // timestamp of the dequeue
	Rate    units.BitRate // configured bandwidth of the egress link
}

// MaxHops is the largest round-trip path length the wire format supports:
// TCP options are limited to 40 bytes, so a 4-byte base header leaves room
// for four 8-byte hop records (§5 of the paper notes the same limit).
const MaxHops = 4

// PathHopCap is the hop capacity packet pools preallocate for the INT
// stack. The simulator's native (non-wire) mode stamps one record per
// switch egress over the whole round trip; the deepest path in the
// repository's topologies — fat-tree host→ToR→agg→core→agg→ToR→host and
// back — stamps 10, so 12 leaves slack without wasting memory.
const PathHopCap = 12

// Wire format constants.
const (
	BaseHeaderLen = 4                   // magic+version, hop count
	HopRecordLen  = 8                   // packed per-hop record
	OptionKind    = 36                  // unused TCP option number claimed in §5
	wireMagic     = 0xB1                // identifies the option payload
	qlenUnit      = 64                  // bytes per QLen unit (16-bit field → 4 MiB max)
	txUnit        = 256                 // bytes per TxBytes unit (20-bit wrapping field)
	tsUnit        = sim.Nanosecond * 64 // 64 ns ticks (16-bit wrapping field)
)

// Quantization limits exposed for tests.
const (
	QLenMax      = qlenUnit * (1<<16 - 1)
	TxWrapBytes  = txUnit * (1 << 20)
	TSWrapPeriod = sim.Duration(tsUnit) * (1 << 16)
)

// rateCodes is the codebook for the 8-bit bandwidth field. Real INT
// deployments carry a code, not the raw bps value; every rate used in the
// paper's topologies appears here.
var rateCodes = []units.BitRate{
	0,
	1 * units.Gbps,
	10 * units.Gbps,
	25 * units.Gbps,
	40 * units.Gbps,
	50 * units.Gbps,
	100 * units.Gbps,
	200 * units.Gbps,
	400 * units.Gbps,
	// Sub-Gbps codes for software bottlenecks (livenet's loopback rig).
	50 * units.Mbps,
	100 * units.Mbps,
	200 * units.Mbps,
	500 * units.Mbps,
	2500 * units.Mbps,
	5 * units.Gbps,
}

// RateCode returns the codebook index for r, or an error if the rate is
// not representable on the wire.
func RateCode(r units.BitRate) (uint8, error) {
	for i, c := range rateCodes {
		if c == r {
			return uint8(i), nil
		}
	}
	return 0, fmt.Errorf("telemetry: bandwidth %v has no wire code", r)
}

// RateFromCode is the inverse of RateCode.
func RateFromCode(c uint8) (units.BitRate, error) {
	if int(c) >= len(rateCodes) {
		return 0, fmt.Errorf("telemetry: unknown bandwidth code %d", c)
	}
	return rateCodes[c], nil
}

// Quantize returns the record as it would survive a wire round-trip:
// QLen floored to its unit and clamped, TxBytes floored and wrapped, TS
// floored and wrapped. Algorithms are tested against both exact and
// quantized records.
func (h HopRecord) Quantize() HopRecord {
	q := h.QLen / qlenUnit * qlenUnit
	if q > QLenMax {
		q = QLenMax
	}
	return HopRecord{
		QLen:    q,
		TxBytes: h.TxBytes % uint64(TxWrapBytes) / txUnit * txUnit,
		TS:      sim.Time(sim.Duration(h.TS) % TSWrapPeriod / sim.Duration(tsUnit) * sim.Duration(tsUnit)),
		Rate:    h.Rate,
	}
}

// Errors returned by the codec.
var (
	ErrTooManyHops = errors.New("telemetry: more hops than the wire format allows")
	ErrShortBuffer = errors.New("telemetry: buffer too short")
	ErrBadHeader   = errors.New("telemetry: malformed base header")
)

// WireLen returns the encoded size of a header with n hop records.
func WireLen(n int) int { return BaseHeaderLen + n*HopRecordLen }

// Marshal encodes hops into the 32-bit base + 64-bit-per-hop format.
//
// Per-hop layout (big endian, 64 bits):
//
//	bits 63..48  qlen      (16 bits, 64 B units, saturating)
//	bits 47..28  txBytes   (20 bits, 256 B units, wrapping)
//	bits 27..12  timestamp (16 bits, 64 ns ticks, wrapping)
//	bits 11..4   bandwidth code (8 bits)
//	bits  3..0   reserved
func Marshal(hops []HopRecord) ([]byte, error) {
	if len(hops) > MaxHops {
		return nil, ErrTooManyHops
	}
	buf := make([]byte, WireLen(len(hops)))
	buf[0] = wireMagic
	buf[1] = 1 // version
	buf[2] = uint8(len(hops))
	buf[3] = OptionKind
	for i, h := range hops {
		code, err := RateCode(h.Rate)
		if err != nil {
			return nil, err
		}
		q := h.QLen / qlenUnit
		if q > 1<<16-1 {
			q = 1<<16 - 1
		}
		if q < 0 {
			q = 0
		}
		tx := h.TxBytes / txUnit % (1 << 20)
		ts := uint64(sim.Duration(h.TS)/sim.Duration(tsUnit)) % (1 << 16)
		var w uint64
		w |= uint64(q) << 48
		w |= tx << 28
		w |= ts << 12
		w |= uint64(code) << 4
		binary.BigEndian.PutUint64(buf[BaseHeaderLen+i*HopRecordLen:], w)
	}
	return buf, nil
}

// Unmarshal decodes a header produced by Marshal. Timestamps and byte
// counters come back modulo their wrap periods; consumers difference
// successive records, so wrapping is harmless as long as samples are
// closer together than the wrap period (4.2 ms for TS).
func Unmarshal(buf []byte) ([]HopRecord, error) {
	if len(buf) < BaseHeaderLen {
		return nil, ErrShortBuffer
	}
	if buf[0] != wireMagic || buf[1] != 1 || buf[3] != OptionKind {
		return nil, ErrBadHeader
	}
	n := int(buf[2])
	if n > MaxHops {
		return nil, ErrBadHeader
	}
	if len(buf) < WireLen(n) {
		return nil, ErrShortBuffer
	}
	hops := make([]HopRecord, n)
	for i := range hops {
		w := binary.BigEndian.Uint64(buf[BaseHeaderLen+i*HopRecordLen:])
		rate, err := RateFromCode(uint8(w >> 4 & 0xFF))
		if err != nil {
			return nil, err
		}
		hops[i] = HopRecord{
			QLen:    int64(w>>48) * qlenUnit,
			TxBytes: (w >> 28 & (1<<20 - 1)) * txUnit,
			TS:      sim.Time(sim.Duration(w>>12&0xFFFF) * sim.Duration(tsUnit)),
			Rate:    rate,
		}
	}
	return hops, nil
}
