// Package homa implements a receiver-driven, message-oriented transport
// modelled on HOMA (Montazeri et al., SIGCOMM 2018), the receiver-driven
// baseline of §4. The mechanisms the paper's evaluation exercises are all
// present:
//
//   - Unscheduled data: the first RTTBytes of every message leave at line
//     rate immediately, at a priority chosen from size cutoffs.
//   - Scheduled data: the remainder waits for grants. The receiver ranks
//     incomplete messages by remaining bytes (SRPT) and keeps the top
//     `Overcommit` messages granted one RTTBytes window ahead of what it
//     has received, mapping rank to the scheduled priority levels.
//   - Network priorities: packets carry the 8-level class the switches'
//     strict-priority queues (queue.Prio) serve.
//   - Timeout-driven resends: the receiver requests the first hole of a
//     stalled message; needed because the paper runs HOMA on switches
//     with finite, Dynamic-Thresholds-managed buffers (§4.2).
//
// The paper's finding — HOMA cannot control congestion on the
// oversubscribed ToR uplinks of a 4:1 fat-tree, and limited buffers hurt
// its incast behaviour — is an emergent property of exactly these
// mechanisms.
package homa

import (
	"fmt"
	"sort"

	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/units"
)

// Config carries host-wide HOMA parameters.
type Config struct {
	BaseRTT sim.Duration
	// Overcommit is the number of messages granted concurrently (the
	// paper sweeps 1–6; its main results use 1, Appendix D the rest).
	Overcommit int
	// RTTBytes is the unscheduled window; 0 derives HostBw·τ at runtime
	// (the paper's RTTBytes configuration, §4.1).
	RTTBytes int64
	// MSS is the payload per packet (default packet.MSS).
	MSS int64
	// UnschedCutoffs maps message size to unscheduled priority: size ≤
	// Cutoffs[i] → priority i. Defaults fit the web-search workload.
	UnschedCutoffs []int64
	// SchedBase is the first (best) priority level used for scheduled
	// data; ranks map to SchedBase..packet.MaxPriority. Default: one past
	// the unscheduled levels.
	SchedBase uint8
	// ResendTimeout triggers hole-repair requests (default 40×BaseRTT,
	// min 1 ms, like the transport RTO).
	ResendTimeout sim.Duration
}

func (c *Config) fillDefaults() {
	if c.Overcommit == 0 {
		c.Overcommit = 1
	}
	if c.MSS == 0 {
		c.MSS = packet.MSS
	}
	if len(c.UnschedCutoffs) == 0 {
		c.UnschedCutoffs = []int64{3_000, 30_000, 300_000, 1 << 62}
	}
	if c.SchedBase == 0 {
		c.SchedBase = uint8(len(c.UnschedCutoffs))
	}
	if c.ResendTimeout == 0 {
		c.ResendTimeout = 40 * c.BaseRTT
		if c.ResendTimeout < sim.Millisecond {
			c.ResendTimeout = sim.Millisecond
		}
	}
}

// Msg is one sender-side message.
type Msg struct {
	ID      uint64
	Flow    packet.FlowID
	Dst     packet.NodeID
	Size    int64
	StartAt sim.Time

	sent      int64 // bytes handed to the NIC
	granted   int64 // receiver permission boundary
	schedPrio uint8 // priority assigned by the latest grant
	done      bool
}

// Done reports sender-side completion (receiver confirmed all bytes).
func (m *Msg) Done() bool { return m.done }

type recvMsg struct {
	id      uint64
	flow    packet.FlowID
	src     packet.NodeID
	size    int64
	prio    uint8 // current scheduled priority
	got     transport.IntervalSet
	granted int64
	start   sim.Time // SentAt of the earliest packet seen
	lastHit sim.Time
	resend  *sim.Timer // hole-repair timer, bound once per message
	done    bool
}

func (m *recvMsg) received() int64  { return m.got.Bytes() }
func (m *recvMsg) remaining() int64 { return m.size - m.received() }

// Host is a HOMA endpoint. It satisfies the topo.Node interface.
type Host struct {
	id   packet.NodeID
	eng  *sim.Engine
	cfg  Config
	nic  *link.Port
	pool *packet.Pool

	sendQ     map[uint64]*Msg
	recvQ     map[uint64]*recvMsg
	nextID    uint64
	nextPktID uint64

	// OnMessageDone fires at the *receiver* when a message's last byte
	// arrives (HOMA completion is receiver-observed).
	OnMessageDone func(id uint64, size int64, fct sim.Duration)

	rcvdTotal int64
	rcvdRaw   int64
}

// NewHost builds a HOMA host.
func NewHost(eng *sim.Engine, id packet.NodeID, cfg Config) *Host {
	cfg.fillDefaults()
	return &Host{
		id: id, eng: eng, cfg: cfg,
		pool:  packet.NewPool(),
		sendQ: map[uint64]*Msg{},
		recvQ: map[uint64]*recvMsg{},
	}
}

// ID implements topo.Node.
func (h *Host) ID() packet.NodeID { return h.id }

// SetUplink implements topo.Node.
func (h *Host) SetUplink(p *link.Port) { h.nic = p }

// SetPool shares an engine-wide packet free list (see transport.Host.SetPool).
func (h *Host) SetPool(pl *packet.Pool) {
	if pl != nil {
		h.pool = pl
	}
}

// NIC implements topo.Node.
func (h *Host) NIC() *link.Port { return h.nic }

// ReceivedTotal returns payload bytes received across all messages,
// deduplicated: a retransmitted range counts once.
func (h *Host) ReceivedTotal() int64 { return h.rcvdTotal }

// DeliveredPayload returns the raw payload bytes delivered to this
// host, counting retransmitted duplicates — the receiver-side word of
// the network-wide byte-conservation identity, which must match what
// the wire actually carried here.
func (h *Host) DeliveredPayload() int64 { return h.rcvdRaw }

// ReceivedBytes returns payload bytes received for one flow.
func (h *Host) ReceivedBytes(flow packet.FlowID) int64 {
	var n int64
	//powervet:ordered commutative int64 sum over a pure accessor; no output ordering depends on visit order
	for _, m := range h.recvQ {
		if m.flow == flow {
			n += m.received()
		}
	}
	return n
}

func (h *Host) rttBytes() int64 {
	if h.cfg.RTTBytes > 0 {
		return h.cfg.RTTBytes
	}
	return h.nic.Rate.BDP(h.cfg.BaseRTT)
}

// UnschedPriority returns the unscheduled priority class for a message of
// the given size (exposed for tests and experiment instrumentation).
func (h *Host) UnschedPriority(size int64) uint8 { return h.unschedPrio(size) }

func (h *Host) unschedPrio(size int64) uint8 {
	for i, c := range h.cfg.UnschedCutoffs {
		if size <= c {
			return uint8(i)
		}
	}
	return uint8(len(h.cfg.UnschedCutoffs) - 1)
}

// Send starts a new message of size bytes toward dst at time `at`.
func (h *Host) Send(flow packet.FlowID, dst packet.NodeID, size int64, at sim.Time) *Msg {
	h.nextID++
	m := &Msg{ID: h.nextID<<16 | uint64(h.id&0xFFFF), Flow: flow, Dst: dst, Size: size}
	h.sendQ[m.ID] = m
	h.eng.At(at, func() {
		m.StartAt = h.eng.Now()
		m.granted = min64(size, h.rttBytes())
		h.pump(m)
	})
	return m
}

// pump transmits every byte the message is currently allowed to send.
// Unscheduled bytes ride at the size-based priority; scheduled bytes at
// the priority the latest grant assigned (carried in m via grant packets).
func (h *Host) pump(m *Msg) {
	rtt := h.rttBytes()
	for m.sent < m.granted {
		n := min64(h.cfg.MSS, m.granted-m.sent)
		unsched := m.sent < rtt
		prio := h.unschedPrio(m.Size)
		if !unsched {
			prio = m.schedPrio
		}
		h.emit(m, m.sent, n, prio, unsched)
		m.sent += n
	}
}

func (h *Host) emit(m *Msg, seq, n int64, prio uint8, unsched bool) {
	p := h.pool.Get()
	p.ID = h.pktID()
	p.Kind = packet.Data
	p.Flow = m.Flow
	p.Src = h.id
	p.Dst = m.Dst
	p.Seq = seq
	p.PayloadLen = int32(n)
	p.MsgID = m.ID
	p.MsgLen = m.Size
	p.Priority = prio
	p.Unscheduled = unsched
	p.SentAt = h.eng.Now()
	h.nic.Send(p)
}

// pktID is per-host (not a package global) so concurrent simulations in
// a parallel experiment suite stay race-free and deterministic.
func (h *Host) pktID() uint64 {
	h.nextPktID++
	return h.nextPktID<<16 | uint64(h.id&0xFFFF)
}

// Receive implements link.Receiver. Data and grant packets are fully
// consumed here and recycled into the pool on return.
func (h *Host) Receive(p *packet.Packet) {
	switch p.Kind {
	case packet.Data:
		h.onData(p)
	case packet.Grant:
		h.onGrant(p)
	}
	h.pool.Put(p)
}

// grant Seq sentinels: -1 = plain grant, msgComplete = receiver got all
// bytes and the sender may release its state.
const (
	plainGrant  int64 = -1
	msgComplete int64 = -2
)

func (h *Host) onGrant(p *packet.Packet) {
	m := h.sendQ[p.MsgID]
	if m == nil || m.done {
		return
	}
	if p.Seq == msgComplete {
		m.done = true // completion notification
		delete(h.sendQ, p.MsgID)
		return
	}
	m.schedPrio = p.Priority
	if p.Seq >= 0 && p.PayloadLen > 0 {
		// Resend request for [Seq, Seq+PayloadLen).
		h.emit(m, p.Seq, int64(p.PayloadLen), p.Priority, false)
	}
	if p.GrantOffset > m.granted {
		m.granted = min64(p.GrantOffset, m.Size)
		h.pump(m)
	}
}

func (h *Host) onData(p *packet.Packet) {
	h.rcvdRaw += int64(p.PayloadLen)
	m := h.recvQ[p.MsgID]
	if m == nil {
		m = &recvMsg{
			id: p.MsgID, flow: p.Flow, src: p.Src, size: p.MsgLen,
			granted: min64(p.MsgLen, h.rttBytes()),
			start:   p.SentAt,
		}
		h.recvQ[p.MsgID] = m
	}
	if m.done {
		return
	}
	if p.SentAt < m.start {
		m.start = p.SentAt
	}
	before := m.received()
	m.got.Add(p.Seq, p.Seq+int64(p.PayloadLen))
	h.rcvdTotal += m.received() - before
	m.lastHit = h.eng.Now()

	if m.remaining() <= 0 {
		m.done = true
		if m.resend != nil {
			m.resend.Stop()
		}
		fct := h.eng.Now().Sub(m.start)
		// Completion notice releases sender state.
		h.sendGrant(m, m.size, 0, msgComplete, 0)
		if h.OnMessageDone != nil {
			h.OnMessageDone(m.id, m.size, fct)
		}
	} else {
		h.armResend(m)
	}
	h.schedule()
}

// schedule is the receiver's SRPT grant machinery.
func (h *Host) schedule() {
	var active []*recvMsg
	for _, m := range h.recvQ {
		if !m.done && m.size > m.granted {
			active = append(active, m)
		}
	}
	if len(active) == 0 {
		return
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].remaining() != active[j].remaining() {
			return active[i].remaining() < active[j].remaining()
		}
		return active[i].id < active[j].id
	})
	k := h.cfg.Overcommit
	if k > len(active) {
		k = len(active)
	}
	rtt := h.rttBytes()
	for rank := 0; rank < k; rank++ {
		m := active[rank]
		prio := h.cfg.SchedBase + uint8(rank)
		if prio > packet.MaxPriority {
			prio = packet.MaxPriority
		}
		m.prio = prio
		want := min64(m.received()+rtt, m.size)
		if want > m.granted {
			m.granted = want
			h.sendGrant(m, want, prio, plainGrant, 0)
		}
	}
}

// sendGrant emits a grant/control packet. resendSeq ≥ 0 requests a
// retransmission of [resendSeq, resendSeq+resendLen).
func (h *Host) sendGrant(m *recvMsg, offset int64, prio uint8, resendSeq int64, resendLen int32) {
	p := h.pool.Get()
	p.ID = h.pktID()
	p.Kind = packet.Grant
	p.Flow = m.flow
	p.Src = h.id
	p.Dst = m.src
	p.MsgID = m.id
	p.GrantOffset = offset
	p.Priority = prio
	p.Seq = resendSeq
	p.PayloadLen = resendLen
	p.SentAt = h.eng.Now()
	h.nic.Send(p)
}

func (h *Host) armResend(m *recvMsg) {
	if m.resend == nil {
		m.resend = h.eng.NewTimer(func() { h.onResendTimeout(m) })
	}
	if m.resend.Armed() {
		return
	}
	m.resend.ArmAfter(h.cfg.ResendTimeout)
}

func (h *Host) onResendTimeout(m *recvMsg) {
	if m.done {
		return
	}
	if h.eng.Now().Sub(m.lastHit) < h.cfg.ResendTimeout {
		h.armResend(m)
		return
	}
	// Request the first hole below the granted boundary.
	holeStart := m.got.CumulativeFrom(0)
	n := min64(h.cfg.MSS, m.granted-holeStart)
	if n > 0 {
		h.sendGrant(m, m.granted, m.prio, holeStart, int32(n))
	}
	h.armResend(m)
}

// String implements fmt.Stringer.
func (h *Host) String() string { return fmt.Sprintf("homa-%d", h.id) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Verify interface compliance at compile time.
var _ interface {
	link.Receiver
	ID() packet.NodeID
	SetUplink(*link.Port)
	NIC() *link.Port
} = (*Host)(nil)

// rttBytesFor is exported for experiments configuring RTTBytes.
func RTTBytesFor(rate units.BitRate, baseRTT sim.Duration) int64 {
	return rate.BDP(baseRTT)
}
