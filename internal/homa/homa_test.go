package homa_test

import (
	"testing"

	"repro/internal/homa"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/units"
)

func homaStar(n, overcommit int, bufPerGbps int64) *topo.Network {
	cfg := homa.Config{BaseRTT: 12 * sim.Microsecond, Overcommit: overcommit}
	return topo.Star(topo.StarConfig{
		Hosts:    n,
		HostRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts: func(eng *sim.Engine, id packet.NodeID) topo.Node {
				return homa.NewHost(eng, id, cfg)
			},
			BufferPerGbps: bufPerGbps,
			Queues:        func() queue.Queue { return queue.NewPrio() },
		},
	})
}

func hostAt(net *topo.Network, i int) *homa.Host { return net.Hosts[i].(*homa.Host) }

func TestSmallMessageUnscheduledOnly(t *testing.T) {
	net := homaStar(2, 1, 0)
	src, dst := hostAt(net, 0), hostAt(net, 1)
	var fct sim.Duration
	done := 0
	dst.OnMessageDone = func(_ uint64, size int64, d sim.Duration) { done++; fct = d }
	src.Send(net.NextFlowID(), dst.ID(), 5_000, 0) // 5KB < RTTBytes: pure unscheduled
	net.Eng.Run()
	if done != 1 {
		t.Fatal("small message did not complete")
	}
	// One-way delivery of 5KB at 25G plus propagation: well under an RTT.
	if fct > 12*sim.Microsecond {
		t.Fatalf("unscheduled FCT = %v, want < 1 base RTT", fct)
	}
}

func TestLargeMessageUsesGrants(t *testing.T) {
	net := homaStar(2, 1, 0)
	src, dst := hostAt(net, 0), hostAt(net, 1)
	size := int64(1 << 20) // 1MiB ≫ RTTBytes (37.5KB at 25G×12µs)
	done := 0
	dst.OnMessageDone = func(_ uint64, got int64, _ sim.Duration) {
		done++
		if got != size {
			t.Errorf("completed size = %d", got)
		}
	}
	m := src.Send(net.NextFlowID(), dst.ID(), size, 0)
	net.Eng.Run()
	if done != 1 {
		t.Fatal("granted message did not complete")
	}
	if !m.Done() {
		t.Fatal("sender state not released by completion notice")
	}
	if got := dst.ReceivedTotal(); got != size {
		t.Fatalf("received %d", got)
	}
}

func TestSRPTPreference(t *testing.T) {
	// A short message arriving mid-transfer of a long one must finish
	// far sooner than the long one (SRPT grants + priority queues).
	net := homaStar(3, 1, 0)
	long, short, dst := hostAt(net, 0), hostAt(net, 1), hostAt(net, 2)
	finish := map[int64]sim.Time{}
	dst.OnMessageDone = func(_ uint64, size int64, _ sim.Duration) {
		finish[size] = net.Eng.Now()
	}
	long.Send(net.NextFlowID(), dst.ID(), 4<<20, 0)
	short.Send(net.NextFlowID(), dst.ID(), 100_000, sim.Time(100*sim.Microsecond))
	net.Eng.Run()
	if len(finish) != 2 {
		t.Fatalf("finished %d/2", len(finish))
	}
	if finish[100_000] >= finish[4<<20] {
		t.Fatal("SRPT violated: short message finished after the long one")
	}
}

func TestIncastWithOvercommit(t *testing.T) {
	for _, oc := range []int{1, 3, 6} {
		net := homaStar(9, oc, 0)
		dst := hostAt(net, 0)
		done := 0
		dst.OnMessageDone = func(uint64, int64, sim.Duration) { done++ }
		for i := 1; i < 9; i++ {
			hostAt(net, i).Send(net.NextFlowID(), dst.ID(), 400_000, 0)
		}
		net.Eng.RunUntil(sim.Time(50 * sim.Millisecond))
		if done != 8 {
			t.Fatalf("overcommit %d: completed %d/8", oc, done)
		}
	}
}

func TestResendRepairsDrops(t *testing.T) {
	// A tiny shared buffer forces drops of the unscheduled burst; the
	// receiver's hole-repair requests must still complete every message.
	net := homaStar(9, 2, 256) // 25G port → ~6.4KB shared buffer
	dst := hostAt(net, 0)
	done := 0
	dst.OnMessageDone = func(uint64, int64, sim.Duration) { done++ }
	for i := 1; i < 9; i++ {
		hostAt(net, i).Send(net.NextFlowID(), dst.ID(), 200_000, 0)
	}
	net.Eng.RunUntil(sim.Time(500 * sim.Millisecond))
	if drops := net.Switches[0].Dropped(); drops == 0 {
		t.Fatal("expected drops under a tiny buffer")
	}
	if done != 8 {
		t.Fatalf("completed %d/8 after drops", done)
	}
}

func TestUnschedPriorityBySize(t *testing.T) {
	// The size→class mapping must be monotone: smaller messages get a
	// higher-preference (numerically lower) unscheduled priority.
	h := homa.NewHost(sim.New(), 1, homa.Config{BaseRTT: 12 * sim.Microsecond})
	tiny := h.UnschedPriority(1_000)
	mid := h.UnschedPriority(100_000)
	huge := h.UnschedPriority(10 << 20)
	if !(tiny < mid && mid < huge) {
		t.Fatalf("priorities not monotone: %d, %d, %d", tiny, mid, huge)
	}
	if huge > packet.MaxPriority {
		t.Fatalf("priority %d out of range", huge)
	}
}
