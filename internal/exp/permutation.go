package exp

import (
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PermutationResult is the typed payload of the host-permutation
// multipath experiment: per-flow goodput under hash-based path
// assignment, plus how the ToR uplinks actually shared the load.
type PermutationResult struct {
	Scheme          string
	Routing         string
	Flows           int
	T               []sim.Time
	AggGbps         []float64 // aggregate receive rate per sample
	PerFlowGbps     []float64 // per-flow mean goodput over the window
	Jain            float64   // fairness across the per-flow goodputs
	MinGbps         float64
	MaxGbps         float64
	UplinksUsed     int     // distinct ToR uplink ports that carried traffic
	UplinksTotal    int     // uplink ports available across all ToRs
	UplinkImbalance float64 // max/mean bytes across used ToR uplinks
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "permutation",
		Figures: "Supplementary (multipath lab): ECMP hash imbalance on the §4.1 fat-tree",
		Fields: []string{FieldServersPerTor, FieldPartitions, FieldRouting,
			FieldWindow, FieldSamplePeriod},
		Normalize: func(s *Spec) {
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 8
			}
			if s.Window == 0 {
				s.Window = 4 * sim.Millisecond
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 50 * sim.Microsecond
			}
		},
		Run: runPermutation,
	})
}

// runPermutation drives host-permutation traffic — the canonical
// multipath stress — across the fat tree and measures how evenly the
// routing strategy spreads it: per-flow goodput fairness and ToR-uplink
// load imbalance.
func runPermutation(s Spec, scheme Scheme) (*Result, error) {
	return scenario.Run(scenario.Scenario{
		Name:     "permutation",
		Scheme:   scheme,
		Seed:     s.Seed,
		Topology: scenario.FatTreeTopology{ServersPerTor: s.ServersPerTor, Routing: s.Routing, Partitions: s.Partitions},
		Traffic:  []scenario.Traffic{scenario.Permutation{}},
		Probes:   []scenario.Probe{&permutationPanel{period: s.SamplePeriod, window: s.Window}},
		Until:    s.Window,
	})
}

// permutationPanel samples the aggregate receive rate, then summarizes
// per-flow goodput fairness and the ToR-uplink load spread.
type permutationPanel struct {
	period sim.Duration
	window sim.Duration

	pr      *PermutationResult
	last    []int64
	perFlow []int64 // received bytes per destination host
}

func (p *permutationPanel) Install(env *scenario.Env) error {
	net := env.Lab.Net
	n := len(net.Hosts)
	p.pr = &PermutationResult{Scheme: env.Scheme.Name, Routing: net.Router.Strategy().Name(), Flows: n}
	p.last = make([]int64, n)
	p.perFlow = make([]int64, n)
	scenario.SampleEvery(net.Eng, p.period, env.Horizon, func(now sim.Time) {
		var delta int64
		for i := 0; i < n; i++ {
			cur := env.Lab.ReceivedTotal(i)
			delta += cur - p.last[i]
			p.perFlow[i] = cur
			p.last[i] = cur
		}
		p.pr.T = append(p.pr.T, now)
		p.pr.AggGbps = append(p.pr.AggGbps, stats.Gbps(delta, p.period))
	})
	return nil
}

func (p *permutationPanel) Finalize(env *scenario.Env, res *Result) error {
	pr := p.pr
	net := env.Lab.Net
	n := pr.Flows

	// Per-flow goodput over the whole window (keyed by receiver; each
	// host receives exactly one flow of the permutation).
	var sum, sumSq float64
	pr.MinGbps = 1e18
	for i := 0; i < n; i++ {
		g := stats.Gbps(p.perFlow[i], p.window)
		pr.PerFlowGbps = append(pr.PerFlowGbps, g)
		sum += g
		sumSq += g * g
		if g < pr.MinGbps {
			pr.MinGbps = g
		}
		if g > pr.MaxGbps {
			pr.MaxGbps = g
		}
	}
	if sumSq > 0 {
		pr.Jain = sum * sum / (float64(n) * sumSq)
	}

	// Uplink spread: walk every ToR's aggregation-facing ports.
	nTors := env.Lab.FTCfg.Racks()
	var used int
	var maxB, totB uint64
	var nUp int
	for t := 0; t < nTors; t++ {
		for _, pi := range net.TorUplinkPorts(t) {
			b := net.Switches[t].Ports()[pi].TxBytes()
			nUp++
			totB += b
			if b > 0 {
				used++
			}
			if b > maxB {
				maxB = b
			}
		}
	}
	pr.UplinksTotal = nUp
	pr.UplinksUsed = used
	if totB > 0 && used > 0 {
		pr.UplinkImbalance = float64(maxB) / (float64(totB) / float64(used))
	}

	res.Raw = pr
	res.SetScalar("flows", float64(pr.Flows))
	res.SetScalar("jain", pr.Jain)
	res.SetScalar("avg_goodput_gbps", sum/float64(n))
	res.SetScalar("min_goodput_gbps", pr.MinGbps)
	res.SetScalar("max_goodput_gbps", pr.MaxGbps)
	res.SetScalar("uplinks_used", float64(pr.UplinksUsed))
	res.SetScalar("uplinks_total", float64(pr.UplinksTotal))
	res.SetScalar("uplink_imbalance", pr.UplinkImbalance)
	res.SetScalar("engine_steps", float64(net.Steps()))
	res.AddSeries(scenario.TimeSeries("agg_goodput_gbps", pr.T, pr.AggGbps))
	flowSeries := Series{Name: "flow_goodput_gbps", XLabel: "flow"}
	for i, g := range pr.PerFlowGbps {
		flowSeries.Points = append(flowSeries.Points, SeriesPoint{X: float64(i), V: g})
	}
	res.AddSeries(flowSeries)
	return nil
}
