package exp

import (
	"math/rand"

	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PermutationResult is the typed payload of the host-permutation
// multipath experiment: per-flow goodput under hash-based path
// assignment, plus how the ToR uplinks actually shared the load.
type PermutationResult struct {
	Scheme          string
	Routing         string
	Flows           int
	T               []sim.Time
	AggGbps         []float64 // aggregate receive rate per sample
	PerFlowGbps     []float64 // per-flow mean goodput over the window
	Jain            float64   // fairness across the per-flow goodputs
	MinGbps         float64
	MaxGbps         float64
	UplinksUsed     int     // distinct ToR uplink ports that carried traffic
	UplinksTotal    int     // uplink ports available across all ToRs
	UplinkImbalance float64 // max/mean bytes across used ToR uplinks
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "permutation",
		Figures: "Supplementary (multipath lab): ECMP hash imbalance on the §4.1 fat-tree",
		Normalize: func(s *Spec) {
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 8
			}
			if s.Window == 0 {
				s.Window = 4 * sim.Millisecond
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 50 * sim.Microsecond
			}
		},
		Run: runPermutation,
	})
}

// permutation derives a fixed-point-free host permutation from the seed:
// every host sends to exactly one host and receives from exactly one.
func permutation(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed ^ 0x5EED_0F_9E37))
	p := rng.Perm(n)
	for i := 0; i < n; i++ {
		if p[i] == i { // break fixed points deterministically
			j := (i + 1) % n
			p[i], p[j] = p[j], p[i]
		}
	}
	return p
}

// runPermutation drives host-permutation traffic — the canonical
// multipath stress — across the fat tree and measures how evenly the
// routing strategy spreads it: per-flow goodput fairness and ToR-uplink
// load imbalance.
func runPermutation(s Spec, scheme Scheme) (*Result, error) {
	strategy, err := route.StrategyByName(s.Routing)
	if err != nil {
		return nil, err
	}
	lab := NewRoutedFatTreeLab(scheme, s.ServersPerTor, s.Seed, strategy)
	defer lab.Release()
	net := lab.Net
	n := len(net.Hosts)

	perm := permutation(n, s.Seed)
	for src, dst := range perm {
		lab.Launch(workload.Flow{Start: 0, Src: src, Dst: dst, Size: lab.UnboundedSize()})
	}

	pr := &PermutationResult{Scheme: scheme.Name, Routing: strategy.Name(), Flows: n}
	last := make([]int64, n)
	perFlow := make([]int64, n) // received bytes per destination host
	SampleEvery(net.Eng, s.SamplePeriod, sim.Time(s.Window), func(now sim.Time) {
		var delta int64
		for i := 0; i < n; i++ {
			cur := lab.ReceivedTotal(i)
			delta += cur - last[i]
			perFlow[i] = cur
			last[i] = cur
		}
		pr.T = append(pr.T, now)
		pr.AggGbps = append(pr.AggGbps, stats.Gbps(delta, s.SamplePeriod))
	})
	net.Eng.RunUntil(sim.Time(s.Window))

	// Per-flow goodput over the whole window (keyed by receiver; each
	// host receives exactly one flow of the permutation).
	var sum, sumSq float64
	pr.MinGbps = 1e18
	for i := 0; i < n; i++ {
		g := stats.Gbps(perFlow[i], s.Window)
		pr.PerFlowGbps = append(pr.PerFlowGbps, g)
		sum += g
		sumSq += g * g
		if g < pr.MinGbps {
			pr.MinGbps = g
		}
		if g > pr.MaxGbps {
			pr.MaxGbps = g
		}
	}
	if sumSq > 0 {
		pr.Jain = sum * sum / (float64(n) * sumSq)
	}

	// Uplink spread: walk every ToR's aggregation-facing ports.
	nTors := lab.FTCfg.Pods * lab.FTCfg.TorsPerPod
	var used int
	var maxB, totB uint64
	var nUp int
	for t := 0; t < nTors; t++ {
		for _, pi := range net.TorUplinkPorts(t) {
			b := net.Switches[t].Ports()[pi].TxBytes()
			nUp++
			totB += b
			if b > 0 {
				used++
			}
			if b > maxB {
				maxB = b
			}
		}
	}
	pr.UplinksTotal = nUp
	pr.UplinksUsed = used
	if totB > 0 && used > 0 {
		pr.UplinkImbalance = float64(maxB) / (float64(totB) / float64(used))
	}

	res := &Result{Raw: pr}
	res.SetScalar("flows", float64(pr.Flows))
	res.SetScalar("jain", pr.Jain)
	res.SetScalar("avg_goodput_gbps", sum/float64(n))
	res.SetScalar("min_goodput_gbps", pr.MinGbps)
	res.SetScalar("max_goodput_gbps", pr.MaxGbps)
	res.SetScalar("uplinks_used", float64(pr.UplinksUsed))
	res.SetScalar("uplinks_total", float64(pr.UplinksTotal))
	res.SetScalar("uplink_imbalance", pr.UplinkImbalance)
	res.SetScalar("engine_steps", float64(net.Eng.Steps()))
	res.AddSeries(TimeSeries("agg_goodput_gbps", pr.T, pr.AggGbps))
	flowSeries := Series{Name: "flow_goodput_gbps", XLabel: "flow"}
	for i, g := range pr.PerFlowGbps {
		flowSeries.Points = append(flowSeries.Points, SeriesPoint{X: float64(i), V: g})
	}
	res.AddSeries(flowSeries)
	return res, nil
}
