package exp

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FailoverResult is the typed payload of the link-failure experiment:
// goodput and queue trajectories around a mid-run spine-link cut, and
// how fast the scheme recovered once routing reconverged.
type FailoverResult struct {
	Scheme  string
	Routing string
	T       []sim.Time
	Gbps    []float64 // aggregate goodput per sample
	QueueKB []float64 // max uplink queue on the sending leaf

	PreFailGbps  float64 // mean goodput before the cut
	PostFailGbps float64 // mean goodput after recovery (before restore)
	RecoveryUs   float64 // cut → goodput back to ≥90% of pre-fail
	Recovered    bool
	QueueSpikeKB float64 // max queue seen after the cut
	LostPackets  uint64  // packets black-holed on downed wires
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "failover",
		Figures: "Supplementary (multipath lab): mid-run link failure, per-scheme recovery",
		Fields: []string{FieldTors, FieldSpines, FieldServersPerTor,
			FieldPartitions, FieldSpineRates, FieldFlows, FieldRouting,
			FieldFailAfter, FieldRestoreAfter, FieldReconverge, FieldWindow,
			FieldSamplePeriod},
		Normalize: func(s *Spec) {
			if s.Tors == 0 {
				s.Tors = 2 // leaves
			}
			if s.Spines == 0 {
				s.Spines = 2
			}
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 8
			}
			if s.Flows == 0 {
				// Sized so the surviving spines can still carry the whole
				// offered load: recovery measures rerouting + loss
				// repair, not a capacity cliff.
				s.Flows = 4
			}
			if s.Flows > s.ServersPerTor {
				s.Flows = s.ServersPerTor
			}
			if s.Window == 0 {
				s.Window = 5 * sim.Millisecond
			}
			if s.FailAfter == 0 {
				s.FailAfter = sim.Millisecond
			}
			if s.RestoreAfter == 0 {
				// KeepLinkDown (negative) suppresses the repair instead.
				s.RestoreAfter = s.FailAfter + 2*sim.Millisecond
			}
			if s.Reconverge == 0 {
				s.Reconverge = 200 * sim.Microsecond
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 20 * sim.Microsecond
			}
		},
		Run: runFailover,
	})
}

// runFailover cuts the first leaf's link to spine 0 mid-run. Flows
// hashed onto the dead path black-hole until the control plane
// reconverges (s.Reconverge later), then recover at the pace the
// scheme's loss detection allows; the link comes back at RestoreAfter.
func runFailover(s Spec, scheme Scheme) (*Result, error) {
	if s.Spines < 2 {
		return nil, fmt.Errorf("failover needs ≥2 spines to reroute, got %d", s.Spines)
	}
	if s.RestoreAfter > 0 && s.RestoreAfter <= s.FailAfter {
		return nil, fmt.Errorf("failover restore at %v is not after the failure at %v",
			s.RestoreAfter, s.FailAfter)
	}
	events := []scenario.Event{
		scenario.LinkFail{At: s.FailAfter, A: scenario.Leaf(0), B: scenario.Spine(0)},
	}
	restoreAt := sim.Duration(0)
	if s.RestoreAfter > s.FailAfter {
		restoreAt = s.RestoreAfter
		events = append(events, scenario.LinkRestore{
			At: s.RestoreAfter, A: scenario.Leaf(0), B: scenario.Spine(0),
		})
	}
	return scenario.Run(scenario.Scenario{
		Name:   "failover",
		Scheme: scheme,
		Seed:   s.Seed,
		Topology: scenario.LeafSpineTopology{
			Leaves:         s.Tors,
			Spines:         s.Spines,
			ServersPerLeaf: s.ServersPerTor,
			SpineRates:     s.SpineRates,
			Routing:        s.Routing,
			Partitions:     s.Partitions,
		},
		Traffic: []scenario.Traffic{scenario.RackPairs{
			FromRack: scenario.RackStart(0),
			ToRack:   scenario.RackStart(s.Tors - 1),
			Count:    s.Flows,
		}},
		Events: scenario.Timeline{Events: events, Reconverge: s.Reconverge},
		Probes: []scenario.Probe{
			&failoverPanel{
				period:    s.SamplePeriod,
				window:    s.Window,
				failAt:    s.FailAfter,
				restoreAt: restoreAt,
				flows:     s.Flows,
			},
			scenario.AccountingProbe{},
		},
		Until: s.Window,
	})
}

// failoverPanel samples aggregate goodput and the sending leaf's
// worst uplink queue, then summarizes the recovery: pre-fail baseline,
// time back to 90% goodput, post-recovery plateau, queue spike and
// black-holed packets.
type failoverPanel struct {
	period    sim.Duration
	window    sim.Duration
	failAt    sim.Duration
	restoreAt sim.Duration // 0 means the link stays down
	flows     int

	fr        *FailoverResult
	lastBytes int64
}

func (p *failoverPanel) Install(env *scenario.Env) error {
	net := env.Lab.Net
	ls := env.Lab.LSCfg
	perLeaf := ls.ServersPerLeaf
	rxBase := (ls.Leaves - 1) * perLeaf
	p.fr = &FailoverResult{Scheme: env.Scheme.Name, Routing: net.Router.Strategy().Name()}
	uplinks := net.Switches[ls.LeafSwitch(0)].Ports()[perLeaf : perLeaf+ls.Spines]
	scenario.SampleEvery(net.Eng, p.period, env.Horizon, func(now sim.Time) {
		var cur int64
		for i := 0; i < p.flows; i++ {
			cur += env.Lab.ReceivedTotal(rxBase + i)
		}
		var q int64
		for _, pt := range uplinks {
			if b := pt.QueueBytes(); b > q {
				q = b
			}
		}
		p.fr.T = append(p.fr.T, now)
		p.fr.Gbps = append(p.fr.Gbps, stats.Gbps(cur-p.lastBytes, p.period))
		p.fr.QueueKB = append(p.fr.QueueKB, float64(q)/1024)
		p.lastBytes = cur
	})
	return nil
}

func (p *failoverPanel) Finalize(env *scenario.Env, res *Result) error {
	fr := p.fr
	net := env.Lab.Net
	for _, sw := range net.Switches {
		for _, pt := range sw.Ports() {
			fr.LostPackets += pt.Lost()
		}
	}

	// Pre-failure baseline: the second half of the pre-cut samples
	// (skipping slow-start).
	failT := sim.Time(p.failAt)
	restoreT := sim.Time(p.window)
	if p.restoreAt > p.failAt {
		restoreT = sim.Time(p.restoreAt)
	}
	var preSum float64
	var preN int
	for i, t := range fr.T {
		if t >= failT {
			break
		}
		if t >= failT/2 {
			preSum += fr.Gbps[i]
			preN++
		}
	}
	if preN > 0 {
		fr.PreFailGbps = preSum / float64(preN)
	}

	// Recovery: first post-cut sample back at ≥90% of the baseline.
	target := 0.9 * fr.PreFailGbps
	recoveredAt := sim.Time(p.window)
	for i, t := range fr.T {
		if t <= failT {
			continue
		}
		if fr.QueueKB[i] > fr.QueueSpikeKB {
			fr.QueueSpikeKB = fr.QueueKB[i]
		}
		if !fr.Recovered && fr.Gbps[i] >= target {
			fr.Recovered = true
			recoveredAt = t
		}
	}
	fr.RecoveryUs = (recoveredAt - failT).Seconds() * 1e6

	// Post-recovery plateau: recovery point to the restore instant.
	var postSum float64
	var postN int
	for i, t := range fr.T {
		if t > recoveredAt && t < restoreT {
			postSum += fr.Gbps[i]
			postN++
		}
	}
	if postN > 0 {
		fr.PostFailGbps = postSum / float64(postN)
	}

	res.Raw = fr
	res.SetScalar("pre_fail_gbps", fr.PreFailGbps)
	res.SetScalar("post_fail_gbps", fr.PostFailGbps)
	res.SetScalar("recovery_us", fr.RecoveryUs)
	res.SetScalar("recovered", b2f(fr.Recovered))
	res.SetScalar("queue_spike_kb", fr.QueueSpikeKB)
	res.SetScalar("lost_packets", float64(fr.LostPackets))
	res.SetScalar("route_rebuilds", float64(net.Router.Rebuilds()))
	res.SetScalar("engine_steps", float64(net.Steps()))
	res.AddSeries(scenario.TimeSeries("goodput_gbps", fr.T, fr.Gbps))
	res.AddSeries(scenario.TimeSeries("queue_kb", fr.T, fr.QueueKB))
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
