package exp

import (
	"fmt"

	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// FailoverResult is the typed payload of the link-failure experiment:
// goodput and queue trajectories around a mid-run spine-link cut, and
// how fast the scheme recovered once routing reconverged.
type FailoverResult struct {
	Scheme  string
	Routing string
	T       []sim.Time
	Gbps    []float64 // aggregate goodput per sample
	QueueKB []float64 // max uplink queue on the sending leaf

	PreFailGbps  float64 // mean goodput before the cut
	PostFailGbps float64 // mean goodput after recovery (before restore)
	RecoveryUs   float64 // cut → goodput back to ≥90% of pre-fail
	Recovered    bool
	QueueSpikeKB float64 // max queue seen after the cut
	LostPackets  uint64  // packets black-holed on downed wires
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "failover",
		Figures: "Supplementary (multipath lab): mid-run link failure, per-scheme recovery",
		Normalize: func(s *Spec) {
			if s.Tors == 0 {
				s.Tors = 2 // leaves
			}
			if s.Spines == 0 {
				s.Spines = 2
			}
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 8
			}
			if s.Flows == 0 {
				// Sized so the surviving spines can still carry the whole
				// offered load: recovery measures rerouting + loss
				// repair, not a capacity cliff.
				s.Flows = 4
			}
			if s.Flows > s.ServersPerTor {
				s.Flows = s.ServersPerTor
			}
			if s.Window == 0 {
				s.Window = 5 * sim.Millisecond
			}
			if s.FailAfter == 0 {
				s.FailAfter = sim.Millisecond
			}
			if s.RestoreAfter == 0 {
				// KeepLinkDown (negative) suppresses the repair instead.
				s.RestoreAfter = s.FailAfter + 2*sim.Millisecond
			}
			if s.Reconverge == 0 {
				s.Reconverge = 200 * sim.Microsecond
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 20 * sim.Microsecond
			}
		},
		Run: runFailover,
	})
}

// runFailover cuts the first leaf's link to spine 0 mid-run. Flows
// hashed onto the dead path black-hole until the control plane
// reconverges (s.Reconverge later), then recover at the pace the
// scheme's loss detection allows; the link comes back at RestoreAfter.
func runFailover(s Spec, scheme Scheme) (*Result, error) {
	strategy, err := route.StrategyByName(s.Routing)
	if err != nil {
		return nil, err
	}
	if s.Spines < 2 {
		return nil, fmt.Errorf("failover needs ≥2 spines to reroute, got %d", s.Spines)
	}
	if s.RestoreAfter > 0 && s.RestoreAfter <= s.FailAfter {
		return nil, fmt.Errorf("failover restore at %v is not after the failure at %v",
			s.RestoreAfter, s.FailAfter)
	}
	cfg := topo.LeafSpineConfig{
		Leaves:         s.Tors,
		Spines:         s.Spines,
		ServersPerLeaf: s.ServersPerTor,
		SpineRates:     s.SpineRates,
	}
	lab := NewLeafSpineLab(scheme, cfg, s.Seed, strategy)
	defer lab.Release()
	net := lab.Net
	ls := lab.LSCfg

	perLeaf := ls.ServersPerLeaf
	rxBase := (ls.Leaves - 1) * perLeaf
	for i := 0; i < s.Flows; i++ {
		lab.Launch(workload.Flow{Start: 0, Src: i, Dst: rxBase + i, Size: lab.UnboundedSize()})
	}

	events := []route.LinkEvent{
		{At: sim.Time(s.FailAfter), A: ls.LeafSwitch(0), B: ls.SpineSwitch(0), Down: true},
	}
	if s.RestoreAfter > s.FailAfter {
		events = append(events, route.LinkEvent{
			At: sim.Time(s.RestoreAfter), A: ls.LeafSwitch(0), B: ls.SpineSwitch(0),
		})
	}
	net.Router.Schedule(events, s.Reconverge)

	fr := &FailoverResult{Scheme: scheme.Name, Routing: strategy.Name()}
	uplinks := net.Switches[ls.LeafSwitch(0)].Ports()[perLeaf : perLeaf+ls.Spines]
	var lastBytes int64
	SampleEvery(net.Eng, s.SamplePeriod, sim.Time(s.Window), func(now sim.Time) {
		var cur int64
		for i := 0; i < s.Flows; i++ {
			cur += lab.ReceivedTotal(rxBase + i)
		}
		var q int64
		for _, pt := range uplinks {
			if b := pt.QueueBytes(); b > q {
				q = b
			}
		}
		fr.T = append(fr.T, now)
		fr.Gbps = append(fr.Gbps, stats.Gbps(cur-lastBytes, s.SamplePeriod))
		fr.QueueKB = append(fr.QueueKB, float64(q)/1024)
		lastBytes = cur
	})
	net.Eng.RunUntil(sim.Time(s.Window))

	for _, sw := range net.Switches {
		for _, pt := range sw.Ports() {
			fr.LostPackets += pt.Lost()
		}
	}

	// Pre-failure baseline: the second half of the pre-cut samples
	// (skipping slow-start).
	failT := sim.Time(s.FailAfter)
	restoreT := sim.Time(s.Window)
	if s.RestoreAfter > s.FailAfter {
		restoreT = sim.Time(s.RestoreAfter)
	}
	var preSum float64
	var preN int
	for i, t := range fr.T {
		if t >= failT {
			break
		}
		if t >= failT/2 {
			preSum += fr.Gbps[i]
			preN++
		}
	}
	if preN > 0 {
		fr.PreFailGbps = preSum / float64(preN)
	}

	// Recovery: first post-cut sample back at ≥90% of the baseline.
	target := 0.9 * fr.PreFailGbps
	recoveredAt := sim.Time(s.Window)
	for i, t := range fr.T {
		if t <= failT {
			continue
		}
		if fr.QueueKB[i] > fr.QueueSpikeKB {
			fr.QueueSpikeKB = fr.QueueKB[i]
		}
		if !fr.Recovered && fr.Gbps[i] >= target {
			fr.Recovered = true
			recoveredAt = t
		}
	}
	fr.RecoveryUs = (recoveredAt - failT).Seconds() * 1e6

	// Post-recovery plateau: recovery point to the restore instant.
	var postSum float64
	var postN int
	for i, t := range fr.T {
		if t > recoveredAt && t < restoreT {
			postSum += fr.Gbps[i]
			postN++
		}
	}
	if postN > 0 {
		fr.PostFailGbps = postSum / float64(postN)
	}

	res := &Result{Raw: fr}
	res.SetScalar("pre_fail_gbps", fr.PreFailGbps)
	res.SetScalar("post_fail_gbps", fr.PostFailGbps)
	res.SetScalar("recovery_us", fr.RecoveryUs)
	res.SetScalar("recovered", b2f(fr.Recovered))
	res.SetScalar("queue_spike_kb", fr.QueueSpikeKB)
	res.SetScalar("lost_packets", float64(fr.LostPackets))
	res.SetScalar("route_rebuilds", float64(net.Router.Rebuilds()))
	res.SetScalar("engine_steps", float64(net.Eng.Steps()))
	res.AddSeries(TimeSeries("goodput_gbps", fr.T, fr.Gbps))
	res.AddSeries(TimeSeries("queue_kb", fr.T, fr.QueueKB))
	return res, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
