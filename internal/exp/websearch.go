package exp

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// WebSearchOptions configures the workload experiments behind Figures 6
// and 7: the web-search flow-size distribution offered as an open-loop
// Poisson process at a target ToR-uplink load on the fat-tree, optionally
// overlaid with the synthetic incast workload (Fig. 7c–f).
type WebSearchOptions struct {
	Scheme        string
	Load          float64      // ToR-uplink load, 0.2–0.95 (§4.1)
	ServersPerTor int          // 32 = paper scale; benches default to 8
	Duration      sim.Duration // workload generation horizon (default 15 ms)
	Drain         sim.Duration // extra time for in-flight flows (default 5 ms)
	Seed          int64
	// Incast overlays the request workload of Fig. 7c–f when RequestRate
	// is nonzero.
	IncastRate    float64 // requests per second across the cluster
	IncastSize    int64   // bytes per request
	IncastFanIn   int     // responders per request (default 16)
	SampleBuffers bool    // collect the buffer-occupancy CDF (Fig. 7g/h)
}

func (o *WebSearchOptions) fillDefaults() {
	if o.ServersPerTor == 0 {
		o.ServersPerTor = 8
	}
	if o.Duration == 0 {
		o.Duration = 15 * sim.Millisecond
	}
	if o.Drain == 0 {
		o.Drain = 5 * sim.Millisecond
	}
	if o.IncastFanIn == 0 {
		o.IncastFanIn = 16
	}
}

// WebSearchResult is one scheme×load cell of Figures 6–7.
type WebSearchResult struct {
	Scheme string
	Load   float64

	Started   int
	Completed int

	// Binned is Figure 6's x-axis: p99.9 slowdown per flow-size bin.
	Binned *stats.BinnedSlowdowns
	// ShortP999 / MediumP999 / LongP999 are the class percentiles of
	// Fig. 7a/7b (short <10 KB, medium 100 KB–1 MB, long >1 MB).
	ShortP999  float64
	MediumP999 float64
	LongP999   float64

	// BufferCDF is the distribution of ToR shared-buffer occupancy
	// samples (Fig. 7g/h), in bytes.
	BufferCDF []stats.CDFPoint
	BufferP99 float64
}

// RunWebSearch reproduces one cell of Figures 6–7.
func RunWebSearch(o WebSearchOptions) WebSearchResult {
	return RunWebSearchWith(SchemeByName(o.Scheme), o)
}

// RunWebSearchWith runs the workload under a custom Scheme (ablations).
func RunWebSearchWith(scheme Scheme, o WebSearchOptions) WebSearchResult {
	o.fillDefaults()
	if o.Scheme == "" {
		o.Scheme = scheme.Name
	}
	lab := NewFatTreeLab(scheme, o.ServersPerTor, o.Seed)
	net := lab.Net
	ftCfg := lab.FTCfg

	racks := ftCfg.Pods * ftCfg.TorsPerPod
	uplinkCap := units.BitRate(ftCfg.AggsPerPod) * ftCfg.FabricRate

	gen := &workload.Poisson{
		Load:             o.Load,
		UplinkCapPerRack: uplinkCap,
		Racks:            racks,
		HostsPerRack:     o.ServersPerTor,
		Dist:             workload.WebSearch(),
		Seed:             o.Seed,
	}
	lab.LaunchAll(gen.Generate(o.Duration))

	if o.IncastRate > 0 {
		ic := &workload.Incast{
			RequestRate:  o.IncastRate,
			RequestSize:  o.IncastSize,
			FanIn:        o.IncastFanIn,
			Racks:        racks,
			HostsPerRack: o.ServersPerTor,
			Seed:         o.Seed + 1,
		}
		lab.LaunchAll(ic.Generate(o.Duration))
	}

	var bufSamples stats.Dist
	horizon := sim.Time(o.Duration + o.Drain)
	if o.SampleBuffers {
		tors := racks
		SampleEvery(net.Eng, 20*sim.Microsecond, sim.Time(o.Duration), func(sim.Time) {
			for t := 0; t < tors; t++ {
				bufSamples.Add(float64(net.Switches[t].Shared().Used()))
			}
		})
	}

	net.Eng.RunUntil(horizon)

	res := WebSearchResult{
		Scheme:    o.Scheme,
		Load:      o.Load,
		Started:   lab.Started(),
		Completed: len(lab.Records),
		Binned:    lab.Binned(),
	}
	res.ShortP999 = lab.ClassP(99.9, 0, stats.ShortFlowMax)
	res.MediumP999 = lab.ClassP(99.9, 100_000, stats.LongFlowMin)
	res.LongP999 = lab.ClassP(99.9, stats.LongFlowMin, 0)
	if o.SampleBuffers {
		res.BufferCDF = bufSamples.CDF(50)
		res.BufferP99 = bufSamples.Percentile(99)
	}
	return res
}

// LoadSweep runs RunWebSearch across loads (Fig. 7a/7b).
func LoadSweep(scheme string, loads []float64, o WebSearchOptions) []WebSearchResult {
	out := make([]WebSearchResult, 0, len(loads))
	for _, ld := range loads {
		oo := o
		oo.Scheme = scheme
		oo.Load = ld
		out = append(out, RunWebSearch(oo))
	}
	return out
}
