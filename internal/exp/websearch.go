package exp

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// WebSearchResult is one scheme×load cell of Figures 6–7.
type WebSearchResult struct {
	Scheme string
	Load   float64

	Started   int
	Completed int

	// Binned is Figure 6's x-axis: p99.9 slowdown per flow-size bin.
	Binned *stats.BinnedSlowdowns
	// ShortP999 / MediumP999 / LongP999 are the class percentiles of
	// Fig. 7a/7b (short <10 KB, medium 100 KB–1 MB, long >1 MB).
	ShortP999  float64
	MediumP999 float64
	LongP999   float64

	// BufferCDF is the distribution of ToR shared-buffer occupancy
	// samples (Fig. 7g/h), in bytes.
	BufferCDF []stats.CDFPoint
	BufferP99 float64

	// EngineSteps is the number of discrete events the run executed
	// (simulator-throughput accounting for the bench harness).
	EngineSteps uint64
}

func normalizeWebSearch(s *Spec) {
	if s.Load == 0 {
		s.Load = 0.6
	}
	if s.ServersPerTor == 0 {
		s.ServersPerTor = 8
	}
	if s.Duration == 0 {
		s.Duration = 15 * sim.Millisecond
	}
	if s.Drain == 0 {
		s.Drain = 5 * sim.Millisecond
	}
	if s.IncastFanIn == 0 {
		s.IncastFanIn = 16
	}
}

// webSearchFields are the Spec knobs the websearch cell consumes; the
// load sweep accepts the same plus the Loads grid (its per-cell Load is
// overridden, so setting it is rejected).
var webSearchFields = []string{FieldServersPerTor, FieldLoad,
	FieldIncastRate, FieldIncastSize, FieldIncastFanIn, FieldSampleBuffers,
	FieldDuration, FieldDrain, FieldSamplePeriod}

func init() {
	mustRegisterExperiment(Experiment{
		Name:      "websearch",
		Figures:   "Fig. 6 (slowdown by size), Fig. 7 (classes, incast overlay, buffers)",
		Fields:    webSearchFields,
		Normalize: normalizeWebSearch,
		Run:       runWebSearch,
	})
	sweepFields := append([]string{FieldLoads}, webSearchFields...)
	for i, f := range sweepFields {
		if f == FieldLoad { // cells own the load; the sweep takes the grid
			sweepFields = append(sweepFields[:i], sweepFields[i+1:]...)
			break
		}
	}
	mustRegisterExperiment(Experiment{
		Name:    "load-sweep",
		Figures: "Fig. 7a/7b (slowdown vs load)",
		Fields:  sweepFields,
		Normalize: func(s *Spec) {
			if len(s.Loads) == 0 {
				s.Loads = []float64{0.2, 0.5, 0.8}
			}
			normalizeWebSearch(s)
		},
		Run: runLoadSweep,
	})
}

// webSearchScenario assembles one cell of Figures 6–7: the web-search
// flow-size distribution offered as an open-loop Poisson process at a
// target ToR-uplink load on the fat-tree, optionally overlaid with the
// synthetic incast workload (Fig. 7c–f).
func webSearchScenario(s Spec, scheme Scheme) scenario.Scenario {
	traffic := []scenario.Traffic{
		scenario.PoissonLoad{Load: s.Load, Horizon: s.Duration},
	}
	if s.IncastRate > 0 {
		traffic = append(traffic, scenario.IncastRequests{
			RequestRate: s.IncastRate,
			RequestSize: s.IncastSize,
			FanIn:       s.IncastFanIn,
			Horizon:     s.Duration,
			SeedOffset:  1,
		})
	}
	return scenario.Scenario{
		Name:     "websearch",
		Scheme:   scheme,
		Seed:     s.Seed,
		Topology: scenario.FatTreeTopology{ServersPerTor: s.ServersPerTor},
		Traffic:  traffic,
		Probes: []scenario.Probe{&webSearchPanel{
			load:          s.Load,
			sampleBuffers: s.SampleBuffers,
			duration:      s.Duration,
		}},
		Until: s.Duration + s.Drain,
	}
}

func runWebSearch(s Spec, scheme Scheme) (*Result, error) {
	return scenario.Run(webSearchScenario(s, scheme))
}

// webSearchPanel collects the Figures 6–7 cell metrics: FCT slowdown
// bins and class percentiles from the completed-flow records, plus the
// optional ToR shared-buffer occupancy CDF.
type webSearchPanel struct {
	load          float64
	sampleBuffers bool
	duration      sim.Duration

	bufSamples stats.Dist
}

func (p *webSearchPanel) Install(env *scenario.Env) error {
	if !p.sampleBuffers {
		return nil
	}
	net := env.Lab.Net
	tors := env.Lab.FTCfg.Racks()
	// Run metadata fixes the sample count: one sweep of every ToR per
	// period over the generation horizon. Size the distribution once.
	p.bufSamples.Presize((int(p.duration/(20*sim.Microsecond)) + 2) * tors)
	scenario.SampleEvery(net.Eng, 20*sim.Microsecond, sim.Time(p.duration), func(sim.Time) {
		for t := 0; t < tors; t++ {
			p.bufSamples.Add(float64(net.Switches[t].Shared().Used()))
		}
	})
	return nil
}

func (p *webSearchPanel) Finalize(env *scenario.Env, res *Result) error {
	lab := env.Lab
	ws := &WebSearchResult{
		Scheme:    env.Scheme.Name,
		Load:      p.load,
		Started:   lab.Started(),
		Completed: len(lab.Records),
		Binned:    lab.Binned(),
	}
	ws.ShortP999 = lab.ClassP(99.9, 0, stats.ShortFlowMax)
	ws.MediumP999 = lab.ClassP(99.9, 100_000, stats.LongFlowMin)
	ws.LongP999 = lab.ClassP(99.9, stats.LongFlowMin, 0)
	if p.sampleBuffers {
		ws.BufferCDF = p.bufSamples.CDF(50)
		ws.BufferP99 = p.bufSamples.Percentile(99)
	}
	ws.EngineSteps = env.Steps()

	res.Raw = ws
	webSearchScalars(res, ws)
	if p.sampleBuffers {
		cdf := Series{Name: "buffer_cdf", XLabel: "occupancy_bytes"}
		for _, pt := range ws.BufferCDF {
			cdf.Points = append(cdf.Points, SeriesPoint{X: pt.V, V: pt.F})
		}
		res.AddSeries(cdf)
	}
	return nil
}

func webSearchScalars(res *Result, ws *WebSearchResult) {
	res.SetScalar("load", ws.Load)
	res.SetScalar("started", float64(ws.Started))
	res.SetScalar("completed", float64(ws.Completed))
	res.SetScalar("short_p999", ws.ShortP999)
	res.SetScalar("medium_p999", ws.MediumP999)
	res.SetScalar("long_p999", ws.LongP999)
	for i, v := range ws.Binned.Row(99.9) {
		res.SetScalar(fmt.Sprintf("p999_bin_%s", stats.SizeLabel(stats.FlowSizeBins[i])), v)
	}
	if ws.BufferP99 > 0 {
		res.SetScalar("buffer_p99_bytes", ws.BufferP99)
	}
	res.SetScalar("engine_steps", float64(ws.EngineSteps))
}

// runLoadSweep runs the websearch cell scenario across Loads
// (Fig. 7a/7b). Raw is the []*WebSearchResult, one per load.
func runLoadSweep(s Spec, scheme Scheme) (*Result, error) {
	cells := make([]*WebSearchResult, 0, len(s.Loads))
	short := Series{Name: "short_p999", XLabel: "load"}
	long := Series{Name: "long_p999", XLabel: "load"}
	for _, load := range s.Loads {
		cell := s
		cell.Load = load
		cr, err := scenario.Run(webSearchScenario(cell, scheme))
		if err != nil {
			return nil, err
		}
		ws := cr.Raw.(*WebSearchResult)
		cells = append(cells, ws)
		short.Points = append(short.Points, SeriesPoint{X: load, V: ws.ShortP999})
		long.Points = append(long.Points, SeriesPoint{X: load, V: ws.LongP999})
	}
	res := &Result{Raw: cells}
	res.AddSeries(short)
	res.AddSeries(long)
	if n := len(cells); n > 0 {
		top := cells[n-1]
		res.SetScalar("top_load", top.Load)
		res.SetScalar("short_p999_top_load", top.ShortP999)
		res.SetScalar("long_p999_top_load", top.LongP999)
	}
	var steps uint64
	for _, ws := range cells {
		steps += ws.EngineSteps
	}
	res.SetScalar("engine_steps", float64(steps))
	return res, nil
}
