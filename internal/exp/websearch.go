package exp

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// WebSearchResult is one scheme×load cell of Figures 6–7.
type WebSearchResult struct {
	Scheme string
	Load   float64

	Started   int
	Completed int

	// Binned is Figure 6's x-axis: p99.9 slowdown per flow-size bin.
	Binned *stats.BinnedSlowdowns
	// ShortP999 / MediumP999 / LongP999 are the class percentiles of
	// Fig. 7a/7b (short <10 KB, medium 100 KB–1 MB, long >1 MB).
	ShortP999  float64
	MediumP999 float64
	LongP999   float64

	// BufferCDF is the distribution of ToR shared-buffer occupancy
	// samples (Fig. 7g/h), in bytes.
	BufferCDF []stats.CDFPoint
	BufferP99 float64

	// EngineSteps is the number of discrete events the run executed
	// (simulator-throughput accounting for the bench harness).
	EngineSteps uint64
}

func normalizeWebSearch(s *Spec) {
	if s.Load == 0 {
		s.Load = 0.6
	}
	if s.ServersPerTor == 0 {
		s.ServersPerTor = 8
	}
	if s.Duration == 0 {
		s.Duration = 15 * sim.Millisecond
	}
	if s.Drain == 0 {
		s.Drain = 5 * sim.Millisecond
	}
	if s.IncastFanIn == 0 {
		s.IncastFanIn = 16
	}
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:      "websearch",
		Figures:   "Fig. 6 (slowdown by size), Fig. 7 (classes, incast overlay, buffers)",
		Normalize: normalizeWebSearch,
		Run:       runWebSearch,
	})
	mustRegisterExperiment(Experiment{
		Name:    "load-sweep",
		Figures: "Fig. 7a/7b (slowdown vs load)",
		Normalize: func(s *Spec) {
			if len(s.Loads) == 0 {
				s.Loads = []float64{0.2, 0.5, 0.8}
			}
			normalizeWebSearch(s)
		},
		Run: runLoadSweep,
	})
}

// runWebSearch reproduces one cell of Figures 6–7: the web-search
// flow-size distribution offered as an open-loop Poisson process at a
// target ToR-uplink load on the fat-tree, optionally overlaid with the
// synthetic incast workload (Fig. 7c–f).
func runWebSearch(s Spec, scheme Scheme) (*Result, error) {
	ws, err := webSearchCell(s, scheme)
	if err != nil {
		return nil, err
	}
	res := &Result{Raw: ws}
	webSearchScalars(res, ws)
	if s.SampleBuffers {
		cdf := Series{Name: "buffer_cdf", XLabel: "occupancy_bytes"}
		for _, p := range ws.BufferCDF {
			cdf.Points = append(cdf.Points, SeriesPoint{X: p.V, V: p.F})
		}
		res.AddSeries(cdf)
	}
	return res, nil
}

// webSearchCell runs one scheme×load cell and returns the typed payload.
func webSearchCell(s Spec, scheme Scheme) (*WebSearchResult, error) {
	lab := NewFatTreeLab(scheme, s.ServersPerTor, s.Seed)
	defer lab.Release()
	net := lab.Net
	ftCfg := lab.FTCfg

	racks := ftCfg.Pods * ftCfg.TorsPerPod
	uplinkCap := units.BitRate(ftCfg.AggsPerPod) * ftCfg.FabricRate

	gen := &workload.Poisson{
		Load:             s.Load,
		UplinkCapPerRack: uplinkCap,
		Racks:            racks,
		HostsPerRack:     s.ServersPerTor,
		Dist:             workload.WebSearch(),
		Seed:             s.Seed,
	}
	lab.LaunchAll(gen.Generate(s.Duration))

	if s.IncastRate > 0 {
		ic := &workload.Incast{
			RequestRate:  s.IncastRate,
			RequestSize:  s.IncastSize,
			FanIn:        s.IncastFanIn,
			Racks:        racks,
			HostsPerRack: s.ServersPerTor,
			Seed:         s.Seed + 1,
		}
		lab.LaunchAll(ic.Generate(s.Duration))
	}

	var bufSamples stats.Dist
	horizon := sim.Time(s.Duration + s.Drain)
	if s.SampleBuffers {
		tors := racks
		// Run metadata fixes the sample count: one sweep of every ToR per
		// period over the generation horizon. Size the distribution once.
		bufSamples.Presize((int(s.Duration/(20*sim.Microsecond)) + 2) * tors)
		SampleEvery(net.Eng, 20*sim.Microsecond, sim.Time(s.Duration), func(sim.Time) {
			for t := 0; t < tors; t++ {
				bufSamples.Add(float64(net.Switches[t].Shared().Used()))
			}
		})
	}

	net.Eng.RunUntil(horizon)

	ws := &WebSearchResult{
		Scheme:    scheme.Name,
		Load:      s.Load,
		Started:   lab.Started(),
		Completed: len(lab.Records),
		Binned:    lab.Binned(),
	}
	ws.ShortP999 = lab.ClassP(99.9, 0, stats.ShortFlowMax)
	ws.MediumP999 = lab.ClassP(99.9, 100_000, stats.LongFlowMin)
	ws.LongP999 = lab.ClassP(99.9, stats.LongFlowMin, 0)
	if s.SampleBuffers {
		ws.BufferCDF = bufSamples.CDF(50)
		ws.BufferP99 = bufSamples.Percentile(99)
	}
	ws.EngineSteps = net.Eng.Steps()
	return ws, nil
}

func webSearchScalars(res *Result, ws *WebSearchResult) {
	res.SetScalar("load", ws.Load)
	res.SetScalar("started", float64(ws.Started))
	res.SetScalar("completed", float64(ws.Completed))
	res.SetScalar("short_p999", ws.ShortP999)
	res.SetScalar("medium_p999", ws.MediumP999)
	res.SetScalar("long_p999", ws.LongP999)
	for i, v := range ws.Binned.Row(99.9) {
		res.SetScalar(fmt.Sprintf("p999_bin_%s", stats.SizeLabel(stats.FlowSizeBins[i])), v)
	}
	if ws.BufferP99 > 0 {
		res.SetScalar("buffer_p99_bytes", ws.BufferP99)
	}
	res.SetScalar("engine_steps", float64(ws.EngineSteps))
}

// runLoadSweep runs the websearch cell across Loads (Fig. 7a/7b). Raw is
// the []*WebSearchResult, one per load.
func runLoadSweep(s Spec, scheme Scheme) (*Result, error) {
	cells := make([]*WebSearchResult, 0, len(s.Loads))
	short := Series{Name: "short_p999", XLabel: "load"}
	long := Series{Name: "long_p999", XLabel: "load"}
	for _, load := range s.Loads {
		cell := s
		cell.Load = load
		ws, err := webSearchCell(cell, scheme)
		if err != nil {
			return nil, err
		}
		cells = append(cells, ws)
		short.Points = append(short.Points, SeriesPoint{X: load, V: ws.ShortP999})
		long.Points = append(long.Points, SeriesPoint{X: load, V: ws.LongP999})
	}
	res := &Result{Raw: cells}
	res.AddSeries(short)
	res.AddSeries(long)
	if n := len(cells); n > 0 {
		top := cells[n-1]
		res.SetScalar("top_load", top.Load)
		res.SetScalar("short_p999_top_load", top.ShortP999)
		res.SetScalar("long_p999_top_load", top.LongP999)
	}
	var steps uint64
	for _, ws := range cells {
		steps += ws.EngineSteps
	}
	res.SetScalar("engine_steps", float64(steps))
	return res, nil
}
