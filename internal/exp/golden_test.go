package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// goldenSpecs is one representative seed-1 spec per registered
// experiment. The encoded results are recorded in testdata/golden/ by
// running the suite with POWERTCP_UPDATE_GOLDEN=1; the committed files
// were produced by the pre-scenario (PR 4) per-runner code, so this test
// pins the scenario redesign to byte-identical figure outputs.
func goldenSpecs() []Spec {
	return []Spec{
		NewSpec("incast", PowerTCP,
			WithFanIn(10), WithWindow(2*sim.Millisecond), WithSeed(1)),
		NewSpec("fairness", PowerTCP,
			WithWindow(3*sim.Millisecond), WithSeed(1)),
		NewSpec("websearch", PowerTCP,
			WithLoad(0.15), WithServersPerTor(4),
			WithDuration(2*sim.Millisecond), WithDrain(sim.Millisecond), WithSeed(1)),
		NewSpec("load-sweep", PowerTCP,
			WithLoads(0.1, 0.2), WithServersPerTor(4),
			WithDuration(sim.Millisecond), WithDrain(sim.Millisecond), WithSeed(1)),
		NewSpec("rdcn", PowerTCP,
			WithTors(4), WithWeeks(2), WithPacketRate(25*units.Gbps), WithSeed(1)),
		NewSpec("permutation", PowerTCP,
			WithRouting("ecmp"), WithServersPerTor(4),
			WithWindow(sim.Millisecond), WithSeed(1)),
		NewSpec("asymmetry", PowerTCP,
			WithRouting("wecmp"), WithServersPerTor(4),
			WithWindow(sim.Millisecond), WithSeed(1)),
		NewSpec("failover", PowerTCP,
			WithServersPerTor(4), WithFlows(2),
			WithWindow(3*sim.Millisecond), WithSeed(1)),
	}
}

// TestGoldenCompatibility runs every registered experiment at seed 1 and
// compares the encoded JSON byte-for-byte against the recorded
// pre-redesign outputs. Regenerate with POWERTCP_UPDATE_GOLDEN=1 — but
// only when a change is *meant* to alter figure output.
func TestGoldenCompatibility(t *testing.T) {
	update := os.Getenv("POWERTCP_UPDATE_GOLDEN") != ""
	specs := goldenSpecs()

	// Every registered experiment must be covered, so a new experiment
	// cannot ship without a recorded golden.
	covered := map[string]bool{}
	for _, s := range specs {
		covered[s.Experiment] = true
	}
	for _, name := range ExperimentNames() {
		if !covered[name] {
			t.Errorf("experiment %q has no golden spec", name)
		}
	}

	for _, spec := range specs {
		r, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Experiment, err)
		}
		var buf bytes.Buffer
		if err := r.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "golden", spec.Experiment+".json")
		if update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with POWERTCP_UPDATE_GOLDEN=1): %v",
				spec.Experiment, err)
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Errorf("%s: seed-1 output differs from recorded golden %s (%d vs %d bytes)",
				spec.Experiment, path, len(buf.Bytes()), len(want))
		}
	}
}
