package exp

import (
	"fmt"
	"strings"

	"repro/internal/route"
)

// Spec field names used by Validate and Experiment.Fields. Each names
// one scenario knob of the Spec superset; identity fields (Experiment,
// Scheme, SchemeOpts, Seed, Label) are always accepted.
const (
	FieldServersPerTor = "ServersPerTor"
	FieldTors          = "Tors"
	FieldPartitions    = "Partitions"
	FieldFanIn         = "FanIn"
	FieldFlowSize      = "FlowSize"
	FieldFlows         = "Flows"
	FieldStagger       = "Stagger"
	FieldSizes         = "Sizes"
	FieldLoad          = "Load"
	FieldLoads         = "Loads"
	FieldIncastRate    = "IncastRate"
	FieldIncastSize    = "IncastSize"
	FieldIncastFanIn   = "IncastFanIn"
	FieldSampleBuffers = "SampleBuffers"
	FieldPacketRate    = "PacketRate"
	FieldWeeks         = "Weeks"
	FieldRouting       = "Routing"
	FieldSpines        = "Spines"
	FieldSpineRates    = "SpineRates"
	FieldFailAfter     = "FailAfter"
	FieldRestoreAfter  = "RestoreAfter"
	FieldReconverge    = "Reconverge"
	FieldWindow        = "Window"
	FieldWarmup        = "Warmup"
	FieldDuration      = "Duration"
	FieldDrain         = "Drain"
	FieldSamplePeriod  = "SamplePeriod"
)

// assignedFields lists the scenario knobs the spec sets (non-zero), in
// declaration order.
func (s Spec) assignedFields() []string {
	var out []string
	set := func(name string, assigned bool) {
		if assigned {
			out = append(out, name)
		}
	}
	set(FieldServersPerTor, s.ServersPerTor != 0)
	set(FieldTors, s.Tors != 0)
	set(FieldPartitions, s.Partitions != 0)
	set(FieldFanIn, s.FanIn != 0)
	set(FieldFlowSize, s.FlowSize != 0)
	set(FieldFlows, s.Flows != 0)
	set(FieldStagger, s.Stagger != 0)
	set(FieldSizes, len(s.Sizes) != 0)
	set(FieldLoad, s.Load != 0)
	set(FieldLoads, len(s.Loads) != 0)
	set(FieldIncastRate, s.IncastRate != 0)
	set(FieldIncastSize, s.IncastSize != 0)
	set(FieldIncastFanIn, s.IncastFanIn != 0)
	set(FieldSampleBuffers, s.SampleBuffers)
	set(FieldPacketRate, s.PacketRate != 0)
	set(FieldWeeks, s.Weeks != 0)
	set(FieldRouting, s.Routing != "")
	set(FieldSpines, s.Spines != 0)
	set(FieldSpineRates, len(s.SpineRates) != 0)
	set(FieldFailAfter, s.FailAfter != 0)
	set(FieldRestoreAfter, s.RestoreAfter != 0)
	set(FieldReconverge, s.Reconverge != 0)
	set(FieldWindow, s.Window != 0)
	set(FieldWarmup, s.Warmup != 0)
	set(FieldDuration, s.Duration != 0)
	set(FieldDrain, s.Drain != 0)
	set(FieldSamplePeriod, s.SamplePeriod != 0)
	return out
}

// Validate resolves the spec's experiment and checks that every
// assigned scenario knob is one the experiment consumes. A knob the
// experiment would silently ignore is an error — WithFanIn on
// "fairness" was a no-op before the scenario redesign; now it fails
// loudly. Experiments registered without a Fields list skip the check.
func (s Spec) Validate() error {
	e, err := ExperimentByName(s.Experiment)
	if err != nil {
		return err
	}
	return s.validateAgainst(e)
}

func (s Spec) validateAgainst(e Experiment) error {
	// Domain checks apply to every assigned knob regardless of which
	// experiment consumes it — a negative fan-in is wrong everywhere.
	for _, f := range s.assignedFields() {
		if err := s.checkDomain(f); err != nil {
			return err
		}
	}
	if e.Fields == nil {
		return nil
	}
	accepted := make(map[string]bool, len(e.Fields))
	for _, f := range e.Fields {
		accepted[f] = true
	}
	var bad []string
	for _, f := range s.assignedFields() {
		if !accepted[f] {
			bad = append(bad, f)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("exp: experiment %q does not consume %s (accepted: %s)",
			e.Name, strings.Join(bad, ", "), strings.Join(e.Fields, ", "))
	}
	return nil
}

// checkDomain validates one assigned knob's value against its domain.
// Assigned means non-zero, so zero values (defaults) never reach here;
// the checks reject the values no experiment could meaningfully read —
// negative counts, sizes and durations, out-of-range loads, unknown
// routing strategies.
func (s Spec) checkDomain(field string) error {
	positive := func(name string, v int64) error {
		if v < 0 {
			return fmt.Errorf("exp: %s must be positive, got %d", name, v)
		}
		return nil
	}
	switch field {
	case FieldServersPerTor:
		return positive(field, int64(s.ServersPerTor))
	case FieldTors:
		return positive(field, int64(s.Tors))
	case FieldPartitions:
		return positive(field, int64(s.Partitions))
	case FieldFanIn:
		return positive(field, int64(s.FanIn))
	case FieldFlowSize:
		return positive(field, s.FlowSize)
	case FieldFlows:
		return positive(field, int64(s.Flows))
	case FieldStagger:
		return positive(field, int64(s.Stagger))
	case FieldSizes:
		for _, v := range s.Sizes {
			if v <= 0 {
				return fmt.Errorf("exp: Sizes entries must be positive, got %d", v)
			}
		}
	case FieldLoad:
		if s.Load < 0 || s.Load > 1 {
			return fmt.Errorf("exp: Load must be within (0, 1], got %g", s.Load)
		}
	case FieldLoads:
		for _, v := range s.Loads {
			if v <= 0 || v > 1 {
				return fmt.Errorf("exp: Loads entries must be within (0, 1], got %g", v)
			}
		}
	case FieldIncastRate:
		if s.IncastRate < 0 {
			return fmt.Errorf("exp: IncastRate must be positive, got %g", s.IncastRate)
		}
	case FieldIncastSize:
		return positive(field, s.IncastSize)
	case FieldIncastFanIn:
		return positive(field, int64(s.IncastFanIn))
	case FieldPacketRate:
		return positive(field, int64(s.PacketRate))
	case FieldWeeks:
		return positive(field, int64(s.Weeks))
	case FieldRouting:
		if _, err := route.StrategyByName(s.Routing); err != nil {
			return fmt.Errorf("exp: Routing: %w", err)
		}
	case FieldSpines:
		return positive(field, int64(s.Spines))
	case FieldSpineRates:
		for _, v := range s.SpineRates {
			if v <= 0 {
				return fmt.Errorf("exp: SpineRates entries must be positive, got %v", v)
			}
		}
	case FieldFailAfter:
		return positive(field, int64(s.FailAfter))
	case FieldRestoreAfter:
		if s.RestoreAfter < 0 && s.RestoreAfter != KeepLinkDown {
			return fmt.Errorf("exp: RestoreAfter must be positive or KeepLinkDown, got %v", s.RestoreAfter)
		}
	case FieldReconverge:
		return positive(field, int64(s.Reconverge))
	case FieldWindow:
		return positive(field, int64(s.Window))
	case FieldWarmup:
		return positive(field, int64(s.Warmup))
	case FieldDuration:
		return positive(field, int64(s.Duration))
	case FieldDrain:
		return positive(field, int64(s.Drain))
	case FieldSamplePeriod:
		return positive(field, int64(s.SamplePeriod))
	}
	return nil
}

// Accepts reports whether the experiment consumes the named Spec field.
// Experiments without a Fields list accept everything.
func (e Experiment) Accepts(field string) bool {
	if e.Fields == nil {
		return true
	}
	for _, f := range e.Fields {
		if f == field {
			return true
		}
	}
	return false
}
