package exp

import (
	"testing"

	"repro/internal/sim"
)

// Every registered scheme must survive the incast scenario end-to-end:
// flows complete, the receiver keeps moving bytes, and the run is
// deterministic enough to summarize. This guards the whole
// scheme-to-switch-feature wiring (INT, ECN, priority queues). The runs
// execute as one parallel suite — the same path cmd/figures uses.
func TestEverySchemeRunsIncast(t *testing.T) {
	schemes := append([]string{}, Schemes...)
	schemes = append(schemes, Swift, DCTCP, Reno, Cubic, "homa-oc3")
	var specs []Spec
	for _, sc := range schemes {
		// 8 ms gives even the slow starters (Reno/CUBIC from 10
		// MSS, TIMELY's additive recovery) time to move 500 KB each.
		specs = append(specs, NewSpec("incast", sc,
			WithFanIn(6), WithWindow(8*sim.Millisecond), WithSeed(11)))
	}
	results, err := NewSuite(specs...).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range schemes {
		r := results[i].Raw.(*IncastResult)
		if r.AvgGoodputGbps < 2 {
			t.Fatalf("%s: goodput %.1f Gbps", sc, r.AvgGoodputGbps)
		}
		if r.Completed < 4 {
			t.Fatalf("%s: only %d/6 incast flows completed", sc, r.Completed)
		}
		if len(r.Points) == 0 {
			t.Fatalf("%s: no samples", sc)
		}
	}
}
