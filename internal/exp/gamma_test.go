package exp

import (
	"testing"

	"repro/internal/sim"
)

// §3.3: γ balances reaction time against sensitivity to noise. A very
// small γ reacts sluggishly — during an incast the queue peak stays high
// for longer — while the recommended γ=0.9 cuts within roughly an RTT.
// We compare the tail-mean queue after the burst.
func TestGammaTradeoff(t *testing.T) {
	run := func(gamma float64) *IncastResult {
		return mustRun(t, NewSpec("incast", PowerTCP,
			WithSchemeOptions(Gamma(gamma)),
			WithFanIn(10), WithWindow(3*sim.Millisecond), WithSeed(4))).Raw.(*IncastResult)
	}
	slow := run(0.1)
	rec := run(0.9)
	if rec.TailMeanQueueKB > slow.TailMeanQueueKB+1 {
		t.Fatalf("γ=0.9 resolved worse than γ=0.1: %.1fKB vs %.1fKB",
			rec.TailMeanQueueKB, slow.TailMeanQueueKB)
	}
	// Both must still complete the incast and keep goodput.
	if rec.AvgGoodputGbps < 15 {
		t.Fatalf("γ=0.9 goodput = %v", rec.AvgGoodputGbps)
	}
}

// The γ option must rebuild the builder for both PowerTCP variants.
func TestGammaOptionBuilders(t *testing.T) {
	for _, name := range []string{PowerTCP, ThetaPowerTCP} {
		s, err := ResolveScheme(name, Gamma(0.5))
		if err != nil {
			t.Fatalf("ResolveScheme(%s, Gamma(0.5)): %v", name, err)
		}
		if s.Gamma != 0.5 || s.Alg == nil {
			t.Fatalf("ResolveScheme(%s, Gamma(0.5)) = %+v", name, s)
		}
		alg := s.Alg()
		if alg == nil {
			t.Fatal("builder returned nil")
		}
	}
}
