// Package exp is the experiment harness: one runner per figure of the
// paper's evaluation (§4–§5, Appendix D). Each runner builds the
// topology, generates the workload, drives the simulation, and returns
// the data series or table rows the corresponding figure plots.
// cmd/figures renders them; bench_test.go regenerates them under
// `go test -bench`; EXPERIMENTS.md records paper-vs-measured.
package exp

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/swtch"
)

// Scheme names accepted by the runners (matching the paper's legends).
const (
	PowerTCP      = "powertcp"
	ThetaPowerTCP = "theta-powertcp"
	HPCC          = "hpcc"
	Timely        = "timely"
	DCQCN         = "dcqcn"
	Swift         = "swift"
	DCTCP         = "dctcp" // taxonomy reference (Fig. 1), ablations
	Reno          = "reno"  // loss-based reference, ablations
	Cubic         = "cubic" // loss-based WAN reference, ablations
	Homa          = "homa"  // overcommitment 1; "homa-oc<N>" selects N
)

// Schemes lists every sender-based scheme, in the paper's legend order.
var Schemes = []string{PowerTCP, ThetaPowerTCP, HPCC, Timely, DCQCN, Homa}

// Scheme bundles a congestion-control choice with the switch features it
// needs: INT stamping for the telemetry-driven laws, RED/ECN for DCQCN,
// and strict-priority queues for HOMA.
type Scheme struct {
	Name string
	// Alg builds a per-flow algorithm; nil for HOMA (its own transport).
	Alg cc.Builder
	// INT enables telemetry stamping on the switches.
	INT bool
	// ECN configures RED marking (DCQCN).
	ECN swtch.ECNConfig
	// PrioQueues replaces FIFO egress queues with 8-level strict
	// priority (HOMA).
	PrioQueues bool
	// Overcommit is HOMA's concurrent-grant degree.
	Overcommit int
	// Gamma overrides PowerTCP's EWMA weight (ablations); 0 = default.
	Gamma float64
	// PerRTT limits PowerTCP updates to once per RTT (§5).
	PerRTT bool
}

// IsHoma reports whether the scheme uses the receiver-driven transport.
func (s Scheme) IsHoma() bool { return s.Alg == nil }

// DCQCNECN is the marking profile used for DCQCN runs, following the
// HPCC paper's configuration the authors adopt (§4.1).
var DCQCNECN = swtch.ECNConfig{KMin: 100 << 10, KMax: 400 << 10, PMax: 0.2}

// DCTCPECN is DCTCP's step marking at threshold K (the paper notes the
// flows oscillate around K > b·τ/7, §2.2).
var DCTCPECN = swtch.ECNConfig{KMin: 65 << 10, KMax: 65<<10 + 1, PMax: 1}

// SchemeByName resolves a scheme name; it panics on unknown names so
// misconfigured experiments fail loudly.
func SchemeByName(name string) Scheme {
	switch {
	case name == PowerTCP:
		return Scheme{Name: name, INT: true,
			Alg: core.Builder(core.Config{})}
	case name == ThetaPowerTCP:
		return Scheme{Name: name,
			Alg: core.ThetaBuilder(core.Config{})}
	case name == HPCC:
		return Scheme{Name: name, INT: true, Alg: cc.HPCCBuilder()}
	case name == Timely:
		return Scheme{Name: name, Alg: cc.TimelyBuilder()}
	case name == DCQCN:
		return Scheme{Name: name, ECN: DCQCNECN, Alg: cc.DCQCNBuilder()}
	case name == Swift:
		return Scheme{Name: name, Alg: cc.SwiftBuilder()}
	case name == DCTCP:
		return Scheme{Name: name, ECN: DCTCPECN, Alg: cc.DCTCPBuilder()}
	case name == Reno:
		return Scheme{Name: name, Alg: cc.RenoBuilder()}
	case name == Cubic:
		return Scheme{Name: name, Alg: cc.CubicBuilder()}
	case name == Homa:
		return Scheme{Name: name, PrioQueues: true, Overcommit: 1}
	case strings.HasPrefix(name, "homa-oc"):
		var oc int
		if _, err := fmt.Sscanf(name, "homa-oc%d", &oc); err != nil || oc < 1 {
			panic("exp: bad homa overcommit scheme " + name)
		}
		return Scheme{Name: name, PrioQueues: true, Overcommit: oc}
	default:
		panic("exp: unknown scheme " + name)
	}
}

// WithGamma returns a PowerTCP-family scheme with a custom γ (ablation).
func WithGamma(name string, gamma float64) Scheme {
	s := SchemeByName(name)
	s.Gamma = gamma
	switch name {
	case PowerTCP:
		s.Alg = core.Builder(core.Config{Gamma: gamma})
	case ThetaPowerTCP:
		s.Alg = core.ThetaBuilder(core.Config{Gamma: gamma})
	}
	return s
}

// queueFactory returns the per-port queue constructor for the scheme.
func (s Scheme) queueFactory() func() queue.Queue {
	if s.PrioQueues {
		return func() queue.Queue { return queue.NewPrio() }
	}
	return nil
}
