package exp

import (
	"repro/internal/scenario"
	"repro/internal/sim"
)

// ScenarioMix assembles the composition-layer stress the perf harness
// tracks as Scenario_Mix (BenchmarkScenario_Mix and cmd/bench share
// this single builder so the CI gate measures exactly the tested
// assembly): websearch Poisson load plus the synthetic incast overlay
// on a leaf-spine fabric, with a spine link failing and recovering
// mid-run — every axis of the scenario API in one run. Scenarios are
// single-use (probes hold run state), so callers build a fresh value
// per run.
func ScenarioMix(seed int64) (scenario.Scenario, error) {
	scheme, err := scenario.ResolveScheme(scenario.PowerTCP)
	if err != nil {
		return scenario.Scenario{}, err
	}
	return scenario.Scenario{
		Name: "scenario-mix", Scheme: scheme, Seed: seed,
		Topology: scenario.LeafSpineTopology{Leaves: 4, Spines: 2, ServersPerLeaf: 8},
		Traffic: []scenario.Traffic{
			scenario.PoissonLoad{Load: 0.4, Horizon: 2 * sim.Millisecond},
			scenario.IncastRequests{RequestRate: 2000, RequestSize: 1 << 20, FanIn: 8,
				Horizon: 2 * sim.Millisecond, SeedOffset: 1},
		},
		Events: scenario.Timeline{
			Events: []scenario.Event{
				scenario.LinkFail{At: sim.Millisecond, A: scenario.Leaf(0), B: scenario.Spine(0)},
				scenario.LinkRestore{At: 2 * sim.Millisecond, A: scenario.Leaf(0), B: scenario.Spine(0)},
			},
			Reconverge: 200 * sim.Microsecond,
		},
		Probes: []scenario.Probe{
			scenario.FCTProbe{},
			&scenario.GoodputProbe{Period: 50 * sim.Microsecond},
		},
		Until: 3 * sim.Millisecond,
	}, nil
}
