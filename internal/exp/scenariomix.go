package exp

import (
	"repro/internal/scenario"
	"repro/internal/sim"
)

// ScenarioMix assembles the composition-layer stress the perf harness
// tracks as Scenario_Mix (BenchmarkScenario_Mix and cmd/bench share
// this single builder so the CI gate measures exactly the tested
// assembly): websearch Poisson load plus the synthetic incast overlay
// on a leaf-spine fabric, with a spine link failing and recovering
// mid-run — every axis of the scenario API in one run. Scenarios are
// single-use (probes hold run state), so callers build a fresh value
// per run.
func ScenarioMix(seed int64) (scenario.Scenario, error) {
	scheme, err := scenario.ResolveScheme(scenario.PowerTCP)
	if err != nil {
		return scenario.Scenario{}, err
	}
	return scenario.Scenario{
		Name: "scenario-mix", Scheme: scheme, Seed: seed,
		Topology: scenario.LeafSpineTopology{Leaves: 4, Spines: 2, ServersPerLeaf: 8},
		Traffic: []scenario.Traffic{
			scenario.PoissonLoad{Load: 0.4, Horizon: 2 * sim.Millisecond},
			scenario.IncastRequests{RequestRate: 2000, RequestSize: 1 << 20, FanIn: 8,
				Horizon: 2 * sim.Millisecond, SeedOffset: 1},
		},
		Events: scenario.Timeline{
			Events: []scenario.Event{
				scenario.LinkFail{At: sim.Millisecond, A: scenario.Leaf(0), B: scenario.Spine(0)},
				scenario.LinkRestore{At: 2 * sim.Millisecond, A: scenario.Leaf(0), B: scenario.Spine(0)},
			},
			Reconverge: 200 * sim.Microsecond,
		},
		Probes: []scenario.Probe{
			scenario.FCTProbe{},
			&scenario.GoodputProbe{Period: 50 * sim.Microsecond},
		},
		Until: 3 * sim.Millisecond,
	}, nil
}

// ScaleFatTree10k builds the PDES scale stress tracked as
// Scale_FatTree10k: permutation traffic across a 16-pod fat-tree of
// 10,240 hosts (16 pods × 16 ToRs × 40 servers), sharded over parts
// partitions (1 = serial). The benchmark measures events/sec at each
// partition count; byte-identical output across counts is pinned by the
// determinism suite, so the speedup vs parts=1 is a pure scheduling
// win. cmd/bench and BenchmarkScale_FatTree10k share this builder.
func ScaleFatTree10k(parts int) func(int64) (scenario.Scenario, error) {
	return func(seed int64) (scenario.Scenario, error) {
		scheme, err := scenario.ResolveScheme(scenario.PowerTCP)
		if err != nil {
			return scenario.Scenario{}, err
		}
		return scenario.Scenario{
			Name: "scale-fattree-10k", Scheme: scheme, Seed: seed,
			Topology: scenario.FatTreeTopology{
				Pods: 16, TorsPerPod: 16, AggsPerPod: 8, Cores: 16,
				ServersPerTor: 40, Partitions: parts,
			},
			Traffic: []scenario.Traffic{scenario.Permutation{}},
			Until:   200 * sim.Microsecond,
		}, nil
	}
}
