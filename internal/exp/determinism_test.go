package exp

import (
	"testing"

	"repro/internal/sim"
)

// The whole simulator must be deterministic: identical seeds produce
// byte-identical experiment results (the paper's artifact property this
// repository leans on for regression testing).
func TestIncastDeterminism(t *testing.T) {
	run := func() IncastResult {
		return RunIncast(IncastOptions{
			Scheme: PowerTCP, FanIn: 10,
			Window: 2 * sim.Millisecond, Seed: 7,
		})
	}
	a, b := run(), run()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("series diverged at %d: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
	if a.Completed != b.Completed || a.PeakQueueKB != b.PeakQueueKB {
		t.Fatal("summary metrics diverged")
	}
}

func TestWebSearchDeterminismAcrossSchemesIsolated(t *testing.T) {
	// Two runs of the same scheme agree; a different scheme still sees
	// the same workload trace (same Started count) because workload
	// randomness is seeded independently of the CC scheme.
	o := WebSearchOptions{
		Load: 0.15, ServersPerTor: 4,
		Duration: 2 * sim.Millisecond, Drain: 2 * sim.Millisecond, Seed: 9,
	}
	o.Scheme = PowerTCP
	a := RunWebSearch(o)
	b := RunWebSearch(o)
	if a.Completed != b.Completed || a.ShortP999 != b.ShortP999 {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	o.Scheme = HPCC
	c := RunWebSearch(o)
	if c.Started != a.Started {
		t.Fatalf("workload trace depends on scheme: %d vs %d flows", c.Started, a.Started)
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	o := WebSearchOptions{
		Scheme: PowerTCP, Load: 0.15, ServersPerTor: 4,
		Duration: 2 * sim.Millisecond, Drain: sim.Millisecond,
	}
	o.Seed = 1
	a := RunWebSearch(o)
	o.Seed = 2
	b := RunWebSearch(o)
	if a.Started == b.Started && a.ShortP999 == b.ShortP999 {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}
