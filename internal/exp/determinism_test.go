package exp

import (
	"bytes"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// The whole simulator must be deterministic: identical seeds produce
// byte-identical experiment results (the paper's artifact property this
// repository leans on for regression testing).
func TestIncastDeterminism(t *testing.T) {
	run := func() *IncastResult {
		return mustRun(t, NewSpec("incast", PowerTCP,
			WithFanIn(10), WithWindow(2*sim.Millisecond), WithSeed(7))).Raw.(*IncastResult)
	}
	a, b := run(), run()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("series diverged at %d: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
	if a.Completed != b.Completed || a.PeakQueueKB != b.PeakQueueKB {
		t.Fatal("summary metrics diverged")
	}
}

func TestWebSearchDeterminismAcrossSchemesIsolated(t *testing.T) {
	// Two runs of the same scheme agree; a different scheme still sees
	// the same workload trace (same Started count) because workload
	// randomness is seeded independently of the CC scheme.
	opts := []Option{
		WithLoad(0.15), WithServersPerTor(4),
		WithDuration(2 * sim.Millisecond), WithDrain(2 * sim.Millisecond), WithSeed(9),
	}
	a := mustRun(t, NewSpec("websearch", PowerTCP, opts...)).Raw.(*WebSearchResult)
	b := mustRun(t, NewSpec("websearch", PowerTCP, opts...)).Raw.(*WebSearchResult)
	if a.Completed != b.Completed || a.ShortP999 != b.ShortP999 {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := mustRun(t, NewSpec("websearch", HPCC, opts...)).Raw.(*WebSearchResult)
	if c.Started != a.Started {
		t.Fatalf("workload trace depends on scheme: %d vs %d flows", c.Started, a.Started)
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	spec := func(seed int64) Spec {
		return NewSpec("websearch", PowerTCP,
			WithLoad(0.15), WithServersPerTor(4),
			WithDuration(2*sim.Millisecond), WithDrain(sim.Millisecond), WithSeed(seed))
	}
	a := mustRun(t, spec(1)).Raw.(*WebSearchResult)
	b := mustRun(t, spec(2)).Raw.(*WebSearchResult)
	if a.Started == b.Started && a.ShortP999 == b.ShortP999 {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

// A parallel suite run must be byte-identical to a serial run of the
// same specs at the same seeds: every run owns an isolated engine, so
// worker count and scheduling cannot leak into results. This is the
// property that makes the worker pool safe to use for figure
// regeneration.
func TestSuiteParallelMatchesSerial(t *testing.T) {
	specs := func() []Spec {
		var out []Spec
		for _, scheme := range []string{PowerTCP, ThetaPowerTCP, HPCC, Timely, Homa} {
			out = append(out, NewSpec("incast", scheme,
				WithFanIn(6), WithWindow(sim.Millisecond), WithSeed(11)))
		}
		for _, seed := range []int64{1, 2} {
			out = append(out, NewSpec("fairness", PowerTCP,
				WithWindow(2*sim.Millisecond), WithSeed(seed)))
		}
		out = append(out, NewSpec("websearch", PowerTCP,
			WithLoad(0.15), WithServersPerTor(4),
			WithDuration(2*sim.Millisecond), WithDrain(sim.Millisecond), WithSeed(3)))
		// The multipath lab: hashing, weighted tables, and scheduled link
		// failures must all be worker-count independent too.
		for _, routing := range []string{"ecmp", "wecmp"} {
			out = append(out, NewSpec("permutation", PowerTCP,
				WithRouting(routing), WithServersPerTor(4),
				WithWindow(sim.Millisecond), WithSeed(13)))
		}
		out = append(out,
			NewSpec("asymmetry", PowerTCP, WithRouting("wecmp"), WithServersPerTor(4),
				WithWindow(sim.Millisecond), WithSeed(13)),
			NewSpec("failover", PowerTCP, WithServersPerTor(4), WithFlows(2),
				WithWindow(3*sim.Millisecond), WithSeed(13)))
		// Wheel-engine stress (PR 4): failure/restore schedules a few
		// milliseconds out live in the wheel's coarsest level and cascade
		// down across many level-0/1 rotations before firing, and the
		// timing must still be byte-exact under any worker count. One
		// cell also routes single-path so reconvergence rebuilds tables
		// from the arena mid-run.
		out = append(out,
			NewSpec("failover", PowerTCP, WithServersPerTor(4), WithFlows(2),
				WithFailure(2*sim.Millisecond, 5*sim.Millisecond),
				WithReconverge(400*sim.Microsecond),
				WithWindow(7*sim.Millisecond), WithSeed(17)),
			NewSpec("failover", HPCC, WithServersPerTor(4), WithFlows(2),
				WithRouting("single"),
				WithFailure(1500*sim.Microsecond, KeepLinkDown),
				WithWindow(4*sim.Millisecond), WithSeed(17)))
		return out
	}

	serialSuite := Suite{Specs: specs(), Workers: 1}
	serial, err := serialSuite.Run()
	if err != nil {
		t.Fatal(err)
	}
	parallelSuite := Suite{Specs: specs(), Workers: 8}
	parallel, err := parallelSuite.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		var sb, pb bytes.Buffer
		if err := serial[i].EncodeJSON(&sb); err != nil {
			t.Fatal(err)
		}
		if err := parallel[i].EncodeJSON(&pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Fatalf("spec %d: parallel result differs from serial\nserial:   %.200s\nparallel: %.200s",
				i, sb.String(), pb.String())
		}
	}
}

// Packet pooling is an allocation strategy, not a model change: a suite
// covering every experiment family must produce byte-identical encoded
// results with the free lists disabled. This is the guardrail for the
// zero-allocation hot path — any pooled packet or INT slice that is still
// referenced after Put would corrupt a run and diverge here.
func TestSuitePooledMatchesUnpooled(t *testing.T) {
	specs := func() []Spec {
		var out []Spec
		for _, scheme := range []string{PowerTCP, HPCC, Timely, DCQCN, Reno, Homa} {
			out = append(out, NewSpec("incast", scheme,
				WithFanIn(6), WithWindow(sim.Millisecond), WithSeed(5)))
		}
		out = append(out, NewSpec("fairness", PowerTCP,
			WithWindow(2*sim.Millisecond), WithSeed(5)))
		out = append(out, NewSpec("websearch", PowerTCP,
			WithLoad(0.15), WithServersPerTor(4),
			WithDuration(2*sim.Millisecond), WithDrain(sim.Millisecond), WithSeed(5)))
		out = append(out, NewSpec("rdcn", PowerTCP, WithTors(4), WithSeed(5)))
		return out
	}

	pooledSuite := Suite{Specs: specs(), Workers: 1}
	pooled, err := pooledSuite.Run()
	if err != nil {
		t.Fatal(err)
	}

	packet.SetPooling(false)
	defer packet.SetPooling(true)
	unpooledSuite := Suite{Specs: specs(), Workers: 1}
	unpooled, err := unpooledSuite.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(pooled) != len(unpooled) {
		t.Fatalf("result counts differ: %d vs %d", len(pooled), len(unpooled))
	}
	for i := range pooled {
		var pb, ub bytes.Buffer
		if err := pooled[i].EncodeJSON(&pb); err != nil {
			t.Fatal(err)
		}
		if err := unpooled[i].EncodeJSON(&ub); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pb.Bytes(), ub.Bytes()) {
			t.Fatalf("spec %d (%s/%s): pooled result differs from unpooled\npooled:   %.300s\nunpooled: %.300s",
				i, pooled[i].Experiment, pooled[i].Scheme, pb.String(), ub.String())
		}
	}
}

// Engine recycling is an allocation strategy, not a model change: a lab
// released at the end of a run hands its engine (Reset) and packet free
// list to the next run via the scratch pool, and the recycled run must
// be byte-identical to the first. The failover spec is the sharp case —
// its runs end with events still pending (RTOs, restore schedules), so
// Reset's discard path runs every repetition.
func TestWheelEngineRecycleDeterminism(t *testing.T) {
	spec := NewSpec("failover", PowerTCP, WithServersPerTor(4), WithFlows(2),
		WithFailure(sim.Millisecond, 3*sim.Millisecond),
		WithWindow(5*sim.Millisecond), WithSeed(21))
	var first []byte
	for i := 0; i < 3; i++ {
		r, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = append([]byte(nil), buf.Bytes()...)
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("run %d on a recycled engine diverged from the first run", i)
		}
	}
}

// Suite errors: a bad spec reports its index without sinking the rest.
func TestSuitePartialFailure(t *testing.T) {
	suite := NewSuite(
		NewSpec("incast", PowerTCP, WithFanIn(4), WithWindow(sim.Millisecond), WithSeed(1)),
		NewSpec("incast", "bogus"),
	)
	results, err := suite.Run()
	if err == nil {
		t.Fatal("bad spec did not error")
	}
	if results[0] == nil {
		t.Fatal("good spec did not run")
	}
	if results[1] != nil {
		t.Fatal("bad spec produced a result")
	}
}
