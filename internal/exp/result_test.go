package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleResult() *Result {
	r := &Result{Experiment: "incast", Scheme: PowerTCP, Seed: 7, Label: "demo"}
	r.SetScalar("peak_queue_kb", 42.5)
	r.SetScalar("avg_goodput_gbps", 23.125)
	r.AddSeries(Series{
		Name: "queue_kb", XLabel: "time_us",
		Points: []SeriesPoint{{X: 0, V: 1}, {X: 20, V: 2.5}},
	})
	return r
}

func TestResultJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Experiment != "incast" || back.Scheme != PowerTCP || back.Seed != 7 {
		t.Fatalf("identity lost: %+v", back)
	}
	if back.Scalars["peak_queue_kb"] != 42.5 {
		t.Fatalf("scalars lost: %+v", back.Scalars)
	}
	if len(back.Series) != 1 || len(back.Series[0].Points) != 2 {
		t.Fatalf("series lost: %+v", back.Series)
	}
}

func TestResultTSVLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().EncodeTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# experiment=incast scheme=powertcp seed=7 label=demo",
		"avg_goodput_gbps\t23.125", // scalars sorted, so this precedes peak
		"peak_queue_kb\t42.5",
		"# series=queue_kb",
		"20\t2.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "avg_goodput_gbps") > strings.Index(out, "peak_queue_kb") {
		t.Fatal("scalars not sorted")
	}
}

func TestEncodeResultSets(t *testing.T) {
	rs := []*Result{sampleResult(), sampleResult()}
	var tsv, js bytes.Buffer
	if err := EncodeTSVResults(&tsv, rs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(tsv.String(), "# experiment=incast"); got != 2 {
		t.Fatalf("TSV set has %d blocks", got)
	}
	if err := EncodeJSONResults(&js, rs); err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal(js.Bytes(), &back); err != nil || len(back) != 2 {
		t.Fatalf("JSON set round-trip: %v, %d", err, len(back))
	}
}
