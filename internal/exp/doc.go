// Package exp is the experiment registry behind the paper's evaluation
// (§4–§5, Appendix D) and the repository's extension scenarios. Since
// the scenario redesign it is a thin, validated layer over
// internal/scenario: every registered experiment — the paper's incast,
// fairness, websearch, load-sweep and rdcn, plus the multipath lab's
// permutation, asymmetry and failover — is a preset that assembles a
// declarative scenario.Scenario (Topology × Traffic × Events × Probes)
// and hands it to the generic scenario.Run. It exposes:
//
//   - The experiment registry: NewSpec + Run execute one named preset,
//     and a Suite executes many concurrently over a GOMAXPROCS-sized
//     worker pool. Specs validate: each experiment declares the Spec
//     knobs it consumes (Experiment.Fields), and assigning any other
//     knob is an error instead of a silently ignored no-op
//     (Spec.Validate, wired into Run and therefore Suite.Run).
//   - Re-exports of the scenario layer's scheme registry
//     (ResolveScheme with γ / DT α / overcommitment / prebuffering
//     options), Result envelope (scalar metrics map + named series,
//     JSON/TSV encoders), and lab harness, so existing callers keep one
//     import.
//
// # Invariants
//
//   - Each Run builds its own network and sim.Engine, so suite results
//     are deterministic per seed regardless of worker count: a parallel
//     suite is byte-identical to a serial one
//     (TestSuiteParallelMatchesSerial), including under multipath
//     routing and scheduled link failures.
//   - The scenario presets reproduce the pre-redesign per-runner code
//     byte-for-byte: every registered experiment's seed-1 JSON matches
//     the recorded goldens (TestGoldenCompatibility,
//     testdata/golden/).
//   - Workload randomness is seeded independently of the scheme, so two
//     schemes at the same seed see the same trace.
//   - Packet pooling is an allocation strategy, never a model change:
//     pooled and pool-disabled runs encode to identical bytes
//     (TestSuitePooledMatchesUnpooled).
//
// cmd/figures renders figures from suites; cmd/sweep runs the γ study
// as one suite; cmd/powersim runs a single spec — or a composed
// scenario — from flags; bench_test.go regenerates headline metrics
// under `go test -bench`; EXPERIMENTS.md records the experiment↔figure
// index and paper-vs-measured numbers.
package exp
