// Package exp is the experiment harness behind the paper's evaluation
// (§4–§5, Appendix D) and the repository's extension scenarios. It
// exposes one unified API:
//
//   - A scheme registry: ResolveScheme(name, opts...) returns the
//     congestion-control scheme plus the switch features it needs, with
//     ablation variants (γ, DT α, HOMA overcommitment, reTCP
//     prebuffering) composed as functional options instead of string
//     parsing. Unknown names return errors, not panics.
//   - An experiment registry: every scenario — the paper's incast,
//     fairness, websearch, load-sweep and rdcn, plus the multipath lab's
//     permutation, asymmetry and failover — is a registered Experiment;
//     NewSpec + Run execute one, and a Suite executes many concurrently
//     over a GOMAXPROCS-sized worker pool.
//   - A common Result envelope (scalar metrics map + named series) with
//     JSON and TSV encoders.
//
// # Invariants
//
//   - Each Run builds its own network and sim.Engine, so suite results
//     are deterministic per seed regardless of worker count: a parallel
//     suite is byte-identical to a serial one
//     (TestSuiteParallelMatchesSerial), including under multipath
//     routing and scheduled link failures.
//   - Workload randomness is seeded independently of the scheme, so two
//     schemes at the same seed see the same trace.
//   - Packet pooling is an allocation strategy, never a model change:
//     pooled and pool-disabled runs encode to identical bytes
//     (TestSuitePooledMatchesUnpooled).
//
// cmd/figures renders figures from suites; cmd/sweep runs the γ study
// as one suite; cmd/powersim runs a single spec from flags;
// bench_test.go regenerates headline metrics under `go test -bench`;
// EXPERIMENTS.md records the experiment↔figure index and
// paper-vs-measured numbers.
package exp
