package exp

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/rdcn"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/units"
)

// RDCNResult is the typed payload behind Figure 8.
type RDCNResult struct {
	Scheme string

	// Fig. 8a series for the monitored ToR pair.
	T          []sim.Time
	Throughput []float64 // receiver-side Gbps
	VOQKB      []float64 // ToR0's VOQ toward ToR1

	// Circuit utilization of the monitored pair's days (the paper's
	// 80–85% headline).
	CircuitUtilization float64
	// Fig. 8b metric: tail (p99) per-packet queuing latency in µs.
	TailQueuingUs float64
	// Mean goodput across the run.
	AvgGoodputGbps float64
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "rdcn",
		Figures: "Fig. 8 (reconfigurable DCN case study, §5)",
		Normalize: func(s *Spec) {
			if s.Tors == 0 {
				// 16 keeps the rotor week (3.7 ms) comfortably longer
				// than reTCP's 1800 µs prebuffering, like the paper's
				// 25-ToR setup.
				s.Tors = 16
			}
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 4
			}
			if s.PacketRate == 0 {
				s.PacketRate = 25 * units.Gbps
			}
			if s.Weeks == 0 {
				s.Weeks = 3
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 10 * sim.Microsecond
			}
		},
		Run:      runRDCN,
		Supports: rdcnSupports,
	})
}

// rdcnSupports restricts the case study to the Fig. 8 competitors.
func rdcnSupports(scheme Scheme) error {
	switch scheme.Kind {
	case KindPowerTCP, KindReTCP:
		return nil
	case KindCC:
		if scheme.Name == HPCC {
			return nil
		}
	}
	return fmt.Errorf("rdcn does not support scheme %q (supported: %s, %s, retcp-<µs>)",
		scheme.Name, PowerTCP, HPCC)
}

// runRDCN reproduces Figure 8 for one scheme. All servers of ToR 0 send
// long flows to the corresponding servers of ToR 1; the monitored
// circuit is ToR 0's, which reaches ToR 1 once per rotor week.
func runRDCN(s Spec, scheme Scheme) (*Result, error) {
	net := rdcn.Build(rdcn.Config{
		Tors:          s.Tors,
		ServersPerTor: s.ServersPerTor,
		PacketRate:    s.PacketRate,
		Prebuffer:     scheme.PrebufferFor,
		INT:           true,
	})

	// Per-packet latency collection at the receiving rack: queuing
	// latency is one-way delay minus the minimum observed (propagation +
	// serialization floor).
	var delays stats.Dist
	for _, h := range net.HostsOfTor(1) {
		h := h
		h.OnData = func(p *packet.Packet) {
			delays.Add(net.Eng.Now().Sub(p.SentAt).Seconds())
		}
	}

	// Long flows: server i of ToR0 → server i of ToR1.
	srcs := net.HostsOfTor(0)
	dsts := net.HostsOfTor(1)
	nFlows := len(srcs)
	for i, src := range srcs {
		alg := rdcnAlg(scheme, net, nFlows)
		src.StartFlow(net.NextFlowID(), dsts[i].ID(), transport.Unbounded, alg, 0)
	}

	horizon := sim.Time(sim.Duration(s.Weeks) * net.Sched.Week())
	rr := &RDCNResult{Scheme: scheme.Name}
	var lastRx int64
	rxTotal := func() int64 {
		var n int64
		for _, h := range dsts {
			n += h.ReceivedTotal()
		}
		return n
	}
	SampleEvery(net.Eng, s.SamplePeriod, horizon, func(now sim.Time) {
		cur := rxTotal()
		rr.T = append(rr.T, now)
		rr.Throughput = append(rr.Throughput, stats.Gbps(cur-lastRx, s.SamplePeriod))
		rr.VOQKB = append(rr.VOQKB, float64(net.Tors[0].VOQBytes(1))/1024)
		lastRx = cur
	})

	// Track circuit bytes of the monitored pair: snapshot the circuit
	// port's counter at each day boundary of matching ToR0→ToR1.
	var dayBytes []int64
	for w := 0; w < s.Weeks; w++ {
		start := net.Sched.NextDayStart(0, 1, sim.Time(sim.Duration(w)*net.Sched.Week()))
		var atStart uint64
		net.Eng.At(start, func() { atStart = net.Tors[0].CircuitPort().TxBytes() })
		net.Eng.At(start.Add(net.Sched.Day), func() {
			dayBytes = append(dayBytes, int64(net.Tors[0].CircuitPort().TxBytes()-atStart))
		})
	}

	net.Eng.RunUntil(horizon)

	// Circuit utilization across monitored days.
	cap := net.Cfg.CircuitRate.Bytes(net.Sched.Day)
	var used int64
	for _, b := range dayBytes {
		used += b
	}
	if len(dayBytes) > 0 {
		rr.CircuitUtilization = float64(used) / float64(cap*int64(len(dayBytes)))
	}
	// Tail queuing latency: p99 one-way delay above the observed floor.
	if delays.Count() > 0 {
		floor := delays.Percentile(0)
		rr.TailQueuingUs = (delays.Percentile(99) - floor) * 1e6
	}
	rr.AvgGoodputGbps = stats.Gbps(rxTotal(), horizon.Duration())

	res := &Result{Raw: rr}
	res.SetScalar("circuit_utilization", rr.CircuitUtilization)
	res.SetScalar("engine_steps", float64(net.Eng.Steps()))
	res.SetScalar("tail_queuing_us", rr.TailQueuingUs)
	res.SetScalar("avg_goodput_gbps", rr.AvgGoodputGbps)
	res.AddSeries(TimeSeries("throughput_gbps", rr.T, rr.Throughput))
	res.AddSeries(TimeSeries("voq_kb", rr.T, rr.VOQKB))
	return res, nil
}

// rdcnAlg builds the per-flow algorithm for the RDCN run. PowerTCP and
// HPCC limit window updates to once per RTT for the fair comparison with
// reTCP (§5); both are capped at the 25G host BDP, which is all one NIC
// can contribute toward filling the 100G circuit.
func rdcnAlg(scheme Scheme, net *rdcn.Network, flows int) cc.Algorithm {
	switch scheme.Kind {
	case KindPowerTCP:
		return core.New(core.Config{Gamma: scheme.Gamma, UpdatePerRTT: true})
	case KindReTCP:
		return &rdcn.ReTCP{
			Sched:        net.Sched,
			SrcTor:       0,
			DstTor:       1,
			Prebuffer:    scheme.PrebufferFor,
			PacketRate:   net.Cfg.PacketRate,
			CircuitRate:  net.Cfg.CircuitRate,
			FlowsSharing: flows,
		}
	default: // hpcc
		return cc.NewHPCC()
	}
}
