package exp

import (
	"repro/internal/packet"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// RDCNResult is the typed payload behind Figure 8.
type RDCNResult struct {
	Scheme string

	// Fig. 8a series for the monitored ToR pair.
	T          []sim.Time
	Throughput []float64 // receiver-side Gbps
	VOQKB      []float64 // ToR0's VOQ toward ToR1

	// Circuit utilization of the monitored pair's days (the paper's
	// 80–85% headline).
	CircuitUtilization float64
	// Fig. 8b metric: tail (p99) per-packet queuing latency in µs.
	TailQueuingUs float64
	// Mean goodput across the run.
	AvgGoodputGbps float64
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "rdcn",
		Figures: "Fig. 8 (reconfigurable DCN case study, §5)",
		Fields: []string{FieldTors, FieldServersPerTor, FieldPacketRate,
			FieldWeeks, FieldSamplePeriod},
		Normalize: func(s *Spec) {
			if s.Tors == 0 {
				// 16 keeps the rotor week (3.7 ms) comfortably longer
				// than reTCP's 1800 µs prebuffering, like the paper's
				// 25-ToR setup.
				s.Tors = 16
			}
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 4
			}
			if s.PacketRate == 0 {
				s.PacketRate = 25 * units.Gbps
			}
			if s.Weeks == 0 {
				s.Weeks = 3
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 10 * sim.Microsecond
			}
		},
		Run:      runRDCN,
		Supports: rdcnSupports,
	})
}

// rdcnSupports restricts the case study to the Fig. 8 competitors; the
// scheme whitelist itself lives with the rotor launcher
// (scenario.RotorSupports), so the preset and the scenario layer
// cannot drift apart.
func rdcnSupports(scheme Scheme) error {
	return scenario.RotorSupports(scheme)
}

// runRDCN reproduces Figure 8 for one scheme as a declarative scenario:
// all servers of ToR 0 send long flows to the corresponding servers of
// ToR 1 on the rotor network; the monitored circuit is ToR 0's, which
// reaches ToR 1 once per rotor week.
func runRDCN(s Spec, scheme Scheme) (*Result, error) {
	return scenario.Run(scenario.Scenario{
		Name:   "rdcn",
		Scheme: scheme,
		Seed:   s.Seed,
		Topology: scenario.RotorTopology{
			Tors:          s.Tors,
			ServersPerTor: s.ServersPerTor,
			PacketRate:    s.PacketRate,
			Weeks:         s.Weeks,
		},
		Traffic: []scenario.Traffic{scenario.RackPairs{
			FromRack: scenario.RackStart(0),
			ToRack:   scenario.RackStart(1),
		}},
		Probes: []scenario.Probe{&rotorPanel{
			srcTor: 0, dstTor: 1, weeks: s.Weeks, period: s.SamplePeriod,
		}},
	})
}

// rotorPanel is the Figure 8 probe: throughput and VOQ series for the
// monitored ToR pair, per-packet queuing delays at the receiving rack,
// and circuit-byte snapshots at the monitored pair's day boundaries.
type rotorPanel struct {
	srcTor, dstTor int
	weeks          int
	period         sim.Duration

	rr       *RDCNResult
	delays   stats.Dist
	dayBytes []int64
	lastRx   int64
}

func (p *rotorPanel) rxTotal(env *scenario.Env) int64 {
	var n int64
	for _, h := range env.Rotor.HostsOfTor(p.dstTor) {
		n += h.ReceivedTotal()
	}
	return n
}

func (p *rotorPanel) Install(env *scenario.Env) error {
	net := env.Rotor
	// Per-packet latency collection at the receiving rack: queuing
	// latency is one-way delay minus the minimum observed (propagation +
	// serialization floor).
	for _, h := range net.HostsOfTor(p.dstTor) {
		h := h
		h.OnData = func(pkt *packet.Packet) {
			p.delays.Add(net.Eng.Now().Sub(pkt.SentAt).Seconds())
		}
	}

	p.rr = &RDCNResult{Scheme: env.Scheme.Name}
	scenario.SampleEvery(net.Eng, p.period, env.Horizon, func(now sim.Time) {
		cur := p.rxTotal(env)
		p.rr.T = append(p.rr.T, now)
		p.rr.Throughput = append(p.rr.Throughput, stats.Gbps(cur-p.lastRx, p.period))
		p.rr.VOQKB = append(p.rr.VOQKB, float64(net.Tors[p.srcTor].VOQBytes(p.dstTor))/1024)
		p.lastRx = cur
	})

	// Track circuit bytes of the monitored pair: snapshot the circuit
	// port's counter at each day boundary of matching ToR0→ToR1.
	for w := 0; w < p.weeks; w++ {
		start := net.Sched.NextDayStart(p.srcTor, p.dstTor, sim.Time(sim.Duration(w)*net.Sched.Week()))
		var atStart uint64
		net.Eng.At(start, func() { atStart = net.Tors[p.srcTor].CircuitPort().TxBytes() })
		net.Eng.At(start.Add(net.Sched.Day), func() {
			p.dayBytes = append(p.dayBytes, int64(net.Tors[p.srcTor].CircuitPort().TxBytes()-atStart))
		})
	}
	return nil
}

func (p *rotorPanel) Finalize(env *scenario.Env, res *Result) error {
	net := env.Rotor
	rr := p.rr

	// Circuit utilization across monitored days.
	cap := net.Cfg.CircuitRate.Bytes(net.Sched.Day)
	var used int64
	for _, b := range p.dayBytes {
		used += b
	}
	if len(p.dayBytes) > 0 {
		rr.CircuitUtilization = float64(used) / float64(cap*int64(len(p.dayBytes)))
	}
	// Tail queuing latency: p99 one-way delay above the observed floor.
	if p.delays.Count() > 0 {
		floor := p.delays.Percentile(0)
		rr.TailQueuingUs = (p.delays.Percentile(99) - floor) * 1e6
	}
	rr.AvgGoodputGbps = stats.Gbps(p.rxTotal(env), env.Horizon.Duration())

	res.Raw = rr
	res.SetScalar("circuit_utilization", rr.CircuitUtilization)
	res.SetScalar("engine_steps", float64(net.Eng.Steps()))
	res.SetScalar("tail_queuing_us", rr.TailQueuingUs)
	res.SetScalar("avg_goodput_gbps", rr.AvgGoodputGbps)
	res.AddSeries(scenario.TimeSeries("throughput_gbps", rr.T, rr.Throughput))
	res.AddSeries(scenario.TimeSeries("voq_kb", rr.T, rr.VOQKB))
	return nil
}
