package exp

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/rdcn"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/units"
)

// RDCN scheme names (Fig. 8 legend). reTCP variants carry their
// prebuffering in microseconds.
const (
	ReTCP600  = "retcp-600"
	ReTCP1800 = "retcp-1800"
)

// RDCNOptions configures the reconfigurable-DCN case study (§5). All
// servers of ToR 0 send long flows to the corresponding servers of ToR
// 1; the monitored circuit is ToR 0's, which reaches ToR 1 once per
// rotor week.
type RDCNOptions struct {
	Scheme        string        // powertcp | hpcc | retcp-600 | retcp-1800
	Tors          int           // default 8 for benches (paper: 25)
	ServersPerTor int           // default 4 (paper: 10)
	PacketRate    units.BitRate // Fig. 8b sweeps 25/50 Gbps
	Weeks         int           // rotor weeks to simulate (default 3)
	SamplePeriod  sim.Duration  // default 10 µs
	Seed          int64
}

func (o *RDCNOptions) fillDefaults() {
	if o.Tors == 0 {
		// 16 keeps the rotor week (3.7 ms) comfortably longer than
		// reTCP's 1800 µs prebuffering, like the paper's 25-ToR setup.
		o.Tors = 16
	}
	if o.ServersPerTor == 0 {
		o.ServersPerTor = 4
	}
	if o.PacketRate == 0 {
		o.PacketRate = 25 * units.Gbps
	}
	if o.Weeks == 0 {
		o.Weeks = 3
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = 10 * sim.Microsecond
	}
}

// RDCNResult is the data behind Figure 8.
type RDCNResult struct {
	Scheme string

	// Fig. 8a series for the monitored ToR pair.
	T          []sim.Time
	Throughput []float64 // receiver-side Gbps
	VOQKB      []float64 // ToR0's VOQ toward ToR1

	// Circuit utilization of the monitored pair's days (the paper's
	// 80–85% headline).
	CircuitUtilization float64
	// Fig. 8b metric: tail (p99) per-packet queuing latency in µs.
	TailQueuingUs float64
	// Mean goodput across the run.
	AvgGoodputGbps float64
}

// RunRDCN reproduces Figure 8 for one scheme.
func RunRDCN(o RDCNOptions) RDCNResult {
	o.fillDefaults()
	prebuffer := sim.Duration(0)
	switch {
	case strings.HasPrefix(o.Scheme, "retcp-"):
		var us int
		if _, err := fmt.Sscanf(o.Scheme, "retcp-%d", &us); err != nil {
			panic("exp: bad reTCP scheme " + o.Scheme)
		}
		prebuffer = sim.Duration(us) * sim.Microsecond
	case o.Scheme == PowerTCP, o.Scheme == HPCC:
	default:
		panic("exp: unsupported RDCN scheme " + o.Scheme)
	}

	net := rdcn.Build(rdcn.Config{
		Tors:          o.Tors,
		ServersPerTor: o.ServersPerTor,
		PacketRate:    o.PacketRate,
		Prebuffer:     prebuffer,
		INT:           true,
	})

	// Per-packet latency collection at the receiving rack: queuing
	// latency is one-way delay minus the minimum observed (propagation +
	// serialization floor).
	var delays stats.Dist
	for _, h := range net.HostsOfTor(1) {
		h := h
		h.OnData = func(p *packet.Packet) {
			delays.Add(net.Eng.Now().Sub(p.SentAt).Seconds())
		}
	}

	// Long flows: server i of ToR0 → server i of ToR1.
	srcs := net.HostsOfTor(0)
	dsts := net.HostsOfTor(1)
	nFlows := len(srcs)
	for i, src := range srcs {
		alg := rdcnAlg(o.Scheme, net, prebuffer, nFlows)
		src.StartFlow(net.NextFlowID(), dsts[i].ID(), transport.Unbounded, alg, 0)
	}

	horizon := sim.Time(sim.Duration(o.Weeks) * net.Sched.Week())
	res := RDCNResult{Scheme: o.Scheme}
	var lastRx int64
	rxTotal := func() int64 {
		var n int64
		for _, h := range dsts {
			n += h.ReceivedTotal()
		}
		return n
	}
	SampleEvery(net.Eng, o.SamplePeriod, horizon, func(now sim.Time) {
		cur := rxTotal()
		res.T = append(res.T, now)
		res.Throughput = append(res.Throughput, stats.Gbps(cur-lastRx, o.SamplePeriod))
		res.VOQKB = append(res.VOQKB, float64(net.Tors[0].VOQBytes(1))/1024)
		lastRx = cur
	})

	// Track circuit bytes of the monitored pair: snapshot the circuit
	// port's counter at each day boundary of matching ToR0→ToR1.
	var dayBytes []int64
	for w := 0; w < o.Weeks; w++ {
		start := net.Sched.NextDayStart(0, 1, sim.Time(sim.Duration(w)*net.Sched.Week()))
		var atStart uint64
		net.Eng.At(start, func() { atStart = net.Tors[0].CircuitPort().TxBytes() })
		net.Eng.At(start.Add(net.Sched.Day), func() {
			dayBytes = append(dayBytes, int64(net.Tors[0].CircuitPort().TxBytes()-atStart))
		})
	}

	net.Eng.RunUntil(horizon)

	// Circuit utilization across monitored days.
	cap := net.Cfg.CircuitRate.Bytes(net.Sched.Day)
	var used int64
	for _, b := range dayBytes {
		used += b
	}
	if len(dayBytes) > 0 {
		res.CircuitUtilization = float64(used) / float64(cap*int64(len(dayBytes)))
	}
	// Tail queuing latency: p99 one-way delay above the observed floor.
	if delays.Count() > 0 {
		floor := delays.Percentile(0)
		res.TailQueuingUs = (delays.Percentile(99) - floor) * 1e6
	}
	res.AvgGoodputGbps = stats.Gbps(rxTotal(), horizon.Duration())
	return res
}

// rdcnAlg builds the per-flow algorithm for the RDCN run. PowerTCP and
// HPCC limit window updates to once per RTT for the fair comparison with
// reTCP (§5); both are capped at the 25G host BDP, which is all one NIC
// can contribute toward filling the 100G circuit.
func rdcnAlg(scheme string, net *rdcn.Network, prebuffer sim.Duration, flows int) cc.Algorithm {
	switch scheme {
	case PowerTCP:
		return core.New(core.Config{UpdatePerRTT: true})
	case HPCC:
		return cc.NewHPCC()
	default: // retcp-*
		return &rdcn.ReTCP{
			Sched:        net.Sched,
			SrcTor:       0,
			DstTor:       1,
			Prebuffer:    prebuffer,
			PacketRate:   net.Cfg.PacketRate,
			CircuitRate:  net.Cfg.CircuitRate,
			FlowsSharing: flows,
		}
	}
}
