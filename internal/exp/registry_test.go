package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// The registry returns errors — never panics — for unknown names and
// malformed family parameters.
func TestResolveSchemeErrors(t *testing.T) {
	cases := []struct {
		name string
		want string // substring of the error
	}{
		{"bogus", "unknown scheme"},
		{"homa-oc0", "must be ≥1"},
		{"homa-oc-3", "must be ≥1"},
		{"homa-ocx", "malformed"},
		{"retcp-", "malformed"},
		{"retcp-0", "must be positive"},
		{"retcp-abc", "malformed"},
	}
	for _, c := range cases {
		_, err := ResolveScheme(c.name)
		if err == nil {
			t.Fatalf("ResolveScheme(%q) accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("ResolveScheme(%q) = %v, want %q", c.name, err, c.want)
		}
	}
}

// Options validate their target scheme.
func TestSchemeOptionsRejectWrongTarget(t *testing.T) {
	if _, err := ResolveScheme(Homa, Gamma(0.5)); err == nil {
		t.Fatal("γ accepted on HOMA")
	}
	if _, err := ResolveScheme(PowerTCP, Overcommit(2)); err == nil {
		t.Fatal("overcommit accepted on PowerTCP")
	}
	if _, err := ResolveScheme(PowerTCP, Prebuffer(sim.Millisecond)); err == nil {
		t.Fatal("prebuffer accepted on PowerTCP")
	}
	if _, err := ResolveScheme(Timely, PerRTT(true)); err == nil {
		t.Fatal("per-RTT accepted on TIMELY")
	}
	if _, err := ResolveScheme(PowerTCP, Gamma(1.5)); err == nil {
		t.Fatal("γ > 1 accepted")
	}
	if _, err := ResolveScheme(PowerTCP, Alpha(-1)); err == nil {
		t.Fatal("negative DT α accepted")
	}
}

// Composed γ / per-RTT overrides must reach the algorithm the scheme
// builds, and α must reach the scheme's buffer configuration.
func TestSchemeOptionCompositionReachesAlgorithm(t *testing.T) {
	s, err := ResolveScheme(PowerTCP, Gamma(0.55), PerRTT(true), Alpha(2))
	if err != nil {
		t.Fatal(err)
	}
	alg, ok := s.Alg().(*core.PowerTCP)
	if !ok {
		t.Fatalf("powertcp built %T", s.Alg())
	}
	if cfg := alg.Config(); cfg.Gamma != 0.55 || !cfg.UpdatePerRTT {
		t.Fatalf("built config = %+v, want γ=0.55 perRTT=true", cfg)
	}
	if s.DTAlpha != 2 {
		t.Fatalf("DT α = %v, want 2", s.DTAlpha)
	}

	th, err := ResolveScheme(ThetaPowerTCP, Gamma(0.4))
	if err != nil {
		t.Fatal(err)
	}
	talg, ok := th.Alg().(*core.ThetaPowerTCP)
	if !ok {
		t.Fatalf("theta-powertcp built %T", th.Alg())
	}
	if cfg := talg.Config(); cfg.Gamma != 0.4 {
		t.Fatalf("theta built config = %+v, want γ=0.4", cfg)
	}

	ho, err := ResolveScheme(Homa, Overcommit(5))
	if err != nil {
		t.Fatal(err)
	}
	if ho.Overcommit != 5 {
		t.Fatalf("homa overcommit = %d", ho.Overcommit)
	}

	re, err := ResolveScheme(ReTCP600, Prebuffer(900*sim.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if re.PrebufferFor != 900*sim.Microsecond {
		t.Fatalf("prebuffer = %v", re.PrebufferFor)
	}
}

// An option-composed γ must actually change the simulation, matching the
// equivalent family-name resolution end to end.
func TestGammaOptionChangesRun(t *testing.T) {
	base := mustRun(t, NewSpec("incast", PowerTCP,
		WithFanIn(10), WithWindow(sim.Millisecond), WithSeed(4)))
	low := mustRun(t, NewSpec("incast", PowerTCP,
		WithSchemeOptions(Gamma(0.1)),
		WithFanIn(10), WithWindow(sim.Millisecond), WithSeed(4)))
	if base.Scalar("tail_mean_queue_kb") == low.Scalar("tail_mean_queue_kb") &&
		base.Scalar("peak_queue_kb") == low.Scalar("peak_queue_kb") {
		t.Fatal("γ=0.1 produced a run identical to the default γ")
	}
}

// reTCP resolves globally (it's a legitimate rdcn scheme) but provides
// no per-flow algorithm builder; every other experiment must reject it
// with an error rather than crash on the nil builder.
func TestNonRDCNExperimentsRejectReTCP(t *testing.T) {
	for _, name := range []string{"incast", "fairness", "websearch", "load-sweep"} {
		_, err := Run(NewSpec(name, ReTCP600))
		if err == nil || !strings.Contains(err.Error(), "does not support") {
			t.Fatalf("%s accepted retcp-600: %v", name, err)
		}
	}
}

// Run reports unknown experiments as errors, not panics.
func TestRunUnknownExperiment(t *testing.T) {
	_, err := Run(NewSpec("bogus-experiment", PowerTCP))
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
	_, err = Run(NewSpec("incast", "bogus-scheme"))
	if err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("err = %v", err)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	names := ExperimentNames()
	for _, want := range []string{"incast", "fairness", "websearch", "rdcn", "load-sweep"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("experiment %q missing from registry: %v", want, names)
		}
	}
	if err := RegisterExperiment(Experiment{Name: "incast", Run: runIncast}); err == nil {
		t.Fatal("duplicate experiment registration accepted")
	}
	if err := RegisterExperiment(Experiment{Name: "no-run"}); err == nil {
		t.Fatal("experiment without a run function accepted")
	}
}
