package exp

import (
	"testing"

	"repro/internal/sim"
)

func TestWebSearchIncastOverlay(t *testing.T) {
	base := WebSearchOptions{
		Scheme: PowerTCP, Load: 0.1, ServersPerTor: 4,
		Duration: 3 * sim.Millisecond, Drain: 2 * sim.Millisecond, Seed: 5,
	}
	plain := RunWebSearch(base)
	withIncast := base
	withIncast.IncastRate = 2000 // ≈6 requests in the horizon
	withIncast.IncastSize = 1 << 20
	withIncast.IncastFanIn = 8
	burst := RunWebSearch(withIncast)
	if burst.Started <= plain.Started {
		t.Fatalf("incast overlay added no flows: %d vs %d", burst.Started, plain.Started)
	}
	// Each request fans out to IncastFanIn responders.
	extra := burst.Started - plain.Started
	if extra%withIncast.IncastFanIn != 0 {
		t.Fatalf("overlay flows %d not a multiple of fan-in %d", extra, withIncast.IncastFanIn)
	}
}

func TestLoadSweepShapes(t *testing.T) {
	rs := LoadSweep(PowerTCP, []float64{0.1, 0.3}, WebSearchOptions{
		ServersPerTor: 4, Duration: 3 * sim.Millisecond,
		Drain: 2 * sim.Millisecond, Seed: 6,
	})
	if len(rs) != 2 || rs[0].Load != 0.1 || rs[1].Load != 0.3 {
		t.Fatalf("sweep shape wrong: %+v", rs)
	}
	if rs[1].Started <= rs[0].Started {
		t.Fatal("higher load generated fewer flows")
	}
}

func TestFairnessHomaOvercommitRuns(t *testing.T) {
	for _, oc := range []int{1, 4} {
		r := RunFairness(FairnessOptions{
			Scheme: SchemeByName(Homa).Name, Seed: 3,
			Window: 4 * sim.Millisecond,
		})
		if len(r.T) == 0 {
			t.Fatalf("oc %d: empty series", oc)
		}
	}
}
