package exp

import (
	"testing"

	"repro/internal/sim"
)

func TestWebSearchIncastOverlay(t *testing.T) {
	base := []Option{
		WithLoad(0.1), WithServersPerTor(4),
		WithDuration(3 * sim.Millisecond), WithDrain(2 * sim.Millisecond), WithSeed(5),
	}
	plain := mustRun(t, NewSpec("websearch", PowerTCP, base...)).Raw.(*WebSearchResult)
	const fanIn = 8
	withIncast := append(append([]Option{}, base...),
		WithIncastOverlay(2000 /* ≈6 requests in the horizon */, 1<<20, fanIn))
	burst := mustRun(t, NewSpec("websearch", PowerTCP, withIncast...)).Raw.(*WebSearchResult)
	if burst.Started <= plain.Started {
		t.Fatalf("incast overlay added no flows: %d vs %d", burst.Started, plain.Started)
	}
	// Each request fans out to IncastFanIn responders.
	extra := burst.Started - plain.Started
	if extra%fanIn != 0 {
		t.Fatalf("overlay flows %d not a multiple of fan-in %d", extra, fanIn)
	}
}

func TestLoadSweepShapes(t *testing.T) {
	res := mustRun(t, NewSpec("load-sweep", PowerTCP,
		WithLoads(0.1, 0.3), WithServersPerTor(4),
		WithDuration(3*sim.Millisecond), WithDrain(2*sim.Millisecond), WithSeed(6)))
	rs := res.Raw.([]*WebSearchResult)
	if len(rs) != 2 || rs[0].Load != 0.1 || rs[1].Load != 0.3 {
		t.Fatalf("sweep shape wrong: %+v", rs)
	}
	if rs[1].Started <= rs[0].Started {
		t.Fatal("higher load generated fewer flows")
	}
	// The envelope exposes the sweep as load-indexed series.
	if len(res.Series) != 2 || res.Series[0].XLabel != "load" {
		t.Fatalf("sweep series wrong: %+v", res.Series)
	}
	if got := len(res.Series[0].Points); got != 2 {
		t.Fatalf("sweep series has %d points", got)
	}
}

func TestFairnessHomaOvercommitRuns(t *testing.T) {
	for _, oc := range []int{1, 4} {
		res := mustRun(t, NewSpec("fairness", Homa,
			WithSchemeOptions(Overcommit(oc)),
			WithWindow(4*sim.Millisecond), WithSeed(3)))
		r := res.Raw.(*FairnessResult)
		if len(r.T) == 0 {
			t.Fatalf("oc %d: empty series", oc)
		}
	}
}
