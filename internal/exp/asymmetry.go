package exp

import (
	"fmt"

	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/units"
	"repro/internal/workload"
)

// AsymmetryResult is the typed payload of the unequal-spine experiment:
// how a routing strategy shares an asymmetric core, per spine.
type AsymmetryResult struct {
	Scheme     string
	Routing    string
	Flows      int
	SpineGbps  []float64 // configured per-spine capacity
	SpineUtil  []float64 // fraction of that capacity actually carried
	AggGbps    float64   // aggregate goodput over the window
	Jain       float64   // fairness across per-flow goodputs
	Efficiency float64   // AggGbps / min(total spine, offered) capacity
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "asymmetry",
		Figures: "Supplementary (multipath lab): ECMP vs WCMP across unequal spine capacities",
		Normalize: func(s *Spec) {
			if s.Tors == 0 {
				s.Tors = 2 // leaves
			}
			if s.Spines == 0 {
				s.Spines = 2
			}
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 8
			}
			if len(s.SpineRates) == 0 {
				// One full-rate spine, one at half rate: the classic
				// heterogeneous-upgrade fabric WCMP papers target.
				s.SpineRates = []units.BitRate{100 * units.Gbps, 50 * units.Gbps}
			}
			if s.Window == 0 {
				s.Window = 4 * sim.Millisecond
			}
		},
		Run: runAsymmetry,
	})
}

// runAsymmetry sends one long flow from every server on the first leaf
// to its counterpart on the last leaf, so all traffic crosses the
// spines. Plain ECMP hashes flows uniformly and overloads the slow
// spine; weighted ECMP shares in proportion to capacity.
func runAsymmetry(s Spec, scheme Scheme) (*Result, error) {
	strategy, err := route.StrategyByName(s.Routing)
	if err != nil {
		return nil, err
	}
	if s.Tors < 2 {
		return nil, fmt.Errorf("asymmetry needs ≥2 leaves, got %d", s.Tors)
	}
	cfg := topo.LeafSpineConfig{
		Leaves:         s.Tors,
		Spines:         s.Spines,
		ServersPerLeaf: s.ServersPerTor,
		SpineRates:     s.SpineRates,
	}
	lab := NewLeafSpineLab(scheme, cfg, s.Seed, strategy)
	defer lab.Release()
	net := lab.Net
	ls := lab.LSCfg

	// Senders on leaf 0, receivers on the last leaf.
	perLeaf := ls.ServersPerLeaf
	rxBase := (ls.Leaves - 1) * perLeaf
	for i := 0; i < perLeaf; i++ {
		lab.Launch(workload.Flow{Start: 0, Src: i, Dst: rxBase + i, Size: lab.UnboundedSize()})
	}

	net.Eng.RunUntil(sim.Time(s.Window))

	ar := &AsymmetryResult{Scheme: scheme.Name, Routing: strategy.Name(), Flows: perLeaf}
	var sum, sumSq float64
	var aggBytes int64
	for i := 0; i < perLeaf; i++ {
		g := stats.Gbps(lab.ReceivedTotal(rxBase+i), s.Window)
		aggBytes += lab.ReceivedTotal(rxBase + i)
		sum += g
		sumSq += g * g
	}
	ar.AggGbps = stats.Gbps(aggBytes, s.Window)
	if sumSq > 0 {
		ar.Jain = sum * sum / (float64(perLeaf) * sumSq)
	}

	// Spine utilization, measured on leaf 0's uplinks (ports follow the
	// servers, in spine order).
	var totalSpine units.BitRate
	for sp := 0; sp < ls.Spines; sp++ {
		rate := ls.SpineRate(sp)
		totalSpine += rate
		pt := net.Switches[ls.LeafSwitch(0)].Ports()[perLeaf+sp]
		carried := stats.Gbps(int64(pt.TxBytes()), s.Window)
		ar.SpineGbps = append(ar.SpineGbps, float64(rate/units.Gbps))
		ar.SpineUtil = append(ar.SpineUtil, carried/float64(rate/units.Gbps))
	}
	offered := float64(perLeaf) * float64(lab.Net.HostRate/units.Gbps)
	capacity := float64(totalSpine / units.Gbps)
	if offered < capacity {
		capacity = offered
	}
	if capacity > 0 {
		ar.Efficiency = ar.AggGbps / capacity
	}

	res := &Result{Raw: ar}
	res.SetScalar("flows", float64(ar.Flows))
	res.SetScalar("agg_goodput_gbps", ar.AggGbps)
	res.SetScalar("jain", ar.Jain)
	res.SetScalar("efficiency", ar.Efficiency)
	res.SetScalar("engine_steps", float64(net.Eng.Steps()))
	spineSeries := Series{Name: "spine_util", XLabel: "spine"}
	for sp, u := range ar.SpineUtil {
		res.SetScalar(fmt.Sprintf("spine%d_util", sp), u)
		spineSeries.Points = append(spineSeries.Points, SeriesPoint{X: float64(sp), V: u})
	}
	res.AddSeries(spineSeries)
	return res, nil
}
