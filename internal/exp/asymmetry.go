package exp

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// AsymmetryResult is the typed payload of the unequal-spine experiment:
// how a routing strategy shares an asymmetric core, per spine.
type AsymmetryResult struct {
	Scheme     string
	Routing    string
	Flows      int
	SpineGbps  []float64 // configured per-spine capacity
	SpineUtil  []float64 // fraction of that capacity actually carried
	AggGbps    float64   // aggregate goodput over the window
	Jain       float64   // fairness across per-flow goodputs
	Efficiency float64   // AggGbps / min(total spine, offered) capacity
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "asymmetry",
		Figures: "Supplementary (multipath lab): ECMP vs WCMP across unequal spine capacities",
		Fields: []string{FieldTors, FieldSpines, FieldServersPerTor,
			FieldSpineRates, FieldRouting, FieldWindow},
		Normalize: func(s *Spec) {
			if s.Tors == 0 {
				s.Tors = 2 // leaves
			}
			if s.Spines == 0 {
				s.Spines = 2
			}
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 8
			}
			if len(s.SpineRates) == 0 {
				// One full-rate spine, one at half rate: the classic
				// heterogeneous-upgrade fabric WCMP papers target.
				s.SpineRates = []units.BitRate{100 * units.Gbps, 50 * units.Gbps}
			}
			if s.Window == 0 {
				s.Window = 4 * sim.Millisecond
			}
		},
		Run: runAsymmetry,
	})
}

// runAsymmetry sends one long flow from every server on the first leaf
// to its counterpart on the last leaf, so all traffic crosses the
// spines. Plain ECMP hashes flows uniformly and overloads the slow
// spine; weighted ECMP shares in proportion to capacity.
func runAsymmetry(s Spec, scheme Scheme) (*Result, error) {
	if s.Tors < 2 {
		return nil, fmt.Errorf("asymmetry needs ≥2 leaves, got %d", s.Tors)
	}
	return scenario.Run(scenario.Scenario{
		Name:   "asymmetry",
		Scheme: scheme,
		Seed:   s.Seed,
		Topology: scenario.LeafSpineTopology{
			Leaves:         s.Tors,
			Spines:         s.Spines,
			ServersPerLeaf: s.ServersPerTor,
			SpineRates:     s.SpineRates,
			Routing:        s.Routing,
		},
		Traffic: []scenario.Traffic{scenario.RackPairs{
			FromRack: scenario.RackStart(0),
			ToRack:   scenario.RackStart(s.Tors - 1),
		}},
		Probes: []scenario.Probe{&asymmetryPanel{window: s.Window}},
		Until:  s.Window,
	})
}

// asymmetryPanel summarizes the asymmetric-core run: aggregate goodput,
// per-flow fairness, per-spine utilization and capacity efficiency.
type asymmetryPanel struct {
	window sim.Duration
}

func (p *asymmetryPanel) Install(env *scenario.Env) error { return nil }

func (p *asymmetryPanel) Finalize(env *scenario.Env, res *Result) error {
	net := env.Lab.Net
	ls := env.Lab.LSCfg
	perLeaf := ls.ServersPerLeaf
	rxBase := (ls.Leaves - 1) * perLeaf

	ar := &AsymmetryResult{Scheme: env.Scheme.Name, Routing: net.Router.Strategy().Name(), Flows: perLeaf}
	var sum, sumSq float64
	var aggBytes int64
	for i := 0; i < perLeaf; i++ {
		g := stats.Gbps(env.Lab.ReceivedTotal(rxBase+i), p.window)
		aggBytes += env.Lab.ReceivedTotal(rxBase + i)
		sum += g
		sumSq += g * g
	}
	ar.AggGbps = stats.Gbps(aggBytes, p.window)
	if sumSq > 0 {
		ar.Jain = sum * sum / (float64(perLeaf) * sumSq)
	}

	// Spine utilization, measured on leaf 0's uplinks (ports follow the
	// servers, in spine order).
	var totalSpine units.BitRate
	for sp := 0; sp < ls.Spines; sp++ {
		rate := ls.SpineRate(sp)
		totalSpine += rate
		pt := net.Switches[ls.LeafSwitch(0)].Ports()[perLeaf+sp]
		carried := stats.Gbps(int64(pt.TxBytes()), p.window)
		ar.SpineGbps = append(ar.SpineGbps, float64(rate/units.Gbps))
		ar.SpineUtil = append(ar.SpineUtil, carried/float64(rate/units.Gbps))
	}
	offered := float64(perLeaf) * float64(net.HostRate/units.Gbps)
	capacity := float64(totalSpine / units.Gbps)
	if offered < capacity {
		capacity = offered
	}
	if capacity > 0 {
		ar.Efficiency = ar.AggGbps / capacity
	}

	res.Raw = ar
	res.SetScalar("flows", float64(ar.Flows))
	res.SetScalar("agg_goodput_gbps", ar.AggGbps)
	res.SetScalar("jain", ar.Jain)
	res.SetScalar("efficiency", ar.Efficiency)
	res.SetScalar("engine_steps", float64(net.Steps()))
	spineSeries := Series{Name: "spine_util", XLabel: "spine"}
	for sp, u := range ar.SpineUtil {
		res.SetScalar(fmt.Sprintf("spine%d_util", sp), u)
		spineSeries.Points = append(spineSeries.Points, SeriesPoint{X: float64(sp), V: u})
	}
	res.AddSeries(spineSeries)
	return nil
}
