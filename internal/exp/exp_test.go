package exp

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// mustRun executes a spec and fails the test on error.
func mustRun(t *testing.T, spec Spec) *Result {
	t.Helper()
	r, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSchemeRegistry(t *testing.T) {
	for _, name := range Schemes {
		s, err := ResolveScheme(name)
		if err != nil {
			t.Fatalf("ResolveScheme(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("scheme %q resolved to %q", name, s.Name)
		}
		if name == Homa && (!s.IsHoma() || !s.PrioQueues) {
			t.Fatal("homa scheme misconfigured")
		}
		if name == PowerTCP && !s.INT {
			t.Fatal("powertcp requires INT")
		}
		if name == DCQCN && !s.ECN.Enabled() {
			t.Fatal("dcqcn requires ECN")
		}
		if !s.IsHoma() && s.Alg == nil {
			t.Fatalf("scheme %q has no algorithm builder", name)
		}
	}
	if oc, err := ResolveScheme("homa-oc4"); err != nil || oc.Overcommit != 4 {
		t.Fatalf("homa-oc4 = %+v, %v", oc, err)
	}
	if re, err := ResolveScheme(ReTCP1800); err != nil || re.PrebufferFor != 1800*sim.Microsecond {
		t.Fatalf("retcp-1800 = %+v, %v", re, err)
	}
}

func TestSchemeNamesSortedAndComplete(t *testing.T) {
	names := SchemeNames()
	if len(names) < 10 {
		t.Fatalf("expected ≥10 registered schemes, got %v", names)
	}
	for _, want := range []string{PowerTCP, ThetaPowerTCP, HPCC, Timely, DCQCN, Swift, DCTCP, Reno, Cubic, Homa} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("scheme %q missing from SchemeNames() = %v", want, names)
		}
	}
}

func TestRegisterSchemeRejectsDuplicates(t *testing.T) {
	proto := func(string) (Scheme, error) { return Scheme{}, nil }
	if err := RegisterScheme(PowerTCP, proto); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := RegisterScheme("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
}

func TestIncastPowerTCPKeepsQueueShortAndThroughputHigh(t *testing.T) {
	res := mustRun(t, NewSpec("incast", PowerTCP,
		WithFanIn(10), WithWindow(3*sim.Millisecond), WithSeed(1)))
	r := res.Raw.(*IncastResult)
	if r.FanIn != 10 || len(r.Points) == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	// Fig. 4a: the incast resolves to near-zero queue without losing
	// throughput.
	if r.EndQueueKB > 40 {
		t.Fatalf("queue did not resolve: %vKB at end", r.EndQueueKB)
	}
	if r.AvgGoodputGbps < 18 {
		t.Fatalf("receiver goodput = %vGbps, want near 25", r.AvgGoodputGbps)
	}
	if r.Completed != 10 {
		t.Fatalf("completed %d/10 incast flows", r.Completed)
	}
	// The envelope carries the same headline metrics.
	if res.Scalar("peak_queue_kb") != r.PeakQueueKB {
		t.Fatalf("envelope peak %v != payload %v", res.Scalar("peak_queue_kb"), r.PeakQueueKB)
	}
	if res.Experiment != "incast" || res.Scheme != PowerTCP || res.Seed != 1 {
		t.Fatalf("envelope identity wrong: %+v", res)
	}
}

func TestIncastTimelyBuildsLargerQueues(t *testing.T) {
	pt := mustRun(t, NewSpec("incast", PowerTCP,
		WithFanIn(10), WithWindow(3*sim.Millisecond), WithSeed(1)))
	tm := mustRun(t, NewSpec("incast", Timely,
		WithFanIn(10), WithWindow(3*sim.Millisecond), WithSeed(1)))
	// Fig. 4c vs 4a: TIMELY does not control the queue; its peak must
	// exceed PowerTCP's by a clear margin.
	if tm.Scalar("peak_queue_kb") < 1.5*pt.Scalar("peak_queue_kb") {
		t.Fatalf("TIMELY peak %vKB vs PowerTCP %vKB: expected ≥1.5×",
			tm.Scalar("peak_queue_kb"), pt.Scalar("peak_queue_kb"))
	}
}

func TestIncastHomaRuns(t *testing.T) {
	res := mustRun(t, NewSpec("incast", Homa,
		WithFanIn(10), WithWindow(3*sim.Millisecond), WithSeed(1)))
	r := res.Raw.(*IncastResult)
	if r.Completed < 8 {
		t.Fatalf("HOMA completed %d/10", r.Completed)
	}
	if r.AvgGoodputGbps < 10 {
		t.Fatalf("HOMA goodput %v", r.AvgGoodputGbps)
	}
}

func TestFairnessPowerTCPSharesEvenly(t *testing.T) {
	res := mustRun(t, NewSpec("fairness", PowerTCP, WithSeed(2)))
	r := res.Raw.(*FairnessResult)
	if r.JainAvg < 0.85 {
		t.Fatalf("Jain index = %v, want ≥0.85", r.JainAvg)
	}
	if len(r.T) == 0 || len(r.Per) != 4 {
		t.Fatal("missing series")
	}
	if len(res.Series) != 4 {
		t.Fatalf("envelope series = %d, want one per flow", len(res.Series))
	}
}

func TestWebSearchSmokeAndOrdering(t *testing.T) {
	res := mustRun(t, NewSpec("websearch", PowerTCP,
		WithLoad(0.15), WithServersPerTor(4),
		WithDuration(4*sim.Millisecond), WithDrain(4*sim.Millisecond), WithSeed(3)))
	pt := res.Raw.(*WebSearchResult)
	if pt.Completed == 0 {
		t.Fatal("no flows completed")
	}
	if pt.ShortP999 < 1 {
		t.Fatalf("short p99.9 slowdown = %v, must be ≥1", pt.ShortP999)
	}
	// Slowdowns are sane (not thousands at 15% load).
	if pt.ShortP999 > 50 {
		t.Fatalf("short p99.9 slowdown = %v at 15%% load", pt.ShortP999)
	}
}

func TestWebSearchBufferCDF(t *testing.T) {
	res := mustRun(t, NewSpec("websearch", PowerTCP,
		WithLoad(0.15), WithServersPerTor(4),
		WithDuration(3*sim.Millisecond), WithDrain(2*sim.Millisecond),
		WithSeed(4), WithBufferSampling(true)))
	r := res.Raw.(*WebSearchResult)
	if len(r.BufferCDF) == 0 {
		t.Fatal("no buffer CDF collected")
	}
	last := r.BufferCDF[len(r.BufferCDF)-1]
	if last.F != 1 {
		t.Fatalf("CDF top = %v", last.F)
	}
}

func TestRDCNPowerTCPUtilizationAndLatency(t *testing.T) {
	res := mustRun(t, NewSpec("rdcn", PowerTCP, WithWeeks(3), WithSeed(5)))
	r := res.Raw.(*RDCNResult)
	// §5 headline: PowerTCP achieves 80–85% circuit utilization. With the
	// scaled topology we accept ≥60% here; the bench at paper scale
	// records the real number.
	if r.CircuitUtilization < 0.6 {
		t.Fatalf("circuit utilization = %v", r.CircuitUtilization)
	}
	if len(r.Throughput) == 0 {
		t.Fatal("no series")
	}
}

func TestRDCNReTCPTradesLatencyForUtilization(t *testing.T) {
	pt := mustRun(t, NewSpec("rdcn", PowerTCP, WithWeeks(3), WithSeed(5)))
	re := mustRun(t, NewSpec("rdcn", ReTCP1800, WithWeeks(3), WithSeed(5)))
	// Fig. 8: reTCP prebuffering pays with tail queuing latency;
	// PowerTCP must beat it by at least 2× (paper: ≥5×).
	if re.Scalar("tail_queuing_us") < 2*pt.Scalar("tail_queuing_us") {
		t.Fatalf("tail queuing: reTCP %vµs vs PowerTCP %vµs, expected ≥2×",
			re.Scalar("tail_queuing_us"), pt.Scalar("tail_queuing_us"))
	}
	if re.Scalar("circuit_utilization") < 0.5 {
		t.Fatalf("reTCP circuit utilization = %v", re.Scalar("circuit_utilization"))
	}
}

func TestRDCNRejectsUnsupportedScheme(t *testing.T) {
	_, err := Run(NewSpec("rdcn", Timely, WithWeeks(1)))
	if err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("rdcn accepted timely: %v", err)
	}
}
