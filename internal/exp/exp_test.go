package exp

import (
	"testing"

	"repro/internal/sim"
)

func TestSchemeRegistry(t *testing.T) {
	for _, name := range Schemes {
		s := SchemeByName(name)
		if s.Name != name {
			t.Fatalf("scheme %q resolved to %q", name, s.Name)
		}
		if name == Homa && (!s.IsHoma() || !s.PrioQueues) {
			t.Fatal("homa scheme misconfigured")
		}
		if name == PowerTCP && !s.INT {
			t.Fatal("powertcp requires INT")
		}
		if name == DCQCN && !s.ECN.Enabled() {
			t.Fatal("dcqcn requires ECN")
		}
	}
	if oc := SchemeByName("homa-oc4"); oc.Overcommit != 4 {
		t.Fatalf("homa-oc4 overcommit = %d", oc.Overcommit)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scheme did not panic")
		}
	}()
	SchemeByName("bogus")
}

func TestIncastPowerTCPKeepsQueueShortAndThroughputHigh(t *testing.T) {
	r := RunIncast(IncastOptions{
		Scheme: PowerTCP, FanIn: 10,
		Window: 3 * sim.Millisecond, Seed: 1,
	})
	if r.FanIn != 10 || len(r.Points) == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	// Fig. 4a: the incast resolves to near-zero queue without losing
	// throughput.
	if r.EndQueueKB > 40 {
		t.Fatalf("queue did not resolve: %vKB at end", r.EndQueueKB)
	}
	if r.AvgGoodputGbps < 18 {
		t.Fatalf("receiver goodput = %vGbps, want near 25", r.AvgGoodputGbps)
	}
	if r.Completed != 10 {
		t.Fatalf("completed %d/10 incast flows", r.Completed)
	}
}

func TestIncastTimelyBuildsLargerQueues(t *testing.T) {
	pt := RunIncast(IncastOptions{Scheme: PowerTCP, FanIn: 10,
		Window: 3 * sim.Millisecond, Seed: 1})
	tm := RunIncast(IncastOptions{Scheme: Timely, FanIn: 10,
		Window: 3 * sim.Millisecond, Seed: 1})
	// Fig. 4c vs 4a: TIMELY does not control the queue; its peak must
	// exceed PowerTCP's by a clear margin.
	if tm.PeakQueueKB < 1.5*pt.PeakQueueKB {
		t.Fatalf("TIMELY peak %vKB vs PowerTCP %vKB: expected ≥1.5×",
			tm.PeakQueueKB, pt.PeakQueueKB)
	}
}

func TestIncastHomaRuns(t *testing.T) {
	r := RunIncast(IncastOptions{
		Scheme: Homa, FanIn: 10,
		Window: 3 * sim.Millisecond, Seed: 1,
	})
	if r.Completed < 8 {
		t.Fatalf("HOMA completed %d/10", r.Completed)
	}
	if r.AvgGoodputGbps < 10 {
		t.Fatalf("HOMA goodput %v", r.AvgGoodputGbps)
	}
}

func TestFairnessPowerTCPSharesEvenly(t *testing.T) {
	r := RunFairness(FairnessOptions{Scheme: PowerTCP, Seed: 2})
	if r.JainAvg < 0.85 {
		t.Fatalf("Jain index = %v, want ≥0.85", r.JainAvg)
	}
	if len(r.T) == 0 || len(r.Per) != 4 {
		t.Fatal("missing series")
	}
}

func TestWebSearchSmokeAndOrdering(t *testing.T) {
	base := WebSearchOptions{
		Load: 0.15, ServersPerTor: 4,
		Duration: 4 * sim.Millisecond, Drain: 4 * sim.Millisecond,
		Seed: 3,
	}
	base.Scheme = PowerTCP
	pt := RunWebSearch(base)
	if pt.Completed == 0 {
		t.Fatal("no flows completed")
	}
	if pt.ShortP999 < 1 {
		t.Fatalf("short p99.9 slowdown = %v, must be ≥1", pt.ShortP999)
	}
	// Slowdowns are sane (not thousands at 15% load).
	if pt.ShortP999 > 50 {
		t.Fatalf("short p99.9 slowdown = %v at 15%% load", pt.ShortP999)
	}
}

func TestWebSearchBufferCDF(t *testing.T) {
	r := RunWebSearch(WebSearchOptions{
		Scheme: PowerTCP, Load: 0.15, ServersPerTor: 4,
		Duration: 3 * sim.Millisecond, Drain: 2 * sim.Millisecond,
		Seed: 4, SampleBuffers: true,
	})
	if len(r.BufferCDF) == 0 {
		t.Fatal("no buffer CDF collected")
	}
	last := r.BufferCDF[len(r.BufferCDF)-1]
	if last.F != 1 {
		t.Fatalf("CDF top = %v", last.F)
	}
}

func TestRDCNPowerTCPUtilizationAndLatency(t *testing.T) {
	r := RunRDCN(RDCNOptions{Scheme: PowerTCP, Weeks: 3, Seed: 5})
	// §5 headline: PowerTCP achieves 80–85% circuit utilization. With the
	// scaled topology we accept ≥60% here; the bench at paper scale
	// records the real number.
	if r.CircuitUtilization < 0.6 {
		t.Fatalf("circuit utilization = %v", r.CircuitUtilization)
	}
	if len(r.Throughput) == 0 {
		t.Fatal("no series")
	}
}

func TestRDCNReTCPTradesLatencyForUtilization(t *testing.T) {
	pt := RunRDCN(RDCNOptions{Scheme: PowerTCP, Weeks: 3, Seed: 5})
	re := RunRDCN(RDCNOptions{Scheme: ReTCP1800, Weeks: 3, Seed: 5})
	// Fig. 8: reTCP prebuffering pays with tail queuing latency;
	// PowerTCP must beat it by at least 2× (paper: ≥5×).
	if re.TailQueuingUs < 2*pt.TailQueuingUs {
		t.Fatalf("tail queuing: reTCP %vµs vs PowerTCP %vµs, expected ≥2×",
			re.TailQueuingUs, pt.TailQueuingUs)
	}
	if re.CircuitUtilization < 0.5 {
		t.Fatalf("reTCP circuit utilization = %v", re.CircuitUtilization)
	}
}
