package exp

import (
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TimePoint is one sample of the Figure 4 time series.
type TimePoint struct {
	T              sim.Time
	ThroughputGbps float64
	QueueKB        float64
}

// IncastResult is the typed payload behind one Figure 4 panel (and
// Figures 10–11 for HOMA's overcommitment appendix).
type IncastResult struct {
	Scheme          string
	FanIn           int
	Points          []TimePoint
	PeakQueueKB     float64
	AvgGoodputGbps  float64 // receiver goodput over the window
	EndQueueKB      float64 // queue at the end: did congestion resolve?
	TailMeanQueueKB float64 // mean queue over the last quarter of the window
	Completed       int     // incast flows finished inside the window
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "incast",
		Figures: "Fig. 4 (10:1 and 255:1), Fig. 10–11 (HOMA overcommitment)",
		Fields: []string{FieldServersPerTor, FieldPartitions, FieldFanIn, FieldFlowSize,
			FieldWindow, FieldWarmup, FieldSamplePeriod},
		Normalize: func(s *Spec) {
			if s.FanIn == 0 {
				s.FanIn = 10
			}
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 8
			}
			if s.FlowSize == 0 {
				s.FlowSize = 500_000
			}
			if s.Window == 0 {
				s.Window = 4 * sim.Millisecond
			}
			if s.Warmup == 0 {
				s.Warmup = 500 * sim.Microsecond
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 20 * sim.Microsecond
			}
		},
		Run: runIncast,
	})
}

// runIncast reproduces one panel of Figure 4 as a declarative scenario:
// a long flow into the receiver, then at Warmup a FanIn:1 incast pulse
// from senders in other racks hits it.
func runIncast(s Spec, scheme Scheme) (*Result, error) {
	return scenario.Run(scenario.Scenario{
		Name:     "incast",
		Scheme:   scheme,
		Seed:     s.Seed,
		Topology: scenario.FatTreeTopology{ServersPerTor: s.ServersPerTor, Partitions: s.Partitions},
		Traffic: []scenario.Traffic{
			// Long flow from the last rack toward the receiver.
			scenario.Flows{List: []scenario.FlowSpec{{
				Src: scenario.HostFromEnd(1), Dst: scenario.Host(0), Size: scenario.Unbounded,
			}}},
			// FanIn cross-rack senders fire together at Warmup. The span
			// excludes the long flow's sender at the end of the host range.
			scenario.IncastPulse{
				At:       s.Warmup,
				Receiver: scenario.Host(0),
				FanIn:    s.FanIn,
				FlowSize: s.FlowSize,
				Senders:  scenario.Span{From: scenario.RackStart(1), To: scenario.HostFromEnd(1)},
			},
		},
		Probes: []scenario.Probe{
			&incastPanel{receiver: 0, flowSize: s.FlowSize, period: s.SamplePeriod},
			scenario.AccountingProbe{},
		},
		Until: s.Warmup + s.Window,
	})
}

// incastPanel is the Figure 4 probe: one sampler records receiver
// throughput and the bottleneck ToR queue, and the finalizer summarizes
// peak/end/tail queue and goodput.
type incastPanel struct {
	receiver int
	flowSize int64
	period   sim.Duration

	ic        *IncastResult
	lastBytes int64
}

func (p *incastPanel) Install(env *scenario.Env) error {
	net := env.Lab.Net
	// The bottleneck is the receiver's ToR egress port (ports are created
	// per server in order, so port i%perRack faces the host).
	perRack := env.Fabric.HostsPerRack
	port := net.Switches[p.receiver/perRack].Ports()[p.receiver%perRack]

	// The incast fan-in actually launched: pulse flows carry FlowSize.
	fanIn := 0
	for _, f := range env.Launched {
		if f.Size == p.flowSize {
			fanIn++
		}
	}

	// The sampler runs at a fixed period from t=0 to the fixed horizon,
	// so the series length is run metadata: allocate the points once.
	p.ic = &IncastResult{
		Scheme: env.Scheme.Name, FanIn: fanIn,
		Points: make([]TimePoint, 0, int(env.Horizon.Duration()/p.period)+2),
	}
	scenario.SampleEvery(net.Eng, p.period, env.Horizon, func(now sim.Time) {
		cur := env.Lab.ReceivedTotal(p.receiver)
		tp := TimePoint{
			T:              now,
			ThroughputGbps: stats.Gbps(cur-p.lastBytes, p.period),
			QueueKB:        float64(port.QueueBytes()) / 1024,
		}
		p.lastBytes = cur
		p.ic.Points = append(p.ic.Points, tp)
	})
	return nil
}

func (p *incastPanel) Finalize(env *scenario.Env, res *Result) error {
	ic := p.ic
	var sumTp float64
	for _, pt := range ic.Points {
		if pt.QueueKB > ic.PeakQueueKB {
			ic.PeakQueueKB = pt.QueueKB
		}
		sumTp += pt.ThroughputGbps
	}
	if n := len(ic.Points); n > 0 {
		ic.AvgGoodputGbps = sumTp / float64(n)
		ic.EndQueueKB = ic.Points[n-1].QueueKB
		k := n / 4
		if k == 0 {
			k = 1
		}
		var tail float64
		for _, pt := range ic.Points[n-k:] {
			tail += pt.QueueKB
		}
		ic.TailMeanQueueKB = tail / float64(k)
	}
	for _, r := range env.Lab.Records {
		if r.Size == p.flowSize {
			ic.Completed++
		}
	}

	res.Raw = ic
	res.SetScalar("fan_in", float64(ic.FanIn))
	res.SetScalar("engine_steps", float64(env.Steps()))
	res.SetScalar("peak_queue_kb", ic.PeakQueueKB)
	res.SetScalar("end_queue_kb", ic.EndQueueKB)
	res.SetScalar("tail_mean_queue_kb", ic.TailMeanQueueKB)
	res.SetScalar("avg_goodput_gbps", ic.AvgGoodputGbps)
	res.SetScalar("completed", float64(ic.Completed))
	ts := make([]sim.Time, len(ic.Points))
	tp := make([]float64, len(ic.Points))
	qs := make([]float64, len(ic.Points))
	for i, pt := range ic.Points {
		ts[i], tp[i], qs[i] = pt.T, pt.ThroughputGbps, pt.QueueKB
	}
	res.AddSeries(scenario.TimeSeries("throughput_gbps", ts, tp))
	res.AddSeries(scenario.TimeSeries("queue_kb", ts, qs))
	return nil
}
