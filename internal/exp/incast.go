package exp

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TimePoint is one sample of the Figure 4 time series.
type TimePoint struct {
	T              sim.Time
	ThroughputGbps float64
	QueueKB        float64
}

// IncastResult is the typed payload behind one Figure 4 panel (and
// Figures 10–11 for HOMA's overcommitment appendix).
type IncastResult struct {
	Scheme          string
	FanIn           int
	Points          []TimePoint
	PeakQueueKB     float64
	AvgGoodputGbps  float64 // receiver goodput over the window
	EndQueueKB      float64 // queue at the end: did congestion resolve?
	TailMeanQueueKB float64 // mean queue over the last quarter of the window
	Completed       int     // incast flows finished inside the window
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "incast",
		Figures: "Fig. 4 (10:1 and 255:1), Fig. 10–11 (HOMA overcommitment)",
		Normalize: func(s *Spec) {
			if s.FanIn == 0 {
				s.FanIn = 10
			}
			if s.ServersPerTor == 0 {
				s.ServersPerTor = 8
			}
			if s.FlowSize == 0 {
				s.FlowSize = 500_000
			}
			if s.Window == 0 {
				s.Window = 4 * sim.Millisecond
			}
			if s.Warmup == 0 {
				s.Warmup = 500 * sim.Microsecond
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 20 * sim.Microsecond
			}
		},
		Run: runIncast,
	})
}

// runIncast reproduces one panel of Figure 4: at Warmup a FanIn:1 incast
// (senders in other racks) hits the receiver of a long flow.
func runIncast(s Spec, scheme Scheme) (*Result, error) {
	lab := NewFatTreeLab(scheme, s.ServersPerTor, s.Seed)
	defer lab.Release()
	net := lab.Net

	const receiver = 0
	hosts := len(net.Hosts)
	perRack := s.ServersPerTor

	// Long flow from the last rack toward the receiver.
	longSrc := hosts - 1
	lab.Launch(workload.Flow{Start: 0, Src: longSrc, Dst: receiver, Size: lab.UnboundedSize()})

	// FanIn cross-rack senders fire together at Warmup.
	launched := 0
	for i := perRack; launched < s.FanIn && i < hosts-1; i++ {
		lab.Launch(workload.Flow{
			Start: sim.Time(s.Warmup), Src: i, Dst: receiver, Size: s.FlowSize,
		})
		launched++
	}

	// The bottleneck is ToR 0's egress port to the receiver (ports are
	// created per server in order, so port 0 faces host 0).
	port := net.Switches[0].Ports()[receiver]

	// The sampler runs at a fixed period from t=0 to the fixed horizon
	// (warmup + window), so the series length is run metadata: allocate
	// the points once.
	ic := &IncastResult{
		Scheme: scheme.Name, FanIn: launched,
		Points: make([]TimePoint, 0, int((s.Warmup+s.Window)/s.SamplePeriod)+2),
	}
	var lastBytes int64
	end := sim.Time(s.Warmup + s.Window)
	SampleEvery(net.Eng, s.SamplePeriod, end, func(now sim.Time) {
		cur := lab.ReceivedTotal(receiver)
		tp := TimePoint{
			T:              now,
			ThroughputGbps: stats.Gbps(cur-lastBytes, s.SamplePeriod),
			QueueKB:        float64(port.QueueBytes()) / 1024,
		}
		lastBytes = cur
		ic.Points = append(ic.Points, tp)
	})
	net.Eng.RunUntil(end)

	var sumTp float64
	for _, p := range ic.Points {
		if p.QueueKB > ic.PeakQueueKB {
			ic.PeakQueueKB = p.QueueKB
		}
		sumTp += p.ThroughputGbps
	}
	if n := len(ic.Points); n > 0 {
		ic.AvgGoodputGbps = sumTp / float64(n)
		ic.EndQueueKB = ic.Points[n-1].QueueKB
		k := n / 4
		if k == 0 {
			k = 1
		}
		var tail float64
		for _, p := range ic.Points[n-k:] {
			tail += p.QueueKB
		}
		ic.TailMeanQueueKB = tail / float64(k)
	}
	for _, r := range lab.Records {
		if r.Size == s.FlowSize {
			ic.Completed++
		}
	}

	res := &Result{Raw: ic}
	res.SetScalar("fan_in", float64(ic.FanIn))
	res.SetScalar("engine_steps", float64(net.Eng.Steps()))
	res.SetScalar("peak_queue_kb", ic.PeakQueueKB)
	res.SetScalar("end_queue_kb", ic.EndQueueKB)
	res.SetScalar("tail_mean_queue_kb", ic.TailMeanQueueKB)
	res.SetScalar("avg_goodput_gbps", ic.AvgGoodputGbps)
	res.SetScalar("completed", float64(ic.Completed))
	ts := make([]sim.Time, len(ic.Points))
	tp := make([]float64, len(ic.Points))
	qs := make([]float64, len(ic.Points))
	for i, p := range ic.Points {
		ts[i], tp[i], qs[i] = p.T, p.ThroughputGbps, p.QueueKB
	}
	res.AddSeries(TimeSeries("throughput_gbps", ts, tp))
	res.AddSeries(TimeSeries("queue_kb", ts, qs))
	return res, nil
}
