package exp

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/workload"
)

// IncastOptions configures the Figure 4 experiment (and Figures 10–11
// for HOMA's overcommitment appendix): fanIn senders fire at a receiver
// already sinking a long flow; the figure tracks receiver throughput and
// the bottleneck queue.
type IncastOptions struct {
	Scheme        string
	FanIn         int          // 10 (top row) or 255 (bottom row)
	ServersPerTor int          // ≥ enough racks for FanIn cross-rack senders
	FlowSize      int64        // bytes per responder (default 500 KB)
	Window        sim.Duration // observation window (default 4 ms, as in Fig. 4)
	Warmup        sim.Duration // long-flow head start (default 500 µs)
	SamplePeriod  sim.Duration // default 20 µs
	Seed          int64
	DTAlpha       float64 // Dynamic Thresholds override (0 = default α=1)
}

func (o *IncastOptions) fillDefaults() {
	if o.ServersPerTor == 0 {
		o.ServersPerTor = 8
	}
	if o.FlowSize == 0 {
		o.FlowSize = 500_000
	}
	if o.Window == 0 {
		o.Window = 4 * sim.Millisecond
	}
	if o.Warmup == 0 {
		o.Warmup = 500 * sim.Microsecond
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = 20 * sim.Microsecond
	}
}

// TimePoint is one sample of the Figure 4 time series.
type TimePoint struct {
	T              sim.Time
	ThroughputGbps float64
	QueueKB        float64
}

// IncastResult is the data behind one Figure 4 panel.
type IncastResult struct {
	Scheme          string
	FanIn           int
	Points          []TimePoint
	PeakQueueKB     float64
	AvgGoodputGbps  float64 // receiver goodput over the window
	EndQueueKB      float64 // queue at the end: did congestion resolve?
	TailMeanQueueKB float64 // mean queue over the last quarter of the window
	Completed       int     // incast flows finished inside the window
}

// RunIncast reproduces one panel of Figure 4: at Warmup a FanIn:1 incast
// (senders in other racks) hits the receiver of a long flow.
func RunIncast(o IncastOptions) IncastResult {
	return RunIncastWith(SchemeByName(o.Scheme), o)
}

// RunIncastWith runs the incast under a custom Scheme (γ sweeps and other
// ablations).
func RunIncastWith(scheme Scheme, o IncastOptions) IncastResult {
	o.fillDefaults()
	if o.Scheme == "" {
		o.Scheme = scheme.Name
	}
	lab := NewFatTreeLabAlpha(scheme, o.ServersPerTor, o.Seed, o.DTAlpha)
	net := lab.Net

	const receiver = 0
	hosts := len(net.Hosts)
	perRack := o.ServersPerTor

	// Long flow from the last rack toward the receiver.
	longSrc := hosts - 1
	longSize := int64(1) << 33 // effectively unbounded for the window
	if !scheme.IsHoma() {
		longSize = transport.Unbounded
	}
	lab.Launch(workload.Flow{Start: 0, Src: longSrc, Dst: receiver, Size: longSize})

	// FanIn cross-rack senders fire together at Warmup.
	launched := 0
	for i := perRack; launched < o.FanIn && i < hosts-1; i++ {
		lab.Launch(workload.Flow{
			Start: sim.Time(o.Warmup), Src: i, Dst: receiver, Size: o.FlowSize,
		})
		launched++
	}

	// The bottleneck is ToR 0's egress port to the receiver (ports are
	// created per server in order, so port 0 faces host 0).
	port := net.Switches[0].Ports()[receiver]

	res := IncastResult{Scheme: o.Scheme, FanIn: launched}
	var lastBytes int64
	end := sim.Time(o.Warmup + o.Window)
	SampleEvery(net.Eng, o.SamplePeriod, end, func(now sim.Time) {
		cur := lab.ReceivedTotal(receiver)
		tp := TimePoint{
			T:              now,
			ThroughputGbps: stats.Gbps(cur-lastBytes, o.SamplePeriod),
			QueueKB:        float64(port.QueueBytes()) / 1024,
		}
		lastBytes = cur
		res.Points = append(res.Points, tp)
	})
	net.Eng.RunUntil(end)

	var sumTp float64
	for _, p := range res.Points {
		if p.QueueKB > res.PeakQueueKB {
			res.PeakQueueKB = p.QueueKB
		}
		sumTp += p.ThroughputGbps
	}
	if n := len(res.Points); n > 0 {
		res.AvgGoodputGbps = sumTp / float64(n)
		res.EndQueueKB = res.Points[n-1].QueueKB
		k := n / 4
		if k == 0 {
			k = 1
		}
		var tail float64
		for _, p := range res.Points[n-k:] {
			tail += p.QueueKB
		}
		res.TailMeanQueueKB = tail / float64(k)
	}
	for _, r := range lab.Records {
		if r.Size == o.FlowSize {
			res.Completed++
		}
	}
	return res
}
