package exp

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/guard"
	"repro/internal/sim"
)

// crasherSpec installs a test-only experiment whose Run panics
// mid-flight — the injected fault for the suite isolation battery —
// and removes it when the test ends, so the registry meta-tests
// (accepted-fields table, golden coverage) never see it.
func crasherSpec(t *testing.T) Spec {
	t.Helper()
	mustRegisterExperiment(Experiment{
		Name:    "crash-test",
		Figures: "none (test-only fault injection)",
		Run: func(Spec, Scheme) (*Result, error) {
			panic("deliberate suite-isolation crash")
		},
	})
	t.Cleanup(func() {
		expMu.Lock()
		delete(experiments, "crash-test")
		expMu.Unlock()
	})
	return NewSpec("crash-test", PowerTCP)
}

// A panic inside one spec's Run must not take down the worker pool: the
// crashing spec yields a typed *guard.PanicError in the joined error,
// its result slot stays nil, and every sibling still completes with
// byte-identical output serial vs parallel.
func TestSuiteIsolatesCrashingSpec(t *testing.T) {
	crash := crasherSpec(t)
	specs := func() []Spec {
		return []Spec{
			NewSpec("incast", PowerTCP,
				WithFanIn(6), WithWindow(sim.Millisecond), WithSeed(11)),
			crash,
			NewSpec("fairness", PowerTCP,
				WithWindow(2*sim.Millisecond), WithSeed(2)),
			NewSpec("websearch", PowerTCP,
				WithLoad(0.15), WithServersPerTor(4),
				WithDuration(2*sim.Millisecond), WithDrain(sim.Millisecond), WithSeed(3)),
		}
	}
	const crashIdx = 1

	run := func(workers int) []*Result {
		su := Suite{Specs: specs(), Workers: workers}
		results, err := su.Run()
		if err == nil {
			t.Fatalf("workers=%d: suite swallowed the crash", workers)
		}
		var pe *guard.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *guard.PanicError", workers, err)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic error carries no stack", workers)
		}
		for i, r := range results {
			if i == crashIdx {
				if r != nil {
					t.Fatalf("workers=%d: crashed spec produced a result", workers)
				}
				continue
			}
			if r == nil {
				t.Fatalf("workers=%d: sibling spec %d lost its result to the crash", workers, i)
			}
		}
		return results
	}

	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if i == crashIdx {
			continue
		}
		var sb, pb bytes.Buffer
		if err := serial[i].EncodeJSON(&sb); err != nil {
			t.Fatal(err)
		}
		if err := parallel[i].EncodeJSON(&pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Fatalf("spec %d: surviving result differs serial vs parallel after a sibling crash", i)
		}
	}
}
