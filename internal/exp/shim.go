package exp

import (
	"repro/internal/scenario"
)

// The experiment layer is built on internal/scenario: schemes, the
// Result envelope, and the lab plumbing live there, and exp re-exports
// them so existing callers (cmds, the root package, tests) keep
// working. Spec/Run remain as the validated compatibility shim over
// declarative Scenario presets.

// Scheme bundles a congestion-control choice with the switch features
// it needs; SchemeOption composes ablation variants onto it.
type (
	Scheme       = scenario.Scheme
	SchemeOption = scenario.SchemeOption
	Kind         = scenario.Kind
)

// Result is the common experiment envelope (scalars + named series).
type (
	Result      = scenario.Result
	Series      = scenario.Series
	SeriesPoint = scenario.SeriesPoint
)

// Lab is the built-network harness the scenario layer drives;
// FlowRecord is one completed transfer.
type (
	Lab        = scenario.Lab
	FlowRecord = scenario.FlowRecord
)

// Scheme kinds.
const (
	KindCC       = scenario.KindCC
	KindPowerTCP = scenario.KindPowerTCP
	KindTheta    = scenario.KindTheta
	KindHoma     = scenario.KindHoma
	KindReTCP    = scenario.KindReTCP
)

// Scheme names accepted by the registry (matching the paper's legends).
const (
	PowerTCP      = scenario.PowerTCP
	ThetaPowerTCP = scenario.ThetaPowerTCP
	HPCC          = scenario.HPCC
	Timely        = scenario.Timely
	DCQCN         = scenario.DCQCN
	Swift         = scenario.Swift
	DCTCP         = scenario.DCTCP
	Reno          = scenario.Reno
	Cubic         = scenario.Cubic
	Homa          = scenario.Homa
	ReTCP600      = scenario.ReTCP600
	ReTCP1800     = scenario.ReTCP1800
)

// Schemes lists every sender-based scheme, in the paper's legend order.
var Schemes = scenario.Schemes

// Scheme registry entry points.
var (
	ResolveScheme        = scenario.ResolveScheme
	RegisterScheme       = scenario.RegisterScheme
	RegisterSchemeFamily = scenario.RegisterSchemeFamily
	SchemeNames          = scenario.SchemeNames
)

// Scheme options (ablation variants composed at resolution time).
var (
	Gamma      = scenario.Gamma
	Alpha      = scenario.Alpha
	Overcommit = scenario.Overcommit
	PerRTT     = scenario.PerRTT
	Prebuffer  = scenario.Prebuffer
)

// Result-set encoders.
var (
	EncodeJSONResults = scenario.EncodeJSONResults
	EncodeTSVResults  = scenario.EncodeTSVResults
)

// Lab constructors and helpers (kept for direct harness users).
var (
	NewStarLab          = scenario.NewStarLab
	NewFatTreeLab       = scenario.NewFatTreeLab
	NewRoutedFatTreeLab = scenario.NewRoutedFatTreeLab
	NewLeafSpineLab     = scenario.NewLeafSpineLab
	SampleEvery         = scenario.SampleEvery
	TimeSeries          = scenario.TimeSeries
)
