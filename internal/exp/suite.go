package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Suite executes many experiment specs concurrently over a worker pool.
// Every run owns an isolated sim.Engine and network, so parallel
// execution is safe, and each result depends only on its spec and seed —
// a suite run is byte-identical to a serial one regardless of Workers
// (asserted by TestSuiteParallelMatchesSerial).
type Suite struct {
	Specs []Spec
	// Workers bounds the pool; ≤0 means runtime.GOMAXPROCS(0).
	Workers int
}

// NewSuite builds a suite from specs.
func NewSuite(specs ...Spec) *Suite { return &Suite{Specs: specs} }

// Add appends specs and returns the suite for chaining.
func (su *Suite) Add(specs ...Spec) *Suite {
	su.Specs = append(su.Specs, specs...)
	return su
}

// Run executes every spec and returns results in spec order. Failed
// specs leave a nil slot; the joined error names each failure. The
// remaining specs still run to completion — a spec whose experiment
// panics is recovered per spec (exp.Run wraps the registered runner in
// guard.Capture), so one crash surfaces as a *guard.PanicError in the
// joined error instead of killing the pool.
func (su *Suite) Run() ([]*Result, error) {
	n := su.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(su.Specs) {
		n = len(su.Specs)
	}
	results := make([]*Result, len(su.Specs))
	errs := make([]error, len(su.Specs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r, err := Run(su.Specs[i])
				if err != nil {
					errs[i] = fmt.Errorf("spec %d: %w", i, err)
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range su.Specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errors.Join(errs...)
}

// RunSuite is shorthand for NewSuite(specs...).Run().
func RunSuite(specs ...Spec) ([]*Result, error) {
	return NewSuite(specs...).Run()
}
