package exp

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// The tentpole property of the parallel simulator: a partitioned run is
// byte-identical to the serial run of the same spec at every partition
// count. The canonical event order (at, dsched, phash, k) is a pure
// function of the causal tree, so sharding the fabric across engines —
// any number of them — must not change a single encoded byte, including
// the engine_steps scalar (the partitioned step total equals the serial
// one by construction).
func TestPartitionedMatchesSerial(t *testing.T) {
	specs := map[string]func(parts int) Spec{
		"incast": func(parts int) Spec {
			return NewSpec("incast", PowerTCP, WithPartitions(parts),
				WithFanIn(10), WithWindow(2*sim.Millisecond), WithSeed(7))
		},
		"permutation": func(parts int) Spec {
			return NewSpec("permutation", PowerTCP, WithPartitions(parts),
				WithRouting("ecmp"), WithWindow(2*sim.Millisecond), WithSeed(3))
		},
		// Far-horizon failover: the restore event and the RTOs it triggers
		// live beyond the wheel span, so partitioned runs exercise the
		// overflow heap and Reset's discard path on every engine.
		"failover": func(parts int) Spec {
			return NewSpec("failover", PowerTCP, WithPartitions(parts),
				WithServersPerTor(4), WithFlows(2), WithSpines(2),
				WithFailure(2*sim.Millisecond, 12*sim.Millisecond),
				WithWindow(20*sim.Millisecond), WithSeed(21))
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			serial := encodeRun(t, spec(0))
			for _, parts := range []int{1, 2, 4, 8} {
				got := encodeRun(t, spec(parts))
				if !bytes.Equal(serial, got) {
					t.Fatalf("parts=%d diverged from serial\nserial: %.300s\nparts:  %.300s",
						parts, serial, got)
				}
			}
		})
	}
}

func encodeRun(t *testing.T, s Spec) []byte {
	t.Helper()
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
