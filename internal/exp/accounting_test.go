package exp

import (
	"testing"
)

// accountingScalars are the byte-ledger scalars the AccountingProbe
// surfaces into every preset that carries it. Exact seed-1 values are
// additionally pinned byte-for-byte by the golden envelopes
// (testdata/golden/incast.json, failover.json); these tests pin the
// structural properties that must hold whatever the numbers are.
var accountingScalars = []string{
	"bytes_emitted", "bytes_delivered", "bytes_dropped",
	"bytes_lost_fail", "bytes_inflight", "bytes_residual",
}

func runAccounted(t *testing.T, name string, opts ...Option) *Result {
	t.Helper()
	r, err := Run(NewSpec(name, "powertcp", append([]Option{WithSeed(1)}, opts...)...))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, s := range accountingScalars {
		if _, ok := r.Scalars[s]; !ok {
			t.Fatalf("%s: result envelope is missing accounting scalar %q", name, s)
		}
	}
	return r
}

// TestIncastAccounting pins the byte ledger on the incast preset: the
// pulse emits real traffic, nothing is black-holed (the timeline has no
// failures), and the cross-layer conservation identity closes exactly.
func TestIncastAccounting(t *testing.T) {
	r := runAccounted(t, "incast")
	if r.Scalar("bytes_emitted") <= 0 {
		t.Fatalf("incast emitted no payload: %g", r.Scalar("bytes_emitted"))
	}
	if d := r.Scalar("bytes_delivered"); d <= 0 || d > r.Scalar("bytes_emitted") {
		t.Fatalf("incast delivered %g of %g emitted", d, r.Scalar("bytes_emitted"))
	}
	if l := r.Scalar("bytes_lost_fail"); l != 0 {
		t.Fatalf("incast black-holed %g payload bytes with no link failure in the timeline", l)
	}
	if res := r.Scalar("bytes_residual"); res != 0 {
		t.Fatalf("incast conservation residual %g (emitted %g, delivered %g, dropped %g, inflight %g)",
			res, r.Scalar("bytes_emitted"), r.Scalar("bytes_delivered"),
			r.Scalar("bytes_dropped"), r.Scalar("bytes_inflight"))
	}
}

// TestFailoverAccounting pins the ledger on the failover preset: the
// mid-run spine-link cut black-holes payload (matching the preset's own
// lost_packets scalar), and conservation still closes exactly — lost
// bytes are accounted, not leaked.
func TestFailoverAccounting(t *testing.T) {
	r := runAccounted(t, "failover")
	if l := r.Scalar("bytes_lost_fail"); l <= 0 {
		t.Fatalf("failover lost %g payload bytes; the link cut should black-hole traffic", l)
	}
	if r.Scalar("lost_packets") <= 0 {
		t.Fatalf("failover lost_packets %g disagrees with bytes_lost_fail %g",
			r.Scalar("lost_packets"), r.Scalar("bytes_lost_fail"))
	}
	if res := r.Scalar("bytes_residual"); res != 0 {
		t.Fatalf("failover conservation residual %g", res)
	}
}

// TestFailoverAccountingPartitionInvariant pins that the ledger sums
// local and remote (cross-partition) counter words consistently: the
// same failover run partitioned over 2 engines reports the identical
// byte ledger.
func TestFailoverAccountingPartitionInvariant(t *testing.T) {
	serial := runAccounted(t, "failover")
	parted := runAccounted(t, "failover", WithPartitions(2))
	for _, s := range accountingScalars {
		if serial.Scalar(s) != parted.Scalar(s) {
			t.Errorf("scalar %s diverges: serial %g, parts=2 %g", s, serial.Scalar(s), parted.Scalar(s))
		}
	}
}
