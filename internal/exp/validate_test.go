package exp

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// acceptedFields enumerates, per registered experiment, exactly the
// Spec knobs it consumes. Validate rejects anything else, so this table
// is the contract the options API is checked against.
var acceptedFields = map[string][]string{
	"incast": {FieldServersPerTor, FieldPartitions, FieldFanIn, FieldFlowSize,
		FieldWindow, FieldWarmup, FieldSamplePeriod},
	"fairness": {FieldFlows, FieldStagger, FieldSizes,
		FieldWindow, FieldSamplePeriod},
	"websearch": {FieldServersPerTor, FieldLoad, FieldIncastRate,
		FieldIncastSize, FieldIncastFanIn, FieldSampleBuffers,
		FieldDuration, FieldDrain, FieldSamplePeriod},
	"load-sweep": {FieldLoads, FieldServersPerTor, FieldIncastRate,
		FieldIncastSize, FieldIncastFanIn, FieldSampleBuffers,
		FieldDuration, FieldDrain, FieldSamplePeriod},
	"rdcn": {FieldTors, FieldServersPerTor, FieldPacketRate,
		FieldWeeks, FieldSamplePeriod},
	"permutation": {FieldServersPerTor, FieldPartitions, FieldRouting,
		FieldWindow, FieldSamplePeriod},
	"asymmetry": {FieldTors, FieldSpines, FieldServersPerTor,
		FieldSpineRates, FieldRouting, FieldWindow},
	"failover": {FieldTors, FieldSpines, FieldServersPerTor,
		FieldPartitions, FieldSpineRates, FieldFlows, FieldRouting,
		FieldFailAfter, FieldRestoreAfter, FieldReconverge, FieldWindow,
		FieldSamplePeriod},
}

// Every registered experiment declares its consumed fields, and the
// declaration matches this test's table exactly.
func TestExperimentAcceptedFields(t *testing.T) {
	for _, name := range ExperimentNames() {
		e, err := ExperimentByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := acceptedFields[name]
		if !ok {
			t.Errorf("experiment %q missing from the accepted-fields table", name)
			continue
		}
		if e.Fields == nil {
			t.Errorf("experiment %q registered without a Fields list", name)
			continue
		}
		got := map[string]bool{}
		for _, f := range e.Fields {
			got[f] = true
		}
		for _, f := range want {
			if !got[f] {
				t.Errorf("%s: expected to accept %s", name, f)
			}
			delete(got, f)
		}
		for f := range got {
			t.Errorf("%s: accepts %s, which the table does not expect", name, f)
		}
	}
}

// setOneField builds, per field name, an option that assigns it.
var setOneField = map[string]Option{
	FieldServersPerTor: WithServersPerTor(4),
	FieldTors:          WithTors(4),
	FieldPartitions:    WithPartitions(2),
	FieldFanIn:         WithFanIn(4),
	FieldFlowSize:      WithFlowSize(1000),
	FieldFlows:         WithFlows(2),
	FieldStagger:       WithStagger(sim.Millisecond),
	FieldSizes:         WithSizes(1 << 20),
	FieldLoad:          WithLoad(0.2),
	FieldLoads:         WithLoads(0.2, 0.4),
	FieldIncastRate:    func(s *Spec) { s.IncastRate = 100 },
	FieldIncastSize:    func(s *Spec) { s.IncastSize = 1 << 20 },
	FieldIncastFanIn:   func(s *Spec) { s.IncastFanIn = 8 },
	FieldSampleBuffers: WithBufferSampling(true),
	FieldPacketRate:    WithPacketRate(10 * units.Gbps),
	FieldWeeks:         WithWeeks(1),
	FieldRouting:       WithRouting("ecmp"),
	FieldSpines:        WithSpines(2),
	FieldSpineRates:    WithSpineRates(100 * units.Gbps),
	FieldFailAfter:     func(s *Spec) { s.FailAfter = sim.Millisecond },
	FieldRestoreAfter:  func(s *Spec) { s.RestoreAfter = 2 * sim.Millisecond },
	FieldReconverge:    WithReconverge(100 * sim.Microsecond),
	FieldWindow:        WithWindow(sim.Millisecond),
	FieldWarmup:        WithWarmup(100 * sim.Microsecond),
	FieldDuration:      WithDuration(sim.Millisecond),
	FieldDrain:         WithDrain(sim.Millisecond),
	FieldSamplePeriod:  WithSamplePeriod(50 * sim.Microsecond),
}

// Validate accepts every consumed field and rejects every other one,
// for every experiment — the end of silently ignored knobs.
func TestValidateRejectsUnconsumedFields(t *testing.T) {
	for name, accepted := range acceptedFields {
		ok := map[string]bool{}
		for _, f := range accepted {
			ok[f] = true
		}
		for field, opt := range setOneField {
			spec := NewSpec(name, PowerTCP, opt)
			err := spec.Validate()
			if ok[field] {
				if err != nil {
					t.Errorf("%s: rejected consumed field %s: %v", name, field, err)
				}
				continue
			}
			if err == nil {
				t.Errorf("%s: accepted unconsumed field %s", name, field)
			} else if !strings.Contains(err.Error(), field) {
				t.Errorf("%s/%s: error does not name the field: %v", name, field, err)
			}
		}
	}
}

// invalidValues assigns, per knob, a value outside its domain.
// SampleBuffers is the one declared knob with no possible invalid value
// (a bool), so it is deliberately absent; the coverage loop below pins
// that every other knob has a negative case here.
var invalidValues = map[string]Option{
	FieldServersPerTor: WithServersPerTor(-4),
	FieldTors:          WithTors(-1),
	FieldPartitions:    WithPartitions(-2),
	FieldFanIn:         WithFanIn(-8),
	FieldFlowSize:      WithFlowSize(-1000),
	FieldFlows:         WithFlows(-2),
	FieldStagger:       WithStagger(-sim.Millisecond),
	FieldSizes:         WithSizes(1<<20, -5),
	FieldLoad:          WithLoad(1.5),
	FieldLoads:         WithLoads(0.2, -0.4),
	FieldIncastRate:    func(s *Spec) { s.IncastRate = -100 },
	FieldIncastSize:    func(s *Spec) { s.IncastSize = -1 },
	FieldIncastFanIn:   func(s *Spec) { s.IncastFanIn = -8 },
	FieldPacketRate:    WithPacketRate(-10 * units.Gbps),
	FieldWeeks:         WithWeeks(-1),
	FieldRouting:       WithRouting("spray"),
	FieldSpines:        WithSpines(-2),
	FieldSpineRates:    WithSpineRates(100*units.Gbps, -units.Gbps),
	FieldFailAfter:     func(s *Spec) { s.FailAfter = -sim.Millisecond },
	FieldRestoreAfter:  func(s *Spec) { s.RestoreAfter = -2 * sim.Millisecond },
	FieldReconverge:    WithReconverge(-sim.Microsecond),
	FieldWindow:        WithWindow(-sim.Millisecond),
	FieldWarmup:        WithWarmup(-sim.Microsecond),
	FieldDuration:      WithDuration(-sim.Millisecond),
	FieldDrain:         WithDrain(-sim.Millisecond),
	FieldSamplePeriod:  WithSamplePeriod(-sim.Microsecond),
}

// TestValidateRejectsOutOfDomainValues pins a negative case for every
// declared knob: an assigned value outside the knob's domain must fail
// validation with an error naming the knob — even on an experiment that
// consumes it.
func TestValidateRejectsOutOfDomainValues(t *testing.T) {
	// Every declared knob except the boolean must carry a negative case.
	for field := range setOneField {
		if field == FieldSampleBuffers {
			continue
		}
		if _, ok := invalidValues[field]; !ok {
			t.Errorf("declared knob %s has no out-of-domain case", field)
		}
	}
	// consumers maps each knob to an experiment that accepts it, so the
	// rejection below is attributable to the domain check alone.
	consumers := map[string]string{}
	for name, fields := range acceptedFields {
		for _, f := range fields {
			if _, ok := consumers[f]; !ok {
				consumers[f] = name
			}
		}
	}
	for field, opt := range invalidValues {
		expName, ok := consumers[field]
		if !ok {
			t.Errorf("no registered experiment consumes %s", field)
			continue
		}
		err := NewSpec(expName, PowerTCP, opt).Validate()
		if err == nil {
			t.Errorf("%s: accepted an out-of-domain %s", expName, field)
		} else if !strings.Contains(err.Error(), field) {
			t.Errorf("%s/%s: error does not name the knob: %v", expName, field, err)
		}
	}
	// The KeepLinkDown sentinel is the one negative duration with a
	// meaning; it must keep validating.
	if err := NewSpec("failover", PowerTCP,
		WithFailure(sim.Millisecond, KeepLinkDown)).Validate(); err != nil {
		t.Errorf("KeepLinkDown rejected: %v", err)
	}
}

// specIdentityFields are the Spec fields that are not scenario knobs:
// they are always accepted and assignedFields must not report them.
var specIdentityFields = map[string]bool{
	"Experiment": true, "Scheme": true, "SchemeOpts": true,
	"Seed": true, "Label": true,
}

// assignedFields is a hand-maintained mirror of the Spec struct; this
// reflection test pins the two in sync, so a future knob added to Spec
// without a matching assignedFields line fails here loudly instead of
// sliding past every experiment's validation.
func TestAssignedFieldsCoversSpec(t *testing.T) {
	typ := reflect.TypeOf(Spec{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if specIdentityFields[f.Name] {
			continue
		}
		// Set just this field to a non-zero value via reflection and
		// check assignedFields reports it under its own name.
		var s Spec
		v := reflect.ValueOf(&s).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int64:
			v.SetInt(1)
		case reflect.Float64:
			v.SetFloat(0.5)
		case reflect.Bool:
			v.SetBool(true)
		case reflect.String:
			v.SetString("x")
		case reflect.Slice:
			v.Set(reflect.MakeSlice(f.Type, 1, 1))
		default:
			t.Fatalf("Spec.%s has kind %s — teach this test to set it", f.Name, f.Type.Kind())
		}
		got := s.assignedFields()
		if len(got) != 1 || got[0] != f.Name {
			t.Errorf("Spec.%s set, but assignedFields reported %v — add it to validate.go", f.Name, got)
		}
	}
}

// The canonical motivating case: WithFanIn on fairness must fail
// loudly through Run, not silently produce the default fairness run.
func TestRunRejectsIgnoredKnobs(t *testing.T) {
	_, err := Run(NewSpec("fairness", PowerTCP, WithFanIn(32)))
	if err == nil || !strings.Contains(err.Error(), "does not consume FanIn") {
		t.Fatalf("fairness accepted WithFanIn: %v", err)
	}
	// The Suite path reports the same error with the spec index.
	results, err := NewSuite(
		NewSpec("incast", PowerTCP, WithFanIn(4), WithWindow(sim.Millisecond), WithSeed(1)),
		NewSpec("fairness", PowerTCP, WithFanIn(32)),
	).Run()
	if err == nil || !strings.Contains(err.Error(), "spec 1") {
		t.Fatalf("suite did not report the invalid spec: %v", err)
	}
	if results[0] == nil {
		t.Fatal("valid spec did not run")
	}
	// Validate on an unknown experiment reports the registry error.
	if err := NewSpec("bogus", PowerTCP).Validate(); err == nil {
		t.Fatal("unknown experiment validated")
	}
	// Experiments registered without a Fields list (external users) keep
	// the permissive pre-redesign behavior.
	permissive := Experiment{Name: "custom-no-fields"}
	if err := NewSpec("custom-no-fields", PowerTCP, WithFanIn(4)).validateAgainst(permissive); err != nil {
		t.Fatalf("Fields-less experiment rejected a knob: %v", err)
	}
}
