package exp

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FairnessResult carries per-flow throughput series (Figure 5, and
// Figure 9 for HOMA's overcommitment levels).
type FairnessResult struct {
	Scheme  string
	T       []sim.Time
	Per     [][]float64 // Per[i][k]: flow i's Gbps at sample k
	JainAvg float64     // mean Jain index over samples with ≥2 active flows
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "fairness",
		Figures: "Fig. 5 (staggered arrivals), Fig. 9 (HOMA overcommitment)",
		Fields: []string{FieldFlows, FieldStagger, FieldSizes,
			FieldWindow, FieldSamplePeriod},
		Normalize: func(s *Spec) {
			if s.Flows == 0 {
				s.Flows = 4
			}
			if s.Stagger == 0 {
				s.Stagger = sim.Millisecond
			}
			if s.Window == 0 {
				s.Window = 8 * sim.Millisecond
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 50 * sim.Microsecond
			}
			if len(s.Sizes) == 0 {
				// Chosen so at 25G fair sharing the flows finish in
				// arrival order, giving the arrive-and-leave staircase
				// of Fig. 5.
				s.Sizes = []int64{9 << 20, 6 << 20, 4 << 20, 2 << 20}[:min(s.Flows, 4)]
				for len(s.Sizes) < s.Flows {
					s.Sizes = append(s.Sizes, 2<<20)
				}
			}
		},
		Run: runFairness,
	})
}

// runFairness reproduces Figure 5 as a declarative scenario: Flows
// staggered senders to one receiver over a single 25G bottleneck.
func runFairness(s Spec, scheme Scheme) (*Result, error) {
	return scenario.Run(scenario.Scenario{
		Name:     "fairness",
		Scheme:   scheme,
		Seed:     s.Seed,
		Topology: scenario.StarTopology{Hosts: s.Flows + 1},
		Traffic: []scenario.Traffic{scenario.Staggered{
			Receiver:    scenario.Host(0),
			FirstSender: scenario.Host(1),
			Count:       s.Flows,
			Stagger:     s.Stagger,
			Sizes:       s.Sizes,
		}},
		Probes: []scenario.Probe{&fairnessPanel{receiver: 0, period: s.SamplePeriod}},
		Until:  s.Window,
	})
}

// fairnessPanel samples every launched flow's receive rate and averages
// the Jain fairness index over samples with ≥2 active flows.
type fairnessPanel struct {
	receiver int
	period   sim.Duration

	fr      *FairnessResult
	last    []int64
	jainSum float64
	jainN   int
}

func (p *fairnessPanel) Install(env *scenario.Env) error {
	flows := len(env.Launched)
	p.fr = &FairnessResult{Scheme: env.Scheme.Name, Per: make([][]float64, flows)}
	p.last = make([]int64, flows)
	scenario.SampleEvery(env.Eng(), p.period, env.Horizon, func(now sim.Time) {
		p.fr.T = append(p.fr.T, now)
		var sum, sumSq float64
		active := 0
		for i := 0; i < flows; i++ {
			cur := env.Lab.ReceivedBytes(p.receiver, env.Launched[i].ID)
			g := stats.Gbps(cur-p.last[i], p.period)
			p.last[i] = cur
			p.fr.Per[i] = append(p.fr.Per[i], g)
			if g > 0.5 {
				active++
				sum += g
				sumSq += g * g
			}
		}
		if active >= 2 && sumSq > 0 {
			p.jainSum += sum * sum / (float64(active) * sumSq)
			p.jainN++
		}
	})
	return nil
}

func (p *fairnessPanel) Finalize(env *scenario.Env, res *Result) error {
	if p.jainN > 0 {
		p.fr.JainAvg = p.jainSum / float64(p.jainN)
	}
	res.Raw = p.fr
	res.SetScalar("jain", p.fr.JainAvg)
	res.SetScalar("flows", float64(len(p.fr.Per)))
	res.SetScalar("engine_steps", float64(env.Steps()))
	for i := range p.fr.Per {
		res.AddSeries(scenario.TimeSeries(fmt.Sprintf("flow%d_gbps", i+1), p.fr.T, p.fr.Per[i]))
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
