package exp

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FairnessOptions configures Figure 5 (and Figure 9 for HOMA's
// overcommitment levels): staggered flows share one 25 Gbps bottleneck;
// the figure plots each flow's throughput as flows arrive and leave.
type FairnessOptions struct {
	Scheme       string
	Flows        int          // default 4, as in Fig. 5
	Stagger      sim.Duration // arrival spacing (default 1 ms)
	Sizes        []int64      // transfer sizes; defaults make flows leave in order
	Window       sim.Duration // observation window (default 8 ms)
	SamplePeriod sim.Duration // default 50 µs
	Seed         int64
}

func (o *FairnessOptions) fillDefaults() {
	if o.Flows == 0 {
		o.Flows = 4
	}
	if o.Stagger == 0 {
		o.Stagger = sim.Millisecond
	}
	if o.Window == 0 {
		o.Window = 8 * sim.Millisecond
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = 50 * sim.Microsecond
	}
	if len(o.Sizes) == 0 {
		// Chosen so at 25G fair sharing the flows finish in arrival
		// order, giving the arrive-and-leave staircase of Fig. 5.
		o.Sizes = []int64{9 << 20, 6 << 20, 4 << 20, 2 << 20}[:min(o.Flows, 4)]
		for len(o.Sizes) < o.Flows {
			o.Sizes = append(o.Sizes, 2<<20)
		}
	}
}

// FairnessResult carries per-flow throughput series.
type FairnessResult struct {
	Scheme  string
	T       []sim.Time
	Per     [][]float64 // Per[i][k]: flow i's Gbps at sample k
	JainAvg float64     // mean Jain index over samples with ≥2 active flows
}

// RunFairness reproduces Figure 5: Flows staggered senders to one
// receiver over a single 25G bottleneck.
func RunFairness(o FairnessOptions) FairnessResult {
	o.fillDefaults()
	scheme := SchemeByName(o.Scheme)
	lab := NewStarLab(scheme, o.Flows+1, o.Seed)
	net := lab.Net

	const receiver = 0
	flowIDs := make([]packet.FlowID, o.Flows)
	for i := 0; i < o.Flows; i++ {
		flowIDs[i] = lab.Launch(workload.Flow{
			Start: sim.Time(sim.Duration(i) * o.Stagger),
			Src:   i + 1, Dst: receiver, Size: o.Sizes[i],
		})
	}

	res := FairnessResult{Scheme: o.Scheme, Per: make([][]float64, o.Flows)}
	last := make([]int64, o.Flows)
	var jainSum float64
	var jainN int
	SampleEvery(net.Eng, o.SamplePeriod, sim.Time(o.Window), func(now sim.Time) {
		res.T = append(res.T, now)
		var sum, sumSq float64
		active := 0
		for i := 0; i < o.Flows; i++ {
			cur := lab.ReceivedBytes(receiver, flowIDs[i])
			g := stats.Gbps(cur-last[i], o.SamplePeriod)
			last[i] = cur
			res.Per[i] = append(res.Per[i], g)
			if g > 0.5 {
				active++
				sum += g
				sumSq += g * g
			}
		}
		if active >= 2 && sumSq > 0 {
			jainSum += sum * sum / (float64(active) * sumSq)
			jainN++
		}
	})
	net.Eng.RunUntil(sim.Time(o.Window))
	if jainN > 0 {
		res.JainAvg = jainSum / float64(jainN)
	}
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
