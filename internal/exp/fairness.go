package exp

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FairnessResult carries per-flow throughput series (Figure 5, and
// Figure 9 for HOMA's overcommitment levels).
type FairnessResult struct {
	Scheme  string
	T       []sim.Time
	Per     [][]float64 // Per[i][k]: flow i's Gbps at sample k
	JainAvg float64     // mean Jain index over samples with ≥2 active flows
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:    "fairness",
		Figures: "Fig. 5 (staggered arrivals), Fig. 9 (HOMA overcommitment)",
		Normalize: func(s *Spec) {
			if s.Flows == 0 {
				s.Flows = 4
			}
			if s.Stagger == 0 {
				s.Stagger = sim.Millisecond
			}
			if s.Window == 0 {
				s.Window = 8 * sim.Millisecond
			}
			if s.SamplePeriod == 0 {
				s.SamplePeriod = 50 * sim.Microsecond
			}
			if len(s.Sizes) == 0 {
				// Chosen so at 25G fair sharing the flows finish in
				// arrival order, giving the arrive-and-leave staircase
				// of Fig. 5.
				s.Sizes = []int64{9 << 20, 6 << 20, 4 << 20, 2 << 20}[:min(s.Flows, 4)]
				for len(s.Sizes) < s.Flows {
					s.Sizes = append(s.Sizes, 2<<20)
				}
			}
		},
		Run: runFairness,
	})
}

// runFairness reproduces Figure 5: Flows staggered senders to one
// receiver over a single 25G bottleneck.
func runFairness(s Spec, scheme Scheme) (*Result, error) {
	lab := NewStarLab(scheme, s.Flows+1, s.Seed)
	defer lab.Release()
	net := lab.Net

	const receiver = 0
	flowIDs := make([]packet.FlowID, s.Flows)
	for i := 0; i < s.Flows; i++ {
		flowIDs[i] = lab.Launch(workload.Flow{
			Start: sim.Time(sim.Duration(i) * s.Stagger),
			Src:   i + 1, Dst: receiver, Size: s.Sizes[i],
		})
	}

	fr := &FairnessResult{Scheme: scheme.Name, Per: make([][]float64, s.Flows)}
	last := make([]int64, s.Flows)
	var jainSum float64
	var jainN int
	SampleEvery(net.Eng, s.SamplePeriod, sim.Time(s.Window), func(now sim.Time) {
		fr.T = append(fr.T, now)
		var sum, sumSq float64
		active := 0
		for i := 0; i < s.Flows; i++ {
			cur := lab.ReceivedBytes(receiver, flowIDs[i])
			g := stats.Gbps(cur-last[i], s.SamplePeriod)
			last[i] = cur
			fr.Per[i] = append(fr.Per[i], g)
			if g > 0.5 {
				active++
				sum += g
				sumSq += g * g
			}
		}
		if active >= 2 && sumSq > 0 {
			jainSum += sum * sum / (float64(active) * sumSq)
			jainN++
		}
	})
	net.Eng.RunUntil(sim.Time(s.Window))
	if jainN > 0 {
		fr.JainAvg = jainSum / float64(jainN)
	}

	res := &Result{Raw: fr}
	res.SetScalar("jain", fr.JainAvg)
	res.SetScalar("flows", float64(s.Flows))
	res.SetScalar("engine_steps", float64(net.Eng.Steps()))
	for i := range fr.Per {
		res.AddSeries(TimeSeries(fmt.Sprintf("flow%d_gbps", i+1), fr.T, fr.Per[i]))
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
