package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/guard"
	"repro/internal/sim"
	"repro/internal/units"
)

// Spec is the unified experiment configuration: the registry key, the
// scheme (with composed scheme options), the seed, and the superset of
// scenario knobs. Each experiment's Normalize fills the defaults of the
// knobs it reads; the rest stay inert. Build one with NewSpec and the
// With* options.
type Spec struct {
	Experiment string
	Scheme     string
	SchemeOpts []SchemeOption
	Seed       int64
	// Label distinguishes specs that would otherwise summarize
	// identically (e.g. sweep cells); it is carried into the Result.
	Label string

	// Topology scale.
	ServersPerTor int
	Tors          int
	// Partitions > 1 shards the fabric across that many parallel engines
	// (internal/psim); the Result is byte-identical to the serial run at
	// any count. 0 or 1 runs serially.
	Partitions int

	// Incast (Fig. 4, 9–11).
	FanIn    int
	FlowSize int64

	// Fairness (Fig. 5, 9).
	Flows   int
	Stagger sim.Duration
	Sizes   []int64

	// Websearch (Fig. 6–7) and load-sweep.
	Load          float64
	Loads         []float64
	IncastRate    float64
	IncastSize    int64
	IncastFanIn   int
	SampleBuffers bool

	// RDCN (Fig. 8).
	PacketRate units.BitRate
	Weeks      int

	// Multipath & failure lab (permutation, asymmetry, failover).
	Routing      string          // route strategy name: "", "ecmp", "single", "wecmp"
	Spines       int             // leaf-spine spine count
	SpineRates   []units.BitRate // per-spine fabric rates (asymmetry)
	FailAfter    sim.Duration    // link-failure instant (failover)
	RestoreAfter sim.Duration    // link-restore instant; 0 defaults, KeepLinkDown suppresses
	Reconverge   sim.Duration    // control-plane reconvergence delay

	// Horizons and sampling.
	Window       sim.Duration
	Warmup       sim.Duration
	Duration     sim.Duration
	Drain        sim.Duration
	SamplePeriod sim.Duration
}

// Option mutates a Spec under construction.
type Option func(*Spec)

// Spec options. Each sets one knob; experiments ignore knobs they do not
// read.

// WithSeed sets the RNG seed (workload and switch randomness).
func WithSeed(seed int64) Option { return func(s *Spec) { s.Seed = seed } }

// WithLabel tags the spec's result (sweep cells, panel names).
func WithLabel(label string) Option { return func(s *Spec) { s.Label = label } }

// WithSchemeOptions composes ablation options (Gamma, Alpha, Overcommit,
// PerRTT, Prebuffer) onto the spec's scheme at resolution time.
func WithSchemeOptions(opts ...SchemeOption) Option {
	return func(s *Spec) { s.SchemeOpts = append(s.SchemeOpts, opts...) }
}

// WithServersPerTor scales the fat-tree (32 = paper's §4.1 fabric).
func WithServersPerTor(n int) Option { return func(s *Spec) { s.ServersPerTor = n } }

// WithTors sets the RDCN rack count (paper: 25).
func WithTors(n int) Option { return func(s *Spec) { s.Tors = n } }

// WithPartitions runs the fabric sharded across n parallel engines
// (topology-natural cuts, conservative sync — internal/psim). Output is
// byte-identical to the serial run; only wall-clock time changes.
func WithPartitions(n int) Option { return func(s *Spec) { s.Partitions = n } }

// WithFanIn sets the incast fan-in degree.
func WithFanIn(n int) Option { return func(s *Spec) { s.FanIn = n } }

// WithFlowSize sets the incast per-responder transfer size in bytes.
func WithFlowSize(bytes int64) Option { return func(s *Spec) { s.FlowSize = bytes } }

// WithFlows sets the fairness flow count.
func WithFlows(n int) Option { return func(s *Spec) { s.Flows = n } }

// WithStagger sets the fairness arrival spacing.
func WithStagger(d sim.Duration) Option { return func(s *Spec) { s.Stagger = d } }

// WithSizes sets the fairness transfer sizes.
func WithSizes(sizes ...int64) Option { return func(s *Spec) { s.Sizes = sizes } }

// WithLoad sets the websearch ToR-uplink load (0.2–0.95, §4.1).
func WithLoad(load float64) Option { return func(s *Spec) { s.Load = load } }

// WithLoads sets the load-sweep grid.
func WithLoads(loads ...float64) Option { return func(s *Spec) { s.Loads = loads } }

// WithIncastOverlay overlays the synthetic incast request workload of
// Fig. 7c–f on the websearch background.
func WithIncastOverlay(ratePerSec float64, size int64, fanIn int) Option {
	return func(s *Spec) {
		s.IncastRate = ratePerSec
		s.IncastSize = size
		s.IncastFanIn = fanIn
	}
}

// WithBufferSampling collects the ToR buffer-occupancy CDF (Fig. 7g/h).
func WithBufferSampling(on bool) Option { return func(s *Spec) { s.SampleBuffers = on } }

// WithPacketRate sets the RDCN packet-network bandwidth (Fig. 8b).
func WithPacketRate(r units.BitRate) Option { return func(s *Spec) { s.PacketRate = r } }

// WithRouting selects the multipath strategy ("ecmp", "single",
// "wecmp") for the experiments that exercise the routing control plane.
func WithRouting(name string) Option { return func(s *Spec) { s.Routing = name } }

// WithSpines sets the leaf-spine spine count.
func WithSpines(n int) Option { return func(s *Spec) { s.Spines = n } }

// WithSpineRates sets per-spine fabric rates (the asymmetry scenario's
// unequal core capacities).
func WithSpineRates(rates ...units.BitRate) Option {
	return func(s *Spec) { s.SpineRates = rates }
}

// KeepLinkDown, passed as WithFailure's restoreAt, leaves the failed
// link down for the rest of the run.
const KeepLinkDown sim.Duration = -1

// WithFailure schedules a link failure at failAt and its repair at
// restoreAt (failover scenario). Zero values take the experiment's
// defaults; restoreAt = KeepLinkDown suppresses the repair. A positive
// restoreAt at or before the failure is rejected at run time.
func WithFailure(failAt, restoreAt sim.Duration) Option {
	return func(s *Spec) {
		s.FailAfter = failAt
		s.RestoreAfter = restoreAt
	}
}

// WithReconverge sets the control-plane delay between a link event and
// the routing tables reflecting it.
func WithReconverge(d sim.Duration) Option { return func(s *Spec) { s.Reconverge = d } }

// WithWeeks sets the simulated RDCN rotor weeks.
func WithWeeks(n int) Option { return func(s *Spec) { s.Weeks = n } }

// WithWindow sets the observation window (incast, fairness).
func WithWindow(d sim.Duration) Option { return func(s *Spec) { s.Window = d } }

// WithWarmup sets the incast long-flow head start.
func WithWarmup(d sim.Duration) Option { return func(s *Spec) { s.Warmup = d } }

// WithDuration sets the websearch workload-generation horizon.
func WithDuration(d sim.Duration) Option { return func(s *Spec) { s.Duration = d } }

// WithDrain sets the websearch in-flight drain time.
func WithDrain(d sim.Duration) Option { return func(s *Spec) { s.Drain = d } }

// WithSamplePeriod sets the telemetry sampling period.
func WithSamplePeriod(d sim.Duration) Option { return func(s *Spec) { s.SamplePeriod = d } }

// NewSpec names an experiment and a scheme and applies options. Nothing
// is validated here; Run resolves both registries and reports errors.
func NewSpec(experiment, scheme string, opts ...Option) Spec {
	s := Spec{Experiment: experiment, Scheme: scheme}
	for _, opt := range opts {
		opt(&s)
	}
	return s
}

// Experiment is one registered scenario of the paper's evaluation.
type Experiment struct {
	// Name is the registry key ("incast", "websearch", ...).
	Name string
	// Figures names the paper figures the experiment reproduces.
	Figures string
	// Normalize fills the defaults of the Spec knobs the experiment
	// reads (the fillDefaults of the old per-runner options structs).
	Normalize func(*Spec)
	// Run executes one normalized spec under a resolved scheme. Each
	// call must build its own network/engine: the Suite runs specs
	// concurrently.
	Run func(Spec, Scheme) (*Result, error)
	// Fields names the Spec knobs the experiment consumes (see
	// SpecFieldNames). When set, Run rejects specs that assign any
	// other knob instead of silently ignoring it; nil skips the check
	// (externally registered experiments).
	Fields []string
	// Supports rejects schemes the experiment cannot drive. When nil,
	// Run applies the default rule: the scheme must provide a per-flow
	// algorithm builder or use the HOMA transport.
	Supports func(Scheme) error
}

var (
	expMu       sync.RWMutex
	experiments = map[string]Experiment{}
)

// RegisterExperiment adds an experiment to the registry; it errors on
// duplicate or incomplete registrations.
func RegisterExperiment(e Experiment) error {
	if e.Name == "" || e.Run == nil {
		return fmt.Errorf("exp: RegisterExperiment needs a name and a run function")
	}
	expMu.Lock()
	defer expMu.Unlock()
	if _, dup := experiments[e.Name]; dup {
		return fmt.Errorf("exp: experiment %q already registered", e.Name)
	}
	experiments[e.Name] = e
	return nil
}

func mustRegisterExperiment(e Experiment) {
	if err := RegisterExperiment(e); err != nil {
		panic(err)
	}
}

// ExperimentNames returns the registered experiment names, sorted.
func ExperimentNames() []string {
	expMu.RLock()
	defer expMu.RUnlock()
	return experimentNamesLocked()
}

// ExperimentByName returns a registered experiment.
func ExperimentByName(name string) (Experiment, error) {
	expMu.RLock()
	defer expMu.RUnlock()
	e, ok := experiments[name]
	if !ok {
		return Experiment{}, fmt.Errorf("exp: unknown experiment %q (known: %s)",
			name, strings.Join(experimentNamesLocked(), ", "))
	}
	return e, nil
}

func experimentNamesLocked() []string {
	names := make([]string, 0, len(experiments))
	for n := range experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run resolves the spec's experiment and scheme, validates that every
// assigned knob is one the experiment consumes, normalizes defaults,
// and executes the run on an isolated engine. It is safe to call
// concurrently with distinct specs — the Suite does exactly that.
func Run(s Spec) (*Result, error) {
	e, err := ExperimentByName(s.Experiment)
	if err != nil {
		return nil, err
	}
	if err := s.validateAgainst(e); err != nil {
		return nil, err
	}
	scheme, err := ResolveScheme(s.Scheme, s.SchemeOpts...)
	if err != nil {
		return nil, fmt.Errorf("exp: experiment %q: %w", s.Experiment, err)
	}
	if e.Supports != nil {
		if err := e.Supports(scheme); err != nil {
			return nil, fmt.Errorf("exp: experiment %q: %w", e.Name, err)
		}
	} else if scheme.Alg == nil && !scheme.IsHoma() {
		return nil, fmt.Errorf("exp: experiment %q does not support scheme %q (no per-flow algorithm)",
			e.Name, scheme.Name)
	}
	if e.Normalize != nil {
		e.Normalize(&s)
	}
	// Panic capture around the run body: a crash in a model or probe
	// surfaces as a typed *guard.PanicError instead of unwinding through
	// whoever called Run — which in a Suite would take every sibling
	// spec's worker down with it.
	r, err := guard.Capture(func() (*Result, error) { return e.Run(s, scheme) })
	if err != nil {
		return nil, fmt.Errorf("exp: experiment %q scheme %q: %w", s.Experiment, scheme.Name, err)
	}
	r.Experiment = e.Name
	r.Scheme = scheme.Name
	r.Label = s.Label
	r.Seed = s.Seed
	return r, nil
}
