package exp

import (
	"testing"

	"repro/internal/sim"
)

// Scaled-down multipath specs shared by the tests below.
func permSpec(routing string) Spec {
	return NewSpec("permutation", PowerTCP,
		WithRouting(routing), WithServersPerTor(4),
		WithWindow(2*sim.Millisecond), WithSeed(1))
}

func TestPermutationECMPSpreadsAndOutperformsSinglePath(t *testing.T) {
	ecmp := mustRun(t, permSpec("ecmp")).Raw.(*PermutationResult)
	single := mustRun(t, permSpec("single")).Raw.(*PermutationResult)

	if ecmp.Routing != "ecmp" || single.Routing != "single" {
		t.Fatalf("routing labels: %q, %q", ecmp.Routing, single.Routing)
	}
	if ecmp.Flows != 32 {
		t.Fatalf("permutation launched %d flows on a 32-host tree", ecmp.Flows)
	}
	// ECMP engages (nearly) every ToR uplink — at 32 flows the hash may
	// miss one — while deterministic single-path concentrates each ToR
	// onto one. The exhaustive per-table spread assertion lives in the
	// topo tests; here we check the traffic actually spread.
	if ecmp.UplinksUsed < ecmp.UplinksTotal-1 {
		t.Fatalf("ECMP used %d/%d uplinks", ecmp.UplinksUsed, ecmp.UplinksTotal)
	}
	if single.UplinksUsed >= ecmp.UplinksUsed {
		t.Fatalf("single-path used %d uplinks, ECMP %d — no spreading win",
			single.UplinksUsed, ecmp.UplinksUsed)
	}
	// Spreading pays: higher aggregate goodput and better fairness.
	var eAvg, sAvg float64
	for _, g := range ecmp.PerFlowGbps {
		eAvg += g
	}
	for _, g := range single.PerFlowGbps {
		sAvg += g
	}
	if eAvg <= sAvg {
		t.Fatalf("ECMP aggregate %.1f ≤ single-path %.1f", eAvg, sAvg)
	}
	if ecmp.Jain <= single.Jain {
		t.Fatalf("ECMP Jain %.3f ≤ single-path %.3f", ecmp.Jain, single.Jain)
	}
}

func TestAsymmetryWCMPBeatsECMPBeatsSinglePath(t *testing.T) {
	// 8 senders × 25G = 200G offered over 150G of spine capacity: the
	// fabric must be saturated for the strategies to separate.
	spec := func(routing string) Spec {
		return NewSpec("asymmetry", PowerTCP,
			WithRouting(routing), WithServersPerTor(8),
			WithWindow(2*sim.Millisecond), WithSeed(1))
	}
	ecmp := mustRun(t, spec("ecmp")).Raw.(*AsymmetryResult)
	wcmp := mustRun(t, spec("wecmp")).Raw.(*AsymmetryResult)
	single := mustRun(t, spec("single")).Raw.(*AsymmetryResult)

	// Weighted hashing matches the 2:1 spine capacities: fairness
	// improves over capacity-blind ECMP.
	if wcmp.Jain <= ecmp.Jain {
		t.Fatalf("WCMP Jain %.3f ≤ ECMP %.3f", wcmp.Jain, ecmp.Jain)
	}
	// Single-path leaves a spine idle and loses efficiency.
	if single.Efficiency >= 0.85*ecmp.Efficiency {
		t.Fatalf("single-path efficiency %.2f suspiciously close to ECMP %.2f",
			single.Efficiency, ecmp.Efficiency)
	}
	idle := 0
	for _, u := range single.SpineUtil {
		if u == 0 {
			idle++
		}
	}
	if idle == 0 {
		t.Fatal("single-path engaged every spine — not single-path")
	}
	for _, u := range ecmp.SpineUtil {
		if u <= 0 {
			t.Fatalf("ECMP left a spine idle: %v", ecmp.SpineUtil)
		}
	}
}

func TestFailoverCutsRecoversAndRestores(t *testing.T) {
	res := mustRun(t, NewSpec("failover", PowerTCP,
		WithServersPerTor(4), WithFlows(2), WithSeed(1)))
	fr := res.Raw.(*FailoverResult)

	if fr.PreFailGbps < 20 {
		t.Fatalf("pre-failure goodput %.1f Gbps, want a loaded fabric", fr.PreFailGbps)
	}
	if fr.LostPackets == 0 {
		t.Fatal("a cut spine link lost no packets")
	}
	if !fr.Recovered {
		t.Fatal("goodput never recovered after reconvergence")
	}
	if fr.RecoveryUs <= 0 || fr.RecoveryUs > 3000 {
		t.Fatalf("recovery took %.0fµs, want (0, 3000]", fr.RecoveryUs)
	}
	if fr.PostFailGbps < 0.8*fr.PreFailGbps {
		t.Fatalf("post-recovery plateau %.1f Gbps vs pre-fail %.1f",
			fr.PostFailGbps, fr.PreFailGbps)
	}
	// Initial build + failure reconvergence + restore reconvergence.
	if got := res.Scalar("route_rebuilds"); got != 3 {
		t.Fatalf("route_rebuilds = %v, want 3", got)
	}
}

func TestFailoverWithoutRestoreKeepsLinkDown(t *testing.T) {
	res := mustRun(t, NewSpec("failover", PowerTCP,
		WithServersPerTor(4), WithFlows(2),
		WithFailure(sim.Millisecond, KeepLinkDown), WithWindow(3*sim.Millisecond), WithSeed(1)))
	// Only the initial build and the failure reconvergence.
	if got := res.Scalar("route_rebuilds"); got != 2 {
		t.Fatalf("route_rebuilds = %v, want 2 (no restore)", got)
	}
	if res.Scalar("recovered") != 1 {
		t.Fatal("flows did not recover onto the surviving spine")
	}
}

func TestMultipathExperimentsRejectBadRouting(t *testing.T) {
	for _, name := range []string{"permutation", "asymmetry", "failover"} {
		if _, err := Run(NewSpec(name, PowerTCP, WithRouting("bogus"))); err == nil {
			t.Fatalf("%s accepted bogus routing strategy", name)
		}
	}
}
